#include "sim/explore.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>

namespace wfd::sim {

namespace {

// FNV-1a over a label string: stable, cheap, no libstdc++ hash involved.
std::uint64_t labelHash(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  return h;
}

// A sleep-set entry: process `pid`'s next transition as observed when it
// was explored (or skipped) at some ancestor node. The footprint and
// output visibility of a process's next step are functions of its local
// state alone, and the sleep discipline only carries an entry across
// steps INDEPENDENT of it — which leave that local state's inputs
// untouched — so the recorded values stay exact for the entry's lifetime.
struct SleepEnt {
  Pid pid = -1;
  OpFootprint fp;
  bool visible = false;
};

bool inSleep(const std::vector<SleepEnt>& sleep, Pid p) {
  return std::any_of(sleep.begin(), sleep.end(),
                     [p](const SleepEnt& se) { return se.pid == p; });
}

// One executed step on the current DFS path.
struct StepX {
  Pid pid = -1;
  OpFootprint fp;
  bool visible = false;   // emitted a kDecide/kPublish event
  int proc_seq = 0;       // 1-based index among pid's steps
  std::vector<int> clock;       // vector clock of this step (inclusive)
  std::vector<int> prev_clock;  // pid's clock before it (for unwinding)
};

// One branch point: the state BEFORE choosing a step at this depth.
struct Node {
  RunCheckpoint ckpt;
  ProcSet enabled;
  ProcSet to_explore;  // kDpor: dynamically grown backtrack set
  ProcSet done;        // explored (or sleep-skipped) from here
  std::vector<SleepEnt> sleep;
  std::set<std::uint64_t> sub_sigs;  // outcome sigs of the subtree so far
  std::uint64_t digest = 0;          // kDag memo key
};

// Two steps must keep their relative order iff they are dependent: either
// fails to commute by footprint, or either is output-visible (decides and
// published FD-output emulations are ordered events of the run, like the
// always-dependent FD queries inside footprintsCommute).
bool dependent(const OpFootprint& a, bool a_vis, const OpFootprint& b,
               bool b_vis) {
  return a_vis || b_vis || !footprintsCommute(a, b);
}

// Structural digest of the CURRENT global state: object-table contents,
// per-process local states (step count + consumed-result stream digest +
// done flag + published value), and the clock. Order-insensitive across
// the schedules that reach the state — unlike the trace op digest, which
// is a history key — so kDag can unify converging schedules.
std::uint64_t stateDigest(Run& run, int n) {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  h = stateMix64(h, static_cast<std::uint64_t>(run.world().now()));
  h = stateMix64(h, run.world().objectsConst().contentsDigest());
  for (Pid p = 0; p < n; ++p) {
    const ProcCtx& c = run.scheduler().ctx(p);
    h = stateMix64(h, static_cast<std::uint64_t>(c.steps));
    h = stateMix64(h, c.done ? 2u : 1u);
    h = stateMix64(h, run.scheduler().resultDigest(p));
    h = stateMix64(h, run.world().published(p).hash64());
  }
  return h;
}

// Collect the terminal state's observable outcome: all recorded events
// grouped per process (program order within a process; pid order across).
ExploreOutcome harvestOutcome(Run& run, int n) {
  ExploreOutcome o;
  const auto& events = run.world().trace().events();
  std::vector<std::vector<const Event*>> per(static_cast<std::size_t>(n));
  for (const Event& e : events) {
    if (e.pid < 0 || e.pid >= n) continue;
    per[static_cast<std::size_t>(e.pid)].push_back(&e);
    if (e.kind == EventKind::kDecide) o.decisions[e.pid] = e.value.asInt();
  }
  std::uint64_t h = 0x452821E638D01377ULL;
  for (int p = 0; p < n; ++p) {
    h = stateMix64(h, static_cast<std::uint64_t>(p) + 0xABCDULL);
    for (const Event* e : per[static_cast<std::size_t>(p)]) {
      h = stateMix64(h, static_cast<std::uint64_t>(e->kind) + 1);
      h = stateMix64(h, labelHash(e->label));
      h = stateMix64(h, e->value.hash64());
      o.events.push_back(*e);
    }
  }
  o.sig = h;
  return o;
}

}  // namespace

std::string ExploreResult::counterexampleString() const {
  std::string s;
  for (const Pid p : counterexample) {
    if (!s.empty()) s += ' ';
    s += 'p';
    s += std::to_string(p + 1);
  }
  return s;
}

ExploreResult explore(const ExploreConfig& cfg, const AlgoFn& algo,
                      const std::vector<Value>& proposals) {
  ExploreResult res;
  const int n = cfg.run.n_plus_1;
  const bool dpor = cfg.mode == ExploreMode::kDpor;

  if (dpor) {
    // Commutation of adjacent independent steps assumes swapping them
    // changes neither step's behavior. A time-triggered crash breaks
    // that: the swap moves a step across a crash time, changing which
    // processes are enabled. kDag has no such assumption.
    const FailurePattern fp =
        cfg.run.fp.has_value() ? *cfg.run.fp : FailurePattern::failureFree(n);
    for (Pid p = 0; p < n; ++p) {
      if (fp.crashTime(p) != kNeverCrashes) {
        throw SimAbort(
            "explore: kDpor requires a failure-free pattern (crashes break "
            "step commutation); use ExploreMode::kDag for this pattern");
      }
    }
  }

  Run run(cfg.run, algo, proposals);
  run.enableCheckpoints();

  std::vector<Node> path;
  std::vector<StepX> steps;
  std::vector<std::vector<int>> clocks(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), 0));
  // kDag memo: state digest -> outcome signatures of its full subtree.
  std::map<std::uint64_t, std::vector<std::uint64_t>> memo;
  int live_depth = 0;  // depth the live Run state currently corresponds to

  const auto harvestTerminal = [&](Node& cur) -> bool {
    // Returns true when the caller should abort the whole search.
    ExploreOutcome o = harvestOutcome(run, n);
    ++res.schedules_explored;
    cur.sub_sigs.insert(o.sig);
    const std::uint64_t sig = o.sig;
    auto [it, inserted] = res.outcomes.emplace(sig, std::move(o));
    (void)inserted;
    if (cfg.property && res.verdict == ExploreVerdict::kVerified) {
      const std::string v = cfg.property(it->second);
      if (!v.empty()) {
        res.verdict = ExploreVerdict::kViolation;
        res.violation = v;
        res.counterexample.reserve(steps.size());
        for (const StepX& s : steps) res.counterexample.push_back(s.pid);
        return cfg.stop_on_violation;
      }
    }
    return false;
  };

  // Initial node. A run can be terminal before its first step only in
  // degenerate configurations (no processes).
  {
    Node root;
    root.ckpt = run.checkpoint();
    root.enabled = run.scheduler().runnable();
    if (!dpor) {
      root.to_explore = root.enabled;
      if (cfg.memoize) root.digest = stateDigest(run, n);
    } else if (!root.enabled.empty()) {
      root.to_explore.insert(root.enabled.min());
    }
    if (run.scheduler().allCorrectDone() || root.enabled.empty()) {
      harvestTerminal(root);
      return res;
    }
    path.push_back(std::move(root));
  }

  while (!path.empty()) {
    Node& cur = path.back();
    const int d = static_cast<int>(path.size()) - 1;

    // Pick the next candidate transition at this node.
    Pid p = -1;
    for (;;) {
      const std::uint64_t avail = cur.to_explore.bits() & ~cur.done.bits();
      if (avail == 0) break;
      const Pid cand = static_cast<Pid>(std::countr_zero(avail));
      if (dpor && inSleep(cur.sleep, cand)) {
        // Covered by a subtree explored from an ancestor: prune.
        cur.done.insert(cand);
        ++res.schedules_pruned;
        continue;
      }
      p = cand;
      break;
    }

    if (p < 0) {
      // Node exhausted: memoize (kDag), fold into the parent, pop.
      if (!dpor && cfg.memoize) {
        memo.emplace(cur.digest,
                     std::vector<std::uint64_t>(cur.sub_sigs.begin(),
                                                cur.sub_sigs.end()));
      }
      if (d > 0) {
        Node& parent = path[static_cast<std::size_t>(d) - 1];
        parent.sub_sigs.insert(cur.sub_sigs.begin(), cur.sub_sigs.end());
        const StepX& in = steps.back();
        if (dpor) parent.sleep.push_back(SleepEnt{in.pid, in.fp, in.visible});
        clocks[static_cast<std::size_t>(in.pid)] = in.prev_clock;
        steps.pop_back();
      }
      path.pop_back();
      continue;
    }

    cur.done.insert(p);
    if (live_depth != d) {
      // Prefix sharing: rewind the single live Run to this branch point
      // instead of replaying the whole schedule from step 0.
      run.restore(cur.ckpt);
      ++res.restores;
      res.steps_replayed += static_cast<std::uint64_t>(d);
      live_depth = d;
    }

    const std::size_t ev_before = run.world().trace().events().size();
    run.scheduler().step(p);
    ++res.steps_executed;
    live_depth = d + 1;
    res.max_depth_seen = std::max(res.max_depth_seen, d + 1);

    const OpFootprint fp = run.world().lastFootprint();
    bool visible = false;
    {
      const auto& events = run.world().trace().events();
      for (std::size_t i = ev_before; i < events.size(); ++i) {
        if (events[i].kind == EventKind::kDecide ||
            events[i].kind == EventKind::kPublish) {
          visible = true;
        }
      }
    }

    // Vector-clock happens-before pass over the executed prefix, plus
    // Flanagan–Godefroid dynamic backtracking: for every earlier step
    // dependent with this one but not ordered before it by the prefix's
    // happens-before relation, the reversal is a genuine race — make the
    // pre-state of that step schedule this process too.
    const std::vector<int> pre_clock = clocks[static_cast<std::size_t>(p)];
    std::vector<int> now_clock = pre_clock;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const StepX& si = steps[i];
      if (si.pid == p) continue;  // program order is already in pre_clock
      if (!dependent(si.fp, si.visible, fp, visible)) continue;
      for (int q = 0; q < n; ++q) {
        now_clock[static_cast<std::size_t>(q)] =
            std::max(now_clock[static_cast<std::size_t>(q)],
                     si.clock[static_cast<std::size_t>(q)]);
      }
      if (!dpor) continue;
      if (pre_clock[static_cast<std::size_t>(si.pid)] >= si.proc_seq) {
        continue;  // si happens-before p's transition: order is forced
      }
      Node& nj = path[i];
      if (nj.enabled.contains(p)) {
        nj.to_explore.insert(p);
      } else {
        // p was not enabled there: conservatively schedule everything.
        nj.to_explore = nj.to_explore.unionWith(nj.enabled);
      }
    }
    now_clock[static_cast<std::size_t>(p)] += 1;
    {
      StepX st;
      st.pid = p;
      st.fp = fp;
      st.visible = visible;
      st.proc_seq = now_clock[static_cast<std::size_t>(p)];
      st.prev_clock = pre_clock;
      st.clock = now_clock;
      clocks[static_cast<std::size_t>(p)] = std::move(now_clock);
      steps.push_back(std::move(st));
    }

    const bool all_done = run.scheduler().allCorrectDone();
    const bool blocked = !all_done && run.scheduler().runnable().empty();
    const bool too_deep = !all_done && !blocked && d + 1 >= cfg.max_depth;
    if (all_done || blocked || too_deep) {
      bool abort_search = false;
      if (too_deep) {
        res.complete = false;  // this branch was cut, not verified
      } else {
        abort_search = harvestTerminal(cur);
      }
      const StepX& in = steps.back();
      if (dpor) cur.sleep.push_back(SleepEnt{in.pid, in.fp, in.visible});
      clocks[static_cast<std::size_t>(in.pid)] = in.prev_clock;
      steps.pop_back();
      if (abort_search) return res;
      if (res.schedules_explored >= cfg.max_schedules) {
        res.complete = false;
        return res;
      }
      continue;  // live state is past cur; next execute will restore
    }

    // Interior state: answer from the memo (kDag) or push a child node.
    std::uint64_t digest = 0;
    if (!dpor && cfg.memoize) {
      digest = stateDigest(run, n);
      const auto hit = memo.find(digest);
      if (hit != memo.end()) {
        ++res.memo_hits;
        ++res.schedules_pruned;
        cur.sub_sigs.insert(hit->second.begin(), hit->second.end());
        const StepX& in = steps.back();
        clocks[static_cast<std::size_t>(in.pid)] = in.prev_clock;
        steps.pop_back();
        continue;
      }
    }
    Node child;
    child.ckpt = run.checkpoint();
    child.enabled = run.scheduler().runnable();
    child.digest = digest;
    if (dpor) {
      const StepX& in = steps.back();
      for (const SleepEnt& se : cur.sleep) {
        // Wake sleepers dependent with the step just taken; the rest
        // remain covered by the subtrees explored from the ancestors.
        if (!dependent(se.fp, se.visible, in.fp, in.visible)) {
          child.sleep.push_back(se);
        }
      }
      for (const Pid q : child.enabled) {
        if (!inSleep(child.sleep, q)) {
          child.to_explore.insert(q);  // seed: one transition per node
          break;
        }
      }
    } else {
      child.to_explore = child.enabled;
    }
    path.push_back(std::move(child));
  }

  if (!dpor && cfg.memoize) res.states_memoized = memo.size();
  return res;
}

}  // namespace wfd::sim
