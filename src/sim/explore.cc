#include "sim/explore.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "fd/failure_detector.h"
#include "sim/explore_pool.h"
#include "sim/report_cache.h"

namespace wfd::sim {

namespace {

// FNV-1a over a label string: stable, cheap, no libstdc++ hash involved.
std::uint64_t labelHash(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  return h;
}

// A sleep-set entry: process `pid`'s next transition as observed when it
// was explored (or skipped) at some ancestor node. The footprint and
// output visibility of a process's next step are functions of its local
// state alone, and the sleep discipline only carries an entry across
// steps INDEPENDENT of it — which leave that local state's inputs
// untouched — so the recorded values stay exact for the entry's lifetime.
// That includes the refined fd_epoch classification: an entry's causal
// past can only grow through steps DEPENDENT with it, so a query
// certified stable when the entry was recorded stays stable wherever the
// entry is carried.
struct SleepEnt {
  Pid pid = -1;
  OpFootprint fp;
  bool visible = false;
};

bool inSleep(const std::vector<SleepEnt>& sleep, Pid p) {
  return std::any_of(sleep.begin(), sleep.end(),
                     [p](const SleepEnt& se) { return se.pid == p; });
}

// One executed step on the current DFS path.
struct StepX {
  Pid pid = -1;
  OpFootprint fp;
  bool visible = false;   // emitted a kDecide/kPublish event
  int proc_seq = 0;       // 1-based index among pid's steps
  std::vector<int> clock;       // vector clock of this step (inclusive)
  std::vector<int> prev_clock;  // pid's clock before it (for unwinding)
};

// One branch point: the state BEFORE choosing a step at this depth.
struct Node {
  RunCheckpoint ckpt;
  ProcSet enabled;
  ProcSet to_explore;  // kDpor: dynamically grown backtrack set
  ProcSet done;        // explored (or sleep-skipped) from here
  std::vector<SleepEnt> sleep;
  std::set<std::uint64_t> sub_sigs;  // outcome sigs of the subtree so far
  std::uint64_t digest = 0;          // kDag memo key
};

// Two steps must keep their relative order iff they are dependent: either
// fails to commute by footprint, or either is output-visible (decides and
// published FD-output emulations are ordered events of the run).
bool dependent(const OpFootprint& a, bool a_vis, const OpFootprint& b,
               bool b_vis) {
  return a_vis || b_vis || !footprintsCommute(a, b);
}

// ---- Incremental state digests (kDag memo keys) ---------------------------
//
// The digest of the CURRENT global state is an XOR of independent salted
// components — the clock, the object table (ObjectTable::xorContentsDigest,
// itself maintained per mutation), and one component per process's local
// state — so one executed step re-mixes only the two components it can
// change (the clock and the stepping process) plus whatever table delta
// the table already tracked, instead of re-hashing every object and every
// process. Order-insensitive across the schedules that reach the state,
// like the full recompute below, so kDag can unify converging schedules.

std::uint64_t clockComponent(Time now) {
  return stateMix64(0x243F6A8885A308D3ULL, static_cast<std::uint64_t>(now));
}

std::uint64_t procComponent(Run& run, Pid p) {
  const ProcCtx& c = run.scheduler().ctx(p);
  std::uint64_t h =
      stateMix64(0x3C6EF372FE94F82BULL, static_cast<std::uint64_t>(p) + 1);
  h = stateMix64(h, static_cast<std::uint64_t>(c.steps));
  h = stateMix64(h, c.done ? 2u : 1u);
  h = stateMix64(h, run.scheduler().resultDigest(p));
  h = stateMix64(h, run.world().published(p).hash64());
  return h;
}

// The two non-clock, non-table components one step can change.
std::uint64_t stepLocalComponent(Run& run, Pid p) {
  return clockComponent(run.world().now()) ^
         run.world().objectsConst().xorContentsDigest() ^
         procComponent(run, p);
}

std::uint64_t fullStateDigest(Run& run, int n, bool audit_table) {
  std::uint64_t h = audit_table
                        ? run.world().objectsConst().xorContentsDigestFull()
                        : run.world().objectsConst().xorContentsDigest();
  h ^= clockComponent(run.world().now());
  for (Pid p = 0; p < n; ++p) h ^= procComponent(run, p);
  return h;
}

// Collect the terminal state's observable outcome: all recorded events
// grouped per process (program order within a process; pid order across).
ExploreOutcome harvestOutcome(Run& run, int n) {
  ExploreOutcome o;
  const auto& events = run.world().trace().events();
  std::vector<std::vector<const Event*>> per(static_cast<std::size_t>(n));
  for (const Event& e : events) {
    if (e.pid < 0 || e.pid >= n) continue;
    per[static_cast<std::size_t>(e.pid)].push_back(&e);
    if (e.kind == EventKind::kDecide) o.decisions[e.pid] = e.value.asInt();
  }
  std::uint64_t h = 0x452821E638D01377ULL;
  for (int p = 0; p < n; ++p) {
    h = stateMix64(h, static_cast<std::uint64_t>(p) + 0xABCDULL);
    for (const Event* e : per[static_cast<std::size_t>(p)]) {
      h = stateMix64(h, static_cast<std::uint64_t>(e->kind) + 1);
      h = stateMix64(h, labelHash(e->label));
      h = stateMix64(h, e->value.hash64());
      o.events.push_back(*e);
    }
  }
  o.sig = h;
  return o;
}

// ---- The DFS walker -------------------------------------------------------
//
// One function runs all three engine roles:
//   * classic   — the full single-phase serial search (jobs = 0);
//   * coordinator — phase 1 of the frontier engine: EAGER candidate
//     seeding above capture_depth, and reaching capture_depth captures a
//     job (prefix + step/clock stack + frontier sleep set) instead of
//     recursing;
//   * worker    — phase 2: replay one captured prefix, then run the
//     normal lazy engine below the frontier. Backtrack additions whose
//     race partner sits inside the prefix are dropped: the coordinator
//     seeded every prefix node with its FULL enabled set, so the
//     addition is a no-op by construction.

// Stability-epoch classification of FD queries (docs/EXPLORE.md): enabled
// only when the run's detector can be pinned (overrides keyDigest) and
// promises a finite stabilizationTime tau.
struct FdEpochCtx {
  bool enabled = false;
  Time tau = 0;
};

struct CapturedJob {
  std::vector<Pid> prefix;               // pid per prefix step
  std::vector<StepX> steps;              // full prefix step stack
  std::vector<std::vector<int>> clocks;  // per-proc clocks after prefix
  std::vector<SleepEnt> sleep;           // frontier node's sleep set
  std::uint64_t seq = 0;                 // DFS unit number at creation
};

constexpr std::uint64_t kNoSeq = std::numeric_limits<std::uint64_t>::max();

struct WalkSpec {
  const ExploreConfig* cfg = nullptr;
  const AlgoFn* algo = nullptr;
  const std::vector<Value>* proposals = nullptr;
  FdEpochCtx fdctx;
  int capture_depth = -1;          // >= 1: coordinator role, capture here
  const CapturedJob* job = nullptr;  // non-null: worker role
};

struct WalkOut {
  ExploreResult res;
  std::vector<CapturedJob> jobs;        // coordinator captures, DFS order
  std::uint64_t units = 0;              // terminals + captures, DFS order
  std::uint64_t violation_seq = kNoSeq;  // unit index of first violation
};

WalkOut walk(const WalkSpec& spec) {
  const ExploreConfig& cfg = *spec.cfg;
  const int n = cfg.run.n_plus_1;
  const bool dpor = cfg.mode == ExploreMode::kDpor;
  const bool capture = spec.capture_depth >= 1;
  // Phase 1 must not memoize: its subtrees are captured, not explored, so
  // a node's sub_sigs never describe the full subtree a memo entry claims.
  const bool use_memo = !dpor && cfg.memoize && !capture;
  const bool audit = resolvedAuditMode(cfg.run.audit).has_value();
  const int base =
      spec.job == nullptr ? 0 : static_cast<int>(spec.job->prefix.size());

  WalkOut out;
  ExploreResult& res = out.res;

  Run run(cfg.run, *spec.algo, *spec.proposals);
  run.enableCheckpoints();

  std::vector<Node> path;
  std::vector<StepX> steps;
  std::vector<std::vector<int>> clocks(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), 0));
  if (spec.job != nullptr) {
    // Replay the captured prefix by stepping: the worker owns a fresh
    // Run/World/Scheduler stack, so the replay is this job's only
    // coupling to the coordinator — a pid sequence, nothing shared.
    for (const Pid p : spec.job->prefix) run.scheduler().step(p);
    res.steps_executed += static_cast<std::uint64_t>(base);
    steps = spec.job->steps;
    clocks = spec.job->clocks;
  }
  // kDag memo: state digest -> outcome signatures of its full subtree.
  // Frontier workers each hold a private memo so every counter is a pure
  // function of the job, never of worker scheduling.
  std::map<std::uint64_t, std::vector<std::uint64_t>> memo;
  int live_depth = 0;  // LOCAL depth the live Run currently corresponds to
  std::uint64_t live_digest = 0;

  const auto harvestTerminal = [&](Node& cur) -> bool {
    // Returns true when the caller should abort the whole walk.
    ExploreOutcome o = harvestOutcome(run, n);
    ++res.schedules_explored;
    cur.sub_sigs.insert(o.sig);
    const std::uint64_t sig = o.sig;
    auto [it, inserted] = res.outcomes.emplace(sig, std::move(o));
    (void)inserted;
    bool violated = false;
    if (cfg.property && res.verdict == ExploreVerdict::kVerified) {
      const std::string v = cfg.property(it->second);
      if (!v.empty()) {
        violated = true;
        res.verdict = ExploreVerdict::kViolation;
        res.violation = v;
        res.counterexample.reserve(steps.size());
        for (const StepX& s : steps) res.counterexample.push_back(s.pid);
        out.violation_seq = out.units;
      }
    }
    ++out.units;
    return violated && cfg.stop_on_violation;
  };

  const auto seedDpor = [&](Node& node) {
    if (capture) {
      // Eager: schedule every non-slept enabled transition up front, so
      // later backtrack additions targeting this node are no-ops and the
      // captured job set is closed under the race rule.
      node.to_explore = node.enabled;
      return;
    }
    for (const Pid q : node.enabled) {
      if (!inSleep(node.sleep, q)) {
        node.to_explore.insert(q);  // lazy: one transition per node
        break;
      }
    }
  };

  // Initial node. A run can be terminal before its first step only in
  // degenerate configurations (no processes).
  {
    Node root;
    root.ckpt = run.checkpoint();
    root.enabled = run.scheduler().runnable();
    if (spec.job != nullptr) root.sleep = spec.job->sleep;
    if (!dpor) {
      root.to_explore = root.enabled;
      if (use_memo) {
        live_digest = fullStateDigest(run, n, /*audit_table=*/false);
        root.digest = live_digest;
      }
    } else {
      seedDpor(root);
    }
    if (run.scheduler().allCorrectDone() || root.enabled.empty()) {
      harvestTerminal(root);
      return out;
    }
    path.push_back(std::move(root));
  }

  while (!path.empty()) {
    Node& cur = path.back();
    const int d = static_cast<int>(path.size()) - 1;

    // Pick the next candidate transition at this node.
    Pid p = -1;
    for (;;) {
      const std::uint64_t avail = cur.to_explore.bits() & ~cur.done.bits();
      if (avail == 0) break;
      const Pid cand = static_cast<Pid>(std::countr_zero(avail));
      if (dpor && inSleep(cur.sleep, cand)) {
        // Covered by a subtree explored from an ancestor: prune.
        cur.done.insert(cand);
        ++res.sleep_set_skips;
        continue;
      }
      p = cand;
      break;
    }

    if (p < 0) {
      // Node exhausted: memoize (kDag), fold into the parent, pop.
      if (use_memo) {
        memo.emplace(cur.digest,
                     std::vector<std::uint64_t>(cur.sub_sigs.begin(),
                                                cur.sub_sigs.end()));
      }
      if (d > 0) {
        Node& parent = path[static_cast<std::size_t>(d) - 1];
        parent.sub_sigs.insert(cur.sub_sigs.begin(), cur.sub_sigs.end());
        const StepX& in = steps.back();
        if (dpor) parent.sleep.push_back(SleepEnt{in.pid, in.fp, in.visible});
        clocks[static_cast<std::size_t>(in.pid)] = in.prev_clock;
        steps.pop_back();
      }
      path.pop_back();
      continue;
    }

    cur.done.insert(p);
    if (live_depth != d) {
      // Prefix sharing: rewind the single live Run to this branch point
      // instead of replaying the whole schedule from step 0.
      run.restore(cur.ckpt);
      ++res.restores;
      res.steps_replayed += static_cast<std::uint64_t>(base + d);
      live_depth = d;
      live_digest = cur.digest;
    }

    const std::size_t ev_before = run.world().trace().events().size();
    std::uint64_t dig_pre = 0;
    if (use_memo) dig_pre = stepLocalComponent(run, p);
    run.scheduler().step(p);
    if (use_memo) live_digest ^= dig_pre ^ stepLocalComponent(run, p);
    ++res.steps_executed;
    live_depth = d + 1;
    res.max_depth_seen = std::max(res.max_depth_seen, base + d + 1);

    OpFootprint fp = run.world().lastFootprint();
    bool visible = false;
    {
      const auto& events = run.world().trace().events();
      for (std::size_t i = ev_before; i < events.size(); ++i) {
        if (events[i].kind == EventKind::kDecide ||
            events[i].kind == EventKind::kPublish) {
          visible = true;
        }
      }
    }

    if (fp.cls == OpClass::kFdQuery && spec.fdctx.enabled) {
      // Refined FD-independence: certify the query inside the detector's
      // post-stabilization epoch when its CAUSAL PAST alone already
      // spans stabilizationTime() steps. Every step advances the clock
      // by one and the query is answered at the pre-advance clock, so a
      // step's global time equals its 0-based schedule position, which
      // in EVERY linearization of the trace class is >= the size of the
      // step's causal past. The past is computed under the TENTATIVE
      // stable classification (epoch 0) — using the coarse relation here
      // would inflate the past with steps a stable query does not depend
      // on and certify queries the refined relation then reorders.
      fp.fd_epoch = 0;
      std::vector<int> past = clocks[static_cast<std::size_t>(p)];
      for (const StepX& si : steps) {
        if (si.pid == p) continue;  // program order is already in `past`
        if (!dependent(si.fp, si.visible, fp, visible)) continue;
        for (int q = 0; q < n; ++q) {
          past[static_cast<std::size_t>(q)] =
              std::max(past[static_cast<std::size_t>(q)],
                       si.clock[static_cast<std::size_t>(q)]);
        }
      }
      long long past_steps = 0;
      for (const int c : past) past_steps += c;
      if (past_steps < spec.fdctx.tau) fp.fd_epoch = kFdEpochUnstable;
    }

    // Vector-clock happens-before pass over the executed prefix, plus
    // Flanagan–Godefroid dynamic backtracking: for every earlier step
    // dependent with this one but not ordered before it by the prefix's
    // happens-before relation, the reversal is a genuine race — make the
    // pre-state of that step schedule this process too.
    const std::vector<int> pre_clock = clocks[static_cast<std::size_t>(p)];
    std::vector<int> now_clock = pre_clock;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const StepX& si = steps[i];
      if (si.pid == p) continue;  // program order is already in pre_clock
      if (!dependent(si.fp, si.visible, fp, visible)) continue;
      for (int q = 0; q < n; ++q) {
        now_clock[static_cast<std::size_t>(q)] =
            std::max(now_clock[static_cast<std::size_t>(q)],
                     si.clock[static_cast<std::size_t>(q)]);
      }
      if (!dpor) continue;
      if (pre_clock[static_cast<std::size_t>(si.pid)] >= si.proc_seq) {
        continue;  // si happens-before p's transition: order is forced
      }
      if (i < static_cast<std::size_t>(base)) {
        continue;  // prefix node: eagerly seeded, the addition is a no-op
      }
      Node& nj = path[i - static_cast<std::size_t>(base)];
      if (nj.enabled.contains(p)) {
        nj.to_explore.insert(p);
      } else {
        // p was not enabled there: conservatively schedule everything.
        nj.to_explore = nj.to_explore.unionWith(nj.enabled);
      }
    }
    now_clock[static_cast<std::size_t>(p)] += 1;
    {
      StepX st;
      st.pid = p;
      st.fp = fp;
      st.visible = visible;
      st.proc_seq = now_clock[static_cast<std::size_t>(p)];
      st.prev_clock = pre_clock;
      st.clock = now_clock;
      clocks[static_cast<std::size_t>(p)] = std::move(now_clock);
      steps.push_back(std::move(st));
    }

    const auto popStep = [&] {
      const StepX& in = steps.back();
      clocks[static_cast<std::size_t>(in.pid)] = in.prev_clock;
      steps.pop_back();
    };

    const bool all_done = run.scheduler().allCorrectDone();
    const bool blocked = !all_done && run.scheduler().runnable().empty();
    const bool too_deep =
        !all_done && !blocked && base + d + 1 >= cfg.max_depth;
    if (all_done || blocked || too_deep) {
      bool abort_search = false;
      if (too_deep) {
        res.complete = false;  // this branch was cut, not verified
      } else {
        abort_search = harvestTerminal(cur);
      }
      const StepX& in = steps.back();
      if (dpor) cur.sleep.push_back(SleepEnt{in.pid, in.fp, in.visible});
      popStep();
      if (abort_search) return out;
      if (res.schedules_explored >= cfg.max_schedules) {
        res.complete = false;
        return out;
      }
      continue;  // live state is past cur; next execute will restore
    }

    // Interior state at the frontier: capture a subtree job instead of
    // recursing, and account the subtree as explored (sleep entry at the
    // parent) — phase 2 explores it for real, in job-creation order.
    if (capture && d + 1 >= spec.capture_depth) {
      CapturedJob job;
      job.prefix.reserve(steps.size());
      for (const StepX& s : steps) job.prefix.push_back(s.pid);
      job.steps = steps;
      job.clocks = clocks;
      const StepX& in = steps.back();
      if (dpor) {
        for (const SleepEnt& se : cur.sleep) {
          if (!dependent(se.fp, se.visible, in.fp, in.visible)) {
            job.sleep.push_back(se);
          }
        }
        cur.sleep.push_back(SleepEnt{in.pid, in.fp, in.visible});
      }
      job.seq = out.units;
      ++out.units;
      out.jobs.push_back(std::move(job));
      popStep();
      continue;
    }

    // Interior state: answer from the memo (kDag) or push a child node.
    std::uint64_t digest = 0;
    if (use_memo) {
      digest = live_digest;
      if (audit && digest != fullStateDigest(run, n, /*audit_table=*/true)) {
        throw SimAbort(
            "explore: incremental state digest diverged from full recompute");
      }
      const auto hit = memo.find(digest);
      if (hit != memo.end()) {
        ++res.memo_hits;
        cur.sub_sigs.insert(hit->second.begin(), hit->second.end());
        popStep();
        continue;
      }
    }
    Node child;
    child.ckpt = run.checkpoint();
    child.enabled = run.scheduler().runnable();
    child.digest = digest;
    if (dpor) {
      const StepX& in = steps.back();
      for (const SleepEnt& se : cur.sleep) {
        // Wake sleepers dependent with the step just taken; the rest
        // remain covered by the subtrees explored from the ancestors.
        if (!dependent(se.fp, se.visible, in.fp, in.visible)) {
          child.sleep.push_back(se);
        }
      }
      seedDpor(child);
    } else {
      child.to_explore = child.enabled;
    }
    path.push_back(std::move(child));
  }

  if (use_memo) res.states_memoized = memo.size();
  return out;
}

// ---- Persistent exploration certificates ----------------------------------
//
// Certificates reuse the fabric CellResult envelope so PersistentStore
// (append-only, checksummed, version-stamped) needs no new record kind:
// counters travel in `metrics` (doubles are exact below 2^53, far above
// any budget), and verdict/counterexample/outcome signatures travel in a
// line-oriented `detail` blob with a magic first line. Invalidation is
// the store's version-in-filename rule — a schema bump below changes the
// magic AND the key salt, so stale records cold-miss, never wrong-hit.

constexpr char kCertMagicFull[] = "wfd-explore-v1";
constexpr char kCertMagicJob[] = "wfd-explore-job-v1";
constexpr std::uint64_t kCertSchemaSalt = 0xE7F1ECA5C3B2A191ULL;

std::string oneLine(std::string s) {
  std::replace(s.begin(), s.end(), '\n', ' ');
  return s;
}

std::string encodePids(const std::vector<Pid>& pids) {
  std::string s;
  for (const Pid p : pids) {
    if (!s.empty()) s += ' ';
    s += std::to_string(p);
  }
  return s;
}

std::string encodeSigs(const std::set<std::uint64_t>& sigs) {
  std::ostringstream os;
  bool first = true;
  for (const std::uint64_t sig : sigs) {
    if (!first) os << ' ';
    first = false;
    os << std::hex << sig;
  }
  return os.str();
}

std::vector<Pid> decodePids(const std::string& line) {
  std::vector<Pid> pids;
  std::istringstream is(line);
  int p = 0;
  while (is >> p) pids.push_back(p);
  return pids;
}

std::vector<std::uint64_t> decodeSigs(const std::string& line) {
  std::vector<std::uint64_t> sigs;
  std::istringstream is(line);
  is >> std::hex;
  std::uint64_t sig = 0;
  while (is >> sig) sigs.push_back(sig);
  return sigs;
}

std::vector<std::string> splitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(pos));
      break;
    }
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

double metricOr(const CellResult& c, const std::string& key, double dflt) {
  const auto it = c.metrics.find(key);
  return it == c.metrics.end() ? dflt : it->second;
}

// Digest of every field that determines an exploration's outcome, or 0
// when the config is uncacheable (the sim/report_cache.h rules: a family
// must name the opaque callables, the detector must be pinnable, audited
// runs are never answered from a store).
std::uint64_t certConfigKey(const ExploreConfig& cfg,
                            const std::vector<Value>& proposals) {
  if (cfg.certificates == nullptr || cfg.cert_family.empty()) return 0;
  if (resolvedAuditMode(cfg.run.audit).has_value()) return 0;
  std::uint64_t fd_digest = 0;
  if (cfg.run.fd) {
    fd_digest = cfg.run.fd->keyDigest();
    if (fd_digest == fd::kOpaqueFdDigest) return 0;
  }
  const int n = cfg.run.n_plus_1;
  std::uint64_t h = fd::mixDigest(kCertSchemaSalt, 0x45584C52ULL);  // "EXLR"
  h = fd::digestString(h, cfg.cert_family);
  h = fd::mixDigest(h, static_cast<std::uint64_t>(n));
  const FailurePattern fp =
      cfg.run.fp.has_value() ? *cfg.run.fp : FailurePattern::failureFree(n);
  h = fd::digestPattern(h, fp);
  h = fd::mixDigest(h, static_cast<std::uint64_t>(cfg.run.flavor));
  h = fd::mixDigest(h, static_cast<std::uint64_t>(cfg.run.max_steps));
  h = fd::mixDigest(h, cfg.run.fd ? 1u : 0u);
  h = fd::mixDigest(h, fd_digest);
  h = fd::mixDigest(h, proposals.size());
  for (const Value v : proposals) {
    h = fd::mixDigest(h, static_cast<std::uint64_t>(v));
  }
  h = fd::mixDigest(h, static_cast<std::uint64_t>(cfg.mode));
  h = fd::mixDigest(h, cfg.memoize ? 1u : 0u);
  h = fd::mixDigest(h, cfg.max_schedules);
  h = fd::mixDigest(h, static_cast<std::uint64_t>(cfg.max_depth));
  h = fd::mixDigest(h, cfg.stop_on_violation ? 1u : 0u);
  // The engine shape: classic and frontier runs count differently, and
  // the REQUESTED frontier depth pins the auto-deepening result.
  h = fd::mixDigest(h, cfg.jobs > 0 ? 1u : 0u);
  h = fd::mixDigest(h, static_cast<std::uint64_t>(cfg.frontier_depth));
  if (h == 0) h = 1;
  return h;
}

std::uint64_t certJobKey(std::uint64_t config_key, std::size_t job_index,
                         const CapturedJob& job) {
  if (config_key == 0) return 0;
  std::uint64_t h = fd::mixDigest(config_key, 0x6A09E667F3BCC909ULL);
  h = fd::mixDigest(h, job_index + 1);
  h = fd::mixDigest(h, job.prefix.size());
  for (const Pid p : job.prefix) {
    h = fd::mixDigest(h, static_cast<std::uint64_t>(p) + 1);
  }
  if (h == 0) h = 1;
  return h;
}

CellResult encodeFullCert(const ExploreResult& r) {
  CellResult c;
  c.detail = std::string(kCertMagicFull) + "\n" + oneLine(r.violation) + "\n" +
             encodePids(r.counterexample) + "\n" + encodeSigs(r.outcomeSigs());
  c.all_correct_done = true;
  c.steps = static_cast<Time>(r.steps_executed);
  auto& m = c.metrics;
  m["verdict"] = r.verdict == ExploreVerdict::kViolation ? 1 : 0;
  m["complete"] = r.complete ? 1 : 0;
  m["schedules_explored"] = static_cast<double>(r.schedules_explored);
  m["sleep_set_skips"] = static_cast<double>(r.sleep_set_skips);
  m["states_memoized"] = static_cast<double>(r.states_memoized);
  m["memo_hits"] = static_cast<double>(r.memo_hits);
  m["steps_executed"] = static_cast<double>(r.steps_executed);
  m["steps_replayed"] = static_cast<double>(r.steps_replayed);
  m["restores"] = static_cast<double>(r.restores);
  m["max_depth_seen"] = r.max_depth_seen;
  m["frontier_jobs"] = static_cast<double>(r.frontier_jobs);
  m["frontier_depth"] = r.frontier_depth;
  return c;
}

std::optional<ExploreResult> decodeFullCert(const CellResult& c) {
  const std::vector<std::string> lines = splitLines(c.detail);
  if (lines.size() < 4 || lines[0] != kCertMagicFull) return std::nullopt;
  ExploreResult r;
  r.from_cache = true;
  r.verdict = metricOr(c, "verdict", 0) != 0 ? ExploreVerdict::kViolation
                                             : ExploreVerdict::kVerified;
  r.violation = lines[1];
  r.counterexample = decodePids(lines[2]);
  for (const std::uint64_t sig : decodeSigs(lines[3])) {
    ExploreOutcome o;
    o.sig = sig;
    r.outcomes.emplace(sig, std::move(o));
  }
  r.complete = metricOr(c, "complete", 1) != 0;
  r.schedules_explored =
      static_cast<std::uint64_t>(metricOr(c, "schedules_explored", 0));
  r.sleep_set_skips =
      static_cast<std::uint64_t>(metricOr(c, "sleep_set_skips", 0));
  r.states_memoized =
      static_cast<std::uint64_t>(metricOr(c, "states_memoized", 0));
  r.memo_hits = static_cast<std::uint64_t>(metricOr(c, "memo_hits", 0));
  r.steps_executed =
      static_cast<std::uint64_t>(metricOr(c, "steps_executed", 0));
  r.steps_replayed =
      static_cast<std::uint64_t>(metricOr(c, "steps_replayed", 0));
  r.restores = static_cast<std::uint64_t>(metricOr(c, "restores", 0));
  r.max_depth_seen = static_cast<int>(metricOr(c, "max_depth_seen", 0));
  r.frontier_jobs = static_cast<std::uint64_t>(metricOr(c, "frontier_jobs", 0));
  r.frontier_depth = static_cast<int>(metricOr(c, "frontier_depth", 0));
  return r;
}

// ---- The parallel frontier ------------------------------------------------

// Everything phase 2 needs to know about one finished job: a pure
// function of the job (never of worker scheduling), so it can also be
// round-tripped through a per-job certificate.
struct JobOut {
  bool skipped = false;    // stop_on_violation fast-path; never merged
  bool cert_hit = false;
  bool cert_saved = false;
  bool violated = false;
  bool complete = true;
  std::string violation;
  std::vector<Pid> cx;  // full schedule (prefix + subtree)
  std::map<std::uint64_t, ExploreOutcome> outcomes;  // fresh runs
  std::vector<std::uint64_t> sigs;                   // certificate hits
  std::uint64_t schedules = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t memoized = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t exec = 0;
  std::uint64_t replayed = 0;
  std::uint64_t restores = 0;
  int max_depth = 0;
};

CellResult encodeJobCert(const JobOut& j) {
  CellResult c;
  c.detail = std::string(kCertMagicJob) + "\n" + oneLine(j.violation) + "\n" +
             encodePids(j.cx) + "\n";
  std::set<std::uint64_t> sigs;
  for (const auto& [sig, o] : j.outcomes) sigs.insert(sig);
  c.detail += encodeSigs(sigs);
  c.all_correct_done = true;
  c.steps = static_cast<Time>(j.exec);
  auto& m = c.metrics;
  m["violated"] = j.violated ? 1 : 0;
  m["complete"] = j.complete ? 1 : 0;
  m["schedules"] = static_cast<double>(j.schedules);
  m["sleeps"] = static_cast<double>(j.sleeps);
  m["memoized"] = static_cast<double>(j.memoized);
  m["memo_hits"] = static_cast<double>(j.memo_hits);
  m["exec"] = static_cast<double>(j.exec);
  m["replayed"] = static_cast<double>(j.replayed);
  m["restores"] = static_cast<double>(j.restores);
  m["max_depth"] = j.max_depth;
  return c;
}

std::optional<JobOut> decodeJobCert(const CellResult& c) {
  const std::vector<std::string> lines = splitLines(c.detail);
  if (lines.size() < 4 || lines[0] != kCertMagicJob) return std::nullopt;
  JobOut j;
  j.cert_hit = true;
  j.violated = metricOr(c, "violated", 0) != 0;
  j.complete = metricOr(c, "complete", 1) != 0;
  j.violation = lines[1];
  j.cx = decodePids(lines[2]);
  j.sigs = decodeSigs(lines[3]);
  j.schedules = static_cast<std::uint64_t>(metricOr(c, "schedules", 0));
  j.sleeps = static_cast<std::uint64_t>(metricOr(c, "sleeps", 0));
  j.memoized = static_cast<std::uint64_t>(metricOr(c, "memoized", 0));
  j.memo_hits = static_cast<std::uint64_t>(metricOr(c, "memo_hits", 0));
  j.exec = static_cast<std::uint64_t>(metricOr(c, "exec", 0));
  j.replayed = static_cast<std::uint64_t>(metricOr(c, "replayed", 0));
  j.restores = static_cast<std::uint64_t>(metricOr(c, "restores", 0));
  j.max_depth = static_cast<int>(metricOr(c, "max_depth", 0));
  return j;
}

JobOut jobOutFromWalk(WalkOut&& o) {
  JobOut j;
  j.violated = o.res.verdict == ExploreVerdict::kViolation;
  j.complete = o.res.complete;
  j.violation = std::move(o.res.violation);
  j.cx = std::move(o.res.counterexample);
  j.outcomes = std::move(o.res.outcomes);
  j.schedules = o.res.schedules_explored;
  j.sleeps = o.res.sleep_set_skips;
  j.memoized = o.res.states_memoized;
  j.memo_hits = o.res.memo_hits;
  j.exec = o.res.steps_executed;
  j.replayed = o.res.steps_replayed;
  j.restores = o.res.restores;
  j.max_depth = o.res.max_depth_seen;
  return j;
}

ExploreResult exploreFrontier(const ExploreConfig& cfg, const AlgoFn& algo,
                              const std::vector<Value>& proposals,
                              const FdEpochCtx& fdctx,
                              std::uint64_t cert_key) {
  const int n = std::max(2, cfg.run.n_plus_1);
  // Job-count target of the auto frontier depth. Deliberately NEVER a
  // function of cfg.jobs: the job set must be identical at every worker
  // count for the determinism contract to hold.
  constexpr int kTargetJobs = 256;
  constexpr int kMaxAutoDepth = 16;

  // Phase 1: serial coordinator. With an explicit frontier_depth, run it
  // once; in auto mode, deepen the frontier (re-running the cheap prefix
  // expansion from scratch, counters reset) until the tree yields enough
  // jobs to balance — a pure function of the search tree, not of timing.
  int F = cfg.frontier_depth;
  if (F <= 0) {
    F = 1;
    long long width = n;  // ~n^F frontier states
    while (width < kTargetJobs && F < kMaxAutoDepth) {
      ++F;
      width *= n;
    }
  }
  F = std::max(1, std::min(F, cfg.max_depth - 1));
  WalkSpec spec;
  spec.cfg = &cfg;
  spec.algo = &algo;
  spec.proposals = &proposals;
  spec.fdctx = fdctx;
  WalkOut ph1;
  for (;;) {
    spec.capture_depth = F;
    ph1 = walk(spec);
    if (cfg.frontier_depth > 0) break;  // explicit depth: no deepening
    if (!ph1.res.complete) break;       // phase-1 budget cut
    if (cfg.stop_on_violation &&
        ph1.res.verdict == ExploreVerdict::kViolation) {
      break;
    }
    if (ph1.jobs.empty()) break;  // tree exhausted above the frontier
    if (static_cast<int>(ph1.jobs.size()) >= kTargetJobs) break;
    if (F >= std::min(cfg.max_depth - 1, kMaxAutoDepth)) break;
    ++F;
  }

  ExploreResult res = std::move(ph1.res);
  res.frontier_depth = F;
  res.frontier_jobs = ph1.jobs.size();
  if (cfg.stop_on_violation && res.verdict == ExploreVerdict::kViolation) {
    // A phase-1 terminal violated: the serial prefix expansion found it
    // before any job existed in DFS order, so the whole search stops
    // here — no job runs, at any worker count.
    return res;
  }
  const std::vector<CapturedJob>& jobs = ph1.jobs;
  if (jobs.empty()) return res;

  // Phase 2: the job fleet. Results land in job-index slots; scheduling
  // (steal or static, any worker count) never touches anything merged.
  const int workers = std::max(1, cfg.jobs);
  res.jobs_used = std::min<int>(workers, static_cast<int>(jobs.size()));
  std::vector<JobOut> jouts(jobs.size());
  std::atomic<std::size_t> min_violating{
      std::numeric_limits<std::size_t>::max()};
  std::mutex err_mu;
  std::exception_ptr first_err;
  std::size_t first_err_job = std::numeric_limits<std::size_t>::max();

  const auto body = [&](std::size_t j, int /*worker*/) {
    if (cfg.stop_on_violation &&
        j > min_violating.load(std::memory_order_relaxed)) {
      // A lower-index job already violated: j can never be merged.
      jouts[j].skipped = true;
      return;
    }
    try {
      const std::uint64_t jkey = certJobKey(cert_key, j, jobs[j]);
      std::optional<JobOut> cached;
      if (jkey != 0) {
        if (const auto hit = cfg.certificates->load(jkey)) {
          cached = decodeJobCert(*hit);
        }
      }
      if (cached.has_value()) {
        jouts[j] = std::move(*cached);
      } else {
        WalkSpec ws;
        ws.cfg = &cfg;
        ws.algo = &algo;
        ws.proposals = &proposals;
        ws.fdctx = fdctx;
        ws.job = &jobs[j];
        JobOut out = jobOutFromWalk(walk(ws));
        if (jkey != 0) {
          cfg.certificates->save(jkey, encodeJobCert(out));
          out.cert_saved = true;
        }
        jouts[j] = std::move(out);
      }
      if (jouts[j].violated && cfg.stop_on_violation) {
        std::size_t cur = min_violating.load(std::memory_order_relaxed);
        while (j < cur && !min_violating.compare_exchange_weak(
                              cur, j, std::memory_order_relaxed)) {
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lk(err_mu);
      if (j < first_err_job) {
        first_err_job = j;
        first_err = std::current_exception();
      }
    }
  };

  if (cfg.steal) {
    const ExplorePool::Stats st =
        ExplorePool::run(jobs.size(), workers, body);
    res.steal_ops = st.steal_ops;
  } else {
    const int w = res.jobs_used;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(w));
    for (int k = 0; k < w; ++k) {
      const std::size_t lo = jobs.size() * static_cast<std::size_t>(k) /
                             static_cast<std::size_t>(w);
      const std::size_t hi = jobs.size() * static_cast<std::size_t>(k + 1) /
                             static_cast<std::size_t>(w);
      threads.emplace_back([&body, lo, hi, k] {
        for (std::size_t i = lo; i < hi; ++i) body(i, k);
      });
    }
    for (auto& t : threads) t.join();
  }
  if (first_err) std::rethrow_exception(first_err);

  // Deterministic merge, in job-index (= DFS) order. Under
  // stop_on_violation only jobs up to the LOWEST violating index are
  // merged: a speculatively-completed higher job must not leak into any
  // counter, or jobs=N would differ from jobs=1.
  std::size_t cutoff = jobs.size();
  if (cfg.stop_on_violation) {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!jouts[j].skipped && jouts[j].violated) {
        cutoff = j + 1;
        break;
      }
    }
  }
  std::uint64_t first_job_violation = kNoSeq;
  std::size_t first_job_violation_idx = 0;
  for (std::size_t j = 0; j < cutoff; ++j) {
    const JobOut& jo = jouts[j];
    assert(!jo.skipped);
    res.schedules_explored += jo.schedules;
    res.sleep_set_skips += jo.sleeps;
    res.states_memoized += jo.memoized;
    res.memo_hits += jo.memo_hits;
    res.steps_executed += jo.exec;
    res.steps_replayed += jo.replayed;
    res.restores += jo.restores;
    res.max_depth_seen = std::max(res.max_depth_seen, jo.max_depth);
    res.complete = res.complete && jo.complete;
    if (jo.cert_hit) ++res.cert_job_hits;
    if (jo.cert_saved) ++res.cert_saves;
    for (const auto& [sig, o] : jo.outcomes) res.outcomes.emplace(sig, o);
    for (const std::uint64_t sig : jo.sigs) {
      ExploreOutcome o;
      o.sig = sig;
      res.outcomes.emplace(sig, std::move(o));
    }
    if (jo.violated && first_job_violation == kNoSeq) {
      first_job_violation = jobs[j].seq;
      first_job_violation_idx = j;
    }
  }
  // Deterministic load profile: list-schedule the merged jobs' step costs
  // (job-index order, least-loaded worker first) instead of sampling the
  // racy actual placement, so stepMakespan() is bit-stable across runs
  // and steal timing. Job costs come from JobOut.exec (prefix replay
  // included), which certificates preserve — warm runs report the same
  // profile the cold run earned.
  res.worker_steps.assign(static_cast<std::size_t>(workers), 0);
  for (std::size_t j = 0; j < cutoff; ++j) {
    auto it = std::min_element(res.worker_steps.begin(),
                               res.worker_steps.end());
    *it += static_cast<long long>(jouts[j].exec);
  }
  // First-violation selection across phase 1 and the fleet: the DFS unit
  // order interleaves phase-1 terminals and job creations, so comparing
  // sequence numbers picks the violation the classic lazy engine's DFS
  // order reaches first among those explored.
  if (first_job_violation != kNoSeq && first_job_violation < ph1.violation_seq) {
    const JobOut& jo = jouts[first_job_violation_idx];
    res.verdict = ExploreVerdict::kViolation;
    res.violation = jo.violation;
    res.counterexample = jo.cx;
  }
  return res;
}

}  // namespace

long long ExploreResult::stepMakespan() const {
  long long m = 0;
  for (const long long s : worker_steps) m = std::max(m, s);
  return m;
}

double ExploreResult::stepUtilization() const {
  const long long makespan = stepMakespan();
  if (makespan <= 0 || worker_steps.empty()) return 0.0;
  long long total = 0;
  for (const long long s : worker_steps) total += s;
  return static_cast<double>(total) /
         (static_cast<double>(makespan) *
          static_cast<double>(worker_steps.size()));
}

std::set<std::uint64_t> ExploreResult::outcomeSigs() const {
  std::set<std::uint64_t> sigs;
  for (const auto& [sig, o] : outcomes) sigs.insert(sig);
  return sigs;
}

std::string ExploreResult::counterexampleString() const {
  std::string s;
  for (const Pid p : counterexample) {
    if (!s.empty()) s += ' ';
    s += 'p';
    s += std::to_string(p + 1);
  }
  return s;
}

ExploreResult explore(const ExploreConfig& cfg, const AlgoFn& algo,
                      const std::vector<Value>& proposals) {
  const int n = cfg.run.n_plus_1;
  const bool dpor = cfg.mode == ExploreMode::kDpor;

  if (dpor) {
    // Commutation of adjacent independent steps assumes swapping them
    // changes neither step's behavior. A time-triggered crash breaks
    // that: the swap moves a step across a crash time, changing which
    // processes are enabled. kDag has no such assumption.
    const FailurePattern fp =
        cfg.run.fp.has_value() ? *cfg.run.fp : FailurePattern::failureFree(n);
    for (Pid p = 0; p < n; ++p) {
      if (fp.crashTime(p) != kNeverCrashes) {
        throw SimAbort(
            "explore: kDpor requires a failure-free pattern (crashes break "
            "step commutation); use ExploreMode::kDag for this pattern");
      }
    }
  }

  FdEpochCtx fdctx;
  if (dpor && cfg.run.fd) {
    const Time tau = cfg.run.fd->stabilizationTime();
    if (cfg.run.fd->keyDigest() != fd::kOpaqueFdDigest &&
        tau != kNeverCrashes) {
      fdctx.enabled = true;
      fdctx.tau = tau;
    }
  }

  const std::uint64_t cert_key = certConfigKey(cfg, proposals);
  if (cert_key != 0) {
    if (const auto hit = cfg.certificates->load(cert_key)) {
      if (auto cached = decodeFullCert(*hit)) return std::move(*cached);
    }
  }

  ExploreResult res;
  if (cfg.jobs <= 0) {
    WalkSpec spec;
    spec.cfg = &cfg;
    spec.algo = &algo;
    spec.proposals = &proposals;
    spec.fdctx = fdctx;
    res = std::move(walk(spec).res);
  } else {
    res = exploreFrontier(cfg, algo, proposals, fdctx, cert_key);
  }

  // Only COMPLETE searches become whole-config certificates: a budget-cut
  // result is a partial answer whose per-job records (frontier mode)
  // already let the next identical run resume past the finished jobs.
  if (cert_key != 0 && res.complete) {
    cfg.certificates->save(cert_key, encodeFullCert(res));
    ++res.cert_saves;
  }
  return res;
}

}  // namespace wfd::sim
