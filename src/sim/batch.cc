#include "sim/batch.h"

#include <atomic>
#include <memory>
#include <thread>
#include <tuple>

#include "fd/omega.h"
#include "fd/upsilon.h"

namespace wfd::sim {

namespace {

std::unique_ptr<SchedulePolicy> makePolicy(PolicyKind kind) {
  if (kind == PolicyKind::kRoundRobin) {
    return std::make_unique<RoundRobinPolicy>();
  }
  return std::make_unique<RandomPolicy>();
}

void harvest(CellResult& out, RunVerdict verdict, std::string detail,
             Time steps, const RunResult& result) {
  out.verdict = verdict;
  out.detail = std::move(detail);
  out.steps = steps;
  out.all_correct_done = result.all_correct_done;
  out.decisions = result.decisions;
  out.distinct_decisions = result.distinctDecisions();
  out.trace_hash = result.trace().hash64();
}

}  // namespace

int resolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

CellResult runCell(const BatchCell& cell, std::size_t index) {
  CellResult out;
  out.index = index;
  try {
    if (cell.chaos.has_value() || cell.watchdog.has_value()) {
      const WatchdogConfig wd = cell.watchdog.value_or(WatchdogConfig{});
      RunReport rep;
      if (cell.chaos.has_value()) {
        rep = runChaosTask(cell.cfg, *cell.chaos, wd, cell.algo,
                           cell.proposals);
      } else {
        // Watched but chaos-free: driveWatched draws from the run's own
        // policy RNG, so this replays Scheduler::run's exact schedule.
        Run run(cell.cfg, cell.algo, cell.proposals);
        const auto policy = makePolicy(cell.cfg.policy);
        rep = driveWatched(run, *policy, wd, nullptr);
      }
      harvest(out, rep.verdict, rep.detail, rep.steps, rep.result);
      if (cell.post) cell.post(rep, out);
    } else {
      RunReport rep;  // plain path still hands the post-hook a RunReport
      rep.result = runTask(cell.cfg, cell.algo, cell.proposals);
      rep.steps = rep.result.steps;
      harvest(out, RunVerdict::kOk, "", rep.steps, rep.result);
      if (cell.post) cell.post(rep, out);
    }
  } catch (const std::exception& e) {
    // One failing cell must not take down the batch: surface a structured
    // error in this slot and let the other workers finish.
    out = CellResult{};
    out.index = index;
    out.error = true;
    out.detail = e.what();
  }
  return out;
}

BatchRunner::BatchRunner(BatchOptions opts) : jobs_(resolveJobs(opts.jobs)) {}

std::vector<CellResult> BatchRunner::run(std::size_t count,
                                         const CellGen& make) const {
  std::vector<CellResult> results(count);
  if (count == 0) return results;
  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(jobs_), count));
  // Each slot of `results` is written by exactly one worker and read only
  // after the pool joins; the atomic cursor is the only cross-thread
  // coordination the whole batch needs.
  auto work = [&](std::size_t i) {
    try {
      results[i] = runCell(make(i), i);
    } catch (const std::exception& e) {  // generator itself threw
      results[i].index = i;
      results[i].error = true;
      results[i].detail = e.what();
    }
  };
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < count;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          work(i);
        }
      });
    }
  }  // jthread joins here: all results are published before we return
  return results;
}

std::vector<CellResult> BatchRunner::run(
    const std::vector<BatchCell>& cells) const {
  return run(cells.size(),
             [&cells](std::size_t i) { return cells[i]; });
}

std::vector<CellResult> driveWatchedBatch(const std::vector<BatchCell>& cells,
                                          const BatchOptions& opts) {
  const BatchRunner runner(opts);
  return runner.run(cells.size(), [&cells](std::size_t i) {
    BatchCell cell = cells[i];
    if (!cell.chaos.has_value() && !cell.watchdog.has_value()) {
      cell.watchdog = WatchdogConfig{};
    }
    return cell;
  });
}

// ---- FdCache -------------------------------------------------------------

bool FdCache::Key::operator<(const Key& o) const {
  return std::tie(family, crash_at, param, stab, seed) <
         std::tie(o.family, o.crash_at, o.param, o.stab, o.seed);
}

FdCache::Key FdCache::makeKey(int family, const FailurePattern& fp, int param,
                              Time stab, std::uint64_t seed) {
  Key k;
  k.family = family;
  k.crash_at.reserve(static_cast<std::size_t>(fp.nProcs()));
  for (Pid p = 0; p < fp.nProcs(); ++p) k.crash_at.push_back(fp.crashTime(p));
  k.param = param;
  k.stab = stab;
  k.seed = seed;
  return k;
}

fd::FdPtr FdCache::getOrBuild(Key key, const std::function<fd::FdPtr()>& build) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: construction may be arbitrarily expensive and
  // a duplicate build is harmless (the factories are pure, so both
  // products are the same history; first insert wins).
  fd::FdPtr built = build();
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = cache_.emplace(std::move(key), std::move(built));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;
  }
  return it->second;
}

fd::FdPtr FdCache::upsilon(const FailurePattern& fp, Time stab,
                           std::uint64_t seed) {
  return getOrBuild(makeKey(0, fp, 0, stab, seed),
                    [&] { return fd::makeUpsilon(fp, stab, seed); });
}

fd::FdPtr FdCache::upsilonF(const FailurePattern& fp, int f, Time stab,
                            std::uint64_t seed) {
  return getOrBuild(makeKey(1, fp, f, stab, seed),
                    [&] { return fd::makeUpsilonF(fp, f, stab, seed); });
}

fd::FdPtr FdCache::omega(const FailurePattern& fp, Time stab,
                         std::uint64_t seed) {
  return getOrBuild(makeKey(2, fp, 0, stab, seed),
                    [&] { return fd::makeOmega(fp, stab, seed); });
}

fd::FdPtr FdCache::omegaK(const FailurePattern& fp, int k, Time stab,
                          std::uint64_t seed) {
  return getOrBuild(makeKey(3, fp, k, stab, seed),
                    [&] { return fd::makeOmegaK(fp, k, stab, seed); });
}

std::size_t FdCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t FdCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t FdCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace wfd::sim
