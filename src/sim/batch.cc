#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <tuple>

#include "fd/omega.h"
#include "fd/upsilon.h"
#include "sim/service/service.h"
#include "sim/report_cache.h"

namespace wfd::sim {

namespace {

// Host-side worker busy-time measurement, not simulation state.
using Clock = std::chrono::steady_clock;  // model-lint-allow: host timing

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::unique_ptr<SchedulePolicy> makePolicy(PolicyKind kind) {
  if (kind == PolicyKind::kRoundRobin) {
    return std::make_unique<RoundRobinPolicy>();
  }
  return std::make_unique<RandomPolicy>();
}

void harvest(CellResult& out, RunVerdict verdict, std::string detail,
             Time steps, const RunResult& result) {
  out.verdict = verdict;
  out.detail = std::move(detail);
  out.steps = steps;
  out.all_correct_done = result.all_correct_done;
  out.decisions = result.decisions;
  out.distinct_decisions = result.distinctDecisions();
  out.trace_hash = result.trace().hash64();
}

// Per-worker queue of submission indices. The owner pops the FRONT; a
// thief takes the BACK half in one locked operation (steal-half amortizes
// the lock and scan cost over many cells, and taking from the tail keeps
// the owner on its cache-warm prefix). Cells are whole simulation runs —
// milliseconds to seconds each — so a plain mutex per deque costs nothing
// measurable against the work it guards.
class StealDeque {
 public:
  // Seed with the contiguous block [begin, end) of the submission order.
  // Called before the pool starts; no lock needed, kept locked anyway so
  // the class has one invariant instead of a usage protocol.
  void seed(std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = begin; i < end; ++i) q_.push_back(i);
  }

  std::optional<std::size_t> popFront() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return std::nullopt;
    const std::size_t i = q_.front();
    q_.pop_front();
    return i;
  }

  void pushBack(const std::vector<std::size_t>& items) {
    const std::lock_guard<std::mutex> lock(mu_);
    q_.insert(q_.end(), items.begin(), items.end());
  }

  // Remove and return the back half (rounded up) of the remaining cells;
  // empty when there is nothing to steal.
  std::vector<std::size_t> stealHalf() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return {};
    const auto take = static_cast<std::ptrdiff_t>((q_.size() + 1) / 2);
    std::vector<std::size_t> out(q_.end() - take, q_.end());
    q_.erase(q_.end() - take, q_.end());
    return out;
  }

 private:
  std::mutex mu_;
  std::deque<std::size_t> q_;
};

}  // namespace

double BatchStats::utilization() const {
  if (wall_s <= 0 || busy_s.empty()) return 0;
  double sum = 0;
  for (const double b : busy_s) sum += b;
  return sum / (wall_s * static_cast<double>(busy_s.size()));
}

long long BatchStats::stepMakespan() const {
  long long makespan = 0;
  for (const long long s : steps_run) makespan = std::max(makespan, s);
  return makespan;
}

double BatchStats::stepUtilization() const {
  const long long makespan = stepMakespan();
  if (makespan <= 0 || steps_run.empty()) return 0;
  long long total = 0;
  for (const long long s : steps_run) total += s;
  return static_cast<double>(total) /
         (static_cast<double>(makespan) *
          static_cast<double>(steps_run.size()));
}

int resolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

CellResult runCell(const BatchCell& cell, std::size_t index) {
  CellResult out;
  out.index = index;
  try {
    if (cell.service.has_value()) {
      // A service cell is self-contained: the stream builds its own inner
      // runs (and chaos engines) from the config alone.
      return service::runServiceCell(*cell.service, index);
    }
    if (cell.chaos.has_value() || cell.watchdog.has_value()) {
      const WatchdogConfig wd = cell.watchdog.value_or(WatchdogConfig{});
      RunReport rep;
      if (cell.chaos.has_value()) {
        // Chaos drives cfg.policy internally; an explicit policy_factory
        // is a plain/watched feature and is ignored here.
        rep = runChaosTask(cell.cfg, *cell.chaos, wd, cell.algo,
                           cell.proposals);
      } else {
        // Watched but chaos-free: driveWatched draws from the run's own
        // policy RNG, so this replays Scheduler::run's exact schedule.
        Run run(cell.cfg, cell.algo, cell.proposals);
        const auto policy = cell.policy_factory ? cell.policy_factory()
                                                : makePolicy(cell.cfg.policy);
        rep = driveWatched(run, *policy, wd, nullptr);
      }
      harvest(out, rep.verdict, rep.detail, rep.steps, rep.result);
      if (cell.post) cell.post(rep, out);
    } else {
      RunReport rep;  // plain path still hands the post-hook a RunReport
      if (cell.policy_factory) {
        // Mirrors runTask with the cell's own policy in place of
        // cfg.policy — how a batch expresses eventually-synchronous or
        // scripted schedules.
        Run run(cell.cfg, cell.algo, cell.proposals);
        const auto policy = cell.policy_factory();
        const Time taken = run.scheduler().run(*policy, cell.cfg.max_steps);
        rep.result = run.finish(taken);
      } else {
        rep.result = runTask(cell.cfg, cell.algo, cell.proposals);
      }
      rep.steps = rep.result.steps;
      harvest(out, RunVerdict::kOk, "", rep.steps, rep.result);
      if (cell.post) cell.post(rep, out);
    }
  } catch (const std::exception& e) {
    // One failing cell must not take down the batch: surface a structured
    // error in this slot and let the other workers finish.
    out = CellResult{};
    out.index = index;
    out.error = true;
    out.detail = e.what();
  }
  return out;
}

BatchRunner::BatchRunner(BatchOptions opts) : opts_(opts) {
  opts_.jobs = resolveJobs(opts_.jobs);
}

std::vector<CellResult> BatchRunner::run(std::size_t count,
                                         const CellGen& make,
                                         BatchStats* stats) const {
  std::vector<CellResult> results(count);
  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(opts_.jobs), count));
  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->jobs = opts_.jobs;
    stats->steal = opts_.steal;
    stats->cells = count;
  }
  if (count == 0) return results;

  std::atomic<std::size_t> steal_ops{0};
  std::atomic<std::size_t> stolen_cells{0};
  std::atomic<std::size_t> memo_hits{0};
  std::atomic<std::size_t> memo_misses{0};

  // Each slot of `results` is written by exactly one worker and read only
  // after the pool joins; an index lives in exactly one deque at any
  // moment, so no cell ever runs twice.
  auto exec = [&](std::size_t i) {
    try {
      const BatchCell cell = make(i);
      if (opts_.memo != nullptr) {
        if (const std::optional<std::uint64_t> key = cellKey(cell);
            key.has_value()) {
          if (std::optional<CellResult> hit = opts_.memo->lookup(*key, i);
              hit.has_value()) {
            memo_hits.fetch_add(1, std::memory_order_relaxed);
            results[i] = std::move(*hit);
            return;
          }
          CellResult fresh = runCell(cell, i);
          memo_misses.fetch_add(1, std::memory_order_relaxed);
          if (!fresh.error) opts_.memo->insert(*key, fresh);
          results[i] = std::move(fresh);
          return;
        }
      }
      results[i] = runCell(cell, i);
    } catch (const std::exception& e) {  // generator itself threw
      results[i] = CellResult{};
      results[i].index = i;
      results[i].error = true;
      results[i].detail = e.what();
    }
  };

  const auto wall0 = Clock::now();
  std::vector<std::size_t> executed(static_cast<std::size_t>(workers), 0);
  std::vector<long long> steps_run(static_cast<std::size_t>(workers), 0);
  std::vector<double> busy(static_cast<std::size_t>(workers), 0.0);

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      exec(i);
      steps_run[0] += results[i].steps;
    }
    executed[0] = count;
    busy[0] = secondsSince(wall0);
  } else {
    // Contiguous-block distribution: worker w starts with submission
    // indices [count*w/W, count*(w+1)/W). With steal=false this IS the
    // whole schedule (static sharding — the baseline BENCH_batch.json
    // measures against); with steal=true it is only where cells start.
    std::vector<StealDeque> deques(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      const auto uw = static_cast<std::size_t>(w);
      deques[uw].seed(count * uw / static_cast<std::size_t>(workers),
                      count * (uw + 1) / static_cast<std::size_t>(workers));
    }
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        const auto uw = static_cast<std::size_t>(w);
        StealDeque& own = deques[uw];
        while (true) {
          const std::optional<std::size_t> idx = own.popFront();
          if (!idx.has_value()) {
            if (!opts_.steal) break;
            // Victim scan from the right neighbour. Cells never spawn
            // cells, so a full failed scan means this worker is done: any
            // cell it missed (a victim completing a steal mid-scan) is in
            // exactly one other worker's deque, and THAT worker drains
            // its own deque before exiting.
            bool refilled = false;
            for (int off = 1; off < workers; ++off) {
              const auto victim =
                  static_cast<std::size_t>((w + off) % workers);
              const std::vector<std::size_t> loot = deques[victim].stealHalf();
              if (!loot.empty()) {
                steal_ops.fetch_add(1, std::memory_order_relaxed);
                stolen_cells.fetch_add(loot.size(),
                                       std::memory_order_relaxed);
                own.pushBack(loot);
                refilled = true;
                break;
              }
            }
            if (!refilled) break;
            continue;
          }
          const auto t0 = Clock::now();
          exec(*idx);
          busy[uw] += secondsSince(t0);
          steps_run[uw] += results[*idx].steps;
          ++executed[uw];
        }
      });
    }
    pool.clear();  // join: all results are published before we return
  }

  if (stats != nullptr) {
    stats->steal_ops = steal_ops.load(std::memory_order_relaxed);
    stats->stolen_cells = stolen_cells.load(std::memory_order_relaxed);
    stats->memo_hits = memo_hits.load(std::memory_order_relaxed);
    stats->memo_misses = memo_misses.load(std::memory_order_relaxed);
    stats->executed = std::move(executed);
    stats->steps_run = std::move(steps_run);
    stats->busy_s = std::move(busy);
    stats->wall_s = secondsSince(wall0);
  }
  return results;
}

std::vector<CellResult> BatchRunner::run(const std::vector<BatchCell>& cells,
                                         BatchStats* stats) const {
  return run(cells.size(), [&cells](std::size_t i) { return cells[i]; },
             stats);
}

std::vector<CellResult> driveWatchedBatch(const std::vector<BatchCell>& cells,
                                          const BatchOptions& opts,
                                          BatchStats* stats) {
  const BatchRunner runner(opts);
  return runner.run(
      cells.size(),
      [&cells](std::size_t i) {
        BatchCell cell = cells[i];
        if (!cell.chaos.has_value() && !cell.watchdog.has_value()) {
          cell.watchdog = WatchdogConfig{};
        }
        return cell;
      },
      stats);
}

// ---- FdCache -------------------------------------------------------------

bool FdCache::Key::operator<(const Key& o) const {
  return std::tie(family, crash_at, param, stab, seed) <
         std::tie(o.family, o.crash_at, o.param, o.stab, o.seed);
}

FdCache::Key FdCache::makeKey(int family, const FailurePattern& fp, int param,
                              Time stab, std::uint64_t seed) {
  Key k;
  k.family = family;
  k.crash_at.reserve(static_cast<std::size_t>(fp.nProcs()));
  for (Pid p = 0; p < fp.nProcs(); ++p) k.crash_at.push_back(fp.crashTime(p));
  k.param = param;
  k.stab = stab;
  k.seed = seed;
  return k;
}

fd::FdPtr FdCache::getOrBuild(Key key, const std::function<fd::FdPtr()>& build) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: construction may be arbitrarily expensive and
  // a duplicate build is harmless (the factories are pure, so both
  // products are the same history; first insert wins).
  fd::FdPtr built = build();
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = cache_.emplace(std::move(key), std::move(built));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;
  }
  return it->second;
}

fd::FdPtr FdCache::upsilon(const FailurePattern& fp, Time stab,
                           std::uint64_t seed) {
  return getOrBuild(makeKey(0, fp, 0, stab, seed),
                    [&] { return fd::makeUpsilon(fp, stab, seed); });
}

fd::FdPtr FdCache::upsilonF(const FailurePattern& fp, int f, Time stab,
                            std::uint64_t seed) {
  return getOrBuild(makeKey(1, fp, f, stab, seed),
                    [&] { return fd::makeUpsilonF(fp, f, stab, seed); });
}

fd::FdPtr FdCache::omega(const FailurePattern& fp, Time stab,
                         std::uint64_t seed) {
  return getOrBuild(makeKey(2, fp, 0, stab, seed),
                    [&] { return fd::makeOmega(fp, stab, seed); });
}

fd::FdPtr FdCache::omegaK(const FailurePattern& fp, int k, Time stab,
                          std::uint64_t seed) {
  return getOrBuild(makeKey(3, fp, k, stab, seed),
                    [&] { return fd::makeOmegaK(fp, k, stab, seed); });
}

net::NetHistoryPtr FdCache::netHistory(const FailurePattern& fp,
                                       const net::NetConfig& cfg) {
  Key key = makeKey(7, fp, 0, 0, cfg.digest());
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = net_cache_.find(key);
    if (it != net_cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Simulate outside the lock — the expensive part; duplicate builds are
  // identical (the substrate is seed-deterministic), first insert wins.
  net::NetHistoryPtr built = net::simulateHeartbeats(fp, cfg);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = net_cache_.emplace(std::move(key), std::move(built));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;
  }
  return it->second;
}

fd::FdPtr FdCache::netEventuallyPerfect(const FailurePattern& fp,
                                        const net::NetConfig& cfg) {
  return getOrBuild(makeKey(4, fp, 0, 0, cfg.digest()), [&] {
    return net::makeRealizedEventuallyPerfect(netHistory(fp, cfg));
  });
}

fd::FdPtr FdCache::netOmega(const FailurePattern& fp,
                            const net::NetConfig& cfg) {
  return getOrBuild(makeKey(5, fp, 0, 0, cfg.digest()),
                    [&] { return net::makeRealizedOmega(netHistory(fp, cfg)); });
}

fd::FdPtr FdCache::netUpsilonF(const FailurePattern& fp, int f,
                               const net::NetConfig& cfg) {
  return getOrBuild(makeKey(6, fp, f, 0, cfg.digest()), [&] {
    return net::makeRealizedUpsilon(netHistory(fp, cfg), f);
  });
}

std::size_t FdCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t FdCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t FdCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace wfd::sim
