// Atomic operations a process can perform in one step.
//
// Matches the paper's step definition (Sect. 3.3): in each step a process
// either invokes one operation on one shared object, or queries its
// failure detector module. OpNoop models a pure local step (used by
// reductions that must "take a step" without touching memory).
#pragma once

#include <variant>
#include <vector>

#include "common/reg_val.h"
#include "common/types.h"

namespace wfd::sim {

using wfd::ObjId;
using wfd::Pid;
using wfd::RegVal;
using wfd::Time;

struct OpRead {
  ObjId obj;
};
struct OpWrite {
  ObjId obj;
  RegVal val;
};
struct OpSnapUpdate {
  ObjId obj;
  int slot;
  RegVal val;
};
struct OpSnapScan {
  ObjId obj;
};
struct OpFdQuery {};
struct OpNoop {};
// One-shot consensus base object: the first proposal wins; every
// propose() returns the winner. The object enforces its port limit (an
// m-process consensus object accepts proposals from at most m distinct
// processes) — the resource the boosting question of Corollary 4 is
// about.
struct OpConsPropose {
  ObjId obj;
  RegVal val;
};

using Op = std::variant<OpRead, OpWrite, OpSnapUpdate, OpSnapScan, OpFdQuery,
                        OpNoop, OpConsPropose>;

struct OpResult {
  RegVal scalar;                  // read result / FD output
  std::vector<RegVal> snapshot;   // scan result
};

}  // namespace wfd::sim
