// Atomic operations a process can perform in one step.
//
// Matches the paper's step definition (Sect. 3.3): in each step a process
// either invokes one operation on one shared object, or queries its
// failure detector module. OpNoop models a pure local step (used by
// reductions that must "take a step" without touching memory).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/reg_val.h"
#include "common/types.h"

namespace wfd::sim {

using wfd::ObjId;
using wfd::Pid;
using wfd::RegVal;
using wfd::Time;

struct OpRead {
  ObjId obj;
};
struct OpWrite {
  ObjId obj;
  RegVal val;
};
struct OpSnapUpdate {
  ObjId obj;
  int slot;
  RegVal val;
};
struct OpSnapScan {
  ObjId obj;
};
struct OpFdQuery {};
struct OpNoop {};
// One-shot consensus base object: the first proposal wins; every
// propose() returns the winner. The object enforces its port limit (an
// m-process consensus object accepts proposals from at most m distinct
// processes) — the resource the boosting question of Corollary 4 is
// about.
struct OpConsPropose {
  ObjId obj;
  RegVal val;
};

using Op = std::variant<OpRead, OpWrite, OpSnapUpdate, OpSnapScan, OpFdQuery,
                        OpNoop, OpConsPropose>;

struct OpResult {
  RegVal scalar;                  // read result / FD output
  std::vector<RegVal> snapshot;   // scan result
};

// ---- Step footprints (sim/explore.h) --------------------------------------
//
// A footprint is the commutativity-relevant abstraction of one executed
// operation: which object it touched and how. The schedule explorer derives
// its independence relation from footprints; World records the footprint of
// every executed op so the explorer never re-parses the Op variant.

enum class OpClass : std::uint8_t {
  kNone,     // OpNoop: a pure local step, commutes with everything
  kRead,     // register read
  kWrite,    // register write
  kScan,     // snapshot scan
  kUpdate,   // snapshot update (slot-disjoint updates commute)
  kPropose,  // consensus proposal (first wins: never commutes on one object)
  kFdQuery,  // FD answers are functions of global time; see fd_epoch below
};

// FD stability-epoch classification of one executed query (kFdQuery only).
// kFdEpochUnstable means "no stability interval could be certified for
// this query": its answer may depend on the exact global time of the
// querying step, so it stays dependent with everything — the original,
// conservative relation. A non-negative epoch asserts the query's answer
// is CONSTANT over every global time the step can occupy within its
// Mazurkiewicz trace class (today the only certified interval is epoch 0,
// the post-stabilizationTime() tail, where the online axiom checker
// already enforces H(p, t) = H(q, t') for all t, t' >= tau). The explorer
// fills this in from the detector's metadata plus the step's causal past;
// World::execute always reports kFdEpochUnstable.
inline constexpr int kFdEpochUnstable = -1;

struct OpFootprint {
  OpClass cls = OpClass::kNone;
  ObjId obj = -1;
  int slot = -1;      // OpSnapUpdate only
  int fd_epoch = kFdEpochUnstable;  // OpFdQuery only
};

[[nodiscard]] inline OpFootprint footprintOf(const Op& op) {
  if (const auto* r = std::get_if<OpRead>(&op)) {
    return {OpClass::kRead, r->obj, -1};
  }
  if (const auto* w = std::get_if<OpWrite>(&op)) {
    return {OpClass::kWrite, w->obj, -1};
  }
  if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    return {OpClass::kUpdate, u->obj, u->slot};
  }
  if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    return {OpClass::kScan, s->obj, -1};
  }
  if (std::holds_alternative<OpFdQuery>(op)) {
    return {OpClass::kFdQuery, -1, -1};
  }
  if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    return {OpClass::kPropose, c->obj, -1};
  }
  return {OpClass::kNone, -1, -1};  // OpNoop
}

// The independence relation (DESIGN.md / docs/EXPLORE.md): two steps commute
// iff swapping adjacent occurrences cannot change either step's result or
// the resulting memory state. Conservative on purpose — anything not proven
// independent is treated as dependent.
[[nodiscard]] inline bool footprintsCommute(const OpFootprint& a,
                                            const OpFootprint& b) {
  // FD answers depend on the global clock position of the querying step,
  // and every step advances the clock: an UNSTABLE query (fd_epoch < 0)
  // never reorders across anything. A query certified inside a stability
  // interval answers a constant of that interval, touches no shared
  // memory, and no memory operation's result depends on time — so it
  // commutes with every non-query step, and two certified queries commute
  // with each other iff they sit in the SAME interval of the one
  // detector history a run carries (docs/EXPLORE.md soundness argument).
  if (a.cls == OpClass::kFdQuery && b.cls == OpClass::kFdQuery) {
    return a.fd_epoch >= 0 && a.fd_epoch == b.fd_epoch;
  }
  if (a.cls == OpClass::kFdQuery) return a.fd_epoch >= 0;
  if (b.cls == OpClass::kFdQuery) return b.fd_epoch >= 0;
  if (a.cls == OpClass::kNone || b.cls == OpClass::kNone) return true;
  if (a.obj != b.obj) return true;  // disjoint objects always commute
  if (a.cls == OpClass::kRead && b.cls == OpClass::kRead) return true;
  if (a.cls == OpClass::kScan && b.cls == OpClass::kScan) return true;
  if (a.cls == OpClass::kUpdate && b.cls == OpClass::kUpdate) {
    return a.slot != b.slot;  // single-writer slots: disjoint cells commute
  }
  return false;
}

// One round of splitmix64-style mixing for STATE digests (explorer
// memoization keys, per-process result-stream digests, object-table
// contents). Same shape as the trace's history mix but deliberately a
// separate definition: state digests are order-insensitive keys, the trace
// digest is a history key, and neither may silently inherit changes to the
// other.
[[nodiscard]] inline std::uint64_t stateMix64(std::uint64_t h,
                                              std::uint64_t x) {
  h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

// ---- Stable signatures ----------------------------------------------------
//
// Cheap stable signature of one executed operation, folded into the trace's
// op digest (Trace::mixOp) and into the explorer's state digests. Covers the
// op kind, target object, slot, and argument value — enough that any
// divergence in the executed op stream (a different schedule, a
// nondeterministic argument) changes the run's trace hash.
[[nodiscard]] inline std::uint64_t opSignature(const Op& op) {
  std::uint64_t h = 0x100000001B3ULL * (op.index() + 1);
  if (const auto* w = std::get_if<OpWrite>(&op)) {
    h ^= static_cast<std::uint64_t>(w->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= w->val.hash64();
  } else if (const auto* r = std::get_if<OpRead>(&op)) {
    h ^= static_cast<std::uint64_t>(r->obj) * 0x9E3779B97F4A7C15ULL;
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    h ^= static_cast<std::uint64_t>(u->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(u->slot) << 32;
    h ^= u->val.hash64();
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    h ^= static_cast<std::uint64_t>(s->obj) * 0x9E3779B97F4A7C15ULL;
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    h ^= static_cast<std::uint64_t>(c->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= c->val.hash64();
  }
  return h;
}

// Stable signature of an operation's RESULT, folded into the op digest
// alongside the op signature (and into the explorer's per-process local
// state digests). Covers read values, scan views, consensus winners and FD
// answers, so a nondeterministic object implementation — or an
// injected-delay bug — is caught even when the executed op stream is
// identical.
[[nodiscard]] inline std::uint64_t resultSignature(const OpResult& res) {
  std::uint64_t h = 0x27D4EB2F165667C5ULL;
  h ^= res.scalar.hash64();
  for (const RegVal& v : res.snapshot) {
    h = (h ^ v.hash64()) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace wfd::sim
