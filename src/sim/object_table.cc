#include "sim/object_table.h"

#include <cassert>
#include <cstring>

#include "sim/ops.h"

namespace wfd::sim {

void ObjKey::append(const char* s) {
  const std::size_t used = std::strlen(tag.data());
  const std::size_t add = std::strlen(s);
  assert(used + add < kTagCap && "ObjKey tag overflow");
  std::memcpy(tag.data() + used, s, add + 1);
}

void ObjKey::append(int n) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%d", n);
  append(buf);
}

std::string ObjKey::toString() const {
  std::string s = tag.data();
  for (int i : {i0, i1, i2, i3}) {
    if (i >= 0) s += "[" + std::to_string(i) + "]";
  }
  return s;
}

ObjId ObjectTable::regId(const ObjKey& key) {
  auto it = ids_.find(key);
  if (it != ids_.end()) {
    assert(objects_[static_cast<std::size_t>(it->second)].kind ==
               Kind::kRegister &&
           "object kind mismatch: register requested");
    return it->second;
  }
  const ObjId id = static_cast<ObjId>(objects_.size());
  objects_.push_back(Object{});
  ids_.emplace(key, id);
  xdigest_ ^= objectComponent(id, objects_.back());
  return id;
}

ObjId ObjectTable::snapId(const ObjKey& key, int slots) {
  assert(slots > 0);
  auto it = ids_.find(key);
  if (it != ids_.end()) {
    const auto& obj = objects_[static_cast<std::size_t>(it->second)];
    assert(obj.kind == Kind::kSnapshot &&
           "object kind mismatch: snapshot requested");
    assert(static_cast<int>(obj.slots.size()) == slots &&
           "snapshot size mismatch across processes");
    return it->second;
  }
  const ObjId id = static_cast<ObjId>(objects_.size());
  Object obj;
  obj.kind = Kind::kSnapshot;
  obj.slots.resize(static_cast<std::size_t>(slots));
  objects_.push_back(std::move(obj));
  ids_.emplace(key, id);
  xdigest_ ^= objectComponent(id, objects_.back());
  return id;
}

ObjId ObjectTable::consId(const ObjKey& key, int ports) {
  assert(ports > 0);
  auto it = ids_.find(key);
  if (it != ids_.end()) {
    const auto& obj = objects_[static_cast<std::size_t>(it->second)];
    assert(obj.kind == Kind::kConsensus &&
           "object kind mismatch: consensus requested");
    assert(obj.ports == ports && "consensus port limit mismatch");
    return it->second;
  }
  const ObjId id = static_cast<ObjId>(objects_.size());
  Object obj;
  obj.kind = Kind::kConsensus;
  obj.ports = ports;
  objects_.push_back(std::move(obj));
  ids_.emplace(key, id);
  xdigest_ ^= objectComponent(id, objects_.back());
  return id;
}

const RegVal& ObjectTable::read(ObjId id) const {
  observe(id, ObjectAccess::kRead);
  const auto& obj = objects_.at(static_cast<std::size_t>(id));
  assert(obj.kind == Kind::kRegister);
  return obj.reg;
}

void ObjectTable::write(ObjId id, RegVal v) {
  observe(id, ObjectAccess::kWrite);
  auto& obj = objects_.at(static_cast<std::size_t>(id));
  assert(obj.kind == Kind::kRegister);
  xdigest_ ^= objectComponent(id, obj);
  obj.reg = std::move(v);
  xdigest_ ^= objectComponent(id, obj);
}

const std::vector<RegVal>& ObjectTable::scan(ObjId id) const {
  observe(id, ObjectAccess::kScan);
  const auto& obj = objects_.at(static_cast<std::size_t>(id));
  assert(obj.kind == Kind::kSnapshot);
  return obj.slots;
}

void ObjectTable::update(ObjId id, int slot, RegVal v) {
  observe(id, ObjectAccess::kUpdate);
  auto& obj = objects_.at(static_cast<std::size_t>(id));
  assert(obj.kind == Kind::kSnapshot);
  xdigest_ ^= objectComponent(id, obj);
  obj.slots.at(static_cast<std::size_t>(slot)) = std::move(v);
  xdigest_ ^= objectComponent(id, obj);
}

RegVal ObjectTable::propose(ObjId id, Pid proposer, RegVal v) {
  observe(id, ObjectAccess::kPropose);
  auto& obj = objects_.at(static_cast<std::size_t>(id));
  assert(obj.kind == Kind::kConsensus);
  xdigest_ ^= objectComponent(id, obj);
  if (!obj.proposers.contains(proposer)) {
    obj.proposers.insert(proposer);
    assert(obj.proposers.size() <= obj.ports &&
           "consensus object port limit exceeded: an m-process consensus "
           "object accepts at most m distinct proposers");
  }
  if (obj.reg.isBottom()) obj.reg = std::move(v);  // first proposal wins
  xdigest_ ^= objectComponent(id, obj);
  return obj.reg;
}

std::uint64_t ObjectTable::objectComponent(ObjId id, const Object& obj) {
  const auto mix = stateMix64;
  // The id is part of the component: XOR aggregation is order-blind, so
  // without it two objects swapping contents would cancel out.
  std::uint64_t h = mix(0x9216D5D98979FB1BULL,
                        static_cast<std::uint64_t>(id) + 1);
  h = mix(h, static_cast<std::uint64_t>(obj.kind) + 1);
  h = mix(h, obj.reg.hash64());
  h = mix(h, obj.slots.size());
  for (const RegVal& v : obj.slots) h = mix(h, v.hash64());
  h = mix(h, obj.proposers.bits());
  h = mix(h, static_cast<std::uint64_t>(obj.ports));
  return h;
}

std::uint64_t ObjectTable::xorContentsDigestFull() const {
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    h ^= objectComponent(static_cast<ObjId>(i), objects_[i]);
  }
  return h;
}

std::uint64_t ObjectTable::contentsDigest() const {
  const auto mix = stateMix64;
  std::uint64_t h = 0x6A09E667F3BCC909ULL;
  for (const Object& obj : objects_) {
    h = mix(h, static_cast<std::uint64_t>(obj.kind) + 1);
    h = mix(h, obj.reg.hash64());
    h = mix(h, obj.slots.size());
    for (const RegVal& v : obj.slots) h = mix(h, v.hash64());
    h = mix(h, obj.proposers.bits());
    h = mix(h, static_cast<std::uint64_t>(obj.ports));
  }
  return h;
}

ObjectTable::Kind ObjectTable::kindOf(ObjId id) const {
  assert(knows(id));
  return objects_[static_cast<std::size_t>(id)].kind;
}

int ObjectTable::slotCount(ObjId id) const {
  assert(knows(id));
  return static_cast<int>(objects_[static_cast<std::size_t>(id)].slots.size());
}

int ObjectTable::portLimit(ObjId id) const {
  assert(knows(id));
  return objects_[static_cast<std::size_t>(id)].ports;
}

int ObjectTable::proposerCount(ObjId id) const {
  assert(knows(id));
  return objects_[static_cast<std::size_t>(id)].proposers.size();
}

bool ObjectTable::hasProposed(ObjId id, Pid p) const {
  assert(knows(id));
  return objects_[static_cast<std::size_t>(id)].proposers.contains(p);
}

}  // namespace wfd::sim
