// Run watchdog: drives a (possibly chaos-perturbed) run to a guaranteed,
// diagnosable verdict.
//
// Scheduler::run is the right loop for well-behaved experiments, but a
// fault-injected run can starve, livelock, or be steered into violating
// the very properties an experiment certifies — and an assert/abort there
// destroys the diagnosis along with the process. The watchdog replaces
// those halt paths with a structured taxonomy: every driven run ends in
// exactly one RunVerdict with a human-readable detail string and the full
// harvested RunResult (trace, decisions, auditor) for post-mortems.
//
//   kOk               all correct processes finished; no violation seen.
//   kSafetyViolation  the run decided more distinct values than its task
//                     allows (or a process decided twice) — caught online,
//                     at the step the offending decision lands.
//   kAxiomViolation   the step auditor flagged a violation — under chaos
//                     that is the online FD-axiom checker catching an
//                     illegal detector output (sim/step_audit.h).
//   kBudgetExhausted  the per-run step budget ran out before the correct
//                     processes finished.
//   kLivelock         live processes kept taking steps but produced no new
//                     trace event (decision, publish, note) for a whole
//                     livelock window.
//
// The watchdog draws schedule decisions from the run's own policy RNG, so
// a watched run with no chaos engine replays the exact schedule
// Scheduler::run would have produced.
#pragma once

#include <string>

#include "sim/runner.h"

namespace wfd::sim {

class ChaosEngine;

enum class RunVerdict {
  kOk,
  kSafetyViolation,
  kAxiomViolation,
  kBudgetExhausted,
  kLivelock,
};

[[nodiscard]] const char* runVerdictName(RunVerdict v);

struct WatchdogConfig {
  // Hard per-run step ceiling; the run is cut off (kBudgetExhausted) when
  // it is reached with correct processes still unfinished.
  Time step_budget = 2'000'000;
  // Livelock window: no new trace event for this many consecutive steps
  // while live processes still run => kLivelock. 0 disables (runs such as
  // the Fig. 3 extraction legitimately go quiet after stabilizing).
  Time livelock_window = 0;
  // Online safety bound: flag as soon as the distinct decided values
  // exceed k or any process decides twice. 0 disables.
  int safety_k = 0;
};

struct RunReport {
  RunVerdict verdict = RunVerdict::kOk;
  std::string detail;  // empty for kOk; diagnostic otherwise
  Time steps = 0;
  RunResult result;

  [[nodiscard]] bool ok() const { return verdict == RunVerdict::kOk; }
};

// Drive `run` under `policy` — perturbed by `chaos` if non-null — until a
// verdict is reached, then harvest. Never asserts or aborts on perturbed
// input; audit findings, starvation, and budget overruns all come back as
// verdicts. (A structurally broken configuration — e.g. querying an FD
// that was never installed — still throws SimAbort: that is a harness
// bug, not a run outcome.)
RunReport driveWatched(Run& run, SchedulePolicy& policy,
                       const WatchdogConfig& wd, ChaosEngine* chaos);

}  // namespace wfd::sim
