// Runner: one-call construction and execution of a run.
//
// Bundles world + per-process Env storage + scheduler with the right
// lifetimes (coroutine frames hold Env&, so envs must outlive the
// scheduler's coroutines), and harvests decisions from the trace.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/scheduler.h"

namespace wfd::sim {

enum class PolicyKind { kRandom, kRoundRobin };

struct RunConfig {
  int n_plus_1 = 3;
  std::optional<FailurePattern> fp;  // default: failure-free
  fd::FdPtr fd;                      // may be null for FD-free algorithms
  std::uint64_t seed = 1;
  Time max_steps = 2'000'000;
  SnapshotFlavor flavor = SnapshotFlavor::kNative;
  PolicyKind policy = PolicyKind::kRandom;
  // Model-conformance auditing (sim/step_audit.h). Unset = consult the
  // WFD_AUDIT environment variable ("collect" | "throw"; anything else
  // or unset = off), so whole suites/harnesses can be re-run audited
  // without touching call sites: `WFD_AUDIT=throw ctest`.
  std::optional<AuditMode> audit;
};

// A process automaton: given its Env and its input value, run forever or
// to completion. Algorithms that take no input ignore the Value.
using AlgoFn = std::function<Coro<Unit>(Env&, Value)>;

struct RunResult {
  bool all_correct_done = false;
  Time steps = 0;
  std::map<Pid, Value> decisions;     // kDecide events, last per process
  std::unique_ptr<World> world;       // retains trace + final memory state

  [[nodiscard]] const Trace& trace() const { return world->trace(); }

  // The attached step auditor, if the run was audited (null otherwise).
  [[nodiscard]] const StepAuditor* audit() const { return world->auditor(); }

  // Distinct decided values (the k of k-set-agreement actually achieved).
  [[nodiscard]] int distinctDecisions() const;
};

// A resumable point of one run: world snapshot + per-process result
// streams. Self-contained — restoring onto any Run with the SAME
// configuration (algorithm, proposals, pattern, FD, seed) is valid, which
// is what lets the explorer share prefixes across branches.
struct RunCheckpoint {
  World::Snapshot world;
  Scheduler::Checkpoint sched;
};

// Owns everything a run needs; useful directly when a test wants to drive
// the schedule step-by-step instead of via RunConfig's policy.
class Run {
 public:
  Run(const RunConfig& cfg, const AlgoFn& algo,
      const std::vector<Value>& proposals);

  World& world() { return *world_; }
  Scheduler& scheduler() { return *sched_; }

  // ---- Checkpoint/restore (sim/explore.h prefix sharing) ----
  // Opt-in because checkpoints need the scheduler's result log from step
  // one. Call right after construction, before any step.
  void enableCheckpoints() { sched_->enableResultLog(); }
  [[nodiscard]] RunCheckpoint checkpoint() const {
    return RunCheckpoint{world_->snapshot(), sched_->checkpoint()};
  }
  // Rewind (or fast-forward) this run to `ck`. Restores the world first,
  // then rebuilds every process coroutine by local replay of its recorded
  // result stream with trace recording muted (replayed free actions would
  // otherwise re-record with wrong timestamps). After restore the run
  // continues exactly as a straight-line execution would have
  // (tests/golden_hash_test.cc holds it to bit-identical trace hashes).
  void restore(const RunCheckpoint& ck);

  RunResult finish(Time steps_taken);

 private:
  std::unique_ptr<World> world_;
  std::deque<Env> envs_;
  std::unique_ptr<Scheduler> sched_;
  AlgoFn algo_;                    // kept for checkpoint restore
  std::vector<Value> proposals_;   // ditto
};

// Run `algo` at every process with the given proposals under cfg.policy.
RunResult runTask(const RunConfig& cfg, const AlgoFn& algo,
                  const std::vector<Value>& proposals);

// The audit mode a run with this RunConfig::audit field would actually
// use: the explicit setting if present, else the process-wide WFD_AUDIT
// latch. Exposed so sim::ReportCache can bypass memoization for audited
// runs — an audited run exists to be re-executed and checked, never to
// be answered from a cache.
[[nodiscard]] std::optional<AuditMode> resolvedAuditMode(
    const std::optional<AuditMode>& audit);

}  // namespace wfd::sim
