// NetWorld: a seed-deterministic message-passing world (docs/NET.md).
//
// A discrete-event simulation in lockstep ticks. Each tick, in this
// fixed order: (1) messages scheduled for the tick are delivered in
// canonical (receiver, sequence) order, (2) expired virtual timers fire
// in (pid, timer id) order. Processes are event-driven automata
// (NetProcess) that may send, set/cancel timers, and publish a
// failure-detector output (a ProcSet) in response; all of their actions
// are mediated by NetContext, which stamps every effect into the event
// hash — so one (NetConfig, FailurePattern) pair names exactly one
// execution, bit for bit.
//
// Link fates are *stateless* functions of (seed, link, sequence) via
// hashedUniform — the same discipline FD histories use (common/rng.h) —
// so no drop/delay draw depends on exploration order. Before GST a
// message may be dropped (drop_permille), cut by a transient partition,
// or delayed arbitrarily within the envelope clamp; from GST on every
// message between live processes arrives within [1, delta] ticks.
//
// Crashes come from the same FailurePattern the shared-memory world
// uses: a process with crashTime <= tick takes no actions (no sends, no
// timer callbacks) and deliveries to it are discarded; its messages
// already in flight still arrive — exactly the asynchronous model's
// "crash = silence from then on".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/proc_set.h"
#include "common/types.h"
#include "sim/net/net_config.h"

namespace wfd::sim::net {

using wfd::ProcSet;

// A point-to-point message. `tag`/`payload` are protocol-defined; the
// substrate never interprets them beyond hashing.
struct Message {
  Pid from = -1;
  int tag = 0;
  std::int64_t payload = 0;
};

class NetWorld;

// The capability surface a process sees while handling an event. All
// methods are valid only inside onStart/onMessage/onTimer callbacks.
class NetContext {
 public:
  [[nodiscard]] Pid me() const { return me_; }
  [[nodiscard]] int nProcs() const;
  [[nodiscard]] Time now() const;

  void send(Pid to, int tag, std::int64_t payload = 0);
  void broadcast(int tag, std::int64_t payload = 0);  // to every peer != me

  // Arm (or re-arm: same id overwrites) timer `id` to fire `delay` ticks
  // from now; delay is clamped to >= 1 so a timer never fires within the
  // tick that set it.
  void setTimer(int id, Time delay);
  void cancelTimer(int id);

  // Publish this process's failure-detector module output. Recorded as a
  // switch point only when it differs from the previous output.
  void setOutput(const ProcSet& suspected);

 private:
  friend class NetWorld;
  NetContext(NetWorld* w, Pid me) : world_(w), me_(me) {}
  NetWorld* world_;
  Pid me_;
};

// An event-driven protocol automaton; one instance per process.
class NetProcess {
 public:
  virtual ~NetProcess() = default;
  virtual void onStart(NetContext& ctx) = 0;
  virtual void onMessage(NetContext& ctx, const Message& m) = 0;
  virtual void onTimer(NetContext& ctx, int timer_id) = 0;
};

// One process's recorded output history: value `out` holds from `at`
// until the next switch (or the horizon). Lists are per-process and
// time-sorted by construction.
struct OutputSwitch {
  Time at = 0;
  ProcSet out;
};

struct NetCounters {
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;            // drop_permille fates
  std::int64_t partition_dropped = 0;  // partition-cut fates
  std::int64_t to_crashed = 0;         // deliveries discarded at a crashed pid
  std::int64_t timers_fired = 0;
  std::int64_t output_switches = 0;
  // Largest delivery delay of any message sent at or after GST — the
  // envelope contract says this never exceeds delta.
  Time max_post_gst_lag = 0;
  std::uint64_t trace_hash = 0;  // order-sensitive hash of every event
};

class NetWorld {
 public:
  NetWorld(FailurePattern fp, NetConfig cfg);

  [[nodiscard]] int nProcs() const { return fp_.nProcs(); }
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const NetConfig& config() const { return cfg_; }
  [[nodiscard]] const FailurePattern& pattern() const { return fp_; }

  // Drive `procs` (one automaton per pid, in pid order) from tick 0
  // through cfg.resolvedHorizon(fp). Single-shot: a NetWorld runs once.
  void run(std::vector<std::unique_ptr<NetProcess>> procs);

  [[nodiscard]] const NetCounters& counters() const { return counters_; }
  // Per-pid output switch lists, populated by run().
  [[nodiscard]] const std::vector<std::vector<OutputSwitch>>& outputs() const {
    return outputs_;
  }

 private:
  friend class NetContext;

  struct InFlight {
    Pid to = -1;
    std::uint64_t seq = 0;  // global send sequence; canonical tie-break
    Message msg;
  };

  void doSend(Pid from, Pid to, int tag, std::int64_t payload);
  void doSetTimer(Pid p, int id, Time delay);
  void doCancelTimer(Pid p, int id);
  void doSetOutput(Pid p, const ProcSet& suspected);
  [[nodiscard]] bool crashed(Pid p, Time t) const {
    return fp_.crashTime(p) <= t;
  }
  [[nodiscard]] bool partitionCut(Pid from, Pid to, Time t) const;
  void mix(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d);

  FailurePattern fp_;
  NetConfig cfg_;
  Time now_ = 0;
  Time horizon_ = 0;
  std::uint64_t next_seq_ = 0;
  bool running_ = false;
  std::vector<std::unique_ptr<NetProcess>> procs_;
  // tick -> deliveries scheduled for it, kept in canonical order.
  std::map<Time, std::vector<InFlight>> pending_;
  // Per-pid armed timers: id -> fire tick. std::map gives the canonical
  // id order when several expire on the same tick.
  std::vector<std::map<int, Time>> timers_;
  std::vector<ProcSet> current_out_;
  std::vector<bool> out_seen_;  // first setOutput always records a switch
  std::vector<std::vector<OutputSwitch>> outputs_;
  NetCounters counters_;
};

}  // namespace wfd::sim::net
