#include "sim/net/net_world.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace wfd::sim::net {

namespace {

// Event kinds mixed into the trace hash.
constexpr std::uint64_t kEvSend = 1;
constexpr std::uint64_t kEvDeliver = 2;
constexpr std::uint64_t kEvDrop = 3;
constexpr std::uint64_t kEvPartitionDrop = 4;
constexpr std::uint64_t kEvToCrashed = 5;
constexpr std::uint64_t kEvTimer = 6;
constexpr std::uint64_t kEvOutput = 7;

// Independent stateless streams per fate dimension.
constexpr std::uint64_t kDropSalt = 0xD509CB6F2A4173E1ULL;
constexpr std::uint64_t kDelaySalt = 0x8FB1D2C4A6E09357ULL;
constexpr std::uint64_t kPartStartSalt = 0x3C79A1E5D2B48F6DULL;
constexpr std::uint64_t kPartSideSalt = 0x61E8B3A90F5C27D4ULL;

std::uint64_t linkKey(Pid from, Pid to) {
  return static_cast<std::uint64_t>(from) * kMaxProcs +
         static_cast<std::uint64_t>(to) + 1;
}

}  // namespace

int NetContext::nProcs() const { return world_->nProcs(); }
Time NetContext::now() const { return world_->now(); }

void NetContext::send(Pid to, int tag, std::int64_t payload) {
  world_->doSend(me_, to, tag, payload);
}

void NetContext::broadcast(int tag, std::int64_t payload) {
  for (Pid q = 0; q < world_->nProcs(); ++q) {
    if (q != me_) world_->doSend(me_, q, tag, payload);
  }
}

void NetContext::setTimer(int id, Time delay) {
  world_->doSetTimer(me_, id, delay);
}

void NetContext::cancelTimer(int id) { world_->doCancelTimer(me_, id); }

void NetContext::setOutput(const ProcSet& suspected) {
  world_->doSetOutput(me_, suspected);
}

NetWorld::NetWorld(FailurePattern fp, NetConfig cfg)
    : fp_(std::move(fp)), cfg_(cfg) {
  const auto n = static_cast<std::size_t>(fp_.nProcs());
  timers_.resize(n);
  current_out_.resize(n);
  out_seen_.resize(n, false);
  outputs_.resize(n);
  horizon_ = cfg_.resolvedHorizon(fp_);
}

void NetWorld::mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::uint64_t d) {
  std::uint64_t h = counters_.trace_hash;
  h = fd::mixDigest(h, static_cast<std::uint64_t>(now_));
  h = fd::mixDigest(h, a);
  h = fd::mixDigest(h, b);
  h = fd::mixDigest(h, c);
  h = fd::mixDigest(h, d);
  counters_.trace_hash = h;
}

bool NetWorld::partitionCut(Pid from, Pid to, Time t) const {
  const LinkFaults& lf = cfg_.faults;
  const Time gst = cfg_.env.gst;
  if (lf.partitions <= 0 || lf.partition_len <= 0 || gst <= 0) return false;
  for (int i = 0; i < lf.partitions; ++i) {
    const auto start = static_cast<Time>(
        hashedUniform(cfg_.seed ^ kPartStartSalt,
                      static_cast<std::uint64_t>(i) + 1, 0,
                      static_cast<std::uint64_t>(gst)));
    if (t < start || t >= std::min(start + lf.partition_len, gst)) continue;
    const std::uint64_t side_from =
        hashedUniform(cfg_.seed ^ kPartSideSalt,
                      static_cast<std::uint64_t>(i) + 1,
                      static_cast<std::uint64_t>(from) + 1, 2);
    const std::uint64_t side_to =
        hashedUniform(cfg_.seed ^ kPartSideSalt,
                      static_cast<std::uint64_t>(i) + 1,
                      static_cast<std::uint64_t>(to) + 1, 2);
    if (side_from != side_to) return true;
  }
  return false;
}

void NetWorld::doSend(Pid from, Pid to, int tag, std::int64_t payload) {
  assert(running_);
  assert(to >= 0 && to < nProcs() && to != from);
  const std::uint64_t seq = next_seq_++;
  ++counters_.sent;
  mix(kEvSend, static_cast<std::uint64_t>(from), static_cast<std::uint64_t>(to),
      seq);

  const Time s = now_;
  const SynchronyEnvelope& env = cfg_.env;
  const LinkFaults& lf = cfg_.faults;
  Time deliver_at = 0;
  if (s < env.gst) {
    if (partitionCut(from, to, s)) {
      ++counters_.partition_dropped;
      mix(kEvPartitionDrop, static_cast<std::uint64_t>(from),
          static_cast<std::uint64_t>(to), seq);
      return;
    }
    if (lf.drop_permille > 0 &&
        hashedUniform(cfg_.seed ^ kDropSalt, linkKey(from, to), seq, 1000) <
            static_cast<std::uint64_t>(lf.drop_permille)) {
      ++counters_.dropped;
      mix(kEvDrop, static_cast<std::uint64_t>(from),
          static_cast<std::uint64_t>(to), seq);
      return;
    }
    const Time span = std::max<Time>(lf.max_delay - lf.min_delay, 0);
    const auto draw = static_cast<Time>(
        hashedUniform(cfg_.seed ^ kDelaySalt, linkKey(from, to), seq,
                      static_cast<std::uint64_t>(span) + 1));
    const Time d = std::max<Time>(lf.min_delay + draw, 1);
    // The envelope clamp: whatever the drawn delay, nothing sent before
    // GST arrives after gst + delta.
    deliver_at = std::min(s + d, env.gst + env.delta);
  } else {
    // Post-GST: reliable, delay uniform in [1, delta].
    const auto draw = static_cast<Time>(
        hashedUniform(cfg_.seed ^ kDelaySalt, linkKey(from, to), seq,
                      static_cast<std::uint64_t>(std::max<Time>(env.delta, 1))));
    const Time d = 1 + draw;
    counters_.max_post_gst_lag = std::max(counters_.max_post_gst_lag, d);
    deliver_at = s + d;
  }
  pending_[deliver_at].push_back({to, seq, Message{from, tag, payload}});
}

void NetWorld::doSetTimer(Pid p, int id, Time delay) {
  assert(running_);
  timers_[static_cast<std::size_t>(p)][id] = now_ + std::max<Time>(delay, 1);
}

void NetWorld::doCancelTimer(Pid p, int id) {
  timers_[static_cast<std::size_t>(p)].erase(id);
}

void NetWorld::doSetOutput(Pid p, const ProcSet& suspected) {
  const auto i = static_cast<std::size_t>(p);
  if (out_seen_[i] && current_out_[i] == suspected) return;
  out_seen_[i] = true;
  current_out_[i] = suspected;
  outputs_[i].push_back({now_, suspected});
  ++counters_.output_switches;
  mix(kEvOutput, static_cast<std::uint64_t>(p), suspected.bits(), 0);
}

void NetWorld::run(std::vector<std::unique_ptr<NetProcess>> procs) {
  assert(!running_ && now_ == 0);
  assert(static_cast<int>(procs.size()) == nProcs());
  procs_ = std::move(procs);
  running_ = true;

  for (Pid p = 0; p < nProcs(); ++p) {
    if (crashed(p, 0)) continue;
    NetContext ctx(this, p);
    procs_[static_cast<std::size_t>(p)]->onStart(ctx);
  }

  std::vector<InFlight> due;
  for (now_ = 1; now_ <= horizon_; ++now_) {
    // (1) Deliveries scheduled for this tick, in (receiver, seq) order.
    if (const auto it = pending_.find(now_); it != pending_.end()) {
      due = std::move(it->second);
      pending_.erase(it);
      std::sort(due.begin(), due.end(),
                [](const InFlight& a, const InFlight& b) {
                  return a.to != b.to ? a.to < b.to : a.seq < b.seq;
                });
      for (const InFlight& m : due) {
        if (crashed(m.to, now_)) {
          ++counters_.to_crashed;
          mix(kEvToCrashed, static_cast<std::uint64_t>(m.to), m.seq, 0);
          continue;
        }
        ++counters_.delivered;
        mix(kEvDeliver, static_cast<std::uint64_t>(m.to),
            static_cast<std::uint64_t>(m.msg.from), m.seq);
        NetContext ctx(this, m.to);
        procs_[static_cast<std::size_t>(m.to)]->onMessage(ctx, m.msg);
      }
      due.clear();
    }

    // (2) Expired timers, in (pid, timer id) order. A callback may re-arm
    // timers, but never for the current tick (delay clamps to >= 1).
    for (Pid p = 0; p < nProcs(); ++p) {
      if (crashed(p, now_)) continue;
      auto& tm = timers_[static_cast<std::size_t>(p)];
      std::vector<int> fired;
      for (const auto& [id, at] : tm) {
        if (at <= now_) fired.push_back(id);
      }
      for (const int id : fired) tm.erase(id);
      for (const int id : fired) {
        ++counters_.timers_fired;
        mix(kEvTimer, static_cast<std::uint64_t>(p),
            static_cast<std::uint64_t>(id), 0);
        NetContext ctx(this, p);
        procs_[static_cast<std::size_t>(p)]->onTimer(ctx, id);
      }
    }
  }
  now_ = horizon_;
  running_ = false;
}

}  // namespace wfd::sim::net
