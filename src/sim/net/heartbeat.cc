#include "sim/net/heartbeat.h"

namespace wfd::sim::net {

namespace {
constexpr int kTagHeartbeat = 1;
}  // namespace

HeartbeatProcess::HeartbeatProcess(int n_plus_1, const HeartbeatConfig& hb)
    : n_plus_1_(n_plus_1),
      hb_(hb),
      timeout_(static_cast<std::size_t>(n_plus_1), hb.initial_timeout) {}

void HeartbeatProcess::onStart(NetContext& ctx) {
  ctx.setOutput(suspected_);  // initially nobody is suspected
  ctx.broadcast(kTagHeartbeat);
  ctx.setTimer(sendTimerId(), hb_.period);
  for (Pid q = 0; q < n_plus_1_; ++q) {
    if (q != ctx.me()) ctx.setTimer(q, timeout_[static_cast<std::size_t>(q)]);
  }
}

void HeartbeatProcess::onMessage(NetContext& ctx, const Message& m) {
  const Pid q = m.from;
  if (suspected_.contains(q)) {
    // A late heartbeat: the suspicion was premature. Un-suspect and back
    // off — the raised timeout is what makes false suspicions finite.
    suspected_.erase(q);
    timeout_[static_cast<std::size_t>(q)] += hb_.timeout_increment;
    ctx.setOutput(suspected_);
  }
  ctx.setTimer(q, timeout_[static_cast<std::size_t>(q)]);
}

void HeartbeatProcess::onTimer(NetContext& ctx, int timer_id) {
  if (timer_id == sendTimerId()) {
    ctx.broadcast(kTagHeartbeat);
    ctx.setTimer(sendTimerId(), hb_.period);
    return;
  }
  // Suspicion timer: `timer_id` ticks of silence from that peer. No
  // re-arm — the suspicion stands until a message arrives.
  suspected_.insert(timer_id);
  ctx.setOutput(suspected_);
}

}  // namespace wfd::sim::net
