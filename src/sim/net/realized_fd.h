// Realized failure detectors: heartbeat executions as FD histories.
//
// A scripted detector (fd/upsilon.h, fd/omega.h, fd/perfect.h) *asserts*
// a history; a realized detector *earns* one: simulateHeartbeats runs
// the increasing-timeout protocol (net/heartbeat.h) over the faulty
// message substrate (net/net_world.h) and records, per process, the
// full piecewise-constant suspicion history. RealizedFd then serves
// query(p, t) by binary search over the recorded switch points — a pure
// function of (p, t), exactly what the FailureDetector contract and the
// step auditor's monotonicity rule require — through one of three
// lenses over the same execution:
//
//   kEventuallyPerfect  H(p,t) = suspected_p(t)            (◊P)
//   kOmega              H(p,t) = { min not-suspected }     (Omega)
//   kUpsilon            H(p,t) = Pi \ { min not-suspected } (Upsilon^f)
//
// Post-GST the suspicions converge to exactly faulty(F), so the lenses
// stabilize on faulty(F), {min correct(F)}, and Pi \ {min correct(F)}.
// The Upsilon value has size n >= n+1-f for every f >= 1 and can never
// equal correct(F) (its excluded leader is correct), so the SAME
// heartbeat execution yields legal histories of all three families —
// and stabilizationTime() is *computed* from the recorded history (the
// last tick any process's lens value differed from the stable one), so
// the online axiom checker certifies realized runs with zero slack.
//
// Queries beyond the simulated horizon clamp to the final value; the
// construction throws SimAbort if the suspicions had not converged to
// faulty(F) by the horizon (raise NetConfig::horizon).
#pragma once

#include <memory>

#include "fd/failure_detector.h"
#include "sim/net/net_world.h"

namespace wfd::sim::net {

// One complete simulated heartbeat execution, shared by every lens cut
// from it (immutable after construction; safe across threads).
struct NetHistory {
  int n_plus_1 = 0;
  FailurePattern fp;
  NetConfig cfg;
  Time horizon = 0;
  std::vector<std::vector<OutputSwitch>> switches;  // per pid, time-sorted
  NetCounters counters;
  std::uint64_t digest = 0;  // pins (cfg, fp)

  // suspected_p(min(t, horizon)): binary search over p's switch list.
  [[nodiscard]] ProcSet suspectedAt(Pid p, Time t) const;

  NetHistory(int n, FailurePattern pattern, const NetConfig& config)
      : n_plus_1(n), fp(std::move(pattern)), cfg(config) {}
};

using NetHistoryPtr = std::shared_ptr<const NetHistory>;

// Run the heartbeat protocol over the configured substrate and record
// the execution. Throws SimAbort if any correct process's final
// suspicion set differs from faulty(fp) at the horizon.
[[nodiscard]] NetHistoryPtr simulateHeartbeats(const FailurePattern& fp,
                                               const NetConfig& cfg);

enum class RealizedLens { kEventuallyPerfect, kOmega, kUpsilon };

class RealizedFd final : public fd::FailureDetector {
 public:
  // `f` parameterizes the Upsilon lens's axiom claim (must be >= 1);
  // ignored by the other lenses.
  RealizedFd(NetHistoryPtr history, RealizedLens lens, int f);

  ProcSet query(Pid p, Time t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Time stabilizationTime() const override { return stab_; }
  [[nodiscard]] fd::AxiomSpec axioms() const override;
  [[nodiscard]] std::uint64_t keyDigest() const override;

  [[nodiscard]] const NetHistory& history() const { return *history_; }
  [[nodiscard]] RealizedLens lens() const { return lens_; }
  // The value every live process's lens output converges to.
  [[nodiscard]] const ProcSet& stableValue() const { return stable_; }

 private:
  NetHistoryPtr history_;
  RealizedLens lens_;
  int f_;
  ProcSet stable_;
  Time stab_ = 0;  // computed: first tick from which every answer == stable_
};

[[nodiscard]] fd::FdPtr makeRealizedEventuallyPerfect(NetHistoryPtr history);
[[nodiscard]] fd::FdPtr makeRealizedOmega(NetHistoryPtr history);
[[nodiscard]] fd::FdPtr makeRealizedUpsilon(NetHistoryPtr history, int f);

}  // namespace wfd::sim::net
