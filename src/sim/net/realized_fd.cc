#include "sim/net/realized_fd.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "sim/net/heartbeat.h"
#include "sim/world.h"  // SimAbort

namespace wfd::sim::net {

namespace {

ProcSet applyLens(const ProcSet& suspected, RealizedLens lens, int n_plus_1) {
  switch (lens) {
    case RealizedLens::kEventuallyPerfect:
      return suspected;
    case RealizedLens::kOmega:
    case RealizedLens::kUpsilon: {
      // The heartbeat protocol never self-suspects, so the un-suspected
      // set always contains the querying process — never empty.
      const ProcSet alive = suspected.complement(n_plus_1);
      const Pid leader = alive.empty() ? 0 : alive.min();
      return lens == RealizedLens::kOmega
                 ? ProcSet::singleton(leader)
                 : ProcSet::full(n_plus_1).minus(ProcSet::singleton(leader));
    }
  }
  return suspected;
}

// The stable value V and the exact stabilization time: the smallest T
// such that for every process p and every tick t in [T, min(crash_p,
// horizon)], the lens value equals V. Queries past the horizon clamp to
// the final (stable) value, and queries by crashed processes never
// happen (run condition (1)), so T is a complete witness.
Time computeStab(const NetHistory& h, RealizedLens lens, const ProcSet& V) {
  Time stab = 0;
  for (Pid p = 0; p < h.n_plus_1; ++p) {
    const auto& sw = h.switches[static_cast<std::size_t>(p)];
    if (sw.empty()) continue;  // crashed at tick 0: no observable queries
    const Time crash = h.fp.crashTime(p);
    const Time limit =
        std::min(crash == kNeverCrashes ? h.horizon : crash - 1, h.horizon);
    for (std::size_t i = 0; i < sw.size(); ++i) {
      if (applyLens(sw[i].out, lens, h.n_plus_1) == V) continue;
      const Time hold_end =
          i + 1 < sw.size() ? sw[i + 1].at - 1 : h.horizon;
      const Time bad_end = std::min(hold_end, limit);
      if (bad_end >= sw[i].at) stab = std::max(stab, bad_end + 1);
    }
  }
  return stab;
}

}  // namespace

ProcSet NetHistory::suspectedAt(Pid p, Time t) const {
  const auto& sw = switches.at(static_cast<std::size_t>(p));
  if (sw.empty()) return {};
  const Time tc = std::min(t, horizon);
  // Last switch with at <= tc.
  auto it = std::upper_bound(
      sw.begin(), sw.end(), tc,
      [](Time v, const OutputSwitch& s) { return v < s.at; });
  if (it == sw.begin()) return {};  // before the first record
  return std::prev(it)->out;
}

NetHistoryPtr simulateHeartbeats(const FailurePattern& fp,
                                 const NetConfig& cfg) {
  NetWorld world(fp, cfg);
  std::vector<std::unique_ptr<NetProcess>> procs;
  procs.reserve(static_cast<std::size_t>(fp.nProcs()));
  for (Pid p = 0; p < fp.nProcs(); ++p) {
    procs.push_back(std::make_unique<HeartbeatProcess>(fp.nProcs(), cfg.hb));
  }
  world.run(std::move(procs));

  auto h = std::make_shared<NetHistory>(fp.nProcs(), fp, cfg);
  h->horizon = cfg.resolvedHorizon(fp);
  h->switches = world.outputs();
  h->counters = world.counters();
  h->digest = fd::digestPattern(cfg.digest(), fp);

  // The substrate's convergence guarantee, checked: every correct
  // process's suspicions must equal faulty(F) at the horizon. The lenses
  // and their computed stabilization times all build on this.
  const ProcSet faulty = fp.faulty();
  for (Pid p = 0; p < fp.nProcs(); ++p) {
    if (!fp.isCorrect(p)) continue;
    const ProcSet final_out = h->suspectedAt(p, h->horizon);
    if (final_out != faulty) {
      throw SimAbort(
          "net heartbeat history did not converge: p" + std::to_string(p + 1) +
          " suspects " + final_out.toString() + " at the horizon t=" +
          std::to_string(h->horizon) + " but faulty(F) = " +
          faulty.toString() + " (raise NetConfig::horizon)");
    }
  }
  return h;
}

RealizedFd::RealizedFd(NetHistoryPtr history, RealizedLens lens, int f)
    : history_(std::move(history)), lens_(lens), f_(f) {
  const int n = history_->n_plus_1;
  stable_ = applyLens(history_->fp.faulty(), lens_, n);
  stab_ = computeStab(*history_, lens_, stable_);
}

ProcSet RealizedFd::query(Pid p, Time t) const {
  return applyLens(history_->suspectedAt(p, t), lens_, history_->n_plus_1);
}

std::string RealizedFd::name() const {
  switch (lens_) {
    case RealizedLens::kEventuallyPerfect: return "net<>P";
    case RealizedLens::kOmega: return "netOmega";
    case RealizedLens::kUpsilon: return "netUpsilon^" + std::to_string(f_);
  }
  return "net?";
}

fd::AxiomSpec RealizedFd::axioms() const {
  switch (lens_) {
    case RealizedLens::kEventuallyPerfect:
      return {fd::AxiomSpec::Family::kEventuallyPerfect, 0};
    case RealizedLens::kOmega:
      return {fd::AxiomSpec::Family::kOmegaK, 1};
    case RealizedLens::kUpsilon:
      return {fd::AxiomSpec::Family::kUpsilonF, f_};
  }
  return {};
}

std::uint64_t RealizedFd::keyDigest() const {
  std::uint64_t h = fd::digestString(history_->digest, name());
  h = fd::mixDigest(h, static_cast<std::uint64_t>(lens_));
  h = fd::mixDigest(h, static_cast<std::uint64_t>(f_));
  return h;
}

fd::FdPtr makeRealizedEventuallyPerfect(NetHistoryPtr history) {
  return std::make_shared<RealizedFd>(std::move(history),
                                      RealizedLens::kEventuallyPerfect, 0);
}

fd::FdPtr makeRealizedOmega(NetHistoryPtr history) {
  return std::make_shared<RealizedFd>(std::move(history), RealizedLens::kOmega,
                                      0);
}

fd::FdPtr makeRealizedUpsilon(NetHistoryPtr history, int f) {
  if (f < 1) throw SimAbort("realized Upsilon lens requires f >= 1");
  return std::make_shared<RealizedFd>(std::move(history),
                                      RealizedLens::kUpsilon, f);
}

}  // namespace wfd::sim::net
