// The increasing-timeout heartbeat detector protocol (docs/NET.md).
//
// The classic ◊P construction for partial synchrony (Chandra–Toueg [4];
// the technique of SNIPPETS.md's EventuallyStrongDetector): every
// process broadcasts a heartbeat each `period` ticks and keeps one
// suspicion timer per peer. Silence past the peer's current timeout =>
// suspect; a heartbeat from a suspected peer => un-suspect AND raise
// that peer's timeout by `timeout_increment` (additive backoff).
//
// Convergence after GST: a live peer's heartbeats arrive at most
// period + delta apart, and each false suspicion permanently grows the
// timeout, so after finitely many mistakes timeout > period + delta and
// the peer is never suspected again. A crashed peer falls silent, its
// timer fires, and the suspicion is permanent. Hence the suspicion sets
// of all live processes converge to exactly faulty(F) — the realized ◊P
// history that fd/realized_fd.h certifies and lenses into Omega and
// Upsilon.
#pragma once

#include <vector>

#include "sim/net/net_world.h"

namespace wfd::sim::net {

class HeartbeatProcess final : public NetProcess {
 public:
  HeartbeatProcess(int n_plus_1, const HeartbeatConfig& hb);

  void onStart(NetContext& ctx) override;
  void onMessage(NetContext& ctx, const Message& m) override;
  void onTimer(NetContext& ctx, int timer_id) override;

 private:
  // Timer ids: peer pid = suspicion timer for that peer; n+1 = the
  // periodic heartbeat send timer (never a valid pid).
  [[nodiscard]] int sendTimerId() const { return n_plus_1_; }

  int n_plus_1_;
  HeartbeatConfig hb_;
  std::vector<Time> timeout_;  // per-peer current timeout
  ProcSet suspected_;
};

}  // namespace wfd::sim::net
