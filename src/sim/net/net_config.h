// Configuration of the message-passing substrate (docs/NET.md).
//
// The net world realizes the partial-synchrony model the literature's
// heartbeat detectors assume (Chandra–Toueg; the increasing-timeout
// technique of SNIPPETS.md's EventuallyStrongDetector): links may drop,
// reorder, and arbitrarily delay messages BEFORE an unknown global
// stabilization time GST, and are reliable with delivery bound `delta`
// AFTER it. Everything below is plain data: a NetConfig plus a
// FailurePattern is a complete, seed-deterministic description of one
// network execution, and digest() pins it for the ReportCache.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "fd/failure_detector.h"
#include "sim/failure_pattern.h"

namespace wfd::sim::net {

using wfd::Pid;
using wfd::Time;

// The partial-synchrony envelope. Faults are injected strictly before
// `gst`; from `gst` on every message between live processes is delivered
// within `delta` ticks. Messages still in flight at GST are delivered by
// gst + delta (the envelope clamps their fate), so the contract "no
// message sent at s arrives after max(s, gst) + delta" holds globally.
struct SynchronyEnvelope {
  Time gst = 0;
  Time delta = 4;  // post-GST delivery bound; >= 1
};

// Pre-GST link behavior. All of it is *bounded by the envelope*: a
// message that escapes the drop/partition fate is delivered no later
// than gst + delta however large its drawn delay was.
struct LinkFaults {
  Time min_delay = 1;       // pre-GST delay draw, inclusive lower bound
  Time max_delay = 12;      // pre-GST delay draw, inclusive upper bound
  int drop_permille = 0;    // per-message drop probability (0..1000)
  int partitions = 0;       // transient bipartition windows before GST
  Time partition_len = 64;  // length of each partition window
};

// The heartbeat protocol's knobs (src/sim/net/heartbeat.h): broadcast a
// heartbeat every `period`; suspect a peer after `initial_timeout` ticks
// of silence; on a late heartbeat from a suspected peer, un-suspect and
// raise that peer's timeout by `timeout_increment` (per-peer additive
// backoff — eventually the timeout exceeds period + delta and the false
// suspicions stop, which is the whole convergence argument).
struct HeartbeatConfig {
  Time period = 2;
  Time initial_timeout = 4;
  Time timeout_increment = 2;
};

struct NetConfig {
  SynchronyEnvelope env;
  LinkFaults faults;
  HeartbeatConfig hb;
  std::uint64_t seed = 1;
  // Ticks to simulate; 0 derives a bound from the envelope, the protocol
  // constants, and the pattern (resolvedHorizon) that comfortably covers
  // convergence of every realized lens.
  Time horizon = 0;

  [[nodiscard]] Time resolvedHorizon(const FailurePattern& fp) const {
    if (horizon > 0) return horizon;
    Time last_crash = 0;
    for (Pid p = 0; p < fp.nProcs(); ++p) {
      if (fp.crashTime(p) != kNeverCrashes) {
        last_crash = std::max(last_crash, fp.crashTime(p));
      }
    }
    const Time base = std::max(env.gst, last_crash);
    const Time slack =
        64 * (hb.period + env.delta + hb.initial_timeout + hb.timeout_increment);
    return base + slack;
  }

  // Pins every field that can change the simulated execution. Composes
  // with fd::digestPattern so (cfg, fp) keys realized histories.
  [[nodiscard]] std::uint64_t digest() const {
    using fd::mixDigest;
    std::uint64_t h = mixDigest(0x4E455457, 0x4F524C44);  // "NETW","ORLD"
    h = mixDigest(h, static_cast<std::uint64_t>(env.gst));
    h = mixDigest(h, static_cast<std::uint64_t>(env.delta));
    h = mixDigest(h, static_cast<std::uint64_t>(faults.min_delay));
    h = mixDigest(h, static_cast<std::uint64_t>(faults.max_delay));
    h = mixDigest(h, static_cast<std::uint64_t>(faults.drop_permille));
    h = mixDigest(h, static_cast<std::uint64_t>(faults.partitions));
    h = mixDigest(h, static_cast<std::uint64_t>(faults.partition_len));
    h = mixDigest(h, static_cast<std::uint64_t>(hb.period));
    h = mixDigest(h, static_cast<std::uint64_t>(hb.initial_timeout));
    h = mixDigest(h, static_cast<std::uint64_t>(hb.timeout_increment));
    h = mixDigest(h, seed);
    h = mixDigest(h, static_cast<std::uint64_t>(horizon));
    return h;
  }
};

}  // namespace wfd::sim::net
