// Failure patterns (paper Sect. 3.2).
//
// A failure pattern F maps time to the set of processes crashed by that
// time; crashes are permanent. We represent F by one crash time per
// process (kNeverCrashes for correct processes), which can express every
// pattern the paper quantifies over. The environment E_f is the set of
// patterns with |faulty(F)| <= f and at least one correct process.
#pragma once

#include <cstdint>
#include <vector>

#include "common/proc_set.h"
#include "common/types.h"

namespace wfd::sim {

using wfd::Pid;
using wfd::ProcSet;
using wfd::Time;

inline constexpr Time kNeverCrashes = INT64_MAX;

class FailurePattern {
 public:
  // All n+1 processes correct.
  static FailurePattern failureFree(int n_plus_1);

  // `crashed` crash at the given per-process times (same order as
  // crashed.members()); everyone else is correct.
  static FailurePattern withCrashes(int n_plus_1,
                                    const std::vector<std::pair<Pid, Time>>& crashes);

  // Uniformly random pattern with at most f faulty processes and at least
  // one correct one; crash times drawn from [0, horizon].
  static FailurePattern random(int n_plus_1, int f, Time horizon,
                               std::uint64_t seed);

  [[nodiscard]] int nProcs() const { return static_cast<int>(crash_at_.size()); }

  // F(t): set of processes crashed by time t.
  [[nodiscard]] ProcSet crashedBy(Time t) const;

  [[nodiscard]] bool isCorrect(Pid p) const {
    return crash_at_[static_cast<std::size_t>(p)] == kNeverCrashes;
  }
  [[nodiscard]] Time crashTime(Pid p) const {
    return crash_at_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] ProcSet correct() const;
  [[nodiscard]] ProcSet faulty() const;

  // Membership in the environment E_f.
  [[nodiscard]] bool inEnvironment(int f) const {
    return faulty().size() <= f && !correct().empty();
  }

  // Chaos crash injection (sim/chaos.h): mark p crashed at time t. Only
  // the simulator's chaos engine may mutate a pattern mid-run — a run's
  // pattern is otherwise immutable configuration (enforced statically by
  // tools/model_lint.py outside sim/). p must still be alive at t.
  void injectCrash(Pid p, Time t);

 private:
  explicit FailurePattern(std::vector<Time> crash_at)
      : crash_at_(std::move(crash_at)) {}
  std::vector<Time> crash_at_;
};

}  // namespace wfd::sim
