// Scheduler: turns process coroutines + a scheduling policy + a failure
// pattern into a run (paper Sect. 3.3).
//
// One call to step(p) is one atomic step of p: the scheduler executes p's
// pending shared-object/FD operation against the world, then resumes p's
// coroutine until it requests its next operation (or returns). The policy
// chooses which runnable process steps next; adversarial policies (used
// for the Theorem 1/5 separations) may inspect the whole world, which is
// exactly the power the paper's adversary has.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/coro.h"
#include "sim/env.h"
#include "sim/world.h"

namespace wfd::sim {

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  // Choose one process among `runnable` (never empty).
  virtual Pid next(const ProcSet& runnable, const World& world, Rng& rng) = 0;
};

// Uniformly random among runnable processes: fair with probability 1.
class RandomPolicy : public SchedulePolicy {
 public:
  Pid next(const ProcSet& runnable, const World&, Rng& rng) override;
};

// Cyclic order; the canonical fair schedule.
class RoundRobinPolicy : public SchedulePolicy {
 public:
  Pid next(const ProcSet& runnable, const World&, Rng& rng) override;

 private:
  Pid last_ = -1;
};

// Fixed prefix of pids (entries not runnable are skipped), then a fallback
// policy. Used to steer runs into the proofs' constructed prefixes.
class ScriptedPolicy : public SchedulePolicy {
 public:
  ScriptedPolicy(std::vector<Pid> script,
                 std::unique_ptr<SchedulePolicy> fallback);
  Pid next(const ProcSet& runnable, const World& world, Rng& rng) override;

 private:
  std::vector<Pid> script_;
  std::size_t pos_ = 0;
  std::unique_ptr<SchedulePolicy> fallback_;
};

// Partial synchrony (Dwork–Lynch–Stockmeyer, cited as [10] in the paper):
// before an unknown global stabilization time the schedule is chaotic —
// a rotating victim is starved for long stretches — and from GST on it is
// round-robin, so relative speeds are bounded. The paper's introduction
// motivates failure detectors as an abstraction of exactly this kind of
// timing assumption; core/omega_impl.h implements Omega on top of it.
class EventuallySynchronousPolicy : public SchedulePolicy {
 public:
  explicit EventuallySynchronousPolicy(Time gst, Time starve_stretch = 97)
      : gst_(gst), starve_stretch_(starve_stretch) {}
  Pid next(const ProcSet& runnable, const World& world, Rng& rng) override;

 private:
  Time gst_;
  Time starve_stretch_;
  RoundRobinPolicy rr_;
};

// Arbitrary adversary from a function.
class FnPolicy : public SchedulePolicy {
 public:
  using Fn = std::function<Pid(const ProcSet&, const World&, Rng&)>;
  explicit FnPolicy(Fn fn) : fn_(std::move(fn)) {}
  Pid next(const ProcSet& runnable, const World& world, Rng& rng) override {
    return fn_(runnable, world, rng);
  }

 private:
  Fn fn_;
};

class Scheduler {
 public:
  Scheduler(World* world, std::uint64_t seed) : world_(world), rng_(seed) {}

  // Register process p's automaton. Must be called once per pid before run.
  void add(Pid p, Coro<Unit> coro);

  // Processes allowed to take a step now: not finished, not crashed.
  //
  // Liveness is maintained incrementally — updated on add(), on a process
  // finishing in step(), and (lazily) when the clock reaches the next
  // scheduled crash or a chaos injection bumps World::patternVersion().
  // The pre-existing full-slot scans survive as *Scan() and, whenever a
  // step auditor is attached (WFD_AUDIT), every sync cross-checks the
  // cached state against them.
  [[nodiscard]] ProcSet runnable() const {
    syncLiveness();
    return runnable_;
  }

  [[nodiscard]] bool allCorrectDone() const {
    syncLiveness();
    return correct_undone_ == 0;
  }

  // One atomic step of p. p must be runnable.
  void step(Pid p);

  // Run under `policy` until all correct processes finished or max_steps
  // elapsed. Returns steps taken.
  Time run(SchedulePolicy& policy, Time max_steps);

  // ---- Checkpoint/restore (sim/explore.h prefix sharing) ----
  //
  // Coroutine frames cannot be copied, so a checkpoint stores, per
  // process, the stream of operation RESULTS it has consumed. restore()
  // rebuilds each frame by re-running the (deterministic) automaton
  // against that stream — a purely local replay that never touches the
  // world: no World::execute, no clock advance, no trace traffic.

  // Capture per-process result streams from here on. Must be called
  // before the first step; costs one OpResult copy per step when on.
  void enableResultLog();
  [[nodiscard]] bool resultLogEnabled() const { return log_results_; }

  // Stable digest of the results process p has consumed so far, in
  // program order. A component of the explorer's state-memoization key:
  // together with ctx(p).steps it pins down p's local automaton state.
  [[nodiscard]] std::uint64_t resultDigest(Pid p) const {
    assert(p >= 0 && static_cast<std::size_t>(p) < result_digest_.size());
    return result_digest_[static_cast<std::size_t>(p)];
  }

  struct ProcCheckpoint {
    bool started = false;
    bool done = false;
    bool crashed = false;
    Time steps = 0;
    std::vector<OpResult> results;  // consumed results, program order
    std::uint64_t result_digest = 0;
  };
  struct Checkpoint {
    Rng rng{0};
    std::vector<ProcCheckpoint> procs;
  };

  // Requires enableResultLog() to have been active since step one.
  [[nodiscard]] Checkpoint checkpoint() const;

  // Rebuild every process slot from `ck`; `make_coro` supplies a fresh
  // coroutine per pid (Run binds its algorithm + proposal). CONTRACT: the
  // caller restores the World to the matching snapshot BEFORE calling
  // this (replayed naming must resolve against the checkpointed object
  // table) and mutes the trace around it (replayed free actions re-fire).
  void restore(const Checkpoint& ck,
               const std::function<Coro<Unit>(Pid)>& make_coro);

  [[nodiscard]] const ProcCtx& ctx(Pid p) const {
    // Cold inspection path (checkers, tests); bounds-checked on purpose.
    return slots_.at(static_cast<std::size_t>(p))->ctx;  // model-lint-allow: cold inspection accessor
  }

  // The run's policy RNG (seeded from RunConfig::seed). External drivers
  // (sim/watchdog.h) draw from it so a watchdog-driven run replays the
  // exact schedule Scheduler::run would produce.
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  struct Slot {
    ProcCtx ctx;
    Coro<Unit> coro;
    bool started = false;
  };

  // Bring the cached liveness state up to date with the world clock and
  // failure pattern. Cheap (two compares) unless a crash time was crossed
  // or the pattern itself changed.
  void syncLiveness() const;
  void rebuildLiveness() const;  // full recompute after a pattern mutation
  void sweepCrashes() const;     // the clock reached next_crash_
  void auditCrossCheck() const;  // cached state vs. the reference scans

  // Reference implementations: the pre-refactor O(n) full-slot scans.
  // Only used by rebuildLiveness() and the audit-mode cross-check.
  [[nodiscard]] ProcSet runnableScan() const;
  [[nodiscard]] int correctUndoneScan() const;

  // Rebuild one slot from its checkpoint via local replay (see restore).
  void restoreSlot(Pid p, Coro<Unit> coro, const ProcCheckpoint& pc);

  World* world_;
  Rng rng_;
  std::vector<std::unique_ptr<Slot>> slots_;
  ProcSet undone_;  // registered processes whose coroutine has not returned

  // Checkpoint support: per-process consumed-result streams + digests.
  bool log_results_ = false;
  std::vector<std::vector<OpResult>> result_log_;
  std::vector<std::uint64_t> result_digest_;

  // Cached liveness, maintained by add()/step() and the lazy syncs above.
  // Mutable because runnable()/allCorrectDone() are conceptually const:
  // the cache is an implementation detail invisible to callers, and each
  // Scheduler is confined to one thread (a batch shard owns its runs).
  mutable ProcSet runnable_;         // undone_ minus crashed-by-now
  mutable int correct_undone_ = 0;   // |undone_ ∩ correct(F)|
  mutable Time next_crash_ = kNeverCrashes;  // min crash time in runnable_
  mutable std::uint64_t fp_version_seen_ = 0;
};

}  // namespace wfd::sim
