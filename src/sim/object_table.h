// The shared-memory object table of a simulated world.
//
// Objects are addressed by structured keys so that algorithms with
// unbounded round structure (the paper's D[r], Stable[r], converge[r][k],
// A[r][k], ...) can materialize objects lazily and deterministically: the
// first reference under a key creates the object with ⊥-initialized
// contents. Key resolution is a local (zero-step) action — what costs a
// step is *operating* on the object, never naming it.
#pragma once

#include <array>
#include <compare>
#include <map>
#include <string>
#include <vector>

#include "common/reg_val.h"
#include "common/types.h"

namespace wfd::sim {

// A structured object name: a tag plus up to four integer indices.
// Example: {"conv.A", r, k} names the first snapshot object of the
// k-converge instance used in round r, sub-round k.
//
// Deliberately TRIVIALLY COPYABLE (fixed-width tag buffer, no heap):
// ObjKeys are passed by value into coroutines, and GCC 12's coroutine
// lowering bitwise-copies class-type temporary arguments of an awaited
// coroutine call into the callee frame (double-destroying non-trivial
// members). For a trivially copyable type the bitwise copy is correct by
// definition, so the whole bug class is structurally excluded.
struct ObjKey {
  static constexpr std::size_t kTagCap = 32;  // incl. NUL

  std::array<char, kTagCap> tag{};
  int i0 = -1;
  int i1 = -1;
  int i2 = -1;
  int i3 = -1;

  ObjKey() = default;
  explicit ObjKey(const char* t, int a = -1, int b = -1, int c = -1,
                  int d = -1)
      : i0(a), i1(b), i2(c), i3(d) {
    append(t);
  }

  // Extend the tag in place (sub-object naming, e.g. ".A", "#cell7").
  void append(const char* s);
  void append(int n);

  auto operator<=>(const ObjKey&) const = default;
  [[nodiscard]] std::string toString() const;
};
static_assert(std::is_trivially_copyable_v<ObjKey>);

// How an object was touched — reported to the access observer below.
enum class ObjectAccess { kRead, kWrite, kScan, kUpdate, kPropose };

class ObjectTable {
 public:
  enum class Kind { kRegister, kSnapshot, kConsensus };

  // Observer of every step-costing primitive access (read/write/scan/
  // update/propose; naming is free and unobserved). The step auditor
  // (sim/step_audit.h) implements this to prove that all shared access
  // goes through the atomic-step machinery; the table itself stays
  // behavior-identical whether or not an observer is installed.
  class AccessObserver {
   public:
    virtual ~AccessObserver() = default;
    virtual void onObjectAccess(ObjId id, ObjectAccess access) = 0;
  };
  void setObserver(AccessObserver* obs) { observer_ = obs; }

  // Resolve-or-create. Registers start at ⊥; snapshot objects start with
  // `slots` ⊥ cells; consensus objects start undecided with a port limit
  // of `ports` distinct proposers. Requesting an existing key with a
  // mismatched kind or size is a protocol bug and asserts.
  ObjId regId(const ObjKey& key);
  ObjId snapId(const ObjKey& key, int slots);
  ObjId consId(const ObjKey& key, int ports);

  [[nodiscard]] const RegVal& read(ObjId id) const;
  void write(ObjId id, RegVal v);

  [[nodiscard]] const std::vector<RegVal>& scan(ObjId id) const;
  void update(ObjId id, int slot, RegVal v);

  // First proposal wins; returns the winner. Asserts the port limit.
  RegVal propose(ObjId id, Pid proposer, RegVal v);

  [[nodiscard]] std::size_t objectCount() const { return objects_.size(); }

 private:
  struct Object {
    Kind kind = Kind::kRegister;
    RegVal reg;                    // register value / consensus winner
    std::vector<RegVal> slots;     // snapshot cells
    ProcSet proposers;             // consensus: who proposed so far
    int ports = 0;                 // consensus: max distinct proposers
  };

 public:
  // ---- Checkpoint/restore (sim/explore.h prefix sharing) ----
  // A Snapshot deep-copies the key map and object vector; the RegVal
  // payloads inside (tuple cells) are immutable shared arrays, so the copy
  // shares them — O(1) per stored value. The access observer is part of
  // the *run's* wiring, not the memory state, and survives a restore.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class ObjectTable;
    std::map<ObjKey, ObjId> ids;
    std::vector<Object> objects;
    std::uint64_t xdigest = 0;
  };
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.ids = ids_;
    s.objects = objects_;
    s.xdigest = xdigest_;
    return s;
  }
  void restore(const Snapshot& s) {
    ids_ = s.ids;
    objects_ = s.objects;
    xdigest_ = s.xdigest;
  }

  // Stable structural digest of the table's entire contents, in creation
  // (ObjId) order. Free and unobserved — the explorer's state-memoization
  // key must not count as shared-memory traffic. Unlike the trace op
  // digest this depends only on the STATE, not on the op order that
  // produced it, so schedules converging to the same memory agree on it.
  [[nodiscard]] std::uint64_t contentsDigest() const;

  // Order-insensitive XOR-of-components digest of the same contents,
  // maintained INCREMENTALLY: every mutating access (write/update/
  // propose) and every object creation re-mixes only the touched object's
  // component, so reading it is O(1) per explorer step instead of the
  // O(table) full re-hash contentsDigest() pays. Same state-key
  // semantics: depends only on the contents, never on the op order.
  [[nodiscard]] std::uint64_t xorContentsDigest() const { return xdigest_; }
  // Full recompute of the incremental digest, for audit cross-checks
  // (the explorer compares it against the maintained value under
  // WFD_AUDIT and aborts on divergence).
  [[nodiscard]] std::uint64_t xorContentsDigestFull() const;

  // ---- Metadata for auditors (free, never observed) ----
  [[nodiscard]] bool knows(ObjId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < objects_.size();
  }
  [[nodiscard]] Kind kindOf(ObjId id) const;
  [[nodiscard]] int slotCount(ObjId id) const;      // snapshots
  // Snapshot cell contents without counting as an access — the stale-scan
  // auditor and the chaos capture hook compare views at zero model cost.
  [[nodiscard]] const std::vector<RegVal>& peekSlots(ObjId id) const {
    return objects_[static_cast<std::size_t>(id)].slots;
  }
  [[nodiscard]] int portLimit(ObjId id) const;      // consensus
  [[nodiscard]] int proposerCount(ObjId id) const;  // consensus
  [[nodiscard]] bool hasProposed(ObjId id, Pid p) const;

 private:
  void observe(ObjId id, ObjectAccess access) const {
    if (observer_ != nullptr) observer_->onObjectAccess(id, access);
  }
  // One object's salted component of the XOR digest; XORed out before a
  // mutation and back in after, so xdigest_ tracks the whole table.
  [[nodiscard]] static std::uint64_t objectComponent(ObjId id,
                                                     const Object& obj);
  std::map<ObjKey, ObjId> ids_;
  std::vector<Object> objects_;
  std::uint64_t xdigest_ = 0;
  AccessObserver* observer_ = nullptr;
};

}  // namespace wfd::sim
