// Chaos: composable, seed-deterministic fault injection for runs.
//
// The paper's results are adversarial: k-set agreement stays safe for
// ANY failure pattern in E_f, ANY history in D(F), ANY schedule. The
// normal test suite samples friendly corners of that space; the chaos
// engine samples hostile ones — crashes placed at critical steps, FD
// histories pushed to the edge of (and, for negative controls, past) the
// axioms, schedules that starve processes for long bounded stretches —
// while the run watchdog (sim/watchdog.h) turns every outcome into a
// structured RunReport instead of an assert or a hang.
//
// Injector legality contract (docs/CHAOS.md):
//  * Crash injection edits the run's failure pattern F to a later pattern
//    F' with MORE crashes. It is legal iff F' stays in the environment
//    the run's claims quantify over AND the run's FD history is still in
//    D(F'). The engine enforces the F' side itself (crash budget
//    `max_faulty`, at least one process left correct, `protected_pids`
//    untouchable); the D(F') side is the configuration's job — e.g. an
//    Upsilon run pins stable_set = Pi and pre-seeds one crash so that
//    stable_set != correct(F') survives any extra crash, and an Omega^k
//    run protects its stable leaders.
//  * FD glitches wrap the detector. Legal glitches (glitchIsLegal)
//    replace pre-stabilization output with fresh in-range noise or
//    postpone stabilization — histories still inside the detector's
//    axiom family, so safety MUST survive them. Illegal glitches are
//    negative controls: they break range, constancy, or the end-of-run
//    conditions, and the online axiom checker (sim/step_audit.h) MUST
//    flag them (verdict kAxiomViolation).
//  * Schedule bias (starvation windows, shared-memory op delay) only
//    filters the runnable set for bounded intervals and never empties
//    it, so every chaos schedule is still a schedule of the model and
//    fairness holds eventually. Safety never depends on fairness.
//
// Everything is a pure function of the configured seeds: replaying a
// ChaosConfig + RunConfig reproduces the run bit-for-bit (trace hash
// equality), which is what makes a chaos counterexample debuggable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "fd/failure_detector.h"
#include "sim/runner.h"
#include "sim/watchdog.h"

namespace wfd::sim {

// ---- FD glitch injection -------------------------------------------------

enum class GlitchKind {
  kNone,
  // Legal: the wrapped history stays inside the inner detector's axiom
  // family. Safety must survive these.
  kScrambleNoise,        // re-randomize pre-stabilization output (in range)
  kDelayStabilization,   // extend the noise phase by `delay` (reported
                         // honestly via stabilizationTime())
  // Illegal: negative controls for the online axiom checker.
  kEmptyAnswer,          // every answer {} — breaks non-emptiness/range
  kUndersizedAnswer,     // strictly below the family's minimum size
  kPostStabFlap,         // post-stabilization output flaps with t's parity
  kStabToCorrect,        // Upsilon control: stabilize on correct(F) exactly
  kStabExcludeCorrect,   // Omega^k control: stable set of faulty processes
};

[[nodiscard]] bool glitchIsLegal(GlitchKind k);
[[nodiscard]] const char* glitchName(GlitchKind k);

struct FdGlitch {
  GlitchKind kind = GlitchKind::kNone;
  Time delay = 0;          // kDelayStabilization: extra noise steps
  std::uint64_t seed = 0;  // reseeds scrambled noise
};

// ---- Crash injection -----------------------------------------------------

struct CrashInjection {
  enum class Strategy {
    kAtTime,    // crash `victim` when the clock reaches `at`
    kRandom,    // crash `count` seeded victims at seeded times in [0,horizon]
    kFdLeader,  // at `at`, crash the smallest live member of the FD's
                // current output — the process every k-converge round is
                // about to adopt as leader (the critical step)
    kOnDecide,  // crash a process at the step its decision lands, up to
                // `count` times (the classic "decide then die" adversary)
  };
  Strategy strategy = Strategy::kRandom;
  Pid victim = -1;          // kAtTime
  Time at = 0;              // kAtTime / kFdLeader trigger time
  Time horizon = 1000;      // kRandom: crash times drawn from [0, horizon]
  int count = 1;            // kRandom / kOnDecide
  std::uint64_t seed = 0;   // kRandom: victim/time stream
};

// ---- Object-level fault injection ---------------------------------------

// Stale-but-linearizable snapshot views (docs/CHAOS.md): each snapshot
// scan is, with probability permille/1000, served the view the object
// held when the scan was REQUESTED instead of when it executes — the
// oldest view an atomic scan may legally return (a scan linearizes
// anywhere between invocation and response, so the invocation-time
// memory is a legal linearization; concurrent updates simply order
// after it). Safety must survive this injector unconditionally.
//
// `illegal_past` is the negative control: serve the view captured at
// that process's PREVIOUS overridden scan of the same object — a view
// that can predate updates which completed before this scan even began.
// The step auditor's stale-scan rule (sim/step_audit.h) must flag it
// whenever the served view matches neither the request-time nor the
// response-time memory.
struct StaleSnapshot {
  int permille = 250;      // per-scan injection probability (0..1000)
  std::uint64_t seed = 0;  // independent fire stream
  bool illegal_past = false;
};

// ---- Schedule bias -------------------------------------------------------

// Starve `victims` for the bounded window [from, from + length).
struct StarvationWindow {
  ProcSet victims;
  Time from = 0;
  Time length = 0;
};

// Deprioritize processes whose pending operation touches shared memory
// (not FD queries, not local steps): in each period, seeded victims are
// held back for the first `hold` steps of the window. Models slow memory
// under contention; bounded by construction.
struct OpDelay {
  Time period = 64;
  Time hold = 16;
  std::uint64_t seed = 0;
};

// ---- Engine --------------------------------------------------------------

struct ChaosConfig {
  std::uint64_t seed = 1;
  // Crash budget: injected crashes keep |faulty(F')| <= max_faulty and
  // always leave at least one correct process. 0 disables all crash
  // injection regardless of `crashes`.
  int max_faulty = 0;
  ProcSet protected_pids;  // never crashed (FD-legality anchors)
  std::vector<CrashInjection> crashes;
  std::vector<StarvationWindow> starvation;
  std::optional<OpDelay> op_delay;
  std::optional<StaleSnapshot> stale_snapshot;
  FdGlitch glitch;

  [[nodiscard]] bool legal() const {
    // Crash/schedule injectors are always legal; stale snapshots are
    // legal unless running the illegal-past negative control.
    return glitchIsLegal(glitch.kind) &&
           !(stale_snapshot.has_value() && stale_snapshot->illegal_past);
  }
};

class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosConfig cfg) : cfg_(std::move(cfg)) {}

  // Wrap `inner` with the configured glitch (identity for kNone). The
  // wrapper forwards the inner detector's AxiomSpec unchanged, so the
  // online checker judges the glitched history against the inner
  // detector's own claim — which is exactly what makes illegal glitches
  // detectable.
  [[nodiscard]] fd::FdPtr wrapFd(fd::FdPtr inner, const FailurePattern& fp,
                                 int n_plus_1) const;

  // Crash triggers and pending-scan view captures; the watchdog calls
  // this before each schedule pick. The scheduler is consulted (read
  // only) for each process's pending operation, so a scan override can
  // be decided — and its request-time view captured — before the scan's
  // owning step runs.
  void beforeStep(World& world, const Scheduler& sched);

  // Stale-snapshot wiring (World::setScanOverride): true when the config
  // asks for scan injection at all.
  [[nodiscard]] bool wantsScanOverride() const {
    return cfg_.stale_snapshot.has_value() &&
           cfg_.stale_snapshot->permille > 0;
  }
  // The view to serve for p's executing scan of `obj`; nullopt = live
  // memory. Consumes the decision made in beforeStep.
  [[nodiscard]] std::optional<std::vector<RegVal>> overrideScan(Pid p,
                                                                ObjId obj);

  // Schedule-bias injectors: filter the runnable set. Falls back to the
  // unfiltered set rather than returning empty (schedules must make
  // progress; starvation is bias, not deadlock).
  [[nodiscard]] ProcSet filterRunnable(const ProcSet& runnable,
                                       const World& world,
                                       const Scheduler& sched) const;

  [[nodiscard]] int crashesInjected() const { return crashes_injected_; }
  [[nodiscard]] const ChaosConfig& config() const { return cfg_; }

 private:
  struct TimedCrash {
    Time at = 0;
    Pid victim = -1;
    bool fired = false;
  };
  struct LeaderCrash {
    Time at = 0;
    bool fired = false;
  };

  void plan(const World& world);  // lazy: needs n+1 from the world
  bool tryCrash(World& world, Pid victim);
  void captureScans(World& world, const Scheduler& sched);

  ChaosConfig cfg_;
  bool planned_ = false;
  std::vector<TimedCrash> timed_;
  std::vector<LeaderCrash> leader_;
  int on_decide_left_ = 0;
  std::size_t decide_scan_ = 0;  // trace events inspected for kOnDecide
  int crashes_injected_ = 0;

  // Stale-snapshot state. `scan_decided_` remembers which pending scan
  // (keyed by the owner's step count at request time) was already
  // decided, so one request is decided exactly once however many
  // beforeStep calls see it pending. `scan_pending_` holds views to
  // serve; `scan_prev_` the per-(pid, obj) previously captured view for
  // the illegal-past control.
  std::map<std::pair<Pid, ObjId>, Time> scan_decided_;
  std::map<std::pair<Pid, ObjId>, std::vector<RegVal>> scan_pending_;
  std::map<std::pair<Pid, ObjId>, std::vector<RegVal>> scan_prev_;
};

// Run `algo` under cfg's policy with chaos perturbations and the watchdog:
// wraps cfg.fd with the configured glitch, forces auditing on (default
// kThrow — the online axiom checker is the detection instrument), drives
// the schedule through the engine, and reports a structured verdict.
RunReport runChaosTask(const RunConfig& cfg, const ChaosConfig& chaos,
                       const WatchdogConfig& wd, const AlgoFn& algo,
                       const std::vector<Value>& proposals);

}  // namespace wfd::sim
