#include "sim/runner.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

namespace wfd::sim {

namespace {

// Audit mode for a run whose config left `audit` unset: the WFD_AUDIT
// environment variable turns auditing on process-wide, which is how the
// whole tier-1 suite and every bench harness get re-run under the
// auditor without per-call-site changes. Read ONCE per process (a
// thread-safe magic static): getenv is not guaranteed safe against
// concurrent environment access, and batch workers construct Runs
// concurrently (sim/batch.h) — besides, a 10k-cell sweep has no business
// re-reading an unchanging variable per Run.
std::optional<AuditMode> envAuditMode() {
  static const std::optional<AuditMode> cached = []() -> std::optional<AuditMode> {
    const char* e = std::getenv("WFD_AUDIT");
    if (e == nullptr) return std::nullopt;
    if (std::strcmp(e, "collect") == 0) return AuditMode::kCollect;
    if (std::strcmp(e, "throw") == 0) return AuditMode::kThrow;
    return std::nullopt;
  }();
  return cached;
}

}  // namespace

int RunResult::distinctDecisions() const {
  std::set<Value> vals;
  for (const auto& [p, v] : decisions) vals.insert(v);
  return static_cast<int>(vals.size());
}

Run::Run(const RunConfig& cfg, const AlgoFn& algo,
         const std::vector<Value>& proposals)
    : algo_(algo), proposals_(proposals) {
  // Structured errors rather than assert/abort: a chaos-perturbed or
  // mis-assembled configuration must terminate diagnosably (watchdog.h).
  if (static_cast<int>(proposals.size()) != cfg.n_plus_1) {
    throw SimAbort("run configured for n+1=" + std::to_string(cfg.n_plus_1) +
                   " processes but given " + std::to_string(proposals.size()) +
                   " proposals");
  }
  FailurePattern fp =
      cfg.fp.has_value() ? *cfg.fp : FailurePattern::failureFree(cfg.n_plus_1);
  if (fp.nProcs() != cfg.n_plus_1) {
    throw SimAbort("failure pattern covers " + std::to_string(fp.nProcs()) +
                   " processes but the run has n+1=" +
                   std::to_string(cfg.n_plus_1));
  }
  world_ = std::make_unique<World>(cfg.n_plus_1, std::move(fp), cfg.fd,
                                   cfg.flavor);
  const std::optional<AuditMode> audit = resolvedAuditMode(cfg.audit);
  if (audit.has_value()) world_->enableAudit(*audit);
  sched_ = std::make_unique<Scheduler>(world_.get(), cfg.seed ^ 0x5EED);
  for (Pid p = 0; p < cfg.n_plus_1; ++p) {
    envs_.emplace_back(world_.get(), p);
    sched_->add(p, algo(envs_.back(), proposals[static_cast<std::size_t>(p)]));
  }
}

void Run::restore(const RunCheckpoint& ck) {
  // Order matters. (1) World first: the replayed coroutines re-run their
  // zero-cost naming calls, which must resolve against the checkpointed
  // object table (ObjIds are assigned in first-reference order, which can
  // differ between branches). (2) Trace muted around the local replay:
  // replayed free actions (propose/decide/note/publish) re-fire with the
  // restored clock, not their original timestamps. Re-published values are
  // harmless — a process's published variable is single-writer, so the
  // replay's last write equals the checkpointed value.
  world_->restore(ck.world);
  world_->trace().setMuted(true);
  struct UnmuteGuard {
    Trace* t;
    ~UnmuteGuard() { t->setMuted(false); }
  } guard{&world_->trace()};
  sched_->restore(ck.sched, [this](Pid p) {
    return algo_(envs_[static_cast<std::size_t>(p)],
                 proposals_[static_cast<std::size_t>(p)]);
  });
}

RunResult Run::finish(Time steps_taken) {
  RunResult res;
  res.steps = steps_taken;
  res.all_correct_done = sched_->allCorrectDone();
  // Close the audit window first: the end-of-run FD-axiom conditions run
  // inside endAuditObservation, so the collect-mode report below includes
  // them (in kThrow mode they raise StepAuditError instead).
  world_->endAuditObservation();
  // Collect-mode audits surface their findings even if nobody inspects
  // the result: a silent model violation is exactly what the auditor
  // exists to prevent. (kThrow already surfaced them as StepAuditError;
  // chaos negative-control runs would otherwise spam stderr.)
  if (const StepAuditor* a = world_->auditor();
      a != nullptr && a->mode() == AuditMode::kCollect && !a->clean()) {
    std::fprintf(stderr, "%s\n", a->report().c_str());
  }
  for (const auto& e : world_->trace().ofKind(EventKind::kDecide)) {
    res.decisions[e.pid] = e.value.asInt();
  }
  // Destroy coroutine frames (which reference envs_ and world_) before the
  // world is handed out.
  sched_.reset();
  envs_.clear();
  res.world = std::move(world_);
  return res;
}

std::optional<AuditMode> resolvedAuditMode(
    const std::optional<AuditMode>& audit) {
  return audit.has_value() ? audit : envAuditMode();
}

RunResult runTask(const RunConfig& cfg, const AlgoFn& algo,
                  const std::vector<Value>& proposals) {
  Run run(cfg, algo, proposals);
  std::unique_ptr<SchedulePolicy> policy;
  if (cfg.policy == PolicyKind::kRoundRobin) {
    policy = std::make_unique<RoundRobinPolicy>();
  } else {
    policy = std::make_unique<RandomPolicy>();
  }
  const Time taken = run.scheduler().run(*policy, cfg.max_steps);
  return run.finish(taken);
}

}  // namespace wfd::sim
