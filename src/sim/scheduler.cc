#include "sim/scheduler.h"

#include <cassert>

namespace wfd::sim {

ProcCtx*& currentProc() {
  thread_local ProcCtx* cur = nullptr;
  return cur;
}

// The policies below run once per simulated step, so they must not touch
// the heap: rank-based selection via ProcSet::nth / nextAbove replaces the
// old members() vectors. Each rewrite draws from the RNG exactly as the
// vector version did (same call count, same bounds), so every schedule —
// and therefore every golden trace hash — is bit-identical.

Pid RandomPolicy::next(const ProcSet& runnable, const World&, Rng& rng) {
  const auto size = static_cast<std::uint64_t>(runnable.size());
  return runnable.nth(static_cast<int>(rng.below(size)));
}

Pid RoundRobinPolicy::next(const ProcSet& runnable, const World&, Rng&) {
  // Smallest pid strictly greater than last_, wrapping around.
  const Pid above = runnable.nextAbove(last_);
  last_ = above >= 0 ? above : runnable.min();
  return last_;
}

Pid EventuallySynchronousPolicy::next(const ProcSet& runnable,
                                      const World& world, Rng& rng) {
  if (world.now() >= gst_) return rr_.next(runnable, world, rng);
  // Chaotic phase: starve a rotating victim; run the rest at random.
  const auto size = static_cast<std::size_t>(runnable.size());
  if (size == 1) return runnable.min();
  const auto victim_idx = static_cast<std::size_t>(
      (world.now() / starve_stretch_) % static_cast<Time>(size));
  std::size_t pick = rng.below(size - 1);
  if (pick >= victim_idx) ++pick;
  return runnable.nth(static_cast<int>(pick));
}

ScriptedPolicy::ScriptedPolicy(std::vector<Pid> script,
                               std::unique_ptr<SchedulePolicy> fallback)
    : script_(std::move(script)), fallback_(std::move(fallback)) {
  assert(fallback_ != nullptr);
}

Pid ScriptedPolicy::next(const ProcSet& runnable, const World& world,
                         Rng& rng) {
  while (pos_ < script_.size()) {
    const Pid p = script_[pos_++];
    if (runnable.contains(p)) return p;
  }
  return fallback_->next(runnable, world, rng);
}

void Scheduler::add(Pid p, Coro<Unit> coro) {
  if (static_cast<std::size_t>(p) >= slots_.size()) {
    slots_.resize(static_cast<std::size_t>(p) + 1);
  }
  auto slot = std::make_unique<Slot>();
  slot->ctx.pid = p;
  slot->coro = std::move(coro);
  slots_[static_cast<std::size_t>(p)] = std::move(slot);
  // Fold the newcomer into the cached liveness state.
  undone_.insert(p);
  if (world_->pattern().isCorrect(p)) ++correct_undone_;
  const Time ct = world_->pattern().crashTime(p);
  if (ct > world_->now()) {
    runnable_.insert(p);
    if (ct < next_crash_) next_crash_ = ct;
  }
}

// ---- Cached liveness ------------------------------------------------------

ProcSet Scheduler::runnableScan() const {
  ProcSet s;
  const Time now = world_->now();
  for (const auto& slot : slots_) {
    if (!slot) continue;
    const Pid p = slot->ctx.pid;
    if (slot->ctx.done) continue;
    if (world_->pattern().crashTime(p) <= now) continue;  // p in F(now)
    s.insert(p);
  }
  return s;
}

int Scheduler::correctUndoneScan() const {
  int n = 0;
  for (const auto& slot : slots_) {
    if (!slot) continue;
    if (world_->pattern().isCorrect(slot->ctx.pid) && !slot->ctx.done) ++n;
  }
  return n;
}

void Scheduler::syncLiveness() const {
  if (world_->patternVersion() != fp_version_seen_) {
    rebuildLiveness();  // chaos injected a crash: the pattern changed
  } else if (world_->now() >= next_crash_) {
    sweepCrashes();  // the clock reached a pre-scheduled crash time
  }
  if (world_->auditor() != nullptr) auditCrossCheck();
}

void Scheduler::rebuildLiveness() const {
  fp_version_seen_ = world_->patternVersion();
  const Time now = world_->now();
  runnable_ = ProcSet{};
  correct_undone_ = 0;
  next_crash_ = kNeverCrashes;
  for (const Pid p : undone_) {
    if (world_->pattern().isCorrect(p)) ++correct_undone_;
    const Time ct = world_->pattern().crashTime(p);
    if (ct > now) {
      runnable_.insert(p);
      if (ct < next_crash_) next_crash_ = ct;
    }
  }
}

void Scheduler::sweepCrashes() const {
  const Time now = world_->now();
  Time next = kNeverCrashes;
  // The iterator snapshots the mask, so erasing mid-loop is safe.
  for (const Pid p : runnable_) {
    const Time ct = world_->pattern().crashTime(p);
    if (ct <= now) {
      runnable_.erase(p);  // p is in F(now) from here on
    } else if (ct < next) {
      next = ct;
    }
  }
  next_crash_ = next;
}

void Scheduler::auditCrossCheck() const {
  // Audit mode re-derives liveness with the pre-refactor scans every sync;
  // any divergence is an internal invariant failure, reported through the
  // same diagnosable channel as other model violations.
  if (runnable_ != runnableScan()) {
    throw SimAbort("scheduler audit: cached runnable set diverged from scan");
  }
  if (correct_undone_ != correctUndoneScan()) {
    throw SimAbort(
        "scheduler audit: cached correct-undone count diverged from scan");
  }
}

void Scheduler::step(Pid p) {
  assert(static_cast<std::size_t>(p) < slots_.size() && slots_[static_cast<std::size_t>(p)]);
  auto& slot = *slots_[static_cast<std::size_t>(p)];
  // Audit hooks come first: in kThrow mode the auditor must get to
  // report a crashed-process step before the asserts below halt us.
  StepAuditor* const audit = world_->auditor();
  if (audit != nullptr) {
    if (!slot.ctx.on_op_requested) {
      slot.ctx.on_op_requested = [audit, p](const Op& op, bool pending) {
        audit->onOpRequested(p, op, pending);
      };
    }
    audit->onStepBegin(p);
  }
  assert(!slot.ctx.done);
  assert(world_->pattern().crashTime(p) > world_->now());

  // Reset the current-process pointer even if an audit error is thrown
  // mid-step (kThrow mode), so a caught StepAuditError leaves the
  // scheduler reusable for inspection.
  struct CurrentProcGuard {
    ~CurrentProcGuard() { currentProc() = nullptr; }
  } guard;
  currentProc() = &slot.ctx;
  // Flat resume loop: run handles until the process requests its next
  // atomic operation or its top-level coroutine completes. Child starts
  // and completions update resume_point without nesting resume() calls.
  const auto runUntilBlockedOrDone = [&slot] {
    while (!slot.ctx.pending.has_value() && slot.ctx.resume_point) {
      const std::coroutine_handle<> h = slot.ctx.resume_point;
      h.resume();
    }
  };
  if (!slot.started) {
    // Fold the prologue (initial local computation up to the first
    // operation request) into the first step, so that every step executes
    // exactly one atomic operation — one candidate-loop iteration per
    // scheduled step, matching the paper's step granularity.
    slot.ctx.resume_point = slot.coro.handle();
    slot.started = true;
    runUntilBlockedOrDone();
  }
  if (slot.ctx.pending.has_value()) {
    slot.ctx.result = world_->execute(p, *slot.ctx.pending);
    slot.ctx.pending.reset();
    runUntilBlockedOrDone();
  }
  currentProc() = nullptr;

  ++slot.ctx.steps;
  world_->advanceClock();
  if (audit != nullptr) audit->onStepEnd(p);

  if (slot.coro.done()) {
    slot.ctx.done = true;
    // Retire p from the cached liveness state.
    undone_.erase(p);
    runnable_.erase(p);
    if (world_->pattern().isCorrect(p)) --correct_undone_;
    slot.coro.rethrowIfFailed();
  }
}

Time Scheduler::run(SchedulePolicy& policy, Time max_steps) {
  Time taken = 0;
  while (taken < max_steps) {
    // One sync covers both checks and the policy call below; runnable()
    // and allCorrectDone() are not re-entered per step.
    syncLiveness();
    if (correct_undone_ == 0) break;
    if (runnable_.empty()) break;  // every live process finished
    const Pid p = policy.next(runnable_, *world_, rng_);
    assert(runnable_.contains(p) && "policy chose a non-runnable process");
    step(p);
    ++taken;
  }
  return taken;
}

}  // namespace wfd::sim
