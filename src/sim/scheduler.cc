#include "sim/scheduler.h"

#include <cassert>

namespace wfd::sim {

ProcCtx*& currentProc() {
  thread_local ProcCtx* cur = nullptr;
  return cur;
}

Pid RandomPolicy::next(const ProcSet& runnable, const World&, Rng& rng) {
  const auto members = runnable.members();
  return members[rng.below(members.size())];
}

Pid RoundRobinPolicy::next(const ProcSet& runnable, const World&, Rng&) {
  // Smallest pid strictly greater than last_, wrapping around.
  const auto members = runnable.members();
  for (Pid p : members) {
    if (p > last_) {
      last_ = p;
      return p;
    }
  }
  last_ = members.front();
  return last_;
}

Pid EventuallySynchronousPolicy::next(const ProcSet& runnable,
                                      const World& world, Rng& rng) {
  if (world.now() >= gst_) return rr_.next(runnable, world, rng);
  // Chaotic phase: starve a rotating victim; run the rest at random.
  const auto members = runnable.members();
  if (members.size() == 1) return members.front();
  const auto victim_idx = static_cast<std::size_t>(
      (world.now() / starve_stretch_) % static_cast<Time>(members.size()));
  std::size_t pick = rng.below(members.size() - 1);
  if (pick >= victim_idx) ++pick;
  return members[pick];
}

ScriptedPolicy::ScriptedPolicy(std::vector<Pid> script,
                               std::unique_ptr<SchedulePolicy> fallback)
    : script_(std::move(script)), fallback_(std::move(fallback)) {
  assert(fallback_ != nullptr);
}

Pid ScriptedPolicy::next(const ProcSet& runnable, const World& world,
                         Rng& rng) {
  while (pos_ < script_.size()) {
    const Pid p = script_[pos_++];
    if (runnable.contains(p)) return p;
  }
  return fallback_->next(runnable, world, rng);
}

void Scheduler::add(Pid p, Coro<Unit> coro) {
  if (static_cast<std::size_t>(p) >= slots_.size()) {
    slots_.resize(static_cast<std::size_t>(p) + 1);
  }
  auto slot = std::make_unique<Slot>();
  slot->ctx.pid = p;
  slot->coro = std::move(coro);
  slots_[static_cast<std::size_t>(p)] = std::move(slot);
}

ProcSet Scheduler::runnable() const {
  ProcSet s;
  const Time now = world_->now();
  for (const auto& slot : slots_) {
    if (!slot) continue;
    const Pid p = slot->ctx.pid;
    if (slot->ctx.done) continue;
    if (world_->pattern().crashTime(p) <= now) continue;  // p in F(now)
    s.insert(p);
  }
  return s;
}

bool Scheduler::allCorrectDone() const {
  for (const auto& slot : slots_) {
    if (!slot) continue;
    if (world_->pattern().isCorrect(slot->ctx.pid) && !slot->ctx.done) {
      return false;
    }
  }
  return true;
}

void Scheduler::step(Pid p) {
  auto& slot = *slots_.at(static_cast<std::size_t>(p));
  // Audit hooks come first: in kThrow mode the auditor must get to
  // report a crashed-process step before the asserts below halt us.
  StepAuditor* const audit = world_->auditor();
  if (audit != nullptr) {
    if (!slot.ctx.on_op_requested) {
      slot.ctx.on_op_requested = [audit, p](const Op& op, bool pending) {
        audit->onOpRequested(p, op, pending);
      };
    }
    audit->onStepBegin(p);
  }
  assert(!slot.ctx.done);
  assert(world_->pattern().crashTime(p) > world_->now());

  // Reset the current-process pointer even if an audit error is thrown
  // mid-step (kThrow mode), so a caught StepAuditError leaves the
  // scheduler reusable for inspection.
  struct CurrentProcGuard {
    ~CurrentProcGuard() { currentProc() = nullptr; }
  } guard;
  currentProc() = &slot.ctx;
  // Flat resume loop: run handles until the process requests its next
  // atomic operation or its top-level coroutine completes. Child starts
  // and completions update resume_point without nesting resume() calls.
  const auto runUntilBlockedOrDone = [&slot] {
    while (!slot.ctx.pending.has_value() && slot.ctx.resume_point) {
      const std::coroutine_handle<> h = slot.ctx.resume_point;
      h.resume();
    }
  };
  if (!slot.started) {
    // Fold the prologue (initial local computation up to the first
    // operation request) into the first step, so that every step executes
    // exactly one atomic operation — one candidate-loop iteration per
    // scheduled step, matching the paper's step granularity.
    slot.ctx.resume_point = slot.coro.handle();
    slot.started = true;
    runUntilBlockedOrDone();
  }
  if (slot.ctx.pending.has_value()) {
    slot.ctx.result = world_->execute(p, *slot.ctx.pending);
    slot.ctx.pending.reset();
    runUntilBlockedOrDone();
  }
  currentProc() = nullptr;

  ++slot.ctx.steps;
  world_->advanceClock();
  if (audit != nullptr) audit->onStepEnd(p);

  if (slot.coro.done()) {
    slot.ctx.done = true;
    slot.coro.rethrowIfFailed();
  }
}

Time Scheduler::run(SchedulePolicy& policy, Time max_steps) {
  Time taken = 0;
  while (taken < max_steps) {
    if (allCorrectDone()) break;
    const ProcSet r = runnable();
    if (r.empty()) break;  // every live process finished
    const Pid p = policy.next(r, *world_, rng_);
    assert(r.contains(p) && "policy chose a non-runnable process");
    step(p);
    ++taken;
  }
  return taken;
}

}  // namespace wfd::sim
