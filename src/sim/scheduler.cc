#include "sim/scheduler.h"

#include <cassert>

namespace wfd::sim {

ProcCtx*& currentProc() {
  thread_local ProcCtx* cur = nullptr;
  return cur;
}

// The policies below run once per simulated step, so they must not touch
// the heap: rank-based selection via ProcSet::nth / nextAbove replaces the
// old members() vectors. Each rewrite draws from the RNG exactly as the
// vector version did (same call count, same bounds), so every schedule —
// and therefore every golden trace hash — is bit-identical.

Pid RandomPolicy::next(const ProcSet& runnable, const World&, Rng& rng) {
  const auto size = static_cast<std::uint64_t>(runnable.size());
  return runnable.nth(static_cast<int>(rng.below(size)));
}

Pid RoundRobinPolicy::next(const ProcSet& runnable, const World&, Rng&) {
  // Smallest pid strictly greater than last_, wrapping around.
  const Pid above = runnable.nextAbove(last_);
  last_ = above >= 0 ? above : runnable.min();
  return last_;
}

Pid EventuallySynchronousPolicy::next(const ProcSet& runnable,
                                      const World& world, Rng& rng) {
  if (world.now() >= gst_) return rr_.next(runnable, world, rng);
  // Chaotic phase: starve a rotating victim; run the rest at random.
  const auto size = static_cast<std::size_t>(runnable.size());
  if (size == 1) return runnable.min();
  const auto victim_idx = static_cast<std::size_t>(
      (world.now() / starve_stretch_) % static_cast<Time>(size));
  std::size_t pick = rng.below(size - 1);
  if (pick >= victim_idx) ++pick;
  return runnable.nth(static_cast<int>(pick));
}

ScriptedPolicy::ScriptedPolicy(std::vector<Pid> script,
                               std::unique_ptr<SchedulePolicy> fallback)
    : script_(std::move(script)), fallback_(std::move(fallback)) {
  assert(fallback_ != nullptr);
}

Pid ScriptedPolicy::next(const ProcSet& runnable, const World& world,
                         Rng& rng) {
  while (pos_ < script_.size()) {
    const Pid p = script_[pos_++];
    if (runnable.contains(p)) return p;
  }
  return fallback_->next(runnable, world, rng);
}

void Scheduler::add(Pid p, Coro<Unit> coro) {
  if (static_cast<std::size_t>(p) >= slots_.size()) {
    slots_.resize(static_cast<std::size_t>(p) + 1);
  }
  auto slot = std::make_unique<Slot>();
  slot->ctx.pid = p;
  slot->coro = std::move(coro);
  slots_[static_cast<std::size_t>(p)] = std::move(slot);
  // Fold the newcomer into the cached liveness state.
  undone_.insert(p);
  if (world_->pattern().isCorrect(p)) ++correct_undone_;
  const Time ct = world_->pattern().crashTime(p);
  if (ct > world_->now()) {
    runnable_.insert(p);
    if (ct < next_crash_) next_crash_ = ct;
  }
}

// ---- Cached liveness ------------------------------------------------------

ProcSet Scheduler::runnableScan() const {
  ProcSet s;
  const Time now = world_->now();
  for (const auto& slot : slots_) {
    if (!slot) continue;
    const Pid p = slot->ctx.pid;
    if (slot->ctx.done) continue;
    if (world_->pattern().crashTime(p) <= now) continue;  // p in F(now)
    s.insert(p);
  }
  return s;
}

int Scheduler::correctUndoneScan() const {
  int n = 0;
  for (const auto& slot : slots_) {
    if (!slot) continue;
    if (world_->pattern().isCorrect(slot->ctx.pid) && !slot->ctx.done) ++n;
  }
  return n;
}

void Scheduler::syncLiveness() const {
  if (world_->patternVersion() != fp_version_seen_) {
    rebuildLiveness();  // chaos injected a crash: the pattern changed
  } else if (world_->now() >= next_crash_) {
    sweepCrashes();  // the clock reached a pre-scheduled crash time
  }
  if (world_->auditor() != nullptr) auditCrossCheck();
}

void Scheduler::rebuildLiveness() const {
  fp_version_seen_ = world_->patternVersion();
  const Time now = world_->now();
  runnable_ = ProcSet{};
  correct_undone_ = 0;
  next_crash_ = kNeverCrashes;
  for (const Pid p : undone_) {
    if (world_->pattern().isCorrect(p)) ++correct_undone_;
    const Time ct = world_->pattern().crashTime(p);
    if (ct > now) {
      runnable_.insert(p);
      if (ct < next_crash_) next_crash_ = ct;
    }
  }
}

void Scheduler::sweepCrashes() const {
  const Time now = world_->now();
  Time next = kNeverCrashes;
  // The iterator snapshots the mask, so erasing mid-loop is safe.
  for (const Pid p : runnable_) {
    const Time ct = world_->pattern().crashTime(p);
    if (ct <= now) {
      runnable_.erase(p);  // p is in F(now) from here on
    } else if (ct < next) {
      next = ct;
    }
  }
  next_crash_ = next;
}

void Scheduler::auditCrossCheck() const {
  // Audit mode re-derives liveness with the pre-refactor scans every sync;
  // any divergence is an internal invariant failure, reported through the
  // same diagnosable channel as other model violations.
  if (runnable_ != runnableScan()) {
    throw SimAbort("scheduler audit: cached runnable set diverged from scan");
  }
  if (correct_undone_ != correctUndoneScan()) {
    throw SimAbort(
        "scheduler audit: cached correct-undone count diverged from scan");
  }
}

void Scheduler::step(Pid p) {
  assert(static_cast<std::size_t>(p) < slots_.size() && slots_[static_cast<std::size_t>(p)]);
  auto& slot = *slots_[static_cast<std::size_t>(p)];
  // Audit hooks come first: in kThrow mode the auditor must get to
  // report a crashed-process step before the asserts below halt us.
  StepAuditor* const audit = world_->auditor();
  if (audit != nullptr) {
    if (!slot.ctx.on_op_requested) {
      slot.ctx.on_op_requested = [audit, p](const Op& op, bool pending) {
        audit->onOpRequested(p, op, pending);
      };
    }
    audit->onStepBegin(p);
  }
  assert(!slot.ctx.done);
  assert(world_->pattern().crashTime(p) > world_->now());

  // Reset the current-process pointer even if an audit error is thrown
  // mid-step (kThrow mode), so a caught StepAuditError leaves the
  // scheduler reusable for inspection.
  struct CurrentProcGuard {
    ~CurrentProcGuard() { currentProc() = nullptr; }
  } guard;
  currentProc() = &slot.ctx;
  // Flat resume loop: run handles until the process requests its next
  // atomic operation or its top-level coroutine completes. Child starts
  // and completions update resume_point without nesting resume() calls.
  const auto runUntilBlockedOrDone = [&slot] {
    while (!slot.ctx.pending.has_value() && slot.ctx.resume_point) {
      const std::coroutine_handle<> h = slot.ctx.resume_point;
      h.resume();
    }
  };
  if (!slot.started) {
    // Fold the prologue (initial local computation up to the first
    // operation request) into the first step, so that every step executes
    // exactly one atomic operation — one candidate-loop iteration per
    // scheduled step, matching the paper's step granularity.
    slot.ctx.resume_point = slot.coro.handle();
    slot.started = true;
    runUntilBlockedOrDone();
  }
  if (slot.ctx.pending.has_value()) {
    slot.ctx.result = world_->execute(p, *slot.ctx.pending);
    if (log_results_) {
      // Copy before the resume below moves the result into the awaiter.
      result_log_[static_cast<std::size_t>(p)].push_back(slot.ctx.result);
      auto& digest = result_digest_[static_cast<std::size_t>(p)];
      digest = stateMix64(digest, resultSignature(slot.ctx.result));
    }
    slot.ctx.pending.reset();
    runUntilBlockedOrDone();
  }
  currentProc() = nullptr;

  ++slot.ctx.steps;
  world_->advanceClock();
  if (audit != nullptr) audit->onStepEnd(p);

  if (slot.coro.done()) {
    slot.ctx.done = true;
    // Retire p from the cached liveness state.
    undone_.erase(p);
    runnable_.erase(p);
    if (world_->pattern().isCorrect(p)) --correct_undone_;
    slot.coro.rethrowIfFailed();
  }
}

// ---- Checkpoint/restore ---------------------------------------------------

void Scheduler::enableResultLog() {
  if (log_results_) return;
  if (world_->now() != 0) {
    throw SimAbort(
        "Scheduler::enableResultLog must be called before the first step: "
        "a checkpoint needs the complete per-process result streams");
  }
  log_results_ = true;
  result_log_.assign(slots_.size(), {});
  result_digest_.assign(slots_.size(), 0);
}

Scheduler::Checkpoint Scheduler::checkpoint() const {
  if (!log_results_) {
    throw SimAbort(
        "Scheduler::checkpoint requires enableResultLog() from step one");
  }
  Checkpoint ck;
  ck.rng = rng_;
  ck.procs.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]) continue;
    const Slot& slot = *slots_[i];
    ProcCheckpoint& pc = ck.procs[i];
    pc.started = slot.started;
    pc.done = slot.ctx.done;
    pc.crashed = slot.ctx.crashed;
    pc.steps = slot.ctx.steps;
    pc.results = result_log_[i];
    pc.result_digest = result_digest_[i];
  }
  return ck;
}

void Scheduler::restoreSlot(Pid p, Coro<Unit> coro, const ProcCheckpoint& pc) {
  auto slot = std::make_unique<Slot>();
  slot->ctx.pid = p;
  slot->coro = std::move(coro);
  if (pc.started) {
    slot->started = true;
    // Local replay: drive the fresh frame with the recorded result stream
    // until it has consumed every checkpointed result and parked at its
    // next operation request (or returned). Mirrors step()'s flat resume
    // loop, minus the world: results come from the log, not execute().
    struct CurrentProcGuard {
      ~CurrentProcGuard() { currentProc() = nullptr; }
    } guard;
    currentProc() = &slot->ctx;
    slot->ctx.resume_point = slot->coro.handle();
    std::size_t fed = 0;
    for (;;) {
      while (!slot->ctx.pending.has_value() && slot->ctx.resume_point) {
        const std::coroutine_handle<> h = slot->ctx.resume_point;
        h.resume();
      }
      if (!slot->ctx.pending.has_value()) break;  // automaton returned
      if (fed == pc.results.size()) break;        // parked at the next op
      slot->ctx.result = pc.results[fed++];
      slot->ctx.pending.reset();
    }
    if (fed != pc.results.size() || slot->coro.done() != pc.done) {
      // A deterministic automaton replays exactly; divergence means local
      // nondeterminism (unseeded randomness, address-dependent branching).
      throw SimAbort("checkpoint restore: p" + std::to_string(p + 1) +
                     " diverged during local replay — process automata "
                     "must be deterministic functions of their inputs");
    }
  }
  slot->ctx.steps = pc.steps;
  slot->ctx.done = pc.done;
  slot->ctx.crashed = pc.crashed;
  slots_[static_cast<std::size_t>(p)] = std::move(slot);
}

void Scheduler::restore(const Checkpoint& ck,
                        const std::function<Coro<Unit>(Pid)>& make_coro) {
  if (!log_results_) {
    throw SimAbort("Scheduler::restore requires enableResultLog()");
  }
  assert(ck.procs.size() == slots_.size() &&
         "checkpoint from a differently-shaped run");
  undone_ = ProcSet{};
  for (std::size_t i = 0; i < ck.procs.size(); ++i) {
    const Pid p = static_cast<Pid>(i);
    restoreSlot(p, make_coro(p), ck.procs[i]);
    if (!ck.procs[i].done) undone_.insert(p);
    result_log_[i] = ck.procs[i].results;
    result_digest_[i] = ck.procs[i].result_digest;
  }
  rng_ = ck.rng;
  // Contract: the caller restored the world first, so the rebuild sees
  // the checkpointed clock and failure pattern.
  rebuildLiveness();
}

Time Scheduler::run(SchedulePolicy& policy, Time max_steps) {
  Time taken = 0;
  while (taken < max_steps) {
    // One sync covers both checks and the policy call below; runnable()
    // and allCorrectDone() are not re-entered per step.
    syncLiveness();
    if (correct_undone_ == 0) break;
    if (runnable_.empty()) break;  // every live process finished
    const Pid p = policy.next(runnable_, *world_, rng_);
    assert(runnable_.contains(p) && "policy chose a non-runnable process");
    step(p);
    ++taken;
  }
  return taken;
}

}  // namespace wfd::sim
