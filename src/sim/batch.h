// Parallel batch-run engine: shard independent (seed x config) cells
// across a fixed-size worker pool with deterministic aggregation.
//
// Every experiment in EXPERIMENTS.md is a loop over independent cells —
// one complete run recipe per (seed, configuration) pair — and a run is a
// pure function of its cell: the world, scheduler, coroutine frames, and
// trace are all owned by the Run, and the only objects a cell shares with
// anything else (the FdPtr history, the AlgoFn callable) are immutable
// and queried through const, stateless interfaces. That makes sharding
// safe by construction: each worker executes whole cells on its own
// Run/World/Scheduler stack, NO simulation state crosses threads, and the
// per-cell trace hash is bit-identical to what serial execution produces
// (certified by tests/batch_test.cc and tools/determinism_check).
//
// Determinism contract (docs/PARALLEL.md):
//   * results come back indexed by submission order, regardless of which
//     worker ran which cell or in what order they finished;
//   * cell execution routes through the exact serial code paths (runTask
//     for plain cells, runChaosTask/driveWatched for watched ones), so
//     jobs=N and jobs=1 produce the same verdicts, steps and trace hashes;
//   * a cell that throws (SimAbort, StepAuditError in throw mode, ...)
//     yields a structured error result; the other cells complete.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/chaos.h"
#include "sim/net/realized_fd.h"
#include "sim/runner.h"
#include "sim/service/service_config.h"
#include "sim/watchdog.h"

namespace wfd::sim {

struct CellResult;
class ReportCache;  // sim/report_cache.h: whole-run memo, keyed by cellKey

// Post-hook, run on the worker right after its cell completes, while the
// full RunReport (trace, world, decisions, auditor) is still alive. Use it
// to run checkers and record metrics without retaining thousands of worlds
// in memory. It MUST be a pure function of its arguments: it executes on a
// worker thread, so writing to anything captured by reference races.
using CellPost = std::function<void(const RunReport&, CellResult&)>;

// One cell: a complete, self-contained run recipe.
struct BatchCell {
  RunConfig cfg;
  AlgoFn algo;
  std::vector<Value> proposals;
  // When either is set the cell is driven through the watchdog — with the
  // chaos engine when `chaos` is present (exactly runChaosTask), plain
  // otherwise (replays Scheduler::run's schedule step for step). Unset:
  // the cell runs through runTask.
  std::optional<ChaosConfig> chaos;
  std::optional<WatchdogConfig> watchdog;
  CellPost post;  // optional checker/metric hook
  // Optional explicit schedule policy, built on the worker that runs the
  // cell and used instead of cfg.policy (plain and watched paths alike) —
  // lets a batch express eventually-synchronous or scripted schedules.
  // Must be a pure factory: each call returns a fresh policy whose RNG
  // draws depend only on the policy's own construction arguments.
  std::function<std::unique_ptr<SchedulePolicy>()> policy_factory;
  // Service cell: when set, the cell is a whole replicated-service stream
  // (sim/service/service.h, runServiceCell) and every other recipe field
  // above is ignored — a ServiceConfig pins its execution completely.
  // memo_family still gates memoization; the config's digest() keys it.
  std::optional<service::ServiceConfig> service;
  // Memoization opt-in (sim/report_cache.h). The family names this cell's
  // OPAQUE callables — algo, post, policy_factory — which a 64-bit digest
  // cannot see: two cells may share a family only if they construct those
  // callables identically from the digested fields. Empty = never cached.
  std::string memo_family;
};

// Per-cell summary: everything the aggregating thread needs, without the
// World (batch memory stays bounded at jobs * one-run footprint).
struct CellResult {
  std::size_t index = 0;  // submission index; results[i].index == i
  RunVerdict verdict = RunVerdict::kOk;
  std::string detail;  // verdict detail, or the exception message on error
  bool error = false;  // the cell threw; no run data below is valid
  bool all_correct_done = false;
  Time steps = 0;
  int distinct_decisions = 0;
  std::map<Pid, Value> decisions;
  std::uint64_t trace_hash = 0;
  // Post-hook outputs (checker verdicts, per-cell metrics).
  bool check_ok = true;
  std::string check_detail;
  std::map<std::string, double> metrics;

  [[nodiscard]] bool ok() const {
    return !error && verdict == RunVerdict::kOk && check_ok;
  }
};

struct BatchOptions {
  // Worker threads; <= 0 resolves to std::thread::hardware_concurrency.
  int jobs = 0;
  // Work stealing (the default): every worker starts with a contiguous
  // block of the submission order in its own deque and, once drained,
  // steals the back HALF of a victim's remaining block. false = static
  // sharding — each worker runs exactly its initial block, which is the
  // baseline the heavy-tail speedup in BENCH_batch.json is measured
  // against. Both modes produce bit-identical results (the schedule only
  // decides WHERE a cell runs, never WHAT it computes).
  bool steal = true;
  // Optional whole-run memo (sim/report_cache.h), shared across workers
  // and across batches. Only cells with a non-empty memo_family and a
  // digestible configuration participate; audited runs always bypass.
  // In-process only: the multi-process fabric (sim/fabric/fabric.h)
  // ignores this pointer and builds a per-worker memo from the three
  // fields below instead.
  ReportCache* memo = nullptr;
  // Configuration consumed by makeMemo (sim/report_cache.h) — harnesses
  // and the fabric build their ReportCache from these instead of the
  // hard-coded defaults. 0 = ReportCache::kDefaultCapacity.
  std::size_t memo_capacity = 0;
  // Non-empty: back the memo with the persistent content-addressed store
  // in this directory (sim/fabric/store.h), so warm results survive
  // process restarts and are shared between concurrent worker processes.
  std::string cache_dir;
  // Invalidation stamp for the persistent store: results are only served
  // back to a binary whose stamp matches (CI passes the git SHA; "" uses
  // the library's format version alone). Stale schemas self-invalidate
  // because a different stamp addresses a different segment file.
  std::string cache_version;
};

// Scheduler observability for one batch execution: how cells moved across
// workers and what the memo did. Written by BatchRunner::run when the
// caller passes a stats out-param; per-worker vectors are indexed by
// worker id (size = the worker count actually spawned).
struct BatchStats {
  int jobs = 0;
  bool steal = false;
  std::size_t cells = 0;
  std::size_t steal_ops = 0;      // successful steal-half operations
  std::size_t stolen_cells = 0;   // cells that changed workers
  std::size_t memo_hits = 0;      // cells answered from the ReportCache
  std::size_t memo_misses = 0;    // memo-eligible cells that ran fresh
  std::vector<std::size_t> executed;  // cells run per worker (hits included)
  // Simulation steps executed per worker: a deterministic load measure
  // (same cells -> same steps, whatever the thread timing). Its max over
  // workers is the schedule's step MAKESPAN — the wall time the schedule
  // would cost on >= jobs free cores — so steal-vs-static balance is
  // measurable even on oversubscribed or single-core hosts where
  // wall-clock can't show it. (A memo hit credits its stored step count,
  // so compare makespans on memo-free batches.)
  std::vector<long long> steps_run;
  std::vector<double> busy_s;  // wall seconds each worker was active
  double wall_s = 0;           // whole-batch wall time

  // ---- Multi-process fabric counters (sim/fabric/fabric.h) ----
  // When runFabric fills this struct, `executed`/`steps_run`/`busy_s`
  // above hold PER-PROCESS aggregates (one slot per worker process, each
  // summing its own thread pool), and the thread-level steal/memo
  // counters are summed across processes.
  int procs = 1;
  std::size_t blocks = 0;            // assignment blocks the run was cut into
  std::size_t proc_steal_ops = 0;    // block reassignments between processes
  std::size_t proc_stolen_cells = 0; // cells that changed processes
  std::size_t disk_hits = 0;         // persistent-store hits (all workers)
  std::size_t disk_misses = 0;       // eligible lookups the store missed

  // Mean worker busy fraction of the batch wall time (1.0 = no idling).
  [[nodiscard]] double utilization() const;

  // Max per-worker simulation steps (0 when untracked): the critical
  // path of this schedule under perfect core availability.
  [[nodiscard]] long long stepMakespan() const;

  // Deterministic load balance: total steps / (workers * max per-worker
  // steps). 1.0 = perfectly even; hardware-independent, so the fabric's
  // procs=2 balance gate holds on single-core CI hosts too.
  [[nodiscard]] double stepUtilization() const;
};

// <= 0 -> hardware_concurrency (>= 1).
[[nodiscard]] int resolveJobs(int jobs);

// Execute one cell exactly as the serial paths would. The building block
// the workers call; exposed so tests can certify jobs=1 equivalence.
[[nodiscard]] CellResult runCell(const BatchCell& cell, std::size_t index);

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts = {});

  [[nodiscard]] int jobs() const { return opts_.jobs; }
  [[nodiscard]] const BatchOptions& options() const { return opts_; }

  // Execute every cell; results in submission order. `stats`, when
  // non-null, receives the scheduler/memo counters for this execution.
  [[nodiscard]] std::vector<CellResult> run(const std::vector<BatchCell>& cells,
                                            BatchStats* stats = nullptr) const;

  // Generator form for sweeps too large to materialize: make(i) builds
  // cell i on the worker that executes it. `make` must be thread-safe and
  // a pure function of i (a shared FdCache inside it is fine: the cache
  // locks internally and detectors are immutable).
  using CellGen = std::function<BatchCell(std::size_t)>;
  [[nodiscard]] std::vector<CellResult> run(std::size_t count,
                                            const CellGen& make,
                                            BatchStats* stats = nullptr) const;

 private:
  BatchOptions opts_;
};

// Chaos soaks shard too: drive watched/chaos cells across the pool. Cells
// that set neither `chaos` nor `watchdog` get a default WatchdogConfig so
// every result carries a structured verdict.
[[nodiscard]] std::vector<CellResult> driveWatchedBatch(
    const std::vector<BatchCell>& cells, const BatchOptions& opts = {},
    BatchStats* stats = nullptr);

// ---- FD-history construction cache --------------------------------------
//
// Sweeps re-derive the same constructed history for many rows: an Upsilon
// instance is keyed by (pattern, f, stab, noise seed) and nothing else, so
// rebuilding it per cell is wasted work — and a FailureDetector is an
// immutable history (query(p, t) is const and stateless), so ONE instance
// can serve any number of concurrent runs. The cache is thread-safe and
// intended to be shared by a BatchRunner generator across workers.
class FdCache {
 public:
  fd::FdPtr upsilon(const FailurePattern& fp, Time stab, std::uint64_t seed);
  fd::FdPtr upsilonF(const FailurePattern& fp, int f, Time stab,
                     std::uint64_t seed);
  fd::FdPtr omega(const FailurePattern& fp, Time stab, std::uint64_t seed);
  fd::FdPtr omegaK(const FailurePattern& fp, int k, Time stab,
                   std::uint64_t seed);

  // Realized heartbeat detectors (sim/net/realized_fd.h). The simulated
  // network execution is itself cached per (pattern, cfg) — the three
  // lenses over one execution share ONE NetHistory, so a campaign that
  // certifies <>P, Omega and Upsilon against the same substrate pays for
  // one simulation, not three.
  fd::FdPtr netEventuallyPerfect(const FailurePattern& fp,
                                 const net::NetConfig& cfg);
  fd::FdPtr netOmega(const FailurePattern& fp, const net::NetConfig& cfg);
  fd::FdPtr netUpsilonF(const FailurePattern& fp, int f,
                        const net::NetConfig& cfg);
  // The shared execution itself (cached); exposed for substrate tests.
  net::NetHistoryPtr netHistory(const FailurePattern& fp,
                                const net::NetConfig& cfg);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t size() const;

 private:
  // (family, crash times, param, stab, seed) pins a constructed history
  // completely: every factory below is a pure function of these. The net
  // families carry NetConfig::digest() in `seed` (it pins every substrate
  // knob) and the lens parameter in `param`.
  struct Key {
    int family = 0;  // 0 Upsilon, 1 Upsilon^f, 2 Omega, 3 Omega^k,
                     // 4 net <>P, 5 net Omega, 6 net Upsilon^f
    std::vector<Time> crash_at;
    int param = 0;
    Time stab = 0;
    std::uint64_t seed = 0;

    bool operator<(const Key& o) const;
  };

  static Key makeKey(int family, const FailurePattern& fp, int param,
                     Time stab, std::uint64_t seed);
  fd::FdPtr getOrBuild(Key key, const std::function<fd::FdPtr()>& build);

  mutable std::mutex mu_;
  std::map<Key, fd::FdPtr> cache_;
  std::map<Key, net::NetHistoryPtr> net_cache_;  // family 7: raw executions
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace wfd::sim
