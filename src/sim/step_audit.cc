#include "sim/step_audit.h"

#include <utility>

#include "sim/world.h"

namespace wfd::sim {

const char* auditRuleName(AuditRule rule) {
  switch (rule) {
    case AuditRule::kMultiOp: return "multi-op";
    case AuditRule::kUnroutedAccess: return "unrouted-access";
    case AuditRule::kKindMismatch: return "kind-mismatch";
    case AuditRule::kPortOverflow: return "port-overflow";
    case AuditRule::kCrashedStep: return "crashed-step";
    case AuditRule::kFdNonMonotone: return "fd-non-monotone";
    case AuditRule::kFdIllegalOutput: return "fd-illegal-output";
    case AuditRule::kStaleScan: return "stale-scan";
  }
  return "?";
}

std::string opToString(const Op& op) {
  if (const auto* r = std::get_if<OpRead>(&op)) {
    return "read obj#" + std::to_string(r->obj);
  }
  if (const auto* w = std::get_if<OpWrite>(&op)) {
    return "write obj#" + std::to_string(w->obj) + " := " + w->val.toString();
  }
  if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    return "snap-update obj#" + std::to_string(u->obj) + "[" +
           std::to_string(u->slot) + "] := " + u->val.toString();
  }
  if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    return "snap-scan obj#" + std::to_string(s->obj);
  }
  if (std::holds_alternative<OpFdQuery>(op)) return "fd-query";
  if (std::holds_alternative<OpNoop>(op)) return "noop";
  if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    return "cons-propose obj#" + std::to_string(c->obj) + " := " +
           c->val.toString();
  }
  return "?";
}

std::string AuditViolation::toString() const {
  std::string s = "step-audit violation [";
  s += auditRuleName(rule);
  s += "] p" + std::to_string(pid + 1) + " t=" + std::to_string(time) +
       " step#" + std::to_string(step_index) + ": " + message;
  if (!trail.empty()) {
    s += "\n  op trail (oldest first):";
    for (const auto& e : trail) s += "\n    " + e;
  }
  return s;
}

StepAuditError::StepAuditError(AuditViolation v)
    : std::runtime_error(v.toString()), violation(std::move(v)) {}

StepAuditor::StepAuditor(const World* world, AuditMode mode)
    : world_(world),
      mode_(mode),
      last_fd_query_(static_cast<std::size_t>(world->nProcs()), Time{-1}) {}

void StepAuditor::noteTrail(bool exec, Pid p, const Op& op) {
  TrailRecord& r = trail_[trail_next_];
  r.t = world_->now();
  r.p = p;
  r.exec = exec;
  r.op = op;
  trail_next_ = (trail_next_ + 1) % kTrailCap;
  if (trail_size_ < kTrailCap) ++trail_size_;
}

std::vector<std::string> StepAuditor::renderTrail() const {
  std::vector<std::string> out;
  out.reserve(trail_size_);
  const std::size_t start =
      (trail_next_ + kTrailCap - trail_size_) % kTrailCap;
  for (std::size_t i = 0; i < trail_size_; ++i) {
    const TrailRecord& r = trail_[(start + i) % kTrailCap];
    out.push_back("t=" + std::to_string(r.t) + " p" +
                  std::to_string(r.p + 1) + (r.exec ? " exec " : " req  ") +
                  opToString(r.op));
  }
  return out;
}

void StepAuditor::flag(AuditRule rule, Pid pid, std::string message) {
  AuditViolation v;
  v.rule = rule;
  v.pid = pid;
  v.time = world_->now();
  v.step_index = steps_audited_;
  v.message = std::move(message);
  v.trail = renderTrail();
  violations_.push_back(v);
  if (mode_ == AuditMode::kThrow) throw StepAuditError(std::move(v));
}

bool StepAuditor::sawRule(AuditRule rule) const {
  for (const auto& v : violations_) {
    if (v.rule == rule) return true;
  }
  return false;
}

void StepAuditor::onStepBegin(Pid p) {
  if (in_step_) {
    flag(AuditRule::kMultiOp, p,
         "step opened for p" + std::to_string(p + 1) + " while p" +
             std::to_string(step_pid_ + 1) + "'s step is still open");
  }
  in_step_ = true;
  step_pid_ = p;
  execs_this_step_ = 0;
  if (world_->pattern().crashTime(p) <= world_->now()) {
    flag(AuditRule::kCrashedStep, p,
         "process crashed at t=" +
             std::to_string(world_->pattern().crashTime(p)) +
             " but was scheduled at t=" + std::to_string(world_->now()) +
             " (model: a crashed process takes no further steps)");
  }
}

void StepAuditor::onStepEnd(Pid p) {
  if (!in_step_ || step_pid_ != p) {
    flag(AuditRule::kUnroutedAccess, p, "step closed that was never opened");
  }
  in_step_ = false;
  step_pid_ = -1;
  ++steps_audited_;
}

void StepAuditor::checkOpAgainstTable(Pid p, const Op& op) {
  const ObjectTable& tab = world_->objectsConst();
  const auto requireKind = [&](ObjId id, ObjectTable::Kind want,
                               const char* want_name) {
    if (!tab.knows(id)) {
      flag(AuditRule::kKindMismatch, p,
           opToString(op) + " targets an object id never issued by the "
                            "object table");
      return false;
    }
    if (tab.kindOf(id) != want) {
      flag(AuditRule::kKindMismatch, p,
           opToString(op) + " applied to a non-" + want_name +
               " object (object kinds are fixed at creation)");
      return false;
    }
    return true;
  };

  if (const auto* r = std::get_if<OpRead>(&op)) {
    requireKind(r->obj, ObjectTable::Kind::kRegister, "register");
  } else if (const auto* w = std::get_if<OpWrite>(&op)) {
    requireKind(w->obj, ObjectTable::Kind::kRegister, "register");
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    if (requireKind(u->obj, ObjectTable::Kind::kSnapshot, "snapshot") &&
        (u->slot < 0 || u->slot >= tab.slotCount(u->obj))) {
      flag(AuditRule::kKindMismatch, p,
           opToString(op) + " slot out of range [0, " +
               std::to_string(tab.slotCount(u->obj)) + ")");
    }
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    requireKind(s->obj, ObjectTable::Kind::kSnapshot, "snapshot");
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    if (requireKind(c->obj, ObjectTable::Kind::kConsensus, "consensus") &&
        !tab.hasProposed(c->obj, p) &&
        tab.proposerCount(c->obj) >= tab.portLimit(c->obj)) {
      flag(AuditRule::kPortOverflow, p,
           opToString(op) + ": an m-process consensus object accepts at "
                            "most m = " +
               std::to_string(tab.portLimit(c->obj)) +
               " distinct proposers; p" + std::to_string(p + 1) +
               " would be proposer #" +
               std::to_string(tab.proposerCount(c->obj) + 1));
    }
  } else if (std::holds_alternative<OpFdQuery>(op)) {
    const Time t = world_->now();
    Time& last = last_fd_query_[static_cast<std::size_t>(p)];
    if (t <= last) {
      flag(AuditRule::kFdNonMonotone, p,
           "FD queried at t=" + std::to_string(t) +
               " after a query at t=" + std::to_string(last) +
               " (histories are functions of (p, t); query times must "
               "strictly increase per process)");
    }
    last = t;
  }
}

void StepAuditor::onExecuteBegin(Pid p, const Op& op) {
  ++ops_audited_;
  noteTrail(/*exec=*/true, p, op);
  if (!in_step_ || p != step_pid_) {
    flag(AuditRule::kUnroutedAccess, p,
         opToString(op) + " executed outside p" + std::to_string(p + 1) +
             "'s scheduled atomic step");
  } else {
    ++execs_this_step_;
    if (execs_this_step_ > 1) {
      flag(AuditRule::kMultiOp, p,
           opToString(op) + " is operation #" +
               std::to_string(execs_this_step_) +
               " within one atomic step (model: at most one shared-object "
               "operation or FD query per step)");
    }
  }
  checkOpAgainstTable(p, op);
  in_execute_ = true;
  exec_obj_ = -1;
  if (const auto* r = std::get_if<OpRead>(&op)) {
    exec_obj_ = r->obj;
  } else if (const auto* w = std::get_if<OpWrite>(&op)) {
    exec_obj_ = w->obj;
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    exec_obj_ = u->obj;
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    exec_obj_ = s->obj;
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    exec_obj_ = c->obj;
  }
}

void StepAuditor::onExecuteEnd(Pid) {
  in_execute_ = false;
  exec_obj_ = -1;
}

void StepAuditor::onOpRequested(Pid p, const Op& op, bool already_pending) {
  noteTrail(/*exec=*/false, p, op);
  if (already_pending) {
    flag(AuditRule::kMultiOp, p,
         opToString(op) + " requested while an earlier operation of p" +
             std::to_string(p + 1) + " is still pending execution");
  }
}

void StepAuditor::onFdAnswer(Pid p, const ProcSet& answer) {
  const fd::FailureDetector* det = world_->fd();
  if (det == nullptr) return;
  const fd::AxiomSpec spec = det->axioms();
  if (spec.family == fd::AxiomSpec::Family::kNone) return;
  const int n_plus_1 = world_->nProcs();
  const Time t = world_->now();

  // Range axioms hold for EVERY answer, stabilized or not.
  if (spec.family == fd::AxiomSpec::Family::kUpsilonF) {
    const int min_size = n_plus_1 - spec.param;
    if (answer.empty() || answer.size() < min_size) {
      flag(AuditRule::kFdIllegalOutput, p,
           det->name() + " answered " + answer.toString() + " (size " +
               std::to_string(answer.size()) +
               "); Upsilon^f outputs non-empty sets of size >= n+1-f = " +
               std::to_string(min_size < 1 ? 1 : min_size));
      return;
    }
  } else if (spec.family == fd::AxiomSpec::Family::kOmegaK) {
    if (answer.size() != spec.param) {
      flag(AuditRule::kFdIllegalOutput, p,
           det->name() + " answered " + answer.toString() + " (size " +
               std::to_string(answer.size()) +
               "); Omega^k outputs sets of size exactly k = " +
               std::to_string(spec.param));
      return;
    }
  }
  // kEventuallyPerfect has no per-answer range axiom (any suspicion set is
  // legal pre-stabilization); its teeth are the constancy check below and
  // the finalize condition stable value == faulty(F).

  // Stability: our detector implementations promise the uniform contract
  // "query(p, t) is the stable value for every p once t >=
  // stabilizationTime()", which is sufficient for membership in D(F). Any
  // post-stabilization answer differing from the first one seen — at the
  // same or another process — breaks that claim mid-run.
  if (t >= det->stabilizationTime()) {
    if (!post_stab_seen_) {
      post_stab_seen_ = true;
      post_stab_value_ = answer;
    } else if (answer != post_stab_value_) {
      flag(AuditRule::kFdIllegalOutput, p,
           det->name() + " answered " + answer.toString() + " at t=" +
               std::to_string(t) + " after stabilization (claimed t_stab=" +
               std::to_string(det->stabilizationTime()) +
               ") but previously answered " + post_stab_value_.toString() +
               " (outputs must be permanently identical at all correct "
               "processes once stabilized)");
    }
  }
}

void StepAuditor::finalizeFdAxioms() {
  if (fd_finalized_) return;
  fd_finalized_ = true;
  const fd::FailureDetector* det = world_->fd();
  if (det == nullptr || !post_stab_seen_) return;
  const fd::AxiomSpec spec = det->axioms();
  const ProcSet correct = world_->pattern().correct();
  // Non-triviality conditions are properties of the FINAL failure pattern
  // (chaos may inject crashes mid-run), so they can only close out here.
  if (spec.family == fd::AxiomSpec::Family::kUpsilonF) {
    if (post_stab_value_ == correct) {
      flag(AuditRule::kFdIllegalOutput, -1,
           det->name() + " stabilized on " + post_stab_value_.toString() +
               " which equals correct(F) — Upsilon's non-triviality axiom "
               "requires the stable set to differ from the correct set");
    }
  } else if (spec.family == fd::AxiomSpec::Family::kOmegaK) {
    if (post_stab_value_.intersect(correct).empty()) {
      flag(AuditRule::kFdIllegalOutput, -1,
           det->name() + " stabilized on " + post_stab_value_.toString() +
               " which contains no correct process — Omega^k's stable set "
               "must include at least one");
    }
  } else if (spec.family == fd::AxiomSpec::Family::kEventuallyPerfect) {
    const ProcSet faulty = world_->pattern().faulty();
    if (post_stab_value_ != faulty) {
      flag(AuditRule::kFdIllegalOutput, -1,
           det->name() + " stabilized on " + post_stab_value_.toString() +
               " but faulty(F) = " + faulty.toString() +
               " — <>P must eventually suspect exactly the faulty "
               "processes (strong completeness + eventual strong accuracy)");
    }
  }
}

void StepAuditor::captureScanRequest(Pid p, ObjId obj,
                                     std::vector<RegVal> view) {
  scan_captures_[{p, obj}] = std::move(view);
}

void StepAuditor::onScanResult(Pid p, ObjId obj,
                               const std::vector<RegVal>& view) {
  const auto it = scan_captures_.find({p, obj});
  if (it == scan_captures_.end()) return;  // no injection: nothing to judge
  const std::vector<RegVal> captured = std::move(it->second);
  scan_captures_.erase(it);
  // Legal linearization points for an atomic scan: anywhere between
  // invocation and response. The served view must therefore match the
  // memory at SOME instant in that window; the chaos injector only ever
  // serves the two endpoints, so checking both is exact for it — and any
  // older view is a real-time-order violation whenever updates intervened.
  if (view == world_->objectsConst().peekSlots(obj)) return;  // response time
  if (view == captured) return;                               // request time
  flag(AuditRule::kStaleScan, p,
       "scan of obj#" + std::to_string(obj) +
           " returned a view that is neither the current memory nor the "
           "memory at the scan's invocation — not linearizable (the view "
           "predates an update that completed before the scan began)");
}

void StepAuditor::onObjectAccess(ObjId id, ObjectAccess access) {
  static const char* const kNames[] = {"read", "write", "scan", "update",
                                       "propose"};
  const char* what = kNames[static_cast<int>(access)];
  if (!in_execute_) {
    flag(AuditRule::kUnroutedAccess, step_pid_,
         std::string(what) + " of obj#" + std::to_string(id) +
             " bypassed the atomic-step machinery (all shared access must "
             "go through World::execute)");
  } else if (id != exec_obj_) {
    flag(AuditRule::kUnroutedAccess, step_pid_,
         std::string(what) + " of obj#" + std::to_string(id) +
             " does not match the declared operation's target obj#" +
             std::to_string(exec_obj_));
  }
}

std::string StepAuditor::report() const {
  std::string s = "step audit: " + std::to_string(steps_audited_) +
                  " steps, " + std::to_string(ops_audited_) + " ops, " +
                  std::to_string(violations_.size()) + " violation(s)";
  for (const auto& v : violations_) s += "\n" + v.toString();
  return s;
}

}  // namespace wfd::sim
