#include "sim/service/service.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/omega_k_set_agreement.h"
#include "core/upsilon_f_set_agreement.h"
#include "core/upsilon_set_agreement.h"
#include "fd/omega.h"
#include "fd/upsilon.h"

namespace wfd::sim::service {

namespace {

using fd::mixDigest;

// Client command encoding: client c's i-th accepted command is
// c * kCmdStride + i — globally unique and human-decodable in dumps.
constexpr Value kCmdStride = 1'000'000;
// kLogDivergence corruption offset: far outside the command space, so a
// corrupted entry can never collide with a legitimately proposed command
// (which would mask the seeded bug from the validity check).
constexpr Value kBugOffset = 1'000'000'000'000LL;

// Which chaos injector a segment fires (docs/SERVICE.md campaign matrix).
enum class Injector { kNone, kCrash, kStarve, kGlitch, kLink, kStale };

const char* injectorName(Injector i) {
  switch (i) {
    case Injector::kNone: return "none";
    case Injector::kCrash: return "crash";
    case Injector::kStarve: return "starvation";
    case Injector::kGlitch: return "fd_glitch";
    case Injector::kLink: return "link_faults";
    case Injector::kStale: return "stale_snapshot";
  }
  return "?";
}

// ---- Segment algorithm ---------------------------------------------------

// Every replica slot runs its per-instance proposals in order through the
// protocol's instance form (object keys carry the GLOBAL instance index,
// so a retried instance in a fresh world reuses its index safely) and
// notes each decided value as "c<local_index>". The service commits from
// these notes; env.decide is deliberately not used — per-instance safety
// is the service checker's job, with the watchdog's one-shot safety_k
// semantics disabled.
// A free coroutine, NOT a coroutine lambda: its parameters are copied
// into the coroutine frame, so the frames stay valid however the AlgoFn
// closure that spawned them is moved or destroyed.
Coro<Unit> serviceWorker(
    Env& env, Protocol proto, int f, long long base,
    std::shared_ptr<const std::vector<std::vector<Value>>> props) {
  {
    const auto& mine = (*props)[static_cast<std::size_t>(env.me())];
    for (std::size_t s = 0; s < mine.size(); ++s) {
      const int inst = static_cast<int>(base + static_cast<long long>(s));
      Value got = kBottomValue;
      switch (proto) {
        case Protocol::kOmegaConsensus:
          got = co_await core::omegaKSetAgreementInstance(env, 1, inst,
                                                          mine[s]);
          break;
        case Protocol::kFig1Upsilon:
          got = co_await core::upsilonSetAgreementInstance(env, inst, mine[s]);
          break;
        case Protocol::kFig2UpsilonF:
          got = co_await core::upsilonFSetAgreementInstance(env, f, inst,
                                                            mine[s]);
          break;
      }
      env.note("c" + std::to_string(s), RegVal(got));
    }
  }
  co_return Unit{};
}

AlgoFn makeServiceAlgo(
    Protocol proto, int f, long long base,
    std::shared_ptr<const std::vector<std::vector<Value>>> props) {
  return [proto, f, base, props](Env& env, Value) {
    return serviceWorker(env, proto, f, base, props);
  };
}

// ---- Segment drive loop --------------------------------------------------

struct SegmentOutcome {
  RunVerdict verdict = RunVerdict::kOk;
  std::string detail;
  Time steps = 0;
  std::uint64_t trace_hash = 0;
  std::optional<FailurePattern> fp;  // pattern at segment end
  // noted[slot][s]: decided value (kBottomValue = never noted) and the
  // world time the note landed.
  std::vector<std::vector<Value>> noted;
  std::vector<std::vector<Time>> note_step;
};

// Drives one segment Run to a verdict, mirroring driveWatched's loop
// (policy draws from the run's own RNG; chaos beforeStep/filterRunnable;
// end-of-run audit close) but harvesting per-instance commit notes
// incrementally — and, when `record_marks` is set, taking a Run
// checkpoint at every instance-commit boundary so runCrashSweep can
// restore the shared prefix instead of re-executing it.
class SegmentDriver {
 public:
  SegmentDriver(Run& run, SchedulePolicy& policy, Time budget,
                ChaosEngine* chaos, int group, int len, bool record_marks)
      : run_(run),
        policy_(policy),
        budget_(budget),
        chaos_(chaos),
        group_(group),
        len_(len),
        record_marks_(record_marks) {
    assert(!(record_marks_ && chaos_ != nullptr));  // marks need pure state
    noted_.assign(static_cast<std::size_t>(group_),
                  std::vector<Value>(static_cast<std::size_t>(len_),
                                     kBottomValue));
    note_step_.assign(static_cast<std::size_t>(group_),
                      std::vector<Time>(static_cast<std::size_t>(len_), 0));
    if (record_marks_) {
      run_.enableCheckpoints();
      marks_.push_back(takeMark());  // mark 0: before any step
    }
    if (chaos_ != nullptr && chaos_->wantsScanOverride()) {
      ChaosEngine* c = chaos_;
      run_.world().setScanOverride(
          [c](Pid p, ObjId obj) { return c->overrideScan(p, obj); });
    }
  }

  SegmentOutcome drive() { return loop(); }

  // Sweep variant: rewind to the state where exactly `b` instances had
  // committed (instance b in flight), crash `victim`, drive to a fresh
  // outcome. Only valid after drive() on a record_marks driver whose base
  // pass committed past b.
  SegmentOutcome driveVariant(int b, Pid victim) {
    assert(record_marks_);
    assert(b >= 0 && static_cast<std::size_t>(b) < marks_.size());
    const Mark& m = marks_[static_cast<std::size_t>(b)];
    run_.restore(m.ck);
    ++restores_;
    steps_ = m.steps;
    last_scanned_ = m.scanned;
    boundary_ = m.boundary;
    noted_ = m.noted;
    note_step_ = m.note_step;
    record_marks_ = false;  // the variant suffix must not extend the marks
    run_.world().injectCrash(victim);
    SegmentOutcome out = loop();
    record_marks_ = true;
    return out;
  }

  [[nodiscard]] long long restores() const { return restores_; }

 private:
  struct Mark {
    RunCheckpoint ck;
    Time steps = 0;
    std::size_t scanned = 0;
    int boundary = 0;  // instances committed when the mark was taken
    std::vector<std::vector<Value>> noted;
    std::vector<std::vector<Time>> note_step;
  };

  Mark takeMark() const {
    return Mark{run_.checkpoint(), steps_, last_scanned_, boundary_, noted_,
                note_step_};
  }

  bool scanTrace() {
    const auto& evs = run_.world().trace().events();
    const bool progressed = evs.size() > last_scanned_;
    for (; last_scanned_ < evs.size(); ++last_scanned_) {
      const Event& e = evs[last_scanned_];
      if (e.kind != EventKind::kNote || e.label.size() < 2 ||
          e.label[0] != 'c') {
        continue;
      }
      int s = 0;
      bool digits = true;
      for (std::size_t i = 1; i < e.label.size(); ++i) {
        const char ch = e.label[i];
        if (ch < '0' || ch > '9') {
          digits = false;
          break;
        }
        s = s * 10 + (ch - '0');
      }
      if (!digits || s >= len_) continue;
      const auto slot = static_cast<std::size_t>(e.pid);
      noted_[slot][static_cast<std::size_t>(s)] = e.value.asInt();
      note_step_[slot][static_cast<std::size_t>(s)] = e.time;
    }
    if (record_marks_) {
      while (boundary_ < len_) {
        bool all = true;
        for (int slot = 0; slot < group_; ++slot) {
          if (noted_[static_cast<std::size_t>(slot)]
                    [static_cast<std::size_t>(boundary_)] == kBottomValue) {
            all = false;
            break;
          }
        }
        if (!all) break;
        ++boundary_;
        marks_.push_back(takeMark());
      }
    }
    return progressed;
  }

  SegmentOutcome loop() {
    SegmentOutcome out;
    World& world = run_.world();
    Scheduler& sched = run_.scheduler();
    Time last_progress = steps_;
    while (true) {
      if (sched.allCorrectDone()) break;
      if (steps_ >= budget_) {
        out.verdict = RunVerdict::kBudgetExhausted;
        out.detail = "segment step budget " + std::to_string(budget_) +
                     " exhausted before all live replicas finished";
        break;
      }
      if (chaos_ != nullptr) chaos_->beforeStep(world, sched);
      const ProcSet runnable = sched.runnable();
      if (runnable.empty()) break;
      const ProcSet pick_from =
          chaos_ != nullptr ? chaos_->filterRunnable(runnable, world, sched)
                            : runnable;
      const Pid p = policy_.next(pick_from, world, sched.rng());
      try {
        sched.step(p);
      } catch (const StepAuditError& e) {
        out.verdict = RunVerdict::kAxiomViolation;
        out.detail = e.what();
        break;
      }
      ++steps_;
      if (scanTrace()) last_progress = steps_;
      (void)last_progress;
    }
    // Close the audit window unconditionally (see sim/watchdog.cc): the
    // end-of-run FD-axiom conditions may throw in kThrow mode and must
    // demote the verdict, never escape.
    try {
      world.endAuditObservation();
    } catch (const StepAuditError& e) {
      if (out.verdict != RunVerdict::kSafetyViolation) {
        out.verdict = RunVerdict::kAxiomViolation;
        out.detail = e.what();
      }
    }
    if (out.verdict == RunVerdict::kOk) {
      if (const StepAuditor* a = world.auditor();
          a != nullptr && !a->clean()) {
        out.verdict = RunVerdict::kAxiomViolation;
        out.detail = a->violations().front().toString();
      }
    }
    out.steps = steps_;
    out.trace_hash = world.trace().hash64();
    out.fp = world.pattern();
    out.noted = noted_;
    out.note_step = note_step_;
    return out;
  }

  Run& run_;
  SchedulePolicy& policy_;
  Time budget_;
  ChaosEngine* chaos_;
  int group_;
  int len_;
  bool record_marks_;
  Time steps_ = 0;
  std::size_t last_scanned_ = 0;
  int boundary_ = 0;
  std::vector<std::vector<Value>> noted_;
  std::vector<std::vector<Time>> note_step_;
  std::vector<Mark> marks_;
  long long restores_ = 0;
};

// ---- Service driver ------------------------------------------------------

struct SegmentPlan {
  int len = 0;
  RunConfig run_cfg;
  std::optional<ChaosConfig> chaos;
  Injector injector = Injector::kNone;
  std::shared_ptr<std::vector<std::vector<Value>>> props;  // [slot][s]
};

// Prepared, drivable segment: the Run plus everything the harvest needs.
struct Segment {
  SegmentPlan plan;
  std::unique_ptr<ChaosEngine> engine;
  std::unique_ptr<Run> run;
  std::unique_ptr<SchedulePolicy> policy;
};

class ServiceDriver {
 public:
  // Everything mutable lives in State so the crash sweep can snapshot and
  // fork the whole service at a segment boundary with one copy.
  struct State {
    std::deque<Value> inbox;
    std::vector<long long> next_seq;  // per client
    std::vector<int> active;          // slot -> rid
    int next_rid = 0;
    std::vector<ReplicaLog> logs;  // indexed by rid
    std::vector<Value> canonical;
    long long committed = 0;
    long long seg_counter = 0;  // segment ATTEMPTS (retries included)
    int retries_here = 0;       // consecutive retries at this commit point
    std::vector<long long> latencies;
    ServiceStats stats;
    std::uint64_t hash = 0;
    ServiceVerdict verdict = ServiceVerdict::kOk;
    std::string detail;
  };

  explicit ServiceDriver(const ServiceConfig& cfg) : cfg_(cfg) {
    validate();
    st_.next_seq.assign(static_cast<std::size_t>(cfg_.clients), 0);
    st_.hash = mixDigest(0x5EAC, cfg_.digest());
    for (int slot = 0; slot < cfg_.group; ++slot) {
      st_.active.push_back(slot);
      st_.logs.push_back(ReplicaLog{slot, slot, 0, {}, false});
    }
    st_.next_rid = cfg_.group;
  }

  State& state() { return st_; }
  const ServiceConfig& config() const { return cfg_; }

  void runToCompletion(State& st) {
    while (st.verdict == ServiceVerdict::kOk && st.committed < cfg_.instances) {
      runOneSegment(st);
    }
  }

  void runOneSegment(State& st) {
    refillInbox(st);
    Segment seg = prepareSegment(st);
    RandomPolicy& policy = static_cast<RandomPolicy&>(*seg.policy);
    SegmentDriver sd(*seg.run, policy, segmentBudget(seg.plan.len),
                     seg.engine.get(), cfg_.group, seg.plan.len,
                     /*record_marks=*/false);
    SegmentOutcome out = sd.drive();
    harvestSegment(st, seg, out);
  }

  // Clients collectively offer one inbox-capacity worth of commands per
  // segment attempt; whatever the bounded inbox cannot admit is rejected
  // (backpressure). A command value is only minted on admission, so
  // rejected offers do not consume sequence numbers.
  void refillInbox(State& st) {
    const auto cap = static_cast<long long>(cfg_.effectiveInboxCapacity());
    for (long long i = 0; i < cap; ++i) {
      const auto c = static_cast<std::size_t>(
          (st.seg_counter + i) % static_cast<long long>(cfg_.clients));
      ++st.stats.submitted;
      if (static_cast<long long>(st.inbox.size()) < cap) {
        st.inbox.push_back(static_cast<Value>(c) * kCmdStride +
                           st.next_seq[c]++);
        ++st.stats.accepted;
      } else {
        ++st.stats.rejected;
      }
    }
  }

  [[nodiscard]] Time segmentBudget(int len) const {
    return cfg_.segment_budget_slack +
           cfg_.instance_step_budget * static_cast<Time>(len);
  }

  // Pure function of (cfg, st): build the next segment attempt. Instance
  // s of the segment proposes the pairwise-disjoint inbox slice
  // inbox[s*group .. s*group+group-1], one command per replica slot, so
  // no command can commit twice within a segment.
  [[nodiscard]] Segment prepareSegment(const State& st) {
    Segment seg;
    SegmentPlan& plan = seg.plan;
    plan.len = static_cast<int>(
        std::min<long long>(cfg_.segment_len, cfg_.instances - st.committed));
    assert(static_cast<long long>(st.inbox.size()) >=
           static_cast<long long>(plan.len) * cfg_.group);

    plan.props = std::make_shared<std::vector<std::vector<Value>>>(
        static_cast<std::size_t>(cfg_.group),
        std::vector<Value>(static_cast<std::size_t>(plan.len), 0));
    for (int s = 0; s < plan.len; ++s) {
      for (int slot = 0; slot < cfg_.group; ++slot) {
        (*plan.props)[static_cast<std::size_t>(slot)]
                     [static_cast<std::size_t>(s)] =
            st.inbox[static_cast<std::size_t>(s) *
                         static_cast<std::size_t>(cfg_.group) +
                     static_cast<std::size_t>(slot)];
      }
    }

    const std::uint64_t sseed =
        mixDigest(cfg_.seed, static_cast<std::uint64_t>(st.seg_counter) + 1);
    plan.run_cfg.n_plus_1 = cfg_.group;
    plan.run_cfg.seed = sseed;
    plan.run_cfg.max_steps = segmentBudget(plan.len);
    plan.run_cfg.policy = PolicyKind::kRandom;

    // Injector cadence: one legal injector per `period` attempts,
    // rotating through the enabled kinds.
    plan.injector = pickInjector(st.seg_counter);
    const std::uint64_t iseed =
        mixDigest(cfg_.chaos.seed ^ 0xAB1E,
                  static_cast<std::uint64_t>(st.seg_counter));

    // Failure pattern. Crash segments in the Upsilon protocols pre-seed
    // one crash so the detector's stable set is Pi — then Pi != correct(F')
    // survives ANY further injected crash (the D(F') legality side of the
    // chaos contract; fd/upsilon.h defaultStableSet). Omega crash segments
    // instead protect the stable leader (lowest id, pid 0).
    const bool upsilon_family = cfg_.protocol != Protocol::kOmegaConsensus;
    const bool preseed = plan.injector == Injector::kCrash && upsilon_family;
    FailurePattern fp =
        preseed ? FailurePattern::withCrashes(cfg_.group, {{cfg_.group - 1, 60}})
                : FailurePattern::failureFree(cfg_.group);
    plan.run_cfg.fp = fp;

    // Detector. Realized histories are cached per (pattern, NetConfig):
    // every ordinary segment of a realized stream shares ONE heartbeat
    // simulation; only link-fault segments pay for a fresh one.
    if (cfg_.detector == DetectorSource::kConstructed) {
      const std::uint64_t nseed = mixDigest(sseed, 0xFD);
      switch (cfg_.protocol) {
        case Protocol::kOmegaConsensus:
          plan.run_cfg.fd = fd::makeOmega(fp, cfg_.stab, nseed);
          break;
        case Protocol::kFig1Upsilon:
          plan.run_cfg.fd = fd::makeUpsilon(fp, cfg_.stab, nseed);
          break;
        case Protocol::kFig2UpsilonF:
          plan.run_cfg.fd = fd::makeUpsilonF(fp, cfg_.f, cfg_.stab, nseed);
          break;
      }
    } else {
      net::NetConfig nc = cfg_.net;
      if (plan.injector == Injector::kLink) {
        nc.faults.drop_permille = std::min(
            1000, nc.faults.drop_permille + 120 + static_cast<int>(iseed % 180));
        nc.faults.partitions += 1 + static_cast<int>((iseed >> 8) % 2);
      }
      switch (cfg_.protocol) {
        case Protocol::kOmegaConsensus:
          plan.run_cfg.fd = cache_.netOmega(fp, nc);
          break;
        case Protocol::kFig1Upsilon:
          plan.run_cfg.fd = cache_.netUpsilonF(fp, cfg_.group - 1, nc);
          break;
        case Protocol::kFig2UpsilonF:
          plan.run_cfg.fd = cache_.netUpsilonF(fp, cfg_.f, nc);
          break;
      }
    }

    // Chaos engine configuration per injector kind.
    if (plan.injector != Injector::kNone &&
        plan.injector != Injector::kLink) {
      ChaosConfig cc;
      cc.seed = iseed;
      switch (plan.injector) {
        case Injector::kCrash: {
          cc.max_faulty = cfg_.f;
          if (!upsilon_family) cc.protected_pids = ProcSet::singleton(0);
          const int count = upsilon_family ? cfg_.f - 1 : cfg_.f;
          if (count > 0) {
            // Horizon scaled to the segment's expected step count so the
            // seeded crash time usually lands while the segment is live.
            const Time horizon =
                60 + 20 * static_cast<Time>(plan.len);
            cc.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                                  horizon, count, mixDigest(iseed, 0xC4)});
          }
          break;
        }
        case Injector::kStarve: {
          const Pid victim =
              static_cast<Pid>(iseed % static_cast<std::uint64_t>(cfg_.group));
          cc.starvation.push_back(
              {ProcSet::singleton(victim),
               static_cast<Time>(200 + iseed % 1500),
               static_cast<Time>(300 + (iseed >> 8) % 600)});
          break;
        }
        case Injector::kGlitch:
          cc.glitch = {((iseed >> 4) & 1) != 0
                           ? GlitchKind::kScrambleNoise
                           : GlitchKind::kDelayStabilization,
                       /*delay=*/96, mixDigest(iseed, 0x61)};
          break;
        case Injector::kStale:
          cc.stale_snapshot =
              StaleSnapshot{250, mixDigest(iseed, 0x57), false};
          break;
        default:
          break;
      }
      assert(cc.legal());
      seg.engine = std::make_unique<ChaosEngine>(cc);
      if (plan.run_cfg.fd != nullptr &&
          cc.glitch.kind != GlitchKind::kNone) {
        plan.run_cfg.fd =
            seg.engine->wrapFd(plan.run_cfg.fd, fp, cfg_.group);
      }
      // Chaos segments are always audited (the online axiom checker is
      // the detection instrument), mirroring runChaosTask.
      if (!plan.run_cfg.audit.has_value()) {
        plan.run_cfg.audit = AuditMode::kThrow;
      }
      plan.chaos = cc;
    }

    const AlgoFn algo = makeServiceAlgo(cfg_.protocol, cfg_.f, st.committed,
                                        plan.props);
    std::vector<Value> inputs;
    for (int slot = 0; slot < cfg_.group; ++slot) {
      inputs.push_back(
          (*plan.props)[static_cast<std::size_t>(slot)][0]);
    }
    seg.run = std::make_unique<Run>(plan.run_cfg, algo, inputs);
    seg.policy = std::make_unique<RandomPolicy>();
    return seg;
  }

  // Externalize the all-live-committed prefix of the segment, check log
  // safety, retire/replace crashed replicas, and schedule retries.
  void harvestSegment(State& st, const Segment& seg,
                      const SegmentOutcome& out) {
    const SegmentPlan& plan = seg.plan;
    ++st.seg_counter;
    ++st.stats.segments;
    st.stats.steps += out.steps;
    st.hash = mixDigest(st.hash, out.trace_hash);
    if (plan.injector != Injector::kNone) {
      ++st.stats.injector_fires[injectorName(plan.injector)];
    }
    if (seg.engine != nullptr) {
      st.stats.injected_crashes += seg.engine->crashesInjected();
    }

    if (out.verdict == RunVerdict::kAxiomViolation ||
        out.verdict == RunVerdict::kSafetyViolation) {
      st.verdict = ServiceVerdict::kInstanceViolation;
      st.detail = std::string("inner run flagged (") +
                  runVerdictName(out.verdict) + "): " + out.detail;
      return;
    }

    std::vector<int> live;
    std::vector<int> crashed;
    for (int slot = 0; slot < cfg_.group; ++slot) {
      if (out.fp->isCorrect(slot)) {
        live.push_back(slot);
      } else {
        crashed.push_back(slot);
      }
    }

    // Commit point: the prefix every LIVE replica has applied.
    int m = 0;
    while (m < plan.len) {
      bool all = true;
      for (const int slot : live) {
        if (out.noted[static_cast<std::size_t>(slot)]
                     [static_cast<std::size_t>(m)] == kBottomValue) {
          all = false;
          break;
        }
      }
      if (!all) break;
      ++m;
    }

    const int k_bound = cfg_.kBound();
    Time prev_tick = 0;
    for (int s = 0; s < m; ++s) {
      const long long g = st.committed + static_cast<long long>(s);
      // All applied values for this instance — crashed replicas included:
      // a decide-then-die value is externalized too and must obey the
      // same bound (uniform agreement, like core/checkers.h).
      std::vector<std::pair<int, Value>> vals;  // (slot, value)
      for (int slot = 0; slot < cfg_.group; ++slot) {
        const Value v = out.noted[static_cast<std::size_t>(slot)]
                                 [static_cast<std::size_t>(s)];
        if (v != kBottomValue) vals.emplace_back(slot, v);
      }
      // Seeded negative-control defect: corrupt the first live replica's
      // applied value at the target instance BEFORE the checks run.
      if (cfg_.bug == ServiceBug::kLogDivergence &&
          g == static_cast<long long>(
                   cfg_.bug_seed %
                   static_cast<std::uint64_t>(cfg_.instances))) {
        for (auto& sv : vals) {
          if (out.fp->isCorrect(sv.first)) {
            sv.second += kBugOffset;
            break;
          }
        }
      }

      // Log safety: <= k distinct applied values, each actually proposed
      // for this instance.
      std::vector<Value> distinct;
      for (const auto& sv : vals) {
        if (std::find(distinct.begin(), distinct.end(), sv.second) ==
            distinct.end()) {
          distinct.push_back(sv.second);
        }
      }
      if (static_cast<int>(distinct.size()) > k_bound) {
        st.verdict = ServiceVerdict::kLogDivergence;
        st.detail = "instance " + std::to_string(g) + " committed " +
                    std::to_string(distinct.size()) +
                    " distinct values (k bound " + std::to_string(k_bound) +
                    ")";
        return;
      }
      for (const auto& sv : vals) {
        bool proposed = false;
        for (int slot = 0; slot < cfg_.group; ++slot) {
          if ((*plan.props)[static_cast<std::size_t>(slot)]
                           [static_cast<std::size_t>(s)] == sv.second) {
            proposed = true;
            break;
          }
        }
        if (!proposed) {
          st.verdict = ServiceVerdict::kLogDivergence;
          st.detail = "instance " + std::to_string(g) + ": replica slot " +
                      std::to_string(sv.first) +
                      " applied a value never proposed for it";
          return;
        }
      }

      // Externalize: canonical entry is the minimum applied value (the
      // unique value for k = 1); each replica's log gets ITS OWN applied
      // value, so k > 1 logs legitimately differ within the bound.
      Value entry = vals.front().second;
      for (const auto& sv : vals) entry = std::min(entry, sv.second);
      st.canonical.push_back(entry);
      st.hash = mixDigest(st.hash, static_cast<std::uint64_t>(g));
      Time tick = 0;
      for (const auto& sv : vals) {
        st.logs[static_cast<std::size_t>(
                    st.active[static_cast<std::size_t>(sv.first)])]
            .entries.push_back(sv.second);
        ++st.stats.replica_decisions;
        st.hash = mixDigest(st.hash, static_cast<std::uint64_t>(sv.second));
      }
      for (const int slot : live) {
        tick = std::max(tick, out.note_step[static_cast<std::size_t>(slot)]
                                           [static_cast<std::size_t>(s)]);
      }
      st.latencies.push_back(static_cast<long long>(tick - prev_tick));
      prev_tick = tick;
      // Consume committed commands; undecided proposals stay pending and
      // are re-proposed by a later segment.
      for (const Value v : distinct) {
        const auto it = std::find(st.inbox.begin(), st.inbox.end(), v);
        if (it != st.inbox.end()) st.inbox.erase(it);
      }
    }
    st.committed += m;

    // Replacement accounting: crashed replicas are retired; fresh replica
    // ids join at the current commit index (state transfer: the canonical
    // prefix is implicit in ReplicaLog::start).
    if (static_cast<int>(crashed.size()) > cfg_.f) {
      st.verdict = ServiceVerdict::kReplacementOverrun;
      st.detail = std::to_string(crashed.size()) +
                  " replicas crashed in one segment (f budget " +
                  std::to_string(cfg_.f) + ")";
      return;
    }
    for (const int slot : crashed) {
      st.logs[static_cast<std::size_t>(
                  st.active[static_cast<std::size_t>(slot)])]
          .retired = true;
      const int rid = st.next_rid++;
      st.logs.push_back(ReplicaLog{rid, slot, st.committed, {}, false});
      st.active[static_cast<std::size_t>(slot)] = rid;
      ++st.stats.replacements;
      st.hash = mixDigest(mixDigest(st.hash, 0x9E9),
                          static_cast<std::uint64_t>(rid));
    }

    // No-gap liveness: a partial commit is retried (bumped seed via
    // seg_counter) until the commit point moves past the segment, at most
    // max_retries consecutive times.
    if (m < plan.len) {
      if (++st.retries_here > cfg_.max_retries) {
        st.verdict = ServiceVerdict::kStalled;
        st.detail = "commit point stuck at instance " +
                    std::to_string(st.committed) + " after " +
                    std::to_string(cfg_.max_retries) + " retries";
        return;
      }
      ++st.stats.retries;
    } else {
      st.retries_here = 0;
    }
  }

  [[nodiscard]] ServiceReport finalize(const State& st) const {
    ServiceReport rep;
    rep.verdict = st.verdict;
    rep.detail = st.detail;
    rep.stats = st.stats;
    rep.stats.committed = st.committed;
    rep.canonical = st.canonical;
    rep.logs = st.logs;

    // Belt-and-braces final check (consensus streams): every replica log
    // must be the canonical-log slice [start, start + entries).
    if (rep.verdict == ServiceVerdict::kOk && cfg_.kBound() == 1) {
      for (const ReplicaLog& rl : rep.logs) {
        if (rl.start + static_cast<long long>(rl.entries.size()) >
            static_cast<long long>(rep.canonical.size())) {
          rep.verdict = ServiceVerdict::kLogDivergence;
          rep.detail = "replica r" + std::to_string(rl.rid) +
                       " log runs past the canonical log";
          break;
        }
        for (std::size_t i = 0; i < rl.entries.size(); ++i) {
          if (rl.entries[i] !=
              rep.canonical[static_cast<std::size_t>(rl.start) + i]) {
            rep.verdict = ServiceVerdict::kLogDivergence;
            rep.detail = "replica r" + std::to_string(rl.rid) +
                         " diverges from the canonical log at index " +
                         std::to_string(rl.start +
                                        static_cast<long long>(i));
            break;
          }
        }
        if (rep.verdict != ServiceVerdict::kOk) break;
      }
    }

    std::vector<long long> lat = st.latencies;
    std::sort(lat.begin(), lat.end());
    rep.stats.lat_p50 = percentile(lat, 0.50);
    rep.stats.lat_p99 = percentile(lat, 0.99);
    rep.service_hash =
        mixDigest(mixDigest(st.hash, static_cast<std::uint64_t>(st.committed)),
                  static_cast<std::uint64_t>(rep.verdict));
    return rep;
  }

 private:
  void validate() const {
    if (cfg_.group < 2 || cfg_.group > kMaxProcs) {
      throw SimAbort("service: group must be in [2, kMaxProcs]");
    }
    if (cfg_.f < 1 || cfg_.f > cfg_.group - 1) {
      throw SimAbort("service: f must be in [1, group-1]");
    }
    if (cfg_.instances < 1 || cfg_.segment_len < 1 || cfg_.clients < 1) {
      throw SimAbort("service: instances, segment_len, clients must be >= 1");
    }
  }

  [[nodiscard]] Injector pickInjector(long long seg_counter) const {
    const ChaosPlan& cp = cfg_.chaos;
    if (cp.period <= 0 || (seg_counter % cp.period) != cp.period - 1) {
      return Injector::kNone;
    }
    std::vector<Injector> kinds;
    // Crash legality needs either a constructed detector (stable set
    // pinned by the pre-seeded crash / protected leader) or the realized
    // Omega lens (eventual leader 0 protected); realized Upsilon streams
    // skip crash segments rather than risk an illegal history.
    const bool crash_ok =
        cfg_.detector == DetectorSource::kConstructed ||
        cfg_.protocol == Protocol::kOmegaConsensus;
    if (cp.crashes && crash_ok) kinds.push_back(Injector::kCrash);
    if (cp.starvation) kinds.push_back(Injector::kStarve);
    if (cp.fd_glitch) kinds.push_back(Injector::kGlitch);
    if (cp.link_faults && cfg_.detector == DetectorSource::kRealizedNet) {
      kinds.push_back(Injector::kLink);
    }
    if (cp.stale_snapshot) kinds.push_back(Injector::kStale);
    if (kinds.empty()) return Injector::kNone;
    return kinds[static_cast<std::size_t>(
        (seg_counter / cp.period) %
        static_cast<long long>(kinds.size()))];
  }

  static double percentile(const std::vector<long long>& sorted, double p) {
    if (sorted.empty()) return 0;
    const auto idx = static_cast<std::size_t>(
        (static_cast<double>(sorted.size() - 1)) * p + 0.5);
    return static_cast<double>(sorted[idx]);
  }

  const ServiceConfig cfg_;
  FdCache cache_;
  State st_;
};

}  // namespace

const char* serviceVerdictName(ServiceVerdict v) {
  switch (v) {
    case ServiceVerdict::kOk: return "ok";
    case ServiceVerdict::kLogDivergence: return "log_divergence";
    case ServiceVerdict::kInstanceViolation: return "instance_violation";
    case ServiceVerdict::kStalled: return "stalled";
    case ServiceVerdict::kReplacementOverrun: return "replacement_overrun";
  }
  return "?";
}

ServiceReport runService(const ServiceConfig& cfg) {
  ServiceDriver d(cfg);
  d.runToCompletion(d.state());
  return d.finalize(d.state());
}

bool SweepReport::allOk() const {
  for (const SweepVariant& v : variants) {
    if (v.verdict != ServiceVerdict::kOk) return false;
  }
  return !variants.empty();
}

SweepReport runCrashSweep(const ServiceConfig& cfg) {
  if (cfg.protocol != Protocol::kOmegaConsensus ||
      cfg.detector != DetectorSource::kConstructed ||
      cfg.chaos.period != 0 || cfg.bug != ServiceBug::kNone) {
    throw SimAbort(
        "runCrashSweep requires kOmegaConsensus + kConstructed, no chaos "
        "plan and no seeded bug");
  }
  ServiceDriver d(cfg);
  SweepReport rep;
  ServiceDriver::State& st = d.state();
  while (st.verdict == ServiceVerdict::kOk && st.committed < cfg.instances) {
    d.refillInbox(st);
    const ServiceDriver::State entry = st;  // fork point for the variants
    Segment seg = d.prepareSegment(st);
    SegmentDriver sd(*seg.run, *seg.policy, d.segmentBudget(seg.plan.len),
                     nullptr, cfg.group, seg.plan.len, /*record_marks=*/true);
    const SegmentOutcome base_out = sd.drive();
    if (base_out.verdict != RunVerdict::kOk) {
      // A clean base stream is the sweep's precondition; report it as a
      // single failed variant rather than asserting.
      SweepVariant v;
      v.crash_index = entry.committed;
      v.verdict = ServiceVerdict::kInstanceViolation;
      v.detail = std::string("base segment not clean: ") +
                 runVerdictName(base_out.verdict) + ": " + base_out.detail;
      rep.variants.push_back(v);
      break;
    }
    // One variant per instance of this segment: restore the shared prefix
    // (b instances committed), crash a seeded non-leader replica, drive
    // the segment suffix, then run the rest of the stream normally.
    for (int b = 0; b < seg.plan.len; ++b) {
      const long long g = entry.committed + static_cast<long long>(b);
      const Pid victim =
          1 + static_cast<Pid>(
                  mixDigest(cfg.seed ^ 0x5EED,
                            static_cast<std::uint64_t>(g)) %
                  static_cast<std::uint64_t>(cfg.group - 1));
      const SegmentOutcome vout = sd.driveVariant(b, victim);
      ServiceDriver::State vst = entry;
      d.harvestSegment(vst, seg, vout);
      d.runToCompletion(vst);
      const ServiceReport vrep = d.finalize(vst);
      SweepVariant v;
      v.crash_index = g;
      v.victim_slot = victim;
      v.verdict = vrep.verdict;
      v.detail = vrep.detail;
      v.committed = vrep.stats.committed;
      v.replacements = vrep.stats.replacements;
      v.service_hash = vrep.service_hash;
      rep.variants.push_back(v);
    }
    rep.restores += sd.restores();
    d.harvestSegment(st, seg, base_out);
  }
  rep.base_hash = d.finalize(st).service_hash;
  return rep;
}

CellResult runServiceCell(const ServiceConfig& cfg, std::size_t index) {
  CellResult out;
  out.index = index;
  const ServiceReport rep = runService(cfg);
  switch (rep.verdict) {
    case ServiceVerdict::kOk:
      out.verdict = RunVerdict::kOk;
      break;
    case ServiceVerdict::kLogDivergence:
      out.verdict = RunVerdict::kSafetyViolation;
      break;
    case ServiceVerdict::kInstanceViolation:
      out.verdict = RunVerdict::kAxiomViolation;
      break;
    case ServiceVerdict::kStalled:
      out.verdict = RunVerdict::kLivelock;
      break;
    case ServiceVerdict::kReplacementOverrun:
      out.verdict = RunVerdict::kBudgetExhausted;
      break;
  }
  out.detail = rep.detail;
  out.error = false;
  out.all_correct_done = rep.ok();
  out.steps = rep.stats.steps;
  out.distinct_decisions = 0;
  out.trace_hash = rep.service_hash;
  out.check_ok = rep.ok();
  out.check_detail = std::string("service: ") + serviceVerdictName(rep.verdict) +
                     (rep.detail.empty() ? "" : (": " + rep.detail));
  out.metrics["instances"] = static_cast<double>(rep.stats.committed);
  out.metrics["replica_decisions"] =
      static_cast<double>(rep.stats.replica_decisions);
  out.metrics["segments"] = static_cast<double>(rep.stats.segments);
  out.metrics["retries"] = static_cast<double>(rep.stats.retries);
  out.metrics["replacements"] = static_cast<double>(rep.stats.replacements);
  out.metrics["injected_crashes"] =
      static_cast<double>(rep.stats.injected_crashes);
  out.metrics["rejected"] = static_cast<double>(rep.stats.rejected);
  out.metrics["lat_p50"] = rep.stats.lat_p50;
  out.metrics["lat_p99"] = rep.stats.lat_p99;
  for (const auto& [name, n] : rep.stats.injector_fires) {
    out.metrics["inj_" + name] = static_cast<double>(n);
  }
  return out;
}

}  // namespace wfd::sim::service
