// Configuration for the replicated agreement service (sim/service).
//
// Kept separate from service.h so sim/batch.h can embed a ServiceConfig
// in a BatchCell without pulling in the service driver (service.h needs
// batch.h for FdCache/CellResult; this header needs neither).
//
// A ServiceConfig pins a whole service execution — stream length,
// replication group, protocol, detector substrate, chaos plan, seeds —
// and digest() folds every field, so the ReportCache/PersistentStore can
// key service cells exactly like one-shot run cells (docs/SERVICE.md).
#pragma once

#include <algorithm>
#include <cstdint>

#include "fd/failure_detector.h"
#include "sim/net/net_config.h"

namespace wfd::sim::service {

// Which agreement stack decides each instance of the stream.
enum class Protocol {
  kOmegaConsensus,  // Omega-based consensus (k = 1): logs must be identical
  kFig1Upsilon,     // Fig. 1 wait-free n-set agreement (k = group - 1)
  kFig2UpsilonF,    // Fig. 2 f-resilient f-set agreement (k = f)
};

// Where the failure detector history comes from.
enum class DetectorSource {
  kConstructed,  // fd/upsilon.h + fd/omega.h constructed histories
  kRealizedNet,  // heartbeat-realized lenses over NetWorld (sim/net)
};

// Seeded test-only defects for the negative-control suite: the service's
// own checkers must provably catch each of them (docs/SERVICE.md).
enum class ServiceBug {
  kNone,
  // Corrupt one replica's harvested decision at a seeded (instance,
  // replica) before the log-safety check runs: the committed entry
  // diverges from the canonical log and MUST yield kLogDivergence.
  kLogDivergence,
};

// Mid-stream fault plan: every `period` segments one injector fires,
// rotating through the enabled kinds. All injectors are LEGAL (safety
// must survive them); illegal-glitch negative controls stay at the chaos
// layer (tests/chaos_test.cc) where the axiom checker is the instrument.
struct ChaosPlan {
  int period = 0;  // fire on segments seg % period == period - 1; 0 = off
  bool crashes = true;      // crash-injection segments (within the f budget)
  bool starvation = true;   // bounded starvation windows
  bool fd_glitch = true;    // legal glitches: scramble noise / delay stab
  bool link_faults = true;  // realized-net only: drops/partitions pre-GST
  bool stale_snapshot = false;  // legal stale-but-linearizable scans
  std::uint64_t seed = 0;       // injector parameter stream

  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = fd::mixDigest(0xC4A05, static_cast<std::uint64_t>(period));
    h = fd::mixDigest(h, (crashes ? 2u : 1u));
    h = fd::mixDigest(h, (starvation ? 2u : 1u));
    h = fd::mixDigest(h, (fd_glitch ? 2u : 1u));
    h = fd::mixDigest(h, (link_faults ? 2u : 1u));
    h = fd::mixDigest(h, (stale_snapshot ? 2u : 1u));
    return fd::mixDigest(h, seed);
  }
};

struct ServiceConfig {
  // Replication group size: the n+1 of every inner run. Crashed replicas
  // are retired after their segment and replaced by fresh replica ids,
  // so the ACTIVE group always has `group` members.
  int group = 3;
  // Per-segment crash budget (the f the protocol claims quantify over).
  int f = 1;
  Protocol protocol = Protocol::kOmegaConsensus;
  DetectorSource detector = DetectorSource::kConstructed;
  // Constructed-detector stabilization time (per segment; each segment is
  // a fresh inner run whose clock starts at 0).
  Time stab = 120;
  // Realized-detector substrate knobs (DetectorSource::kRealizedNet).
  net::NetConfig net;

  // Stream shape: total instances to decide, cut into segments of
  // `segment_len` instances — one inner Run per segment (fresh world, so
  // per-instance object keys never collide across segments and the
  // detector re-stabilizes per segment).
  long long instances = 1000;
  int segment_len = 16;

  // Client model: `clients` independent command sources feed a bounded
  // inbox refilled to capacity before each segment; commands beyond
  // capacity are rejected (backpressure, counted in ServiceStats).
  // 0 capacity = segment_len * group, the smallest inbox for which every
  // instance of a segment proposes pairwise-distinct commands.
  int clients = 4;
  int inbox_capacity = 0;

  std::uint64_t seed = 1;

  // Liveness budgets: a segment gets slack + len * instance budget steps;
  // on kBudgetExhausted/kLivelock the all-live-committed prefix is kept
  // and the rest retried with a bumped seed, at most max_retries times
  // before the service verdict degrades to kStalled.
  Time instance_step_budget = 30'000;
  Time segment_budget_slack = 200'000;
  int max_retries = 3;

  ChaosPlan chaos;

  ServiceBug bug = ServiceBug::kNone;
  std::uint64_t bug_seed = 0;

  // Max distinct per-instance decisions the protocol admits: the k the
  // log-safety checker holds every committed instance to.
  [[nodiscard]] int kBound() const {
    switch (protocol) {
      case Protocol::kOmegaConsensus: return 1;
      case Protocol::kFig1Upsilon: return std::max(1, group - 1);
      case Protocol::kFig2UpsilonF: return std::max(1, f);
    }
    return 1;
  }

  [[nodiscard]] int effectiveInboxCapacity() const {
    return std::max(inbox_capacity, segment_len * group);
  }

  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = fd::mixDigest(0x5E21C3, static_cast<std::uint64_t>(group));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(f));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(protocol));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(detector));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(stab));
    h = fd::mixDigest(h, net.digest());
    h = fd::mixDigest(h, static_cast<std::uint64_t>(instances));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(segment_len));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(clients));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(inbox_capacity));
    h = fd::mixDigest(h, seed);
    h = fd::mixDigest(h, static_cast<std::uint64_t>(instance_step_budget));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(segment_budget_slack));
    h = fd::mixDigest(h, static_cast<std::uint64_t>(max_retries));
    h = fd::mixDigest(h, chaos.digest());
    h = fd::mixDigest(h, static_cast<std::uint64_t>(bug));
    return fd::mixDigest(h, bug_seed);
  }
};

}  // namespace wfd::sim::service
