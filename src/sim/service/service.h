// Replicated agreement service: a long-lived stream of sequential
// agreement instances over the simulated substrate (docs/SERVICE.md).
//
// Clients submit commands to a bounded inbox; a replication group of
// `group` replicas decides instance i via the paper's stacks — Omega
// consensus, Fig. 1 (Upsilon), or Fig. 2 (Upsilon^f) — each instance an
// invocation of the *Instance form of the protocol inside a per-segment
// inner Run; a committed log grows monotonically; crashed replicas are
// retired and replaced by fresh replica ids within the f budget; chaos
// injectors (crashes, starvation, legal FD glitches, link faults, stale
// scans) fire mid-stream on a seeded cadence.
//
// Commit rule (the determinism/safety anchor): a segment externalizes
// exactly the prefix of its instances that every replica LIVE at segment
// end has applied. Everything behind the commit point is retried with a
// bumped schedule seed (never re-externalized); everything before it is
// appended to the replica logs and to the canonical log, and the
// log-safety checker holds each committed instance to the protocol's
// k bound (k = 1: all logs identical; k > 1: <= k distinct decisions,
// each a value actually proposed for that instance).
//
// Verdict taxonomy (service-level; per-instance inner verdicts roll up):
//   kOk                  stream completed; every check clean.
//   kLogDivergence       log safety broken: an instance committed more
//                        than k distinct values, a replica applied a
//                        value never proposed for the instance, or a
//                        replica log left the canonical prefix.
//   kInstanceViolation   an inner run was flagged by the watchdog/axiom
//                        checker under a LEGAL chaos plan.
//   kStalled             no-gap liveness broken: a segment failed to
//                        advance the commit point within max_retries.
//   kReplacementOverrun  more replicas crashed in one segment than the f
//                        budget admits (replacement accounting).
//
// Determinism contract: a ServiceReport is a pure function of its
// ServiceConfig — same config, same committed log, same service_hash,
// bit-for-bit (certified by tests/service_test.cc, including through
// BatchRunner jobs=N and the multi-process fabric).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/batch.h"
#include "sim/service/service_config.h"

namespace wfd::sim::service {

enum class ServiceVerdict {
  kOk,
  kLogDivergence,
  kInstanceViolation,
  kStalled,
  kReplacementOverrun,
};

[[nodiscard]] const char* serviceVerdictName(ServiceVerdict v);

// One replica's committed log: the canonical-log suffix it applied,
// starting at commit index `start` (a replacement joins with the
// canonical prefix implicit — state transfer — so memory stays bounded
// by total committed entries, not replicas x entries).
struct ReplicaLog {
  int rid = 0;        // service-unique replica id (never reused)
  int slot = 0;       // group slot (the inner runs' pid for this replica)
  long long start = 0;
  std::vector<Value> entries;
  bool retired = false;  // crashed and replaced
};

struct ServiceStats {
  long long committed = 0;          // instances externalized
  long long replica_decisions = 0;  // log entries appended across replicas
  long long submitted = 0;          // commands offered by clients
  long long accepted = 0;           // admitted to the bounded inbox
  long long rejected = 0;           // backpressured away
  int segments = 0;                 // inner runs driven (retries included)
  int retries = 0;                  // segment re-drives after partial commit
  int replacements = 0;             // crashed replicas replaced
  int injected_crashes = 0;
  long long steps = 0;              // simulation steps across all segments
  std::map<std::string, long long> injector_fires;  // by injector name
  // Per-instance commit step latency: steps from the previous commit (or
  // segment start) until every live replica applied the instance.
  double lat_p50 = 0;
  double lat_p99 = 0;
};

struct ServiceReport {
  ServiceVerdict verdict = ServiceVerdict::kOk;
  std::string detail;  // empty for kOk; diagnostic otherwise
  ServiceStats stats;
  std::vector<Value> canonical;   // the committed log
  std::vector<ReplicaLog> logs;   // every replica ever active (rid order)
  // Rolling 64-bit digest of the whole execution: every segment's trace
  // hash, every committed entry, every replacement. Bit-identical replay
  // <=> equal service_hash.
  std::uint64_t service_hash = 0;

  [[nodiscard]] bool ok() const { return verdict == ServiceVerdict::kOk; }
};

// Run the full service stream described by cfg. Never throws on chaos
// outcomes (they become verdicts); SimAbort still propagates for harness
// misuse (e.g. group larger than kMaxProcs).
[[nodiscard]] ServiceReport runService(const ServiceConfig& cfg);

// ---- Exhaustive crash-and-replace sweep ---------------------------------
//
// For EVERY instance index g of the stream: replay the service, crash a
// seeded non-leader replica exactly while instance g is in flight, and
// drive the stream to completion (the victim is retired and replaced at
// the segment boundary). Cost is sublinear in variants x stream because
// the base segment is driven ONCE with a Run checkpoint at every
// instance-commit boundary and each variant restores the shared prefix
// instead of re-executing it (sim/runner.h checkpoint prefix sharing).
// Requires Protocol::kOmegaConsensus + DetectorSource::kConstructed +
// no chaos plan (the sweep injects its own crashes); anything else is
// harness misuse and throws SimAbort.
struct SweepVariant {
  long long crash_index = 0;  // global instance in flight at injection
  Pid victim_slot = -1;
  ServiceVerdict verdict = ServiceVerdict::kOk;
  std::string detail;
  long long committed = 0;
  int replacements = 0;
  std::uint64_t service_hash = 0;
};

struct SweepReport {
  std::uint64_t base_hash = 0;  // untouched base stream's service_hash
  std::vector<SweepVariant> variants;  // one per instance index
  long long restores = 0;  // checkpoint restores (prefix-sharing measure)
  [[nodiscard]] bool allOk() const;
};

[[nodiscard]] SweepReport runCrashSweep(const ServiceConfig& cfg);

// ---- Batch/fabric adapter -----------------------------------------------
//
// Execute a service cell and fold the report into a CellResult so service
// campaigns shard through BatchRunner/runFabric exactly like run cells
// (sim/batch.h BatchCell::service). Verdict mapping: kLogDivergence ->
// kSafetyViolation, kInstanceViolation -> kAxiomViolation, kStalled ->
// kLivelock, kReplacementOverrun -> kBudgetExhausted; check_detail keeps
// the service-level name. trace_hash carries service_hash; metrics carry
// committed/replacements/retries/latency percentiles/injector counters.
[[nodiscard]] CellResult runServiceCell(const ServiceConfig& cfg,
                                        std::size_t index);

}  // namespace wfd::sim::service
