#include "sim/watchdog.h"

#include <set>
#include <vector>

#include "sim/chaos.h"

namespace wfd::sim {

const char* runVerdictName(RunVerdict v) {
  switch (v) {
    case RunVerdict::kOk: return "ok";
    case RunVerdict::kSafetyViolation: return "safety_violation";
    case RunVerdict::kAxiomViolation: return "axiom_violation";
    case RunVerdict::kBudgetExhausted: return "budget_exhausted";
    case RunVerdict::kLivelock: return "livelock";
  }
  return "?";
}

RunReport driveWatched(Run& run, SchedulePolicy& policy,
                       const WatchdogConfig& wd, ChaosEngine* chaos) {
  RunReport rep;
  World& world = run.world();
  Scheduler& sched = run.scheduler();

  // Stale-snapshot injection (sim/chaos.h): route scan results through
  // the engine. Installed only when configured, so every other run's
  // scan path — and its trace — is untouched.
  if (chaos != nullptr && chaos->wantsScanOverride()) {
    world.setScanOverride([chaos](Pid p, ObjId obj) {
      return chaos->overrideScan(p, obj);
    });
  }

  // Online safety state: distinct decided values and per-process decision
  // counts, maintained incrementally from the trace.
  std::set<Value> distinct;
  std::vector<int> decided(static_cast<std::size_t>(world.nProcs()), 0);
  std::size_t scanned = 0;
  Time last_progress = 0;
  bool stop = false;

  while (!stop) {
    if (sched.allCorrectDone()) break;
    if (rep.steps >= wd.step_budget) {
      rep.verdict = RunVerdict::kBudgetExhausted;
      rep.detail = "step budget " + std::to_string(wd.step_budget) +
                   " exhausted before all correct processes finished";
      break;
    }
    if (chaos != nullptr) chaos->beforeStep(world, sched);
    const ProcSet runnable = sched.runnable();
    if (runnable.empty()) break;  // every live process finished
    const ProcSet pick_from =
        chaos != nullptr ? chaos->filterRunnable(runnable, world, sched)
                         : runnable;
    const Pid p = policy.next(pick_from, world, sched.rng());
    try {
      sched.step(p);
    } catch (const StepAuditError& e) {
      rep.verdict = RunVerdict::kAxiomViolation;
      rep.detail = e.what();
      break;
    }
    ++rep.steps;

    const auto& evs = world.trace().events();
    const bool progressed = evs.size() > scanned;
    for (; scanned < evs.size(); ++scanned) {
      const Event& e = evs[scanned];
      if (e.kind != EventKind::kDecide || wd.safety_k <= 0) continue;
      if (++decided[static_cast<std::size_t>(e.pid)] > 1) {
        rep.verdict = RunVerdict::kSafetyViolation;
        rep.detail = "process p" + std::to_string(e.pid) + " decided twice";
        stop = true;
        break;
      }
      distinct.insert(e.value.asInt());
      if (static_cast<int>(distinct.size()) > wd.safety_k) {
        rep.verdict = RunVerdict::kSafetyViolation;
        rep.detail = std::to_string(distinct.size()) +
                     " distinct decisions exceed the k=" +
                     std::to_string(wd.safety_k) + " agreement bound";
        stop = true;
        break;
      }
    }
    if (stop) break;
    if (progressed) {
      last_progress = rep.steps;
    } else if (wd.livelock_window > 0 &&
               rep.steps - last_progress >= wd.livelock_window) {
      rep.verdict = RunVerdict::kLivelock;
      rep.detail = "no new trace event in " +
                   std::to_string(wd.livelock_window) +
                   " steps with live processes still running";
      break;
    }
  }

  // Close the audit window now, unconditionally: the end-of-run FD-axiom
  // conditions may raise StepAuditError in kThrow mode, and running them
  // here (finalizeFdAxioms is idempotent) keeps run.finish() below from
  // ever throwing. They demote an otherwise clean run; a run that already
  // has a verdict keeps it.
  try {
    world.endAuditObservation();
  } catch (const StepAuditError& e) {
    // An illegal FD history must never hide behind a budget or livelock
    // cutoff (negative controls demand 100% detection); only an already
    // established safety violation outranks it.
    if (rep.verdict != RunVerdict::kSafetyViolation) {
      rep.verdict = RunVerdict::kAxiomViolation;
      rep.detail = e.what();
    }
  }
  // Collect-mode audits (explicitly requested by the config) report their
  // findings as the same verdict, after the fact.
  if (rep.verdict == RunVerdict::kOk) {
    if (const StepAuditor* a = world.auditor();
        a != nullptr && !a->clean()) {
      rep.verdict = RunVerdict::kAxiomViolation;
      rep.detail = a->violations().front().toString();
    }
  }

  rep.result = run.finish(rep.steps);
  return rep;
}

}  // namespace wfd::sim
