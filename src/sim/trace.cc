#include "sim/trace.h"

namespace wfd::sim {

std::vector<Event> Trace::ofKind(EventKind k) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

std::vector<RegVal> Trace::publishedAt(Time t, int n_plus_1) const {
  std::vector<RegVal> out(static_cast<std::size_t>(n_plus_1));
  for (const auto& e : events_) {
    if (e.time > t) break;
    if (e.kind == EventKind::kPublish && e.pid >= 0 && e.pid < n_plus_1) {
      out[static_cast<std::size_t>(e.pid)] = e.value;
    }
  }
  return out;
}

std::string Trace::toString() const {
  std::string s;
  for (const auto& e : events_) {
    s += "t=" + std::to_string(e.time) + " p" + std::to_string(e.pid + 1);
    switch (e.kind) {
      case EventKind::kPropose: s += " propose "; break;
      case EventKind::kDecide: s += " decide "; break;
      case EventKind::kPublish: s += " publish "; break;
      case EventKind::kNote: s += " note "; break;
    }
    if (!e.label.empty()) s += e.label + " ";
    s += e.value.toString() + "\n";
  }
  return s;
}

}  // namespace wfd::sim
