#include "sim/trace.h"

namespace wfd::sim {

std::vector<Event> Trace::ofKind(EventKind k) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

std::vector<RegVal> Trace::publishedAt(Time t, int n_plus_1) const {
  std::vector<RegVal> out(static_cast<std::size_t>(n_plus_1));
  for (const auto& e : events_) {
    if (e.time > t) break;
    if (e.kind == EventKind::kPublish && e.pid >= 0 && e.pid < n_plus_1) {
      out[static_cast<std::size_t>(e.pid)] = e.value;
    }
  }
  return out;
}

std::uint64_t Trace::hash64() const {
  std::uint64_t h = op_digest_;
  h = mix(h, ops_mixed_);
  h = mix(h, events_.size());
  for (const auto& e : events_) {
    h = mix(h, static_cast<std::uint64_t>(e.time));
    h = mix(h, static_cast<std::uint64_t>(e.pid) + 1);
    h = mix(h, static_cast<std::uint64_t>(e.kind) + 1);
    h = mix(h, e.label.size());
    for (char c : e.label) h = mix(h, static_cast<unsigned char>(c));
    h = mix(h, e.value.hash64());
  }
  return h;
}

std::string Trace::toString() const {
  std::string s;
  for (const auto& e : events_) {
    s += "t=" + std::to_string(e.time) + " p" + std::to_string(e.pid + 1);
    switch (e.kind) {
      case EventKind::kPropose: s += " propose "; break;
      case EventKind::kDecide: s += " decide "; break;
      case EventKind::kPublish: s += " publish "; break;
      case EventKind::kNote: s += " note "; break;
    }
    if (!e.label.empty()) s += e.label + " ";
    s += e.value.toString() + "\n";
  }
  return s;
}

}  // namespace wfd::sim
