// Coroutine machinery for simulated process automata.
//
// The paper models computation as atomic steps: in one step a process (i)
// invokes one operation on a shared object or queries its failure detector
// and (ii) applies the response to its automaton. We express an automaton
// as a C++20 coroutine: every shared-memory operation / FD query is a
// `co_await` that suspends back to the scheduler, so one scheduler resume
// == one atomic step of the model, and algorithm code reads like the
// paper's pseudocode.
//
// Coro<T> supports nesting (an algorithm co_awaits a subroutine such as
// k-converge, which itself awaits memory operations) via continuation
// chaining. Deliberately, NO coroutine ever resumes another directly:
// every await_suspend merely records the next handle in the process
// context and returns, and the scheduler drives a flat resume loop. This
// keeps exactly one coroutine resumption on the machine stack at a time,
// which (a) sidesteps the GCC symmetric-transfer non-tail-call pitfalls
// (destroying a completed child frame while its resume call is still on
// the stack corrupts the heap under -O0/sanitizers), and (b) makes step
// accounting trivial: the scheduler resumes handles until the process
// either requests an atomic operation or finishes. The simulation is
// single-threaded; a per-thread "current process" pointer connects
// awaitables to the process context the scheduler is resuming.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "sim/ops.h"

namespace wfd::sim {

// Per-process control block shared between the scheduler and the leaf
// awaitables of that process's coroutine stack.
struct ProcCtx {
  Pid pid = -1;
  // The next coroutine handle the scheduler's resume loop should run:
  // set by OpAwait (the suspended leaf), by Coro<T>::await_suspend (a
  // child starting) and by the final awaiter (control returning to the
  // continuation). Null once the top-level coroutine finishes.
  std::coroutine_handle<> resume_point;
  // Operation requested by the pending leaf awaitable, if any.
  std::optional<Op> pending;
  // Result of the operation the scheduler just executed.
  OpResult result;
  bool done = false;
  bool crashed = false;
  Time steps = 0;  // steps this process has taken
  // Model-conformance hook (sim/step_audit.h): when set by the scheduler
  // of an audited world, OpAwait::await_suspend reports every requested
  // operation (and whether a previous request was still pending — a
  // violation of the one-op-per-step model) before the scheduler executes
  // it. A std::function keeps coro.h free of the auditor's type.
  std::function<void(const Op&, bool already_pending)> on_op_requested;
};

// The process the scheduler is currently resuming (single-threaded).
ProcCtx*& currentProc();

// Awaitable that performs one atomic shared-memory / FD step.
struct OpAwait {
  Op op;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    ProcCtx* c = currentProc();
    assert(c != nullptr && "op awaited outside a scheduled process");
    if (c->on_op_requested) c->on_op_requested(op, c->pending.has_value());
    c->pending = std::move(op);
    c->resume_point = h;
    // Returning void unwinds the whole resume() call back to the scheduler.
  }
  OpResult await_resume() {
    ProcCtx* c = currentProc();
    assert(c != nullptr);
    return std::move(c->result);
  }
};

struct Unit {};

// A lazily-started coroutine returning T. Awaiting a Coro<T> transfers
// control into it; when it finishes, control returns to the awaiter (or,
// for a top-level process coroutine, to the scheduler's resume() call).
template <class T>
class Coro {
 public:
  struct promise_type {
    std::optional<T> value;
    std::exception_ptr error;
    std::coroutine_handle<> continuation;  // awaiting parent, if any

    Coro get_return_object() {
      return Coro(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Hand control back to the continuation via the scheduler's
        // resume loop (never a direct resume; see the file comment).
        ProcCtx* c = currentProc();
        assert(c != nullptr);
        c->resume_point = h.promise().continuation;  // null for top-level
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  Coro() = default;
  explicit Coro(std::coroutine_handle<promise_type> h) : h_(h) {}
  Coro(Coro&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Coro& operator=(Coro&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { destroy(); }

  // Awaiting a child coroutine: queue it in the scheduler's resume loop.
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> parent) {
    h_.promise().continuation = parent;
    ProcCtx* c = currentProc();
    assert(c != nullptr);
    c->resume_point = h_;
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    assert(p.value.has_value());
    return std::move(*p.value);
  }

  // Top-level driving (used by the scheduler/runner only).
  [[nodiscard]] std::coroutine_handle<> handle() const { return h_; }
  [[nodiscard]] bool done() const { return !h_ || h_.done(); }
  [[nodiscard]] bool failed() const {
    return h_ && h_.done() && h_.promise().error != nullptr;
  }
  void rethrowIfFailed() const {
    if (failed()) std::rethrow_exception(h_.promise().error);
  }
  [[nodiscard]] const T& result() const {
    assert(done() && h_.promise().value.has_value());
    return *h_.promise().value;
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace wfd::sim
