// ReportCache: whole-run memoization keyed by a 64-bit cell digest.
//
// A run is a pure function of its cell (sim/batch.h), so two cells whose
// configurations digest identically produce identical CellResults — the
// sweep harnesses (bench_thm1_separation's easy direction, the Fig. 3
// extraction grid, warm chaos recertification) resubmit thousands of such
// duplicates across invocations. The cache layers NEXT TO FdCache: FdCache
// dedupes constructed detector histories (inputs to runs), ReportCache
// dedupes the completed run summaries themselves.
//
// What makes a cell cacheable (cellKey returns a key):
//   * it names a memo_family — the family stands in for the opaque
//     callables (algo, post, policy_factory) the digest cannot inspect;
//   * its detector (if any) overrides FailureDetector::keyDigest — the
//     default kOpaqueFdDigest marks a history the digest cannot pin down;
//   * it will not run audited: resolvedAuditMode(cfg.audit) is empty. An
//     audited run exists to be re-executed and checked, never answered
//     from a cache. (Chaos cells force auditing INTERNALLY — that is part
//     of the deterministic recipe the key digests, so chaos campaigns
//     stay cacheable; only a caller-requested audit bypasses.)
//
// A hit is byte-identical to the fresh run it memoizes (certified by
// tests/report_cache_test.cc): lookup returns the stored CellResult with
// only the submission index rewritten. Thread-safe; bounded by LRU
// eviction. Collisions: the key folds every digested field through the
// Trace mix round — a 64-bit collision between two DISTINCT cells of the
// same family would serve one cell's result for the other, which at the
// cache's ~4k default capacity has probability ~2^-41 per pair; families
// with undigestable distinguishing state must use distinct family names.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "sim/batch.h"

namespace wfd::sim {

// Digest of everything that determines a cell's outcome, or nullopt when
// the cell is uncacheable (empty memo_family, opaque detector, audited).
[[nodiscard]] std::optional<std::uint64_t> cellKey(const BatchCell& cell);

class ReportCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ReportCache(std::size_t capacity = kDefaultCapacity);

  // The stored result with `index` rewritten to the caller's submission
  // slot, or nullopt on miss. Refreshes LRU recency on hit.
  [[nodiscard]] std::optional<CellResult> lookup(std::uint64_t key,
                                                 std::size_t index);

  // Insert (or refresh) the completed result for `key`, evicting the
  // least-recently-used entry when the capacity bound is hit. Callers
  // only insert non-error results: an exception message is not a run
  // outcome and must be reproduced, not replayed.
  void insert(std::uint64_t key, const CellResult& result);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t evictions() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CellResult result;
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  // front = most recent, back = next victim
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace wfd::sim
