// ReportCache: whole-run memoization keyed by a 64-bit cell digest.
//
// A run is a pure function of its cell (sim/batch.h), so two cells whose
// configurations digest identically produce identical CellResults — the
// sweep harnesses (bench_thm1_separation's easy direction, the Fig. 3
// extraction grid, warm chaos recertification) resubmit thousands of such
// duplicates across invocations. The cache layers NEXT TO FdCache: FdCache
// dedupes constructed detector histories (inputs to runs), ReportCache
// dedupes the completed run summaries themselves.
//
// What makes a cell cacheable (cellKey returns a key):
//   * it names a memo_family — the family stands in for the opaque
//     callables (algo, post, policy_factory) the digest cannot inspect;
//   * its detector (if any) overrides FailureDetector::keyDigest — the
//     default kOpaqueFdDigest marks a history the digest cannot pin down;
//   * it will not run audited: resolvedAuditMode(cfg.audit) is empty. An
//     audited run exists to be re-executed and checked, never answered
//     from a cache. (Chaos cells force auditing INTERNALLY — that is part
//     of the deterministic recipe the key digests, so chaos campaigns
//     stay cacheable; only a caller-requested audit bypasses.)
//
// A hit is byte-identical to the fresh run it memoizes (certified by
// tests/report_cache_test.cc): lookup returns the stored CellResult with
// only the submission index rewritten. Thread-safe; bounded by LRU
// eviction. Collisions: the key folds every digested field through the
// Trace mix round — a 64-bit collision between two DISTINCT cells of the
// same family would serve one cell's result for the other, which at the
// cache's ~4k default capacity has probability ~2^-41 per pair; families
// with undigestable distinguishing state must use distinct family names.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "sim/batch.h"

namespace wfd::sim {

// Digest of everything that determines a cell's outcome, or nullopt when
// the cell is uncacheable (empty memo_family, opaque detector, audited).
[[nodiscard]] std::optional<std::uint64_t> cellKey(const BatchCell& cell);

// Durable second level below the in-memory LRU. The production
// implementation is fabric::PersistentStore (sim/fabric/store.h) — an
// append-only, checksummed, version-stamped segment file shared between
// worker processes; the interface keeps report_cache free of any
// filesystem dependency. Contract: load() returns the exact CellResult
// save() stored for that key, or nullopt — NEVER a wrong or partial
// result (corruption must degrade to a miss) — and both calls must be
// thread-safe.
class ResultStore {
 public:
  virtual ~ResultStore() = default;
  [[nodiscard]] virtual std::optional<CellResult> load(std::uint64_t key) = 0;
  virtual void save(std::uint64_t key, const CellResult& result) = 0;
};

class ReportCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ReportCache(std::size_t capacity = kDefaultCapacity,
                       std::unique_ptr<ResultStore> store = nullptr);

  // The stored result with `index` rewritten to the caller's submission
  // slot, or nullopt on miss. Refreshes LRU recency on hit.
  [[nodiscard]] std::optional<CellResult> lookup(std::uint64_t key,
                                                 std::size_t index);

  // Insert (or refresh) the completed result for `key`, evicting the
  // least-recently-used entry when the capacity bound is hit. Callers
  // only insert non-error results: an exception message is not a run
  // outcome and must be reproduced, not replayed.
  void insert(std::uint64_t key, const CellResult& result);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t evictions() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Hits answered by the persistent store (a subset of hits()): an
  // in-memory miss that the ResultStore satisfied. disk_misses counts
  // eligible lookups that fell through both levels.
  [[nodiscard]] std::size_t diskHits() const;
  [[nodiscard]] std::size_t diskMisses() const;
  [[nodiscard]] const ResultStore* store() const { return store_.get(); }

 private:
  struct Entry {
    CellResult result;
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
    bool persisted = false;  // already in the store; never re-append
  };

  void insertLocked(std::uint64_t key, const CellResult& result,
                    bool persisted);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unique_ptr<ResultStore> store_;  // optional durable second level
  std::list<std::uint64_t> lru_;  // front = most recent, back = next victim
  std::unordered_map<std::uint64_t, Entry> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t disk_hits_ = 0;
  std::size_t disk_misses_ = 0;
};

// Build the memo a BatchOptions describes: capacity from memo_capacity
// (0 = kDefaultCapacity) and, when cache_dir is non-empty, a
// fabric::PersistentStore backing stamped with cache_version. Whether to
// ATTACH the cache stays the caller's call (BatchOptions::memo for the
// in-process runner; the fabric builds one per worker process).
[[nodiscard]] std::unique_ptr<ReportCache> makeMemo(const BatchOptions& opts);

}  // namespace wfd::sim
