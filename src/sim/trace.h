// Run traces (paper Sect. 3.4).
//
// A trace records the externally visible inputs/outputs of a run: task
// decisions, published failure-detector-output emulations (the paper's
// distributed variable "D-output"), plus free-form diagnostic events. The
// correctness checkers in core/checkers.h consume traces, so algorithm
// code never needs to be instrumented for a specific property.
#pragma once

#include <string>
#include <vector>

#include "common/reg_val.h"
#include "common/types.h"

namespace wfd::sim {

enum class EventKind {
  kPropose,   // process accepted its input value
  kDecide,    // process produced a decision output
  kPublish,   // process updated its emulated-FD output variable
  kNote,      // diagnostic (gladiator/citizen status, round changes, ...)
};

struct Event {
  Time time = 0;
  Pid pid = -1;
  EventKind kind = EventKind::kNote;
  std::string label;
  RegVal value;
};

class Trace {
 public:
  void record(Time t, Pid p, EventKind k, std::string label, RegVal v) {
    events_.push_back(Event{t, p, k, std::move(label), std::move(v)});
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // All events of one kind, in time order (trace order == time order).
  [[nodiscard]] std::vector<Event> ofKind(EventKind k) const;

  // Last kPublish value per process at or before time t (⊥ if none).
  [[nodiscard]] std::vector<RegVal> publishedAt(Time t, int n_plus_1) const;

  [[nodiscard]] std::string toString() const;

 private:
  std::vector<Event> events_;
};

}  // namespace wfd::sim
