// Run traces (paper Sect. 3.4).
//
// A trace records the externally visible inputs/outputs of a run: task
// decisions, published failure-detector-output emulations (the paper's
// distributed variable "D-output"), plus free-form diagnostic events. The
// correctness checkers in core/checkers.h consume traces, so algorithm
// code never needs to be instrumented for a specific property.
//
// The trace also carries a stable 64-bit hash of the run (hash64): an
// FNV-1a fold over every executed atomic operation (fed by World::execute
// via mixOp) and every recorded event. Two runs of the same configuration
// must produce the same hash — the determinism contract of DESIGN.md §5.
// tools/determinism_check and tests/trace_hash_test.cc enforce it; any
// unseeded randomness, address-dependent container iteration, or
// uninitialized read that leaks into scheduling or shared-memory traffic
// shows up as a hash divergence at the source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/reg_val.h"
#include "common/types.h"

namespace wfd::sim {

enum class EventKind {
  kPropose,   // process accepted its input value
  kDecide,    // process produced a decision output
  kPublish,   // process updated its emulated-FD output variable
  kNote,      // diagnostic (gladiator/citizen status, round changes, ...)
};

struct Event {
  Time time = 0;
  Pid pid = -1;
  EventKind kind = EventKind::kNote;
  std::string label;
  RegVal value;
};

class Trace {
 public:
  void record(Time t, Pid p, EventKind k, std::string label, RegVal v) {
    if (muted_) return;
    events_.push_back(Event{t, p, k, std::move(label), std::move(v)});
  }

  // Checkpoint-restore support (sim/explore.h). While a restored process
  // coroutine is fast-forwarded by replaying its recorded results, its
  // free actions (propose/decide/note/publish) re-fire with meaningless
  // timestamps; the runner mutes recording for the duration. Nothing else
  // may mute a trace — a muted live run would break the determinism
  // contract.
  void setMuted(bool m) { muted_ = m; }

  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class Trace;
    std::vector<Event> events;
    std::uint64_t op_digest = 0;
    std::uint64_t ops_mixed = 0;
  };
  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.events = events_;
    s.op_digest = op_digest_;
    s.ops_mixed = ops_mixed_;
    return s;
  }
  void restore(const Snapshot& s) {
    events_ = s.events;
    op_digest_ = s.op_digest;
    ops_mixed_ = s.ops_mixed;
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // Fold one executed atomic operation into the running op digest.
  // Called by World::execute for every op; op_sig is a stable signature
  // of the operation's kind, target, and arguments.
  void mixOp(Time t, Pid p, std::uint64_t op_sig) {
    op_digest_ = mix(op_digest_, static_cast<std::uint64_t>(t));
    op_digest_ = mix(op_digest_, static_cast<std::uint64_t>(p) + 1);
    op_digest_ = mix(op_digest_, op_sig);
    ++ops_mixed_;
  }

  // Fold the RESULT of the op just mixed (read value, scan view, FD
  // answer, consensus winner). Two runs with identical op streams but
  // diverging responses — a nondeterministic object implementation —
  // therefore still diverge in hash64().
  void mixResult(std::uint64_t result_sig) {
    op_digest_ = mix(op_digest_, result_sig);
  }
  [[nodiscard]] std::uint64_t opDigest() const { return op_digest_; }
  [[nodiscard]] std::uint64_t opsMixed() const { return ops_mixed_; }

  // Stable 64-bit hash of the whole run: the op digest plus every
  // recorded event (time, pid, kind, label, value). Identical
  // configurations must yield identical hashes; see the file comment.
  [[nodiscard]] std::uint64_t hash64() const;

  // All events of one kind, in time order (trace order == time order).
  [[nodiscard]] std::vector<Event> ofKind(EventKind k) const;

  // Last kPublish value per process at or before time t (⊥ if none).
  [[nodiscard]] std::vector<RegVal> publishedAt(Time t, int n_plus_1) const;

  [[nodiscard]] std::string toString() const;

 private:
  // One round of splitmix64-style mixing: cheap, stable across platforms.
  static std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return h;
  }
  std::vector<Event> events_;
  std::uint64_t op_digest_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t ops_mixed_ = 0;
  bool muted_ = false;
};

}  // namespace wfd::sim
