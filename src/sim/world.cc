#include "sim/world.h"

#include <cassert>

namespace wfd::sim {

namespace {

// Cheap stable signature of one executed operation, folded into the
// trace's op digest (see Trace::mixOp). Covers the op kind, target
// object, slot, and argument value — enough that any divergence in the
// executed op stream (a different schedule, a nondeterministic argument)
// changes the run's trace hash.
std::uint64_t opSignature(const Op& op) {
  std::uint64_t h = 0x100000001B3ULL * (op.index() + 1);
  if (const auto* w = std::get_if<OpWrite>(&op)) {
    h ^= static_cast<std::uint64_t>(w->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= w->val.hash64();
  } else if (const auto* r = std::get_if<OpRead>(&op)) {
    h ^= static_cast<std::uint64_t>(r->obj) * 0x9E3779B97F4A7C15ULL;
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    h ^= static_cast<std::uint64_t>(u->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(u->slot) << 32;
    h ^= u->val.hash64();
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    h ^= static_cast<std::uint64_t>(s->obj) * 0x9E3779B97F4A7C15ULL;
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    h ^= static_cast<std::uint64_t>(c->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= c->val.hash64();
  }
  return h;
}

}  // namespace

OpResult World::execute(Pid p, const Op& op) {
  // Audit before dispatch: kThrow mode must report kind/port violations
  // before the object table's own asserts would halt the process.
  if (audit_) audit_->onExecuteBegin(p, op);
  trace_.mixOp(now_, p, opSignature(op));
  OpResult res;
  if (const auto* r = std::get_if<OpRead>(&op)) {
    res.scalar = objects_.read(r->obj);
  } else if (const auto* w = std::get_if<OpWrite>(&op)) {
    objects_.write(w->obj, w->val);
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    objects_.update(u->obj, u->slot, u->val);
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    res.snapshot = objects_.scan(s->obj);
  } else if (std::holds_alternative<OpFdQuery>(op)) {
    assert(fd_ != nullptr && "algorithm queried FD but none installed");
    res.scalar = RegVal(fd_->query(p, now_));
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    res.scalar = objects_.propose(c->obj, p, c->val);
  } else {
    assert(std::holds_alternative<OpNoop>(op));
  }
  if (audit_) audit_->onExecuteEnd(p);
  return res;
}

void World::enableAudit(AuditMode mode) {
  audit_ = std::make_unique<StepAuditor>(this, mode);
  objects_.setObserver(audit_.get());
}

void World::setPublished(Pid p, RegVal v) {
  published_.at(static_cast<std::size_t>(p)) = v;
  trace_.record(now_, p, EventKind::kPublish, "", std::move(v));
}

}  // namespace wfd::sim
