#include "sim/world.h"

#include <cassert>

namespace wfd::sim {

namespace {

// Cheap stable signature of one executed operation, folded into the
// trace's op digest (see Trace::mixOp). Covers the op kind, target
// object, slot, and argument value — enough that any divergence in the
// executed op stream (a different schedule, a nondeterministic argument)
// changes the run's trace hash.
std::uint64_t opSignature(const Op& op) {
  std::uint64_t h = 0x100000001B3ULL * (op.index() + 1);
  if (const auto* w = std::get_if<OpWrite>(&op)) {
    h ^= static_cast<std::uint64_t>(w->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= w->val.hash64();
  } else if (const auto* r = std::get_if<OpRead>(&op)) {
    h ^= static_cast<std::uint64_t>(r->obj) * 0x9E3779B97F4A7C15ULL;
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    h ^= static_cast<std::uint64_t>(u->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(u->slot) << 32;
    h ^= u->val.hash64();
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    h ^= static_cast<std::uint64_t>(s->obj) * 0x9E3779B97F4A7C15ULL;
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    h ^= static_cast<std::uint64_t>(c->obj) * 0x9E3779B97F4A7C15ULL;
    h ^= c->val.hash64();
  }
  return h;
}

// Stable signature of an operation's RESULT, folded into the op digest
// alongside the op signature. Covers read values, scan views, consensus
// winners and FD answers, so a nondeterministic object implementation —
// or an injected-delay bug — is caught even when the executed op stream
// is identical (ROADMAP open item; see tools/determinism_check).
std::uint64_t resultSignature(const OpResult& res) {
  std::uint64_t h = 0x27D4EB2F165667C5ULL;
  h ^= res.scalar.hash64();
  for (const RegVal& v : res.snapshot) {
    h = (h ^ v.hash64()) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

OpResult World::execute(Pid p, const Op& op) {
  // Audit before dispatch: kThrow mode must report kind/port violations
  // before the object table's own asserts would halt the process.
  if (audit_) audit_->onExecuteBegin(p, op);
  trace_.mixOp(now_, p, opSignature(op));
  OpResult res;
  if (const auto* r = std::get_if<OpRead>(&op)) {
    res.scalar = objects_.read(r->obj);
  } else if (const auto* w = std::get_if<OpWrite>(&op)) {
    objects_.write(w->obj, w->val);
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    objects_.update(u->obj, u->slot, u->val);
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    res.snapshot = objects_.scan(s->obj);
  } else if (std::holds_alternative<OpFdQuery>(op)) {
    if (fd_ == nullptr) {
      throw SimAbort("p" + std::to_string(p + 1) + " queried its failure "
                     "detector at t=" + std::to_string(now_) +
                     " but the run has none installed");
    }
    const ProcSet answer = fd_->query(p, now_);
    // Validate the answer online BEFORE it reaches the algorithm: in
    // kThrow mode an axiom-violating output never enters the run.
    if (audit_) audit_->onFdAnswer(p, answer);
    res.scalar = RegVal(answer);
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    res.scalar = objects_.propose(c->obj, p, c->val);
  } else {
    assert(std::holds_alternative<OpNoop>(op));
  }
  trace_.mixResult(resultSignature(res));
  if (audit_) audit_->onExecuteEnd(p);
  return res;
}

void World::injectCrash(Pid p) {
  fp_.injectCrash(p, now_);
  ++fp_version_;  // invalidate cached scheduler liveness
  // Injection is part of the run's (chaos) configuration: record it so
  // replays of the same seeds hash identically and diagnosable traces
  // show where the adversary struck.
  trace_.record(now_, p, EventKind::kNote, "chaos.crash", RegVal());
}

void World::enableAudit(AuditMode mode) {
  audit_ = std::make_unique<StepAuditor>(this, mode);
  objects_.setObserver(audit_.get());
}

void World::setPublished(Pid p, RegVal v) {
  published_.at(static_cast<std::size_t>(p)) = v;
  trace_.record(now_, p, EventKind::kPublish, "", std::move(v));
}

}  // namespace wfd::sim
