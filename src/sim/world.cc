#include "sim/world.h"

#include <cassert>

namespace wfd::sim {

OpResult World::execute(Pid p, const Op& op) {
  OpResult res;
  if (const auto* r = std::get_if<OpRead>(&op)) {
    res.scalar = objects_.read(r->obj);
  } else if (const auto* w = std::get_if<OpWrite>(&op)) {
    objects_.write(w->obj, w->val);
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    objects_.update(u->obj, u->slot, u->val);
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    res.snapshot = objects_.scan(s->obj);
  } else if (std::holds_alternative<OpFdQuery>(op)) {
    assert(fd_ != nullptr && "algorithm queried FD but none installed");
    res.scalar = RegVal(fd_->query(p, now_));
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    res.scalar = objects_.propose(c->obj, p, c->val);
  } else {
    assert(std::holds_alternative<OpNoop>(op));
  }
  return res;
}

void World::setPublished(Pid p, RegVal v) {
  published_.at(static_cast<std::size_t>(p)) = v;
  trace_.record(now_, p, EventKind::kPublish, "", std::move(v));
}

}  // namespace wfd::sim
