#include "sim/world.h"

#include <cassert>

namespace wfd::sim {

OpResult World::execute(Pid p, const Op& op) {
  // Audit before dispatch: kThrow mode must report kind/port violations
  // before the object table's own asserts would halt the process.
  if (audit_) audit_->onExecuteBegin(p, op);
  last_footprint_ = footprintOf(op);
  trace_.mixOp(now_, p, opSignature(op));
  OpResult res;
  if (const auto* r = std::get_if<OpRead>(&op)) {
    res.scalar = objects_.read(r->obj);
  } else if (const auto* w = std::get_if<OpWrite>(&op)) {
    objects_.write(w->obj, w->val);
  } else if (const auto* u = std::get_if<OpSnapUpdate>(&op)) {
    objects_.update(u->obj, u->slot, u->val);
  } else if (const auto* s = std::get_if<OpSnapScan>(&op)) {
    res.snapshot = objects_.scan(s->obj);
    if (scan_override_) {
      if (auto v = scan_override_(p, s->obj)) res.snapshot = std::move(*v);
      // Judge the served view (replaced or not) online, before the
      // algorithm sees it — mirrors onFdAnswer for FD outputs.
      if (audit_) audit_->onScanResult(p, s->obj, res.snapshot);
    }
  } else if (std::holds_alternative<OpFdQuery>(op)) {
    if (fd_ == nullptr) {
      throw SimAbort("p" + std::to_string(p + 1) + " queried its failure "
                     "detector at t=" + std::to_string(now_) +
                     " but the run has none installed");
    }
    const ProcSet answer = fd_->query(p, now_);
    // Validate the answer online BEFORE it reaches the algorithm: in
    // kThrow mode an axiom-violating output never enters the run.
    if (audit_) audit_->onFdAnswer(p, answer);
    res.scalar = RegVal(answer);
  } else if (const auto* c = std::get_if<OpConsPropose>(&op)) {
    res.scalar = objects_.propose(c->obj, p, c->val);
  } else {
    assert(std::holds_alternative<OpNoop>(op));
  }
  trace_.mixResult(resultSignature(res));
  if (audit_) audit_->onExecuteEnd(p);
  return res;
}

void World::injectCrash(Pid p) {
  fp_.injectCrash(p, now_);
  ++fp_version_;  // invalidate cached scheduler liveness
  // Injection is part of the run's (chaos) configuration: record it so
  // replays of the same seeds hash identically and diagnosable traces
  // show where the adversary struck.
  trace_.record(now_, p, EventKind::kNote, "chaos.crash", RegVal());
}

void World::enableAudit(AuditMode mode) {
  audit_ = std::make_unique<StepAuditor>(this, mode);
  objects_.setObserver(audit_.get());
}

World::Snapshot World::snapshot() const {
  Snapshot s;
  s.now = now_;
  s.fp_version = fp_version_;
  s.fp = fp_;
  s.published = published_;
  s.objects = objects_.snapshot();
  s.trace = trace_.snapshot();
  return s;
}

void World::restore(const Snapshot& s) {
  now_ = s.now;
  fp_version_ = s.fp_version;
  fp_ = *s.fp;
  published_ = s.published;
  objects_.restore(s.objects);
  trace_.restore(s.trace);
  // An attached auditor accumulates per-run state (last FD answers,
  // step/execute pairing) that is meaningless after time moves backwards;
  // re-attach a fresh one of the same mode. Audits never alter behavior,
  // so restored and never-checkpointed runs stay trace-identical.
  if (audit_) enableAudit(audit_->mode());
}

void World::setPublished(Pid p, RegVal v) {
  published_.at(static_cast<std::size_t>(p)) = v;
  trace_.record(now_, p, EventKind::kPublish, "", std::move(v));
}

}  // namespace wfd::sim
