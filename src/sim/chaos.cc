#include "sim/chaos.h"

#include <algorithm>
#include <string>
#include <variant>

#include "common/rng.h"

namespace wfd::sim {

bool glitchIsLegal(GlitchKind k) {
  switch (k) {
    case GlitchKind::kNone:
    case GlitchKind::kScrambleNoise:
    case GlitchKind::kDelayStabilization:
      return true;
    case GlitchKind::kEmptyAnswer:
    case GlitchKind::kUndersizedAnswer:
    case GlitchKind::kPostStabFlap:
    case GlitchKind::kStabToCorrect:
    case GlitchKind::kStabExcludeCorrect:
      return false;
  }
  return false;
}

const char* glitchName(GlitchKind k) {
  switch (k) {
    case GlitchKind::kNone: return "none";
    case GlitchKind::kScrambleNoise: return "scramble-noise";
    case GlitchKind::kDelayStabilization: return "delay-stabilization";
    case GlitchKind::kEmptyAnswer: return "empty-answer";
    case GlitchKind::kUndersizedAnswer: return "undersized-answer";
    case GlitchKind::kPostStabFlap: return "post-stab-flap";
    case GlitchKind::kStabToCorrect: return "stab-to-correct";
    case GlitchKind::kStabExcludeCorrect: return "stab-exclude-correct";
  }
  return "?";
}

namespace {

using fd::AxiomSpec;

// Smallest answer size the inner detector's axiom family allows.
int minLegalSize(const AxiomSpec& spec, int n_plus_1) {
  switch (spec.family) {
    case AxiomSpec::Family::kUpsilonF:
      return std::max(1, n_plus_1 - spec.param);
    case AxiomSpec::Family::kOmegaK:
      return std::max(1, spec.param);
    case AxiomSpec::Family::kEventuallyPerfect:
      return 0;  // any suspicion set — even empty — is in range pre-stab
    case AxiomSpec::Family::kNone:
      return 1;
  }
  return 1;
}

// Fresh in-range noise for (p, t): a stateless function of the seed, as
// every history must be. Upsilon^f: >= n+1-f members (a cyclic base block
// plus random extras); Omega^k: exactly k members.
ProcSet legalNoise(const AxiomSpec& spec, int n_plus_1, std::uint64_t seed,
                   Pid p, Time t) {
  if (spec.family == AxiomSpec::Family::kEventuallyPerfect) {
    // <>P's pre-stabilization output is unconstrained: any subset of Pi.
    const std::uint64_t bits =
        hashedUniform(seed, static_cast<std::uint64_t>(p) + 1,
                      2 * static_cast<std::uint64_t>(t), ~std::uint64_t{0});
    ProcSet s;
    for (Pid q = 0; q < n_plus_1; ++q) {
      if (((bits >> q) & 1) != 0) s.insert(q);
    }
    return s;
  }
  const int min_size = minLegalSize(spec, n_plus_1);
  const auto base = static_cast<int>(
      hashedUniform(seed, static_cast<std::uint64_t>(p) + 1,
                    2 * static_cast<std::uint64_t>(t),
                    static_cast<std::uint64_t>(n_plus_1)));
  ProcSet s;
  for (int i = 0; i < min_size; ++i) s.insert((base + i) % n_plus_1);
  if (spec.family == AxiomSpec::Family::kUpsilonF) {
    const std::uint64_t extra =
        hashedUniform(seed, static_cast<std::uint64_t>(p) + 1,
                      2 * static_cast<std::uint64_t>(t) + 1, ~std::uint64_t{0});
    for (Pid q = 0; q < n_plus_1; ++q) {
      if (((extra >> q) & 1) != 0) s.insert(q);
    }
  }
  return s;
}

// The glitch wrapper. Forwards the inner detector's AxiomSpec so the
// online checker judges the perturbed history against the inner claim;
// kDelayStabilization is the one glitch that changes stabilizationTime()
// (honestly — that is what keeps it legal).
class ChaosFd final : public fd::FailureDetector {
 public:
  ChaosFd(fd::FdPtr inner, FdGlitch g, FailurePattern fp, int n_plus_1,
          std::uint64_t engine_seed)
      : inner_(std::move(inner)),
        g_(g),
        fp_(std::move(fp)),
        n_(n_plus_1),
        noise_seed_(g.seed ^ (engine_seed * 0x9E3779B97F4A7C15ULL)) {}

  ProcSet query(Pid p, Time t) const override {
    const ProcSet inner = inner_->query(p, t);
    const AxiomSpec spec = inner_->axioms();
    const Time tau = inner_->stabilizationTime();
    switch (g_.kind) {
      case GlitchKind::kNone:
        return inner;
      case GlitchKind::kScrambleNoise:
        if (spec.family == AxiomSpec::Family::kNone || t >= tau) return inner;
        return legalNoise(spec, n_, noise_seed_, p, t);
      case GlitchKind::kDelayStabilization:
        if (spec.family == AxiomSpec::Family::kNone) return inner;
        if (t < tau + g_.delay) return legalNoise(spec, n_, noise_seed_, p, t);
        return inner;  // t >= tau + delay >= tau: the inner stable value
      case GlitchKind::kEmptyAnswer:
        return {};
      case GlitchKind::kUndersizedAnswer: {
        const int target = std::max(0, minLegalSize(spec, n_) - 1);
        ProcSet s = inner;
        while (s.size() > target) s.erase(s.min());
        return s;
      }
      case GlitchKind::kPostStabFlap: {
        if (t < tau || t % 2 == 0) return inner;
        ProcSet s;  // rotate the stable set on odd times: constancy breaks
        for (Pid m : inner.members()) s.insert((m + 1) % n_);
        return s;
      }
      case GlitchKind::kStabToCorrect:
        // Upsilon control: the one stable value Upsilon forbids.
        return t >= tau ? fp_.correct() : inner;
      case GlitchKind::kStabExcludeCorrect: {
        // Omega^k control: a stable k-set of faulty processes only.
        if (t < tau) return inner;
        const int want =
            spec.family == AxiomSpec::Family::kOmegaK
                ? std::max(1, spec.param)
                : std::max(1, inner.size());
        ProcSet s;
        for (Pid m : fp_.faulty().members()) {
          if (s.size() >= want) break;
          s.insert(m);
        }
        // Pad from Pi if the pattern lacks enough faulty processes (the
        // control is then weakened; configurations pre-seed crashes).
        for (Pid m = 0; m < n_ && s.size() < want; ++m) s.insert(m);
        return s;
      }
    }
    return inner;
  }

  [[nodiscard]] std::string name() const override {
    return std::string("Chaos[") + glitchName(g_.kind) + "](" +
           inner_->name() + ")";
  }

  [[nodiscard]] Time stabilizationTime() const override {
    const Time tau = inner_->stabilizationTime();
    if (g_.kind != GlitchKind::kDelayStabilization) return tau;
    return tau > kNeverCrashes - g_.delay ? kNeverCrashes : tau + g_.delay;
  }

  [[nodiscard]] AxiomSpec axioms() const override { return inner_->axioms(); }

 private:
  fd::FdPtr inner_;
  FdGlitch g_;
  FailurePattern fp_;
  int n_;
  std::uint64_t noise_seed_;
};

}  // namespace

fd::FdPtr ChaosEngine::wrapFd(fd::FdPtr inner, const FailurePattern& fp,
                              int n_plus_1) const {
  if (inner == nullptr || cfg_.glitch.kind == GlitchKind::kNone) return inner;
  return std::make_shared<ChaosFd>(std::move(inner), cfg_.glitch, fp, n_plus_1,
                                   cfg_.seed);
}

void ChaosEngine::plan(const World& world) {
  planned_ = true;
  const int n = world.nProcs();
  std::size_t idx = 0;
  for (const CrashInjection& c : cfg_.crashes) {
    ++idx;
    switch (c.strategy) {
      case CrashInjection::Strategy::kAtTime:
        timed_.push_back({c.at, c.victim, false});
        break;
      case CrashInjection::Strategy::kRandom: {
        Rng rng(cfg_.seed ^ c.seed ^ (idx * 0xA24BAED4963EE407ULL));
        for (int i = 0; i < c.count; ++i) {
          const Pid victim =
              static_cast<Pid>(rng.below(static_cast<std::uint64_t>(n)));
          const Time at = rng.range(0, std::max<Time>(c.horizon, 0));
          timed_.push_back({at, victim, false});
        }
        break;
      }
      case CrashInjection::Strategy::kFdLeader:
        leader_.push_back({c.at, false});
        break;
      case CrashInjection::Strategy::kOnDecide:
        on_decide_left_ += c.count;
        break;
    }
  }
}

bool ChaosEngine::tryCrash(World& world, Pid victim) {
  if (victim < 0 || victim >= world.nProcs()) return false;
  if (cfg_.max_faulty <= 0) return false;
  if (cfg_.protected_pids.contains(victim)) return false;
  const FailurePattern& fp = world.pattern();
  if (fp.crashTime(victim) <= world.now()) return false;  // already down
  if (fp.isCorrect(victim)) {
    // Turning a correct process faulty must respect the environment:
    // |faulty(F')| <= max_faulty and at least one correct process left.
    if (fp.faulty().size() + 1 > cfg_.max_faulty) return false;
    if (fp.correct().size() <= 1) return false;
  }
  // else: the victim was already scheduled to crash later; advancing its
  // crash to now leaves faulty(F') unchanged — always within budget.
  world.injectCrash(victim);
  ++crashes_injected_;
  return true;
}

void ChaosEngine::captureScans(World& world, const Scheduler& sched) {
  const StaleSnapshot& ss = *cfg_.stale_snapshot;
  for (Pid p = 0; p < world.nProcs(); ++p) {
    const ProcCtx& c = sched.ctx(p);
    if (c.done || c.crashed || !c.pending.has_value()) continue;
    const auto* s = std::get_if<OpSnapScan>(&*c.pending);
    if (s == nullptr) continue;
    const auto key = std::make_pair(p, s->obj);
    // One decision per scan REQUEST: the owner's step count is frozen
    // until the scan executes, so it identifies the request however many
    // beforeStep calls see it pending. The first call runs before any
    // other process steps after the request, so the captured view IS the
    // request-time memory.
    if (const auto it = scan_decided_.find(key);
        it != scan_decided_.end() && it->second == c.steps) {
      continue;
    }
    scan_decided_[key] = c.steps;
    if (hashedUniform(cfg_.seed ^ ss.seed ^ 0x5CA1E5CA1ED0ULL,
                      static_cast<std::uint64_t>(p) + 1,
                      static_cast<std::uint64_t>(c.steps) * 0x100001B3ULL +
                          static_cast<std::uint64_t>(s->obj),
                      1000) >= static_cast<std::uint64_t>(ss.permille)) {
      continue;
    }
    std::vector<RegVal> view = world.objectsConst().peekSlots(s->obj);
    std::vector<RegVal> serve = view;
    if (ss.illegal_past) {
      // Negative control: serve the view captured at this process's
      // previous overridden scan of the object — possibly older than
      // updates that completed before this scan began.
      if (const auto pit = scan_prev_.find(key); pit != scan_prev_.end()) {
        serve = pit->second;
      }
    }
    if (world.auditor() != nullptr) {
      world.auditor()->captureScanRequest(p, s->obj, view);
    }
    scan_prev_[key] = std::move(view);
    scan_pending_[key] = std::move(serve);
  }
}

std::optional<std::vector<RegVal>> ChaosEngine::overrideScan(Pid p,
                                                             ObjId obj) {
  const auto it = scan_pending_.find({p, obj});
  if (it == scan_pending_.end()) return std::nullopt;
  std::vector<RegVal> v = std::move(it->second);
  scan_pending_.erase(it);
  return v;
}

void ChaosEngine::beforeStep(World& world, const Scheduler& sched) {
  if (!planned_) plan(world);
  const Time now = world.now();
  if (wantsScanOverride()) captureScans(world, sched);

  for (TimedCrash& c : timed_) {
    if (!c.fired && c.at <= now) {
      c.fired = true;
      tryCrash(world, c.victim);
    }
  }

  for (LeaderCrash& c : leader_) {
    if (c.fired || c.at > now) continue;
    c.fired = true;
    if (world.fd() == nullptr) continue;
    // The adversary reads the current FD output as the smallest live
    // process sees it (zero simulated cost: the adversary sees
    // everything) and kills the smallest member — the pid an adopt-min
    // k-converge round is about to crown leader.
    const Pid observer = world.pattern().crashedBy(now).complement(
        world.nProcs()).min();
    if (observer < 0) continue;
    const ProcSet out = world.fd()->query(observer, now);
    for (Pid m : out.members()) {
      if (tryCrash(world, m)) break;
    }
  }

  if (on_decide_left_ > 0) {
    const auto& evs = world.trace().events();
    for (; decide_scan_ < evs.size(); ++decide_scan_) {
      const Event& e = evs[decide_scan_];
      if (e.kind == EventKind::kDecide && on_decide_left_ > 0 &&
          tryCrash(world, e.pid)) {
        --on_decide_left_;
      }
    }
  }
}

ProcSet ChaosEngine::filterRunnable(const ProcSet& runnable,
                                    const World& world,
                                    const Scheduler& sched) const {
  ProcSet out = runnable;
  const Time now = world.now();
  for (const StarvationWindow& w : cfg_.starvation) {
    if (now >= w.from && now < w.from + w.length) out = out.minus(w.victims);
  }
  if (cfg_.op_delay.has_value()) {
    const OpDelay& d = *cfg_.op_delay;
    const Time period = std::max<Time>(d.period, 1);
    if (now % period < d.hold) {
      const auto window = static_cast<std::uint64_t>(now / period);
      for (Pid p : out.members()) {
        const std::optional<Op>& pending = sched.ctx(p).pending;
        if (!pending.has_value()) continue;
        const bool shared_mem = !std::holds_alternative<OpNoop>(*pending) &&
                                !std::holds_alternative<OpFdQuery>(*pending);
        if (!shared_mem) continue;
        if (hashedUniform(d.seed ^ cfg_.seed,
                          static_cast<std::uint64_t>(p) + 1, window, 2) == 0) {
          out.erase(p);
        }
      }
    }
  }
  // Bias, not deadlock: if every runnable process is being starved the
  // filter yields (the model's schedules always pick SOME live process).
  return out.empty() ? runnable : out;
}

RunReport runChaosTask(const RunConfig& cfg, const ChaosConfig& chaos,
                       const WatchdogConfig& wd, const AlgoFn& algo,
                       const std::vector<Value>& proposals) {
  ChaosEngine engine(chaos);
  RunConfig wrapped = cfg;
  if (wrapped.fd != nullptr && chaos.glitch.kind != GlitchKind::kNone) {
    const FailurePattern fp = wrapped.fp.has_value()
                                  ? *wrapped.fp
                                  : FailurePattern::failureFree(wrapped.n_plus_1);
    wrapped.fd = engine.wrapFd(wrapped.fd, fp, wrapped.n_plus_1);
  }
  // Chaos runs are always audited: the online axiom checker is the
  // detection instrument. kThrow turns a violation into a verdict at the
  // offending step; an explicit cfg.audit (e.g. kCollect) is respected
  // and checked after the run instead.
  if (!wrapped.audit.has_value()) wrapped.audit = AuditMode::kThrow;
  Run run(wrapped, algo, proposals);
  std::unique_ptr<SchedulePolicy> policy;
  if (wrapped.policy == PolicyKind::kRoundRobin) {
    policy = std::make_unique<RoundRobinPolicy>();
  } else {
    policy = std::make_unique<RandomPolicy>();
  }
  return driveWatched(run, *policy, wd, &engine);
}

}  // namespace wfd::sim
