#include "sim/report_cache.h"

#include "sim/fabric/store.h"

namespace wfd::sim {

namespace {

using fd::digestString;
using fd::mixDigest;

std::uint64_t digestPatternOpt(std::uint64_t h,
                               const std::optional<FailurePattern>& fp) {
  if (!fp.has_value()) return mixDigest(h, 0x0F);
  return fd::digestPattern(mixDigest(h, 0xF0), *fp);
}

std::uint64_t digestChaos(std::uint64_t h, const ChaosConfig& c) {
  h = mixDigest(h, c.seed);
  h = mixDigest(h, static_cast<std::uint64_t>(c.max_faulty));
  h = mixDigest(h, c.protected_pids.bits());
  h = mixDigest(h, c.crashes.size());
  for (const CrashInjection& ci : c.crashes) {
    h = mixDigest(h, static_cast<std::uint64_t>(ci.strategy));
    h = mixDigest(h, static_cast<std::uint64_t>(ci.victim) + 1);
    h = mixDigest(h, static_cast<std::uint64_t>(ci.at));
    h = mixDigest(h, static_cast<std::uint64_t>(ci.horizon));
    h = mixDigest(h, static_cast<std::uint64_t>(ci.count));
    h = mixDigest(h, ci.seed);
  }
  h = mixDigest(h, c.starvation.size());
  for (const StarvationWindow& sw : c.starvation) {
    h = mixDigest(h, sw.victims.bits());
    h = mixDigest(h, static_cast<std::uint64_t>(sw.from));
    h = mixDigest(h, static_cast<std::uint64_t>(sw.length));
  }
  if (c.op_delay.has_value()) {
    h = mixDigest(h, static_cast<std::uint64_t>(c.op_delay->period));
    h = mixDigest(h, static_cast<std::uint64_t>(c.op_delay->hold));
    h = mixDigest(h, c.op_delay->seed);
  } else {
    h = mixDigest(h, 0x0D);
  }
  if (c.stale_snapshot.has_value()) {
    h = mixDigest(h, static_cast<std::uint64_t>(c.stale_snapshot->permille));
    h = mixDigest(h, c.stale_snapshot->seed);
    h = mixDigest(h, c.stale_snapshot->illegal_past ? 2u : 1u);
  } else {
    h = mixDigest(h, 0x5C);
  }
  h = mixDigest(h, static_cast<std::uint64_t>(c.glitch.kind));
  h = mixDigest(h, static_cast<std::uint64_t>(c.glitch.delay));
  h = mixDigest(h, c.glitch.seed);
  return h;
}

std::uint64_t digestWatchdog(std::uint64_t h, const WatchdogConfig& wd) {
  h = mixDigest(h, static_cast<std::uint64_t>(wd.step_budget));
  h = mixDigest(h, static_cast<std::uint64_t>(wd.livelock_window));
  h = mixDigest(h, static_cast<std::uint64_t>(wd.safety_k));
  return h;
}

}  // namespace

std::optional<std::uint64_t> cellKey(const BatchCell& cell) {
  if (cell.memo_family.empty()) return std::nullopt;
  // A caller-requested audit (explicit or via the WFD_AUDIT latch) means
  // the run must actually execute under the auditor.
  if (resolvedAuditMode(cell.cfg.audit).has_value()) return std::nullopt;
  // A service cell's execution is pinned entirely by its config digest —
  // none of the run-cell recipe fields (or their opaque callables) apply.
  if (cell.service.has_value()) {
    return mixDigest(digestString(0x5EC1, cell.memo_family),
                     cell.service->digest());
  }
  std::uint64_t fd_digest = 0x11;  // distinct constant for "no detector"
  if (cell.cfg.fd != nullptr) {
    fd_digest = cell.cfg.fd->keyDigest();
    if (fd_digest == fd::kOpaqueFdDigest) return std::nullopt;
  }
  std::uint64_t h = digestString(0x5EC0, cell.memo_family);
  h = mixDigest(h, static_cast<std::uint64_t>(cell.cfg.n_plus_1));
  h = digestPatternOpt(h, cell.cfg.fp);
  h = mixDigest(h, fd_digest);
  h = mixDigest(h, cell.cfg.seed);
  h = mixDigest(h, static_cast<std::uint64_t>(cell.cfg.max_steps));
  h = mixDigest(h, static_cast<std::uint64_t>(cell.cfg.flavor));
  h = mixDigest(h, static_cast<std::uint64_t>(cell.cfg.policy));
  h = mixDigest(h, cell.proposals.size());
  for (const Value v : cell.proposals) {
    h = mixDigest(h, static_cast<std::uint64_t>(v));
  }
  if (cell.chaos.has_value()) {
    h = digestChaos(mixDigest(h, 0xC1), *cell.chaos);
  } else {
    h = mixDigest(h, 0xC0);
  }
  if (cell.watchdog.has_value()) {
    h = digestWatchdog(mixDigest(h, 0xD1), *cell.watchdog);
  } else {
    h = mixDigest(h, 0xD0);
  }
  // Presence bits: the family is SUPPOSED to pin these callables, but a
  // family used with and without a post-hook is a caller bug this keeps
  // from silently serving wrong results.
  h = mixDigest(h, (cell.post ? 2u : 1u));
  h = mixDigest(h, (cell.policy_factory ? 2u : 1u));
  return h;
}

ReportCache::ReportCache(std::size_t capacity,
                         std::unique_ptr<ResultStore> store)
    : capacity_(capacity == 0 ? 1 : capacity), store_(std::move(store)) {}

std::optional<CellResult> ReportCache::lookup(std::uint64_t key,
                                              std::size_t index) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    if (store_ != nullptr) {
      // Second level: the persistent store. A disk hit is still a cache
      // hit (the caller skips the run); it also warms the LRU so repeat
      // lookups in this process stay in memory.
      if (std::optional<CellResult> stored = store_->load(key);
          stored.has_value()) {
        ++hits_;
        ++disk_hits_;
        insertLocked(key, *stored, /*persisted=*/true);
        stored->index = index;
        return stored;
      }
      ++disk_misses_;
    }
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  CellResult out = it->second.result;
  out.index = index;
  return out;
}

void ReportCache::insert(std::uint64_t key, const CellResult& result) {
  const std::lock_guard<std::mutex> lock(mu_);
  insertLocked(key, result, /*persisted=*/false);
}

void ReportCache::insertLocked(std::uint64_t key, const CellResult& result,
                               bool persisted) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent workers may both miss and both run the cell; the recipes
    // are deterministic so both results are identical — refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (map_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{result, lru_.begin(), persisted});
  if (!persisted && store_ != nullptr) {
    // Fresh result: make it durable. The store dedupes keys internally,
    // so a re-inserted eviction victim costs an index probe, not bytes.
    store_->save(key, result);
  }
}

std::size_t ReportCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t ReportCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t ReportCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t ReportCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t ReportCache::diskHits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return disk_hits_;
}

std::size_t ReportCache::diskMisses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return disk_misses_;
}

std::unique_ptr<ReportCache> makeMemo(const BatchOptions& opts) {
  std::unique_ptr<ResultStore> store;
  if (!opts.cache_dir.empty()) {
    fabric::StoreOptions so;
    so.dir = opts.cache_dir;
    so.version = opts.cache_version;
    store = std::make_unique<fabric::PersistentStore>(so);
  }
  const std::size_t cap = opts.memo_capacity == 0
                              ? ReportCache::kDefaultCapacity
                              : opts.memo_capacity;
  return std::make_unique<ReportCache>(cap, std::move(store));
}

}  // namespace wfd::sim
