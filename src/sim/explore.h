// Schedule-space exploration: exhaustive model checking over interleavings.
//
// The paper's theorems quantify over ALL schedules; seeded runs sample that
// space. explore() walks it systematically for bounded protocols, turning
// "no violation in N seeded runs" into "verified over every schedule". Two
// modes share one engine:
//
//   kDpor  Dynamic partial-order reduction (Flanagan–Godefroid) with sleep
//          sets: explores at least one representative per Mazurkiewicz
//          trace-equivalence class of the commutation relation derived
//          from op footprints (sim/ops.h). Sound for properties that are
//          invariant within a class — which per-process outcome properties
//          are by construction, and cross-process output orderings are
//          because decide/publish-emitting steps are treated as visible
//          (dependent with everything). FD queries are dependent with
//          everything UNLESS the refined stability-epoch relation
//          certifies them constant: a query whose causal past already has
//          >= stabilizationTime() steps executes at a time >= tau in
//          EVERY linearization of its trace class, so its answer is the
//          post-stabilization constant and it commutes like a read of an
//          immutable value (docs/EXPLORE.md gives the full argument).
//          Requires a failure-free pattern: a time-triggered crash makes
//          enabledness depend on a step's clock position, which breaks
//          commutation.
//
//   kDag   Complete stateful search: explores every enabled transition
//          from every reachable state, memoizing states by a structural
//          64-bit digest (object table contents + per-process local-state
//          digests + published values + clock, maintained INCREMENTALLY
//          from each step's op footprint) so that schedules converging to
//          the same state share the suffix subtree. Sound and complete
//          for the bounded protocol (the state graph is acyclic — the
//          clock strictly increases), including under crashes; used as
//          the cross-check oracle for kDpor and for failure patterns
//          kDpor refuses.
//
// Both modes share prefixes via Run checkpoint/restore instead of
// replaying from step 0: a branch point stores a RunCheckpoint (COW-shared
// RegVal payloads), and backtracking restores it in O(prefix) local replay
// with zero shared-memory traffic.
//
// ---- Parallel frontier (cfg.jobs >= 1) ------------------------------------
//
// The frontier engine splits the search into a bounded SERIAL prefix
// expansion plus independent subtree jobs distributed over a per-worker
// work-stealing deque pool (sim/explore_pool.h). Phase 1 runs the DFS
// with EAGER candidate seeding above the frontier depth F (every enabled,
// non-slept transition is scheduled up front, so race-driven backtrack
// additions targeting prefix nodes are no-ops and the job set is closed);
// reaching depth F captures a job — the prefix pid sequence, the frontier
// node's sleep set and the prefix's step/clock stack — instead of
// recursing. Phase 2 executes every job on a fresh per-worker
// Run/World/Scheduler stack (prefix replayed by stepping, then the normal
// lazy engine below F; kDag uses a per-job private memo so counters stay
// scheduling-independent). The merge is deterministic: counters and
// outcome sets fold in job-index order, and under stop_on_violation the
// LOWEST job index with a violation wins (job creation order is the lex
// order of prefixes and each job's DFS finds its lex-least violation
// first), with higher-index jobs excluded from every counter — so
// jobs=N is bit-identical to jobs=1 on verdict, outcome set,
// counterexample and all search counters; the worker count only decides
// where a job runs. jobs=0 (default) is the classic single-phase serial
// engine; it explores lazily above F too, so its schedule COUNTS differ
// from the frontier's (eager prefixes explore a superset of class
// representatives) while verdict and outcome set must agree.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace wfd::sim {

class ResultStore;  // sim/report_cache.h; backing: fabric::PersistentStore

enum class ExploreMode { kDpor, kDag };

enum class ExploreVerdict {
  kVerified,   // every explored schedule satisfied the property
  kViolation,  // some schedule violated it (see counterexample)
};

// The schedule-invariant observable of one terminal state: every recorded
// input/output event, grouped by process in program order. Deliberately
// order-INSENSITIVE across processes — two trace-equivalent schedules
// yield the same outcome, so outcome sets are exactly what the explorer
// can certify exhaustively.
struct ExploreOutcome {
  std::map<Pid, Value> decisions;  // last kDecide per process
  std::vector<Event> events;       // all events, grouped by pid
  std::uint64_t sig = 0;           // structural signature of the above
};

struct ExploreConfig {
  // Base run configuration: n_plus_1, fp, fd, flavor, max_steps, audit.
  // `seed` and `policy` are ignored — the explorer IS the schedule.
  RunConfig run;
  ExploreMode mode = ExploreMode::kDpor;
  // kDag: memoize visited states and share suffix subtrees. kDpor ignores
  // it (combining state-skipping with dynamic backtracking is unsound).
  bool memoize = true;
  // Safety valves: stop (reporting complete=false) past these budgets.
  // In frontier mode max_schedules bounds phase 1 and EACH job separately
  // (a global budget would make the cut point depend on worker timing).
  std::uint64_t max_schedules = 1'000'000;
  int max_depth = 4096;
  bool stop_on_violation = true;
  // Safety property, evaluated at every terminal state. Return "" when
  // satisfied, a violation description otherwise.
  std::function<std::string(const ExploreOutcome&)> property;

  // ---- Parallel frontier ----
  // 0 = classic serial engine. >= 1 = frontier engine with that many
  // workers; the job set and every merged counter are independent of the
  // worker count (see the determinism contract above).
  int jobs = 0;
  // Prefix depth F at which subtrees become jobs. 0 = auto: start at
  // ceil(log_n of the job target) and deepen (deterministically, never
  // consulting `jobs`) until enough jobs exist or the tree is exhausted.
  int frontier_depth = 0;
  // Work stealing between worker deques (frontier mode); false = static
  // contiguous blocks. Pure scheduling — never changes any result.
  bool steal = true;

  // ---- Persistent exploration certificates ----
  // When set (and the config is certifiable), explore() consults the
  // store before searching and saves a summary after: a full-config
  // record short-circuits the whole call (ExploreResult::from_cache),
  // and frontier runs additionally record one certificate per job so an
  // interrupted campaign resumes instead of restarting. Certifiable =
  // cert_family non-empty, the detector (if any) overrides keyDigest(),
  // and the run will not execute audited — the ReportCache rules.
  // Invalidation is the store's: a version/schema change addresses a
  // different segment file, so stale certificates cold-miss by
  // construction (sim/fabric/store.h).
  ResultStore* certificates = nullptr;
  // Names the opaque callables (algo, property) the certificate key
  // cannot digest — the sim/batch.h memo_family contract: two configs may
  // share a family only if they build those callables identically from
  // the digested fields.
  std::string cert_family;
};

struct ExploreResult {
  ExploreVerdict verdict = ExploreVerdict::kVerified;
  std::string violation;            // first violation found
  std::vector<Pid> counterexample;  // schedule reaching it (pid per step)

  std::uint64_t schedules_explored = 0;  // terminal states reached
  std::uint64_t sleep_set_skips = 0;     // kDpor transitions pruned asleep
  std::uint64_t states_memoized = 0;     // kDag: distinct interior states
  std::uint64_t memo_hits = 0;           // kDag: subtrees answered by memo
  std::uint64_t steps_executed = 0;      // real World::execute steps
  std::uint64_t steps_replayed = 0;      // local-replay steps in restores
  std::uint64_t restores = 0;            // checkpoint restores performed
  int max_depth_seen = 0;
  bool complete = true;  // false if a budget cut the search short

  // ---- Frontier observability ----
  // Deterministic across worker counts: frontier_jobs, frontier_depth.
  // Scheduling-dependent (excluded from the jobs=N ≡ jobs=1 contract):
  // jobs_used, steal_ops.
  std::uint64_t frontier_jobs = 0;  // subtree jobs created (0 = classic)
  int frontier_depth = 0;           // resolved prefix depth F
  int jobs_used = 0;                // workers actually spawned
  std::uint64_t steal_ops = 0;      // successful deque steals
  // Per-worker simulation-step load (prefix replays included) under
  // deterministic list scheduling of the merged jobs (index order,
  // least-loaded worker first) — NOT the racy actual placement, so it is
  // bit-stable across runs for a fixed cfg.jobs. Max over workers is the
  // step MAKESPAN — the wall cost on >= jobs free cores. A function of
  // cfg.jobs by definition, hence outside the jobs=N ≡ jobs=1 contract.
  std::vector<long long> worker_steps;

  // ---- Certificate observability ----
  bool from_cache = false;          // whole call answered by a certificate
  std::uint64_t cert_job_hits = 0;  // jobs answered by per-job certificates
  std::uint64_t cert_saves = 0;     // records appended this call

  // Distinct terminal outcomes, keyed by signature. The n=2 brute-force
  // oracle in tests/exhaustive_test.cc asserts set-equality against this.
  // A certificate-served result reconstructs this map with the stored
  // SIGNATURES only (empty decisions/events): set membership and size
  // compare exactly, event bodies do not survive the store.
  std::map<std::uint64_t, ExploreOutcome> outcomes;

  [[nodiscard]] bool verified() const {
    return complete && verdict == ExploreVerdict::kVerified;
  }
  // Sum + max of worker_steps: the >= 3x frontier speedup gate in
  // bench_explore compares total work against the critical path.
  [[nodiscard]] long long stepMakespan() const;
  [[nodiscard]] double stepUtilization() const;
  // The outcome-signature set (works for fresh and cached results alike).
  [[nodiscard]] std::set<std::uint64_t> outcomeSigs() const;
  // "p2 p1 p1 p3 ..." — 1-based, the paper's process naming.
  [[nodiscard]] std::string counterexampleString() const;
};

// Systematically explore every schedule of `algo` under cfg. Throws
// SimAbort on configurations the requested mode cannot handle soundly.
ExploreResult explore(const ExploreConfig& cfg, const AlgoFn& algo,
                      const std::vector<Value>& proposals);

}  // namespace wfd::sim
