// Schedule-space exploration: exhaustive model checking over interleavings.
//
// The paper's theorems quantify over ALL schedules; seeded runs sample that
// space. explore() walks it systematically for bounded protocols, turning
// "no violation in N seeded runs" into "verified over every schedule". Two
// modes share one engine:
//
//   kDpor  Dynamic partial-order reduction (Flanagan–Godefroid) with sleep
//          sets: explores at least one representative per Mazurkiewicz
//          trace-equivalence class of the commutation relation derived
//          from op footprints (sim/ops.h). Sound for properties that are
//          invariant within a class — which per-process outcome properties
//          are by construction, and cross-process output orderings are
//          because decide/publish-emitting steps are treated as visible
//          (dependent with everything), like FD queries. Requires a
//          failure-free pattern: a time-triggered crash makes enabledness
//          depend on a step's clock position, which breaks commutation.
//
//   kDag   Complete stateful search: explores every enabled transition
//          from every reachable state, memoizing states by a structural
//          64-bit digest (object table contents + per-process local-state
//          digests + published values + clock) so that schedules
//          converging to the same state share the suffix subtree. Sound
//          and complete for the bounded protocol (the state graph is
//          acyclic — the clock strictly increases), including under
//          crashes; used as the cross-check oracle for kDpor and for
//          failure patterns kDpor refuses.
//
// Both modes share prefixes via Run checkpoint/restore instead of
// replaying from step 0: a branch point stores a RunCheckpoint (COW-shared
// RegVal payloads), and backtracking restores it in O(prefix) local replay
// with zero shared-memory traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace wfd::sim {

enum class ExploreMode { kDpor, kDag };

enum class ExploreVerdict {
  kVerified,   // every explored schedule satisfied the property
  kViolation,  // some schedule violated it (see counterexample)
};

// The schedule-invariant observable of one terminal state: every recorded
// input/output event, grouped by process in program order. Deliberately
// order-INSENSITIVE across processes — two trace-equivalent schedules
// yield the same outcome, so outcome sets are exactly what the explorer
// can certify exhaustively.
struct ExploreOutcome {
  std::map<Pid, Value> decisions;  // last kDecide per process
  std::vector<Event> events;       // all events, grouped by pid
  std::uint64_t sig = 0;           // structural signature of the above
};

struct ExploreConfig {
  // Base run configuration: n_plus_1, fp, fd, flavor, max_steps, audit.
  // `seed` and `policy` are ignored — the explorer IS the schedule.
  RunConfig run;
  ExploreMode mode = ExploreMode::kDpor;
  // kDag: memoize visited states and share suffix subtrees. kDpor ignores
  // it (combining state-skipping with dynamic backtracking is unsound).
  bool memoize = true;
  // Safety valves: stop (reporting complete=false) past these budgets.
  std::uint64_t max_schedules = 1'000'000;
  int max_depth = 4096;
  bool stop_on_violation = true;
  // Safety property, evaluated at every terminal state. Return "" when
  // satisfied, a violation description otherwise.
  std::function<std::string(const ExploreOutcome&)> property;
};

struct ExploreResult {
  ExploreVerdict verdict = ExploreVerdict::kVerified;
  std::string violation;            // first violation found
  std::vector<Pid> counterexample;  // schedule reaching it (pid per step)

  std::uint64_t schedules_explored = 0;  // terminal states reached
  std::uint64_t schedules_pruned = 0;    // sleep-set skips + memo hits
  std::uint64_t states_memoized = 0;     // kDag: distinct interior states
  std::uint64_t memo_hits = 0;           // kDag: subtrees answered by memo
  std::uint64_t steps_executed = 0;      // real World::execute steps
  std::uint64_t steps_replayed = 0;      // local-replay steps in restores
  std::uint64_t restores = 0;            // checkpoint restores performed
  int max_depth_seen = 0;
  bool complete = true;  // false if a budget cut the search short

  // Distinct terminal outcomes, keyed by signature. The n=2 brute-force
  // oracle in tests/exhaustive_test.cc asserts set-equality against this.
  std::map<std::uint64_t, ExploreOutcome> outcomes;

  [[nodiscard]] bool verified() const {
    return complete && verdict == ExploreVerdict::kVerified;
  }
  // "p2 p1 p1 p3 ..." — 1-based, the paper's process naming.
  [[nodiscard]] std::string counterexampleString() const;
};

// Systematically explore every schedule of `algo` under cfg. Throws
// SimAbort on configurations the requested mode cannot handle soundly.
ExploreResult explore(const ExploreConfig& cfg, const AlgoFn& algo,
                      const std::vector<Value>& proposals);

}  // namespace wfd::sim
