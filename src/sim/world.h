// World: the shared state of one simulated run.
//
// Owns the object table, the failure detector history, the failure
// pattern, the global step clock and the trace. The scheduler executes
// atomic operations against the world; algorithm coroutines reach it only
// through the per-process Env facade.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fd/failure_detector.h"
#include "sim/failure_pattern.h"
#include "sim/object_table.h"
#include "sim/ops.h"
#include "sim/step_audit.h"
#include "sim/trace.h"

namespace wfd::sim {

// A mis-configured or impossible simulator operation (an algorithm
// querying an FD when none is installed, a proposal vector of the wrong
// arity, ...). Thrown instead of assert/abort so that a perturbed run
// always terminates with a diagnosable error the chaos watchdog — or any
// caller — can catch and report (sim/watchdog.h).
class SimAbort : public std::runtime_error {
 public:
  explicit SimAbort(const std::string& what) : std::runtime_error(what) {}
};

// Which atomic-snapshot implementation Env::snapshot handles use.
enum class SnapshotFlavor {
  kNative,  // one atomic step per update/scan (snapshot as a base object)
  kAfek,    // Afek et al. wait-free construction from registers
};

class World {
 public:
  World(int n_plus_1, FailurePattern fp, fd::FdPtr fd,
        SnapshotFlavor flavor = SnapshotFlavor::kNative)
      : n_plus_1_(n_plus_1),
        fp_(std::move(fp)),
        fd_(std::move(fd)),
        flavor_(flavor) {}

  [[nodiscard]] int nProcs() const { return n_plus_1_; }
  [[nodiscard]] const FailurePattern& pattern() const { return fp_; }
  [[nodiscard]] const fd::FailureDetector* fd() const { return fd_.get(); }
  [[nodiscard]] SnapshotFlavor snapshotFlavor() const { return flavor_; }

  [[nodiscard]] Time now() const { return now_; }
  void advanceClock() { ++now_; }

  // Bumped by injectCrash. The scheduler caches liveness (runnable set,
  // correct-undone count) keyed on this counter, so a mid-run pattern
  // mutation invalidates the cache without the scheduler re-scanning the
  // pattern every step.
  [[nodiscard]] std::uint64_t patternVersion() const { return fp_version_; }

  // Chaos crash injection (sim/chaos.h): crash p at the current time.
  // The scheduler's runnable() consults the mutated pattern, so p takes
  // no further steps — exactly run condition (1). Outside the chaos
  // engine this is off-limits (tools/model_lint.py bans it): a run's
  // failure pattern is otherwise part of its immutable configuration.
  void injectCrash(Pid p);

  // Chaos stale-snapshot injection (sim/chaos.h): when installed, each
  // snapshot scan may have its result replaced by the override's view
  // (std::nullopt = serve the live memory). Every overridden-world scan
  // result is then reported to the auditor's onScanResult, which judges
  // it against the linearizability window. Normal runs never install one.
  using ScanOverride =
      std::function<std::optional<std::vector<RegVal>>(Pid, ObjId)>;
  void setScanOverride(ScanOverride f) { scan_override_ = std::move(f); }
  [[nodiscard]] bool hasScanOverride() const {
    return static_cast<bool>(scan_override_);
  }

  ObjectTable& objects() { return objects_; }
  [[nodiscard]] const ObjectTable& objectsConst() const { return objects_; }
  Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  // Execute one atomic step's operation on behalf of process p.
  OpResult execute(Pid p, const Op& op);

  // Footprint of the most recently executed operation (sim/explore.h).
  // Maintained unconditionally — one trivially-copyable store per step.
  [[nodiscard]] const OpFootprint& lastFootprint() const {
    return last_footprint_;
  }

  // ---- Checkpoint/restore (sim/explore.h prefix sharing) ----
  // A Snapshot captures every mutable field of the world: clock, failure
  // pattern (chaos may have mutated it), object table, trace, published
  // FD-output emulations. RegVal tuple payloads are immutable shared
  // arrays, so copying the table/trace shares them (copy-on-write by
  // construction). The FD itself is NOT captured: histories are stateless
  // functions of (seed, p, t), per common/rng.h.
  class Snapshot {
   public:
    Snapshot() = default;

   private:
    friend class World;
    Time now = 0;
    std::uint64_t fp_version = 0;
    std::optional<FailurePattern> fp;
    std::vector<RegVal> published;
    ObjectTable::Snapshot objects;
    Trace::Snapshot trace;
  };
  [[nodiscard]] Snapshot snapshot() const;
  // Restoring does not touch the attached auditor's mode, but replaces the
  // auditor instance: stale per-run audit state must not outlive a rewind.
  void restore(const Snapshot& s);

  // ---- Model-conformance auditing (sim/step_audit.h) ----
  // Opt-in: attaches a StepAuditor that observes every step, executed
  // operation, and object-table access of this world. The auditor never
  // alters behavior; audited and unaudited runs produce identical traces.
  void enableAudit(AuditMode mode);
  [[nodiscard]] StepAuditor* auditor() const { return audit_.get(); }
  // Called when the run ends (Run::finish): post-run inspection of the
  // object table by tests/checkers is not shared-memory traffic and must
  // not be audited. The auditor itself stays for report inspection. Also
  // closes out the end-of-run FD-axiom conditions (idempotent), which in
  // kThrow mode may raise StepAuditError.
  void endAuditObservation() {
    objects_.setObserver(nullptr);
    if (audit_) audit_->finalizeFdAxioms();
  }

  // Emulated-FD outputs (the paper's distributed variable D-output_i).
  // Readable by scheduling policies (adversaries) and checkers at zero
  // simulated cost; written via Env::publish.
  [[nodiscard]] const RegVal& published(Pid p) const {
    return published_.at(static_cast<std::size_t>(p));
  }
  void setPublished(Pid p, RegVal v);

 private:
  int n_plus_1_;
  FailurePattern fp_;
  fd::FdPtr fd_;
  SnapshotFlavor flavor_;
  Time now_ = 0;
  std::uint64_t fp_version_ = 0;
  OpFootprint last_footprint_;
  ObjectTable objects_;
  Trace trace_;
  std::unique_ptr<StepAuditor> audit_;
  ScanOverride scan_override_;
  std::vector<RegVal> published_ =
      std::vector<RegVal>(static_cast<std::size_t>(n_plus_1_));
};

}  // namespace wfd::sim
