// World: the shared state of one simulated run.
//
// Owns the object table, the failure detector history, the failure
// pattern, the global step clock and the trace. The scheduler executes
// atomic operations against the world; algorithm coroutines reach it only
// through the per-process Env facade.
#pragma once

#include <cstdint>
#include <memory>

#include "fd/failure_detector.h"
#include "sim/failure_pattern.h"
#include "sim/object_table.h"
#include "sim/ops.h"
#include "sim/step_audit.h"
#include "sim/trace.h"

namespace wfd::sim {

// Which atomic-snapshot implementation Env::snapshot handles use.
enum class SnapshotFlavor {
  kNative,  // one atomic step per update/scan (snapshot as a base object)
  kAfek,    // Afek et al. wait-free construction from registers
};

class World {
 public:
  World(int n_plus_1, FailurePattern fp, fd::FdPtr fd,
        SnapshotFlavor flavor = SnapshotFlavor::kNative)
      : n_plus_1_(n_plus_1),
        fp_(std::move(fp)),
        fd_(std::move(fd)),
        flavor_(flavor) {}

  [[nodiscard]] int nProcs() const { return n_plus_1_; }
  [[nodiscard]] const FailurePattern& pattern() const { return fp_; }
  [[nodiscard]] const fd::FailureDetector* fd() const { return fd_.get(); }
  [[nodiscard]] SnapshotFlavor snapshotFlavor() const { return flavor_; }

  [[nodiscard]] Time now() const { return now_; }
  void advanceClock() { ++now_; }

  ObjectTable& objects() { return objects_; }
  [[nodiscard]] const ObjectTable& objectsConst() const { return objects_; }
  Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  // Execute one atomic step's operation on behalf of process p.
  OpResult execute(Pid p, const Op& op);

  // ---- Model-conformance auditing (sim/step_audit.h) ----
  // Opt-in: attaches a StepAuditor that observes every step, executed
  // operation, and object-table access of this world. The auditor never
  // alters behavior; audited and unaudited runs produce identical traces.
  void enableAudit(AuditMode mode);
  [[nodiscard]] StepAuditor* auditor() const { return audit_.get(); }
  // Called when the run ends (Run::finish): post-run inspection of the
  // object table by tests/checkers is not shared-memory traffic and must
  // not be audited. The auditor itself stays for report inspection.
  void endAuditObservation() { objects_.setObserver(nullptr); }

  // Emulated-FD outputs (the paper's distributed variable D-output_i).
  // Readable by scheduling policies (adversaries) and checkers at zero
  // simulated cost; written via Env::publish.
  [[nodiscard]] const RegVal& published(Pid p) const {
    return published_.at(static_cast<std::size_t>(p));
  }
  void setPublished(Pid p, RegVal v);

 private:
  int n_plus_1_;
  FailurePattern fp_;
  fd::FdPtr fd_;
  SnapshotFlavor flavor_;
  Time now_ = 0;
  ObjectTable objects_;
  Trace trace_;
  std::unique_ptr<StepAuditor> audit_;
  std::vector<RegVal> published_ =
      std::vector<RegVal>(static_cast<std::size_t>(n_plus_1_));
};

}  // namespace wfd::sim
