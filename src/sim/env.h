// Env: the per-process view of the world handed to algorithm coroutines.
//
// Everything that costs an atomic step returns an awaitable; everything
// that is free (object naming, tracing) is a plain call. Algorithms are
// written against Env only, never against World directly, which keeps the
// step accounting honest.
#pragma once

#include <string>
#include <utility>

#include "sim/coro.h"
#include "sim/world.h"

namespace wfd::sim {

class Env {
 public:
  Env(World* world, Pid me) : world_(world), me_(me) {}

  [[nodiscard]] Pid me() const { return me_; }
  [[nodiscard]] int nProcs() const { return world_->nProcs(); }
  [[nodiscard]] SnapshotFlavor snapshotFlavor() const {
    return world_->snapshotFlavor();
  }

  // ---- Zero-cost naming ----
  ObjId reg(const ObjKey& key) { return world_->objects().regId(key); }
  ObjId snap(const ObjKey& key, int slots) {
    return world_->objects().snapId(key, slots);
  }
  ObjId cons(const ObjKey& key, int ports) {
    return world_->objects().consId(key, ports);
  }

  // ---- Atomic steps ----
  OpAwait read(ObjId r) { return OpAwait{OpRead{r}}; }
  OpAwait write(ObjId r, RegVal v) { return OpAwait{OpWrite{r, std::move(v)}}; }
  OpAwait snapUpdate(ObjId s, int slot, RegVal v) {
    return OpAwait{OpSnapUpdate{s, slot, std::move(v)}};
  }
  OpAwait snapScan(ObjId s) { return OpAwait{OpSnapScan{s}}; }
  OpAwait consPropose(ObjId c, RegVal v) {
    return OpAwait{OpConsPropose{c, std::move(v)}};
  }
  OpAwait queryFd() { return OpAwait{OpFdQuery{}}; }
  OpAwait yield() { return OpAwait{OpNoop{}}; }

  // ---- Task inputs/outputs (trace records; free, per Sect. 3.3 (iii)
  // accepting an input / producing an output happens within a step) ----
  void propose(Value v) {
    world_->trace().record(world_->now(), me_, EventKind::kPropose, "",
                           RegVal(v));
  }
  void decide(Value v) {
    world_->trace().record(world_->now(), me_, EventKind::kDecide, "",
                           RegVal(v));
  }

  // ---- Free diagnostics / emulated-FD output ----
  void note(std::string label, RegVal v = RegVal()) {
    world_->trace().record(world_->now(), me_, EventKind::kNote,
                           std::move(label), std::move(v));
  }
  void publish(RegVal v) { world_->setPublished(me_, std::move(v)); }
  // Publish only when the value differs from the current one, so trace
  // kPublish events coincide with the emulated output's switch points —
  // the quantity stabilization checkers measure.
  void publishIfChanged(const RegVal& v) {
    if (world_->published(me_) != v) world_->setPublished(me_, v);
  }
  [[nodiscard]] const RegVal& publishedValue() const {
    return world_->published(me_);
  }

  [[nodiscard]] World* world() { return world_; }

 private:
  World* world_;
  Pid me_;
};

}  // namespace wfd::sim
