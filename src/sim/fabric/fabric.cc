#include "sim/fabric/fabric.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <optional>

#include "sim/fabric/wire.h"
#include "sim/report_cache.h"

namespace wfd::sim::fabric {

namespace {

using Clock = std::chrono::steady_clock;  // model-lint-allow: host timing

struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t cells() const { return end - begin; }
};

// Coordinator-side view of one worker process.
struct Worker {
  pid_t pid = -1;
  int fd = -1;
  std::deque<Block> queue;            // blocks not yet assigned anywhere
  std::optional<Block> inflight;      // the block it is executing now
  bool done = false;                  // shut down or dead
};

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Build the memo a worker (or the in-process fallback) should use. The
// parent's BatchOptions::memo pointer is deliberately NOT honored here:
// after fork the copies diverge, so sharing happens through cache_dir.
std::unique_ptr<ReportCache> buildLocalMemo(BatchOptions& inner) {
  std::unique_ptr<ReportCache> memo;
  if (inner.memo != nullptr || !inner.cache_dir.empty()) {
    memo = makeMemo(inner);
  }
  inner.memo = memo.get();
  return memo;
}

CellResult deadWorkerResult(std::size_t index) {
  CellResult r;
  r.index = index;
  r.error = true;
  r.detail = "fabric worker died mid-block";
  return r;
}

// Child-side loop: request/response until kShutdown or a dead parent.
void workerLoop(int fd, std::size_t count, const BatchRunner::CellGen& make,
                BatchOptions inner) {
  const std::unique_ptr<ReportCache> memo = buildLocalMemo(inner);
  const BatchRunner runner(inner);
  std::size_t prev_disk_hits = 0;
  std::size_t prev_disk_misses = 0;
  for (;;) {
    MsgType type{};
    std::vector<std::uint8_t> payload;
    if (!readFrame(fd, &type, &payload) || type != MsgType::kAssign) return;
    ByteReader rd(payload.data(), payload.size());
    const auto begin = static_cast<std::size_t>(rd.u64());
    const auto end = static_cast<std::size_t>(rd.u64());
    if (!rd.ok() || !rd.atEnd() || begin > end || end > count) return;
    BatchStats bs;
    BlockReport rep;
    rep.begin = begin;
    rep.end = end;
    rep.results = runner.run(
        end - begin, [&](std::size_t i) { return make(begin + i); }, &bs);
    for (CellResult& r : rep.results) r.index += begin;
    for (const long long s : bs.steps_run) rep.steps += s;
    for (const double b : bs.busy_s) rep.busy_s += b;
    rep.steal_ops = bs.steal_ops;
    rep.stolen_cells = bs.stolen_cells;
    rep.memo_hits = bs.memo_hits;
    rep.memo_misses = bs.memo_misses;
    if (memo != nullptr) {
      rep.disk_hits = memo->diskHits() - prev_disk_hits;
      rep.disk_misses = memo->diskMisses() - prev_disk_misses;
      prev_disk_hits = memo->diskHits();
      prev_disk_misses = memo->diskMisses();
    }
    ByteWriter w;
    encodeBlockReport(w, rep);
    if (!writeFrame(fd, MsgType::kResults, w.bytes())) return;
  }
}

std::vector<std::uint8_t> encodeAssign(const Block& b) {
  ByteWriter w;
  w.u64(b.begin);
  w.u64(b.end);
  return w.bytes();
}

}  // namespace

int resolveProcs(int procs) { return procs <= 1 ? 1 : procs; }

std::vector<CellResult> runFabric(const FabricOptions& opts, std::size_t count,
                                  const BatchRunner::CellGen& make,
                                  BatchStats* stats) {
  const int procs = resolveProcs(opts.procs);
  if (procs <= 1 || count == 0) {
    BatchOptions inner = opts.batch;
    const std::unique_ptr<ReportCache> memo = buildLocalMemo(inner);
    const BatchRunner runner(inner);
    std::vector<CellResult> results = runner.run(count, make, stats);
    if (stats != nullptr) {
      stats->procs = 1;
      stats->blocks = count == 0 ? 0 : 1;
      if (memo != nullptr) {
        stats->disk_hits = memo->diskHits();
        stats->disk_misses = memo->diskMisses();
      }
    }
    return results;
  }

  const Clock::time_point wall0 = Clock::now();
  const auto nprocs = static_cast<std::size_t>(procs);
  const std::size_t block_size =
      opts.block > 0 ? opts.block
                     : std::max<std::size_t>(1, count / (nprocs * 64));

  // Deal contiguous per-process ranges, each cut into blocks, so the
  // no-steal schedule matches the thread-level static sharding shape.
  std::vector<Worker> workers(nprocs);
  std::size_t total_blocks = 0;
  for (std::size_t w = 0; w < nprocs; ++w) {
    const std::size_t lo = count * w / nprocs;
    const std::size_t hi = count * (w + 1) / nprocs;
    for (std::size_t b = lo; b < hi; b += block_size) {
      workers[w].queue.push_back(Block{b, std::min(b + block_size, hi)});
      ++total_blocks;
    }
  }

  // Fork the pool. Buffered stdio flushed first so children never carry
  // (and later re-flush) a copy of the parent's pending output.
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<int> parent_fds;
  for (std::size_t w = 0; w < nprocs; ++w) {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      workers[w].done = true;  // degraded: its range drains via orphans
      continue;
    }
    parent_fds.push_back(sv[0]);
    const pid_t pid = ::fork();
    if (pid == 0) {
      for (const int fd : parent_fds) ::close(fd);
      workerLoop(sv[1], count, make, opts.batch);
      ::close(sv[1]);
      std::fflush(nullptr);
      ::_exit(0);
    }
    ::close(sv[1]);
    if (pid < 0) {
      ::close(sv[0]);
      parent_fds.pop_back();
      workers[w].done = true;
      continue;
    }
    workers[w].pid = pid;
    workers[w].fd = sv[0];
  }

  std::vector<CellResult> results(count);
  std::deque<Block> orphans;  // queued blocks of workers that died early
  for (Worker& w : workers) {
    if (w.done) {  // never forked: its whole range is orphaned
      orphans.insert(orphans.end(), w.queue.begin(), w.queue.end());
      w.queue.clear();
    }
  }

  BatchStats agg;
  agg.jobs = opts.batch.jobs;
  agg.steal = opts.batch.steal;
  agg.cells = count;
  agg.procs = procs;
  agg.blocks = total_blocks;
  agg.executed.assign(nprocs, 0);
  agg.steps_run.assign(nprocs, 0);
  agg.busy_s.assign(nprocs, 0);

  const auto markDead = [&](std::size_t w) {
    Worker& wk = workers[w];
    if (wk.inflight.has_value()) {
      for (std::size_t i = wk.inflight->begin; i < wk.inflight->end; ++i) {
        results[i] = deadWorkerResult(i);
      }
      wk.inflight.reset();
    }
    orphans.insert(orphans.end(), wk.queue.begin(), wk.queue.end());
    wk.queue.clear();
    if (wk.fd >= 0) {
      ::close(wk.fd);
      wk.fd = -1;
    }
    if (wk.pid > 0) {
      int st = 0;
      ::waitpid(wk.pid, &st, 0);
      wk.pid = -1;
    }
    wk.done = true;
  };

  // Hand worker w its next block: orphans first, then its own queue, then
  // (when enabled) the back half of the most-loaded peer's queue. No
  // next block -> kShutdown.
  const auto assignNext = [&](std::size_t w) {
    Worker& wk = workers[w];
    std::optional<Block> next;
    if (!orphans.empty()) {
      next = orphans.front();
      orphans.pop_front();
    } else if (!wk.queue.empty()) {
      next = wk.queue.front();
      wk.queue.pop_front();
    } else if (opts.steal) {
      std::size_t victim = nprocs;
      std::size_t victim_cells = 0;
      for (std::size_t v = 0; v < nprocs; ++v) {
        if (v == w) continue;
        std::size_t rem = 0;
        for (const Block& b : workers[v].queue) rem += b.cells();
        if (rem > victim_cells) {
          victim_cells = rem;
          victim = v;
        }
      }
      if (victim < nprocs) {
        std::deque<Block>& vq = workers[victim].queue;
        const std::size_t take = (vq.size() + 1) / 2;  // back half, >= 1
        std::size_t moved_cells = 0;
        for (std::size_t i = vq.size() - take; i < vq.size(); ++i) {
          moved_cells += vq[i].cells();
          wk.queue.push_back(vq[i]);
        }
        vq.erase(vq.end() - static_cast<std::ptrdiff_t>(take), vq.end());
        ++agg.proc_steal_ops;
        agg.proc_stolen_cells += moved_cells;
        next = wk.queue.front();
        wk.queue.pop_front();
      }
    }
    if (!next.has_value()) {
      (void)writeFrame(wk.fd, MsgType::kShutdown, {});
      ::close(wk.fd);
      wk.fd = -1;
      if (wk.pid > 0) {
        int st = 0;
        ::waitpid(wk.pid, &st, 0);
        wk.pid = -1;
      }
      wk.done = true;
      return;
    }
    if (!writeFrame(wk.fd, MsgType::kAssign, encodeAssign(*next))) {
      wk.inflight = next;  // markDead error-marks it
      markDead(w);
      return;
    }
    wk.inflight = next;
  };

  // One kResults frame from worker w; false = treat the worker as dead.
  const auto harvest = [&](std::size_t w) -> bool {
    Worker& wk = workers[w];
    MsgType type{};
    std::vector<std::uint8_t> payload;
    if (!readFrame(wk.fd, &type, &payload) || type != MsgType::kResults) {
      return false;
    }
    ByteReader rd(payload.data(), payload.size());
    BlockReport rep;
    if (!decodeBlockReport(rd, rep) || !rd.atEnd()) return false;
    if (!wk.inflight.has_value() || rep.begin != wk.inflight->begin ||
        rep.end != wk.inflight->end ||
        rep.results.size() != wk.inflight->cells()) {
      return false;
    }
    for (CellResult& r : rep.results) {
      if (r.index < rep.begin || r.index >= rep.end) return false;
    }
    for (CellResult& r : rep.results) {
      const std::size_t i = r.index;
      results[i] = std::move(r);
    }
    agg.executed[w] += wk.inflight->cells();
    agg.steps_run[w] += rep.steps;
    agg.busy_s[w] += rep.busy_s;
    agg.steal_ops += rep.steal_ops;
    agg.stolen_cells += rep.stolen_cells;
    agg.memo_hits += rep.memo_hits;
    agg.memo_misses += rep.memo_misses;
    agg.disk_hits += rep.disk_hits;
    agg.disk_misses += rep.disk_misses;
    wk.inflight.reset();
    return true;
  };

  for (std::size_t w = 0; w < nprocs; ++w) {
    if (!workers[w].done) assignNext(w);
  }

  // Single-threaded event loop: a worker only writes while it holds an
  // assignment, so polling the inflight set covers every possible frame.
  for (;;) {
    std::vector<pollfd> pfds;
    std::vector<std::size_t> owner;
    for (std::size_t w = 0; w < nprocs; ++w) {
      if (!workers[w].done && workers[w].inflight.has_value()) {
        pfds.push_back(pollfd{workers[w].fd, POLLIN, 0});
        owner.push_back(w);
      }
    }
    if (pfds.empty()) break;
    const int n = ::poll(pfds.data(), pfds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      for (const std::size_t w : owner) markDead(w);
      break;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      const std::size_t w = owner[k];
      if (harvest(w)) {
        assignNext(w);
      } else {
        markDead(w);
      }
    }
  }

  // Every worker is gone. Anything still queued (possible only when
  // workers died faster than their blocks drained) finishes in-process so
  // the campaign always completes.
  if (!orphans.empty()) {
    BatchOptions inner = opts.batch;
    const std::unique_ptr<ReportCache> memo = buildLocalMemo(inner);
    const BatchRunner runner(inner);
    while (!orphans.empty()) {
      const Block b = orphans.front();
      orphans.pop_front();
      BatchStats bs;
      std::vector<CellResult> block_results = runner.run(
          b.cells(), [&](std::size_t i) { return make(b.begin + i); }, &bs);
      for (CellResult& r : block_results) {
        r.index += b.begin;
        results[r.index] = std::move(r);
      }
      agg.executed[0] += b.cells();
      for (const long long s : bs.steps_run) agg.steps_run[0] += s;
      for (const double bb : bs.busy_s) agg.busy_s[0] += bb;
      agg.steal_ops += bs.steal_ops;
      agg.stolen_cells += bs.stolen_cells;
      agg.memo_hits += bs.memo_hits;
      agg.memo_misses += bs.memo_misses;
    }
    if (memo != nullptr) {
      agg.disk_hits += memo->diskHits();
      agg.disk_misses += memo->diskMisses();
    }
  }

  agg.wall_s = secondsSince(wall0);
  if (stats != nullptr) *stats = std::move(agg);
  return results;
}

std::vector<CellResult> runFabric(const FabricOptions& opts,
                                  const std::vector<BatchCell>& cells,
                                  BatchStats* stats) {
  return runFabric(
      opts, cells.size(), [&](std::size_t i) { return cells[i]; }, stats);
}

}  // namespace wfd::sim::fabric
