// Wire protocol for the multi-process campaign fabric (docs/PARALLEL.md).
//
// The coordinator and its worker processes exchange length-prefixed
// binary frames over a socketpair:
//
//   frame    = [u32 payload_len][u8 MsgType][payload]
//   kAssign  = coordinator -> worker: one block [begin, end) of the
//              submission order to execute;
//   kResults = worker -> coordinator: the BlockReport for the block it
//              was last assigned (every CellResult plus the worker-side
//              scheduler/memo counters for that block);
//   kShutdown= coordinator -> worker: drain and exit.
//
// The protocol is strictly request/response per worker — the coordinator
// never writes to a worker that has not answered its previous assignment
// — so neither side can deadlock on a full socket buffer. Cells
// themselves never cross the wire: a BatchCell holds opaque callables, so
// workers rebuild cell i from the shared deterministic generator and only
// the plain-data CellResult travels back. Everything here is
// little-endian host format; coordinator and workers are fork()ed from
// one binary, so no cross-machine portability is promised (the persistent
// store, sim/fabric/store.h, reuses this codec under the same caveat and
// guards it with a version stamp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/batch.h"

namespace wfd::sim::fabric {

enum class MsgType : std::uint8_t {
  kAssign = 1,
  kResults = 2,
  kShutdown = 3,
};

// Append-only little binary builder. Plain data only — every encoder
// below is a pure function of its argument, so identical results encode
// to identical bytes (which is what lets the persistent store promise
// byte-identical warm hits).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reader over a borrowed buffer. Any underrun or sanity
// failure latches ok() to false and every later read returns zero — one
// check after decoding replaces per-field error plumbing.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool atEnd() const { return pos_ == size_; }
  void fail() { ok_ = false; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void encodeCellResult(ByteWriter& w, const CellResult& r);
// False on malformed input; `out` is untrusted garbage in that case.
[[nodiscard]] bool decodeCellResult(ByteReader& rd, CellResult& out);

// Everything a worker reports back per assignment block: the results
// themselves plus the deterministic/observability counters its inner
// BatchRunner recorded while executing the block.
struct BlockReport {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  long long steps = 0;             // simulation steps run in this block
  double busy_s = 0;               // summed worker-thread busy seconds
  std::uint64_t steal_ops = 0;     // thread-level, within the process
  std::uint64_t stolen_cells = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t disk_hits = 0;     // persistent-store hits in this block
  std::uint64_t disk_misses = 0;
  std::vector<CellResult> results;
};

void encodeBlockReport(ByteWriter& w, const BlockReport& rep);
[[nodiscard]] bool decodeBlockReport(ByteReader& rd, BlockReport& out);

// Blocking, EINTR-safe framed I/O over a local socket. False means the
// peer is gone (EOF/EPIPE) or the frame was malformed; the fabric treats
// either as a dead peer and degrades per docs/PARALLEL.md.
[[nodiscard]] bool writeFrame(int fd, MsgType type,
                              const std::vector<std::uint8_t>& payload);
[[nodiscard]] bool readFrame(int fd, MsgType* type,
                             std::vector<std::uint8_t>* payload);

}  // namespace wfd::sim::fabric
