// Multi-process campaign fabric: shard a batch across forked worker
// processes with block-level work stealing and deterministic aggregation.
//
// Each worker is fork()ed from the coordinator (no exec: a BatchCell
// holds opaque callables, so workers inherit the cell GENERATOR and
// rebuild cells by index — only plain-data CellResults cross the wire,
// sim/fabric/wire.h). A worker runs an unmodified BatchRunner over each
// assigned block, so within a process the whole thread-level determinism
// contract of sim/batch.h applies verbatim; across processes the
// coordinator scatters results by submission index, which extends the
// contract to: procs=M x jobs=N is bit-identical to serial — same
// verdicts, same steps, same trace hashes, results in submission order
// (certified by tools/determinism_check --procs).
//
// Scheduling: the submission order is cut into contiguous blocks (~64
// per process by default), dealt as contiguous per-process ranges; a
// worker that drains its range steals the back half of the most-loaded
// peer's remaining blocks. Stealing moves whole untouched blocks between
// PROCESSES at assignment time — it never changes what a cell computes,
// only where it runs, exactly like the thread-level stealing inside each
// worker.
//
// Failure: a worker that dies mid-block (crash, kill, malformed frame)
// yields structured error results for that block only ("fabric worker
// died mid-block"); its untouched queued blocks migrate to surviving
// workers, and if every worker dies the coordinator finishes the queue
// in-process. The campaign completes either way.
//
// Caching: the fabric ignores BatchOptions::memo (a ReportCache is not
// shareable across fork boundaries once processes diverge). Instead each
// worker builds its own memo via makeMemo(batch) — when
// BatchOptions::cache_dir is set, all workers share one persistent
// content-addressed store (sim/fabric/store.h), which is how warm
// results cross both process and run boundaries.
#pragma once

#include <vector>

#include "sim/batch.h"

namespace wfd::sim::fabric {

struct FabricOptions {
  // Worker processes; <= 1 (after resolveProcs) runs the batch in-process
  // through a plain BatchRunner — same results, no forking.
  int procs = 0;
  // Per-worker-process batch options: thread count, thread stealing, and
  // the memo_capacity/cache_dir/cache_version consumed by makeMemo.
  // BatchOptions::memo is ignored (see header comment).
  BatchOptions batch;
  // Cells per assignment block; 0 = auto (about 64 blocks per process,
  // so a heavy-tailed cluster spreads instead of landing in one block).
  std::size_t block = 0;
  // Block stealing between processes. false = static per-process ranges,
  // the baseline BENCH_fabric.json measures balance against.
  bool steal = true;
};

// <= 0 -> 1. The fabric never auto-scales to core count: forking is an
// explicit opt-in (CI and the benches pass --procs deliberately).
[[nodiscard]] int resolveProcs(int procs);

// Execute every cell across the fabric; results in submission order.
// `stats`, when non-null, receives per-PROCESS aggregates in
// executed/steps_run/busy_s plus the fabric counters (procs, blocks,
// proc_steal_ops, disk_hits, ...). The generator `make` must satisfy the
// same purity contract as BatchRunner::run's — it additionally runs in
// forked children here, so it must not depend on mutable global state.
[[nodiscard]] std::vector<CellResult> runFabric(const FabricOptions& opts,
                                                std::size_t count,
                                                const BatchRunner::CellGen& make,
                                                BatchStats* stats = nullptr);

[[nodiscard]] std::vector<CellResult> runFabric(
    const FabricOptions& opts, const std::vector<BatchCell>& cells,
    BatchStats* stats = nullptr);

}  // namespace wfd::sim::fabric
