#include "sim/fabric/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>

#include "fd/failure_detector.h"
#include "sim/fabric/wire.h"

namespace wfd::sim::fabric {

namespace {

constexpr std::uint64_t kFileMagic = 0x77666463616368ULL;  // "wfdcach"
constexpr std::uint64_t kFormatVersion = 1;
constexpr std::uint32_t kRecMagic = 0xCE11CA5Eu;
constexpr std::size_t kHeaderBytes = 24;
// [u32 magic][u64 key][u32 payload_len] before the payload, u64 checksum
// after it.
constexpr std::size_t kRecHeaderBytes = 16;
constexpr std::size_t kRecTrailerBytes = 8;
constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

std::uint32_t loadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t loadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void storeU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void storeU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

// Checksum over key, payload length, and payload bytes — the fields a
// torn write can damage. Reuses the Trace mix round so the store adds no
// second hashing scheme to audit.
std::uint64_t recordChecksum(std::uint64_t key, const std::uint8_t* payload,
                             std::size_t len) {
  std::uint64_t h = fd::mixDigest(0x5704E, key);
  h = fd::mixDigest(h, static_cast<std::uint64_t>(len));
  for (std::size_t i = 0; i < len; ++i) {
    h = fd::mixDigest(h, static_cast<std::uint64_t>(payload[i]) + 1);
  }
  return h;
}

bool writeAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::uint64_t PersistentStore::versionDigest(const std::string& version) {
  return fd::digestString(fd::mixDigest(0xD15C, kFormatVersion), version);
}

std::string PersistentStore::segmentPath(const std::string& dir,
                                         const std::string& version) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(versionDigest(version)));
  return dir + "/store-" + hex + ".wfdc";
}

PersistentStore::PersistentStore(const StoreOptions& opts)
    : path_(segmentPath(opts.dir, opts.version)),
      version_digest_(versionDigest(opts.version)) {
  std::error_code ec;
  std::filesystem::create_directories(opts.dir, ec);
  if (ec) return;  // unhealthy: run cold
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  // First handle to touch the segment writes the header; the flock makes
  // the size-check-then-write atomic against a racing second process.
  if (::flock(fd_, LOCK_EX) != 0) return;
  struct stat st{};
  bool ok = ::fstat(fd_, &st) == 0;
  if (ok && st.st_size == 0) {
    std::uint8_t header[kHeaderBytes];
    storeU64(header, kFileMagic);
    storeU64(header + 8, kFormatVersion);
    storeU64(header + 16, version_digest_);
    ok = writeAll(fd_, header, sizeof header);
  }
  ::flock(fd_, LOCK_UN);
  if (!ok) return;
  healthy_ = true;
  scanned_ = kHeaderBytes;
  const std::lock_guard<std::mutex> lock(mu_);
  refreshLocked();  // validates the header of a pre-existing segment
}

PersistentStore::~PersistentStore() {
  if (map_ != nullptr) ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
  if (fd_ >= 0) ::close(fd_);
}

void PersistentStore::refreshLocked() {
  if (!healthy_ || tail_corrupt_) return;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    healthy_ = false;
    return;
  }
  const auto file_len = static_cast<std::size_t>(st.st_size);
  if (file_len < kHeaderBytes) {
    // Shorter than the header we (or a peer) wrote: truncated externally.
    healthy_ = false;
    return;
  }
  if (file_len > map_len_) {
    if (map_ != nullptr) ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
    map_ = nullptr;
    map_len_ = 0;
    void* m = ::mmap(nullptr, file_len, PROT_READ, MAP_SHARED, fd_, 0);
    if (m == MAP_FAILED) {
      healthy_ = false;
      return;
    }
    map_ = static_cast<const std::uint8_t*>(m);
    map_len_ = file_len;
  }
  if (loadU64(map_) != kFileMagic || loadU64(map_ + 8) != kFormatVersion ||
      loadU64(map_ + 16) != version_digest_) {
    // Wrong-version bytes behind our filename (renamed/overwritten file).
    healthy_ = false;
    return;
  }
  // Forward scan over records appended since the last refresh.
  while (scanned_ < map_len_) {
    const std::size_t avail = map_len_ - scanned_;
    if (avail < kRecHeaderBytes) break;  // header still being written
    const std::uint8_t* rec = map_ + scanned_;
    if (loadU32(rec) != kRecMagic) {
      tail_corrupt_ = true;  // garbage bytes: nothing past here is trusted
      return;
    }
    const std::uint64_t key = loadU64(rec + 4);
    const std::uint32_t payload_len = loadU32(rec + 12);
    if (payload_len > kMaxPayloadBytes) {
      tail_corrupt_ = true;
      return;
    }
    const std::size_t rec_len =
        kRecHeaderBytes + payload_len + kRecTrailerBytes;
    if (avail < rec_len) break;  // incomplete tail: retry on next refresh
    const std::uint8_t* payload = rec + kRecHeaderBytes;
    if (loadU64(payload + payload_len) !=
        recordChecksum(key, payload, payload_len)) {
      tail_corrupt_ = true;
      return;
    }
    index_.emplace(key,
                   std::make_pair(scanned_ + kRecHeaderBytes,
                                  static_cast<std::size_t>(payload_len)));
    scanned_ += rec_len;
  }
}

std::optional<CellResult> PersistentStore::decodeAtLocked(
    std::size_t off, std::size_t len) const {
  ByteReader rd(map_ + off, len);
  CellResult r;
  if (!decodeCellResult(rd, r) || !rd.atEnd()) return std::nullopt;
  return r;
}

std::optional<CellResult> PersistentStore::load(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!healthy_) return std::nullopt;
  auto it = index_.find(key);
  if (it == index_.end()) {
    refreshLocked();
    it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
  }
  return decodeAtLocked(it->second.first, it->second.second);
}

void PersistentStore::save(std::uint64_t key, const CellResult& result) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!healthy_) return;
  if (written_.count(key) != 0 || index_.count(key) != 0) return;
  ByteWriter w;
  encodeCellResult(w, result);
  const std::vector<std::uint8_t>& payload = w.bytes();
  if (payload.size() > kMaxPayloadBytes) return;
  std::vector<std::uint8_t> rec(kRecHeaderBytes + payload.size() +
                                kRecTrailerBytes);
  storeU32(rec.data(), kRecMagic);
  storeU64(rec.data() + 4, key);
  storeU32(rec.data() + 12, static_cast<std::uint32_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), rec.begin() + kRecHeaderBytes);
  storeU64(rec.data() + kRecHeaderBytes + payload.size(),
           recordChecksum(key, payload.data(), payload.size()));
  // flock + O_APPEND: concurrent processes append whole records, never
  // interleaved bytes. A failed write poisons the handle — a half-written
  // record is exactly what the checksum scan protects readers from.
  if (::flock(fd_, LOCK_EX) != 0) {
    healthy_ = false;
    return;
  }
  const bool ok = writeAll(fd_, rec.data(), rec.size());
  ::flock(fd_, LOCK_UN);
  if (!ok) {
    healthy_ = false;
    return;
  }
  written_.insert(key);
  ++appends_;
}

bool PersistentStore::healthy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return healthy_;
}

std::size_t PersistentStore::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::size_t PersistentStore::appends() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

}  // namespace wfd::sim::fabric
