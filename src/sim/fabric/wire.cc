#include "sim/fabric/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace wfd::sim::fabric {

namespace {

// Hard ceilings a malformed (or corrupted) buffer cannot talk us past:
// no frame, string, or container in this protocol legitimately reaches
// these sizes, so hitting one means the bytes are garbage.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
constexpr std::uint64_t kMaxStringBytes = 1u << 24;
constexpr std::uint64_t kMaxContainerItems = 1u << 24;

}  // namespace

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t len = u64();
  if (len > kMaxStringBytes || !take(static_cast<std::size_t>(len))) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

void encodeCellResult(ByteWriter& w, const CellResult& r) {
  w.u64(r.index);
  w.u8(static_cast<std::uint8_t>(r.verdict));
  w.str(r.detail);
  w.u8(r.error ? 1 : 0);
  w.u8(r.all_correct_done ? 1 : 0);
  w.i64(r.steps);
  w.i64(r.distinct_decisions);
  w.u64(r.decisions.size());
  for (const auto& [pid, value] : r.decisions) {
    w.i64(pid);
    w.i64(value);
  }
  w.u64(r.trace_hash);
  w.u8(r.check_ok ? 1 : 0);
  w.str(r.check_detail);
  w.u64(r.metrics.size());
  for (const auto& [key, value] : r.metrics) {
    w.str(key);
    w.f64(value);
  }
}

bool decodeCellResult(ByteReader& rd, CellResult& out) {
  out = CellResult{};
  out.index = static_cast<std::size_t>(rd.u64());
  const std::uint8_t verdict = rd.u8();
  if (verdict > static_cast<std::uint8_t>(RunVerdict::kLivelock)) {
    rd.fail();
    return false;
  }
  out.verdict = static_cast<RunVerdict>(verdict);
  out.detail = rd.str();
  out.error = rd.u8() != 0;
  out.all_correct_done = rd.u8() != 0;
  out.steps = rd.i64();
  out.distinct_decisions = static_cast<int>(rd.i64());
  const std::uint64_t n_decisions = rd.u64();
  if (n_decisions > kMaxContainerItems) rd.fail();
  for (std::uint64_t i = 0; rd.ok() && i < n_decisions; ++i) {
    const Pid pid = static_cast<Pid>(rd.i64());
    const Value value = rd.i64();
    out.decisions.emplace(pid, value);
  }
  out.trace_hash = rd.u64();
  out.check_ok = rd.u8() != 0;
  out.check_detail = rd.str();
  const std::uint64_t n_metrics = rd.u64();
  if (n_metrics > kMaxContainerItems) rd.fail();
  for (std::uint64_t i = 0; rd.ok() && i < n_metrics; ++i) {
    std::string key = rd.str();
    const double value = rd.f64();
    out.metrics.emplace(std::move(key), value);
  }
  return rd.ok();
}

void encodeBlockReport(ByteWriter& w, const BlockReport& rep) {
  w.u64(rep.begin);
  w.u64(rep.end);
  w.i64(rep.steps);
  w.f64(rep.busy_s);
  w.u64(rep.steal_ops);
  w.u64(rep.stolen_cells);
  w.u64(rep.memo_hits);
  w.u64(rep.memo_misses);
  w.u64(rep.disk_hits);
  w.u64(rep.disk_misses);
  w.u64(rep.results.size());
  for (const CellResult& r : rep.results) encodeCellResult(w, r);
}

bool decodeBlockReport(ByteReader& rd, BlockReport& out) {
  out = BlockReport{};
  out.begin = rd.u64();
  out.end = rd.u64();
  out.steps = rd.i64();
  out.busy_s = rd.f64();
  out.steal_ops = rd.u64();
  out.stolen_cells = rd.u64();
  out.memo_hits = rd.u64();
  out.memo_misses = rd.u64();
  out.disk_hits = rd.u64();
  out.disk_misses = rd.u64();
  const std::uint64_t n = rd.u64();
  if (n > kMaxContainerItems) rd.fail();
  out.results.reserve(rd.ok() ? static_cast<std::size_t>(n) : 0);
  for (std::uint64_t i = 0; rd.ok() && i < n; ++i) {
    CellResult r;
    if (!decodeCellResult(rd, r)) return false;
    out.results.push_back(std::move(r));
  }
  return rd.ok();
}

namespace {

// Full-buffer send/recv with EINTR retry. MSG_NOSIGNAL turns a dead
// peer into an EPIPE return instead of a process-killing SIGPIPE.
bool sendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool recvAll(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame: peer died
    off += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool writeFrame(int fd, MsgType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  std::uint8_t header[5];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  header[4] = static_cast<std::uint8_t>(type);
  if (!sendAll(fd, header, sizeof header)) return false;
  return payload.empty() || sendAll(fd, payload.data(), payload.size());
}

bool readFrame(int fd, MsgType* type, std::vector<std::uint8_t>* payload) {
  std::uint8_t header[5];
  if (!recvAll(fd, header, sizeof header)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrameBytes) return false;
  const std::uint8_t t = header[4];
  if (t < static_cast<std::uint8_t>(MsgType::kAssign) ||
      t > static_cast<std::uint8_t>(MsgType::kShutdown)) {
    return false;
  }
  *type = static_cast<MsgType>(t);
  payload->resize(len);
  return len == 0 || recvAll(fd, payload->data(), len);
}

}  // namespace wfd::sim::fabric
