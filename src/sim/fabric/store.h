// PersistentStore: on-disk backing for ReportCache (sim/report_cache.h).
//
// Layout: one append-only segment file per (directory, version stamp):
//
//   dir/store-<hex16(version_digest)>.wfdc
//   header = [u64 kFileMagic][u64 kFormatVersion][u64 version_digest]
//   record = [u32 kRecMagic][u64 key][u32 payload_len]
//            [payload = encodeCellResult bytes][u64 checksum]
//
// The version digest folds kFormatVersion with the caller's stamp
// (StoreOptions::version — typically the git SHA or a digest of the
// digest-relevant sources). Because the stamp is part of the FILENAME, a
// schema or semantics change simply addresses a different segment: stale
// caches self-invalidate by never being opened, no migration or deletion
// logic needed. The header repeats the digest as a belt-and-suspenders
// check against renamed files.
//
// Concurrency: appends are whole-record write()s on an O_APPEND fd under
// flock(LOCK_EX), so records from concurrent processes interleave but
// never interleave WITHIN a record. Readers mmap the segment PROT_READ
// and scan forward lazily; per-record checksums mean a torn/truncated
// tail, a crashed writer, or plain corruption degrades to a cold miss —
// never a wrong hit, never a crash. An incomplete record at the tail is
// retried on the next refresh (another process may still be writing it);
// a record with a bad magic or checksum marks the tail permanently
// corrupt and scanning stops for the lifetime of this handle.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sim/report_cache.h"

namespace wfd::sim::fabric {

struct StoreOptions {
  std::string dir;      // created if missing
  std::string version;  // invalidation stamp; "" = format version only
};

class PersistentStore : public ResultStore {
 public:
  explicit PersistentStore(const StoreOptions& opts);
  ~PersistentStore() override;

  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  // Exact stored result or nullopt. Scans any bytes appended since the
  // last call (by this or another process) before concluding a miss.
  [[nodiscard]] std::optional<CellResult> load(std::uint64_t key) override;

  // Durably append key -> result. Deduped per key within this handle and
  // against every record already scanned; failures disable the handle
  // (healthy() goes false) rather than throwing.
  void save(std::uint64_t key, const CellResult& result) override;

  // False after any unrecoverable I/O or header failure: every load
  // misses and every save no-ops, i.e. the campaign runs cold but runs.
  [[nodiscard]] bool healthy() const;
  [[nodiscard]] std::size_t records() const;  // distinct keys scanned
  [[nodiscard]] std::size_t appends() const;  // records this handle wrote
  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] static std::uint64_t versionDigest(const std::string& version);
  [[nodiscard]] static std::string segmentPath(const std::string& dir,
                                               const std::string& version);

 private:
  void refreshLocked();
  [[nodiscard]] std::optional<CellResult> decodeAtLocked(std::size_t off,
                                                         std::size_t len) const;

  mutable std::mutex mu_;
  std::string path_;
  std::uint64_t version_digest_ = 0;
  int fd_ = -1;
  bool healthy_ = false;
  bool tail_corrupt_ = false;  // permanent: stop scanning past bad bytes
  const std::uint8_t* map_ = nullptr;  // PROT_READ view of [0, map_len_)
  std::size_t map_len_ = 0;
  std::size_t scanned_ = 0;  // byte offset the forward scan has reached
  // key -> (payload offset, payload length) within the mapping.
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>> index_;
  std::unordered_set<std::uint64_t> written_;  // keys this handle appended
  std::size_t appends_ = 0;
};

}  // namespace wfd::sim::fabric
