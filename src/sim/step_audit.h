// StepAuditor: mechanical enforcement of the paper's step model.
//
// Every claim in EXPERIMENTS.md rests on the simulator realizing the
// model of docs/MODEL.md faithfully: one atomic shared-object operation
// or FD query per scheduler resume (paper Sect. 3.3), all shared access
// routed through the object table, object kinds and consensus port
// limits respected, no steps by crashed processes (run condition (1)),
// and FD queries at monotone times (histories are functions of (p, t),
// run condition (2)). The auditor is an opt-in observer attached to a
// World that checks each of these invariants at every resume and, on
// violation, produces a structured diagnostic — pid, step index, rule,
// and the tail of the recent operation trace — instead of letting a
// model violation silently corrupt an experiment's conclusion.
//
// Two modes: kCollect records violations for post-run inspection (used
// by tests that probe several rules in one run); kThrow raises
// StepAuditError at the first violation, before the offending operation
// executes — which is what lets the auditor report kind/port violations
// that the object table itself would otherwise halt on via assert.
//
// The auditor never mutates the world, the trace, or the schedule:
// audited and unaudited runs of the same configuration produce
// bit-identical traces (tests/step_audit_test.cc asserts trace-hash
// equality with the auditor on and off). See docs/ANALYSIS.md for the
// rule-by-rule mapping to MODEL.md and paper Sect. 3.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/object_table.h"
#include "sim/ops.h"

namespace wfd::sim {

class World;

enum class AuditMode {
  kCollect,  // record violations; execution continues
  kThrow,    // throw StepAuditError before the violating operation runs
};

enum class AuditRule {
  kMultiOp,         // >1 shared-object op / FD query in one atomic step
  kUnroutedAccess,  // shared access outside the step machinery
  kKindMismatch,    // operation applied to an object of the wrong kind
  kPortOverflow,    // consensus object saw more proposers than its ports
  kCrashedStep,     // a step scheduled for a process in F(now)
  kFdNonMonotone,   // FD queried at a non-increasing time for a process
  kFdIllegalOutput, // a query answer broke the detector's own axiom claim
  kStaleScan,       // a scan returned a view that is neither current nor
                    // the view at the scan's own invocation (chaos
                    // stale-snapshot injection gone illegal)
};

[[nodiscard]] const char* auditRuleName(AuditRule rule);

// Render one atomic operation for diagnostics ("write obj#3 := 7").
[[nodiscard]] std::string opToString(const Op& op);

struct AuditViolation {
  AuditRule rule = AuditRule::kMultiOp;
  Pid pid = -1;
  Time time = 0;        // world clock at detection
  Time step_index = 0;  // atomic steps audited before detection
  std::string message;
  std::vector<std::string> trail;  // recent op records, oldest first

  [[nodiscard]] std::string toString() const;
};

class StepAuditError : public std::runtime_error {
 public:
  explicit StepAuditError(AuditViolation v);
  const AuditViolation violation;
};

class StepAuditor final : public ObjectTable::AccessObserver {
 public:
  StepAuditor(const World* world, AuditMode mode);

  // ---- Hooks (scheduler / world / coroutine leaf; see ANALYSIS.md) ----
  void onStepBegin(Pid p);                // Scheduler::step entry
  void onStepEnd(Pid p);                  // Scheduler::step exit
  void onExecuteBegin(Pid p, const Op& op);  // World::execute, pre-dispatch
  void onExecuteEnd(Pid p);                  // World::execute, post-dispatch
  // OpAwait::await_suspend via ProcCtx::on_op_requested: the automaton
  // asked for its next atomic operation.
  void onOpRequested(Pid p, const Op& op, bool already_pending);
  // ObjectTable::AccessObserver: a step-costing primitive was touched.
  void onObjectAccess(ObjId id, ObjectAccess access) override;
  // World::execute, after an FD query was answered but BEFORE the answer
  // reaches the algorithm: validate it online against the detector's
  // AxiomSpec (range per answer; constancy after stabilizationTime()).
  // In kThrow mode an illegal answer never enters the run.
  void onFdAnswer(Pid p, const ProcSet& answer);
  // World::execute, after a snapshot scan produced its view (possibly
  // replaced by a chaos scan override) and before it reaches the
  // algorithm: a legal view is the CURRENT memory or the memory at the
  // scan's own invocation (any older view would order the scan before an
  // update that preceded its invocation — not linearizable). Only checks
  // when a request-time capture exists (sim/chaos.h records one per
  // overridden scan via captureScanRequest), so normal runs pay nothing.
  void onScanResult(Pid p, ObjId obj, const std::vector<RegVal>& view);
  // Chaos wiring: remember the view `obj` held when p's pending scan was
  // requested, keyed by (p, obj). Overwritten per scan; consumed by
  // onScanResult.
  void captureScanRequest(Pid p, ObjId obj, std::vector<RegVal> view);
  // End-of-run axiom conditions that need the final failure pattern
  // (Upsilon: stable value != correct(F); Omega^k: stable leaders contain
  // a correct process). Idempotent; called by World::endAuditObservation.
  void finalizeFdAxioms();

  // ---- Results ----
  [[nodiscard]] AuditMode mode() const { return mode_; }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool sawRule(AuditRule rule) const;
  [[nodiscard]] Time stepsAudited() const { return steps_audited_; }
  [[nodiscard]] Time opsAudited() const { return ops_audited_; }
  [[nodiscard]] std::string report() const;

 private:
  // One remembered op event; kept unformatted so the hot path never
  // touches strings — rendering happens only when a violation fires.
  struct TrailRecord {
    Time t = 0;
    Pid p = -1;
    bool exec = false;  // true: World::execute; false: op requested
    Op op;
  };

  void flag(AuditRule rule, Pid pid, std::string message);
  void noteTrail(bool exec, Pid p, const Op& op);
  [[nodiscard]] std::vector<std::string> renderTrail() const;
  void checkOpAgainstTable(Pid p, const Op& op);

  static constexpr std::size_t kTrailCap = 16;

  const World* world_;
  AuditMode mode_;

  bool in_step_ = false;
  Pid step_pid_ = -1;
  int execs_this_step_ = 0;  // World::execute calls within the open step

  bool in_execute_ = false;
  ObjId exec_obj_ = -1;  // object the declared op targets (-1: none)

  std::vector<Time> last_fd_query_;  // per pid; -1 = never queried

  // Online FD-axiom state: first post-stabilization answer seen (every
  // later post-stab answer must equal it), and whether the end-of-run
  // conditions already ran.
  bool post_stab_seen_ = false;
  ProcSet post_stab_value_;
  bool fd_finalized_ = false;

  // Request-time scan views captured by the chaos engine for overridden
  // scans; keyed (pid, obj). Empty unless stale-snapshot injection is on.
  std::map<std::pair<Pid, ObjId>, std::vector<RegVal>> scan_captures_;

  Time steps_audited_ = 0;
  Time ops_audited_ = 0;
  std::array<TrailRecord, kTrailCap> trail_{};  // ring, next_ is the head
  std::size_t trail_next_ = 0;
  std::size_t trail_size_ = 0;
  std::vector<AuditViolation> violations_;
};

}  // namespace wfd::sim
