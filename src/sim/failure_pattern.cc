#include "sim/failure_pattern.h"

#include <cassert>

#include "common/rng.h"

namespace wfd::sim {

FailurePattern FailurePattern::failureFree(int n_plus_1) {
  assert(n_plus_1 >= 1 && n_plus_1 <= kMaxProcs);
  return FailurePattern(
      std::vector<Time>(static_cast<std::size_t>(n_plus_1), kNeverCrashes));
}

FailurePattern FailurePattern::withCrashes(
    int n_plus_1, const std::vector<std::pair<Pid, Time>>& crashes) {
  std::vector<Time> at(static_cast<std::size_t>(n_plus_1), kNeverCrashes);
  for (const auto& [p, t] : crashes) {
    assert(p >= 0 && p < n_plus_1);
    at[static_cast<std::size_t>(p)] = t;
  }
  FailurePattern fp(std::move(at));
  assert(!fp.correct().empty() && "at least one process must be correct");
  return fp;
}

FailurePattern FailurePattern::random(int n_plus_1, int f, Time horizon,
                                      std::uint64_t seed) {
  assert(f >= 0 && f < n_plus_1);
  Rng rng(seed);
  std::vector<Time> at(static_cast<std::size_t>(n_plus_1), kNeverCrashes);
  const int n_faulty = static_cast<int>(rng.below(static_cast<std::uint64_t>(f) + 1));
  // Choose n_faulty distinct victims.
  int chosen = 0;
  while (chosen < n_faulty) {
    const Pid p = static_cast<Pid>(rng.below(static_cast<std::uint64_t>(n_plus_1)));
    if (at[static_cast<std::size_t>(p)] == kNeverCrashes) {
      at[static_cast<std::size_t>(p)] = rng.range(0, horizon);
      ++chosen;
    }
  }
  return FailurePattern(std::move(at));
}

void FailurePattern::injectCrash(Pid p, Time t) {
  assert(p >= 0 && p < nProcs());
  assert(crash_at_[static_cast<std::size_t>(p)] > t &&
         "chaos cannot crash a process that is already crashed");
  crash_at_[static_cast<std::size_t>(p)] = t;
}

ProcSet FailurePattern::crashedBy(Time t) const {
  ProcSet s;
  for (Pid p = 0; p < nProcs(); ++p) {
    if (crash_at_[static_cast<std::size_t>(p)] <= t) s.insert(p);
  }
  return s;
}

ProcSet FailurePattern::correct() const {
  ProcSet s;
  for (Pid p = 0; p < nProcs(); ++p) {
    if (isCorrect(p)) s.insert(p);
  }
  return s;
}

ProcSet FailurePattern::faulty() const {
  return correct().complement(nProcs());
}

}  // namespace wfd::sim
