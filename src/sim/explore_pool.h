// Work-stealing job pool for the parallel exploration frontier
// (sim/explore.h). The PR 5 BatchRunner discipline, re-cut for subtree
// jobs: every worker owns a mutex-guarded deque seeded with a contiguous
// block of the job index space, pops work from the FRONT of its own
// deque, and — once drained — steals the BACK HALF of a victim's
// remaining block. Scheduling decides only WHERE a job runs, never what
// it computes: the job body must be a pure function of the job index, so
// steal-vs-static and any worker count produce identical per-job results.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfd::sim {

class ExplorePool {
 public:
  struct Stats {
    std::size_t steal_ops = 0;     // successful steal-half operations
    std::size_t stolen_jobs = 0;   // jobs that changed workers
  };

  // Run fn(job_index, worker_index) for every job in [0, count) on
  // `workers` threads. Blocks until all jobs ran. fn must be thread-safe
  // across distinct jobs and a pure function of its job index.
  static Stats run(std::size_t count, int workers,
                   const std::function<void(std::size_t, int)>& fn) {
    Stats stats;
    if (count == 0) return stats;
    const int w = std::max(1, std::min<int>(workers,
                                            static_cast<int>(count)));
    if (w == 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i, 0);
      return stats;
    }

    struct Deque {
      std::mutex mu;
      std::deque<std::size_t> jobs;
    };
    std::vector<Deque> deques(static_cast<std::size_t>(w));
    // Contiguous block seeding: worker k owns [k*count/w, (k+1)*count/w).
    for (int k = 0; k < w; ++k) {
      const std::size_t lo = count * static_cast<std::size_t>(k) /
                             static_cast<std::size_t>(w);
      const std::size_t hi = count * static_cast<std::size_t>(k + 1) /
                             static_cast<std::size_t>(w);
      for (std::size_t i = lo; i < hi; ++i) {
        deques[static_cast<std::size_t>(k)].jobs.push_back(i);
      }
    }

    std::mutex stats_mu;
    const auto worker = [&](int me) {
      Deque& mine = deques[static_cast<std::size_t>(me)];
      for (;;) {
        std::size_t job = 0;
        bool have = false;
        {
          const std::lock_guard<std::mutex> lk(mine.mu);
          if (!mine.jobs.empty()) {
            job = mine.jobs.front();
            mine.jobs.pop_front();
            have = true;
          }
        }
        if (!have) {
          // Drained: steal the back half of the fullest victim.
          int victim = -1;
          std::size_t best = 0;
          for (int k = 0; k < w; ++k) {
            if (k == me) continue;
            Deque& d = deques[static_cast<std::size_t>(k)];
            const std::lock_guard<std::mutex> lk(d.mu);
            if (d.jobs.size() > best) {
              best = d.jobs.size();
              victim = k;
            }
          }
          if (victim < 0) return;  // everything drained everywhere
          std::vector<std::size_t> taken;
          {
            Deque& d = deques[static_cast<std::size_t>(victim)];
            const std::lock_guard<std::mutex> lk(d.mu);
            const std::size_t half = (d.jobs.size() + 1) / 2;
            while (taken.size() < half && !d.jobs.empty()) {
              taken.push_back(d.jobs.back());
              d.jobs.pop_back();
            }
          }
          if (taken.empty()) continue;  // raced; rescan
          {
            const std::lock_guard<std::mutex> lk(stats_mu);
            ++stats.steal_ops;
            stats.stolen_jobs += taken.size();
          }
          const std::lock_guard<std::mutex> lk(mine.mu);
          // Back-half order restored: lowest stolen index runs first.
          for (auto it = taken.rbegin(); it != taken.rend(); ++it) {
            mine.jobs.push_back(*it);
          }
          continue;
        }
        fn(job, me);
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(w));
    for (int k = 0; k < w; ++k) threads.emplace_back(worker, k);
    for (auto& t : threads) t.join();
    return stats;
  }
};

}  // namespace wfd::sim
