#include "fd/scripted.h"

namespace wfd::fd {

FdPtr makeScripted(std::string name, ScriptedFd::HistoryFn fn,
                   Time stab_time) {
  return std::make_shared<ScriptedFd>(std::move(name), std::move(fn),
                                      stab_time);
}

FdPtr makeConstant(ProcSet constant) {
  return std::make_shared<DummyFd>(constant);
}

}  // namespace wfd::fd
