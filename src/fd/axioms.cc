#include "fd/axioms.h"

namespace wfd::fd {

namespace {

AxiomReport fail(std::string msg) {
  return AxiomReport{false, std::move(msg)};
}

// Checks eventual agreement on a permanent value among correct processes
// over [from, horizon]; writes the stable value to *out.
AxiomReport checkEventuallyConstant(const FailureDetector& fd,
                                    const FailurePattern& fp, Time from,
                                    Time horizon, ProcSet* out) {
  if (from > horizon) {
    return fail("stabilization witness " + std::to_string(from) +
                " beyond horizon " + std::to_string(horizon));
  }
  const ProcSet correct = fp.correct();
  const Pid witness = correct.min();
  const ProcSet stable = fd.query(witness, from);
  for (Time t = from; t <= horizon; ++t) {
    for (Pid p : correct.members()) {
      const ProcSet got = fd.query(p, t);
      if (got != stable) {
        return fail("history not stable: H(p" + std::to_string(p + 1) + "," +
                    std::to_string(t) + ") = " + got.toString() + " vs " +
                    stable.toString());
      }
    }
  }
  if (out != nullptr) *out = stable;
  return {};
}

}  // namespace

AxiomReport checkUpsilonF(const FailureDetector& fd, const FailurePattern& fp,
                          int f, Time horizon) {
  const int n_plus_1 = fp.nProcs();
  // Range check on a sample of the whole history (all processes, all times
  // up to the horizon): non-empty sets of size >= n+1-f.
  for (Time t = 0; t <= horizon; ++t) {
    for (Pid p = 0; p < n_plus_1; ++p) {
      const ProcSet s = fd.query(p, t);
      if (s.empty()) return fail("empty output at t=" + std::to_string(t));
      if (s.size() < n_plus_1 - f) {
        return fail("output " + s.toString() + " smaller than n+1-f at t=" +
                    std::to_string(t));
      }
    }
  }
  ProcSet stable;
  AxiomReport r = checkEventuallyConstant(fd, fp, fd.stabilizationTime(),
                                          horizon, &stable);
  if (!r.ok) return r;
  if (stable == fp.correct()) {
    return fail("stable set " + stable.toString() +
                " equals the correct set — Upsilon axiom (2) violated");
  }
  return {};
}

AxiomReport checkOmegaK(const FailureDetector& fd, const FailurePattern& fp,
                        int k, Time horizon) {
  const int n_plus_1 = fp.nProcs();
  for (Time t = 0; t <= horizon; ++t) {
    for (Pid p = 0; p < n_plus_1; ++p) {
      const ProcSet s = fd.query(p, t);
      if (s.size() != k) {
        return fail("output " + s.toString() + " is not a " +
                    std::to_string(k) + "-set at t=" + std::to_string(t));
      }
    }
  }
  ProcSet stable;
  AxiomReport r = checkEventuallyConstant(fd, fp, fd.stabilizationTime(),
                                          horizon, &stable);
  if (!r.ok) return r;
  if (stable.intersect(fp.correct()).empty()) {
    return fail("stable set " + stable.toString() +
                " contains no correct process — Omega^k axiom violated");
  }
  return {};
}

AxiomReport checkStable(const FailureDetector& fd, const FailurePattern& fp,
                        Time horizon) {
  return checkEventuallyConstant(fd, fp, fd.stabilizationTime(), horizon,
                                 nullptr);
}

AxiomReport checkEventuallyPerfect(const FailureDetector& fd,
                                   const FailurePattern& fp, Time horizon,
                                   bool perfect) {
  if (perfect) {
    // Strong accuracy at every time: no process suspected before its
    // crash time (completeness is covered by the eventual check below).
    for (Time t = 0; t <= horizon; ++t) {
      for (Pid p = 0; p < fp.nProcs(); ++p) {
        const ProcSet s = fd.query(p, t);
        if (!s.minus(fp.crashedBy(t)).empty()) {
          return fail("P suspected a live process at t=" + std::to_string(t) +
                      ": " + s.toString());
        }
      }
    }
  }
  ProcSet stable;
  AxiomReport r = checkEventuallyConstant(fd, fp, fd.stabilizationTime(),
                                          horizon, &stable);
  if (!r.ok) return r;
  if (stable != fp.faulty()) {
    return fail("stable suspicion set " + stable.toString() +
                " is not exactly faulty(F) = " + fp.faulty().toString());
  }
  return {};
}

}  // namespace wfd::fd
