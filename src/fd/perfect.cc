#include "fd/perfect.h"

#include <algorithm>

#include "common/rng.h"

namespace wfd::fd {

namespace {

Time lastCrashTime(const FailurePattern& fp) {
  Time last = 0;
  for (Pid p = 0; p < fp.nProcs(); ++p) {
    if (!fp.isCorrect(p)) last = std::max(last, fp.crashTime(p));
  }
  return last;
}

}  // namespace

Time PerfectFd::stabilizationTime() const { return lastCrashTime(fp_); }

ProcSet EventuallyPerfectFd::query(Pid p, Time t) const {
  if (t >= stabilizationTime()) return fp_.faulty();
  // Pre-stabilization: arbitrary suspicion sets (possibly suspecting live
  // processes, missing crashed ones) — <>P permits anything here.
  const std::uint64_t bits = hashedUniform(
      params_.noise_seed ^ 0xD1A0, static_cast<std::uint64_t>(p) + 1,
      static_cast<std::uint64_t>(t), std::uint64_t{1} << fp_.nProcs());
  return ProcSet::fromBits(bits);
}

Time EventuallyPerfectFd::stabilizationTime() const {
  return std::max(params_.stab_time, lastCrashTime(fp_));
}

FdPtr makePerfect(const FailurePattern& fp) {
  return std::make_shared<PerfectFd>(fp);
}

FdPtr makeEventuallyPerfect(const FailurePattern& fp, Time stab_time,
                            std::uint64_t noise_seed) {
  EventuallyPerfectFd::Params p;
  p.stab_time = stab_time;
  p.noise_seed = noise_seed;
  return std::make_shared<EventuallyPerfectFd>(fp, p);
}

}  // namespace wfd::fd
