// Omega and Omega^k (Chandra–Hadzilacos–Toueg [3]; Neiger's Omega_n [18]).
//
// Omega^k outputs a set of exactly k processes such that eventually the
// same set, containing at least one correct process, is permanently output
// at all correct processes. Omega is Omega^1 (we encode the leader as a
// singleton set). The paper compares Upsilon against Omega_n (Theorem 1)
// and Upsilon^f against Omega^f (Theorem 5), and uses Omega^f -> Upsilon^f
// (complementation) as the easy direction of both.
#pragma once

#include "fd/failure_detector.h"

namespace wfd::fd {

class OmegaKFd final : public FailureDetector {
 public:
  struct Params {
    ProcSet stable_leaders;  // size k, containing >= 1 correct process
    Time stab_time = 0;
    std::uint64_t noise_seed = 0;
  };

  OmegaKFd(const FailurePattern& fp, int k, Params p);

  ProcSet query(Pid p, Time t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Time stabilizationTime() const override {
    return params_.stab_time;
  }
  [[nodiscard]] AxiomSpec axioms() const override {
    return {AxiomSpec::Family::kOmegaK, k_};
  }
  [[nodiscard]] std::uint64_t keyDigest() const override;

  [[nodiscard]] const ProcSet& stableLeaders() const {
    return params_.stable_leaders;
  }
  [[nodiscard]] int k() const { return k_; }

  // A legal stable output: the lowest-id correct process plus the k-1
  // lowest-id other processes.
  static ProcSet defaultLeaders(const FailurePattern& fp, int k);

 private:
  int n_plus_1_;
  int k_;
  Params params_;
};

FdPtr makeOmega(const FailurePattern& fp, Time stab_time,
                std::uint64_t noise_seed = 0);
FdPtr makeOmegaK(const FailurePattern& fp, int k, Time stab_time,
                 std::uint64_t noise_seed = 0);
FdPtr makeOmegaK(const FailurePattern& fp, int k, ProcSet leaders,
                 Time stab_time, std::uint64_t noise_seed = 0);

}  // namespace wfd::fd
