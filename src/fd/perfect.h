// The classic Chandra–Toueg detectors P and ◇P ([4] in the paper).
//
// The paper's Sect. 6.2 notes that "most failure detectors proposed in
// the literature for solving decision problems in the shared memory
// model are stable or equivalent to some stable failure detectors" — P
// and ◇P are the canonical examples, so the library ships them as extra
// sources for the Fig. 3 extraction (both are f-non-trivial for f >= 1:
// ◇P yields Omega by electing the smallest unsuspected process).
//
// Output convention: the set of SUSPECTED processes.
//   P  (perfect):       H(p, t) = F(t) — exactly the processes crashed by
//                       t (strong completeness + strong accuracy).
//   ◇P (eventually
//       perfect):       arbitrary until stab_time, then exactly
//                       faulty(F) forever.
// Both histories are stable: they converge to faulty(F) at all correct
// processes.
#pragma once

#include "fd/failure_detector.h"

namespace wfd::fd {

class PerfectFd final : public FailureDetector {
 public:
  explicit PerfectFd(FailurePattern fp) : fp_(std::move(fp)) {}

  ProcSet query(Pid, Time t) const override { return fp_.crashedBy(t); }
  [[nodiscard]] std::string name() const override { return "P"; }
  [[nodiscard]] Time stabilizationTime() const override;
  [[nodiscard]] AxiomSpec axioms() const override {
    return {AxiomSpec::Family::kEventuallyPerfect, 0};  // P satisfies <>P
  }
  [[nodiscard]] std::uint64_t keyDigest() const override {
    return digestPattern(digestString(0x9E4F, name()), fp_);
  }

 private:
  FailurePattern fp_;
};

class EventuallyPerfectFd final : public FailureDetector {
 public:
  struct Params {
    Time stab_time = 0;
    std::uint64_t noise_seed = 0;
  };
  EventuallyPerfectFd(FailurePattern fp, Params p)
      : fp_(std::move(fp)), params_(p) {}

  ProcSet query(Pid p, Time t) const override;
  [[nodiscard]] std::string name() const override { return "<>P"; }
  [[nodiscard]] Time stabilizationTime() const override;
  [[nodiscard]] AxiomSpec axioms() const override {
    return {AxiomSpec::Family::kEventuallyPerfect, 0};
  }
  [[nodiscard]] std::uint64_t keyDigest() const override {
    std::uint64_t h = digestPattern(digestString(0xE9EF, name()), fp_);
    h = mixDigest(h, static_cast<std::uint64_t>(params_.stab_time));
    h = mixDigest(h, params_.noise_seed);
    return h;
  }

 private:
  FailurePattern fp_;
  Params params_;
};

FdPtr makePerfect(const FailurePattern& fp);
FdPtr makeEventuallyPerfect(const FailurePattern& fp, Time stab_time,
                            std::uint64_t noise_seed = 0);

}  // namespace wfd::fd
