// Derived failure detector histories.
//
// MappedFd applies a pure per-query transformation to another history —
// exactly what a *stateless* reduction algorithm computes (e.g. the
// complementation reductions of Sect. 4/5.3). It lets an algorithm
// consume "D through the lens of the reduction" in a single run, without
// relaying values through memory.
//
// RecordedFd replays the kPublish timeline of a previous run as a
// history: the output of a *stateful* reduction (Fig. 3, or an
// algorithmic detector implementation) becomes a first-class detector
// for a subsequent run — modular composition of reductions, as the
// paper's framework composes them.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "fd/failure_detector.h"
#include "sim/trace.h"

namespace wfd::fd {

class MappedFd final : public FailureDetector {
 public:
  using MapFn = std::function<ProcSet(const ProcSet&, Pid, Time)>;

  MappedFd(FdPtr inner, MapFn fn, std::string name)
      : inner_(std::move(inner)), fn_(std::move(fn)), name_(std::move(name)) {}

  ProcSet query(Pid p, Time t) const override {
    return fn_(inner_->query(p, t), p, t);
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Time stabilizationTime() const override {
    return inner_->stabilizationTime();
  }

 private:
  FdPtr inner_;
  MapFn fn_;
  std::string name_;
};

FdPtr makeMapped(FdPtr inner, MappedFd::MapFn fn, std::string name);

// The Sect. 4 complement lens: Omega^k seen as Upsilon^{n+1-k}.
FdPtr makeComplemented(FdPtr inner, int n_plus_1);

class RecordedFd final : public FailureDetector {
 public:
  // Replays the kPublish events of `trace` (only entries whose value is a
  // ProcSet). Queries before a process's first publish return `initial`;
  // queries after the last recorded event return the last value.
  RecordedFd(const sim::Trace& trace, int n_plus_1, ProcSet initial,
             std::string name);

  ProcSet query(Pid p, Time t) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Time stabilizationTime() const override { return stab_; }

 private:
  std::vector<std::vector<std::pair<Time, ProcSet>>> timeline_;
  ProcSet initial_;
  Time stab_ = 0;
  std::string name_;
};

FdPtr makeRecorded(const sim::Trace& trace, int n_plus_1, ProcSet initial,
                   std::string name);

}  // namespace wfd::fd
