// anti-Omega (Zielinski [22,23], discussed in the paper's related work).
//
// anti-Omega outputs one process id per query such that some correct
// process is eventually never output. We ship its *stable* variant: the
// output eventually stabilizes on a singleton {q} with {q} != correct(F)
// — which is exactly Upsilon restricted to singleton outputs, a pleasing
// structural fact the tests verify (every stable anti-Omega history is a
// legal Upsilon history).
#pragma once

#include "fd/failure_detector.h"

namespace wfd::fd {

class AntiOmegaFd final : public FailureDetector {
 public:
  struct Params {
    Pid stable_pid = 0;  // q; {q} must differ from correct(F)
    Time stab_time = 0;
    std::uint64_t noise_seed = 0;
  };

  AntiOmegaFd(const FailurePattern& fp, Params p);

  ProcSet query(Pid p, Time t) const override;
  [[nodiscard]] std::string name() const override { return "anti-Omega"; }
  [[nodiscard]] Time stabilizationTime() const override {
    return params_.stab_time;
  }
  [[nodiscard]] std::uint64_t keyDigest() const override;

  [[nodiscard]] Pid stablePid() const { return params_.stable_pid; }

  // A legal stable pid: any faulty process if one exists; otherwise any
  // process (since |correct| = n+1 >= 2 > 1 = |{q}|).
  static Pid defaultStablePid(const FailurePattern& fp);

 private:
  int n_plus_1_;
  Params params_;
};

FdPtr makeAntiOmega(const FailurePattern& fp, Time stab_time,
                    std::uint64_t noise_seed = 0);

}  // namespace wfd::fd
