// Scripted and trivial ("dummy") failure detectors.
//
// ScriptedFd wraps an arbitrary deterministic function H(p, t) — the tool
// the adversarial tests use to realize the exact histories the paper's
// proofs construct (e.g. "Upsilon permanently outputs {p1,...,pn} at all
// processes" in Theorem 1).
//
// DummyFd always outputs the same value; it carries no failure information
// and is implementable in an asynchronous system (paper Sect. 6.3). It is
// the yardstick for f-resilient solvability.
#pragma once

#include <functional>
#include <utility>

#include "fd/failure_detector.h"

namespace wfd::fd {

class ScriptedFd final : public FailureDetector {
 public:
  using HistoryFn = std::function<ProcSet(Pid, Time)>;

  ScriptedFd(std::string name, HistoryFn fn, Time stab_time)
      : name_(std::move(name)), fn_(std::move(fn)), stab_time_(stab_time) {}

  ProcSet query(Pid p, Time t) const override { return fn_(p, t); }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Time stabilizationTime() const override { return stab_time_; }

 private:
  std::string name_;
  HistoryFn fn_;
  Time stab_time_;
};

class DummyFd final : public FailureDetector {
 public:
  explicit DummyFd(ProcSet constant) : constant_(constant) {}

  ProcSet query(Pid, Time) const override { return constant_; }
  [[nodiscard]] std::string name() const override { return "Dummy"; }
  [[nodiscard]] Time stabilizationTime() const override { return 0; }

 private:
  ProcSet constant_;
};

FdPtr makeScripted(std::string name, ScriptedFd::HistoryFn fn, Time stab_time);
FdPtr makeConstant(ProcSet constant);

}  // namespace wfd::fd
