#include "fd/mapped.h"

#include <algorithm>

namespace wfd::fd {

FdPtr makeMapped(FdPtr inner, MappedFd::MapFn fn, std::string name) {
  return std::make_shared<MappedFd>(std::move(inner), std::move(fn),
                                    std::move(name));
}

FdPtr makeComplemented(FdPtr inner, int n_plus_1) {
  const std::string name = "complement(" + inner->name() + ")";
  return makeMapped(
      std::move(inner),
      [n_plus_1](const ProcSet& s, Pid, Time) {
        return s.complement(n_plus_1);
      },
      name);
}

RecordedFd::RecordedFd(const sim::Trace& trace, int n_plus_1, ProcSet initial,
                       std::string name)
    : timeline_(static_cast<std::size_t>(n_plus_1)),
      initial_(initial),
      name_(std::move(name)) {
  for (const auto& e : trace.ofKind(sim::EventKind::kPublish)) {
    if (e.pid < 0 || e.pid >= n_plus_1 || !e.value.isSet()) continue;
    timeline_[static_cast<std::size_t>(e.pid)].emplace_back(e.time,
                                                            e.value.asSet());
    stab_ = std::max(stab_, e.time);
  }
}

ProcSet RecordedFd::query(Pid p, Time t) const {
  const auto& tl = timeline_.at(static_cast<std::size_t>(p));
  // Last event at or before t.
  auto it = std::upper_bound(
      tl.begin(), tl.end(), t,
      [](Time x, const std::pair<Time, ProcSet>& e) { return x < e.first; });
  if (it == tl.begin()) return initial_;
  return std::prev(it)->second;
}

FdPtr makeRecorded(const sim::Trace& trace, int n_plus_1, ProcSet initial,
                   std::string name) {
  return std::make_shared<RecordedFd>(trace, n_plus_1, initial,
                                      std::move(name));
}

}  // namespace wfd::fd
