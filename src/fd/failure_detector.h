// Failure detector oracles (paper Sect. 3.2).
//
// A failure detector D maps each failure pattern F to a set of histories
// D(F); a history H gives the module output H(p, t). This library fixes
// the range of every shipped detector to ProcSet: Upsilon/Upsilon^f output
// process sets by definition, Omega outputs a singleton set {leader}, and
// Omega^k a k-sized set — so reductions can relay outputs through shared
// registers without type erasure.
//
// An implementation *is* one history for one failure pattern: query(p, t)
// must be a pure function of (p, t) given construction parameters, so that
// re-querying is consistent no matter how the scheduler interleaves steps.
// Axiom checkers that certify a generated history really belongs to D(F)
// live in fd/axioms.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/proc_set.h"
#include "common/types.h"
#include "sim/failure_pattern.h"

namespace wfd::fd {

using sim::FailurePattern;

// Sentinel keyDigest() value: this history cannot be pinned by a digest
// (opaque scripted/mapped functions). Runs using such a detector are
// excluded from whole-run memoization (sim/report_cache.h).
inline constexpr std::uint64_t kOpaqueFdDigest = 0;

// One round of splitmix64-style mixing — the same round Trace and RegVal
// use — so detector digests compose with the trace-hash machinery.
[[nodiscard]] constexpr std::uint64_t mixDigest(std::uint64_t h,
                                                std::uint64_t x) {
  h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

[[nodiscard]] inline std::uint64_t digestString(std::uint64_t h,
                                                const std::string& s) {
  h = mixDigest(h, s.size());
  for (const char c : s) h = mixDigest(h, static_cast<unsigned char>(c));
  return h;
}

// A pattern pins the perfect-information detectors (P, <>P) completely,
// and disambiguates histories whose factories derived defaults from it.
[[nodiscard]] inline std::uint64_t digestPattern(std::uint64_t h,
                                                 const FailurePattern& fp) {
  h = mixDigest(h, static_cast<std::uint64_t>(fp.nProcs()));
  for (Pid p = 0; p < fp.nProcs(); ++p) {
    h = mixDigest(h, static_cast<std::uint64_t>(fp.crashTime(p)));
  }
  return h;
}

// What a detector instance claims about its own history, machine-readably:
// the axiom family its outputs promise to satisfy, plus the family
// parameter (f for Upsilon^f, k for Omega^k). The online axiom checker in
// sim/step_audit.h validates every query() answer against this claim as it
// is produced — range per answer, constancy after stabilizationTime(), and
// the non-triviality conditions against the final failure pattern at end
// of run. kNone opts a detector out (scripted/adversarial histories whose
// whole point is to sit outside any family).
struct AxiomSpec {
  enum class Family { kNone, kUpsilonF, kOmegaK, kEventuallyPerfect };
  Family family = Family::kNone;
  int param = 0;  // f (Upsilon^f) or k (Omega^k); unused otherwise
};

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  // H(p, t): the value of p's module at time t. Must be deterministic.
  virtual ProcSet query(Pid p, Time t) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // The time by which this particular history has provably stabilized
  // (kNeverCrashes if the detector gives no such bound). Tests use it to
  // pick run budgets; algorithms must never look at it.
  [[nodiscard]] virtual Time stabilizationTime() const = 0;

  // The axiom family this history claims to satisfy; kNone = unchecked.
  [[nodiscard]] virtual AxiomSpec axioms() const { return {}; }

  // Stable 64-bit digest of this history's construction parameters
  // (stable set, stabilization time, noise seed, pattern, ...). Two
  // instances whose histories can differ ANYWHERE must digest
  // differently: sim::ReportCache keys memoized whole-run summaries on
  // it, so a collision would serve one cell's result for another. The
  // default is kOpaqueFdDigest — uncacheable — so detector classes must
  // opt in by overriding; scripted/mapped histories wrapping opaque
  // callables stay opted out by construction.
  [[nodiscard]] virtual std::uint64_t keyDigest() const {
    return kOpaqueFdDigest;
  }
};

using FdPtr = std::shared_ptr<const FailureDetector>;

}  // namespace wfd::fd
