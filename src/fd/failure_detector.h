// Failure detector oracles (paper Sect. 3.2).
//
// A failure detector D maps each failure pattern F to a set of histories
// D(F); a history H gives the module output H(p, t). This library fixes
// the range of every shipped detector to ProcSet: Upsilon/Upsilon^f output
// process sets by definition, Omega outputs a singleton set {leader}, and
// Omega^k a k-sized set — so reductions can relay outputs through shared
// registers without type erasure.
//
// An implementation *is* one history for one failure pattern: query(p, t)
// must be a pure function of (p, t) given construction parameters, so that
// re-querying is consistent no matter how the scheduler interleaves steps.
// Axiom checkers that certify a generated history really belongs to D(F)
// live in fd/axioms.h.
#pragma once

#include <memory>
#include <string>

#include "common/proc_set.h"
#include "common/types.h"
#include "sim/failure_pattern.h"

namespace wfd::fd {

using sim::FailurePattern;

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  // H(p, t): the value of p's module at time t. Must be deterministic.
  virtual ProcSet query(Pid p, Time t) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // The time by which this particular history has provably stabilized
  // (kNeverCrashes if the detector gives no such bound). Tests use it to
  // pick run budgets; algorithms must never look at it.
  [[nodiscard]] virtual Time stabilizationTime() const = 0;
};

using FdPtr = std::shared_ptr<const FailureDetector>;

}  // namespace wfd::fd
