#include "fd/anti_omega.h"

#include <cassert>

#include "common/rng.h"

namespace wfd::fd {

AntiOmegaFd::AntiOmegaFd(const FailurePattern& fp, Params p)
    : n_plus_1_(fp.nProcs()), params_(p) {
  assert(params_.stable_pid >= 0 && params_.stable_pid < n_plus_1_);
  assert(ProcSet::singleton(params_.stable_pid) != fp.correct() &&
         "stable singleton must not equal the correct set");
}

ProcSet AntiOmegaFd::query(Pid p, Time t) const {
  assert(p >= 0 && p < n_plus_1_);
  if (t >= params_.stab_time) return ProcSet::singleton(params_.stable_pid);
  const auto q = static_cast<Pid>(hashedUniform(
      params_.noise_seed ^ 0xA271, static_cast<std::uint64_t>(p) + 1,
      static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(n_plus_1_)));
  return ProcSet::singleton(q);
}

std::uint64_t AntiOmegaFd::keyDigest() const {
  std::uint64_t h = digestString(0xA271, name());
  h = mixDigest(h, static_cast<std::uint64_t>(n_plus_1_));
  h = mixDigest(h, static_cast<std::uint64_t>(params_.stable_pid) + 1);
  h = mixDigest(h, static_cast<std::uint64_t>(params_.stab_time));
  h = mixDigest(h, params_.noise_seed);
  return h;
}

Pid AntiOmegaFd::defaultStablePid(const FailurePattern& fp) {
  const ProcSet faulty = fp.faulty();
  if (!faulty.empty()) return faulty.min();
  // Failure-free: any singleton differs from correct(F) = Pi (n+1 >= 2).
  assert(fp.nProcs() >= 2);
  return 0;
}

FdPtr makeAntiOmega(const FailurePattern& fp, Time stab_time,
                    std::uint64_t noise_seed) {
  AntiOmegaFd::Params p;
  p.stable_pid = AntiOmegaFd::defaultStablePid(fp);
  p.stab_time = stab_time;
  p.noise_seed = noise_seed;
  return std::make_shared<AntiOmegaFd>(fp, p);
}

}  // namespace wfd::fd
