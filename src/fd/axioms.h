// Axiom checkers: certify that a generated history really belongs to D(F).
//
// Every experiment's conclusion hinges on the failure detector history
// being *legal* — a set-agreement run "solved with Upsilon" proves nothing
// if the history violated Upsilon's axioms. These checkers sample H(p, t)
// over a horizon and verify the published definitions:
//   Upsilon^f: outputs non-empty, size >= n+1-f; eventually the same set,
//              != correct(F), permanently at all correct processes.
//   Omega^k:   outputs size k; eventually the same set, containing a
//              correct process, permanently at all correct processes.
//   stability: eventually the same value permanently at all correct
//              processes (Sect. 6.2).
// A check needs a stabilization witness: we use fd.stabilizationTime() and
// verify stability on [witness, horizon].
#pragma once

#include <string>

#include "fd/failure_detector.h"

namespace wfd::fd {

struct AxiomReport {
  bool ok = true;
  std::string violation;  // human-readable first failure
};

AxiomReport checkUpsilonF(const FailureDetector& fd, const FailurePattern& fp,
                          int f, Time horizon);

AxiomReport checkOmegaK(const FailureDetector& fd, const FailurePattern& fp,
                        int k, Time horizon);

// Stability alone (Sect. 6.2): same value at all correct processes from
// the witness time through the horizon.
AxiomReport checkStable(const FailureDetector& fd, const FailurePattern& fp,
                        Time horizon);

// <>P: eventually the output equals exactly faulty(F) at all correct
// processes. With `perfect` also enforce strong accuracy over the whole
// horizon (never suspect a process before it crashes).
AxiomReport checkEventuallyPerfect(const FailureDetector& fd,
                                   const FailurePattern& fp, Time horizon,
                                   bool perfect = false);

}  // namespace wfd::fd
