#include "fd/upsilon.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace wfd::fd {

namespace {

// Deterministic pre-stabilization noise: a set of size >= min_size drawn
// as a pure function of (seed, salt, t) so re-queries agree.
ProcSet noiseSet(int n_plus_1, int min_size, std::uint64_t seed,
                 std::uint64_t salt, Time t) {
  assert(min_size >= 1 && min_size <= n_plus_1);
  // Start from a random base offset and take min_size cyclic members, then
  // add each remaining process independently with probability ~1/2.
  ProcSet s;
  const auto base = static_cast<int>(hashedUniform(
      seed, salt, static_cast<std::uint64_t>(t) * 2 + 0,
      static_cast<std::uint64_t>(n_plus_1)));
  for (int i = 0; i < min_size; ++i) s.insert((base + i) % n_plus_1);
  const std::uint64_t extra_bits = hashedUniform(
      seed, salt, static_cast<std::uint64_t>(t) * 2 + 1,
      ~std::uint64_t{0});
  for (int p = 0; p < n_plus_1; ++p) {
    if (!s.contains(p) && ((extra_bits >> p) & 1) != 0) s.insert(p);
  }
  return s;
}

}  // namespace

UpsilonFd::UpsilonFd(const FailurePattern& fp, int f, Params p)
    : n_plus_1_(fp.nProcs()), f_(f), params_(std::move(p)) {
  assert(f_ >= 1 && f_ <= n_plus_1_ - 1);
  assert(!params_.stable_set.empty() && "Upsilon range excludes the empty set");
  assert(params_.stable_set.size() >= n_plus_1_ - f_ &&
         "Upsilon^f outputs sets of size >= n+1-f");
  assert(params_.stable_set.subsetOf(ProcSet::full(n_plus_1_)));
  assert(params_.stable_set != fp.correct() &&
         "stable set must not be the set of correct processes");
}

ProcSet UpsilonFd::query(Pid p, Time t) const {
  assert(p >= 0 && p < n_plus_1_);
  if (t >= params_.stab_time) return params_.stable_set;
  const std::uint64_t salt =
      params_.per_process_noise ? static_cast<std::uint64_t>(p) + 1 : 0;
  return noiseSet(n_plus_1_, n_plus_1_ - f_, params_.noise_seed ^ 0xC0FFEE,
                  salt, t / std::max<Time>(params_.noise_hold, 1));
}

std::string UpsilonFd::name() const {
  return (f_ == n_plus_1_ - 1) ? "Upsilon" : "Upsilon^" + std::to_string(f_);
}

std::uint64_t UpsilonFd::keyDigest() const {
  // Everything query() can depend on: the class (via the name), the
  // universe, f, and the full Params. The factory-derived stable set is
  // folded directly, so patterns enter through it.
  std::uint64_t h = digestString(0xA11CE, name());
  h = mixDigest(h, static_cast<std::uint64_t>(n_plus_1_));
  h = mixDigest(h, static_cast<std::uint64_t>(f_));
  h = mixDigest(h, params_.stable_set.bits());
  h = mixDigest(h, static_cast<std::uint64_t>(params_.stab_time));
  h = mixDigest(h, params_.noise_seed);
  h = mixDigest(h, params_.per_process_noise ? 1 : 2);
  h = mixDigest(h, static_cast<std::uint64_t>(params_.noise_hold));
  return h;
}

ProcSet UpsilonFd::defaultStableSet(const FailurePattern& fp, int f) {
  const int n_plus_1 = fp.nProcs();
  const ProcSet all = ProcSet::full(n_plus_1);
  if (fp.correct() != all) return all;  // someone faulty: Pi != correct(F)
  (void)f;  // |Pi - {p}| = n >= n+1-f for every f >= 1
  ProcSet s = all;
  s.erase(n_plus_1 - 1);
  return s;
}

FdPtr makeUpsilon(const FailurePattern& fp, Time stab_time,
                  std::uint64_t noise_seed) {
  return makeUpsilonF(fp, fp.nProcs() - 1, stab_time, noise_seed);
}

FdPtr makeUpsilon(const FailurePattern& fp, ProcSet stable_set, Time stab_time,
                  std::uint64_t noise_seed) {
  return makeUpsilonF(fp, fp.nProcs() - 1, std::move(stable_set), stab_time,
                      noise_seed);
}

FdPtr makeUpsilonF(const FailurePattern& fp, int f, Time stab_time,
                   std::uint64_t noise_seed) {
  return makeUpsilonF(fp, f, UpsilonFd::defaultStableSet(fp, f), stab_time,
                      noise_seed);
}

FdPtr makeUpsilonF(const FailurePattern& fp, int f, ProcSet stable_set,
                   Time stab_time, std::uint64_t noise_seed) {
  UpsilonFd::Params p;
  p.stable_set = std::move(stable_set);
  p.stab_time = stab_time;
  p.noise_seed = noise_seed;
  return std::make_shared<UpsilonFd>(fp, f, std::move(p));
}

FdPtr makeUpsilonWithParams(const FailurePattern& fp, int f,
                            UpsilonFd::Params p) {
  return std::make_shared<UpsilonFd>(fp, f, std::move(p));
}

}  // namespace wfd::fd
