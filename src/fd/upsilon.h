// Upsilon and Upsilon^f (paper Sect. 4 and 5.3).
//
// Upsilon^f outputs a set of at least n+1-f processes such that eventually
// (1) the same set U is permanently output at all correct processes, and
// (2) U != correct(F). Upsilon is Upsilon^n: any non-empty set works.
//
// A constructed instance is one *history* H in Upsilon^f(F): before
// `stab_time` it emits arbitrary legal-range noise (possibly different at
// different processes, changing over time — the paper stresses Upsilon
// "might provide random information for an arbitrarily long period");
// from `stab_time` on it emits the stable set U at every process.
#pragma once

#include "fd/failure_detector.h"

namespace wfd::fd {

class UpsilonFd final : public FailureDetector {
 public:
  struct Params {
    ProcSet stable_set;          // U; must satisfy the axioms for (F, f)
    Time stab_time = 0;          // first time the output is guaranteed stable
    std::uint64_t noise_seed = 0;
    bool per_process_noise = true;  // pre-stab outputs may differ across pids
    // Pre-stabilization noise holds each value for this many time units.
    // 1 = flap every step (algorithms mostly see "unstable" and burn
    // rounds); larger values make misleading sets look temporarily stable,
    // which drives runs deep into the gladiator/citizen machinery.
    Time noise_hold = 1;
  };

  // f: resilience; Upsilon proper is f == n (n_plus_1 - 1).
  UpsilonFd(const FailurePattern& fp, int f, Params p);

  ProcSet query(Pid p, Time t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Time stabilizationTime() const override { return params_.stab_time; }
  [[nodiscard]] AxiomSpec axioms() const override {
    return {AxiomSpec::Family::kUpsilonF, f_};
  }
  [[nodiscard]] std::uint64_t keyDigest() const override;

  [[nodiscard]] const ProcSet& stableSet() const { return params_.stable_set; }
  [[nodiscard]] int f() const { return f_; }

  // A legal stable set for (fp, f): Pi if some process is faulty, else
  // Pi minus its largest-id member (size n >= n+1-f for any f >= 1).
  static ProcSet defaultStableSet(const FailurePattern& fp, int f);

 private:
  int n_plus_1_;
  int f_;
  Params params_;
};

// Convenience factories.
FdPtr makeUpsilon(const FailurePattern& fp, Time stab_time,
                  std::uint64_t noise_seed = 0);
FdPtr makeUpsilon(const FailurePattern& fp, ProcSet stable_set, Time stab_time,
                  std::uint64_t noise_seed = 0);
FdPtr makeUpsilonF(const FailurePattern& fp, int f, Time stab_time,
                   std::uint64_t noise_seed = 0);
FdPtr makeUpsilonF(const FailurePattern& fp, int f, ProcSet stable_set,
                   Time stab_time, std::uint64_t noise_seed = 0);
FdPtr makeUpsilonWithParams(const FailurePattern& fp, int f,
                            UpsilonFd::Params p);

}  // namespace wfd::fd
