#include "fd/omega.h"

#include <cassert>

#include "common/rng.h"

namespace wfd::fd {

namespace {

// Deterministic pre-stabilization noise: an arbitrary k-sized set (legal
// range for Omega^k), a pure function of (seed, p, t). k cyclically
// consecutive members from a hashed base, direction also hashed — always
// exactly k distinct pids.
ProcSet noiseKSet(int n_plus_1, int k, std::uint64_t seed, Pid p, Time t) {
  ProcSet s;
  const auto base = static_cast<int>(hashedUniform(
      seed, static_cast<std::uint64_t>(p) + 1, static_cast<std::uint64_t>(t),
      static_cast<std::uint64_t>(n_plus_1)));
  const bool forward = hashedUniform(seed ^ 0xABCD,
                                     static_cast<std::uint64_t>(p) + 1,
                                     static_cast<std::uint64_t>(t), 2) == 0;
  for (int i = 0; i < k; ++i) {
    const int off = forward ? i : -i;
    s.insert(((base + off) % n_plus_1 + n_plus_1) % n_plus_1);
  }
  return s;
}

}  // namespace

OmegaKFd::OmegaKFd(const FailurePattern& fp, int k, Params p)
    : n_plus_1_(fp.nProcs()), k_(k), params_(std::move(p)) {
  assert(k_ >= 1 && k_ <= n_plus_1_);
  assert(params_.stable_leaders.size() == k_ &&
         "Omega^k outputs sets of size exactly k");
  assert(!params_.stable_leaders.intersect(fp.correct()).empty() &&
         "Omega^k's stable set must contain a correct process");
}

ProcSet OmegaKFd::query(Pid p, Time t) const {
  assert(p >= 0 && p < n_plus_1_);
  if (t >= params_.stab_time) return params_.stable_leaders;
  return noiseKSet(n_plus_1_, k_, params_.noise_seed ^ 0x0E6A, p, t);
}

std::string OmegaKFd::name() const {
  return (k_ == 1) ? "Omega" : "Omega^" + std::to_string(k_);
}

std::uint64_t OmegaKFd::keyDigest() const {
  std::uint64_t h = digestString(0x03E6A, name());
  h = mixDigest(h, static_cast<std::uint64_t>(n_plus_1_));
  h = mixDigest(h, static_cast<std::uint64_t>(k_));
  h = mixDigest(h, params_.stable_leaders.bits());
  h = mixDigest(h, static_cast<std::uint64_t>(params_.stab_time));
  h = mixDigest(h, params_.noise_seed);
  return h;
}

ProcSet OmegaKFd::defaultLeaders(const FailurePattern& fp, int k) {
  ProcSet s;
  const Pid leader = fp.correct().min();
  assert(leader >= 0);
  s.insert(leader);
  for (Pid p = 0; p < fp.nProcs() && s.size() < k; ++p) s.insert(p);
  return s;
}

FdPtr makeOmega(const FailurePattern& fp, Time stab_time,
                std::uint64_t noise_seed) {
  return makeOmegaK(fp, 1, stab_time, noise_seed);
}

FdPtr makeOmegaK(const FailurePattern& fp, int k, Time stab_time,
                 std::uint64_t noise_seed) {
  return makeOmegaK(fp, k, OmegaKFd::defaultLeaders(fp, k), stab_time,
                    noise_seed);
}

FdPtr makeOmegaK(const FailurePattern& fp, int k, ProcSet leaders,
                 Time stab_time, std::uint64_t noise_seed) {
  OmegaKFd::Params p;
  p.stable_leaders = std::move(leaders);
  p.stab_time = stab_time;
  p.noise_seed = noise_seed;
  return std::make_shared<OmegaKFd>(fp, k, std::move(p));
}

}  // namespace wfd::fd
