#include "memory/linearizability.h"

#include <cassert>
#include <functional>

namespace wfd::mem {

namespace {

// Shared backtracking core: `apply` attempts to linearize op i in the
// given state (returning false if its result contradicts the state) and
// must undo nothing — state is copied per branch (histories are small).
struct Searcher {
  const std::vector<OpRecord>* ops;
  std::uint32_t all_mask;

  // Is op i minimal in the precedence order among remaining ops? (No
  // remaining op responded before i was invoked.)
  bool minimal(std::uint32_t remaining, std::size_t i) const {
    const Time inv_i = (*ops)[i].inv;
    for (std::size_t j = 0; j < ops->size(); ++j) {
      if (j == i || ((remaining >> j) & 1) == 0) continue;
      if ((*ops)[j].res < inv_i) return false;
    }
    return true;
  }

  template <class State, class Apply>
  bool dfs(std::uint32_t remaining, const State& state,
           const Apply& apply) const {
    if (remaining == 0) return true;
    for (std::size_t i = 0; i < ops->size(); ++i) {
      if (((remaining >> i) & 1) == 0) continue;
      if (!minimal(remaining, i)) continue;
      State next = state;
      if (!apply(i, next)) continue;
      if (dfs(remaining & ~(std::uint32_t{1} << i), next, apply)) return true;
    }
    return false;
  }
};

}  // namespace

bool isLinearizableRegister(const std::vector<OpRecord>& history) {
  assert(history.size() <= 24 && "checker is exponential; keep it small");
  Searcher s{&history, (std::uint32_t{1} << history.size()) - 1};
  const RegVal initial;  // ⊥
  const auto apply = [&](std::size_t i, RegVal& state) {
    const OpRecord& op = history[i];
    if (op.kind == OpRecord::Kind::kWrite) {
      state = op.value;
      return true;
    }
    assert(op.kind == OpRecord::Kind::kRead);
    return state == op.value;
  };
  return s.dfs(s.all_mask, initial, apply);
}

bool isLinearizableSnapshot(const std::vector<OpRecord>& history, int slots) {
  assert(history.size() <= 24 && "checker is exponential; keep it small");
  Searcher s{&history, (std::uint32_t{1} << history.size()) - 1};
  const std::vector<RegVal> initial(static_cast<std::size_t>(slots));
  const auto apply = [&](std::size_t i, std::vector<RegVal>& state) {
    const OpRecord& op = history[i];
    if (op.kind == OpRecord::Kind::kUpdate) {
      state.at(static_cast<std::size_t>(op.slot)) = op.value;
      return true;
    }
    assert(op.kind == OpRecord::Kind::kScan);
    if (op.view.size() != state.size()) return false;
    for (std::size_t k = 0; k < state.size(); ++k) {
      if (!(state[k] == op.view[k])) return false;
    }
    return true;
  };
  return s.dfs(s.all_mask, initial, apply);
}

}  // namespace wfd::mem
