// Multi-writer multi-reader atomic register from single-writer cells
// (Vitányi–Awerbuch style, unbounded timestamps).
//
// The paper treats MWMR atomic registers as the base shared object. The
// simulator's registers are natively MWMR; this module additionally
// discharges the classical construction one level down: every process
// owns a single-writer cell holding (timestamp, writer-id, value);
// writers collect, pick a fresh timestamp, and publish; readers collect,
// pick the (ts, id)-maximal entry, and write it back through their own
// cell before returning (the write-back is what makes concurrent reads
// atomic rather than merely regular).
//
// Cost: one write + n+1 reads per write; n+1 reads + one write per read.
#pragma once

#include <utility>

#include "sim/env.h"

namespace wfd::mem {

using sim::Coro;
using sim::Env;
using sim::ObjKey;
using sim::Unit;

struct MwmrRead {
  RegVal value;          // ⊥ if never written
  std::int64_t ts = 0;   // linearization witness: (ts, writer) pairs are
  Pid writer = -1;       // totally ordered and monotone along any read
};

Coro<Unit> mwmrWrite(Env& env, ObjKey key, const RegVal& v);
Coro<MwmrRead> mwmrRead(Env& env, ObjKey key);

}  // namespace wfd::mem
