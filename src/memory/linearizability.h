// Linearizability checking (Herlihy & Wing [15], cited by the paper as
// the correctness condition for its shared objects).
//
// A small Wing–Gong-style backtracking checker for concurrent histories
// of a single register or a single snapshot object. Tests record
// operation intervals from real runs (invoke/response trace notes) and
// ask whether some linearization — a total order extending the
// real-time precedence order — matches the sequential specification:
//   register: a read returns the latest linearized write (⊥ if none);
//   snapshot: a scan returns, per slot, the latest linearized update.
//
// Exponential in the worst case; intended for the small adversarial
// histories the substrate tests construct (<= ~24 operations).
#pragma once

#include <vector>

#include "common/reg_val.h"
#include "common/types.h"

namespace wfd::mem {

struct OpRecord {
  enum class Kind { kWrite, kRead, kUpdate, kScan };
  Pid pid = -1;
  Time inv = 0;   // at or before the operation's first atomic step
  Time res = 0;   // at or after its last atomic step
  Kind kind = Kind::kWrite;
  int slot = -1;                // update: which slot
  RegVal value;                 // write/update argument, read result
  std::vector<RegVal> view;     // scan result
};

// Single register histories (kWrite/kRead records).
bool isLinearizableRegister(const std::vector<OpRecord>& history);

// Single snapshot-object histories (kUpdate/kScan records).
bool isLinearizableSnapshot(const std::vector<OpRecord>& history, int slots);

}  // namespace wfd::mem
