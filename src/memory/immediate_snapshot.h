// One-shot immediate snapshot (Borowsky–Gafni), from registers.
//
// The f-resilient set-agreement impossibility the paper builds on ([2])
// was proved through the immediate-snapshot model; we ship the object as
// part of the substrate inventory. A participant writes its value and
// obtains a view S such that:
//   Self-inclusion: own value in S.
//   Containment:    any two views are ordered by inclusion.
//   Immediacy:      if j's value is in S_i, then S_j is a subset of S_i.
// (Immediacy is what plain atomic snapshots lack, and why IS is the
// combinatorially clean object of the topological proofs.)
//
// Classic level-descent construction: starting at level n+1, repeatedly
// descend one level, publish (value, level), collect, and stop when at
// least `level` processes sit at or below the current level.
#pragma once

#include <vector>

#include "sim/env.h"

namespace wfd::mem {

using sim::Coro;
using sim::Env;
using sim::ObjKey;

// Participate in the one-shot immediate snapshot named `key` with value
// v. Returns an (n+1)-slot view: slot j holds p_j's value if p_j is in
// the returned view, ⊥ otherwise. Each process may invoke a given
// instance at most once.
Coro<std::vector<RegVal>> immediateSnapshot(Env& env, ObjKey key,
                                            const RegVal& v);

}  // namespace wfd::mem
