#include "memory/immediate_snapshot.h"

#include <string>

namespace wfd::mem {

namespace {

sim::ObjId cellReg(Env& env, const ObjKey& key, int j) {
  ObjKey k = key;
  k.append("#is");
  k.append(j);
  return env.reg(k);
}

}  // namespace

Coro<std::vector<RegVal>> immediateSnapshot(Env& env, ObjKey key,
                                            const RegVal& v) {
  const int m = env.nProcs();
  int level = m + 1;
  for (;;) {
    --level;
    {
      std::vector<RegVal> cell;
      cell.push_back(v);
      cell.emplace_back(static_cast<Value>(level));
      co_await env.write(cellReg(env, key, env.me()), RegVal::tuple(std::move(cell)));
    }
    // Collect: who is at or below my level?
    std::vector<RegVal> view(static_cast<std::size_t>(m));
    int at_or_below = 0;
    for (int j = 0; j < m; ++j) {
      const RegVal c = (co_await env.read(cellReg(env, key, j))).scalar;
      if (c.isBottom()) continue;
      const auto& t = c.asTuple();
      if (t[1].asInt() <= level) {
        view[static_cast<std::size_t>(j)] = t[0];
        ++at_or_below;
      }
    }
    if (at_or_below >= level) co_return view;
    // Not enough company at this level: descend. level >= 1 always
    // terminates (self counts at level 1).
  }
}

}  // namespace wfd::mem
