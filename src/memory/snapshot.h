// Atomic snapshot objects (Afek, Attiya, Dolev, Gafni, Merritt, Shavit).
//
// Fig. 2 of the paper relies on single-writer atomic snapshots, and on the
// fact that they are implementable from registers alone. We provide both:
//   * kNative — the object is a base shared object; update and scan each
//     cost one atomic step (the idealized oracle-like object).
//   * kAfek   — the wait-free construction from registers: scans are
//     double collects, with "borrowed" embedded scans after a writer is
//     observed moving twice. This is the implementation that discharges
//     the paper's "atomic snapshots can be implemented from registers"
//     assumption ([1] in the paper).
// Both flavors guarantee that scans are related by containment, which is
// the property the Fig. 2 termination proof leans on.
//
// Slots are single-writer: slot i is only ever updated by process p_i
// (matching the paper's A[r][k][i] usage).
#pragma once

#include <vector>

#include "sim/env.h"

namespace wfd::mem {

using sim::Coro;
using sim::Env;
using sim::ObjKey;
using sim::SnapshotFlavor;
using sim::Unit;

struct SnapshotHandle {
  ObjKey key;
  int slots = 0;
  SnapshotFlavor flavor = SnapshotFlavor::kNative;
};

// Handle construction is free (naming, not memory access). The 2-argument
// form uses the world's configured default flavor.
SnapshotHandle makeSnapshot(Env& env, ObjKey key, int slots);
SnapshotHandle makeSnapshot(ObjKey key, int slots, SnapshotFlavor flavor);

// update(i, v) / scan() per the paper's object definition. The RegVal is
// taken by const& (coroutine parameters must be trivially copyable or
// references — see sim/object_table.h); the referenced value only needs
// to live until the returned Coro is awaited, which every call site does
// within the same full expression.
Coro<Unit> snapshotUpdate(Env& env, const SnapshotHandle& h, int slot,
                          const RegVal& v);
Coro<std::vector<RegVal>> snapshotScan(Env& env, const SnapshotHandle& h);

// ---- Small helpers over scan results ----
int nonBottomCount(const std::vector<RegVal>& slots);
std::vector<Value> distinctValues(const std::vector<RegVal>& slots);
Value minValue(const std::vector<RegVal>& slots);  // kBottomValue if empty

}  // namespace wfd::mem
