#include <algorithm>
#include <cassert>
#include <set>
#include <string>

#include "memory/snapshot.h"

namespace wfd::mem {

namespace {

// Register holding slot i's cell: a tuple (seq, value, embedded-scan).
sim::ObjId cellReg(Env& env, const SnapshotHandle& h, int slot) {
  ObjKey k = h.key;
  k.append("#cell");
  k.append(slot);
  return env.reg(k);
}

std::int64_t cellSeq(const RegVal& cell) {
  return cell.isBottom() ? 0 : cell.asTuple()[0].asInt();
}

RegVal cellValue(const RegVal& cell) {
  return cell.isBottom() ? RegVal() : cell.asTuple()[1];
}

// One collect: read the m cell registers in index order (m atomic steps).
Coro<std::vector<RegVal>> collect(Env& env, const SnapshotHandle& h) {
  std::vector<RegVal> cells;
  cells.reserve(static_cast<std::size_t>(h.slots));
  for (int i = 0; i < h.slots; ++i) {
    auto r = co_await env.read(cellReg(env, h, i));
    cells.push_back(std::move(r.scalar));
  }
  co_return cells;
}

// Wait-free scan: repeat collects until either two successive collects are
// identical (a clean double collect — the values were simultaneously
// present) or some writer has been observed moving twice, in which case
// its most recent cell embeds a scan taken entirely within our interval
// and we return that ("borrowed" scan).
Coro<std::vector<RegVal>> afekScan(Env& env, const SnapshotHandle& h) {
  std::vector<int> moved(static_cast<std::size_t>(h.slots), 0);
  std::vector<RegVal> prev = co_await collect(env, h);
  for (;;) {
    std::vector<RegVal> cur = co_await collect(env, h);
    bool clean = true;
    for (int i = 0; i < h.slots; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (cellSeq(prev[idx]) != cellSeq(cur[idx])) {
        clean = false;
        if (moved[idx] >= 1) {
          // Second observed move of writer i: borrow its embedded scan.
          const auto& embedded = cur[idx].asTuple()[2].asTuple();
          co_return std::vector<RegVal>(embedded.begin(), embedded.end());
        }
        moved[idx] = 1;
      }
    }
    if (clean) {
      std::vector<RegVal> out;
      out.reserve(static_cast<std::size_t>(h.slots));
      for (const auto& c : cur) out.push_back(cellValue(c));
      co_return out;
    }
    prev = std::move(cur);
  }
}

// Wait-free update: embed a fresh scan so that concurrent scanners can
// borrow it, then publish (seq+1, v, scan) in one register write.
// (RegVal by const&: coroutine parameters must be trivially copyable or
// references; see the ObjKey comment in sim/object_table.h.)
Coro<Unit> afekUpdate(Env& env, const SnapshotHandle& h, int slot,
                      const RegVal& v) {
  std::vector<RegVal> view = co_await afekScan(env, h);
  // The slot is single-writer, so re-reading our own cell for the sequence
  // number is race-free.
  auto own = co_await env.read(cellReg(env, h, slot));
  const std::int64_t seq = cellSeq(own.scalar) + 1;
  // Built element-by-element: GCC mis-handles braced-init-list temporaries
  // inside coroutine frames.
  std::vector<RegVal> cell;
  cell.emplace_back(seq);
  cell.push_back(v);
  cell.push_back(RegVal::tuple(std::move(view)));
  co_await env.write(cellReg(env, h, slot), RegVal::tuple(std::move(cell)));
  co_return Unit{};
}

}  // namespace

SnapshotHandle makeSnapshot(Env& env, ObjKey key, int slots) {
  return SnapshotHandle{std::move(key), slots, env.snapshotFlavor()};
}

SnapshotHandle makeSnapshot(ObjKey key, int slots, SnapshotFlavor flavor) {
  return SnapshotHandle{std::move(key), slots, flavor};
}

Coro<Unit> snapshotUpdate(Env& env, const SnapshotHandle& h, int slot,
                          const RegVal& v) {
  assert(slot >= 0 && slot < h.slots);
  if (h.flavor == SnapshotFlavor::kAfek) {
    co_return co_await afekUpdate(env, h, slot, v);
  }
  co_await env.snapUpdate(env.snap(h.key, h.slots), slot, v);
  co_return Unit{};
}

Coro<std::vector<RegVal>> snapshotScan(Env& env, const SnapshotHandle& h) {
  if (h.flavor == SnapshotFlavor::kAfek) {
    co_return co_await afekScan(env, h);
  }
  auto r = co_await env.snapScan(env.snap(h.key, h.slots));
  co_return std::move(r.snapshot);
}

int nonBottomCount(const std::vector<RegVal>& slots) {
  int c = 0;
  for (const auto& v : slots) {
    if (!v.isBottom()) ++c;
  }
  return c;
}

std::vector<Value> distinctValues(const std::vector<RegVal>& slots) {
  std::set<Value> s;
  for (const auto& v : slots) {
    if (v.isInt()) s.insert(v.asInt());
  }
  return {s.begin(), s.end()};
}

Value minValue(const std::vector<RegVal>& slots) {
  Value best = kBottomValue;
  for (const auto& v : slots) {
    if (v.isInt() && (best == kBottomValue || v.asInt() < best)) {
      best = v.asInt();
    }
  }
  return best;
}

}  // namespace wfd::mem
