#include "memory/mwmr.h"

namespace wfd::mem {

namespace {

sim::ObjId cellReg(Env& env, const ObjKey& key, int j) {
  ObjKey k = key;
  k.append("#mw");
  k.append(j);
  return env.reg(k);
}

struct Max {
  std::int64_t ts = 0;
  Pid writer = -1;
  RegVal value;
};

// Collect all cells and return the (ts, writer)-maximal entry.
Coro<Max> collectMax(Env& env, const ObjKey& key) {
  Max best;
  const int m = env.nProcs();
  for (int j = 0; j < m; ++j) {
    const RegVal c = (co_await env.read(cellReg(env, key, j))).scalar;
    if (c.isBottom()) continue;
    const auto& t = c.asTuple();
    const std::int64_t ts = t[0].asInt();
    const Pid w = static_cast<Pid>(t[1].asInt());
    if (ts > best.ts || (ts == best.ts && w > best.writer)) {
      best.ts = ts;
      best.writer = w;
      best.value = t[2];
    }
  }
  co_return best;
}

RegVal makeCell(std::int64_t ts, Pid writer, const RegVal& v) {
  std::vector<RegVal> cell;
  cell.emplace_back(ts);
  cell.emplace_back(static_cast<Value>(writer));
  cell.push_back(v);
  return RegVal::tuple(std::move(cell));
}

}  // namespace

Coro<Unit> mwmrWrite(Env& env, ObjKey key, const RegVal& v) {
  const Max cur = co_await collectMax(env, key);
  co_await env.write(cellReg(env, key, env.me()),
                     makeCell(cur.ts + 1, env.me(), v));
  co_return Unit{};
}

Coro<MwmrRead> mwmrRead(Env& env, ObjKey key) {
  const Max cur = co_await collectMax(env, key);
  MwmrRead out;
  if (cur.writer >= 0) {
    // Write back what we are about to return: a later-starting read must
    // not see an older value than ours (atomicity of concurrent reads).
    co_await env.write(cellReg(env, key, env.me()),
                       makeCell(cur.ts, cur.writer, cur.value));
    out.value = cur.value;
    out.ts = cur.ts;
    out.writer = cur.writer;
  }
  co_return out;
}

}  // namespace wfd::mem
