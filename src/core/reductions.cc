#include "core/reductions.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace wfd::core {

Coro<Unit> omegaKToUpsilonF(Env& env) {
  const int n_plus_1 = env.nProcs();
  for (;;) {
    const ProcSet leaders = (co_await env.queryFd()).scalar.asSet();
    // Eventually the same k-set containing a correct process is output
    // everywhere, so its complement (size n+1-k) cannot be the correct
    // set: it misses that correct leader.
    env.publishIfChanged(RegVal(leaders.complement(n_plus_1)));
  }
}

Coro<Unit> upsilonToOmegaTwoProcs(Env& env) {
  assert(env.nProcs() == 2);
  for (;;) {
    const ProcSet u = (co_await env.queryFd()).scalar.asSet();
    const ProcSet comp = u.complement(2);
    // U != correct(F). If U is a proper singleton, its complement is the
    // other process, which U's axiom makes a safe leader choice; if
    // U = {p1,p2} then both processes cannot be correct, so electing
    // oneself is eventually right for the unique correct process.
    if (comp.size() == 1) {
      env.publishIfChanged(RegVal(comp));
    } else {
      env.publishIfChanged(RegVal(ProcSet::singleton(env.me())));
    }
  }
}

Coro<Unit> upsilon1ToOmega(Env& env) {
  const int n_plus_1 = env.nProcs();
  const sim::ObjId own_hb = env.reg(sim::ObjKey{"red.hb", env.me()});
  std::int64_t ts = 0;
  for (;;) {
    // Ever-growing timestamp heartbeat.
    ++ts;
    co_await env.write(own_hb, RegVal(ts));

    const ProcSet u = (co_await env.queryFd()).scalar.asSet();
    if (u.size() == n_plus_1 - 1) {
      // Proper subset of size n: elect Pi - U. Upsilon^1's axiom (U is
      // not the correct set, |correct| >= n) forces Pi - U correct.
      env.publishIfChanged(RegVal(u.complement(n_plus_1)));
      continue;
    }
    // U = Pi: exactly one process is faulty. Elect the smallest id among
    // the n processes with the highest timestamps: the faulty process's
    // timestamp eventually freezes below every correct one's.
    std::vector<std::pair<std::int64_t, Pid>> hb;
    hb.reserve(static_cast<std::size_t>(n_plus_1));
    for (Pid q = 0; q < n_plus_1; ++q) {
      const RegVal h =
          (co_await env.read(env.reg(sim::ObjKey{"red.hb", q}))).scalar;
      hb.emplace_back(h.isBottom() ? 0 : h.asInt(), q);
    }
    // Highest timestamps first; drop the single lowest.
    std::sort(hb.begin(), hb.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    Pid leader = n_plus_1;  // min id among the first n entries
    for (int i = 0; i < n_plus_1 - 1; ++i) leader = std::min(leader, hb[static_cast<std::size_t>(i)].second);
    env.publishIfChanged(RegVal(ProcSet::singleton(leader)));
  }
}

Coro<Unit> diamondPToOmega(Env& env) {
  const int n_plus_1 = env.nProcs();
  for (;;) {
    const ProcSet suspected = (co_await env.queryFd()).scalar.asSet();
    const ProcSet alive = suspected.complement(n_plus_1);
    // Eventually suspected = faulty(F) exactly, so the smallest
    // unsuspected process is the smallest correct one — the same correct
    // leader everywhere. (If everything is suspected — possible only as
    // pre-stabilization noise — fall back to self.)
    const Pid leader = alive.empty() ? env.me() : alive.min();
    env.publishIfChanged(RegVal(ProcSet::singleton(leader)));
  }
}

}  // namespace wfd::core
