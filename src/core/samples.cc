#include "core/samples.h"

namespace wfd::core {

bool isFResilientSample(DetectorFamily family, int n_plus_1, int f,
                        std::uint64_t param, const ConstantSigma& sigma) {
  const ProcSet& d = sigma.d;
  const ProcSet& r = sigma.recurring;
  // Structural requirements common to every sample: enough recurring
  // processes, and a realizable failure pattern with correct(F) = R.
  if (r.size() < n_plus_1 - f) return false;
  if (r.empty() || !r.subsetOf(ProcSet::full(n_plus_1))) return false;
  if (r.complement(n_plus_1).size() > f) return false;  // F must be in E_f

  switch (family) {
    case DetectorFamily::kOmegaK:
      return d.size() == static_cast<int>(param) && !d.intersect(r).empty();
    case DetectorFamily::kUpsilonF:
      return !d.empty() && d.size() >= n_plus_1 - f && d != r;
    case DetectorFamily::kAntiOmegaStable:
      return d.size() == 1 && d != r;
    case DetectorFamily::kEventuallyPerfect:
    case DetectorFamily::kPerfect:
      return d == r.complement(n_plus_1);
    case DetectorFamily::kDummy:
      return d == ProcSet::fromBits(param);
  }
  return false;
}

}  // namespace wfd::core
