#include "core/omega_impl.h"

#include <vector>

namespace wfd::core {

Coro<Unit> omegaFromEventualSynchrony(Env& env) {
  const int n_plus_1 = env.nProcs();
  const sim::ObjId own_hb = env.reg(sim::ObjKey{"psync.hb", env.me()});

  std::int64_t hb = 0;
  std::vector<std::int64_t> last_seen(static_cast<std::size_t>(n_plus_1), -1);
  std::vector<std::int64_t> missed(static_cast<std::size_t>(n_plus_1), 0);
  std::vector<std::int64_t> timeout(static_cast<std::size_t>(n_plus_1), 4);
  std::vector<bool> suspected(static_cast<std::size_t>(n_plus_1), false);

  for (;;) {
    ++hb;
    co_await env.write(own_hb, RegVal(hb));

    for (Pid j = 0; j < n_plus_1; ++j) {
      if (j == env.me()) continue;
      const auto ji = static_cast<std::size_t>(j);
      const RegVal v =
          (co_await env.read(env.reg(sim::ObjKey{"psync.hb", j}))).scalar;
      const std::int64_t hj = v.isBottom() ? 0 : v.asInt();
      if (hj != last_seen[ji]) {
        last_seen[ji] = hj;
        missed[ji] = 0;
        if (suspected[ji]) {
          // False suspicion: j is alive after all. Adapt so that, after
          // GST, the timeout eventually exceeds j's true inter-heartbeat
          // gap and never fires again.
          suspected[ji] = false;
          timeout[ji] *= 2;
        }
      } else if (++missed[ji] > timeout[ji]) {
        suspected[ji] = true;
      }
    }

    Pid leader = env.me();  // never suspect oneself
    for (Pid j = 0; j < n_plus_1; ++j) {
      if (j < leader && !suspected[static_cast<std::size_t>(j)]) leader = j;
    }
    env.publishIfChanged(RegVal(ProcSet::singleton(leader)));
  }
}

}  // namespace wfd::core
