// Candidate Upsilon -> Omega_n extraction algorithms, built to be defeated.
//
// Theorem 1 states no algorithm can extract Omega_n from Upsilon (n >= 2).
// An impossibility cannot be executed, but its *proof adversary* can: for
// any given candidate, the adversary of Theorem 1 constructs a run where
// the candidate's output never legally stabilizes. We ship the natural
// candidates a practitioner would try; core/adversary.h runs the proof's
// construction against them and measures the failure.
//
// Convention: a candidate publishes a singleton {pc} meaning "my Omega_n
// output is Pi - {pc}" — i.e. it claims pc is not the only correct
// process. (Extracting Omega_n is equivalent to eventually agreeing on
// such a pc; see the Theorem 1 proof.)
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// "The stalest process is surely not the only correct one": heartbeat,
// then publish pc = argmin of observed timestamps (lowest id on ties).
// Adaptive — reacts to scheduling — so the solo-chase adversary drives
// its output around forever.
Coro<Unit> candidateLowestHeartbeat(Env& env);

// "Upsilon's complement knows": publish pc = min(Pi - U) when U is a
// proper subset (correct for f = 1, per the §5.3 reduction), else a fixed
// process. Static — the solo chase stalls on it — but the crash-exposure
// run (all of Upsilon's stable set faulty) catches it outputting a pc
// whose complement contains no correct process.
Coro<Unit> candidateComplementOrStatic(Env& env);

}  // namespace wfd::core
