#include "core/bg_simulation.h"

#include <cassert>

#include "core/safe_agreement.h"
#include "memory/snapshot.h"

namespace wfd::core {

namespace {

// Grid slot for (simulator i, simulated j).
int gridSlot(const BgConfig& cfg, int i, int j) {
  return i * cfg.simulated + j;
}

// Project a raw grid scan into a simulated view: per simulated process,
// the value carried by the highest-round cell across simulator columns.
// Also reports each process's highest visible round.
struct Projected {
  std::vector<RegVal> view;    // per simulated process (⊥ if none)
  std::vector<int> round;      // highest round seen per process (0 if none)
};

Projected project(const BgConfig& cfg, const std::vector<RegVal>& grid) {
  Projected out;
  out.view.resize(static_cast<std::size_t>(cfg.simulated));
  out.round.resize(static_cast<std::size_t>(cfg.simulated), 0);
  for (int i = 0; i < cfg.simulators; ++i) {
    for (int j = 0; j < cfg.simulated; ++j) {
      const RegVal& cell = grid[static_cast<std::size_t>(gridSlot(cfg, i, j))];
      if (cell.isBottom()) continue;
      const auto& t = cell.asTuple();
      const auto r = static_cast<int>(t[0].asInt());
      if (r > out.round[static_cast<std::size_t>(j)]) {
        out.round[static_cast<std::size_t>(j)] = r;
        out.view[static_cast<std::size_t>(j)] = t[1];
      }
    }
  }
  return out;
}

RegVal gridCell(int round, const RegVal& v) {
  std::vector<RegVal> cell;
  cell.emplace_back(static_cast<Value>(round));
  cell.push_back(v);
  return RegVal::tuple(std::move(cell));
}

}  // namespace

Coro<Unit> bgSimulator(Env& env, const BgConfig& cfg,
                       const SnapshotProgram& prog) {
  assert(static_cast<int>(cfg.inputs.size()) == cfg.simulated);
  assert(env.me() < cfg.simulators);
  const auto grid = mem::makeSnapshot(
      env, sim::ObjKey{"bg.grid"}, cfg.simulators * cfg.simulated);

  // Per simulated process: current round, the update value of that
  // round, whether my column already reflects it, whether I proposed to
  // the round's safe agreement, and the decision once known.
  struct SimState {
    int round = 1;
    RegVal update;
    bool column_written = false;
    bool proposed = false;
    std::optional<Value> decision;
  };
  std::vector<SimState> st(static_cast<std::size_t>(cfg.simulated));
  for (int j = 0; j < cfg.simulated; ++j) {
    st[static_cast<std::size_t>(j)].update =
        prog.first_update(j, cfg.inputs[static_cast<std::size_t>(j)]);
  }

  int undecided = cfg.simulated;
  for (Time iter = 0; iter < cfg.max_iterations && undecided > 0; ++iter) {
    for (int j = 0; j < cfg.simulated; ++j) {
      auto& s = st[static_cast<std::size_t>(j)];
      if (s.decision.has_value()) continue;

      if (!s.column_written) {
        // My column mirrors j's round-r update (deterministic, hence
        // identical across simulators).
        co_await mem::snapshotUpdate(env, grid,
                                     gridSlot(cfg, env.me(), j),
                                     gridCell(s.round, s.update));
        s.column_written = true;
      }
      const sim::ObjKey sa_key{"bg.sa", j, s.round};
      if (!s.proposed) {
        // Candidate view: a real grid scan, projected. Containment of
        // real scans carries over to the projection, so whichever
        // candidate safe agreement picks, the simulated views form a
        // legal snapshot execution.
        const auto raw = co_await mem::snapshotScan(env, grid);
        const Projected p = project(cfg, raw);
        co_await saProposeVal(env, sa_key,
                              RegVal::tuple(std::vector<RegVal>(
                                  p.view.begin(), p.view.end())));
        s.proposed = true;
      }
      const auto agreed = co_await saTryResolveVal(env, sa_key);
      if (!agreed.has_value()) continue;  // blocked (for now) — help others

      const auto& view = agreed->asTuple();
      const SnapshotProgram::Step step =
          prog.on_scan(j, s.round, cfg.inputs[static_cast<std::size_t>(j)],
                       std::vector<RegVal>(view.begin(), view.end()));
      if (const auto* dec = std::get_if<Value>(&step)) {
        s.decision = *dec;
        --undecided;
        env.note("bg.decide." + std::to_string(j), RegVal(*dec));
      } else {
        s.update = std::get<RegVal>(step);
        ++s.round;
        s.column_written = false;
        s.proposed = false;
      }
    }
  }
  co_return Unit{};
}

Value caEncode(Value v, bool committed) { return v * 2 + (committed ? 1 : 0); }

std::pair<Value, bool> caDecode(Value encoded) {
  return {encoded / 2, (encoded % 2) != 0};
}

namespace {

// Uniform announcement: (phase, value, phase-1-was-unanimous).
RegVal caAnnounce(int phase, Value v, bool unanimous) {
  std::vector<RegVal> e;
  e.emplace_back(static_cast<Value>(phase));
  e.emplace_back(v);
  e.emplace_back(unanimous);
  return RegVal::tuple(std::move(e));
}

}  // namespace

SnapshotProgram commitAdoptProgram() {
  SnapshotProgram p;
  p.first_update = [](int, Value input) {
    return caAnnounce(1, input, true);
  };
  p.on_scan = [](int, int r, Value input,
                 const std::vector<RegVal>& view) -> SnapshotProgram::Step {
    if (r == 1) {
      // Phase 1: unanimity = all announced values (any phase — a value
      // never changes between phases) are equal.
      bool unanimous = true;
      for (const auto& v : view) {
        if (!v.isBottom() && v.asTuple()[1].asInt() != input) {
          unanimous = false;
        }
      }
      return caAnnounce(2, input, unanimous);
    }
    // Phase 2: commit iff every phase-2 announcement visible (own one
    // included, by self-inclusion of the agreed view) is
    // unanimity-tagged and they all carry one value; otherwise adopt a
    // tagged value if any is visible, else keep the input. Containment
    // of the agreed views makes commits unique and binding (see the
    // correctness notes in bg_simulation.h's tests).
    bool all_phase2_unanimous = true;
    bool single = true;
    Value committed_val = kBottomValue;
    Value tagged = kBottomValue;
    for (const auto& v : view) {
      if (v.isBottom()) continue;
      const auto& t = v.asTuple();
      if (t[0].asInt() != 2) continue;  // straggler still in phase 1
      const Value val = t[1].asInt();
      const bool uni = t[2].asBool();
      if (!uni) all_phase2_unanimous = false;
      if (uni) tagged = val;
      if (committed_val == kBottomValue) {
        committed_val = val;
      } else if (committed_val != val) {
        single = false;
      }
    }
    if (all_phase2_unanimous && single && committed_val != kBottomValue) {
      return caEncode(committed_val, true);
    }
    return caEncode(tagged != kBottomValue ? tagged : input, false);
  };
  return p;
}

SnapshotProgram minOfQuorumProgram(int quorum) {
  SnapshotProgram p;
  p.first_update = [](int, Value input) { return RegVal(input); };
  p.on_scan = [quorum](int, int, Value input,
                       const std::vector<RegVal>& view)
      -> SnapshotProgram::Step {
    if (mem::nonBottomCount(view) >= quorum) {
      return mem::minValue(view);  // decide
    }
    // Quorum not visible yet: re-announce the input and scan again (live
    // as long as at least `quorum` simulated processes are unblocked).
    return RegVal(input);
  };
  return p;
}

}  // namespace wfd::core
