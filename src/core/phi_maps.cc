#include "core/phi_maps.h"

namespace wfd::core {

namespace {

class FnPhi final : public PhiMap {
 public:
  FnPhi(std::string name, std::function<PhiResult(const ProcSet&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  PhiResult map(const ProcSet& d) const override { return fn_(d); }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<PhiResult(const ProcSet&)> fn_;
};

}  // namespace

PhiPtr phiOmegaK(int n_plus_1) {
  return std::make_shared<FnPhi>(
      "phi[Omega^k]", [n_plus_1](const ProcSet& d) {
        // A history where d is output forever while every member of d is
        // faulty violates Omega^k. If d = Pi (only possible when k = n+1)
        // no process set is left; fall back to excluding p1's solo run,
        // which Omega^{n+1} = "output Pi" cannot contradict — but
        // Omega^{n+1} is trivial and never reaches this map in practice.
        ProcSet s = d.complement(n_plus_1);
        if (s.empty()) s = ProcSet::singleton(0);
        return PhiResult{s, 0};
      });
}

PhiPtr phiUpsilonSelf() {
  return std::make_shared<FnPhi>("phi[Upsilon^f]", [](const ProcSet& d) {
    // Upsilon^f never stabilizes on the correct set itself, so a run with
    // correct(F) = d observing d forever is not a sample.
    return PhiResult{d, 0};
  });
}

PhiPtr phiAntiOmega() {
  return std::make_shared<FnPhi>("phi[anti-Omega]", [](const ProcSet& d) {
    return PhiResult{d, 0};
  });
}

PhiPtr phiEventuallyPerfect(int n_plus_1, int f) {
  return std::make_shared<FnPhi>(
      "phi[<>P]", [n_plus_1, f](const ProcSet& d) {
        if (d.empty()) {
          ProcSet s = ProcSet::full(n_plus_1);
          s.erase(n_plus_1 - 1);
          return PhiResult{s, 0};
        }
        ProcSet s = d;
        for (Pid p = 0; p < n_plus_1 && s.size() < n_plus_1 - f; ++p) {
          s.insert(p);
        }
        return PhiResult{s, 0};
      });
}

PhiPtr phiWithInflatedW(PhiPtr base, int w) {
  return std::make_shared<FnPhi>(
      base->name() + "+w" + std::to_string(w),
      [base, w](const ProcSet& d) {
        PhiResult r = base->map(d);
        r.w = w;
        return r;
      });
}

}  // namespace wfd::core
