// Consensus boosting: n+1-process consensus from n-process consensus
// objects, registers, and Omega_n (the context of Corollary 4).
//
// Guerraoui–Kouznetsov [13] proved Omega_n is the weakest failure
// detector for this boosting problem, and Yang–Neiger–Gafni [21] gave
// Omega_n-based algorithms; the paper's Corollary 4 contrasts it with
// n-set-agreement-from-registers, which the strictly weaker Upsilon
// already solves. This module supplies the boosting side:
//
//   round r:  (v, c) := commit-adopt[r](v); commit -> write D, decide.
//             L := Omega_n output (an n-set; one process excluded).
//             if me in L: w := Cons[r][L].propose(v)   (n ports: only
//                         L's members touch this object);
//                         Ann[r] := w; v := w.
//             else:       wait for Ann[r] (re-checking Omega_n and D);
//                         adopt it.
//
// Once Omega_n stabilizes on L containing a correct process, every
// correct process enters some round r with the n-process consensus
// winner w as its value, and commit-adopt[r+1] commits. Safety rests on
// commit-adopt alone, so pre-stabilization nonsense is harmless.
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// The process automaton. Requires an Omega_n (= Omega^{n}) detector with
// k = n = env.nProcs() - 1 installed. Uses n-ported consensus base
// objects; the object table asserts the port discipline.
Coro<Unit> consensusBoosting(Env& env, Value v);

}  // namespace wfd::core
