// Fig. 3: transforming any stable f-non-trivial failure detector D into
// Upsilon^f (the necessity half of Theorem 10).
//
// Every process runs two logically parallel tasks, interleaved here into
// one automaton loop:
//   Task 1: periodically query D and write the value with an
//           ever-increasing timestamp into register R[i].
//   Task 2: proceed in rounds. For the currently observed stable value d,
//           deterministically evaluate (S, w) = phi_D(d) (Corollary 9).
//           Set the emulated output to Pi; if S != Pi, wait until w
//           batches of steps are observed in which every process reported
//           (by advancing R[j] twice) that D output d — or until some
//           process publishes its completed observation in Obs[j] — then
//           set the output to S. Seeing any reported value != d starts a
//           new round.
// Why the output is legal (Theorem 10 proof): if the emulation sticks at
// Pi because some R[j] stops advancing, then p_j is faulty, so
// Pi != correct(F). If it reaches S, the observed batches would make a
// run with correct(F) = correct(sigma) an f-resilient sample of D,
// contradicting phi_D's defining property — so S != correct(F).
//
// The non-constructive step of the paper (the existence of phi_D) is the
// PhiMap argument; see core/phi_maps.h for the shipped instances.
#pragma once

#include "core/phi_maps.h"
#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// The reduction automaton. Publishes the emulated Upsilon^f output via
// env.publish(); runs forever. Requires the source detector D installed
// in the world and phi to be a correct phi_D for it.
Coro<Unit> extractUpsilonF(Env& env, PhiPtr phi);

}  // namespace wfd::core
