#include "core/kconverge.h"

#include <cassert>

namespace wfd::core {

namespace {

using mem::SnapshotHandle;

// B-entry layout: (committed-tag, value, U-set as tuple of ints).
RegVal makeEntry(bool tag_c, Value v, const std::vector<Value>& u) {
  std::vector<RegVal> uset;
  uset.reserve(u.size());
  for (Value x : u) uset.emplace_back(x);
  std::vector<RegVal> e;
  e.emplace_back(tag_c);
  e.emplace_back(v);
  e.push_back(RegVal::tuple(std::move(uset)));
  return RegVal::tuple(std::move(e));
}

ObjKey subKey(ObjKey key, const char* suffix) {
  key.append(suffix);
  return key;
}

}  // namespace

Coro<Pick> kConverge(Env& env, ObjKey key, int k, Value v) {
  assert(v != kBottomValue);
  assert(k >= 0);
  if (k == 0) co_return Pick{v, false};  // 0-converge by definition

  const int m = env.nProcs();
  const SnapshotHandle a = mem::makeSnapshot(env, subKey(key, ".A"), m);
  const SnapshotHandle b = mem::makeSnapshot(env, subKey(key, ".B"), m);

  // Phase 1: publish the input, observe the input set so far.
  co_await mem::snapshotUpdate(env, a, env.me(), RegVal(v));
  const std::vector<RegVal> sa = co_await mem::snapshotScan(env, a);
  const std::vector<Value> u = mem::distinctValues(sa);

  // Phase 2: publish the tagged entry, observe everyone's tags.
  const bool tag_c = static_cast<int>(u.size()) <= k;
  co_await mem::snapshotUpdate(env, b, env.me(), makeEntry(tag_c, v, u));
  const std::vector<RegVal> sb = co_await mem::snapshotScan(env, b);

  bool all_c = true;
  std::size_t best_size = 0;
  Value adopt = v;  // falls back to own value if no C entry is visible
  for (const auto& cell : sb) {
    if (cell.isBottom()) continue;
    const auto& e = cell.asTuple();
    if (!e[0].asBool()) {
      all_c = false;
      continue;
    }
    const auto& uset = e[2].asTuple();
    if (uset.size() > best_size) {
      best_size = uset.size();
      Value mn = uset[0].asInt();
      for (const auto& x : uset) mn = std::min(mn, x.asInt());
      adopt = mn;
    }
  }

  if (tag_c && all_c) co_return Pick{v, true};
  co_return Pick{adopt, false};
}

}  // namespace wfd::core
