#include "core/upsilon_set_agreement.h"

#include <cassert>

#include "core/kconverge.h"

namespace wfd::core {

Coro<Value> upsilonSetAgreementInstance(Env& env, int instance, Value v) {
  assert(v != kBottomValue);
  const int n = env.nProcs() - 1;
  const sim::ObjId d_reg = env.reg(sim::ObjKey{"fig1.D", instance});

  for (int r = 1;; ++r) {
    // Line 4: try to agree via n-convergence.
    const Pick p =
        co_await kConverge(env, sim::ObjKey{"fig1.conv", instance, r}, n, v);
    v = p.value;
    if (p.committed) {
      // Lines 5-6: "If a process pi commits to a value v, then pi writes
      // v in register D and returns v."
      co_await env.write(d_reg, RegVal(v));
      co_return v;
    }
    {
      // Decided values propagate through D (Theorem 2: "every correct
      // process periodically checks whether D contains a non-⊥ value").
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) co_return d.asInt();
    }

    // Line 8: query Upsilon; U splits processes into gladiators (in U)
    // and citizens (outside U).
    ProcSet prev_u = (co_await env.queryFd()).scalar.asSet();

    const sim::ObjId dr_reg = env.reg(sim::ObjKey{"fig1.Dr", instance, r});
    const sim::ObjId st_reg = env.reg(sim::ObjKey{"fig1.Stable", instance, r});
    for (int k = 1;; ++k) {
      const ProcSet u = (co_await env.queryFd()).scalar.asSet();
      if (u != prev_u) {
        // "Whenever a process observes that the output of Upsilon is not
        // stable in round r, it sets register Stable[r] to true and
        // proceeds to the next round." (Theorem 2 proof)
        co_await env.write(st_reg, RegVal(true));
        break;
      }
      if (!u.contains(env.me())) {
        // Citizen: "pi writes its value in a shared register D[r] and
        // proceeds to the next round."
        env.note("citizen", u);
        co_await env.write(dr_reg, RegVal(v));
        break;
      }
      // Gladiator: "pi takes part in the (|U|-1)-convergence protocol
      // trying to eliminate one of the values concurrently proposed by
      // processes in U." 0-converge(v) returns (v, false) by definition.
      env.note("gladiator", u);
      const Pick g = co_await kConverge(
          env, sim::ObjKey{"fig1.sub", instance, r, k}, u.size() - 1, v);
      // "If a process does not commit on a value picked in
      // (|U|-1)-converge[r][k], it uses the value in ...[r][k+1]."
      v = g.value;
      if (g.committed) {
        co_await env.write(dr_reg, RegVal(v));
        break;
      }

      // Line 17's exit conditions: someone reported instability, a non-⊥
      // value appeared in D[r], or a decision appeared in D.
      if ((co_await env.read(st_reg)).scalar == RegVal(true)) break;
      if (!(co_await env.read(dr_reg)).scalar.isBottom()) break;
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) co_return d.asInt();
    }

    // "If pi finds D != ⊥ then pi returns D. If pi finds D[r] != ⊥, then
    // pi adopts the value in D[r] and proceeds to round r+1."
    const RegVal d = (co_await env.read(d_reg)).scalar;
    if (!d.isBottom()) co_return d.asInt();
    const RegVal dr = (co_await env.read(dr_reg)).scalar;
    if (!dr.isBottom()) v = dr.asInt();
  }
}

Coro<Unit> upsilonSetAgreement(Env& env, Value v) {
  env.propose(v);
  const Value decision = co_await upsilonSetAgreementInstance(env, 0, v);
  env.decide(decision);
  co_return Unit{};
}

}  // namespace wfd::core
