#include "core/candidates.h"

#include <vector>

namespace wfd::core {

Coro<Unit> candidateLowestHeartbeat(Env& env) {
  const int n_plus_1 = env.nProcs();
  const sim::ObjId own_hb = env.reg(sim::ObjKey{"cand.hb", env.me()});
  std::int64_t ts = 0;
  for (;;) {
    ++ts;
    co_await env.write(own_hb, RegVal(ts));
    std::int64_t best_ts = INT64_MAX;
    Pid best = 0;
    for (Pid q = 0; q < n_plus_1; ++q) {
      const RegVal h =
          (co_await env.read(env.reg(sim::ObjKey{"cand.hb", q}))).scalar;
      const std::int64_t hq = h.isBottom() ? 0 : h.asInt();
      if (hq < best_ts) {
        best_ts = hq;
        best = q;
      }
    }
    env.publishIfChanged(RegVal(ProcSet::singleton(best)));
  }
}

Coro<Unit> candidateComplementOrStatic(Env& env) {
  const int n_plus_1 = env.nProcs();
  for (;;) {
    const ProcSet u = (co_await env.queryFd()).scalar.asSet();
    const ProcSet comp = u.complement(n_plus_1);
    const Pid pc = comp.empty() ? 0 : comp.min();
    env.publishIfChanged(RegVal(ProcSet::singleton(pc)));
  }
}

}  // namespace wfd::core
