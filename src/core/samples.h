// f-resilient samples (paper Sect. 6.3), decidable for shipped detectors.
//
// A sequence sigma in (Pi x {d})^inf is an f-resilient sample of D if
// |correct(sigma)| >= n+1-f and there is a failure pattern F in E_f with
// correct(F) = correct(sigma), a history H in D(F) and times realizing
// sigma's queries. (We read the definition as fixing correct(F) =
// correct(sigma): the Lemma 8 and Theorem 10 proofs instantiate F with
// exactly the run's correct set, and phi_D's defining property is used
// under that binding.)
//
// For a *constant-value* sigma — the only shape Fig. 3 needs (Lemma 8
// produces sigma in (Pi x {d})^inf) — sample-ness is decidable per
// concrete detector family, because prefixes are unconstrained for every
// shipped detector (their axioms are purely eventual, except P whose
// prefix constraints are always satisfiable by choosing crash times) and
// the eventual constraint reduces to a set predicate:
//
//   Omega^k:  |d| = k  and  d intersects R       (eventual leader set
//                                                  contains a correct)
//   Upsilon^f:|d| >= n+1-f, d != R, d nonempty   (never the correct set)
//   stable anti-Omega: |d| = 1 and d != R
//   <>P / P:  d = Pi - R                         (eventually exactly the
//                                                  faulty set)
//   Dummy(c): d = c                              (trivially; for d = c
//                                                  EVERY sigma is a
//                                                  sample — the detector
//                                                  carries no failure
//                                                  information, so no
//                                                  phi map can exist)
//
// where R = correct(sigma). Tests use these to verify every shipped
// phi_D rigorously: phi_D(d) = (S, w) must make the constant-d sigma
// with correct(sigma) = S a NON-sample.
#pragma once

#include "common/proc_set.h"
#include "common/types.h"

namespace wfd::core {

enum class DetectorFamily {
  kOmegaK,
  kUpsilonF,
  kAntiOmegaStable,
  kEventuallyPerfect,
  kPerfect,
  kDummy,
};

struct ConstantSigma {
  ProcSet d;          // the constant detector value
  ProcSet recurring;  // correct(sigma)
};

// `param` is k for Omega^k, the constant's bits for Dummy, unused
// otherwise (pass 0). f is the environment's resilience.
bool isFResilientSample(DetectorFamily family, int n_plus_1, int f,
                        std::uint64_t param, const ConstantSigma& sigma);

}  // namespace wfd::core
