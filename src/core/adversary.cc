#include "core/adversary.h"

#include <memory>

#include "fd/scripted.h"

namespace wfd::core {

namespace {

using sim::FailurePattern;
using sim::FnPolicy;
using sim::Run;
using sim::RunConfig;
using sim::World;

// Upsilon pinned to {p1,...,pn}: legitimate whenever p_{n+1} is correct or
// some p_i (i <= n) is faulty — which covers every run the adversary
// builds (Theorem 1 proof, first paragraph).
fd::FdPtr pinnedUpsilon(int n_plus_1) {
  ProcSet u = ProcSet::full(n_plus_1);
  u.erase(n_plus_1 - 1);
  return fd::makeScripted("Upsilon=const" + u.toString(),
                          [u](Pid, Time) { return u; }, 0);
}

// Extract the pid a candidate's published singleton designates; -1 if the
// value is not a singleton set yet.
Pid publishedPc(const RegVal& v) {
  if (!v.isSet() || v.asSet().size() != 1) return -1;
  return v.asSet().min();
}

struct ChaseState {
  enum class Mode { kBatch, kSolo };
  Mode mode = Mode::kBatch;
  Pid batch_next = 0;
  Pid target;
  Time solo_steps = 0;
  Time min_confirm;  // solo steps before the target's output counts as
                     // "produced in this phase" (>= one candidate loop)
  Time phase_cap;
  int switches = 0;
  Time last_switch_time = 0;
  int stall_retargets = 0;
};

}  // namespace

ChaseStats soloChase(const AlgoFn& candidate, int n_plus_1, Time total_steps,
                     Time phase_cap, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::failureFree(n_plus_1);
  cfg.fd = pinnedUpsilon(n_plus_1);
  cfg.seed = seed;

  Run run(cfg, candidate, std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));

  auto st = std::make_shared<ChaseState>();
  st->target = n_plus_1 - 1;  // proof starts by running p_{n+1} solo
  st->phase_cap = phase_cap;
  // One candidate loop iteration costs at most ~n+2 operations for the
  // shipped candidates; two full iterations guarantee a fresh output.
  st->min_confirm = 2 * (n_plus_1 + 2);

  FnPolicy policy([st, n_plus_1](const ProcSet& runnable, const World& world,
                                 Rng&) -> Pid {
    // Failure-free run of forever-looping candidates: everyone runnable.
    (void)runnable;
    if (st->mode == ChaseState::Mode::kBatch) {
      // "Every process takes exactly one step" between solo phases.
      const Pid p = st->batch_next++;
      if (st->batch_next >= n_plus_1) {
        st->mode = ChaseState::Mode::kSolo;
        st->batch_next = 0;
        st->solo_steps = 0;
      }
      return p;
    }
    // Solo phase: run the target until it has confirmed (by completing
    // full candidate-loop iterations within this phase) an output {pc}
    // with pc != target — the proof's condition: in a run where the
    // target looks like the only correct process, the candidate must
    // exclude someone else. Then re-target pc.
    if (st->solo_steps >= st->min_confirm) {
      const Pid pc = publishedPc(world.published(st->target));
      if (pc >= 0 && pc != st->target) {
        ++st->switches;
        st->last_switch_time = world.now();
        st->target = pc;
        st->mode = ChaseState::Mode::kBatch;
        return st->batch_next++;
      }
    }
    if (++st->solo_steps > st->phase_cap) {
      // Stall: the candidate is frozen on {target} (or silent). If every
      // process currently agrees on some {q}, q != target, the
      // indistinguishability argument says q's solo run must eventually
      // move q's own output — chase q. Otherwise the candidate is
      // already defeated by persistent disagreement; keep soloing until
      // the horizon.
      st->solo_steps = 0;
      Pid agreed = publishedPc(world.published(0));
      for (Pid p = 1; p < n_plus_1 && agreed >= 0; ++p) {
        if (publishedPc(world.published(p)) != agreed) agreed = -1;
      }
      if (agreed >= 0 && agreed != st->target) {
        ++st->stall_retargets;
        st->target = agreed;
        st->mode = ChaseState::Mode::kBatch;
        return st->batch_next++;
      }
    }
    return st->target;
  });

  const Time taken = run.scheduler().run(policy, total_steps);

  ChaseStats stats;
  stats.steps = taken;
  stats.switches = st->switches;
  stats.last_switch_time = st->last_switch_time;
  stats.run = run.finish(taken);

  const auto pubs = stats.run.trace().ofKind(sim::EventKind::kPublish);
  for (const auto& e : pubs) stats.last_instability = e.time;
  // Final agreement among all (correct = all) processes?
  stats.final_agreement = true;
  const auto finals =
      stats.run.trace().publishedAt(stats.run.world->now(), n_plus_1);
  for (int p = 1; p < n_plus_1; ++p) {
    if (finals[static_cast<std::size_t>(p)] != finals[0]) {
      stats.final_agreement = false;
    }
  }
  return stats;
}

ExposureStats crashExposure(const AlgoFn& candidate, int n_plus_1,
                            Time total_steps, std::uint64_t seed) {
  // Crash p1..pn at mid-run; p_{n+1} alone is correct. Upsilon may keep
  // outputting {p1..pn}: it is not the correct set {p_{n+1}}.
  std::vector<std::pair<Pid, Time>> crashes;
  for (Pid p = 0; p < n_plus_1 - 1; ++p) {
    crashes.emplace_back(p, total_steps / 2 + p);
  }
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, crashes);
  cfg.fd = pinnedUpsilon(n_plus_1);
  cfg.seed = seed;
  cfg.max_steps = total_steps;

  RunResult rr = sim::runTask(
      cfg, candidate, std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));

  ExposureStats stats;
  const ProcSet correct = rr.world->pattern().correct();
  const auto finals = rr.trace().publishedAt(rr.world->now(), n_plus_1);
  // Stability among correct processes: same non-⊥ singleton everywhere.
  const Pid w = correct.min();
  const RegVal& fv = finals[static_cast<std::size_t>(w)];
  stats.stable = publishedPc(fv) >= 0;
  for (Pid p : correct.members()) {
    if (finals[static_cast<std::size_t>(p)] != fv) stats.stable = false;
  }
  if (stats.stable) {
    const Pid pc = publishedPc(fv);
    stats.stable_pc = ProcSet::singleton(pc);
    // Legal Omega_n output iff Pi - {pc} contains a correct process.
    stats.legal =
        !ProcSet::singleton(pc).complement(n_plus_1).intersect(correct).empty();
  }
  stats.run = std::move(rr);
  return stats;
}

}  // namespace wfd::core
