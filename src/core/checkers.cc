#include "core/checkers.h"

#include <map>
#include <set>

namespace wfd::core {

namespace {

// Shared stabilization harvest: final published value per correct
// process, equality across them, and the last change time.
EmulationReport harvestPublished(const RunResult& rr) {
  EmulationReport rep;
  const auto& fp = rr.world->pattern();
  const ProcSet correct = fp.correct();
  const int n_plus_1 = fp.nProcs();
  const auto finals = rr.trace().publishedAt(rr.world->now(), n_plus_1);

  const Pid w = correct.min();
  const RegVal& fv = finals[static_cast<std::size_t>(w)];
  rep.stabilized = !fv.isBottom();
  for (Pid p : correct.members()) {
    if (finals[static_cast<std::size_t>(p)] != fv) {
      rep.stabilized = false;
      rep.violation = "correct processes disagree: p" + std::to_string(p + 1) +
                      " has " + finals[static_cast<std::size_t>(p)].toString() +
                      ", p" + std::to_string(w + 1) + " has " + fv.toString();
    }
  }
  for (const auto& e : rr.trace().ofKind(sim::EventKind::kPublish)) {
    if (correct.contains(e.pid)) rep.last_change = e.time;
  }
  if (rep.stabilized && fv.isSet()) rep.stable_value = fv.asSet();
  return rep;
}

}  // namespace

AgreementReport checkKSetAgreement(const RunResult& rr, int k,
                                   const std::vector<Value>& proposals) {
  AgreementReport rep;
  const auto& fp = rr.world->pattern();

  // Termination: every correct process decided.
  rep.termination = true;
  for (Pid p : fp.correct().members()) {
    if (!rr.decisions.contains(p)) {
      rep.termination = false;
      rep.violation = "correct p" + std::to_string(p + 1) + " never decided";
    }
  }

  // Validity + decide-once from the raw decide events.
  const std::set<Value> allowed(proposals.begin(), proposals.end());
  rep.validity = true;
  rep.decide_once = true;
  std::map<Pid, int> decide_count;
  for (const auto& e : rr.trace().ofKind(sim::EventKind::kDecide)) {
    if (++decide_count[e.pid] > 1) {
      rep.decide_once = false;
      rep.violation = "p" + std::to_string(e.pid + 1) + " decided twice";
    }
    if (!allowed.contains(e.value.asInt())) {
      rep.validity = false;
      rep.violation = "decided value " + e.value.toString() + " not proposed";
    }
  }

  rep.distinct = rr.distinctDecisions();
  rep.agreement = rep.distinct <= k;
  if (!rep.agreement) {
    rep.violation = std::to_string(rep.distinct) + " distinct decisions > k=" +
                    std::to_string(k);
  }
  return rep;
}

EmulationReport checkEmulatedUpsilonF(const RunResult& rr, int f) {
  EmulationReport rep = harvestPublished(rr);
  if (!rep.stabilized) return rep;
  const auto& fp = rr.world->pattern();
  const int n_plus_1 = fp.nProcs();
  rep.legal = true;
  if (rep.stable_value.empty()) {
    rep.legal = false;
    rep.violation = "emulated Upsilon output is empty";
  } else if (rep.stable_value.size() < n_plus_1 - f) {
    rep.legal = false;
    rep.violation = "emulated Upsilon^f output " + rep.stable_value.toString() +
                    " smaller than n+1-f";
  } else if (rep.stable_value == fp.correct()) {
    rep.legal = false;
    rep.violation = "emulated output equals the correct set " +
                    rep.stable_value.toString();
  }
  return rep;
}

EmulationReport checkEmulatedOmega(const RunResult& rr) {
  EmulationReport rep = harvestPublished(rr);
  if (!rep.stabilized) return rep;
  const auto& fp = rr.world->pattern();
  rep.legal = true;
  if (rep.stable_value.size() != 1) {
    rep.legal = false;
    rep.violation = "emulated Omega output " + rep.stable_value.toString() +
                    " is not a singleton";
  } else if (fp.correct().intersect(rep.stable_value).empty()) {
    rep.legal = false;
    rep.violation = "emulated leader " + rep.stable_value.toString() +
                    " is faulty";
  }
  return rep;
}

}  // namespace wfd::core
