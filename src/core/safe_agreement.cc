#include "core/safe_agreement.h"

#include <cassert>

namespace wfd::core {

namespace {

sim::ObjId cellReg(Env& env, const ObjKey& key, int j) {
  ObjKey k = key;
  k.append("#sa");
  k.append(j);
  return env.reg(k);
}

RegVal makeCell(const RegVal& v, int level) {
  std::vector<RegVal> cell;
  cell.push_back(v);
  cell.emplace_back(static_cast<Value>(level));
  return RegVal::tuple(std::move(cell));
}

struct CollectResult {
  bool doorway_occupied = false;  // someone at level 1
  bool committed_seen = false;    // someone at level 2
  RegVal min_committed;           // value of smallest-id level-2 cell
};

Coro<CollectResult> collect(Env& env, const ObjKey& key) {
  CollectResult out;
  const int m = env.nProcs();
  for (int j = 0; j < m; ++j) {
    const RegVal c = (co_await env.read(cellReg(env, key, j))).scalar;
    if (c.isBottom()) continue;
    const auto& t = c.asTuple();
    const auto level = static_cast<int>(t[1].asInt());
    if (level == 1) out.doorway_occupied = true;
    if (level == 2 && !out.committed_seen) {
      out.committed_seen = true;  // j ascends: first hit = smallest id
      out.min_committed = t[0];
    }
  }
  co_return out;
}

}  // namespace

Coro<Unit> saProposeVal(Env& env, ObjKey key, const RegVal& v) {
  const sim::ObjId own = cellReg(env, key, env.me());
  co_await env.write(own, makeCell(v, 1));
  const CollectResult seen = co_await collect(env, key);
  co_await env.write(own, makeCell(v, seen.committed_seen ? 0 : 2));
  co_return Unit{};
}

Coro<Unit> saPropose(Env& env, ObjKey key, Value v) {
  assert(v != kBottomValue);
  co_return co_await saProposeVal(env, key, RegVal(v));
}

Coro<std::optional<RegVal>> saTryResolveVal(Env& env, ObjKey key) {
  const CollectResult seen = co_await collect(env, key);
  if (seen.doorway_occupied || !seen.committed_seen) {
    co_return std::nullopt;
  }
  co_return seen.min_committed;
}

Coro<std::optional<Value>> saTryResolve(Env& env, ObjKey key) {
  const auto r = co_await saTryResolveVal(env, key);
  if (!r.has_value()) co_return std::nullopt;
  co_return r->asInt();
}

Coro<Value> saResolve(Env& env, ObjKey key) {
  for (;;) {
    const auto r = co_await saTryResolve(env, key);
    if (r.has_value()) co_return *r;
  }
}

}  // namespace wfd::core
