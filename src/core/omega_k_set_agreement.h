// Baseline: Omega^k-based k-set agreement (Neiger [18]; see also
// Mostefaoui–Raynal–Travers [17]).
//
// The paper's Corollaries 3-4 contrast Upsilon against Omega_n, which was
// previously known to solve n-resilient n-set-agreement from registers.
// We ship an Omega^k-based k-set-agreement protocol as that baseline:
//
//   round r:  (v, c) := k-converge[r](v); commit -> write D, decide;
//             L := Omega^k output;
//             if me in L: Ann[r+1][me] := v   (my post-converge pick)
//             adopt any non-⊥ Ann[r+1][p], p in L (waiting with escape
//             hatches on detector changes and on D).
//
// Once Omega^k stabilizes on L (>= 1 correct leader), every correct
// process enters some round with one of the <= k leader announcements,
// and k-converge commits by Convergence. Safety: announcements are per
// round and carry post-converge picks, so every value in the system
// after the first committing round r is one of conv[r]'s <= k picked
// values (C-Agreement) — at most k values are ever decided. (An earlier
// write-once announcement scheme leaked pre-elimination values back into
// later rounds and was caught violating agreement by the randomized soak
// tests; see tests/soak_test.cc.)
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// k-set agreement from Omega^k. Requires an Omega^k detector installed.
Coro<Unit> omegaKSetAgreement(Env& env, int k, Value v);

// Instance form for multi-instance streams (sim/service): every object
// key carries `instance` as its LAST index, so distinct instances in one
// world never collide, and `instance = -1` reproduces the one-shot keys
// byte-for-byte (unused ObjKey indices default to -1). Returns the
// decided value; the caller proposes/decides (or records a service
// commit) itself. Each process may invoke a given instance at most once.
Coro<Value> omegaKSetAgreementInstance(Env& env, int k, int instance,
                                       Value v);

// Consensus from Omega (k = 1), the Chandra–Hadzilacos–Toueg setting the
// paper compares against for n+1 = 2 (Sect. 4: Upsilon ~ Omega there).
Coro<Unit> omegaConsensus(Env& env, Value v);

}  // namespace wfd::core
