// Safe agreement (Borowsky–Gafni [2]) — the BG-simulation building block.
//
// Like consensus, but termination is only guaranteed if no participant
// fails inside the "doorway": a process that crashes between raising its
// flag and committing/backing off can block resolution forever. That is
// precisely the degree of agreement achievable wait-free from registers,
// and the reason BG simulation tolerates f crashes by running the
// simulated processes' steps through independent instances (each crash
// blocks at most one instance at a time).
//
// Register construction (levels 0/1/2 per participant):
//   propose(v): R[i] := (v, 1);            // enter the doorway
//               collect;
//               if someone is at level 2:  R[i] := (v, 0)   // back off
//               else:                      R[i] := (v, 2)   // commit
//   resolve():  wait until no one is at level 1;            // doorway empty
//               return the value of the smallest-id level-2 participant.
//
// Once some resolver observes an empty doorway, the level-2 set is
// frozen (any later proposer sees a 2 in its collect and backs off), so
// every resolution returns the same committed value. Validity is
// immediate; a level-1 crash is the only way resolve can starve.
#pragma once

#include <optional>

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::ObjKey;
using sim::Unit;

// Enter the instance with value v (wait-free; at most once per process).
// The RegVal overload carries arbitrary payloads (BG simulation agrees
// on whole snapshot views).
Coro<Unit> saPropose(Env& env, ObjKey key, Value v);
Coro<Unit> saProposeVal(Env& env, ObjKey key, const RegVal& v);

// One resolution attempt: the agreed value, or nullopt while some
// participant is still (or forever) in the doorway.
Coro<std::optional<Value>> saTryResolve(Env& env, ObjKey key);
Coro<std::optional<RegVal>> saTryResolveVal(Env& env, ObjKey key);

// Loop saTryResolve until it succeeds. May loop forever if a participant
// crashed in the doorway — by design.
Coro<Value> saResolve(Env& env, ObjKey key);

}  // namespace wfd::core
