// Trace checkers: machine-verified task and emulation properties.
//
// Each checker consumes a RunResult and certifies the exact properties
// the paper's theorem statements promise, so tests and benches share one
// notion of "correct".
#pragma once

#include <string>
#include <vector>

#include "sim/runner.h"

namespace wfd::core {

using sim::RunResult;
using sim::Time;

// ---- k-set agreement (paper Sect. 5.1) ----
struct AgreementReport {
  bool termination = false;  // every correct process decided
  bool validity = false;     // decided values were proposed
  bool agreement = false;    // at most k distinct decisions
  bool decide_once = false;  // no process decided twice
  int distinct = 0;
  std::string violation;

  [[nodiscard]] bool ok() const {
    return termination && validity && agreement && decide_once;
  }
};

AgreementReport checkKSetAgreement(const RunResult& rr, int k,
                                   const std::vector<Value>& proposals);

// ---- Emulated failure detector outputs (reductions, Fig. 3) ----
struct EmulationReport {
  bool stabilized = false;   // same final value at all correct processes,
                             // unchanged after last_change
  bool legal = false;        // final value satisfies the target FD's axioms
  ProcSet stable_value;
  Time last_change = 0;      // last publish change at a correct process
  std::string violation;

  [[nodiscard]] bool ok() const { return stabilized && legal; }
};

// The emulated output must be a non-empty set of size >= n+1-f that is
// not correct(F) (Upsilon^f axioms).
EmulationReport checkEmulatedUpsilonF(const RunResult& rr, int f);

// The emulated output must be the same singleton {q} with q correct
// (Omega axioms).
EmulationReport checkEmulatedOmega(const RunResult& rr);

}  // namespace wfd::core
