#include "core/ablations.h"

#include "core/upsilon_set_agreement.h"
#include "fd/scripted.h"
#include "memory/snapshot.h"

namespace wfd::core {

fd::FdPtr axiom2ViolatingDetector(const sim::FailurePattern& fp) {
  const ProcSet correct = fp.correct();
  return fd::makeScripted("U=correct(F)",
                          [correct](Pid, Time) { return correct; }, 0);
}

fd::FdPtr axiom1ViolatingDetector() {
  return fd::makeScripted(
      "flapping",
      [](Pid, Time t) {
        return (t % 2 == 0) ? ProcSet{0} : ProcSet{1};
      },
      // Never stabilizes; advertise "infinity" so no test waits on it.
      sim::kNeverCrashes);
}

int fig1DecidersUnder(fd::FdPtr fd, int n_plus_1, Time budget) {
  sim::RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fd = std::move(fd);
  cfg.policy = sim::PolicyKind::kRoundRobin;  // lockstep: no lucky commits
  cfg.max_steps = budget;
  std::vector<Value> props(static_cast<std::size_t>(n_plus_1));
  for (int i = 0; i < n_plus_1; ++i) props[static_cast<std::size_t>(i)] = 100 + i;
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return upsilonSetAgreement(e, v); }, props);
  return static_cast<int>(rr.decisions.size());
}

Coro<Pick> kConvergeNaive(Env& env, sim::ObjKey key, int k, Value v) {
  if (k == 0) co_return Pick{v, false};
  key.append(".naive");
  const auto a = mem::makeSnapshot(env, key, env.nProcs());
  co_await mem::snapshotUpdate(env, a, env.me(), RegVal(v));
  const auto sa = co_await mem::snapshotScan(env, a);
  // One phase only: no tag exchange, no adoption from committed sets —
  // exactly the shortcut the real construction's phase 2 exists to fix.
  const bool commit = static_cast<int>(mem::distinctValues(sa).size()) <= k;
  co_return Pick{v, commit};
}

}  // namespace wfd::core
