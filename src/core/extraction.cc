#include "core/extraction.h"

#include <cassert>
#include <vector>

namespace wfd::core {

Coro<Unit> extractUpsilonF(Env& env, PhiPtr phi) {
  const int n_plus_1 = env.nProcs();
  const ProcSet pi_all = ProcSet::full(n_plus_1);
  const sim::ObjId own_r = env.reg(sim::ObjKey{"fig3.R", env.me()});

  std::int64_t ts = 0;

  // Round state (reset whenever a value != d is reported).
  bool have_candidate = false;
  ProcSet d;                       // the candidate stable value of D
  PhiResult phi_d;                 // (S, w) = phi_D(d)
  bool output_is_s = false;        // line 19/20 reached
  int batches_done = 0;
  std::vector<std::int64_t> last_ts(static_cast<std::size_t>(n_plus_1), -1);
  std::vector<int> fresh(static_cast<std::size_t>(n_plus_1), 0);

  env.publishIfChanged(RegVal(pi_all));

  auto startRound = [&](const ProcSet& new_d) {
    have_candidate = true;
    d = new_d;
    phi_d = phi->map(d);
    assert(!phi_d.correct_sigma.empty());
    output_is_s = false;
    batches_done = 0;
    std::fill(fresh.begin(), fresh.end(), 0);
    // Line 8: in the beginning of the round the output is Pi.
    env.publishIfChanged(RegVal(pi_all));
  };

  for (;;) {
    // ---- Task 1 heartbeat: query D, report (value, fresh timestamp).
    const ProcSet my_d = (co_await env.queryFd()).scalar.asSet();
    ++ts;
    {
      std::vector<RegVal> cell;
      cell.emplace_back(my_d);
      cell.emplace_back(ts);
      co_await env.write(own_r, RegVal::tuple(std::move(cell)));
    }

    if (!have_candidate || my_d != d) {
      // Own module changed: new round with the new value.
      startRound(my_d);
      continue;
    }

    // ---- Task 2: collect everyone's reports.
    bool restarted = false;
    for (Pid j = 0; j < n_plus_1 && !restarted; ++j) {
      const RegVal cell =
          (co_await env.read(env.reg(sim::ObjKey{"fig3.R", j}))).scalar;
      if (cell.isBottom()) continue;
      const auto& t = cell.asTuple();
      const ProcSet dj = t[0].asSet();
      const std::int64_t tsj = t[1].asInt();
      const auto ji = static_cast<std::size_t>(j);
      if (tsj <= last_ts[ji]) continue;  // nothing new from p_j
      last_ts[ji] = tsj;
      if (dj != d) {
        // Line 18: some process reports D has not stabilized on d yet.
        startRound(my_d);
        restarted = true;
        break;
      }
      // A fresh report of d: one more observed query-step with value d.
      if (fresh[ji] < 2) ++fresh[ji];
    }
    if (restarted || output_is_s) continue;

    if (phi_d.correct_sigma == pi_all) {
      // S = Pi: the output is already Pi; block in line 21 (i.e. keep
      // heartbeating until a different value shows up).
      continue;
    }

    // Line 15: batch accounting — a batch completes when every process
    // has reported d with a fresh timestamp at least twice.
    bool batch_complete = true;
    for (int j = 0; j < n_plus_1; ++j) {
      if (fresh[static_cast<std::size_t>(j)] < 2) {
        batch_complete = false;
        break;
      }
    }
    if (batch_complete) {
      ++batches_done;
      std::fill(fresh.begin(), fresh.end(), 0);
    }

    if (batches_done >= phi_d.w) {
      // Observed w(sigma) batches myself: record it for the others
      // (line 19) and adopt S (line 20).
      co_await env.write(env.reg(sim::ObjKey{"fig3.Obs", env.me()}),
                         RegVal(d));
      output_is_s = true;
      env.publishIfChanged(RegVal(phi_d.correct_sigma));
      continue;
    }

    // Or adopt another process's completed observation for this d.
    for (Pid j = 0; j < n_plus_1; ++j) {
      const RegVal obs =
          (co_await env.read(env.reg(sim::ObjKey{"fig3.Obs", j}))).scalar;
      if (obs == RegVal(d)) {
        output_is_s = true;
        env.publishIfChanged(RegVal(phi_d.correct_sigma));
        break;
      }
    }
  }
}

}  // namespace wfd::core
