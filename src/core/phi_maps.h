// The map phi_D of Corollary 9.
//
// For an f-non-trivial failure detector D, phi_D carries each output
// value d to (correct(sigma), w(sigma)) for some sequence sigma in
// (Pi x {d})* that is NOT an f-resilient sample of D: a run in which the
// processes of correct(sigma) run forever observing d (after the
// processes outside it take w(sigma) "batches" of steps) is incompatible
// with D's axioms. The paper's proof of Theorem 10 is non-constructive —
// it only needs phi_D to *exist*. For each concrete detector this library
// ships, the map is easy to construct, and every instance documents which
// axiom of D the designated sigma violates. Tests verify that reasoning
// by checking the axiom directly.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/proc_set.h"
#include "common/types.h"

namespace wfd::core {

struct PhiResult {
  ProcSet correct_sigma;  // correct(sigma); |.| >= n+1-f
  int w = 0;              // w(sigma): batches of steps of Pi-correct(sigma)
};

class PhiMap {
 public:
  virtual ~PhiMap() = default;
  virtual PhiResult map(const ProcSet& d) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using PhiPtr = std::shared_ptr<const PhiMap>;

// phi for Omega^k in E_f (k <= f): sigma = the processes of Pi - d running
// forever while d never contains a correct process — violating Omega^k's
// "eventually contains a correct process". (correct(sigma) = Pi - d,
// w = 0.) With k = 1 this is phi_Omega.
PhiPtr phiOmegaK(int n_plus_1);

// phi for Upsilon^f itself: sigma = the processes of d running forever —
// if correct(F) = d, Upsilon^f may not stabilize on d. (correct(sigma) =
// d, w = 0.) Feeding Upsilon^f through Fig. 3 with this map must
// reproduce Upsilon^f's own output — the identity sanity check.
PhiPtr phiUpsilonSelf();

// phi for stable anti-Omega (singleton output {q}): sigma = {q} running
// solo — if correct(F) = {q}, a correct process would forever be output,
// violating anti-Omega. (correct(sigma) = {q} = d, w = 0.)
PhiPtr phiAntiOmega();

// phi for <>P (output = suspected set) in E_f: if d is non-empty, a run
// whose correct set CONTAINS d cannot suspect d forever (eventual strong
// accuracy); pad d up to n+1-f with low ids. If d is empty, a run with a
// faulty process cannot output "no suspects" forever (strong
// completeness): designate correct(sigma) = Pi minus its largest id.
PhiPtr phiEventuallyPerfect(int n_plus_1, int f);

// Wrap any phi with an inflated w > 0. Valid by Lemma 7: if the w = 0
// sigma is not a sample, no supersequence with the same correct set is
// either, so a larger w only delays extraction. Exercises Fig. 3's
// batch-observation machinery.
PhiPtr phiWithInflatedW(PhiPtr base, int w);

}  // namespace wfd::core
