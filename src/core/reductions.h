// The explicit reductions of Sect. 4 and 5.3.
//
// A reduction is an algorithm that runs forever and maintains the
// distributed variable D-output (Sect. 3.5) via env.publish(); the
// checkers in core/checkers.h verify that the published outputs
// eventually satisfy the target detector's axioms.
//
//   omegaKToUpsilonF : "to emulate Upsilon^f, every process simply
//                      outputs the complement of Omega^f in Pi" (§5.3).
//                      With k = n it is the Theorem 1 easy direction
//                      (Omega_n -> Upsilon).
//   upsilonToOmegaTwoProcs : §4: "to get Omega from Upsilon, every
//                      process outputs the complement of Upsilon if this
//                      is a singleton, and the process identifier
//                      otherwise" (n+1 = 2 only).
//   upsilon1ToOmega  : §5.3's E_1 reduction: ever-growing timestamps; if
//                      Upsilon^1 outputs a proper subset of Pi elect its
//                      complement, otherwise elect the smallest id among
//                      the n processes with the highest timestamps.
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// Requires an Omega^k detector installed; publishes Upsilon^f outputs
// (f = n+1-k resilience: the complement has size n+1-k).
Coro<Unit> omegaKToUpsilonF(Env& env);

// Requires an Upsilon detector and exactly 2 processes; publishes Omega
// outputs (singleton sets).
Coro<Unit> upsilonToOmegaTwoProcs(Env& env);

// Requires an Upsilon^1 detector in E_1; publishes Omega outputs.
Coro<Unit> upsilon1ToOmega(Env& env);

// The classic <>P -> Omega reduction ([4]-adjacent): elect the smallest
// unsuspected process. Requires a <>P detector (output = suspected set).
Coro<Unit> diamondPToOmega(Env& env);

}  // namespace wfd::core
