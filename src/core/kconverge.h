// k-converge (Yang, Neiger, Gafni [21]) — the agreement primitive both of
// the paper's set-agreement protocols are built from.
//
// A process invokes k-converge with a value v in V and gets back (v', c):
// it "picks" v' and, if c, "commits" v'. Properties (paper Sect. 5.1):
//   C-Termination: every correct process picks some value.
//   C-Validity:    picked values were input by some process.
//   C-Agreement:   if some process commits, at most k values are picked.
//   Convergence:   if at most k distinct values are input, every picker
//                  commits.
// By definition 0-converge(v) always returns (v, false).
//
// Construction (two snapshot objects A, B per instance):
//   1. A.update(i, v); U_i := distinct values in A.snapshot().
//   2. tag_i := C if |U_i| <= k else A;
//      B.update(i, (tag_i, v, U_i)); sb_i := B.snapshot().
//   3. commit v iff tag_i = C and sb_i holds only C entries; otherwise
//      adopt min(U*) where U* is the largest committed set in sb_i (own v
//      if sb_i holds no C entry).
// Why it works: snapshots of A are related by containment, so committed
// U-sets form a chain; every committer's own value lies in the largest
// committed set U_max with |U_max| <= k. If anyone commits, an adopter
// that wrote an A-tagged entry cannot have scanned B before that
// committer's B-write (the committer would have seen the A tag), so its
// B-snapshot contains a C entry and it adopts inside U_max. With <= k
// distinct inputs every tag is C and everyone commits.
#pragma once

#include "memory/snapshot.h"
#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::ObjKey;

struct Pick {
  Value value = kBottomValue;
  bool committed = false;
};

// One invocation of instance `key` with convergence parameter k.
// Each process must invoke a given instance at most once.
Coro<Pick> kConverge(Env& env, ObjKey key, int k, Value v);

}  // namespace wfd::core
