#include "core/upsilon_f_set_agreement.h"

#include <cassert>

#include "core/kconverge.h"
#include "memory/snapshot.h"

namespace wfd::core {

Coro<Value> upsilonFSetAgreementInstance(Env& env, int f, int instance,
                                         Value v) {
  const int n_plus_1 = env.nProcs();
  assert(f >= 1 && f <= n_plus_1 - 1);
  const sim::ObjId d_reg = env.reg(sim::ObjKey{"fig2.D", instance});

  for (int r = 1;; ++r) {
    // Round opener: f-convergence; a commit is decided through D.
    const Pick p =
        co_await kConverge(env, sim::ObjKey{"fig2.conv", r, instance}, f, v);
    v = p.value;
    if (p.committed) {
      co_await env.write(d_reg, RegVal(v));
      co_return v;
    }
    {
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) co_return d.asInt();
    }

    ProcSet prev_u = (co_await env.queryFd()).scalar.asSet();

    const sim::ObjId dr_reg = env.reg(sim::ObjKey{"fig2.Dr", r, instance});
    const sim::ObjId st_reg =
        env.reg(sim::ObjKey{"fig2.Stable", r, instance});
    for (int k = 1;; ++k) {
      const ProcSet u = (co_await env.queryFd()).scalar.asSet();
      if (u != prev_u) {
        co_await env.write(st_reg, RegVal(true));
        break;
      }
      if (!u.contains(env.me())) {
        // Citizen: write the value in D[r] (line 11) and advance.
        env.note("citizen", u);
        co_await env.write(dr_reg, RegVal(v));
        break;
      }

      // Gladiator (lines 15-30): publish the value in snapshot A[r][k]...
      env.note("gladiator", u);
      const auto a = mem::makeSnapshot(
          env, sim::ObjKey{"fig2.A", r, k, instance}, n_plus_1);
      co_await mem::snapshotUpdate(env, a, env.me(), RegVal(v));

      // ...then repeatedly snapshot until at least n+1-f non-⊥ entries
      // are visible (lines 17-19). The loop must stay escapable: it polls
      // D[r] (adopt), D (decide), Stable[r] (advance) and the detector
      // (instability), per the Theorem 6 liveness argument.
      std::vector<RegVal> view;
      bool escaped = false;
      bool decided = false;
      Value decided_value = kBottomValue;
      for (;;) {
        view = co_await mem::snapshotScan(env, a);
        if (mem::nonBottomCount(view) >= n_plus_1 - f) break;
        const RegVal dr = (co_await env.read(dr_reg)).scalar;
        if (!dr.isBottom()) {
          v = dr.asInt();  // line 23: adopt and move to round r+1
          escaped = true;
          break;
        }
        const RegVal d = (co_await env.read(d_reg)).scalar;
        if (!d.isBottom()) {
          decided_value = d.asInt();
          decided = true;
          break;
        }
        if ((co_await env.read(st_reg)).scalar == RegVal(true)) {
          escaped = true;
          break;
        }
        const ProcSet u2 = (co_await env.queryFd()).scalar.asSet();
        if (u2 != u) {
          co_await env.write(st_reg, RegVal(true));
          escaped = true;
          break;
        }
      }
      if (decided) co_return decided_value;
      if (escaped) break;

      // Line 25: adopt the minimal value of the latest snapshot; line 26:
      // (|U|+f-n-1)-converge on it. Snapshot containment caps the number
      // of distinct adopted values at |U|+f-n-1 in the critical case.
      const Value adopted = mem::minValue(view);
      assert(adopted != kBottomValue);
      v = adopted;
      const int kk = u.size() + f - n_plus_1;  // |U| + f - (n+1)
      const Pick g = co_await kConverge(
          env, sim::ObjKey{"fig2.sub", r, k, instance}, kk, v);
      v = g.value;
      if (g.committed) {
        co_await env.write(dr_reg, RegVal(v));
        break;
      }

      if ((co_await env.read(st_reg)).scalar == RegVal(true)) break;
      if (!(co_await env.read(dr_reg)).scalar.isBottom()) break;
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) co_return d.asInt();
    }

    const RegVal d = (co_await env.read(d_reg)).scalar;
    if (!d.isBottom()) co_return d.asInt();
    // Line 33: adopt D[r] if non-⊥ before entering round r+1.
    const RegVal dr = (co_await env.read(dr_reg)).scalar;
    if (!dr.isBottom()) v = dr.asInt();
  }
}

Coro<Unit> upsilonFSetAgreement(Env& env, int f, Value v) {
  env.propose(v);
  const Value got = co_await upsilonFSetAgreementInstance(env, f, -1, v);
  env.decide(got);
  co_return Unit{};
}

}  // namespace wfd::core
