// Fig. 1: the Upsilon-based wait-free n-set-agreement protocol (Sect. 5.2).
//
// Round structure (reconstructed from the prose and the Theorem 2 proof —
// the original figure is pseudocode; source comments cite the sentences
// relied upon):
//   * Each round r starts with n-converge[r]; a commit is written to the
//     decision register D and decided (lines 4-6).
//   * Otherwise the process queries Upsilon and enters sub-rounds
//     (lines 12-17). Processes outside the current output U ("citizens")
//     write their value to D[r] and advance; processes inside U
//     ("gladiators") run (|U|-1)-converge[r][k], trying to eliminate one
//     of U's values.
//   * A process that observes Upsilon's output change during round r
//     writes Stable[r] := true; everyone polls Stable[r], D[r] and D and
//     exits the sub-round loop accordingly. A non-⊥ D[r] is adopted when
//     moving to round r+1; a non-⊥ D is decided.
// Eventual correctness: once Upsilon stabilizes on U != correct(F),
// either a correct citizen exists (writes D[r]) or a gladiator is faulty
// (eventually (|U|-1)-converge commits), so some round eliminates a value
// and the next n-converge commits.
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// The process automaton for p_i = env.me() with proposal v. Decides via
// env.decide(). Requires an Upsilon (or stronger) detector installed in
// the world.
Coro<Unit> upsilonSetAgreement(Env& env, Value v);

// Multi-instance form: Fig. 1 as a reusable object. Distinct `instance`
// ids name disjoint register families, so a long-lived application can
// run one set-agreement per epoch/batch. Returns the decision instead of
// recording a task-level decide event; each process may invoke a given
// instance at most once.
Coro<Value> upsilonSetAgreementInstance(Env& env, int instance, Value v);

}  // namespace wfd::core
