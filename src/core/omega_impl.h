// Implementing Omega from timing assumptions (extension).
//
// The paper's introduction motivates failure detectors as abstractions
// of the partial synchrony found in real systems: "such timing
// assumptions circumvent asynchronous impossibilities by providing
// processes with information about failures, typically through time-out
// (or heart-beat) mechanisms". This module makes that sentence
// executable: a heartbeat/adaptive-timeout algorithm that implements
// Omega in runs scheduled by sim::EventuallySynchronousPolicy — no
// oracle involved. Composed with the paper's reductions (Omega -> Omega_n
// -> Upsilon by complementation) it grounds the whole hierarchy in a
// timing assumption:
//
//     eventual synchrony -> Omega -> Upsilon -> set agreement.
//
// Algorithm (classic): each process increments a heartbeat register
// every iteration and monitors everyone else's, counting its own
// iterations since register j last changed. Exceeding an (adaptive,
// doubled-on-false-suspicion) timeout suspects j; the emulated leader is
// the smallest unsuspected id. After GST every correct process completes
// an iteration within a bounded window, so timeouts stop growing, false
// suspicions cease, and everyone converges on the smallest correct id.
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// Runs forever; publishes the elected leader as a singleton set. Needs no
// failure detector installed — failure information comes from timing.
Coro<Unit> omegaFromEventualSynchrony(Env& env);

}  // namespace wfd::core
