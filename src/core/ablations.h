// Ablations: deliberately broken variants that demonstrate *why* each
// ingredient of the paper's definitions and constructions is load-bearing.
//
//   * Upsilon axiom (2) (U != correct(F)): feed Fig. 1 a "detector" that
//     stabilizes on exactly the correct set — the gladiator mechanism
//     livelocks (no faulty gladiator ever frees the converge, no correct
//     citizen exists to write D[r]).
//   * Upsilon axiom (1) (eventual stability): a forever-flapping history
//     makes every round abort through Stable[r]; under a lockstep
//     schedule no value is ever eliminated.
//   * k-converge's second phase: a naive "commit iff my first snapshot
//     has <= k values" routine violates C-Agreement on concrete
//     schedules (found exhaustively in the tests).
//
// The broken detectors are ordinary ScriptedFd histories — they are NOT
// legal Upsilon histories, which is precisely the point.
#pragma once

#include "core/kconverge.h"
#include "fd/failure_detector.h"
#include "sim/runner.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;

// A "detector" pinned to the correct set of fp — violates axiom (2).
fd::FdPtr axiom2ViolatingDetector(const sim::FailurePattern& fp);

// A "detector" that alternates between {p1} and {p2} forever — violates
// axiom (1). Never equal on two consecutive time units.
fd::FdPtr axiom1ViolatingDetector();

// Runs Fig. 1 under a lockstep schedule with the given (possibly broken)
// detector; returns the number of processes that decided within budget.
// With a legal Upsilon history this is n+1; with either violating
// detector above it is 0.
int fig1DecidersUnder(fd::FdPtr fd, int n_plus_1, Time budget);

// The naive one-phase converge: commit iff the first snapshot already
// shows <= k distinct values, otherwise keep the input. Satisfies
// C-Termination/C-Validity/Convergence but NOT C-Agreement.
Coro<Pick> kConvergeNaive(Env& env, sim::ObjKey key, int k, Value v);

}  // namespace wfd::core
