#include "core/omega_k_set_agreement.h"

#include <cassert>

#include "core/kconverge.h"

namespace wfd::core {

Coro<Value> omegaKSetAgreementInstance(Env& env, int k, int instance,
                                       Value v) {
  assert(k >= 1);
  const sim::ObjId d_reg = env.reg(sim::ObjKey{"omk.D", instance});

  for (int r = 1;; ++r) {
    const Pick p =
        co_await kConverge(env, sim::ObjKey{"omk.conv", r, instance}, k, v);
    v = p.value;
    if (p.committed) {
      co_await env.write(d_reg, RegVal(v));
      co_return v;
    }
    {
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) co_return d.asInt();
    }

    // Leader phase for round r+1. Announcements are PER ROUND and carry
    // the leader's post-converge pick: every value entering round r+1 is
    // a round-r pick, so once any round commits, C-Agreement's <= k
    // picked values bound every later value in the system. (A write-once
    // announcement would leak pre-elimination values back in and break
    // agreement — caught by the randomized soak tests.)
    const ProcSet leaders = (co_await env.queryFd()).scalar.asSet();
    if (leaders.contains(env.me())) {
      co_await env.write(
          env.reg(sim::ObjKey{"omk.Ann", r + 1, env.me(), instance}),
          RegVal(v));
    }
    // Adopt some leader's round-r+1 announcement; at most k exist, and
    // after the detector stabilizes one of them is written by a correct
    // leader every round, so all correct processes enter round r+1 with
    // <= k distinct values and k-converge commits. While waiting,
    // re-check the detector (pre-stabilization junk must not block) and
    // D (a decision releases everyone).
    for (;;) {
      bool adopted = false;
      for (Pid q : leaders.members()) {
        const RegVal a =
            (co_await env.read(
                 env.reg(sim::ObjKey{"omk.Ann", r + 1, q, instance})))
                .scalar;
        if (!a.isBottom()) {
          v = a.asInt();
          adopted = true;
          break;
        }
      }
      if (adopted) break;
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) co_return d.asInt();
      const ProcSet l2 = (co_await env.queryFd()).scalar.asSet();
      if (l2 != leaders) break;  // not stable yet: keep own pick
    }
  }
}

Coro<Unit> omegaKSetAgreement(Env& env, int k, Value v) {
  env.propose(v);
  const Value got = co_await omegaKSetAgreementInstance(env, k, -1, v);
  env.decide(got);
  co_return Unit{};
}

Coro<Unit> omegaConsensus(Env& env, Value v) {
  return omegaKSetAgreement(env, 1, v);
}

}  // namespace wfd::core
