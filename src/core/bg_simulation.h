// BG simulation (Borowsky–Gafni [2]) — the machinery behind the paper's
// f-resilient impossibility results.
//
// f+1 simulators, of which up to f may crash, jointly execute an
// m-process program written in the snapshot model (rounds of "update my
// cell, scan everyone"). The simulators only need to agree on the
// nondeterministic inputs of the simulated run — the scan views — and do
// so through one safe-agreement instance per (simulated process, round).
// A simulator crash can block at most one instance (one simulated
// process) at a time, so at least m - f simulated processes keep making
// progress: an f-resilient execution of the m-process program emerges
// from a wait-free execution of the simulators. This is exactly the
// reduction [2] uses to lift the wait-free set-agreement impossibility
// to the f-resilient case (paper Sect. 5.3), and it grounds the "BG
// simulation" citations behind Theorems 5/6.
//
// Shared representation:
//   * a grid snapshot object with (#simulators x m) slots; slot (i, j)
//     holds simulator i's copy of simulated process j's latest update as
//     a tuple (round, value) — single-writer per slot;
//   * SA[j][r]: safe agreement on j's round-r scan view. Every simulator
//     proposes the view it assembles from a real grid scan (per
//     simulated process: the highest-round value across columns).
//     Real grid scans are containment-ordered, so the agreed views form
//     a legal snapshot-model execution.
//
// Simulated programs are deterministic snapshot-model automata:
// update_r+1 / decision = F(agreed views so far). Determinism is what
// lets every simulator reconstruct the identical simulated run.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <variant>
#include <vector>

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// One simulated process's transition function. Round r: the process
// updates its cell with a value, then scans. `onScan` receives the
// agreed round-r view (slot j = simulated p_j's latest update value, ⊥
// if none) and returns either the next round's update value or a
// decision.
struct SnapshotProgram {
  using Step = std::variant<RegVal /*next update*/, Value /*decision*/>;
  // Round-1 update value for simulated process j with input `input`.
  std::function<RegVal(int j, Value input)> first_update;
  // Transition after the agreed round-r view. The agreed view always
  // contains j's own round-r value: every simulator writes its column
  // for (j, r) before scanning its candidate.
  std::function<Step(int j, int r, Value input,
                     const std::vector<RegVal>& view)>
      on_scan;
};

struct BgConfig {
  int simulators = 2;      // f+1 (this process count runs the simulation)
  int simulated = 3;       // m simulated snapshot-model processes
  std::vector<Value> inputs;  // size m
  Time max_iterations = 100'000;  // simulator main-loop bound
};

// The simulator automaton for process env.me() in [0, simulators).
// Publishes nothing; records each simulated decision as a trace note
// "bg.decide.<j>" with the decided value (once per j per simulator).
// Returns when every simulated process has decided, or when the
// iteration budget is exhausted (e.g. a crashed co-simulator blocks a
// safe-agreement instance forever).
Coro<Unit> bgSimulator(Env& env, const BgConfig& cfg,
                       const SnapshotProgram& prog);

// Demo program: round-1 update = own input; decide min of the first view
// containing at least `quorum` values, else re-update. With quorum =
// m - f this is live under f simulator crashes and decides at most
// (numbers of distinct chain views) values.
SnapshotProgram minOfQuorumProgram(int quorum);

// Commit-adopt in the snapshot model, as a simulated program: round 1
// announces the input; round 2 announces (input, saw-disagreement);
// afterwards decide an encoded (value, committed) pair. Decoders below.
// Simulated under BG it must satisfy the commit-adopt contract: if any
// simulated process commits v, every simulated decision carries v.
SnapshotProgram commitAdoptProgram();
Value caEncode(Value v, bool committed);
std::pair<Value, bool> caDecode(Value encoded);

}  // namespace wfd::core
