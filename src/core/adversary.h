// The Theorem 1 / Theorem 5 proof adversaries, made executable.
//
// Theorem 1's construction: fix Upsilon's history to output {p1,...,pn}
// forever (legitimate in every failure-free run). Run p_{n+1} solo until
// the candidate outputs some pc1 (indistinguishable, for p_{n+1}, from a
// run where everyone else crashed, so a correct candidate must produce an
// output). Let every process take exactly one step, then run pc1 solo
// until it outputs pc2 != pc1 (indistinguishable from pc1 being the only
// correct process, where the candidate must exclude someone other than
// pc1). Iterate: the extracted output never stabilizes.
//
// soloChase() drives exactly this schedule against a candidate reduction
// and counts the forced output switches; defeat shows up as a switch
// count that grows without bound in the run length (equivalently, a
// last-instability time that tracks the horizon). For candidates that go
// quiescent instead of switching, the chase detects the stall and either
// re-targets the agreed-upon output (per the indistinguishability
// argument) or reports persistent disagreement — and crashExposure()
// covers static candidates by realizing a failure pattern that makes
// their frozen output illegal.
//
// Theorem 5 generalizes the construction to Upsilon^f vs Omega^f; the
// same chase applies with the candidate publishing f-sets (we reuse the
// singleton convention with f = n).
#pragma once

#include "sim/runner.h"

namespace wfd::core {

using sim::AlgoFn;
using sim::RunResult;
using sim::Time;

struct ChaseStats {
  int switches = 0;           // phases in which the chased target produced
                              // (confirmed) an output different from itself
  Time last_switch_time = 0;  // world time of the last forced switch
  Time last_instability = 0;  // time of the last publish change anywhere
  bool final_agreement = false;  // all processes agree at the horizon
  Time steps = 0;
  RunResult run;              // full run for further inspection
};

// Run the Theorem 1 adversary for `total_steps` steps of an (n+1)-process
// failure-free run with Upsilon pinned to {p1..pn}. `phase_cap` bounds a
// solo phase before the stall heuristic kicks in.
ChaseStats soloChase(const AlgoFn& candidate, int n_plus_1, Time total_steps,
                     Time phase_cap = 4096, std::uint64_t seed = 1);

struct ExposureStats {
  bool stable = false;      // the candidate's outputs stabilized & agree
  ProcSet stable_pc;        // the agreed pc (if stable)
  bool legal = false;       // Pi - {pc} contains a correct process
  RunResult run;
};

// The static-candidate counterexample: crash all of {p1..pn} mid-run
// (Upsilon outputting {p1..pn} stays legitimate); a candidate frozen on
// pc = p_{n+1} then claims Pi - {p_{n+1}} = the all-faulty set contains a
// correct process — illegal.
ExposureStats crashExposure(const AlgoFn& candidate, int n_plus_1,
                            Time total_steps, std::uint64_t seed = 1);

}  // namespace wfd::core
