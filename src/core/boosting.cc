#include "core/boosting.h"

#include <cassert>

#include "core/kconverge.h"

namespace wfd::core {

Coro<Unit> consensusBoosting(Env& env, Value v) {
  env.propose(v);
  const int n_plus_1 = env.nProcs();
  const int n = n_plus_1 - 1;
  assert(n_plus_1 <= 31 && "L's bitmask is packed into an ObjKey index");
  const sim::ObjId d_reg = env.reg(sim::ObjKey{"boost.D"});

  for (int r = 1;; ++r) {
    // Commit-adopt (1-converge) carries all safety.
    const Pick p = co_await kConverge(env, sim::ObjKey{"boost.ca", r}, 1, v);
    v = p.value;
    if (p.committed) {
      co_await env.write(d_reg, RegVal(v));
      env.decide(v);
      co_return Unit{};
    }
    {
      const RegVal d = (co_await env.read(d_reg)).scalar;
      if (!d.isBottom()) {
        env.decide(d.asInt());
        co_return Unit{};
      }
    }

    const ProcSet l = (co_await env.queryFd()).scalar.asSet();
    assert(l.size() == n && "consensusBoosting requires an Omega_n history");
    const sim::ObjId ann_reg = env.reg(sim::ObjKey{"boost.Ann", r});

    if (l.contains(env.me())) {
      // Group consensus among L's n members: the object is keyed by
      // (round, L), so at most the n processes of L ever propose to it —
      // the port limit the boosting question is about.
      const sim::ObjId cons = env.cons(
          sim::ObjKey{"boost.cons", r, static_cast<int>(l.bits())}, n);
      const RegVal w = (co_await env.consPropose(cons, RegVal(v))).scalar;
      v = w.asInt();
      co_await env.write(ann_reg, w);
    } else {
      // Excluded process: adopt L's announced winner. Re-check the
      // detector (pre-stabilization L may be junk) and D (a decision
      // releases everyone) while waiting.
      for (;;) {
        const RegVal a = (co_await env.read(ann_reg)).scalar;
        if (!a.isBottom()) {
          v = a.asInt();
          break;
        }
        const RegVal d = (co_await env.read(d_reg)).scalar;
        if (!d.isBottom()) {
          env.decide(d.asInt());
          co_return Unit{};
        }
        const ProcSet l2 = (co_await env.queryFd()).scalar.asSet();
        if (l2 != l) break;  // output not stable yet: next round
      }
    }
  }
}

}  // namespace wfd::core
