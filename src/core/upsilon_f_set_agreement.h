// Fig. 2: the Upsilon^f-based f-resilient f-set-agreement protocol
// (Sect. 5.3).
//
// Follows the Fig. 1 skeleton with two changes (reconstructed from the
// prose and the Theorem 6 proof):
//   * Rounds open with f-converge instead of n-converge.
//   * Gladiators (processes in U, |U| >= n+1-f) must jointly commit on at
//     most |U|+f-n-1 distinct values so that, together with the at most
//     n+1-|U| citizen values, at most f values survive a stable round. To
//     do that each gladiator writes its value into atomic snapshot object
//     A[r][k] (line 16), repeatedly scans until it sees at least n+1-f
//     non-⊥ entries (lines 17-19), adopts the minimum value of its last
//     snapshot (line 25) and runs (|U|+f-n-1)-converge[r][k] on it
//     (line 26). Snapshot containment bounds the number of distinct
//     adopted values by |U|-1 - (n+1-f) + 1 = |U|+f-n-1 whenever some
//     gladiator is faulty and all citizens are faulty.
// The blocking scan loop also polls D[r], D, Stable[r] and Upsilon^f
// itself, per the escape argument in the Theorem 6 proof ("every correct
// process that is blocked in lines 17-19 would eventually read the value
// and escape").
#pragma once

#include "sim/env.h"

namespace wfd::core {

using sim::Coro;
using sim::Env;
using sim::Unit;

// The process automaton for f-resilient f-set agreement. Requires an
// Upsilon^f (or stronger) detector; run it under a failure pattern in E_f.
Coro<Unit> upsilonFSetAgreement(Env& env, int f, Value v);

// Instance form for multi-instance streams (sim/service): every object
// key carries `instance` as its LAST index so instances sharing one world
// never collide, and `instance = -1` reproduces the one-shot keys
// byte-for-byte (unused ObjKey indices default to -1). Returns the
// decided value; proposing/deciding is the caller's job. Each process may
// invoke a given instance at most once.
Coro<Value> upsilonFSetAgreementInstance(Env& env, int f, int instance,
                                         Value v);

}  // namespace wfd::core
