// RegVal: the universal value type held by simulated shared registers.
//
// The algorithms in the paper store heterogeneous data in shared memory:
// plain proposal values (Fig. 1 line 11), booleans (Stable[r]), process
// sets (failure detector outputs relayed through memory, Fig. 3's R[i]),
// and small tuples (the k-converge helper entries, Afek-snapshot cells).
// RegVal is a closed, value-semantic sum over exactly those shapes; tuples
// are immutable boxed vectors so that nesting (e.g. a snapshot embedded in
// an Afek cell) stays cheap to copy and safe to share.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/proc_set.h"
#include "common/types.h"

namespace wfd {

class RegVal;

// Immutable tuple payload. shared_ptr keeps copies O(1); contents are
// never mutated after construction, so sharing is safe.
using RegTuple = std::shared_ptr<const std::vector<RegVal>>;

class RegVal {
 public:
  // Bottom (the paper's ⊥): the initial content of every register.
  RegVal() = default;
  RegVal(std::int64_t v) : v_(v) {}                    // NOLINT(google-explicit-constructor)
  RegVal(bool b) : v_(b) {}                            // NOLINT(google-explicit-constructor)
  RegVal(const ProcSet& s) : v_(s) {}                  // NOLINT(google-explicit-constructor)
  static RegVal tuple(std::vector<RegVal> elems) {
    RegVal r;
    r.v_ = std::make_shared<const std::vector<RegVal>>(std::move(elems));
    return r;
  }

  [[nodiscard]] bool isBottom() const {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool isInt() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool isBool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool isSet() const {
    return std::holds_alternative<ProcSet>(v_);
  }
  [[nodiscard]] bool isTuple() const {
    return std::holds_alternative<RegTuple>(v_);
  }

  // Checked accessors: calling the wrong one on a live simulation is a
  // protocol bug, so they assert rather than return optionals.
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] const ProcSet& asSet() const;
  [[nodiscard]] const std::vector<RegVal>& asTuple() const;

  [[nodiscard]] std::string toString() const;

  // Stable structural 64-bit hash (tuples hashed element-wise). Used by
  // the trace hash (sim/trace.h) — must depend only on the value, never
  // on addresses, so that run hashes replay across processes/platforms.
  [[nodiscard]] std::uint64_t hash64() const;

  // Deep structural equality (tuples compared element-wise).
  friend bool operator==(const RegVal& a, const RegVal& b);

 private:
  std::variant<std::monostate, std::int64_t, bool, ProcSet, RegTuple> v_;
};

inline bool operator!=(const RegVal& a, const RegVal& b) { return !(a == b); }

}  // namespace wfd
