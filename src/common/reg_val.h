// RegVal: the universal value type held by simulated shared registers.
//
// The algorithms in the paper store heterogeneous data in shared memory:
// plain proposal values (Fig. 1 line 11), booleans (Stable[r]), process
// sets (failure detector outputs relayed through memory, Fig. 3's R[i]),
// and small tuples (the k-converge helper entries, Afek-snapshot cells).
// RegVal is a closed, value-semantic sum over exactly those shapes; tuples
// are immutable shared packed arrays so that nesting (e.g. a snapshot
// embedded in an Afek cell) stays cheap to copy and safe to share.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/proc_set.h"
#include "common/types.h"

namespace wfd {

class RegVal {
 public:
  // Non-owning, allocation-free view over a tuple's elements. Returned by
  // asTuple(); valid as long as the RegVal (or any copy sharing its
  // payload) is alive. Supports the vector-ish surface the algorithms
  // use: size(), operator[], range-for.
  class TupleView {
   public:
    using value_type = RegVal;
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    const RegVal& operator[](std::size_t i) const {
      assert(i < size_);
      return data_[i];
    }
    [[nodiscard]] const RegVal* begin() const { return data_; }
    [[nodiscard]] const RegVal* end() const { return data_ + size_; }

   private:
    friend class RegVal;
    constexpr TupleView(const RegVal* data, std::size_t size)
        : data_(data), size_(size) {}
    const RegVal* data_ = nullptr;
    std::size_t size_ = 0;
  };

  // Bottom (the paper's ⊥): the initial content of every register.
  RegVal() = default;
  RegVal(std::int64_t v) : v_(v) {}                    // NOLINT(google-explicit-constructor)
  RegVal(bool b) : v_(b) {}                            // NOLINT(google-explicit-constructor)
  RegVal(const ProcSet& s) : v_(s) {}                  // NOLINT(google-explicit-constructor)
  static RegVal tuple(std::vector<RegVal> elems);

  [[nodiscard]] bool isBottom() const {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool isInt() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool isBool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool isSet() const {
    return std::holds_alternative<ProcSet>(v_);
  }
  [[nodiscard]] bool isTuple() const {
    return std::holds_alternative<Tuple>(v_);
  }

  // Checked accessors: calling the wrong one on a live simulation is a
  // protocol bug, so they assert rather than return optionals.
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] const ProcSet& asSet() const;
  [[nodiscard]] TupleView asTuple() const;

  [[nodiscard]] std::string toString() const;

  // Stable structural 64-bit hash (tuples hashed element-wise). Used by
  // the trace hash (sim/trace.h) — must depend only on the value, never
  // on addresses, so that run hashes replay across processes/platforms.
  [[nodiscard]] std::uint64_t hash64() const;

  // Deep structural equality (tuples compared element-wise).
  friend bool operator==(const RegVal& a, const RegVal& b);

 private:
  // Immutable packed tuple payload: a single make_shared<RegVal[]>
  // allocation holds the control block and the elements together (the
  // previous shared_ptr<const vector<RegVal>> boxing cost two). Copies
  // stay O(1); contents are never mutated after construction, so sharing
  // is safe. Kept at the same variant index as the old representation so
  // hash64() — and with it every recorded trace hash — is unchanged.
  struct Tuple {
    std::shared_ptr<const RegVal[]> elems;
    std::size_t size = 0;
  };

  std::variant<std::monostate, std::int64_t, bool, ProcSet, Tuple> v_;
};

inline bool operator!=(const RegVal& a, const RegVal& b) { return !(a == b); }

}  // namespace wfd
