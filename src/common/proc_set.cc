#include "common/proc_set.h"

namespace wfd {

std::vector<Pid> ProcSet::members() const {
  std::vector<Pid> out;
  out.reserve(static_cast<std::size_t>(size()));
  std::uint64_t b = bits_;
  while (b != 0) {
    const int p = __builtin_ctzll(b);
    out.push_back(p);
    b &= b - 1;
  }
  return out;
}

std::string ProcSet::toString() const {
  std::string s = "{";
  bool first = true;
  for (Pid p : members()) {
    if (!first) s += ",";
    s += "p" + std::to_string(p + 1);  // paper is 1-based
    first = false;
  }
  s += "}";
  return s;
}

}  // namespace wfd
