#include "common/proc_set.h"

namespace wfd {

std::vector<Pid> ProcSet::members() const {
  std::vector<Pid> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (Pid p : *this) out.push_back(p);
  return out;
}

std::string ProcSet::toString() const {
  std::string s = "{";
  bool first = true;
  for (Pid p : *this) {
    if (!first) s += ",";
    s += "p" + std::to_string(p + 1);  // paper is 1-based
    first = false;
  }
  s += "}";
  return s;
}

}  // namespace wfd
