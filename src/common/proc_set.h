// ProcSet: a value-semantic set of process identifiers.
//
// Failure detector ranges in this library are (encodings of) process sets:
// Upsilon outputs a non-empty set, Omega a singleton, Omega^k a k-sized
// set. A flat 64-bit mask keeps sets trivially copyable and hashable,
// which the simulator relies on for register values and trace records.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.h"

namespace wfd {

class ProcSet {
 public:
  constexpr ProcSet() = default;
  ProcSet(std::initializer_list<Pid> pids) {
    for (Pid p : pids) insert(p);
  }

  // The full set {p_0, ..., p_{n_plus_1 - 1}} (the paper's Pi).
  static ProcSet full(int n_plus_1) {
    assert(n_plus_1 >= 0 && n_plus_1 <= kMaxProcs);
    ProcSet s;
    s.bits_ = (n_plus_1 == kMaxProcs) ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << n_plus_1) - 1);
    return s;
  }

  static ProcSet singleton(Pid p) {
    ProcSet s;
    s.insert(p);
    return s;
  }

  static ProcSet fromBits(std::uint64_t bits) {
    ProcSet s;
    s.bits_ = bits;
    return s;
  }

  void insert(Pid p) {
    assert(p >= 0 && p < kMaxProcs);
    bits_ |= std::uint64_t{1} << p;
  }
  void erase(Pid p) {
    assert(p >= 0 && p < kMaxProcs);
    bits_ &= ~(std::uint64_t{1} << p);
  }
  [[nodiscard]] bool contains(Pid p) const {
    return p >= 0 && p < kMaxProcs && ((bits_ >> p) & 1) != 0;
  }

  [[nodiscard]] int size() const { return __builtin_popcountll(bits_); }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] std::uint64_t bits() const { return bits_; }

  // Set algebra. complement() needs the universe size since the mask alone
  // does not know n+1.
  [[nodiscard]] ProcSet complement(int n_plus_1) const {
    return fromBits(full(n_plus_1).bits_ & ~bits_);
  }
  [[nodiscard]] ProcSet unionWith(const ProcSet& o) const {
    return fromBits(bits_ | o.bits_);
  }
  [[nodiscard]] ProcSet intersect(const ProcSet& o) const {
    return fromBits(bits_ & o.bits_);
  }
  [[nodiscard]] ProcSet minus(const ProcSet& o) const {
    return fromBits(bits_ & ~o.bits_);
  }
  [[nodiscard]] bool subsetOf(const ProcSet& o) const {
    return (bits_ & ~o.bits_) == 0;
  }

  // Smallest pid in the set; -1 when empty.
  [[nodiscard]] Pid min() const {
    return empty() ? -1 : __builtin_ctzll(bits_);
  }

  [[nodiscard]] std::vector<Pid> members() const;

  // Renders as the paper's notation, e.g. "{p1,p3}".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const ProcSet&, const ProcSet&) = default;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace wfd
