// ProcSet: a value-semantic set of process identifiers.
//
// Failure detector ranges in this library are (encodings of) process sets:
// Upsilon outputs a non-empty set, Omega a singleton, Omega^k a k-sized
// set. A flat 64-bit mask keeps sets trivially copyable and hashable,
// which the simulator relies on for register values and trace records.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "common/types.h"

namespace wfd {

class ProcSet {
 public:
  constexpr ProcSet() = default;
  ProcSet(std::initializer_list<Pid> pids) {
    for (Pid p : pids) insert(p);
  }

  // The full set {p_0, ..., p_{n_plus_1 - 1}} (the paper's Pi).
  static ProcSet full(int n_plus_1) {
    assert(n_plus_1 >= 0 && n_plus_1 <= kMaxProcs);
    ProcSet s;
    s.bits_ = (n_plus_1 == kMaxProcs) ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << n_plus_1) - 1);
    return s;
  }

  static ProcSet singleton(Pid p) {
    ProcSet s;
    s.insert(p);
    return s;
  }

  static ProcSet fromBits(std::uint64_t bits) {
    ProcSet s;
    s.bits_ = bits;
    return s;
  }

  void insert(Pid p) {
    assert(p >= 0 && p < kMaxProcs);
    bits_ |= std::uint64_t{1} << p;
  }
  void erase(Pid p) {
    assert(p >= 0 && p < kMaxProcs);
    bits_ &= ~(std::uint64_t{1} << p);
  }
  [[nodiscard]] bool contains(Pid p) const {
    return p >= 0 && p < kMaxProcs && ((bits_ >> p) & 1) != 0;
  }

  [[nodiscard]] int size() const { return __builtin_popcountll(bits_); }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] std::uint64_t bits() const { return bits_; }

  // Set algebra. complement() needs the universe size since the mask alone
  // does not know n+1.
  [[nodiscard]] ProcSet complement(int n_plus_1) const {
    return fromBits(full(n_plus_1).bits_ & ~bits_);
  }
  [[nodiscard]] ProcSet unionWith(const ProcSet& o) const {
    return fromBits(bits_ | o.bits_);
  }
  [[nodiscard]] ProcSet intersect(const ProcSet& o) const {
    return fromBits(bits_ & o.bits_);
  }
  [[nodiscard]] ProcSet minus(const ProcSet& o) const {
    return fromBits(bits_ & ~o.bits_);
  }
  [[nodiscard]] bool subsetOf(const ProcSet& o) const {
    return (bits_ & ~o.bits_) == 0;
  }

  // Smallest pid in the set; -1 when empty.
  [[nodiscard]] Pid min() const {
    return empty() ? -1 : __builtin_ctzll(bits_);
  }

  // The i-th smallest member (0-based). Precondition: 0 <= i < size().
  // This is bit-select: with BMI2 a single PDEP, otherwise popcount
  // narrowing over halves — either way no memory traffic, which is what
  // lets the schedule policies drop their members() vectors.
  [[nodiscard]] Pid nth(int i) const {
    assert(i >= 0 && i < size());
    // A contiguous-from-zero set {0..m} — every runnable set until the
    // first crash or completion — selects by identity.
    if ((bits_ & (bits_ + 1)) == 0) return i;
#if defined(__BMI2__)
    return static_cast<Pid>(
        __builtin_ctzll(_pdep_u64(std::uint64_t{1} << i, bits_)));
#else
    std::uint64_t b = bits_;
    auto r = static_cast<unsigned>(i);
    Pid base = 0;
    for (int half = 32; half >= 8; half /= 2) {
      const auto lo = static_cast<unsigned>(
          __builtin_popcountll(b & ((std::uint64_t{1} << half) - 1)));
      if (r >= lo) {
        r -= lo;
        base += half;
        b >>= half;
      }
    }
    while (r-- > 0) b &= b - 1;  // <= 7 iterations after narrowing
    return base + __builtin_ctzll(b);
#endif
  }

  // Smallest member strictly greater than p; -1 when none. Accepts p = -1
  // ("above nothing", i.e. min()) so round-robin state needs no special
  // first-call case.
  [[nodiscard]] Pid nextAbove(Pid p) const {
    assert(p >= -1 && p < kMaxProcs);
    // p = kMaxProcs - 1 would shift by 64 below (undefined), and has no
    // possible successor anyway.
    if (p >= kMaxProcs - 1) return -1;
    const std::uint64_t above =
        p < 0 ? bits_ : (bits_ >> (p + 1)) << (p + 1);
    return above == 0 ? -1 : __builtin_ctzll(above);
  }

  // Allocation-free forward iteration in increasing pid order. The
  // iterator is just the not-yet-visited mask, so begin()/end() cost
  // nothing and range-for over a ProcSet never touches the heap.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Pid;
    using difference_type = std::ptrdiff_t;

    constexpr iterator() = default;
    Pid operator*() const {
      assert(rest_ != 0);
      return __builtin_ctzll(rest_);
    }
    iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    friend class ProcSet;
    explicit constexpr iterator(std::uint64_t rest) : rest_(rest) {}
    std::uint64_t rest_ = 0;
  };
  using const_iterator = iterator;

  [[nodiscard]] iterator begin() const { return iterator(bits_); }
  [[nodiscard]] iterator end() const { return iterator(0); }

  [[nodiscard]] std::vector<Pid> members() const;

  // Renders as the paper's notation, e.g. "{p1,p3}".
  [[nodiscard]] std::string toString() const;

  friend bool operator==(const ProcSet&, const ProcSet&) = default;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace wfd
