// Deterministic pseudo-randomness for the simulator.
//
// Every run is a pure function of its seed: the scheduler draws from a
// stateful xoshiro256++ stream, while failure detector histories use the
// *stateless* hashedUniform so that H(p,t) is a well-defined function of
// (seed, p, t) no matter how often or in what order processes query it --
// exactly the paper's notion of a failure detector history.
#pragma once

#include <cstdint>

namespace wfd {

// xoshiro256++ (Blackman & Vigna). Small, fast, and good enough for
// schedule sampling; we do not need cryptographic strength.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  bool chance(double p);  // true with probability p

 private:
  std::uint64_t s_[4];
};

// SplitMix64-based stateless hash; uniform over [0, bound).
std::uint64_t hashedUniform(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b, std::uint64_t bound);

}  // namespace wfd
