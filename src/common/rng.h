// Deterministic pseudo-randomness for the simulator.
//
// Every run is a pure function of its seed: the scheduler draws from a
// stateful xoshiro256++ stream, while failure detector histories use the
// *stateless* hashedUniform so that H(p,t) is a well-defined function of
// (seed, p, t) no matter how often or in what order processes query it --
// exactly the paper's notion of a failure detector history.
#pragma once

#include <cassert>
#include <cstdint>

namespace wfd {

// xoshiro256++ (Blackman & Vigna). Small, fast, and good enough for
// schedule sampling; we do not need cryptographic strength.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // One xoshiro256++ draw. Inline: the schedulers call this every step.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  //
  // Rejection sampling against a bound-derived limit keeps the draw
  // unbiased; the limit (one 64-bit division) is cached for the last
  // bound seen, since schedule sampling asks for the same bound millions
  // of times in a row. The cache changes cost only — the returned draw
  // sequence is identical with or without it.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    if (bound != cached_bound_) {
      cached_bound_ = bound;
      cached_limit_ = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    }
    std::uint64_t r = next();
    while (r >= cached_limit_) r = next();
    // Power-of-two bounds take the mask form of the same remainder.
    return (bound & (bound - 1)) == 0 ? r & (bound - 1) : r % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  bool chance(double p);  // true with probability p

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  std::uint64_t cached_bound_ = 0;  // 0 = no limit cached (bound is > 0)
  std::uint64_t cached_limit_ = 0;
};

// SplitMix64-based stateless hash; uniform over [0, bound).
std::uint64_t hashedUniform(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b, std::uint64_t bound);

}  // namespace wfd
