#include "common/reg_val.h"

#include <cassert>

namespace wfd {

std::int64_t RegVal::asInt() const {
  assert(isInt() && "RegVal: expected int");
  return std::get<std::int64_t>(v_);
}

bool RegVal::asBool() const {
  assert(isBool() && "RegVal: expected bool");
  return std::get<bool>(v_);
}

const ProcSet& RegVal::asSet() const {
  assert(isSet() && "RegVal: expected ProcSet");
  return std::get<ProcSet>(v_);
}

RegVal RegVal::tuple(std::vector<RegVal> elems) {
  Tuple t;
  t.size = elems.size();
  if (t.size > 0) {
    // One allocation for control block + elements together.
    std::shared_ptr<RegVal[]> buf = std::make_shared<RegVal[]>(t.size);
    for (std::size_t i = 0; i < t.size; ++i) buf[i] = std::move(elems[i]);
    t.elems = std::move(buf);
  }
  RegVal r;
  r.v_ = std::move(t);
  return r;
}

RegVal::TupleView RegVal::asTuple() const {
  assert(isTuple() && "RegVal: expected tuple");
  const Tuple& t = std::get<Tuple>(v_);
  return {t.elems.get(), t.size};
}

bool operator==(const RegVal& a, const RegVal& b) {
  if (a.v_.index() != b.v_.index()) return false;
  if (a.isBottom()) return true;
  if (a.isInt()) return a.asInt() == b.asInt();
  if (a.isBool()) return a.asBool() == b.asBool();
  if (a.isSet()) return a.asSet() == b.asSet();
  const auto ta = a.asTuple();
  const auto tb = b.asTuple();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i] != tb[i]) return false;
  }
  return true;
}

std::uint64_t RegVal::hash64() const {
  // Alternative index seeds the hash so 0, false, {} and ⊥ all differ.
  const auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return h;
  };
  std::uint64_t h = mix(0xCBF29CE484222325ULL, v_.index());
  if (isInt()) return mix(h, static_cast<std::uint64_t>(asInt()));
  if (isBool()) return mix(h, asBool() ? 2 : 1);
  if (isSet()) return mix(h, asSet().bits());
  if (isTuple()) {
    const auto& t = asTuple();
    h = mix(h, t.size());
    for (const auto& e : t) h = mix(h, e.hash64());
  }
  return h;
}

std::string RegVal::toString() const {
  if (isBottom()) return "⊥";
  if (isInt()) return std::to_string(asInt());
  if (isBool()) return asBool() ? "true" : "false";
  if (isSet()) return asSet().toString();
  std::string s = "(";
  const auto& t = asTuple();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ", ";
    s += t[i].toString();
  }
  s += ")";
  return s;
}

}  // namespace wfd
