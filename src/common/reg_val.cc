#include "common/reg_val.h"

#include <cassert>

namespace wfd {

std::int64_t RegVal::asInt() const {
  assert(isInt() && "RegVal: expected int");
  return std::get<std::int64_t>(v_);
}

bool RegVal::asBool() const {
  assert(isBool() && "RegVal: expected bool");
  return std::get<bool>(v_);
}

const ProcSet& RegVal::asSet() const {
  assert(isSet() && "RegVal: expected ProcSet");
  return std::get<ProcSet>(v_);
}

const std::vector<RegVal>& RegVal::asTuple() const {
  assert(isTuple() && "RegVal: expected tuple");
  return *std::get<RegTuple>(v_);
}

bool operator==(const RegVal& a, const RegVal& b) {
  if (a.v_.index() != b.v_.index()) return false;
  if (a.isBottom()) return true;
  if (a.isInt()) return a.asInt() == b.asInt();
  if (a.isBool()) return a.asBool() == b.asBool();
  if (a.isSet()) return a.asSet() == b.asSet();
  const auto& ta = a.asTuple();
  const auto& tb = b.asTuple();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i] != tb[i]) return false;
  }
  return true;
}

std::string RegVal::toString() const {
  if (isBottom()) return "⊥";
  if (isInt()) return std::to_string(asInt());
  if (isBool()) return asBool() ? "true" : "false";
  if (isSet()) return asSet().toString();
  std::string s = "(";
  const auto& t = asTuple();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ", ";
    s += t[i].toString();
  }
  s += ")";
  return s;
}

}  // namespace wfd
