#include "common/rng.h"

#include <cassert>

namespace wfd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full state from splitmix64 per the xoshiro authors' advice.
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) {
  return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
}

std::uint64_t hashedUniform(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b, std::uint64_t bound) {
  assert(bound > 0);
  std::uint64_t x = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xC2B2AE3D27D4EB4FULL);
  const std::uint64_t h = splitmix64(x);
  // 64-bit multiply-shift range reduction (Lemire); bias is negligible for
  // the small bounds used here.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * bound) >> 64);
}

}  // namespace wfd
