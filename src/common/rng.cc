#include "common/rng.h"

#include <cassert>

namespace wfd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full state from splitmix64 per the xoshiro authors' advice.
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return r % bound;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) {
  return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
}

std::uint64_t hashedUniform(std::uint64_t seed, std::uint64_t a,
                            std::uint64_t b, std::uint64_t bound) {
  assert(bound > 0);
  std::uint64_t x = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xC2B2AE3D27D4EB4FULL);
  const std::uint64_t h = splitmix64(x);
  // 64-bit multiply-shift range reduction (Lemire); bias is negligible for
  // the small bounds used here.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * bound) >> 64);
}

}  // namespace wfd
