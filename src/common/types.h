// Basic identifiers shared by every module of the library.
//
// The paper's system is Pi = {p_1, ..., p_{n+1}}: n+1 processes of which up
// to f may crash (f = n in the wait-free sections). We index processes
// 0..n internally; pretty-printers emit the paper's 1-based names.
#pragma once

#include <cstdint>

namespace wfd {

// Process identifier, 0-based. Valid range for a system of n+1 processes is
// [0, n].
using Pid = int;

// Logical time: the global atomic-step counter of a run. The paper's time
// range T = {0} u N maps to step indices.
using Time = std::int64_t;

// Proposal / decision values for agreement tasks. kBottom plays the paper's
// "⊥" (absence of a value); it is never a legal proposal.
using Value = std::int64_t;
inline constexpr Value kBottomValue = INT64_MIN;

// Identifier of a shared object inside a World's object table.
using ObjId = std::int64_t;

// Maximum number of processes a ProcSet can hold. 64 covers every
// experiment in the paper (which works with small n) with a flat bitmask.
inline constexpr int kMaxProcs = 64;

}  // namespace wfd
