// The message-passing substrate (sim/net/) and its realized detectors:
// seed determinism, the partial-synchrony envelope contract, golden trace
// hashes, offline + online axiom certification of heartbeat-realized
// <>P / Omega / Upsilon histories, legality of composing them with chaos
// crash injection, post-GST negative controls, and cache sharing.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::upsilonFSetAgreement;
using core::upsilonSetAgreement;
using sim::AuditMode;
using sim::BatchCell;
using sim::BatchOptions;
using sim::BatchRunner;
using sim::BatchStats;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::FdCache;
using sim::GlitchKind;
using sim::ReportCache;
using sim::RunConfig;
using sim::RunReport;
using sim::RunVerdict;
using sim::WatchdogConfig;
using sim::net::NetConfig;
using sim::net::NetHistoryPtr;
using sim::net::RealizedFd;
using sim::net::RealizedLens;
using sim::net::simulateHeartbeats;

// A substrate configuration with every pre-GST fault class armed.
NetConfig faultyNet(std::uint64_t seed, Time gst = 64) {
  NetConfig cfg;
  cfg.env = {gst, 4};
  cfg.faults = {/*min_delay=*/1, /*max_delay=*/12, /*drop_permille=*/150,
                /*partitions=*/1, /*partition_len=*/32};
  cfg.seed = seed;
  return cfg;
}

// ---- Substrate determinism and the envelope contract ----

TEST(NetWorld, SameSeedIsBitIdentical) {
  const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
  const auto a = simulateHeartbeats(fp, faultyNet(11));
  const auto b = simulateHeartbeats(fp, faultyNet(11));
  EXPECT_EQ(a->counters.trace_hash, b->counters.trace_hash);
  EXPECT_EQ(a->counters.sent, b->counters.sent);
  EXPECT_EQ(a->counters.dropped, b->counters.dropped);
  ASSERT_EQ(a->switches.size(), b->switches.size());
  for (std::size_t p = 0; p < a->switches.size(); ++p) {
    ASSERT_EQ(a->switches[p].size(), b->switches[p].size());
    for (std::size_t i = 0; i < a->switches[p].size(); ++i) {
      EXPECT_EQ(a->switches[p][i].at, b->switches[p][i].at);
      EXPECT_EQ(a->switches[p][i].out.bits(), b->switches[p][i].out.bits());
    }
  }
}

TEST(NetWorld, DifferentSeedsDiverge) {
  const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
  const auto a = simulateHeartbeats(fp, faultyNet(11));
  const auto b = simulateHeartbeats(fp, faultyNet(12));
  EXPECT_NE(a->counters.trace_hash, b->counters.trace_hash);
}

TEST(NetWorld, EnvelopeBoundsPostGstLagAcrossSeeds) {
  // Whatever the pre-GST fault draw, no message sent at or after GST may
  // take longer than delta — the graceful-degradation half of the
  // partial-synchrony contract.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
    const NetConfig cfg = faultyNet(seed);
    const auto h = simulateHeartbeats(fp, cfg);
    EXPECT_GE(h->counters.max_post_gst_lag, 1) << "seed " << seed;
    EXPECT_LE(h->counters.max_post_gst_lag, cfg.env.delta) << "seed " << seed;
    // The fault classes actually fired (this config arms all of them).
    EXPECT_GT(h->counters.dropped + h->counters.partition_dropped, 0)
        << "seed " << seed;
    EXPECT_GT(h->counters.delivered, 0) << "seed " << seed;
  }
}

TEST(NetWorld, FaultFreeSubstrateDropsNothing) {
  NetConfig cfg;
  cfg.env = {0, 4};  // synchronous from the start
  cfg.seed = 3;
  const auto h = simulateHeartbeats(FailurePattern::failureFree(4), cfg);
  EXPECT_EQ(h->counters.dropped, 0);
  EXPECT_EQ(h->counters.partition_dropped, 0);
  EXPECT_LE(h->counters.max_post_gst_lag, cfg.env.delta);
}

// ---- Golden hashes: the substrate is a pinned, replayable artifact ----
//
// These values pin the full event stream (sends, fates, timers, output
// switches) of two workloads. A change here is a semantic change to the
// substrate and must be deliberate (docs/NET.md).

TEST(NetWorld, GoldenHashWorkload1) {
  NetConfig cfg;
  cfg.env = {64, 4};
  cfg.faults = {1, 12, 150, 1, 32};
  cfg.seed = 42;
  const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
  const auto h = simulateHeartbeats(fp, cfg);
  EXPECT_EQ(h->counters.trace_hash, 0xda4ddcd2b3443314ULL);
  EXPECT_EQ(h->horizon, 832);
  EXPECT_EQ(h->counters.sent, 3813);
  EXPECT_EQ(h->counters.dropped, 37);
  EXPECT_EQ(h->counters.partition_dropped, 94);
  EXPECT_EQ(h->counters.output_switches, 48);
}

TEST(NetWorld, GoldenHashWorkload2) {
  NetConfig cfg;
  cfg.env = {128, 3};
  cfg.faults = {2, 20, 300, 2, 48};
  cfg.hb = {3, 5, 3};
  cfg.seed = 7;
  const auto fp = FailurePattern::withCrashes(5, {{0, 10}, {4, 90}});
  const auto h = simulateHeartbeats(fp, cfg);
  EXPECT_EQ(h->counters.trace_hash, 0xcadaaa2cfb58959eULL);
  EXPECT_EQ(h->horizon, 1024);
  EXPECT_EQ(h->counters.sent, 4240);
  EXPECT_EQ(h->counters.dropped, 141);
  EXPECT_EQ(h->counters.partition_dropped, 144);
  EXPECT_EQ(h->counters.output_switches, 90);
}

// ---- Offline certification: realized histories satisfy their axioms ----

TEST(RealizedFd, LensesSatisfyTheirAxiomFamiliesOffline) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto fp = FailurePattern::random(5, 2, 60, seed * 31);
    const auto h = simulateHeartbeats(fp, faultyNet(seed));
    const Time horizon = h->horizon + 64;

    const auto ep = sim::net::makeRealizedEventuallyPerfect(h);
    const auto ep_rep = fd::checkEventuallyPerfect(*ep, fp, horizon);
    EXPECT_TRUE(ep_rep.ok) << "seed " << seed << ": " << ep_rep.violation;

    const auto om = sim::net::makeRealizedOmega(h);
    const auto om_rep = fd::checkOmegaK(*om, fp, 1, horizon);
    EXPECT_TRUE(om_rep.ok) << "seed " << seed << ": " << om_rep.violation;

    const int f = fp.nProcs() - 1;
    const auto up = sim::net::makeRealizedUpsilon(h, f);
    const auto up_rep = fd::checkUpsilonF(*up, fp, f, horizon);
    EXPECT_TRUE(up_rep.ok) << "seed " << seed << ": " << up_rep.violation;
  }
}

TEST(RealizedFd, StabilizationTimeIsComputedNotAssumed) {
  // The reported witness must really witness: at stab - 1 some process's
  // answer still differs from the stable value (otherwise the computed
  // time would be smaller), and from stab on every live answer matches.
  const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
  const auto h = simulateHeartbeats(fp, faultyNet(5));
  for (const RealizedLens lens : {RealizedLens::kEventuallyPerfect,
                                  RealizedLens::kOmega, RealizedLens::kUpsilon}) {
    const RealizedFd fd(h, lens, /*f=*/3);
    const Time stab = fd.stabilizationTime();
    for (Pid p = 0; p < fp.nProcs(); ++p) {
      if (!fp.isCorrect(p)) continue;
      for (Time t = stab; t <= h->horizon; t += 7) {
        EXPECT_EQ(fd.query(p, t).bits(), fd.stableValue().bits())
            << fd.name() << " p" << p << " t" << t;
      }
    }
    if (stab > 0) {
      bool witnessed = false;
      for (Pid p = 0; p < fp.nProcs() && !witnessed; ++p) {
        if (fp.crashTime(p) >= stab - 1 &&
            fd.query(p, stab - 1).bits() != fd.stableValue().bits()) {
          witnessed = true;
        }
      }
      EXPECT_TRUE(witnessed) << fd.name() << " stab " << stab << " is slack";
    }
  }
}

TEST(RealizedFd, QueriesBeyondHorizonClampToFinalValue) {
  const auto fp = FailurePattern::failureFree(3);
  const auto h = simulateHeartbeats(fp, faultyNet(9, /*gst=*/32));
  const auto om = sim::net::makeRealizedOmega(h);
  EXPECT_EQ(om->query(0, h->horizon).bits(),
            om->query(0, h->horizon + 1'000'000).bits());
}

// ---- Online certification: the step auditor accepts realized runs ----

sim::AlgoFn fig1Algo() {
  return [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
}

TEST(RealizedFd, AuditedFig1RunsCleanOnRealizedUpsilon) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 40}});
    const auto h = simulateHeartbeats(fp, faultyNet(seed));
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = sim::net::makeRealizedUpsilon(h, n_plus_1 - 1);
    cfg.seed = seed;
    cfg.audit = AuditMode::kThrow;  // any axiom slip aborts the run
    const auto res = runTask(cfg, fig1Algo(), test::distinctProposals(n_plus_1));
    EXPECT_TRUE(res.all_correct_done) << "seed " << seed;
    const auto check =
        checkKSetAgreement(res, n_plus_1 - 1, test::distinctProposals(n_plus_1));
    EXPECT_TRUE(check.ok()) << "seed " << seed << ": " << check.violation;
  }
}

TEST(RealizedFd, AuditedFig2RunsCleanOnRealizedUpsilonF) {
  const int n_plus_1 = 4;
  const int f = 2;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{0, 30}});
    const auto h = simulateHeartbeats(fp, faultyNet(seed));
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = sim::net::makeRealizedUpsilon(h, f);
    cfg.seed = seed;
    cfg.audit = AuditMode::kThrow;
    const auto algo = [f](Env& e, Value v) { return upsilonFSetAgreement(e, f, v); };
    const auto res = runTask(cfg, algo, test::distinctProposals(n_plus_1));
    EXPECT_TRUE(res.all_correct_done) << "seed " << seed;
    const auto check =
        checkKSetAgreement(res, f, test::distinctProposals(n_plus_1));
    EXPECT_TRUE(check.ok()) << "seed " << seed << ": " << check.violation;
  }
}

TEST(RealizedFd, AuditedEventuallyPerfectSamplerRunsClean) {
  // <>P has no shared-memory protocol here; a sampler automaton exercises
  // the online family checks (constancy + end-of-run equality with
  // faulty(F)) at every process.
  const auto sampler = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 80; ++i) (void)co_await e.queryFd();
    e.decide(0);
    co_return sim::Unit{};
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto fp = FailurePattern::withCrashes(4, {{2, 25}});
    const auto h = simulateHeartbeats(fp, faultyNet(seed));
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.fp = fp;
    cfg.fd = sim::net::makeRealizedEventuallyPerfect(h);
    cfg.seed = seed;
    cfg.audit = AuditMode::kThrow;
    const auto res = runTask(cfg, sampler, test::distinctProposals(4));
    EXPECT_TRUE(res.all_correct_done) << "seed " << seed;
  }
}

// ---- Composing realized detectors with chaos crash injection ----

TEST(RealizedFd, UpsilonAndOmegaComposeWithInjectedCrashes) {
  // Legality (docs/NET.md): the realized stable value excludes the
  // original pattern's min correct process l; protecting l keeps
  // stable != correct(F') for Upsilon and l in correct(F') for Omega,
  // whatever else the injector kills.
  const int n_plus_1 = 5;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 35}});
    const auto h = simulateHeartbeats(fp, faultyNet(seed));
    const Pid leader = fp.correct().members().front();
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = sim::net::makeRealizedUpsilon(h, n_plus_1 - 1);
    cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 3;
    chaos.protected_pids = ProcSet{leader};
    chaos.crashes.push_back({CrashInjection::Strategy::kRandom,
                             /*victim=*/-1, /*at=*/0, /*horizon=*/600,
                             /*count=*/2, /*seed=*/seed * 13});
    ASSERT_TRUE(chaos.legal());
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{3'000'000, 0, n_plus_1 - 1},
                     fig1Algo(), props);
    ASSERT_EQ(rep.verdict, RunVerdict::kOk)
        << "seed " << seed << ": " << sim::runVerdictName(rep.verdict) << " "
        << rep.detail;
    EXPECT_TRUE(checkKSetAgreement(rep.result, n_plus_1 - 1, props).ok());
  }
}

TEST(RealizedFd, EventuallyPerfectNeverComposesWithInjectedCrashes) {
  // The negative side of the legality table: <>P stabilizes on the
  // ORIGINAL faulty(F); any injected crash makes faulty(F') a strict
  // superset, so the end-of-run family check must flag the composition.
  const auto sampler = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 200; ++i) (void)co_await e.queryFd();
    e.decide(0);
    co_return sim::Unit{};
  };
  const auto fp = FailurePattern::withCrashes(4, {{3, 20}});
  const auto h = simulateHeartbeats(fp, faultyNet(2));
  RunConfig cfg;
  cfg.n_plus_1 = 4;
  cfg.fp = fp;
  cfg.fd = sim::net::makeRealizedEventuallyPerfect(h);
  cfg.seed = 2;
  ChaosConfig chaos;
  chaos.max_faulty = 2;
  chaos.crashes.push_back(
      {CrashInjection::Strategy::kAtTime, /*victim=*/1, /*at=*/50, 0, 1, 0});
  const RunReport rep = runChaosTask(
      cfg, chaos, WatchdogConfig{500'000, 0, 0}, sampler,
      test::distinctProposals(4));
  EXPECT_EQ(rep.verdict, RunVerdict::kAxiomViolation)
      << sim::runVerdictName(rep.verdict) << " " << rep.detail;
}

// ---- Negative controls: post-GST-style glitches are always caught ----

TEST(RealizedFd, IllegalGlitchesOnRealizedDetectorsAreAlwaysDetected) {
  const auto sampler = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 120; ++i) (void)co_await e.queryFd();
    e.decide(0);
    co_return sim::Unit{};
  };
  struct Control {
    RealizedLens lens;
    GlitchKind kind;
    const char* why;
  };
  const Control controls[] = {
      {RealizedLens::kEventuallyPerfect, GlitchKind::kEmptyAnswer,
       "stable {} != faulty(F)"},
      {RealizedLens::kEventuallyPerfect, GlitchKind::kPostStabFlap,
       "post-stabilization constancy"},
      {RealizedLens::kOmega, GlitchKind::kEmptyAnswer, "size != 1"},
      {RealizedLens::kOmega, GlitchKind::kStabExcludeCorrect,
       "no correct member"},
      {RealizedLens::kUpsilon, GlitchKind::kUndersizedAnswer, "size < n+1-f"},
      {RealizedLens::kUpsilon, GlitchKind::kStabToCorrect,
       "stable == correct(F)"},
  };
  const auto fp = FailurePattern::withCrashes(4, {{3, 30}});
  for (const Control& c : controls) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto h = simulateHeartbeats(fp, faultyNet(seed));
      RunConfig cfg;
      cfg.n_plus_1 = 4;
      cfg.fp = fp;
      cfg.fd = std::make_shared<const RealizedFd>(h, c.lens, /*f=*/2);
      cfg.seed = seed;
      ChaosConfig chaos;
      chaos.glitch = {c.kind, 0, seed};
      ASSERT_FALSE(chaos.legal());
      const RunReport rep =
          runChaosTask(cfg, chaos, WatchdogConfig{500'000, 0, 0}, sampler,
                       test::distinctProposals(4));
      EXPECT_EQ(rep.verdict, RunVerdict::kAxiomViolation)
          << sim::glitchName(c.kind) << " on lens "
          << static_cast<int>(c.lens) << " (" << c.why
          << ") escaped detection at seed " << seed << ": "
          << sim::runVerdictName(rep.verdict) << " " << rep.detail;
    }
  }
}

// ---- Caches: one simulation serves three lenses; cells replay ----

TEST(FdCacheNet, ThreeLensesShareOneSimulation) {
  FdCache cache;
  const auto fp = FailurePattern::withCrashes(4, {{3, 40}});
  const NetConfig cfg = faultyNet(21);
  const auto ep = cache.netEventuallyPerfect(fp, cfg);
  const auto om = cache.netOmega(fp, cfg);
  const auto up = cache.netUpsilonF(fp, 3, cfg);
  const auto* ep_r = dynamic_cast<const RealizedFd*>(ep.get());
  const auto* om_r = dynamic_cast<const RealizedFd*>(om.get());
  const auto* up_r = dynamic_cast<const RealizedFd*>(up.get());
  ASSERT_NE(ep_r, nullptr);
  ASSERT_NE(om_r, nullptr);
  ASSERT_NE(up_r, nullptr);
  EXPECT_EQ(&ep_r->history(), &om_r->history());
  EXPECT_EQ(&om_r->history(), &up_r->history());
  // Second lookups hit both layers.
  const auto ep2 = cache.netEventuallyPerfect(fp, cfg);
  EXPECT_EQ(ep.get(), ep2.get());
  EXPECT_GT(cache.hits(), 0u);
  // Same (fp, cfg) => the identical history object.
  EXPECT_EQ(cache.netHistory(fp, cfg).get(), &ep_r->history());
  // Distinct keyDigests per lens over the same execution.
  EXPECT_NE(ep->keyDigest(), om->keyDigest());
  EXPECT_NE(om->keyDigest(), up->keyDigest());
  EXPECT_NE(ep->keyDigest(), fd::kOpaqueFdDigest);
}

TEST(FdCacheNet, RealizedCellsMemoizeAndReplayBitIdentically) {
  auto cache = std::make_shared<FdCache>();
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  const auto make = [&](std::size_t i) {
    BatchCell cell;
    cell.cfg.n_plus_1 = n_plus_1;
    cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 40}});
    cell.cfg.fd = cache->netUpsilonF(*cell.cfg.fp, n_plus_1 - 1,
                                     faultyNet(100 + i));
    cell.cfg.seed = 100 + i;
    cell.algo = fig1Algo();
    cell.proposals = props;
    cell.memo_family = "net_test.fig1-realized";
    return cell;
  };
  std::vector<BatchCell> cells;
  for (std::size_t i = 0; i < 6; ++i) cells.push_back(make(i));
  ReportCache memo(64);
  BatchOptions opts;
  opts.jobs = 2;
  opts.memo = &memo;
  const BatchRunner runner(opts);
  BatchStats s1, s2;
  const auto r1 = runner.run(cells, &s1);
  const auto r2 = runner.run(cells, &s2);
  ASSERT_EQ(r1.size(), r2.size());
  EXPECT_EQ(s1.memo_hits, 0u);
  // Under a WFD_AUDIT latch every unset-audit cell is uncacheable; the
  // warm pass then re-runs (still bit-identically) instead of hitting.
  const std::size_t expect_hits =
      sim::resolvedAuditMode(std::nullopt).has_value() ? 0u : cells.size();
  EXPECT_EQ(s2.memo_hits, expect_hits);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(r1[i].ok()) << r1[i].detail;
    EXPECT_EQ(r1[i].trace_hash, r2[i].trace_hash);
    EXPECT_EQ(r1[i].decisions, r2[i].decisions);
  }
}

}  // namespace
}  // namespace wfd
