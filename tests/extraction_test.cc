// Fig. 3 / Theorem 10: extracting Upsilon^f from any stable f-non-trivial
// detector via phi_D. For every shipped (detector, phi) pair the emulated
// output must stabilize on a legal Upsilon^f value; the phi maps' defining
// property is unit-checked per detector.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkEmulatedUpsilonF;
using core::extractUpsilonF;
using core::PhiPtr;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

RunResult runExtraction(int n_plus_1, const FailurePattern& fp, fd::FdPtr d,
                        PhiPtr phi, std::uint64_t seed, Time steps = 120'000) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = std::move(d);
  cfg.seed = seed;
  cfg.max_steps = steps;
  return sim::runTask(
      cfg, [phi](Env& e, Value) { return extractUpsilonF(e, phi); },
      std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
}

// ---- D = Omega (f = n): the CHT-style special case of Sect. 6 ----

TEST(Extraction, FromOmega) {
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 40, seed);
    const auto rr = runExtraction(n_plus_1, fp, fd::makeOmega(fp, 100, seed),
                                  core::phiOmegaK(n_plus_1), seed);
    const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " correct "
                          << fp.correct().toString() << ": " << rep.violation;
  }
}

// ---- D = Omega^f in E_f ----

TEST(Extraction, FromOmegaFAcrossF) {
  const int n_plus_1 = 5;
  for (int f = 1; f <= 4; ++f) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto fp = FailurePattern::random(n_plus_1, f, 40, seed * 9 + f);
      const auto rr =
          runExtraction(n_plus_1, fp, fd::makeOmegaK(fp, f, 90, seed),
                        core::phiOmegaK(n_plus_1), seed);
      const auto rep = checkEmulatedUpsilonF(rr, f);
      EXPECT_TRUE(rep.ok()) << "f=" << f << " seed " << seed << ": "
                            << rep.violation;
    }
  }
}

// ---- D = Upsilon itself: extraction must reproduce a legal output
// (the identity sanity check — Upsilon is non-trivial by Theorem 2) ----

TEST(Extraction, FromUpsilonIsIdentityLike) {
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    const auto d = fd::makeUpsilon(fp, 100, seed);
    const auto rr = runExtraction(n_plus_1, fp, d, core::phiUpsilonSelf(),
                                  seed);
    const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
    ASSERT_TRUE(rep.ok()) << rep.violation;
    // phi maps d to itself, so the extracted stable value is exactly the
    // source detector's stable set.
    const auto* u = dynamic_cast<const fd::UpsilonFd*>(d.get());
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(rep.stable_value, u->stableSet());
  }
}

// ---- D = Upsilon^f across resiliences ----

TEST(Extraction, FromUpsilonFAcrossF) {
  const int n_plus_1 = 5;
  for (int f = 1; f <= 4; ++f) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto fp = FailurePattern::random(n_plus_1, f, 40, seed * 17 + f);
      const auto d = fd::makeUpsilonF(fp, f, 120, seed);
      const auto rr =
          runExtraction(n_plus_1, fp, d, core::phiUpsilonSelf(), seed);
      const auto rep = checkEmulatedUpsilonF(rr, f);
      ASSERT_TRUE(rep.ok()) << "f=" << f << " seed " << seed << ": "
                            << rep.violation;
      // Identity again: the emulated stable output is the source's set.
      const auto* u = dynamic_cast<const fd::UpsilonFd*>(d.get());
      ASSERT_NE(u, nullptr);
      EXPECT_EQ(rep.stable_value, u->stableSet());
    }
  }
}

// ---- D = stable anti-Omega ----

TEST(Extraction, FromStableAntiOmega) {
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 30, seed);
    const auto rr =
        runExtraction(n_plus_1, fp, fd::makeAntiOmega(fp, 80, seed),
                      core::phiAntiOmega(), seed);
    const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

// ---- w > 0: Fig. 3's batch-observation machinery (line 15) ----

TEST(Extraction, InflatedWStillExtractsFailureFree) {
  const int n_plus_1 = 3;
  for (int w : {1, 2, 5}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto fp = FailurePattern::failureFree(n_plus_1);
      const auto rr = runExtraction(
          n_plus_1, fp, fd::makeOmega(fp, 60, seed),
          core::phiWithInflatedW(core::phiOmegaK(n_plus_1), w), seed);
      const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
      EXPECT_TRUE(rep.ok()) << "w=" << w << " seed " << seed << ": "
                            << rep.violation;
    }
  }
}

TEST(Extraction, InflatedWBlocksAtPiWhenAProcessIsSilent) {
  // With w > 0 and a crashed process, the batches of line 15 never
  // complete, so the output stays Pi — which is legal exactly because
  // someone is faulty (Theorem 10 proof, case (1)).
  const int n_plus_1 = 3;
  const auto fp = FailurePattern::withCrashes(n_plus_1, {{2, 10}});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto rr = runExtraction(
        n_plus_1, fp, fd::makeOmega(fp, 60, seed),
        core::phiWithInflatedW(core::phiOmegaK(n_plus_1), 3), seed);
    const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
    ASSERT_TRUE(rep.ok()) << rep.violation;
    EXPECT_EQ(rep.stable_value, ProcSet::full(n_plus_1));
  }
}

// ---- The phi maps' defining property, checked against detector axioms:
// a run where correct(F) = phi(d).correct_sigma and every correct process
// forever observes d violates D's axioms (i.e. sigma is NOT a sample) ----

TEST(PhiMaps, OmegaPhiDesignatesNonSample) {
  const int n_plus_1 = 4;
  const auto phi = core::phiOmegaK(n_plus_1);
  for (std::uint64_t bits = 1; bits < (1u << n_plus_1); ++bits) {
    const ProcSet d = ProcSet::fromBits(bits);
    if (d.size() != 1) continue;  // Omega outputs singletons
    const auto r = phi->map(d);
    // In a run with correct(F) = r.correct_sigma, Omega must eventually
    // output a member of correct(F); d contains none of them.
    EXPECT_TRUE(d.intersect(r.correct_sigma).empty())
        << "phi(" << d.toString() << ") = " << r.correct_sigma.toString();
    EXPECT_GE(r.correct_sigma.size(), 1);
  }
}

TEST(PhiMaps, UpsilonPhiDesignatesNonSample) {
  const auto phi = core::phiUpsilonSelf();
  for (std::uint64_t bits = 1; bits < (1u << 4); ++bits) {
    const ProcSet d = ProcSet::fromBits(bits);
    const auto r = phi->map(d);
    // Upsilon never stabilizes on the correct set; phi designates
    // correct(sigma) = d, making d the correct set of the hypothetical
    // run — contradiction.
    EXPECT_EQ(r.correct_sigma, d);
    EXPECT_EQ(r.w, 0);
  }
}

// ---- Stabilization time scales with the source detector's ----

TEST(Extraction, StabilizesAfterSourceDetector) {
  const int n_plus_1 = 3;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const Time stab = 2000;
  const auto rr = runExtraction(n_plus_1, fp, fd::makeOmega(fp, stab, 1),
                                core::phiOmegaK(n_plus_1), 1, 200'000);
  const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
  ASSERT_TRUE(rep.ok()) << rep.violation;
  // The last output change cannot precede the source stabilizing (the
  // candidate value keeps flapping before that).
  EXPECT_GE(rep.last_change, stab / 2);
}

}  // namespace
}  // namespace wfd
