// Randomized cross-product soak: algorithms x detectors x failure
// patterns x snapshot flavors x schedules, all verified by the trace
// checkers. Catches interaction bugs no targeted test thought to look
// for; failures print the full configuration for deterministic replay.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::PolicyKind;
using sim::RunConfig;
using sim::SnapshotFlavor;

struct Config {
  int n_plus_1;
  int f;               // crash budget + detector resilience
  Time stab;
  Time noise_hold;
  SnapshotFlavor flavor;
  PolicyKind policy;
  int algo;            // 0 = Fig.1, 1 = Fig.2, 2 = Omega^k baseline
  std::uint64_t seed;

  std::string describe() const {
    return "n+1=" + std::to_string(n_plus_1) + " f=" + std::to_string(f) +
           " stab=" + std::to_string(stab) +
           " hold=" + std::to_string(noise_hold) +
           (flavor == SnapshotFlavor::kAfek ? " afek" : " native") +
           (policy == PolicyKind::kRoundRobin ? " lockstep" : " random") +
           " algo=" + std::to_string(algo) + " seed=" + std::to_string(seed);
  }
};

Config randomConfig(Rng& rng, std::uint64_t seed) {
  Config c;
  c.n_plus_1 = static_cast<int>(rng.range(2, 7));
  c.f = static_cast<int>(rng.range(1, c.n_plus_1 - 1));
  c.stab = rng.range(0, 1500);
  c.noise_hold = rng.chance(0.3) ? rng.range(20, 200) : 1;
  c.flavor = rng.chance(0.25) ? SnapshotFlavor::kAfek : SnapshotFlavor::kNative;
  c.policy = rng.chance(0.3) ? PolicyKind::kRoundRobin : PolicyKind::kRandom;
  c.algo = static_cast<int>(rng.below(3));
  c.seed = seed;
  return c;
}

TEST(Soak, RandomizedCrossProduct) {
  const int kRuns = 150;
  Rng rng(0xB0A7);
  for (int i = 0; i < kRuns; ++i) {
    const Config c = randomConfig(rng, static_cast<std::uint64_t>(i) + 1);
    const auto fp =
        FailurePattern::random(c.n_plus_1, c.f, c.stab + 400, c.seed * 97 + 5);
    const auto props = test::distinctProposals(c.n_plus_1);

    RunConfig cfg;
    cfg.n_plus_1 = c.n_plus_1;
    cfg.fp = fp;
    cfg.seed = c.seed;
    cfg.flavor = c.flavor;
    cfg.policy = c.policy;
    cfg.max_steps = 6'000'000;

    int k = 0;
    sim::AlgoFn algo;
    switch (c.algo) {
      case 0: {  // Fig. 1 (wait-free: detector must be plain Upsilon)
        k = c.n_plus_1 - 1;
        fd::UpsilonFd::Params p;
        p.stable_set = fd::UpsilonFd::defaultStableSet(fp, k);
        p.stab_time = c.stab;
        p.noise_seed = c.seed;
        p.noise_hold = c.noise_hold;
        cfg.fd = fd::makeUpsilonWithParams(fp, k, p);
        algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
        break;
      }
      case 1: {  // Fig. 2 at resilience f
        k = c.f;
        fd::UpsilonFd::Params p;
        p.stable_set = fd::UpsilonFd::defaultStableSet(fp, c.f);
        p.stab_time = c.stab;
        p.noise_seed = c.seed;
        p.noise_hold = c.noise_hold;
        cfg.fd = fd::makeUpsilonWithParams(fp, c.f, p);
        const int f = c.f;
        algo = [f](Env& e, Value v) {
          return core::upsilonFSetAgreement(e, f, v);
        };
        break;
      }
      default: {  // Omega^k baseline at k = f
        k = c.f;
        cfg.fd = fd::makeOmegaK(fp, c.f, c.stab, c.seed);
        const int kk = c.f;
        algo = [kk](Env& e, Value v) {
          return core::omegaKSetAgreement(e, kk, v);
        };
        break;
      }
    }

    const auto rr = sim::runTask(cfg, algo, props);
    const auto rep = checkKSetAgreement(rr, k, props);
    ASSERT_TRUE(rep.ok()) << c.describe() << " -> " << rep.violation
                          << " (steps=" << rr.steps << ")";
  }
}

TEST(Soak, ReductionsCrossProduct) {
  const int kRuns = 60;
  Rng rng(0x50AB);
  for (int i = 0; i < kRuns; ++i) {
    const auto seed = static_cast<std::uint64_t>(i) + 1;
    const int n_plus_1 = static_cast<int>(rng.range(2, 6));
    const int f = static_cast<int>(rng.range(1, n_plus_1 - 1));
    const Time stab = rng.range(0, 800);
    const auto fp = FailurePattern::random(n_plus_1, f, 60, seed * 13);

    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.seed = seed;
    cfg.max_steps = stab * 3 + 40'000;
    cfg.fd = fd::makeOmegaK(fp, f, stab, seed);
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value) { return core::omegaKToUpsilonF(e); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    const auto rep = core::checkEmulatedUpsilonF(rr, f);
    ASSERT_TRUE(rep.ok()) << "n+1=" << n_plus_1 << " f=" << f << " stab="
                          << stab << " seed=" << seed << " -> "
                          << rep.violation;
  }
}

TEST(Soak, ExtractionCrossProduct) {
  const int kRuns = 40;
  Rng rng(0xE27);
  for (int i = 0; i < kRuns; ++i) {
    const auto seed = static_cast<std::uint64_t>(i) + 1;
    const int n_plus_1 = static_cast<int>(rng.range(3, 5));
    const int f = n_plus_1 - 1;
    const Time stab = rng.range(50, 600);
    const auto fp = FailurePattern::random(n_plus_1, f, 40, seed * 29);
    const bool use_dp = rng.chance(0.5);

    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.seed = seed;
    cfg.max_steps = stab * 4 + 80'000;
    cfg.fd = use_dp ? fd::makeEventuallyPerfect(fp, stab, seed)
                    : fd::makeOmega(fp, stab, seed);
    const auto phi = use_dp ? core::phiEventuallyPerfect(n_plus_1, f)
                            : core::phiOmegaK(n_plus_1);
    const auto rr = sim::runTask(
        cfg, [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    const auto rep = core::checkEmulatedUpsilonF(rr, f);
    ASSERT_TRUE(rep.ok()) << "n+1=" << n_plus_1 << " stab=" << stab
                          << (use_dp ? " <>P" : " Omega") << " seed=" << seed
                          << " -> " << rep.violation;
  }
}

}  // namespace
}  // namespace wfd
