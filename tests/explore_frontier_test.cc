// Parallel frontier + persistent certificates (sim/explore.h).
//
// The determinism contract under test: jobs=N ≡ jobs=1 BIT-IDENTICALLY —
// verdict, violation, counterexample, outcome-signature set and every
// search counter — because the job set, each job's result, and the merge
// are pure functions of the search tree, never of worker scheduling. On
// top of that: frontier-vs-classic outcome equality (counts differ by
// design: eager prefixes explore a superset of class representatives),
// steal-vs-static equality, and the certificate store's hit / resume /
// version-mismatch behavior over fabric::PersistentStore.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "test_util.h"

namespace wfd {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::ExploreConfig;
using sim::ExploreMode;
using sim::ExploreOutcome;
using sim::ExploreResult;
using sim::ExploreVerdict;
using sim::Unit;

Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

// The seeded disagreement bug from tests/explore_test.cc: adopts its own
// value, so solo-first schedules violate 1-agreement.
Coro<Unit> buggyOneShot(Env& env, Value v) {
  env.propose(v);
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.bug"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  const std::vector<Value> u = mem::distinctValues(view);
  env.note(u.size() <= 1 ? "commit" : "adopt", RegVal(v));
  env.decide(v);
  co_return Unit{};
}

std::vector<Value> props(int n) {
  std::vector<Value> v;
  for (int i = 0; i < n; ++i) v.push_back(100 + i);
  return v;
}

// The k-converge safety contract (same shape as tests/explore_test.cc):
// C-Validity, plus "any commit forces at most k distinct picks". Without
// a commit, n distinct adopts are legal — an unconditional decision-count
// bound is NOT a theorem of k-converge.
std::string convergeViolation(const ExploreOutcome& o, int k,
                              const std::vector<Value>& proposals) {
  bool any_commit = false;
  std::set<Value> picked;
  for (const auto& e : o.events) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label != "commit" && e.label != "adopt") continue;
    const Value v = e.value.asInt();
    bool valid = false;
    for (const Value q : proposals) valid = valid || (q == v);
    if (!valid) return "C-Validity: non-proposal " + std::to_string(v);
    picked.insert(v);
    any_commit = any_commit || (e.label == "commit");
  }
  if (any_commit && static_cast<int>(picked.size()) > k) {
    return "C-Agreement: a commit with " + std::to_string(picked.size()) +
           " > k distinct picks";
  }
  return "";
}

ExploreConfig convergeCfg(int n, int k, ExploreMode mode, int jobs) {
  ExploreConfig cfg;
  cfg.run.n_plus_1 = n;
  cfg.mode = mode;
  cfg.jobs = jobs;
  const std::vector<Value> pv = props(n);
  cfg.property = [k, pv](const ExploreOutcome& o) {
    return convergeViolation(o, k, pv);
  };
  return cfg;
}

ExploreResult exploreConverge(const ExploreConfig& cfg, int k, int n) {
  return explore(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); },
                 props(n));
}

// Every field of the jobs=N ≡ jobs=1 contract.
void expectBitIdentical(const ExploreResult& a, const ExploreResult& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.counterexample, b.counterexample);
  EXPECT_EQ(a.schedules_explored, b.schedules_explored);
  EXPECT_EQ(a.sleep_set_skips, b.sleep_set_skips);
  EXPECT_EQ(a.states_memoized, b.states_memoized);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
  EXPECT_EQ(a.steps_replayed, b.steps_replayed);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.max_depth_seen, b.max_depth_seen);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.frontier_jobs, b.frontier_jobs);
  EXPECT_EQ(a.frontier_depth, b.frontier_depth);
  EXPECT_EQ(a.outcomeSigs(), b.outcomeSigs());
}

TEST(Frontier, JobsFourBitIdenticalToJobsOneBothModes) {
  for (const ExploreMode mode : {ExploreMode::kDpor, ExploreMode::kDag}) {
    const ExploreResult one =
        exploreConverge(convergeCfg(3, 2, mode, 1), 2, 3);
    const ExploreResult four =
        exploreConverge(convergeCfg(3, 2, mode, 4), 2, 3);
    expectBitIdentical(one, four);
    EXPECT_TRUE(one.verified()) << one.violation;
    EXPECT_GT(one.frontier_jobs, 1u);
  }
}

TEST(Frontier, MatchesClassicEngineOutcomeSet) {
  const ExploreResult classic =
      exploreConverge(convergeCfg(3, 2, ExploreMode::kDpor, 0), 2, 3);
  const ExploreResult frontier =
      exploreConverge(convergeCfg(3, 2, ExploreMode::kDpor, 4), 2, 3);
  EXPECT_EQ(classic.verdict, frontier.verdict);
  EXPECT_EQ(classic.outcomeSigs(), frontier.outcomeSigs());
  EXPECT_EQ(frontier.jobs_used, 4);
}

TEST(Frontier, StealAndStaticShardingAgree) {
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDag, 3);
  cfg.steal = true;
  const ExploreResult steal = exploreConverge(cfg, 2, 3);
  cfg.steal = false;
  const ExploreResult stat = exploreConverge(cfg, 2, 3);
  expectBitIdentical(steal, stat);
}

TEST(Frontier, ExplicitFrontierDepthHonored) {
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDag, 2);
  cfg.frontier_depth = 4;
  const ExploreResult res = exploreConverge(cfg, 2, 3);
  EXPECT_EQ(res.frontier_depth, 4);
  // kDag at depth 4 with 3 always-enabled processes: exactly 3^4 jobs.
  EXPECT_EQ(res.frontier_jobs, 81u);
  EXPECT_TRUE(res.verified()) << res.violation;
  const ExploreResult classic =
      exploreConverge(convergeCfg(3, 2, ExploreMode::kDag, 0), 2, 3);
  EXPECT_EQ(res.outcomeSigs(), classic.outcomeSigs());
}

TEST(Frontier, SeededBugSameCounterexampleAtAnyWorkerCount) {
  ExploreConfig cfg;
  cfg.run.n_plus_1 = 2;
  cfg.mode = ExploreMode::kDpor;
  const std::vector<Value> pv = props(2);
  cfg.property = [pv](const ExploreOutcome& o) {
    return convergeViolation(o, 1, pv);
  };
  const auto buggy = [](Env& e, Value v) { return buggyOneShot(e, v); };
  cfg.jobs = 1;
  const ExploreResult one = explore(cfg, buggy, props(2));
  cfg.jobs = 4;
  const ExploreResult four = explore(cfg, buggy, props(2));
  ASSERT_EQ(one.verdict, ExploreVerdict::kViolation);
  expectBitIdentical(one, four);
  ASSERT_FALSE(one.counterexample.empty());

  // The merged counterexample (prefix ++ job tail) must replay: the same
  // pid sequence through a scripted policy reproduces a commit alongside
  // a disagreeing pick.
  sim::RunConfig rcfg;
  rcfg.n_plus_1 = 2;
  sim::Run run(rcfg, buggy, props(2));
  sim::ScriptedPolicy policy(four.counterexample,
                             std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 10'000);
  const auto rr = run.finish(taken);
  bool commit = false;
  std::set<Value> picked;
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label != "commit" && e.label != "adopt") continue;
    commit = commit || (e.label == "commit");
    picked.insert(e.value.asInt());
  }
  EXPECT_TRUE(commit);
  EXPECT_GT(picked.size(), 1u);
}

TEST(Frontier, PerJobBudgetCutIsWorkerCountInvariant) {
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDag, 1);
  cfg.memoize = false;     // un-memoized subtrees are big enough to cut
  cfg.max_schedules = 5;   // cuts inside jobs, deterministically per job
  const ExploreResult one = exploreConverge(cfg, 2, 3);
  cfg.jobs = 4;
  const ExploreResult four = exploreConverge(cfg, 2, 3);
  EXPECT_FALSE(one.complete);
  expectBitIdentical(one, four);
}

// FD-bearing mini-protocol (the tests/explore_test.cc shape): two queries
// bracketing a snapshot update, so the refined relation classifies real
// query×query and query×memory pairs inside the frontier engine.
Coro<Unit> fdWorkload(Env& env, Value v) {
  env.propose(v);
  const sim::OpResult a = co_await env.queryFd();
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.fd"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const sim::OpResult b = co_await env.queryFd();
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  env.note("fd1", a.scalar);
  env.note("fd2", b.scalar);
  env.note("seen",
           RegVal(static_cast<Value>(mem::distinctValues(view).size())));
  env.decide(v);
  co_return Unit{};
}

TEST(Frontier, FdWorkloadBitIdenticalUnderRefinedRelation) {
  // Upsilon with an immediately-stable history, so the refined FD
  // relation (and its sleep-set-carried epochs) is live inside the
  // frontier engine too.
  ExploreConfig cfg;
  cfg.run.n_plus_1 = 2;
  cfg.run.fd = fd::makeUpsilon(sim::FailurePattern::failureFree(2),
                               /*stab_time=*/0, /*seed=*/7);
  cfg.mode = ExploreMode::kDpor;
  cfg.property = [](const ExploreOutcome&) { return std::string(); };
  const auto algo = [](Env& e, Value v) { return fdWorkload(e, v); };
  cfg.jobs = 1;
  const ExploreResult one = explore(cfg, algo, props(2));
  cfg.jobs = 4;
  const ExploreResult four = explore(cfg, algo, props(2));
  expectBitIdentical(one, four);
  EXPECT_TRUE(one.verified()) << one.violation;
  // And the frontier run agrees with the classic engine's outcome set.
  cfg.jobs = 0;
  const ExploreResult classic = explore(cfg, algo, props(2));
  EXPECT_EQ(one.outcomeSigs(), classic.outcomeSigs());
}

// ---- Persistent certificates ---------------------------------------------

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "wfd_explore_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

// The WFD_AUDIT latch makes every run audited, and audited runs are
// uncacheable BY DESIGN (AuditedAndOpaqueRunsBypassTheStore covers that
// path) — so the store-hit tests have nothing to observe under it.
#define SKIP_IF_AUDIT_LATCH()                                           \
  if (sim::resolvedAuditMode(std::nullopt).has_value()) {               \
    GTEST_SKIP() << "WFD_AUDIT latch active: runs are uncacheable";     \
  }

TEST(Certificates, WarmRunServedFromStoreByteEquivalently) {
  SKIP_IF_AUDIT_LATCH();
  const std::string dir = freshDir("warm");
  sim::fabric::PersistentStore store({dir, "vA"});
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDpor, 2);
  cfg.certificates = &store;
  cfg.cert_family = "explore_frontier_test.converge";
  const ExploreResult cold = exploreConverge(cfg, 2, 3);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_GT(cold.cert_saves, 0u);
  const ExploreResult warm = exploreConverge(cfg, 2, 3);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.verdict, cold.verdict);
  EXPECT_EQ(warm.schedules_explored, cold.schedules_explored);
  EXPECT_EQ(warm.steps_executed, cold.steps_executed);
  EXPECT_EQ(warm.outcomeSigs(), cold.outcomeSigs());
  EXPECT_EQ(warm.counterexample, cold.counterexample);
}

TEST(Certificates, DifferentConfigNeverWrongHits) {
  SKIP_IF_AUDIT_LATCH();
  const std::string dir = freshDir("cfg");
  sim::fabric::PersistentStore store({dir, "vA"});
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDpor, 2);
  cfg.certificates = &store;
  cfg.cert_family = "explore_frontier_test.converge";
  const ExploreResult a = exploreConverge(cfg, 2, 3);
  EXPECT_FALSE(a.from_cache);
  // Same family, different mode: a distinct key — must search afresh.
  cfg.mode = ExploreMode::kDag;
  const ExploreResult b = exploreConverge(cfg, 2, 3);
  EXPECT_FALSE(b.from_cache);
  EXPECT_EQ(a.outcomeSigs(), b.outcomeSigs());
}

TEST(Certificates, VersionMismatchColdMisses) {
  SKIP_IF_AUDIT_LATCH();
  const std::string dir = freshDir("ver");
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDpor, 2);
  cfg.cert_family = "explore_frontier_test.converge";
  sim::fabric::PersistentStore a({dir, "vA"});
  cfg.certificates = &a;
  EXPECT_FALSE(exploreConverge(cfg, 2, 3).from_cache);
  // The store's version-in-filename rule: a new version addresses a
  // different segment, so the stale certificate cold-misses.
  sim::fabric::PersistentStore b({dir, "vB"});
  cfg.certificates = &b;
  EXPECT_FALSE(exploreConverge(cfg, 2, 3).from_cache);
  // And the original version still hits its own segment.
  cfg.certificates = &a;
  EXPECT_TRUE(exploreConverge(cfg, 2, 3).from_cache);
}

TEST(Certificates, InterruptedFrontierResumesFromPerJobRecords) {
  SKIP_IF_AUDIT_LATCH();
  const std::string dir = freshDir("resume");
  sim::fabric::PersistentStore store({dir, "vA"});
  ExploreConfig cfg = convergeCfg(3, 2, ExploreMode::kDag, 2);
  cfg.certificates = &store;
  cfg.cert_family = "explore_frontier_test.cut";
  cfg.memoize = false;
  cfg.max_schedules = 5;  // budget-cut: no whole-config record is saved
  const ExploreResult first = exploreConverge(cfg, 2, 3);
  EXPECT_FALSE(first.complete);
  EXPECT_FALSE(first.from_cache);
  EXPECT_GT(first.cert_saves, 0u);
  const ExploreResult again = exploreConverge(cfg, 2, 3);
  EXPECT_FALSE(again.from_cache);  // incomplete runs never whole-hit
  EXPECT_GT(again.cert_job_hits, 0u);
  expectBitIdentical(first, again);
}

TEST(Certificates, AuditedAndOpaqueRunsBypassTheStore) {
  const std::string dir = freshDir("bypass");
  sim::fabric::PersistentStore store({dir, "vA"});
  ExploreConfig cfg = convergeCfg(2, 1, ExploreMode::kDpor, 1);
  cfg.certificates = &store;
  cfg.cert_family = "explore_frontier_test.bypass";
  cfg.run.audit = sim::AuditMode::kThrow;
  const ExploreResult a = exploreConverge(cfg, 1, 2);
  const ExploreResult b = exploreConverge(cfg, 1, 2);
  EXPECT_FALSE(a.from_cache);
  EXPECT_FALSE(b.from_cache);  // audited runs are re-executed, never served
  EXPECT_EQ(a.cert_saves, 0u);
  // No family: uncacheable by the report-cache rules.
  ExploreConfig anon = convergeCfg(2, 1, ExploreMode::kDpor, 1);
  anon.certificates = &store;
  EXPECT_EQ(exploreConverge(anon, 1, 2).cert_saves, 0u);
}

}  // namespace
}  // namespace wfd
