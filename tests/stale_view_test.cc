// Stale-but-linearizable snapshot views (sim/chaos.h StaleSnapshot):
// serving a scan its request-time view is a legal linearization, so
// safety and the audit must survive it unconditionally; the illegal-past
// negative control (a view older than the scan's invocation) must be
// flagged by the auditor's stale-scan rule. docs/CHAOS.md carries the
// legality argument these tests certify.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::upsilonSetAgreement;
using sim::ChaosConfig;
using sim::Env;
using sim::FailurePattern;
using sim::ObjKey;
using sim::RunConfig;
using sim::RunReport;
using sim::RunVerdict;
using sim::StaleSnapshot;
using sim::WatchdogConfig;

// Every process interleaves updates to its own slot with scans of the
// whole object — the densest scan/update contention the injector can see,
// and (single-writer slots) a workload where each process can verify its
// OWN slot is never served older than its last completed update... which
// is exactly what the illegal-past control violates.
sim::AlgoFn scanWriter(int rounds = 12) {
  return [rounds](Env& e, Value) -> sim::Coro<sim::Unit> {
    const sim::ObjId s = e.snap(ObjKey{"S", 0}, e.nProcs());
    for (int i = 0; i < rounds; ++i) {
      co_await e.snapUpdate(s, e.me(), RegVal(static_cast<Value>(100 * e.me() + i)));
      (void)co_await e.snapScan(s);
    }
    e.decide(0);
    co_return sim::Unit{};
  };
}

TEST(StaleView, LegalStaleViewsRunCleanUnderAudit) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.stale_snapshot = StaleSnapshot{/*permille=*/800, seed, false};
    ASSERT_TRUE(chaos.legal());
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{200'000, 0, 0}, scanWriter(),
                     test::distinctProposals(4));
    ASSERT_EQ(rep.verdict, RunVerdict::kOk)
        << "seed " << seed << ": " << sim::runVerdictName(rep.verdict) << " "
        << rep.detail;
  }
}

TEST(StaleView, IllegalPastViewsAreAlwaysFlagged) {
  // permille = 1000 fires on every scan: the second overridden scan of
  // each process is served the view captured at its FIRST scan — which
  // predates that process's own completed update, so it can match
  // neither the request-time nor the response-time memory. The same fire
  // stream as the legal variant, so this also proves the legal test
  // above actually exercised overridden scans.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.stale_snapshot = StaleSnapshot{/*permille=*/1000, seed, true};
    ASSERT_FALSE(chaos.legal());
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{200'000, 0, 0}, scanWriter(),
                     test::distinctProposals(4));
    ASSERT_EQ(rep.verdict, RunVerdict::kAxiomViolation)
        << "seed " << seed << ": " << sim::runVerdictName(rep.verdict) << " "
        << rep.detail;
    EXPECT_NE(rep.detail.find("stale-scan"), std::string::npos) << rep.detail;
  }
}

TEST(StaleView, Fig1SafetyAndReplayAreUnaffected) {
  // Fig. 1's k-converge rounds scan snapshots; serving request-time views
  // must keep k-set agreement intact, and the whole perturbed run must
  // replay bit-identically per seed (the chaos debuggability contract).
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 50}});
    cfg.fd = fd::makeUpsilon(*cfg.fp, ProcSet::full(n_plus_1), 300, seed);
    cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.stale_snapshot = StaleSnapshot{/*permille=*/600, seed, false};
    const auto algo = [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
    const RunReport a = runChaosTask(
        cfg, chaos, WatchdogConfig{3'000'000, 0, n_plus_1 - 1}, algo, props);
    ASSERT_EQ(a.verdict, RunVerdict::kOk) << "seed " << seed << ": " << a.detail;
    const auto check = checkKSetAgreement(a.result, n_plus_1 - 1, props);
    EXPECT_TRUE(check.ok()) << "seed " << seed << ": " << check.violation;
    const RunReport b = runChaosTask(
        cfg, chaos, WatchdogConfig{3'000'000, 0, n_plus_1 - 1}, algo, props);
    EXPECT_EQ(a.result.trace().hash64(), b.result.trace().hash64())
        << "seed " << seed << ": stale-snapshot runs must replay";
  }
}

TEST(StaleView, DisabledInjectorNeverCapturesOrFlags) {
  // permille = 0 disables the injector entirely even when the struct is
  // present — no overrides, no captures, trivially clean.
  RunConfig cfg;
  cfg.n_plus_1 = 3;
  cfg.seed = 9;
  ChaosConfig off;
  off.stale_snapshot = StaleSnapshot{0, 9, false};
  ASSERT_TRUE(off.legal());
  const RunReport rep =
      runChaosTask(cfg, off, WatchdogConfig{100'000, 0, 0}, scanWriter(4),
                   test::distinctProposals(3));
  EXPECT_EQ(rep.verdict, RunVerdict::kOk) << rep.detail;
}

}  // namespace
}  // namespace wfd
