// Baseline protocols: Omega^k-based k-set agreement ([18]-style) and
// Omega-based consensus. These are the comparators behind Corollaries 3-4
// and the n+1 = 2 equivalence of Sect. 4.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::omegaConsensus;
using core::omegaKSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

RunResult runOmegaK(int n_plus_1, int k, const FailurePattern& fp,
                    fd::FdPtr fd, std::uint64_t seed,
                    const std::vector<Value>& props,
                    sim::PolicyKind policy = sim::PolicyKind::kRandom) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = std::move(fd);
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.max_steps = 3'000'000;
  return sim::runTask(
      cfg, [k](Env& e, Value v) { return omegaKSetAgreement(e, k, v); },
      props);
}

struct Params {
  int n_plus_1;
  int k;
  Time stab_time;
};

class OmegaKSweep : public ::testing::TestWithParam<Params> {};

TEST_P(OmegaKSweep, SolvesKSetAgreement) {
  const auto [n_plus_1, k, stab] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - k, stab + 200,
                                           seed * 17 + 3);
    const auto rr = runOmegaK(n_plus_1, k, fp,
                              fd::makeOmegaK(fp, k, stab, seed), seed, props);
    const auto rep = checkKSetAgreement(rr, k, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

TEST_P(OmegaKSweep, LockstepSchedule) {
  const auto [n_plus_1, k, stab] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const auto rr = runOmegaK(n_plus_1, k, fp, fd::makeOmegaK(fp, k, stab, 5),
                            7, props, sim::PolicyKind::kRoundRobin);
  const auto rep = checkKSetAgreement(rr, k, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OmegaKSweep,
                         ::testing::Values(Params{3, 1, 300},
                                           Params{3, 2, 300},
                                           Params{4, 2, 400},
                                           Params{4, 3, 500},
                                           Params{5, 4, 600},
                                           Params{6, 5, 600}),
                         [](const auto& info) {
                           const Params& p = info.param;
                           return "n" + std::to_string(p.n_plus_1) + "_k" +
                                  std::to_string(p.k) + "_stab" +
                                  std::to_string(p.stab_time);
                         });

TEST(OmegaConsensus, AgreesOnOneValue) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 500,
                                           seed * 23);
    const auto rr = runOmegaK(n_plus_1, 1, fp, fd::makeOmega(fp, 300, seed),
                              seed, props);
    const auto rep = checkKSetAgreement(rr, 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
    EXPECT_EQ(rep.distinct, 1);
  }
}

TEST(OmegaConsensus, WrapperForwardsToK1) {
  const int n_plus_1 = 3;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeOmega(fp, 100, 1);
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return omegaConsensus(e, v); }, props);
  const auto rep = checkKSetAgreement(rr, 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

// Corollary 4's executable shape, positive half: Upsilon (via Fig. 1) and
// Omega_n (via the baseline) both solve n-set agreement with registers.
TEST(Corollary4, BothDetectorsSolveSetAgreement) {
  const int n_plus_1 = 4;
  const int n = n_plus_1 - 1;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  // Omega_n baseline:
  const auto rb = runOmegaK(n_plus_1, n, fp, fd::makeOmegaK(fp, n, 200, 2), 2,
                            props);
  EXPECT_TRUE(checkKSetAgreement(rb, n, props).ok());
  // Upsilon (strictly weaker by Theorem 1) suffices as well:
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 200, 2);
  cfg.seed = 2;
  const auto ru = sim::runTask(
      cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
      props);
  EXPECT_TRUE(checkKSetAgreement(ru, n, props).ok());
}

}  // namespace
}  // namespace wfd
