// Safe agreement and BG simulation ([2]): the building blocks of the
// paper's f-resilient impossibility machinery, run for real.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/bg_simulation.h"
#include "core/safe_agreement.h"
#include "test_util.h"

namespace wfd {
namespace {

using core::BgConfig;
using core::bgSimulator;
using core::minOfQuorumProgram;
using core::saPropose;
using core::saResolve;
using core::saTryResolve;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::Unit;

// ---- Safe agreement ----

Coro<Unit> saWorker(Env& env, Value v) {
  co_await saPropose(env, sim::ObjKey{"t.sa"}, v);
  const Value d = co_await saResolve(env, sim::ObjKey{"t.sa"});
  env.decide(d);
  co_return Unit{};
}

TEST(SafeAgreement, AgreementAndValidityAcrossSchedules) {
  for (int n_plus_1 : {2, 3, 5}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.seed = seed;
      const auto props = test::distinctProposals(n_plus_1);
      const auto rr = sim::runTask(
          cfg, [](Env& e, Value v) { return saWorker(e, v); }, props);
      ASSERT_TRUE(rr.all_correct_done) << "seed " << seed;
      const auto rep = core::checkKSetAgreement(rr, 1, props);
      EXPECT_TRUE(rep.ok()) << rep.violation;  // consensus-grade agreement
    }
  }
}

TEST(SafeAgreement, DoorwayCrashBlocksResolution) {
  // p1 crashes right after raising its flag (one step into propose):
  // resolution must block forever — the defining weakness.
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  // propose's first step is the level-1 write; crash p1 right after its
  // first step. Scripted: p1 takes exactly 1 step, then others run.
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{0, 1}});
  cfg.max_steps = 30'000;
  sim::Run run(cfg, [](Env& e, Value v) { return saWorker(e, v); },
               test::distinctProposals(n_plus_1));
  sim::ScriptedPolicy policy({0}, std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, cfg.max_steps);
  const auto rr = run.finish(taken);
  // Nobody can decide: p1 sits at level 1 forever.
  EXPECT_FALSE(rr.all_correct_done);
  EXPECT_TRUE(rr.decisions.empty());
}

TEST(SafeAgreement, CleanCrashDoesNotBlock) {
  // p1 crashes before taking any step: it never enters the doorway, so
  // the others resolve fine.
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{0, 0}});
  const auto props = test::distinctProposals(n_plus_1);
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return saWorker(e, v); }, props);
  EXPECT_TRUE(rr.all_correct_done);
  EXPECT_EQ(rr.distinctDecisions(), 1);
}

// ---- BG simulation ----

struct BgOutcome {
  // simulator pid -> (simulated j -> decision)
  std::map<Pid, std::map<int, Value>> per_simulator;
};

BgOutcome harvest(const sim::RunResult& rr) {
  BgOutcome out;
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote ||
        e.label.rfind("bg.decide.", 0) != 0) {
      continue;
    }
    const int j = std::stoi(e.label.substr(10));
    out.per_simulator[e.pid][j] = e.value.asInt();
  }
  return out;
}

TEST(BgSimulation, SimulatorsReconstructIdenticalRuns) {
  // 2 simulators (f = 1), 3 simulated processes, quorum m - f = 2.
  BgConfig bg;
  bg.simulators = 2;
  bg.simulated = 3;
  bg.inputs = {101, 102, 103};
  const auto prog = minOfQuorumProgram(2);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = bg.simulators;
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg, [&](Env& e, Value) { return bgSimulator(e, bg, prog); },
        std::vector<Value>(static_cast<std::size_t>(bg.simulators), 0));
    ASSERT_TRUE(rr.all_correct_done) << "seed " << seed;
    const auto out = harvest(rr);
    ASSERT_EQ(out.per_simulator.size(), 2u);
    // The decisive BG property: both simulators computed the *same*
    // simulated run — identical decisions for every simulated process.
    EXPECT_EQ(out.per_simulator.at(0), out.per_simulator.at(1))
        << "seed " << seed;
    // And the simulated task's semantics: decisions are inputs, at most
    // 2 distinct (mins of a containment chain of >= 2-quorum views).
    std::set<Value> vals;
    for (const auto& [j, v] : out.per_simulator.at(0)) {
      EXPECT_TRUE(v == 101 || v == 102 || v == 103);
      vals.insert(v);
    }
    EXPECT_LE(vals.size(), 2u);
  }
}

TEST(BgSimulation, SurvivesSimulatorCrash) {
  // One of the two simulators dies mid-run; the survivor still finishes
  // at least m - f = 2 simulated processes (a doorway crash can block
  // one simulated process forever).
  BgConfig bg;
  bg.simulators = 2;
  bg.simulated = 3;
  bg.inputs = {7, 5, 9};
  bg.max_iterations = 4000;
  const auto prog = minOfQuorumProgram(2);
  int total_blocked = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = bg.simulators;
    cfg.seed = seed;
    cfg.fp = FailurePattern::withCrashes(2, {{1, static_cast<Time>(5 + seed * 3)}});
    cfg.max_steps = 2'000'000;
    const auto rr = sim::runTask(
        cfg, [&](Env& e, Value) { return bgSimulator(e, bg, prog); },
        std::vector<Value>(static_cast<std::size_t>(bg.simulators), 0));
    const auto out = harvest(rr);
    const auto it = out.per_simulator.find(0);
    ASSERT_NE(it, out.per_simulator.end()) << "seed " << seed;
    EXPECT_GE(it->second.size(), 2u)
        << "seed " << seed << ": more than f simulated processes blocked";
    if (it->second.size() < 3u) ++total_blocked;
    for (const auto& [j, v] : it->second) {
      EXPECT_TRUE(v == 7 || v == 5 || v == 9);
    }
  }
  // The crash seeds should actually exercise the blocked case sometimes;
  // if never, the test is too gentle to mean anything.
  // (Not asserted hard — crash timing vs doorway windows is seed-luck.)
  (void)total_blocked;
}

TEST(BgSimulation, SimulatedCommitAdoptKeepsItsContract) {
  // A real protocol building block run UNDER the simulation: commit-adopt
  // in the snapshot model. In every run, (a) all simulators reconstruct
  // the same simulated decisions, (b) if any simulated process commits v,
  // every simulated decision carries v, and (c) identical inputs commit.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    BgConfig bg;
    bg.simulators = 2;
    bg.simulated = 3;
    const bool same_inputs = (seed % 4 == 0);
    bg.inputs = same_inputs ? std::vector<Value>{5, 5, 5}
                            : std::vector<Value>{5, 6, 7};
    const auto prog = core::commitAdoptProgram();
    RunConfig cfg;
    cfg.n_plus_1 = bg.simulators;
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg, [&](Env& e, Value) { return bgSimulator(e, bg, prog); },
        std::vector<Value>(static_cast<std::size_t>(bg.simulators), 0));
    ASSERT_TRUE(rr.all_correct_done) << "seed " << seed;
    const auto out = harvest(rr);
    ASSERT_EQ(out.per_simulator.size(), 2u);
    EXPECT_EQ(out.per_simulator.at(0), out.per_simulator.at(1));

    Value committed = kBottomValue;
    for (const auto& [j, enc] : out.per_simulator.at(0)) {
      const auto [v, c] = core::caDecode(enc);
      EXPECT_TRUE(v == 5 || v == 6 || v == 7);
      if (c) committed = v;
    }
    if (committed != kBottomValue) {
      for (const auto& [j, enc] : out.per_simulator.at(0)) {
        EXPECT_EQ(core::caDecode(enc).first, committed)
            << "seed " << seed << ": a commit must bind every decision";
      }
    }
    if (same_inputs) {
      for (const auto& [j, enc] : out.per_simulator.at(0)) {
        EXPECT_TRUE(core::caDecode(enc).second)
            << "seed " << seed << ": identical inputs must commit";
        EXPECT_EQ(core::caDecode(enc).first, 5);
      }
    }
  }
}

TEST(BgSimulation, FullViewQuorumNeedsAllSimulated) {
  // quorum = m: every simulated process must see everyone; decisions all
  // equal the global min.
  BgConfig bg;
  bg.simulators = 3;
  bg.simulated = 4;
  bg.inputs = {40, 10, 30, 20};
  const auto prog = minOfQuorumProgram(4);
  RunConfig cfg;
  cfg.n_plus_1 = bg.simulators;
  cfg.seed = 5;
  const auto rr = sim::runTask(
      cfg, [&](Env& e, Value) { return bgSimulator(e, bg, prog); },
      std::vector<Value>(static_cast<std::size_t>(bg.simulators), 0));
  ASSERT_TRUE(rr.all_correct_done);
  const auto out = harvest(rr);
  for (const auto& [pid, decs] : out.per_simulator) {
    ASSERT_EQ(decs.size(), 4u);
    for (const auto& [j, v] : decs) EXPECT_EQ(v, 10);
  }
}

}  // namespace
}  // namespace wfd
