// Ablations: each Upsilon axiom and each k-converge phase is load-bearing.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "core/ablations.h"
#include "test_util.h"

namespace wfd {
namespace {

using core::axiom1ViolatingDetector;
using core::axiom2ViolatingDetector;
using core::fig1DecidersUnder;
using core::kConvergeNaive;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::Unit;

// ---- Axiom (2): U != correct(F) is exactly what Fig. 1 needs ----

TEST(Ablation, UpsilonAxiom2IsNecessary) {
  // U pinned to the correct set (failure-free: U = Pi): every process is
  // a gladiator, no gladiator ever crashes, no citizen exists — under
  // lockstep the run livelocks.
  for (int n_plus_1 : {3, 4, 5}) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    EXPECT_EQ(fig1DecidersUnder(axiom2ViolatingDetector(fp), n_plus_1,
                                /*budget=*/200'000),
              0)
        << "n+1=" << n_plus_1;
  }
}

TEST(Ablation, LegalDetectorDecidesUnderTheSameSchedule) {
  // Control: the identical schedule with a *legal* stable set decides.
  for (int n_plus_1 : {3, 4, 5}) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    EXPECT_EQ(fig1DecidersUnder(fd::makeUpsilon(fp, /*stab_time=*/0),
                                n_plus_1, /*budget=*/200'000),
              n_plus_1);
  }
}

// ---- Axiom (1): eventual stabilization is necessary ----

TEST(Ablation, UpsilonAxiom1IsNecessary) {
  // A forever-flapping output (period 2) under lockstep with odd n+1:
  // consecutive own queries are n+1 (odd) steps apart, so every process
  // sees a different set each time, every round aborts via Stable[r],
  // and no value is ever eliminated.
  for (int n_plus_1 : {3, 5}) {
    EXPECT_EQ(fig1DecidersUnder(axiom1ViolatingDetector(), n_plus_1,
                                /*budget=*/200'000),
              0)
        << "n+1=" << n_plus_1;
  }
}

// ---- k-converge: the tag-exchange phase is necessary ----

Coro<Unit> naiveOneShot(Env& env, int k, Value v) {
  const Pick p = co_await kConvergeNaive(env, sim::ObjKey{"abl.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

// Exhaustive search over all interleavings of two 2-step processes (the
// naive routine costs 2 ops each): C(4,2) = 6 schedules. At least one
// must violate C-Agreement for k = 1 (a commit alongside two picked
// values); the real kConverge has zero violations over its 70 schedules
// (tests/exhaustive_test.cc).
TEST(Ablation, NaiveConvergeViolatesCAgreement) {
  int violations = 0;
  int schedules = 0;
  std::vector<int> remaining = {2, 2};
  std::vector<Pid> seq;
  const std::function<void()> rec = [&] {
    if (seq.size() == 4) {
      ++schedules;
      sim::RunConfig cfg;
      cfg.n_plus_1 = 2;
      sim::Run run(cfg, [](Env& e, Value v) { return naiveOneShot(e, 1, v); },
                   {100, 101});
      sim::ScriptedPolicy policy(seq,
                                 std::make_unique<sim::RoundRobinPolicy>());
      const Time taken = run.scheduler().run(policy, 1000);
      const auto rr = run.finish(taken);
      bool any_commit = false;
      std::set<Value> picked;
      for (const auto& e : rr.trace().events()) {
        if (e.kind != sim::EventKind::kNote) continue;
        any_commit |= (e.label == "commit");
        picked.insert(e.value.asInt());
      }
      if (any_commit && picked.size() > 1) ++violations;
      return;
    }
    for (Pid p = 0; p < 2; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
  EXPECT_EQ(schedules, 6);
  EXPECT_GT(violations, 0)
      << "the naive converge should break on a solo-then-late schedule";
}

}  // namespace
}  // namespace wfd
