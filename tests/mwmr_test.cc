// MWMR-from-SWMR atomic register construction: monotone (ts, writer)
// witnesses along every reader, read-your-writes, freshness after
// quiescence — across random and scripted schedules.
#include <gtest/gtest.h>

#include "memory/mwmr.h"
#include "test_util.h"

namespace wfd {
namespace {

using mem::mwmrRead;
using mem::MwmrRead;
using mem::mwmrWrite;
using sim::Coro;
using sim::Env;
using sim::RunConfig;
using sim::Unit;

// One designated writer increments; everyone else reads repeatedly and
// records (ts, writer, value) witnesses.
Coro<Unit> writerProc(Env& env, int count) {
  for (int i = 1; i <= count; ++i) {
    co_await mwmrWrite(env, sim::ObjKey{"t.mw"}, RegVal(static_cast<Value>(i)));
  }
  co_return Unit{};
}

Coro<Unit> readerProc(Env& env, int count) {
  for (int i = 0; i < count; ++i) {
    const MwmrRead r = co_await mwmrRead(env, sim::ObjKey{"t.mw"});
    if (r.writer >= 0) {
      std::vector<RegVal> rec;
      rec.emplace_back(r.ts);
      rec.emplace_back(static_cast<Value>(r.writer));
      rec.push_back(r.value);
      env.note("read", RegVal::tuple(std::move(rec)));
    }
  }
  co_return Unit{};
}

TEST(Mwmr, ReadsAreMonotonePerReader) {
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg,
        [](Env& e, Value) -> Coro<Unit> {
          if (e.me() == 0) return writerProc(e, 20);
          return readerProc(e, 15);
        },
        {0, 0, 0, 0});
    ASSERT_TRUE(rr.all_correct_done);
    std::map<Pid, std::pair<std::int64_t, Pid>> last;
    for (const auto& e : rr.trace().events()) {
      if (e.kind != sim::EventKind::kNote || e.label != "read") continue;
      const auto& t = e.value.asTuple();
      const std::pair<std::int64_t, Pid> wit{t[0].asInt(),
                                             static_cast<Pid>(t[1].asInt())};
      auto it = last.find(e.pid);
      if (it != last.end()) {
        EXPECT_GE(wit, it->second)
            << "reader p" << e.pid + 1 << " went backwards (seed " << seed
            << ")";
      }
      last[e.pid] = wit;
      // Value matches the witness for a single incrementing writer.
      EXPECT_EQ(t[2].asInt(), t[0].asInt());
    }
  }
}

TEST(Mwmr, QuiescentReadSeesLastWrite) {
  // Writer runs to completion solo, then readers run: all must see the
  // final value (regularity/freshness).
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  sim::Run run(
      cfg,
      [](Env& e, Value) -> Coro<Unit> {
        if (e.me() == 0) return writerProc(e, 10);
        return readerProc(e, 1);
      },
      {0, 0, 0});
  // Writer solo (10 writes x (n+1 reads + 1 write) steps), then the rest.
  std::vector<Pid> prefix(10 * (n_plus_1 + 1) + 5, 0);
  sim::ScriptedPolicy policy(std::move(prefix),
                             std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 100'000);
  const auto rr = run.finish(taken);
  ASSERT_TRUE(rr.all_correct_done);
  int reads = 0;
  for (const auto& e : rr.trace().events()) {
    if (e.kind == sim::EventKind::kNote && e.label == "read") {
      ++reads;
      EXPECT_EQ(e.value.asTuple()[2].asInt(), 10);
    }
  }
  EXPECT_EQ(reads, 2);
}

TEST(Mwmr, ConcurrentWritersAreTotallyOrdered) {
  // All processes write then read: the (ts, writer) witnesses across all
  // final reads must be identical or ordered, and the read value must be
  // some process's write.
  const int n_plus_1 = 5;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg,
        [](Env& e, Value v) -> Coro<Unit> {
          co_await mwmrWrite(e, sim::ObjKey{"t.mw2"}, RegVal(v));
          const MwmrRead r = co_await mwmrRead(e, sim::ObjKey{"t.mw2"});
          e.decide(r.value.asInt());
          co_return Unit{};
        },
        test::distinctProposals(n_plus_1));
    ASSERT_TRUE(rr.all_correct_done);
    for (const auto& [p, v] : rr.decisions) {
      EXPECT_GE(v, 100);
      EXPECT_LT(v, 100 + n_plus_1);
    }
  }
}

TEST(Mwmr, ReadYourWrites) {
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.policy = sim::PolicyKind::kRoundRobin;
  const auto rr = sim::runTask(
      cfg,
      [](Env& e, Value v) -> Coro<Unit> {
        // Write, read back immediately with no interleaved writer of a
        // *smaller* timestamp able to mask it: the read's witness must be
        // at least our write's.
        co_await mwmrWrite(e, sim::ObjKey{"t.ryw", e.me()}, RegVal(v));
        const MwmrRead r = co_await mwmrRead(e, sim::ObjKey{"t.ryw", e.me()});
        e.decide(r.value.asInt());  // sole writer of this register
        co_return Unit{};
      },
      test::distinctProposals(n_plus_1));
  for (const auto& [p, v] : rr.decisions) EXPECT_EQ(v, 100 + p);
}

}  // namespace
}  // namespace wfd
