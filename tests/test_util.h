// Shared helpers for the test suite.
#pragma once

#include <vector>

#include "wfd.h"

namespace wfd::test {

// Distinct proposals 100, 101, ..., so every decision is attributable.
inline std::vector<Value> distinctProposals(int n_plus_1) {
  std::vector<Value> v(static_cast<std::size_t>(n_plus_1));
  for (int i = 0; i < n_plus_1; ++i) v[static_cast<std::size_t>(i)] = 100 + i;
  return v;
}

// Proposals with exactly `k` distinct values (cyclic assignment).
inline std::vector<Value> proposalsWithDistinct(int n_plus_1, int k) {
  std::vector<Value> v(static_cast<std::size_t>(n_plus_1));
  for (int i = 0; i < n_plus_1; ++i) {
    v[static_cast<std::size_t>(i)] = 100 + (i % k);
  }
  return v;
}

}  // namespace wfd::test
