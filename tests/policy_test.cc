// Scheduling policies: fairness, scripting, eventual synchrony.
#include <gtest/gtest.h>

#include <map>

#include "test_util.h"

namespace wfd {
namespace {

using sim::Coro;
using sim::Env;
using sim::EventuallySynchronousPolicy;
using sim::FailurePattern;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> stepper(Env& env, int steps) {
  const sim::ObjId r = env.reg(sim::ObjKey{"pol", env.me()});
  for (int i = 0; i < steps; ++i) co_await env.write(r, RegVal(Value{i}));
  co_return Unit{};
}

// Count per-process steps under a policy for a fixed horizon.
std::map<Pid, Time> stepsUnder(sim::SchedulePolicy& policy, int n_plus_1,
                               Time horizon) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  sim::Run run(cfg, [](Env& e, Value) { return stepper(e, 1 << 28); },
               std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  run.scheduler().run(policy, horizon);
  std::map<Pid, Time> out;
  for (Pid p = 0; p < n_plus_1; ++p) {
    out[p] = run.scheduler().ctx(p).steps;
  }
  return out;
}

TEST(Policies, RoundRobinIsPerfectlyBalanced) {
  sim::RoundRobinPolicy rr;
  const auto steps = stepsUnder(rr, 4, 400);
  for (const auto& [p, s] : steps) EXPECT_EQ(s, 100);
}

TEST(Policies, RandomIsRoughlyBalanced) {
  sim::RandomPolicy rnd;
  const auto steps = stepsUnder(rnd, 4, 4000);
  for (const auto& [p, s] : steps) {
    EXPECT_GT(s, 800);
    EXPECT_LT(s, 1200);
  }
}

TEST(Policies, ScriptedPrefixIsHonored) {
  sim::ScriptedPolicy pol({2, 2, 2, 0, 1},
                          std::make_unique<sim::RoundRobinPolicy>());
  const auto steps = stepsUnder(pol, 3, 5);
  EXPECT_EQ(steps.at(2), 3);
  EXPECT_EQ(steps.at(0), 1);
  EXPECT_EQ(steps.at(1), 1);
}

TEST(Policies, ScriptedSkipsNonRunnableEntries) {
  RunConfig cfg;
  cfg.n_plus_1 = 2;
  cfg.fp = FailurePattern::withCrashes(2, {{0, 0}});  // p1 never runs
  sim::Run run(cfg, [](Env& e, Value) { return stepper(e, 5); }, {0, 0});
  sim::ScriptedPolicy pol({0, 0, 1, 0, 1},
                          std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(pol, 100);
  const auto rr = run.finish(taken);
  EXPECT_TRUE(rr.all_correct_done);  // p2 finished despite the dead script
}

TEST(Policies, EventualSynchronyStarvesBeforeGstOnly) {
  // Before GST the rotating victim gets nothing within a stretch; after
  // GST round-robin gives everyone an equal share.
  const Time gst = 970;  // multiple of the default stretch period
  EventuallySynchronousPolicy pol(gst, /*starve_stretch=*/97);
  const auto steps = stepsUnder(pol, 3, gst + 300);
  // Post-GST: 300 steps round-robin = 100 each; pre-GST shares vary but
  // every process gets at least its post-GST quota.
  for (const auto& [p, s] : steps) EXPECT_GE(s, 100);
  Time total = 0;
  for (const auto& [p, s] : steps) total += s;
  EXPECT_EQ(total, gst + 300);
}

TEST(Policies, EventualSynchronyIsFairEventually) {
  // A long run decides Fig. 1 even though Upsilon is fed by the same
  // run's chaotic prefix (detector stabilizes mid-chaos).
  const int n_plus_1 = 4;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const auto props = test::distinctProposals(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 200, 3);
  sim::Run run(cfg,
               [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
               props);
  EventuallySynchronousPolicy pol(/*gst=*/1500);
  const Time taken = run.scheduler().run(pol, 2'000'000);
  const auto rr = run.finish(taken);
  const auto rep = core::checkKSetAgreement(rr, n_plus_1 - 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

}  // namespace
}  // namespace wfd
