// Theorem 1 (executable form): the proof's adversary defeats the natural
// candidate Upsilon -> Omega_n extraction algorithms — either the output
// never stabilizes (switch count grows with the horizon) or it freezes on
// an illegal value exposed by a crash pattern. The easy direction
// (Omega_n -> Upsilon) is in reductions_test.cc; together they witness
// "Upsilon is strictly weaker than Omega_n".
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::candidateComplementOrStatic;
using core::candidateLowestHeartbeat;
using core::crashExposure;
using core::soloChase;
using sim::Env;

TEST(Theorem1, SoloChaseDefeatsLowestHeartbeat) {
  const int n_plus_1 = 4;
  const auto cand = [](Env& e, Value) { return candidateLowestHeartbeat(e); };
  const auto s1 = soloChase(cand, n_plus_1, 40'000);
  const auto s2 = soloChase(cand, n_plus_1, 160'000);
  // The extracted output never stabilizes: forced switches keep
  // accumulating as the run grows.
  EXPECT_GE(s1.switches, 3);
  EXPECT_GE(s2.switches, 2 * s1.switches);
  // Forced instability persists to the end of the horizon.
  EXPECT_GE(s2.last_switch_time, s2.steps * 7 / 10);
}

TEST(Theorem1, SwitchCountScalesLinearly) {
  const int n_plus_1 = 3;
  const auto cand = [](Env& e, Value) { return candidateLowestHeartbeat(e); };
  int prev = 0;
  for (Time horizon : {20'000L, 40'000L, 80'000L}) {
    const auto s = soloChase(cand, n_plus_1, horizon);
    EXPECT_GT(s.switches, prev);
    prev = s.switches;
  }
}

TEST(Theorem1, CrashExposureDefeatsStaticComplement) {
  const int n_plus_1 = 4;
  const auto cand = [](Env& e, Value) {
    return candidateComplementOrStatic(e);
  };
  const auto s = crashExposure(cand, n_plus_1, 30'000);
  // The candidate's output is stable — and illegal: it excludes the only
  // correct process, so its claimed Omega_n set is entirely faulty.
  ASSERT_TRUE(s.stable);
  EXPECT_FALSE(s.legal);
  EXPECT_EQ(s.stable_pc, ProcSet::singleton(n_plus_1 - 1));
}

TEST(Theorem1, ComplementCandidateIsFineFailureFree) {
  // Sanity check of the demonstration's honesty: the static candidate is
  // NOT defeated in failure-free runs (its frozen output is legal there).
  // Theorem 1's quantifier is over all runs; the crash run above is the
  // one that kills it.
  const int n_plus_1 = 4;
  const auto cand = [](Env& e, Value) {
    return candidateComplementOrStatic(e);
  };
  const auto s = soloChase(cand, n_plus_1, 30'000);
  EXPECT_EQ(s.switches, 0);
  EXPECT_TRUE(s.final_agreement);
}

// Theorem 5's shape for f = n also covers the lowest-heartbeat candidate
// at other system sizes.
TEST(Theorem5, ChaseScalesToLargerSystems) {
  for (int n_plus_1 : {3, 5, 6}) {
    const auto cand = [](Env& e, Value) {
      return candidateLowestHeartbeat(e);
    };
    const auto s = soloChase(cand, n_plus_1, 60'000);
    EXPECT_GE(s.switches, 2) << "n+1=" << n_plus_1;
  }
}

TEST(Theorem1, ChaseIsDeterministic) {
  const auto cand = [](Env& e, Value) { return candidateLowestHeartbeat(e); };
  const auto a = soloChase(cand, 4, 20'000, 4096, 7);
  const auto b = soloChase(cand, 4, 20'000, 4096, 7);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.last_instability, b.last_instability);
}

}  // namespace
}  // namespace wfd
