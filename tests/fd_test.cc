// Failure detector history generators must produce histories inside
// D(F): every experiment's conclusion depends on it (fd/axioms.h).
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using fd::checkOmegaK;
using fd::checkStable;
using fd::checkUpsilonF;
using sim::FailurePattern;

TEST(UpsilonFd, AxiomsHoldFailureFree) {
  for (int n_plus_1 : {2, 3, 5, 8}) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto u = fd::makeUpsilon(fp, /*stab_time=*/50, seed);
      const auto rep = checkUpsilonF(*u, fp, n_plus_1 - 1, /*horizon=*/300);
      EXPECT_TRUE(rep.ok) << "n+1=" << n_plus_1 << " seed " << seed << ": "
                          << rep.violation;
    }
  }
}

TEST(UpsilonFd, AxiomsHoldWithCrashes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto fp = FailurePattern::random(5, 4, 100, seed);
    const auto u = fd::makeUpsilon(fp, 80, seed);
    const auto rep = checkUpsilonF(*u, fp, 4, 400);
    EXPECT_TRUE(rep.ok) << rep.violation;
  }
}

TEST(UpsilonFd, FRangeRespected) {
  for (int f = 1; f <= 4; ++f) {
    const auto fp = FailurePattern::failureFree(5);
    const auto u = fd::makeUpsilonF(fp, f, 60, 7);
    const auto rep = checkUpsilonF(*u, fp, f, 250);
    EXPECT_TRUE(rep.ok) << "f=" << f << ": " << rep.violation;
  }
}

TEST(UpsilonFd, RejectsIllegalStableSet) {
  const auto fp = FailurePattern::failureFree(3);
  // U = correct(F) = Pi violates axiom (2).
  EXPECT_DEATH(
      { auto u = fd::makeUpsilon(fp, ProcSet::full(3), 0, 1); (void)u; },
      "stable set");
}

TEST(UpsilonFd, NoiseHoldKeepsValuesForWindow) {
  const auto fp = FailurePattern::failureFree(4);
  fd::UpsilonFd::Params p;
  p.stable_set = fd::UpsilonFd::defaultStableSet(fp, 3);
  p.stab_time = 1000;
  p.noise_hold = 50;
  const auto u = fd::makeUpsilonWithParams(fp, 3, p);
  // Within one hold window the noise output is constant per process.
  for (Time base : {0L, 50L, 400L}) {
    const ProcSet v = u->query(1, base);
    for (Time t = base; t < base + 50; ++t) EXPECT_EQ(u->query(1, t), v);
  }
}

TEST(UpsilonFd, HistoryIsAFunction) {
  // Re-querying H(p, t) gives identical answers (required by the model).
  const auto fp = FailurePattern::failureFree(4);
  const auto u = fd::makeUpsilon(fp, 500, 3);
  for (Pid p = 0; p < 4; ++p) {
    for (Time t = 0; t < 200; t += 17) {
      EXPECT_EQ(u->query(p, t), u->query(p, t));
    }
  }
}

TEST(OmegaKFd, AxiomsHold) {
  for (int k = 1; k <= 4; ++k) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto fp = FailurePattern::random(5, 5 - k, 50, seed * 3);
      const auto om = fd::makeOmegaK(fp, k, 70, seed);
      const auto rep = checkOmegaK(*om, fp, k, 300);
      EXPECT_TRUE(rep.ok) << "k=" << k << " seed " << seed << ": "
                          << rep.violation;
    }
  }
}

TEST(OmegaKFd, OmegaIsOmega1) {
  const auto fp = FailurePattern::failureFree(3);
  const auto om = fd::makeOmega(fp, 40, 5);
  EXPECT_EQ(om->name(), "Omega");
  const auto rep = checkOmegaK(*om, fp, 1, 200);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST(AntiOmegaFd, StableVariantIsALegalUpsilonHistory) {
  // Structural fact from Sect. 2/related work: a stable anti-Omega
  // history (eventually constant singleton != correct set) satisfies
  // Upsilon's axioms verbatim.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(4, 3, 60, seed * 11);
    const auto ao = fd::makeAntiOmega(fp, 90, seed);
    const auto rep = checkUpsilonF(*ao, fp, 3, 350);
    EXPECT_TRUE(rep.ok) << rep.violation;
  }
}

TEST(ScriptedFd, RealizesArbitraryHistories) {
  const ProcSet a{0, 1};
  const ProcSet b{2};
  const auto s = fd::makeScripted(
      "flip", [&](Pid, Time t) { return (t < 10) ? a : b; }, 10);
  EXPECT_EQ(s->query(0, 0), a);
  EXPECT_EQ(s->query(2, 9), a);
  EXPECT_EQ(s->query(1, 10), b);
  EXPECT_EQ(s->query(1, 1000), b);
}

TEST(DummyFd, IsStableAndConstant) {
  const auto fp = FailurePattern::failureFree(3);
  const auto d = fd::makeConstant(ProcSet{1});
  const auto rep = checkStable(*d, fp, 100);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST(AllShippedDetectors, AreStable) {
  // Sect. 6.2: the minimality result covers stable detectors; everything
  // we ship must be in scope.
  const auto fp = FailurePattern::withCrashes(5, {{4, 30}});
  std::vector<fd::FdPtr> dets = {
      fd::makeUpsilon(fp, 60, 1), fd::makeUpsilonF(fp, 2, 60, 2),
      fd::makeOmega(fp, 60, 3),   fd::makeOmegaK(fp, 3, 60, 4),
      fd::makeAntiOmega(fp, 60, 5), fd::makeConstant(ProcSet{0})};
  for (const auto& d : dets) {
    const auto rep = checkStable(*d, fp, 400);
    EXPECT_TRUE(rep.ok) << d->name() << ": " << rep.violation;
  }
}

}  // namespace
}  // namespace wfd
