// The weaker-than lattice (paper Sect. 3.5), systematically:
//
//    P ≥ <>P ≥ Omega = Omega^1 ≥ Omega^k ≥ Upsilon^{n+1-k}, and
//    Upsilon^{f'} histories are Upsilon^f histories for f' <= f.
//
// Each "≥" edge is realized either by a stateless lens (fd::MappedFd —
// one detector's history IS a legal history of the other after a pure
// per-query map) or by a published reduction; every edge is certified by
// the target's axiom checker. The strictness results (Theorems 1/5) are
// the *absence* of upward edges, covered in adversary_test.cc.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using sim::FailurePattern;

TEST(Lattice, PerfectHistoriesAreEventuallyPerfect) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(5, 4, 60, seed);
    EXPECT_TRUE(fd::checkEventuallyPerfect(*fd::makePerfect(fp), fp, 300).ok);
  }
}

TEST(Lattice, OmegaToOmegaKByPadding) {
  // Omega^k from Omega: leader plus the k-1 lowest non-leader ids — the
  // padded set still eventually contains the correct leader.
  const int n_plus_1 = 5;
  for (int k = 2; k <= 4; ++k) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - k, 50,
                                             seed * 7 + k);
      const auto lens = fd::makeMapped(
          fd::makeOmega(fp, 80, seed),
          [k, n_plus_1](const ProcSet& leader, Pid, Time) {
            ProcSet s = leader;
            for (Pid p = 0; p < n_plus_1 && s.size() < k; ++p) s.insert(p);
            return s;
          },
          "pad(Omega)");
      EXPECT_TRUE(fd::checkOmegaK(*lens, fp, k, 300).ok)
          << "k=" << k << " seed " << seed;
    }
  }
}

TEST(Lattice, OmegaKToUpsilonByComplement) {
  const int n_plus_1 = 5;
  for (int k = 1; k <= 4; ++k) {
    const int f = n_plus_1 - 1;  // complement has size n+1-k >= n+1-f
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto fp =
          FailurePattern::random(n_plus_1, n_plus_1 - k, 50, seed * 3 + k);
      const auto lens =
          fd::makeComplemented(fd::makeOmegaK(fp, k, 70, seed), n_plus_1);
      // The complement misses the stable correct leader, so it is never
      // the correct set — a legal Upsilon history. (For k = n+1-? the
      // tighter Upsilon^{n+1-k} claim is covered in reductions_test.)
      EXPECT_TRUE(fd::checkUpsilonF(*lens, fp, f, 300).ok)
          << "k=" << k << " seed " << seed;
    }
  }
}

TEST(Lattice, UpsilonFPrimeHistoriesAreUpsilonF) {
  // f' <= f: the range only widens (sets of size >= n+1-f' are also of
  // size >= n+1-f) and the axioms coincide — identity is the reduction.
  const int n_plus_1 = 6;
  for (int f_strong = 1; f_strong <= 4; ++f_strong) {
    for (int f_weak = f_strong; f_weak <= 5; ++f_weak) {
      const auto fp = FailurePattern::random(n_plus_1, f_strong, 50,
                                             static_cast<std::uint64_t>(
                                                 f_strong * 10 + f_weak));
      const auto d = fd::makeUpsilonF(fp, f_strong, 60, 3);
      EXPECT_TRUE(fd::checkUpsilonF(*d, fp, f_weak, 250).ok)
          << "f'=" << f_strong << " f=" << f_weak;
    }
  }
}

TEST(Lattice, ChainedLensPToUpsilon) {
  // The full descent in one composition: P -> (suspected-complement
  // leader) -> padded Omega_n -> complement = Upsilon, as one MappedFd
  // chain over the perfect detector.
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, 3, 40, seed * 11);
    const auto omega = fd::makeMapped(
        fd::makePerfect(fp),
        [n_plus_1](const ProcSet& suspected, Pid, Time) {
          const ProcSet alive = suspected.complement(n_plus_1);
          return ProcSet::singleton(alive.empty() ? 0 : alive.min());
        },
        "omega(P)");
    EXPECT_TRUE(fd::checkOmegaK(*omega, fp, 1, 250).ok);
    const auto upsilon = fd::makeComplemented(omega, n_plus_1);
    EXPECT_TRUE(fd::checkUpsilonF(*upsilon, fp, n_plus_1 - 1, 250).ok);
  }
}

TEST(Lattice, EveryStableDetectorFeedsFig1ThroughItsLens) {
  // End-to-end: each lattice member, pushed down to Upsilon through its
  // lens, drives Fig. 1 to a correct decision — the practical content of
  // "provides at least as much information as Upsilon".
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, 3, 100, seed * 13);
    const std::vector<fd::FdPtr> sources = {
        fd::makeComplemented(
            fd::makeMapped(
                fd::makeEventuallyPerfect(fp, 150, seed),
                [n_plus_1](const ProcSet& susp, Pid, Time) {
                  const ProcSet alive = susp.complement(n_plus_1);
                  return ProcSet::singleton(alive.empty() ? 0 : alive.min());
                },
                "omega(<>P)"),
            n_plus_1),
        fd::makeComplemented(fd::makeOmegaK(fp, n_plus_1 - 1, 150, seed),
                             n_plus_1),
        fd::makeUpsilon(fp, 150, seed),
        fd::makeAntiOmega(fp, 150, seed),
    };
    for (const auto& src : sources) {
      sim::RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.fp = fp;
      cfg.fd = src;
      cfg.seed = seed;
      const auto rr = sim::runTask(
          cfg,
          [](sim::Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
          props);
      const auto rep = core::checkKSetAgreement(rr, n_plus_1 - 1, props);
      EXPECT_TRUE(rep.ok()) << src->name() << " seed " << seed << ": "
                            << rep.violation;
    }
  }
}

}  // namespace
}  // namespace wfd
