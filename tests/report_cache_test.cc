// ReportCache (sim/report_cache.h): whole-run memoization, certified.
//
//   * a warm hit is byte-identical — EVERY CellResult field — to both the
//     cold fill and a memo-free run, across all seven golden workload
//     families (plain, round-robin, Afek-flavored, eventually-synchronous,
//     scripted, watched Fig. 3 extraction, chaos);
//   * capacity is a hard bound: inserting 2x capacity evicts LRU entries
//     and never grows the map past the limit;
//   * audited runs bypass: an explicit AuditMode (and the WFD_AUDIT env
//     latch, via resolvedAuditMode) makes cellKey return nullopt, as do an
//     empty memo_family and a detector with an opaque keyDigest;
//   * the cache is shared safely across a jobs=4 worker pool (the TSan
//     tier-1 run watches the concurrent insert/lookup paths).
//
// Hit counts are asserted against the number of cells cellKey actually
// accepts, so the suite stays green under WFD_AUDIT=throw — where the env
// latch correctly turns every unset-audit cell uncacheable.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "test_util.h"

namespace wfd {
namespace {

using core::upsilonSetAgreement;
using sim::AuditMode;
using sim::BatchCell;
using sim::BatchOptions;
using sim::BatchRunner;
using sim::BatchStats;
using sim::CellResult;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::OpDelay;
using sim::ReportCache;
using sim::RunConfig;
using sim::WatchdogConfig;

sim::AlgoFn fig1Algo() {
  return [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
}

RunConfig fig1Config(int n_plus_1, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{1, 120}});
  cfg.fd = fd::makeUpsilon(*cfg.fp, 150, seed);
  cfg.seed = seed;
  return cfg;
}

// The seven golden families (tests/golden_hash_test.cc), as memo-eligible
// BatchCells. The memo_family names the opaque callables each shape fixes.
BatchCell familyCell(const std::string& family, std::uint64_t seed) {
  BatchCell cell;
  cell.memo_family = "rc-" + family;
  if (family == "fig1") {
    cell.cfg = fig1Config(4, seed);
    cell.algo = fig1Algo();
    cell.proposals = {10, 20, 30, 40};
    return cell;
  }
  if (family == "fig1-rr") {
    cell.cfg = fig1Config(4, seed);
    cell.cfg.policy = sim::PolicyKind::kRoundRobin;
    cell.algo = fig1Algo();
    cell.proposals = {10, 20, 30, 40};
    return cell;
  }
  if (family == "fig1-afek") {
    cell.cfg.n_plus_1 = 3;
    cell.cfg.fp = FailurePattern::failureFree(3);
    cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 80, seed);
    cell.cfg.seed = seed;
    cell.cfg.flavor = sim::SnapshotFlavor::kAfek;
    cell.algo = fig1Algo();
    cell.proposals = {1, 2, 3};
    return cell;
  }
  if (family == "fig1-esync") {
    cell.cfg = fig1Config(4, seed);
    cell.algo = fig1Algo();
    cell.proposals = {10, 20, 30, 40};
    cell.policy_factory = [] {
      return std::make_unique<sim::EventuallySynchronousPolicy>(
          /*gst=*/400, /*starve_stretch=*/97);
    };
    return cell;
  }
  if (family == "fig1-scripted") {
    cell.cfg = fig1Config(4, seed);
    cell.algo = fig1Algo();
    cell.proposals = {10, 20, 30, 40};
    cell.policy_factory = [] {
      return std::make_unique<sim::ScriptedPolicy>(
          std::vector<Pid>{0, 0, 2, 3, 1, 2, 0, 3, 3, 1},
          std::make_unique<sim::RoundRobinPolicy>());
    };
    return cell;
  }
  if (family == "fig3-watched") {
    const auto phi = core::phiOmegaK(4);
    cell.cfg.n_plus_1 = 4;
    cell.cfg.fp = FailurePattern::withCrashes(4, {{3, 60}});
    cell.cfg.fd = fd::makeOmega(*cell.cfg.fp, 120, seed);
    cell.cfg.seed = seed;
    cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
    cell.proposals = std::vector<Value>(4, 0);
    cell.watchdog = WatchdogConfig{/*step_budget=*/4'000, 0, 0};
    // A post hook, so the memo provably replays check/metric outputs too.
    cell.post = [](const sim::RunReport& rep, CellResult& out) {
      out.metrics["watched_steps"] = static_cast<double>(rep.steps);
      out.check_detail = "post ran";
    };
    return cell;
  }
  if (family == "chaos") {
    cell.cfg.n_plus_1 = 4;
    cell.cfg.fp = FailurePattern::withCrashes(4, {{3, 50}});
    cell.cfg.fd =
        fd::makeUpsilon(*cell.cfg.fp, ProcSet::full(4), /*stab=*/300, seed);
    cell.cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 2;
    chaos.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                             /*horizon=*/12, /*count=*/2, seed * 7});
    chaos.starvation.push_back({ProcSet{0}, 5, 10});
    chaos.op_delay = OpDelay{8, 3, seed};
    chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed};
    cell.chaos = chaos;
    cell.watchdog = WatchdogConfig{3'000'000, 0, 3};
    cell.algo = fig1Algo();
    cell.proposals = test::distinctProposals(4);
    return cell;
  }
  ADD_FAILURE() << "unknown family " << family;
  return cell;
}

const char* const kFamilies[] = {
    "fig1",         "fig1-rr", "fig1-afek", "fig1-esync",
    "fig1-scripted", "fig3-watched", "chaos",
};

std::vector<BatchCell> familyGrid() {
  std::vector<BatchCell> cells;
  for (const char* family : kFamilies) {
    for (const std::uint64_t seed : {3, 9}) {
      cells.push_back(familyCell(family, seed));
    }
  }
  return cells;
}

std::size_t cacheableCount(const std::vector<BatchCell>& cells) {
  std::size_t n = 0;
  for (const auto& c : cells) n += sim::cellKey(c).has_value() ? 1 : 0;
  return n;
}

// Byte-identical means EVERY field, post-hook outputs included.
void expectIdentical(const CellResult& want, const CellResult& got,
                     const std::string& what) {
  EXPECT_EQ(want.index, got.index) << what;
  EXPECT_EQ(want.verdict, got.verdict) << what;
  EXPECT_EQ(want.detail, got.detail) << what;
  EXPECT_EQ(want.error, got.error) << what;
  EXPECT_EQ(want.all_correct_done, got.all_correct_done) << what;
  EXPECT_EQ(want.steps, got.steps) << what;
  EXPECT_EQ(want.distinct_decisions, got.distinct_decisions) << what;
  EXPECT_EQ(want.decisions, got.decisions) << what;
  EXPECT_EQ(want.trace_hash, got.trace_hash) << what;
  EXPECT_EQ(want.check_ok, got.check_ok) << what;
  EXPECT_EQ(want.check_detail, got.check_detail) << what;
  EXPECT_EQ(want.metrics, got.metrics) << what;
}

TEST(ReportCache, WarmHitIsByteIdenticalAcrossAllGoldenFamilies) {
  const auto cells = familyGrid();
  const std::size_t cacheable = cacheableCount(cells);

  // Memo-free ground truth, then a cold fill, then a warm replay — all
  // three must agree on every field of every result.
  const auto truth = BatchRunner(BatchOptions{1}).run(cells);

  ReportCache cache;
  const BatchRunner memoed(BatchOptions{1, /*steal=*/true, &cache});
  BatchStats cold_stats;
  const auto cold = memoed.run(cells, &cold_stats);
  EXPECT_EQ(cold_stats.memo_hits, 0u);
  EXPECT_EQ(cold_stats.memo_misses, cacheable);

  BatchStats warm_stats;
  const auto warm = memoed.run(cells, &warm_stats);
  EXPECT_EQ(warm_stats.memo_hits, cacheable);
  EXPECT_EQ(warm_stats.memo_misses, 0u);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string what =
        std::string(cells[i].memo_family) + " cell " + std::to_string(i);
    expectIdentical(truth[i], cold[i], "cold vs truth: " + what);
    expectIdentical(truth[i], warm[i], "warm vs truth: " + what);
  }
  EXPECT_EQ(cache.hits(), warm_stats.memo_hits);
}

TEST(ReportCache, HitRewritesTheSubmissionIndex) {
  // The same recipe at two submission slots: the second is answered from
  // the memo (when cacheable) yet still carries ITS index.
  const BatchCell cell = familyCell("fig1", 5);
  ReportCache cache;
  BatchStats stats;
  const auto res = BatchRunner(BatchOptions{1, /*steal=*/true, &cache})
                       .run({cell, cell}, &stats);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].index, 0u);
  EXPECT_EQ(res[1].index, 1u);
  EXPECT_EQ(res[0].trace_hash, res[1].trace_hash);
  const std::size_t expected_hits = sim::cellKey(cell).has_value() ? 1u : 0u;
  EXPECT_EQ(stats.memo_hits, expected_hits);
}

TEST(ReportCache, CapacityIsAHardBoundWithLruEviction) {
  ReportCache cache(/*capacity=*/8);
  EXPECT_EQ(cache.capacity(), 8u);
  CellResult r;
  r.steps = 42;
  for (std::uint64_t key = 1; key <= 16; ++key) {
    r.trace_hash = key;
    cache.insert(key, r);
    EXPECT_LE(cache.size(), 8u);
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evictions(), 8u);
  // Oldest half evicted, newest half resident.
  EXPECT_FALSE(cache.lookup(1, 0).has_value());
  ASSERT_TRUE(cache.lookup(16, 0).has_value());

  // A lookup refreshes recency: key 9 survives the next insert, key 10
  // (now the least recently used) is the one evicted.
  ASSERT_TRUE(cache.lookup(9, 0).has_value());
  r.trace_hash = 17;
  cache.insert(17, r);
  EXPECT_TRUE(cache.lookup(9, 0).has_value());
  EXPECT_FALSE(cache.lookup(10, 0).has_value());
}

TEST(ReportCache, AuditedRunsBypassTheMemo) {
  // An explicit audit request makes the cell uncacheable before any run:
  // audited runs exist to be re-executed and checked, never replayed.
  BatchCell audited = familyCell("fig1", 7);
  audited.cfg.audit = AuditMode::kThrow;
  EXPECT_FALSE(sim::cellKey(audited).has_value());
  BatchCell collected = familyCell("fig1", 7);
  collected.cfg.audit = AuditMode::kCollect;
  EXPECT_FALSE(sim::cellKey(collected).has_value());

  ReportCache cache;
  BatchStats stats;
  const auto res = BatchRunner(BatchOptions{2, /*steal=*/true, &cache})
                       .run({audited, audited}, &stats);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(stats.memo_hits, 0u);
  EXPECT_EQ(stats.memo_misses, 0u);
  EXPECT_EQ(cache.size(), 0u);

  // Without the explicit request, cacheability is exactly what the env
  // latch says: cacheable when WFD_AUDIT leaves the run unaudited.
  const BatchCell unaudited = familyCell("fig1", 7);
  EXPECT_EQ(sim::cellKey(unaudited).has_value(),
            !sim::resolvedAuditMode(std::nullopt).has_value());
}

// A history the digest cannot pin down: keyDigest stays the default
// kOpaqueFdDigest, so cells using it are uncacheable by construction.
struct OpaqueFd final : fd::FailureDetector {
  ProcSet query(Pid, Time) const override { return ProcSet{0}; }
  std::string name() const override { return "opaque-scripted"; }
  Time stabilizationTime() const override { return 0; }
};

TEST(ReportCache, OpaqueDetectorsAndAnonymousCellsBypass) {
  BatchCell anonymous = familyCell("fig1", 11);
  anonymous.memo_family.clear();
  EXPECT_FALSE(sim::cellKey(anonymous).has_value());

  BatchCell opaque = familyCell("fig1", 11);
  opaque.cfg.fd = std::make_shared<const OpaqueFd>();
  EXPECT_FALSE(sim::cellKey(opaque).has_value());
  EXPECT_EQ(opaque.cfg.fd->keyDigest(), fd::kOpaqueFdDigest);
}

TEST(ReportCache, SharedAcrossAJobs4PoolWithoutRaces) {
  // Concurrent inserts on the cold pass, concurrent lookups on the warm
  // one — the tier-1 TSan run certifies the locking discipline here.
  const auto cells = familyGrid();
  const std::size_t cacheable = cacheableCount(cells);
  const auto truth = BatchRunner(BatchOptions{1}).run(cells);

  ReportCache cache;
  const BatchRunner pooled(BatchOptions{4, /*steal=*/true, &cache});
  BatchStats cold_stats;
  const auto cold = pooled.run(cells, &cold_stats);
  EXPECT_EQ(cold_stats.memo_misses, cacheable);
  BatchStats warm_stats;
  const auto warm = pooled.run(cells, &warm_stats);
  EXPECT_EQ(warm_stats.memo_hits, cacheable);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string what = "pooled cell " + std::to_string(i);
    expectIdentical(truth[i], cold[i], "cold: " + what);
    expectIdentical(truth[i], warm[i], "warm: " + what);
  }
}

}  // namespace
}  // namespace wfd
