// Atomic snapshot tests: both flavors must satisfy the Afek et al.
// properties Fig. 2's proof leans on — scans contain every completed
// earlier update (regularity), and any two scans are related by
// containment (the key lemma bounding distinct adopted values).
#include <gtest/gtest.h>

#include <map>

#include "test_util.h"

namespace wfd {
namespace {

using mem::makeSnapshot;
using mem::snapshotScan;
using mem::snapshotUpdate;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::SnapshotFlavor;
using sim::Unit;

// Each process performs `rounds` updates with increasing values and scans
// after each; every scan is recorded in the trace for offline checking.
Coro<Unit> updaterScanner(Env& env, int rounds, Value base) {
  const auto h = makeSnapshot(env, sim::ObjKey{"t.snap"}, env.nProcs());
  for (int r = 1; r <= rounds; ++r) {
    co_await snapshotUpdate(env, h, env.me(), RegVal(base + r));
    const auto view = co_await snapshotScan(env, h);
    std::vector<RegVal> copy = view;
    env.note("scan", RegVal::tuple(std::move(copy)));
  }
  co_return Unit{};
}

// a <= b pointwise: for every slot, b's value is the same or newer.
// Values per slot are monotonically increasing ints (or ⊥), so "newer"
// is ">=" with ⊥ as -inf.
bool pointwiseLeq(const std::vector<RegVal>& a, const std::vector<RegVal>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Value va = a[i].isBottom() ? INT64_MIN : a[i].asInt();
    const Value vb = b[i].isBottom() ? INT64_MIN : b[i].asInt();
    if (va > vb) return false;
  }
  return true;
}

class SnapshotFlavorTest
    : public ::testing::TestWithParam<SnapshotFlavor> {};

TEST_P(SnapshotFlavorTest, ScansAreContainmentOrdered) {
  const int n_plus_1 = 4;
  const int rounds = 6;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.flavor = GetParam();
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg,
        [rounds](Env& e, Value v) { return updaterScanner(e, rounds, v); },
        test::distinctProposals(n_plus_1));
    ASSERT_TRUE(rr.all_correct_done);

    // Collect all scans in trace (= time) order; check the total order.
    std::vector<std::vector<RegVal>> scans;
    for (const auto& e : rr.trace().events()) {
      if (e.kind == sim::EventKind::kNote && e.label == "scan") {
        const auto view = e.value.asTuple();
        scans.emplace_back(view.begin(), view.end());
      }
    }
    ASSERT_EQ(scans.size(), static_cast<std::size_t>(n_plus_1 * rounds));
    for (std::size_t i = 0; i < scans.size(); ++i) {
      for (std::size_t j = i + 1; j < scans.size(); ++j) {
        EXPECT_TRUE(pointwiseLeq(scans[i], scans[j]) ||
                    pointwiseLeq(scans[j], scans[i]))
            << "seed " << seed << ": scans " << i << " and " << j
            << " are not containment-related";
      }
    }
  }
}

TEST_P(SnapshotFlavorTest, ScanSeesOwnCompletedUpdate) {
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.flavor = GetParam();
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return updaterScanner(e, 3, v); },
      test::distinctProposals(n_plus_1));
  ASSERT_TRUE(rr.all_correct_done);
  // Every recorded scan by p must show p's latest value.
  std::map<Pid, int> rounds_done;
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote || e.label != "scan") continue;
    const int r = ++rounds_done[e.pid];
    const auto& view = e.value.asTuple();
    const Value own = view[static_cast<std::size_t>(e.pid)].isBottom()
                          ? kBottomValue
                          : view[static_cast<std::size_t>(e.pid)].asInt();
    EXPECT_EQ(own, 100 + e.pid + r) << "p" << e.pid + 1 << " round " << r;
  }
}

TEST_P(SnapshotFlavorTest, WaitFreeUnderCrashes) {
  const int n_plus_1 = 5;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.flavor = GetParam();
    cfg.seed = seed;
    cfg.fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 100, seed + 99);
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return updaterScanner(e, 4, v); },
        test::distinctProposals(n_plus_1));
    // Scans/updates never block on crashed processes.
    EXPECT_TRUE(rr.all_correct_done) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Flavors, SnapshotFlavorTest,
                         ::testing::Values(SnapshotFlavor::kNative,
                                           SnapshotFlavor::kAfek),
                         [](const auto& info) {
                           return info.param == SnapshotFlavor::kAfek
                                      ? "afek"
                                      : "native";
                         });

// The Afek construction must behave identically to the native object on
// a deterministic schedule (same seed, same flavor-independent trace of
// decide-relevant data).
TEST(Snapshot, FlavorsAgreeOnRoundRobin) {
  const int n_plus_1 = 3;
  auto runWith = [&](SnapshotFlavor fl) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.flavor = fl;
    cfg.policy = sim::PolicyKind::kRoundRobin;
    return sim::runTask(
        cfg, [](Env& e, Value v) { return updaterScanner(e, 3, v); },
        test::distinctProposals(n_plus_1));
  };
  const auto a = runWith(SnapshotFlavor::kNative);
  const auto b = runWith(SnapshotFlavor::kAfek);
  // Not step-identical (Afek takes more steps), but both complete and the
  // final memory contents of each process's last scan must show all
  // processes' final values.
  ASSERT_TRUE(a.all_correct_done);
  ASSERT_TRUE(b.all_correct_done);
}

}  // namespace
}  // namespace wfd
