// Unit tests for ProcSet, the process-set value type underlying every
// failure detector range in the library.
#include "common/proc_set.h"

#include <gtest/gtest.h>

namespace wfd {
namespace {

TEST(ProcSet, EmptyByDefault) {
  ProcSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.min(), -1);
}

TEST(ProcSet, InsertContainsErase) {
  ProcSet s;
  s.insert(3);
  s.insert(0);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcSet, FullUniverse) {
  const ProcSet s = ProcSet::full(5);
  EXPECT_EQ(s.size(), 5);
  for (Pid p = 0; p < 5; ++p) EXPECT_TRUE(s.contains(p));
  EXPECT_FALSE(s.contains(5));
}

TEST(ProcSet, ComplementWithinUniverse) {
  ProcSet s{0, 2};
  const ProcSet c = s.complement(4);
  EXPECT_EQ(c, (ProcSet{1, 3}));
  EXPECT_EQ(c.complement(4), s);
}

TEST(ProcSet, SetAlgebra) {
  const ProcSet a{0, 1, 2};
  const ProcSet b{2, 3};
  EXPECT_EQ(a.intersect(b), ProcSet{2});
  EXPECT_EQ(a.unionWith(b), (ProcSet{0, 1, 2, 3}));
  EXPECT_EQ(a.minus(b), (ProcSet{0, 1}));
  EXPECT_TRUE((ProcSet{0, 1}).subsetOf(a));
  EXPECT_FALSE(a.subsetOf(b));
}

TEST(ProcSet, MinAndMembersOrdered) {
  const ProcSet s{5, 1, 3};
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.members(), (std::vector<Pid>{1, 3, 5}));
}

TEST(ProcSet, ToStringIsOneBased) {
  EXPECT_EQ((ProcSet{0, 2}).toString(), "{p1,p3}");
  EXPECT_EQ(ProcSet{}.toString(), "{}");
}

TEST(ProcSet, SingletonFactory) {
  const ProcSet s = ProcSet::singleton(7);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.min(), 7);
}

TEST(ProcSet, EqualityIsStructural) {
  ProcSet a{1, 2};
  ProcSet b;
  b.insert(2);
  b.insert(1);
  EXPECT_EQ(a, b);
  b.insert(0);
  EXPECT_NE(a, b);
}

TEST(ProcSet, FullAtMaxWidth) {
  const ProcSet s = ProcSet::full(kMaxProcs);
  EXPECT_EQ(s.size(), kMaxProcs);
  EXPECT_TRUE(s.contains(kMaxProcs - 1));
}

// --- Hot-path select primitives (nth / nextAbove / iterator) --------------
//
// These back the allocation-free schedule policies, so the edge shapes —
// empty set, full 64-bit universe, lone bits at the mask boundaries —
// each get pinned explicitly.

TEST(ProcSet, NthSelectsIthSmallestMember) {
  const ProcSet s{1, 3, 5, 40, 63};
  const auto members = s.members();
  for (int i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.nth(i), members[static_cast<std::size_t>(i)]) << "i=" << i;
  }
}

TEST(ProcSet, NthOnFull64MatchesIdentity) {
  const ProcSet s = ProcSet::full(kMaxProcs);
  for (int i = 0; i < kMaxProcs; ++i) EXPECT_EQ(s.nth(i), i) << "i=" << i;
}

TEST(ProcSet, NthOnSingleBitSets) {
  for (Pid p = 0; p < kMaxProcs; ++p) {
    EXPECT_EQ(ProcSet::singleton(p).nth(0), p) << "p=" << p;
  }
}

TEST(ProcSet, NthAgreesWithMembersOnMixedMasks) {
  // A handful of irregular masks, including ones dense in the top half.
  for (const std::uint64_t bits :
       {std::uint64_t{0x8000000000000001ULL}, std::uint64_t{0xF0F0F0F0F0F0F0F0ULL},
        std::uint64_t{0x00000000FFFFFFFFULL}, std::uint64_t{0xAAAAAAAAAAAAAAAAULL},
        std::uint64_t{0x0123456789ABCDEFULL}}) {
    const ProcSet s = ProcSet::fromBits(bits);
    const auto members = s.members();
    for (int i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s.nth(i), members[static_cast<std::size_t>(i)])
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(ProcSet, NextAboveWalksMembersInOrder) {
  const ProcSet s{0, 2, 40, 63};
  EXPECT_EQ(s.nextAbove(-1), 0);
  EXPECT_EQ(s.nextAbove(0), 2);
  EXPECT_EQ(s.nextAbove(1), 2);
  EXPECT_EQ(s.nextAbove(2), 40);
  EXPECT_EQ(s.nextAbove(40), 63);
  EXPECT_EQ(s.nextAbove(62), 63);
  EXPECT_EQ(s.nextAbove(63 - 1), 63);
}

TEST(ProcSet, NextAboveOnEmptyAndPastEnd) {
  EXPECT_EQ(ProcSet{}.nextAbove(-1), -1);
  EXPECT_EQ(ProcSet{}.nextAbove(30), -1);
  const ProcSet s{5};
  EXPECT_EQ(s.nextAbove(5), -1);
  EXPECT_EQ(s.nextAbove(kMaxProcs - 1), -1);
}

TEST(ProcSet, NextAboveOnFull64) {
  const ProcSet s = ProcSet::full(kMaxProcs);
  for (Pid p = -1; p < kMaxProcs - 1; ++p) EXPECT_EQ(s.nextAbove(p), p + 1);
  EXPECT_EQ(s.nextAbove(kMaxProcs - 1), -1);
}

TEST(ProcSet, IteratorOverEmptySet) {
  const ProcSet s;
  EXPECT_EQ(s.begin(), s.end());
  int count = 0;
  for (Pid p : s) {
    (void)p;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(ProcSet, IteratorMatchesMembers) {
  for (const ProcSet& s :
       {ProcSet{}, ProcSet{7}, ProcSet{0, 63}, ProcSet{1, 3, 5, 40},
        ProcSet::full(kMaxProcs)}) {
    std::vector<Pid> seen;
    for (Pid p : s) seen.push_back(p);
    EXPECT_EQ(seen, s.members());
  }
}

TEST(ProcSet, IteratorIsForwardIterator) {
  static_assert(std::forward_iterator<ProcSet::iterator>);
  const ProcSet s{4, 9};
  auto it = s.begin();
  EXPECT_EQ(*it, 4);
  auto old = it++;  // post-increment returns the pre-step position
  EXPECT_EQ(*old, 4);
  EXPECT_EQ(*it, 9);
  ++it;
  EXPECT_EQ(it, s.end());
}

}  // namespace
}  // namespace wfd
