// Unit tests for ProcSet, the process-set value type underlying every
// failure detector range in the library.
#include "common/proc_set.h"

#include <gtest/gtest.h>

namespace wfd {
namespace {

TEST(ProcSet, EmptyByDefault) {
  ProcSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.min(), -1);
}

TEST(ProcSet, InsertContainsErase) {
  ProcSet s;
  s.insert(3);
  s.insert(0);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcSet, FullUniverse) {
  const ProcSet s = ProcSet::full(5);
  EXPECT_EQ(s.size(), 5);
  for (Pid p = 0; p < 5; ++p) EXPECT_TRUE(s.contains(p));
  EXPECT_FALSE(s.contains(5));
}

TEST(ProcSet, ComplementWithinUniverse) {
  ProcSet s{0, 2};
  const ProcSet c = s.complement(4);
  EXPECT_EQ(c, (ProcSet{1, 3}));
  EXPECT_EQ(c.complement(4), s);
}

TEST(ProcSet, SetAlgebra) {
  const ProcSet a{0, 1, 2};
  const ProcSet b{2, 3};
  EXPECT_EQ(a.intersect(b), ProcSet{2});
  EXPECT_EQ(a.unionWith(b), (ProcSet{0, 1, 2, 3}));
  EXPECT_EQ(a.minus(b), (ProcSet{0, 1}));
  EXPECT_TRUE((ProcSet{0, 1}).subsetOf(a));
  EXPECT_FALSE(a.subsetOf(b));
}

TEST(ProcSet, MinAndMembersOrdered) {
  const ProcSet s{5, 1, 3};
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.members(), (std::vector<Pid>{1, 3, 5}));
}

TEST(ProcSet, ToStringIsOneBased) {
  EXPECT_EQ((ProcSet{0, 2}).toString(), "{p1,p3}");
  EXPECT_EQ(ProcSet{}.toString(), "{}");
}

TEST(ProcSet, SingletonFactory) {
  const ProcSet s = ProcSet::singleton(7);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.min(), 7);
}

TEST(ProcSet, EqualityIsStructural) {
  ProcSet a{1, 2};
  ProcSet b;
  b.insert(2);
  b.insert(1);
  EXPECT_EQ(a, b);
  b.insert(0);
  EXPECT_NE(a, b);
}

TEST(ProcSet, FullAtMaxWidth) {
  const ProcSet s = ProcSet::full(kMaxProcs);
  EXPECT_EQ(s.size(), kMaxProcs);
  EXPECT_TRUE(s.contains(kMaxProcs - 1));
}

}  // namespace
}  // namespace wfd
