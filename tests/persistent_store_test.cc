// PersistentStore (sim/fabric/store.h): the durable second level below
// ReportCache, certified for the properties docs/PARALLEL.md promises:
//
//   * save/load round-trips every CellResult field exactly;
//   * a warm hit survives a real handle teardown (the restart case: a new
//     PersistentStore over the same directory serves the bytes the old
//     one appended, and a makeMemo-built ReportCache over it replays a
//     whole campaign from disk, byte-identical);
//   * robustness: a truncated segment, a corrupted record, a wrong
//     version stamp, and concurrent writers from two PROCESSES all
//     degrade to a cold miss — never a wrong hit, never a crash;
//   * BatchOptions plumbing: makeMemo honors memo_capacity and attaches
//     the store only when cache_dir is set.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/fabric/store.h"
#include "test_util.h"

namespace wfd {
namespace {

using sim::BatchOptions;
using sim::CellResult;
using sim::ReportCache;
using sim::RunVerdict;
using sim::fabric::PersistentStore;
using sim::fabric::StoreOptions;

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "wfd_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A result exercising every field the codec carries, varied by seed.
CellResult sampleResult(std::uint64_t seed) {
  CellResult r;
  r.index = 7;  // stores must round-trip it; ReportCache rewrites it
  r.verdict = seed % 2 == 0 ? RunVerdict::kOk : RunVerdict::kLivelock;
  r.detail = "detail-" + std::to_string(seed);
  r.all_correct_done = seed % 3 == 0;
  r.steps = static_cast<Time>(1000 + seed * 17);
  r.distinct_decisions = static_cast<int>(seed % 4);
  r.decisions[0] = static_cast<Value>(100 + seed);
  r.decisions[2] = static_cast<Value>(200 + seed);
  r.trace_hash = 0x9E3779B97F4A7C15ULL * (seed + 1);
  r.check_ok = seed % 5 != 0;
  r.check_detail = "check-" + std::to_string(seed);
  r.metrics["steps"] = static_cast<double>(seed) * 1.5;
  r.metrics["ratio"] = 0.25;
  return r;
}

void expectIdentical(const CellResult& want, const CellResult& got,
                     const std::string& what) {
  EXPECT_EQ(want.index, got.index) << what;
  EXPECT_EQ(want.verdict, got.verdict) << what;
  EXPECT_EQ(want.detail, got.detail) << what;
  EXPECT_EQ(want.error, got.error) << what;
  EXPECT_EQ(want.all_correct_done, got.all_correct_done) << what;
  EXPECT_EQ(want.steps, got.steps) << what;
  EXPECT_EQ(want.distinct_decisions, got.distinct_decisions) << what;
  EXPECT_EQ(want.decisions, got.decisions) << what;
  EXPECT_EQ(want.trace_hash, got.trace_hash) << what;
  EXPECT_EQ(want.check_ok, got.check_ok) << what;
  EXPECT_EQ(want.check_detail, got.check_detail) << what;
  EXPECT_EQ(want.metrics, got.metrics) << what;
}

TEST(PersistentStore, RoundTripsEveryField) {
  const std::string dir = freshDir("roundtrip");
  PersistentStore store(StoreOptions{dir, "v1"});
  ASSERT_TRUE(store.healthy());
  for (const std::uint64_t seed : {0, 1, 2, 3, 4, 5}) {
    store.save(1000 + seed, sampleResult(seed));
  }
  EXPECT_EQ(store.appends(), 6u);
  for (const std::uint64_t seed : {0, 1, 2, 3, 4, 5}) {
    const auto got = store.load(1000 + seed);
    ASSERT_TRUE(got.has_value()) << "seed " << seed;
    expectIdentical(sampleResult(seed), *got, "seed " + std::to_string(seed));
  }
  EXPECT_FALSE(store.load(999).has_value());
}

TEST(PersistentStore, WarmHitSurvivesHandleRestart) {
  const std::string dir = freshDir("restart");
  {
    PersistentStore store(StoreOptions{dir, "v1"});
    ASSERT_TRUE(store.healthy());
    store.save(42, sampleResult(9));
  }  // handle torn down: only the bytes on disk survive
  PersistentStore reopened(StoreOptions{dir, "v1"});
  ASSERT_TRUE(reopened.healthy());
  const auto got = reopened.load(42);
  ASSERT_TRUE(got.has_value());
  expectIdentical(sampleResult(9), *got, "after restart");
  EXPECT_EQ(reopened.records(), 1u);
  EXPECT_EQ(reopened.appends(), 0u);  // nothing re-written
}

TEST(PersistentStore, SaveDedupesKeys) {
  const std::string dir = freshDir("dedupe");
  PersistentStore store(StoreOptions{dir, "v1"});
  store.save(7, sampleResult(1));
  store.save(7, sampleResult(1));  // same handle: skipped
  EXPECT_EQ(store.appends(), 1u);
  PersistentStore reopened(StoreOptions{dir, "v1"});
  reopened.save(7, sampleResult(1));  // already scanned: skipped too
  EXPECT_EQ(reopened.appends(), 0u);
}

TEST(PersistentStore, VersionMismatchIsAColdMissNotAWrongHit) {
  const std::string dir = freshDir("version");
  {
    PersistentStore store(StoreOptions{dir, "schema-A"});
    store.save(42, sampleResult(3));
  }
  // A different stamp addresses a different segment file entirely: the
  // old results are invisible, the new segment starts cold and healthy.
  PersistentStore other(StoreOptions{dir, "schema-B"});
  ASSERT_TRUE(other.healthy());
  EXPECT_NE(other.path(), PersistentStore::segmentPath(dir, "schema-A"));
  EXPECT_FALSE(other.load(42).has_value());
  other.save(42, sampleResult(4));  // and is independently writable
  expectIdentical(sampleResult(4), *other.load(42), "schema-B value");
  // The original segment still serves the original bytes.
  PersistentStore original(StoreOptions{dir, "schema-A"});
  expectIdentical(sampleResult(3), *original.load(42), "schema-A value");
}

TEST(PersistentStore, CorruptHeaderDisablesTheHandle) {
  const std::string dir = freshDir("badheader");
  const std::string path = PersistentStore::segmentPath(dir, "v1");
  {
    PersistentStore store(StoreOptions{dir, "v1"});
    store.save(1, sampleResult(1));
  }
  {
    // Stomp the version digest inside the header (byte 16).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    f.write(garbage, sizeof garbage);
  }
  PersistentStore store(StoreOptions{dir, "v1"});
  EXPECT_FALSE(store.healthy());
  EXPECT_FALSE(store.load(1).has_value());    // miss, not garbage
  store.save(2, sampleResult(2));             // no-op, not a crash
  EXPECT_EQ(store.appends(), 0u);
}

TEST(PersistentStore, TruncatedTailDegradesToColdMiss) {
  const std::string dir = freshDir("truncated");
  const std::string path = PersistentStore::segmentPath(dir, "v1");
  {
    PersistentStore store(StoreOptions{dir, "v1"});
    store.save(1, sampleResult(1));
    store.save(2, sampleResult(2));
  }
  // Chop the file mid-way through the last record — the crashed-writer
  // shape. The first record must still hit; the torn one must miss.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 11);
  PersistentStore store(StoreOptions{dir, "v1"});
  ASSERT_TRUE(store.healthy());
  ASSERT_TRUE(store.load(1).has_value());
  expectIdentical(sampleResult(1), *store.load(1), "intact record");
  EXPECT_FALSE(store.load(2).has_value());
}

TEST(PersistentStore, CorruptedRecordDegradesToColdMiss) {
  const std::string dir = freshDir("corrupt");
  const std::string path = PersistentStore::segmentPath(dir, "v1");
  {
    PersistentStore store(StoreOptions{dir, "v1"});
    store.save(1, sampleResult(1));
    store.save(2, sampleResult(2));
  }
  {
    // Flip one payload byte inside the FIRST record (just past its
    // 24-byte file header + 16-byte record header).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(24 + 16 + 3);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5A);
    f.seekp(24 + 16 + 3);
    f.write(&b, 1);
  }
  PersistentStore store(StoreOptions{dir, "v1"});
  // The checksum catches the flip; everything at and past the damage is
  // untrusted, so BOTH records miss — cold, correct, no crash.
  EXPECT_FALSE(store.load(1).has_value());
  EXPECT_FALSE(store.load(2).has_value());
  store.save(3, sampleResult(3));  // handle still usable for new appends
  EXPECT_FALSE(store.load(3).has_value());  // but reads stay cold: fine
}

TEST(PersistentStore, CrashMidWriteFencesTheTornTail) {
  const std::string dir = freshDir("crashmidwrite");
  const std::string path = PersistentStore::segmentPath(dir, "v1");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: one clean append, then die mid-record. The store's own
    // save() only writes whole records, so the torn write is simulated
    // the way a real crash produces it — a raw O_APPEND write that
    // covers the record header and a few payload bytes of a SECOND
    // record, then _exit (no destructors, no flush, fd reaped by the
    // kernel exactly as in a SIGKILL).
    PersistentStore store(StoreOptions{dir, "v1"});
    store.save(11, sampleResult(11));
    if (!store.healthy()) _exit(1);
    const int raw = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (raw < 0) _exit(2);
    std::uint8_t torn[21];  // 16-byte header + 5 of a claimed 40 bytes
    const std::uint32_t magic = 0xCE11CA5Eu;
    const std::uint64_t key = 12;
    for (int i = 0; i < 4; ++i)
      torn[i] = static_cast<std::uint8_t>(magic >> (8 * i));
    for (int i = 0; i < 8; ++i)
      torn[4 + i] = static_cast<std::uint8_t>(key >> (8 * i));
    const std::uint32_t claimed_len = 40;
    for (int i = 0; i < 4; ++i)
      torn[12 + i] = static_cast<std::uint8_t>(claimed_len >> (8 * i));
    torn[16] = torn[17] = torn[18] = torn[19] = torn[20] = 0x5A;
    if (::write(raw, torn, sizeof torn) != sizeof torn) _exit(3);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child crashed for the wrong reason";
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // The survivor's fresh open fences the tail: the intact record is
  // served, the torn one is a cold miss (its header claims more bytes
  // than the file holds, i.e. a writer that died mid-write), and the
  // handle stays healthy.
  PersistentStore store(StoreOptions{dir, "v1"});
  ASSERT_TRUE(store.healthy());
  const auto got = store.load(11);
  ASSERT_TRUE(got.has_value());
  expectIdentical(sampleResult(11), *got, "record before the crash");
  EXPECT_FALSE(store.load(12).has_value());
  EXPECT_EQ(store.records(), 1u);

  // Appending past the torn tail is durable but fenced: the scan now
  // finds the claimed 40 payload bytes (spanning into the new record),
  // the checksum rejects them, and everything behind the damage stays a
  // cold miss — never a wrong hit, and the pre-crash record still hits.
  store.save(13, sampleResult(13));
  EXPECT_EQ(store.appends(), 1u);
  EXPECT_FALSE(store.load(13).has_value());
  EXPECT_FALSE(store.load(12).has_value());
  ASSERT_TRUE(store.load(11).has_value());
}

TEST(PersistentStore, ConcurrentWritersFromTwoProcesses) {
  const std::string dir = freshDir("twoproc");
  constexpr int kPerSide = 24;
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: write the odd keys through its own handle, racing the
    // parent's appends on the same segment.
    PersistentStore store(StoreOptions{dir, "v1"});
    for (int i = 0; i < kPerSide; ++i) {
      store.save(static_cast<std::uint64_t>(2 * i + 1),
                 sampleResult(static_cast<std::uint64_t>(2 * i + 1)));
    }
    _exit(store.healthy() ? 0 : 1);
  }
  PersistentStore store(StoreOptions{dir, "v1"});
  for (int i = 0; i < kPerSide; ++i) {
    store.save(static_cast<std::uint64_t>(2 * i),
               sampleResult(static_cast<std::uint64_t>(2 * i)));
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  // A fresh reader sees every record from both writers, each intact —
  // flock + O_APPEND means interleaved RECORDS, never interleaved bytes.
  PersistentStore reader(StoreOptions{dir, "v1"});
  ASSERT_TRUE(reader.healthy());
  for (std::uint64_t k = 0; k < 2 * kPerSide; ++k) {
    const auto got = reader.load(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    expectIdentical(sampleResult(k), *got, "key " + std::to_string(k));
  }
  EXPECT_EQ(reader.records(), static_cast<std::size_t>(2 * kPerSide));
}

TEST(PersistentStore, LiveHandleSeesAPeersAppends) {
  const std::string dir = freshDir("liveshare");
  PersistentStore a(StoreOptions{dir, "v1"});
  PersistentStore b(StoreOptions{dir, "v1"});  // same segment, two handles
  EXPECT_FALSE(b.load(5).has_value());
  a.save(5, sampleResult(5));
  const auto got = b.load(5);  // b's refresh scan picks up a's append
  ASSERT_TRUE(got.has_value());
  expectIdentical(sampleResult(5), *got, "cross-handle");
}

TEST(MakeMemo, HonorsCapacityAndCacheDir) {
  BatchOptions opts;
  opts.memo_capacity = 2;
  std::unique_ptr<ReportCache> memo = sim::makeMemo(opts);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->capacity(), 2u);
  EXPECT_EQ(memo->store(), nullptr);  // no cache_dir: memory only

  opts.memo_capacity = 0;
  opts.cache_dir = freshDir("makememo");
  opts.cache_version = "stamp";
  std::unique_ptr<ReportCache> backed = sim::makeMemo(opts);
  EXPECT_EQ(backed->capacity(), ReportCache::kDefaultCapacity);
  ASSERT_NE(backed->store(), nullptr);

  // The LRU never re-reads what it holds: a disk hit is counted once,
  // then served from memory.
  CellResult r = sampleResult(1);
  backed->insert(77, r);
  std::unique_ptr<ReportCache> warm = sim::makeMemo(opts);
  EXPECT_EQ(warm->diskHits(), 0u);
  ASSERT_TRUE(warm->lookup(77, 3).has_value());
  EXPECT_EQ(warm->diskHits(), 1u);
  ASSERT_TRUE(warm->lookup(77, 4).has_value());
  EXPECT_EQ(warm->diskHits(), 1u);
  EXPECT_EQ(warm->hits(), 2u);

  // And the rewritten index is the caller's, not the stored one.
  const auto got = warm->lookup(77, 9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->index, 9u);
  CellResult want = r;
  want.index = 9;
  expectIdentical(want, *got, "memo-backed lookup");
}

}  // namespace
}  // namespace wfd
