// Composition: detectors derived from other detectors and from recorded
// runs, and the full "timing assumptions -> Omega -> Upsilon -> set
// agreement" chain the paper's introduction motivates.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkEmulatedOmega;
using core::checkKSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

// ---- MappedFd: Omega_n through the complement lens IS an Upsilon ----

TEST(MappedFd, ComplementOfOmegaNIsALegalUpsilonHistory) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(4, 3, 50, seed);
    const auto lens = fd::makeComplemented(fd::makeOmegaK(fp, 3, 80, seed), 4);
    const auto rep = fd::checkUpsilonF(*lens, fp, 3, 300);
    EXPECT_TRUE(rep.ok) << rep.violation;
  }
}

TEST(MappedFd, Fig1RunsOnComplementedOmegaN) {
  // Set agreement driven by Omega_n seen through the Sect. 4 reduction —
  // the two halves of the paper meeting in one run.
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, 3, 200, seed * 3);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeComplemented(fd::makeOmegaK(fp, 3, 250, seed), n_plus_1);
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
        props);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

// ---- RecordedFd: a reduction's output replayed as a detector ----

TEST(RecordedFd, ReplaysExtractionOutputAsUpsilon) {
  const int n_plus_1 = 4;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  // Stage 1: Fig. 3 extracts Upsilon from Omega.
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeOmega(fp, 150, 3);
  cfg.seed = 5;
  cfg.max_steps = 40'000;
  const auto phi = core::phiOmegaK(n_plus_1);
  const auto stage1 = sim::runTask(
      cfg, [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); },
      std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  ASSERT_TRUE(core::checkEmulatedUpsilonF(stage1, n_plus_1 - 1).ok());

  // Stage 2: the recorded emulation is itself a legal Upsilon history...
  const auto recorded = fd::makeRecorded(stage1.trace(), n_plus_1,
                                         ProcSet::full(n_plus_1), "recorded");
  EXPECT_TRUE(fd::checkUpsilonF(*recorded, fp, n_plus_1 - 1,
                                recorded->stabilizationTime() + 200)
                  .ok);

  // ...and drives Fig. 1 to a correct decision.
  const auto props = test::distinctProposals(n_plus_1);
  RunConfig cfg2;
  cfg2.n_plus_1 = n_plus_1;
  cfg2.fp = fp;
  cfg2.fd = recorded;
  cfg2.seed = 6;
  const auto stage2 = sim::runTask(
      cfg2, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
      props);
  EXPECT_TRUE(checkKSetAgreement(stage2, n_plus_1 - 1, props).ok());
}

// ---- Omega implemented from eventual synchrony (no oracle at all) ----

RunResult runOmegaImpl(int n_plus_1, const FailurePattern& fp, Time gst,
                       std::uint64_t seed, Time horizon) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.seed = seed;
  sim::Run run(cfg,
               [](Env& e, Value) { return core::omegaFromEventualSynchrony(e); },
               std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  sim::EventuallySynchronousPolicy policy(gst);
  const Time taken = run.scheduler().run(policy, horizon);
  return run.finish(taken);
}

TEST(OmegaImpl, StabilizesOnCorrectLeaderAfterGst) {
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, 3, 2000, seed * 7);
    const auto rr = runOmegaImpl(n_plus_1, fp, /*gst=*/3000, seed, 120'000);
    const auto rep = checkEmulatedOmega(rr);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " correct "
                          << fp.correct().toString() << ": " << rep.violation;
    // The elected leader is in fact the smallest correct id.
    EXPECT_EQ(rep.stable_value, ProcSet::singleton(fp.correct().min()));
  }
}

TEST(OmegaImpl, SurvivesLateCrashOfTheLeader) {
  const int n_plus_1 = 4;
  // p1 leads, then crashes long after GST; the rest must re-elect.
  const auto fp = FailurePattern::withCrashes(n_plus_1, {{0, 40'000}});
  const auto rr = runOmegaImpl(n_plus_1, fp, /*gst=*/1000, 3, 200'000);
  const auto rep = checkEmulatedOmega(rr);
  ASSERT_TRUE(rep.ok()) << rep.violation;
  EXPECT_EQ(rep.stable_value, ProcSet::singleton(1));
}

TEST(OmegaImpl, FullChainTimingToSetAgreement) {
  // eventual synchrony -> (algorithm) Omega -> complement -> Upsilon
  // -> Fig. 1 set agreement. No oracle anywhere.
  const int n_plus_1 = 4;
  const auto fp = FailurePattern::withCrashes(n_plus_1, {{2, 500}});
  const auto stage1 = runOmegaImpl(n_plus_1, fp, 2000, 9, 100'000);
  ASSERT_TRUE(checkEmulatedOmega(stage1).ok());

  const auto omega = fd::makeRecorded(stage1.trace(), n_plus_1,
                                      ProcSet::singleton(0), "omega-impl");
  // Omega = Omega^1; its complement is a legal Upsilon^3 = Upsilon output
  // of size n.
  const auto upsilon = fd::makeComplemented(omega, n_plus_1);
  const auto props = test::distinctProposals(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = upsilon;
  cfg.seed = 10;
  const auto stage2 = sim::runTask(
      cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
      props);
  EXPECT_TRUE(checkKSetAgreement(stage2, n_plus_1 - 1, props).ok());
}

}  // namespace
}  // namespace wfd
