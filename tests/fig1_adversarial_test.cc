// Adversarial schedules for Fig. 1: force the run past the easy
// round-1-commit path and deep into the gladiator/citizen machinery, then
// re-check Theorem 2's properties there.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::upsilonSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::PolicyKind;
using sim::RunConfig;
using sim::RunResult;

RunResult runFig1(const RunConfig& cfg, const std::vector<Value>& props) {
  return sim::runTask(
      cfg, [](Env& e, Value v) { return upsilonSetAgreement(e, v); }, props);
}

int countNotes(const RunResult& rr, const std::string& label) {
  int c = 0;
  for (const auto& e : rr.trace().events()) {
    if (e.kind == sim::EventKind::kNote && e.label == label) ++c;
  }
  return c;
}

// Lockstep round-robin + distinct proposals: everyone sees all n+1 values
// in round 1, so the first n-converge cannot commit and the run must go
// through Upsilon. The gladiator and citizen branches must both fire.
TEST(Fig1Adversarial, LockstepForcesGladiatorsAndCitizens) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.policy = PolicyKind::kRoundRobin;
  cfg.fd = fd::makeUpsilon(fp, ProcSet{0, 1}, /*stab_time=*/0);
  cfg.seed = 1;
  const auto rr = runFig1(cfg, props);
  const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
  EXPECT_GT(countNotes(rr, "gladiator"), 0);
  EXPECT_GT(countNotes(rr, "citizen"), 0);
}

// Slow-flapping noise: misleading sets look stable, so processes enter
// gladiator sub-rounds on wrong information for a long prefix, and the
// Stable[r] mechanism must recover each time the set flips.
TEST(Fig1Adversarial, SlowNoiseStillSatisfiesTheorem2) {
  const int n_plus_1 = 5;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    fd::UpsilonFd::Params p;
    p.stable_set = fd::UpsilonFd::defaultStableSet(fp, n_plus_1 - 1);
    p.stab_time = 2500;
    p.noise_seed = seed;
    p.noise_hold = 200;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.policy = (seed % 2 == 0) ? PolicyKind::kRoundRobin
                                 : PolicyKind::kRandom;
    cfg.fd = fd::makeUpsilonWithParams(fp, n_plus_1 - 1, p);
    cfg.seed = seed;
    const auto rr = runFig1(cfg, props);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

// No correct citizen: U = {p1,p2,p3} with citizen p4 faulty and gladiator
// p3 faulty (U != correct holds via p3). The correct gladiators must
// eliminate a value through (|U|-1)-converge after p3 crashes.
TEST(Fig1Adversarial, EliminationThroughFaultyGladiator) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto fp =
        FailurePattern::withCrashes(n_plus_1, {{2, 350}, {3, 60}});
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.policy = PolicyKind::kRoundRobin;
    cfg.fd = fd::makeUpsilon(fp, ProcSet{0, 1, 2}, /*stab_time=*/100, seed);
    cfg.seed = seed;
    const auto rr = runFig1(cfg, props);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

// A decided process stops taking steps; the laggards must still learn the
// decision through D. Crash everyone but two at time 0 so the survivors
// commit fast, then release the detector late for the rest.
TEST(Fig1Adversarial, LaggardsLearnThroughD) {
  const int n_plus_1 = 5;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, /*stab_time=*/1'000'000'000, seed);  // never
    cfg.seed = seed;
    // Scripted prefix: p1 and p2 run alone for a long stretch; with only
    // 2 participants the first n-converge commits, they decide and halt.
    std::vector<Pid> prefix;
    for (int i = 0; i < 600; ++i) prefix.push_back(i % 2);
    // Then everyone else runs; they must pick the decision up from D even
    // though Upsilon never stabilizes.
    sim::Run run(cfg, [](Env& e, Value v) { return upsilonSetAgreement(e, v); },
                 props);
    sim::ScriptedPolicy policy(std::move(prefix),
                               std::make_unique<sim::RandomPolicy>());
    const Time taken = run.scheduler().run(policy, cfg.max_steps);
    const auto rr = run.finish(taken);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

// Identical proposals must decide that value regardless of anything else.
TEST(Fig1Adversarial, IdenticalProposalsDecideImmediately) {
  const int n_plus_1 = 6;
  const std::vector<Value> props(n_plus_1, 77);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.policy = PolicyKind::kRoundRobin;
  cfg.fd = fd::makeUpsilon(fp, /*stab_time=*/1'000'000'000, 3);
  const auto rr = runFig1(cfg, props);
  const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
  EXPECT_EQ(rep.distinct, 1);
  for (const auto& [p, v] : rr.decisions) EXPECT_EQ(v, 77);
}

}  // namespace
}  // namespace wfd
