// Certification battery for the replicated agreement service
// (sim/service): log-prefix agreement under chaos across every
// (protocol x detector) mode, bit-identical same-seed replay of a
// 10k-instance stream, the exhaustive crash-and-replace sweep, pinned
// golden service hashes, the negative-control catch guarantee, the
// verdict taxonomy, and bit-identity through BatchRunner jobs=N and the
// multi-process fabric.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "test_util.h"

namespace wfd {
namespace {

using sim::BatchCell;
using sim::BatchOptions;
using sim::BatchRunner;
using sim::CellResult;
using sim::RunVerdict;
using sim::SimAbort;
using sim::service::ChaosPlan;
using sim::service::DetectorSource;
using sim::service::Protocol;
using sim::service::ReplicaLog;
using sim::service::runCrashSweep;
using sim::service::runService;
using sim::service::runServiceCell;
using sim::service::ServiceBug;
using sim::service::ServiceConfig;
using sim::service::ServiceReport;
using sim::service::serviceVerdictName;
using sim::service::ServiceVerdict;
using sim::service::SweepReport;

ServiceConfig chaoticConfig(Protocol proto, DetectorSource det,
                            std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.protocol = proto;
  cfg.detector = det;
  cfg.instances = 120;
  cfg.seed = seed;
  cfg.chaos.period = 3;
  cfg.chaos.seed = seed ^ 0xC;
  cfg.chaos.stale_snapshot = true;
  return cfg;
}

// Every replica log must be a contiguous slice of SOME consistent view:
// for k = 1 exactly the canonical log (runService already certifies that
// internally; re-checked here against the report's own data); for k > 1
// within bounds of the canonical log's length.
void expectLogShape(const ServiceReport& rep, const ServiceConfig& cfg) {
  ASSERT_EQ(rep.stats.committed,
            static_cast<long long>(rep.canonical.size()));
  int retired = 0;
  for (const ReplicaLog& rl : rep.logs) {
    if (rl.retired) ++retired;
    ASSERT_LE(rl.start + static_cast<long long>(rl.entries.size()),
              static_cast<long long>(rep.canonical.size()));
    if (cfg.kBound() == 1) {
      for (std::size_t i = 0; i < rl.entries.size(); ++i) {
        EXPECT_EQ(rl.entries[i],
                  rep.canonical[static_cast<std::size_t>(rl.start) + i])
            << "replica r" << rl.rid << " diverges at " << i;
      }
    }
  }
  EXPECT_EQ(retired, rep.stats.replacements);
  EXPECT_EQ(static_cast<int>(rep.logs.size()),
            cfg.group + rep.stats.replacements);
}

TEST(ServiceTest, LogPrefixAgreementUnderChaosAllModes) {
  const struct {
    Protocol proto;
    DetectorSource det;
    const char* name;
  } kModes[] = {
      {Protocol::kOmegaConsensus, DetectorSource::kConstructed, "omega/con"},
      {Protocol::kFig1Upsilon, DetectorSource::kConstructed, "fig1/con"},
      {Protocol::kFig2UpsilonF, DetectorSource::kConstructed, "fig2/con"},
      {Protocol::kOmegaConsensus, DetectorSource::kRealizedNet, "omega/net"},
      {Protocol::kFig1Upsilon, DetectorSource::kRealizedNet, "fig1/net"},
      {Protocol::kFig2UpsilonF, DetectorSource::kRealizedNet, "fig2/net"},
  };
  for (const auto& m : kModes) {
    SCOPED_TRACE(m.name);
    const ServiceConfig cfg = chaoticConfig(m.proto, m.det, 21);
    const ServiceReport rep = runService(cfg);
    EXPECT_EQ(rep.verdict, ServiceVerdict::kOk) << rep.detail;
    EXPECT_EQ(rep.stats.committed, cfg.instances);
    expectLogShape(rep, cfg);
    // The chaos plan actually fired.
    EXPECT_FALSE(rep.stats.injector_fires.empty());
  }
}

TEST(ServiceTest, CrashChaosReplacesWithinBudget) {
  // Constructed-detector modes run crash segments (pre-seeded crash for
  // the Upsilon stacks, protected leader for Omega): replacements must
  // happen and stay within the per-segment f budget.
  for (const Protocol proto :
       {Protocol::kOmegaConsensus, Protocol::kFig1Upsilon,
        Protocol::kFig2UpsilonF}) {
    SCOPED_TRACE(static_cast<int>(proto));
    const ServiceConfig cfg =
        chaoticConfig(proto, DetectorSource::kConstructed, 21);
    const ServiceReport rep = runService(cfg);
    EXPECT_EQ(rep.verdict, ServiceVerdict::kOk) << rep.detail;
    EXPECT_GE(rep.stats.replacements, 1);
    expectLogShape(rep, cfg);
  }
}

TEST(ServiceTest, BitIdenticalReplay10kInstances) {
  ServiceConfig cfg;
  cfg.instances = 10'000;
  cfg.seed = 9;
  cfg.chaos.period = 5;
  cfg.chaos.seed = 3;
  const ServiceReport a = runService(cfg);
  const ServiceReport b = runService(cfg);
  ASSERT_EQ(a.verdict, ServiceVerdict::kOk) << a.detail;
  EXPECT_EQ(a.stats.committed, 10'000);
  EXPECT_EQ(a.service_hash, b.service_hash);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  // Exactly-once commit: a command never commits twice.
  const std::set<Value> uniq(a.canonical.begin(), a.canonical.end());
  EXPECT_EQ(uniq.size(), a.canonical.size());
  // Latency percentiles are populated and ordered.
  EXPECT_GT(a.stats.lat_p50, 0);
  EXPECT_GE(a.stats.lat_p99, a.stats.lat_p50);
  expectLogShape(a, cfg);
}

TEST(ServiceTest, InboxBackpressureAccounting) {
  ServiceConfig cfg;
  cfg.instances = 200;
  cfg.seed = 7;
  const ServiceReport rep = runService(cfg);
  ASSERT_EQ(rep.verdict, ServiceVerdict::kOk) << rep.detail;
  EXPECT_EQ(rep.stats.submitted,
            rep.stats.accepted + rep.stats.rejected);
  // Only one of `group` proposals commits per consensus instance, so the
  // bounded inbox fills and rejects offers from the second refill on.
  EXPECT_GT(rep.stats.rejected, 0);
}

// ---- Exhaustive crash-and-replace sweep ----------------------------------

TEST(ServiceTest, CrashSweepAtEveryInstanceIndex) {
  ServiceConfig cfg;
  cfg.instances = 48;
  cfg.segment_len = 8;
  cfg.seed = 3;
  const SweepReport rep = runCrashSweep(cfg);
  ASSERT_EQ(rep.variants.size(), 48u);
  EXPECT_TRUE(rep.allOk());
  // Prefix sharing did the work: one restore per variant instead of a
  // from-scratch re-execution of the shared segment prefix.
  EXPECT_EQ(rep.restores, 48);
  std::set<std::uint64_t> hashes;
  for (const auto& v : rep.variants) {
    EXPECT_EQ(v.verdict, ServiceVerdict::kOk)
        << "crash at " << v.crash_index << ": " << v.detail;
    // The victim was replaced and the stream still committed everything.
    EXPECT_EQ(v.committed, cfg.instances);
    EXPECT_GE(v.replacements, 1);
    EXPECT_GE(v.victim_slot, 1);
    EXPECT_LT(v.victim_slot, cfg.group);
    hashes.insert(v.service_hash);
  }
  // Variants are genuinely different executions from the base stream.
  for (const auto& v : rep.variants) {
    EXPECT_NE(v.service_hash, rep.base_hash)
        << "variant at " << v.crash_index << " identical to base";
  }
  (void)hashes;
}

TEST(ServiceTest, CrashSweepRejectsUnsupportedConfigs) {
  ServiceConfig cfg;
  cfg.instances = 8;
  cfg.protocol = Protocol::kFig1Upsilon;
  EXPECT_THROW((void)runCrashSweep(cfg), SimAbort);
  ServiceConfig cfg2;
  cfg2.instances = 8;
  cfg2.chaos.period = 2;
  EXPECT_THROW((void)runCrashSweep(cfg2), SimAbort);
}

// ---- Pinned golden workloads ---------------------------------------------
//
// Two fixed configurations whose service_hash is pinned: any change to
// the commit rule, the inner protocol stacks, the chaos cadence or the
// hash folding shows up here as a diff, not as silence. After an
// INTENTIONAL change, the failure message prints the moved hash — update
// the constants from it.
TEST(ServiceTest, GoldenHashPinnedWorkloads) {
  ServiceConfig w1;
  w1.instances = 500;
  w1.seed = 20260808;
  w1.chaos.period = 4;
  w1.chaos.seed = 41;
  const ServiceReport r1 = runService(w1);
  ASSERT_EQ(r1.verdict, ServiceVerdict::kOk) << r1.detail;
  EXPECT_EQ(r1.service_hash, 0x6a1c274e7bb50be8ULL)
      << "w1 moved: 0x" << std::hex << r1.service_hash;

  ServiceConfig w2;
  w2.protocol = Protocol::kFig2UpsilonF;
  w2.detector = DetectorSource::kRealizedNet;
  w2.instances = 300;
  w2.seed = 77;
  w2.chaos.period = 5;
  w2.chaos.seed = 13;
  const ServiceReport r2 = runService(w2);
  ASSERT_EQ(r2.verdict, ServiceVerdict::kOk) << r2.detail;
  EXPECT_EQ(r2.service_hash, 0xdd2fcbb0df6fbe64ULL)
      << "w2 moved: 0x" << std::hex << r2.service_hash;
}

// ---- Negative controls ---------------------------------------------------

TEST(ServiceTest, SeededLogDivergenceAlwaysCaught) {
  int caught = 0;
  const int kTrials = 30;
  for (int i = 0; i < kTrials; ++i) {
    ServiceConfig cfg;
    cfg.instances = 60;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    cfg.bug = ServiceBug::kLogDivergence;
    cfg.bug_seed = static_cast<std::uint64_t>(7 * i + 3);
    const ServiceReport rep = runService(cfg);
    if (rep.verdict == ServiceVerdict::kLogDivergence) {
      ++caught;
    } else {
      ADD_FAILURE() << "seed " << cfg.seed << " bug_seed " << cfg.bug_seed
                    << ": verdict " << serviceVerdictName(rep.verdict)
                    << " (" << rep.detail << ")";
    }
  }
  EXPECT_EQ(caught, kTrials);
}

TEST(ServiceTest, VerdictTaxonomy) {
  EXPECT_STREQ(serviceVerdictName(ServiceVerdict::kOk), "ok");
  EXPECT_STREQ(serviceVerdictName(ServiceVerdict::kLogDivergence),
               "log_divergence");
  EXPECT_STREQ(serviceVerdictName(ServiceVerdict::kInstanceViolation),
               "instance_violation");
  EXPECT_STREQ(serviceVerdictName(ServiceVerdict::kStalled), "stalled");
  EXPECT_STREQ(serviceVerdictName(ServiceVerdict::kReplacementOverrun),
               "replacement_overrun");

  // kStalled: a step budget too small for even one instance exhausts
  // max_retries without moving the commit point.
  ServiceConfig starved;
  starved.instances = 4;
  starved.instance_step_budget = 1;
  starved.segment_budget_slack = 4;
  starved.max_retries = 2;
  const ServiceReport rep = runService(starved);
  EXPECT_EQ(rep.verdict, ServiceVerdict::kStalled);
  EXPECT_EQ(rep.stats.committed, 0);
  EXPECT_EQ(rep.stats.retries, 2);
}

TEST(ServiceTest, MisconfigurationThrows) {
  ServiceConfig cfg;
  cfg.group = 1;
  EXPECT_THROW((void)runService(cfg), SimAbort);
  ServiceConfig cfg2;
  cfg2.f = 0;
  EXPECT_THROW((void)runService(cfg2), SimAbort);
  ServiceConfig cfg3;
  cfg3.instances = 0;
  EXPECT_THROW((void)runService(cfg3), SimAbort);
}

// ---- Batch / fabric integration ------------------------------------------

std::vector<BatchCell> campaignCells() {
  std::vector<BatchCell> cells;
  int i = 0;
  for (const Protocol proto :
       {Protocol::kOmegaConsensus, Protocol::kFig1Upsilon,
        Protocol::kFig2UpsilonF}) {
    for (const std::uint64_t seed : {31u, 32u}) {
      BatchCell cell;
      ServiceConfig cfg = chaoticConfig(
          proto,
          (i % 2 == 0) ? DetectorSource::kConstructed
                       : DetectorSource::kRealizedNet,
          seed);
      cfg.instances = 48;
      cell.service = cfg;
      cells.push_back(std::move(cell));
      ++i;
    }
  }
  return cells;
}

TEST(ServiceTest, BatchJobsBitIdenticalToSerial) {
  const std::vector<BatchCell> cells = campaignCells();
  const BatchRunner serial(BatchOptions{.jobs = 1});
  const BatchRunner wide(BatchOptions{.jobs = 4});
  const std::vector<CellResult> a = serial.run(cells);
  const std::vector<CellResult> b = wide.run(cells);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(a[i].error) << a[i].detail;
    EXPECT_EQ(a[i].verdict, RunVerdict::kOk) << a[i].check_detail;
    EXPECT_EQ(a[i].verdict, b[i].verdict);
    EXPECT_EQ(a[i].trace_hash, b[i].trace_hash);
    EXPECT_EQ(a[i].steps, b[i].steps);
    EXPECT_EQ(a[i].metrics.at("instances"), 48);
  }
}

TEST(ServiceTest, FabricProcsBitIdenticalToSerial) {
  const std::vector<BatchCell> cells = campaignCells();
  const BatchRunner serial(BatchOptions{.jobs = 1});
  const std::vector<CellResult> a = serial.run(cells);
  sim::fabric::FabricOptions fo;
  fo.procs = 2;
  fo.batch.jobs = 2;
  const std::vector<CellResult> b = sim::fabric::runFabric(fo, cells);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].verdict, b[i].verdict);
    EXPECT_EQ(a[i].trace_hash, b[i].trace_hash);
    EXPECT_EQ(a[i].check_detail, b[i].check_detail);
  }
}

TEST(ServiceTest, CellVerdictMapping) {
  // Seeded log divergence -> kSafetyViolation at the cell level.
  ServiceConfig bug;
  bug.instances = 60;
  bug.seed = 101;
  bug.bug = ServiceBug::kLogDivergence;
  bug.bug_seed = 10;
  const CellResult bad = runServiceCell(bug, 0);
  EXPECT_EQ(bad.verdict, RunVerdict::kSafetyViolation);
  EXPECT_FALSE(bad.check_ok);
  EXPECT_NE(bad.check_detail.find("log_divergence"), std::string::npos);

  // A stalled stream -> kLivelock.
  ServiceConfig starved;
  starved.instances = 4;
  starved.instance_step_budget = 1;
  starved.segment_budget_slack = 4;
  const CellResult stuck = runServiceCell(starved, 1);
  EXPECT_EQ(stuck.verdict, RunVerdict::kLivelock);

  // A healthy stream -> kOk with the service metrics filled in.
  ServiceConfig good;
  good.instances = 60;
  good.seed = 5;
  const CellResult ok = runServiceCell(good, 2);
  EXPECT_EQ(ok.verdict, RunVerdict::kOk);
  EXPECT_TRUE(ok.check_ok);
  EXPECT_EQ(ok.metrics.at("instances"), 60);
  EXPECT_GT(ok.metrics.at("lat_p50"), 0);
}

TEST(ServiceTest, MemoKeyPinsServiceConfig) {
  BatchCell cell;
  ServiceConfig cfg;
  cfg.instances = 32;
  cell.service = cfg;
  // No family: never cached.
  EXPECT_FALSE(sim::cellKey(cell).has_value());
  cell.memo_family = "svc";
  if (sim::resolvedAuditMode(std::nullopt).has_value()) {
    // The WFD_AUDIT latch audits every unset-audit run, and audited
    // cells are uncacheable by contract — service cells included.
    EXPECT_FALSE(sim::cellKey(cell).has_value());
    return;
  }
  const auto k1 = sim::cellKey(cell);
  ASSERT_TRUE(k1.has_value());
  // Any config change moves the key.
  cell.service->seed ^= 1;
  const auto k2 = sim::cellKey(cell);
  ASSERT_TRUE(k2.has_value());
  EXPECT_NE(*k1, *k2);
  cell.service->seed ^= 1;
  cell.service->chaos.period = 7;
  const auto k3 = sim::cellKey(cell);
  EXPECT_NE(*k1, *k3);
}

}  // namespace
}  // namespace wfd
