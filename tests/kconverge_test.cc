// Property tests for the k-converge routine (paper Sect. 5.1, [21]):
// C-Termination, C-Validity, C-Agreement, Convergence — swept across
// system sizes, k, snapshot flavors, seeds and crash patterns.
#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace wfd {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;
using sim::SnapshotFlavor;
using sim::Unit;

// Each process performs one kConverge and reports (value, committed) by
// deciding value and noting commitment.
Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"t.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

struct Outcome {
  std::set<Value> picked;
  bool any_committed = false;
  bool all_committed = true;
  RunResult run;
};

Outcome runOnce(int n_plus_1, int k, const std::vector<Value>& props,
                SnapshotFlavor flavor, std::uint64_t seed,
                std::optional<FailurePattern> fp = std::nullopt) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.flavor = flavor;
  cfg.seed = seed;
  if (fp) cfg.fp = fp;
  Outcome out;
  out.run = sim::runTask(
      cfg, [k](Env& e, Value v) { return oneShot(e, k, v); }, props);
  for (const auto& e : out.run.trace().events()) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label == "commit") out.any_committed = true;
    if (e.label == "adopt") out.all_committed = false;
  }
  for (const auto& [p, v] : out.run.decisions) out.picked.insert(v);
  return out;
}

struct Params {
  int n_plus_1;
  int k;
  SnapshotFlavor flavor;
};

class KConvergeSweep : public ::testing::TestWithParam<Params> {};

TEST_P(KConvergeSweep, PropertiesHoldAcrossSeeds) {
  const auto [n_plus_1, k, flavor] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  const std::set<Value> allowed(props.begin(), props.end());
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Outcome out = runOnce(n_plus_1, k, props, flavor, seed);
    // C-Termination.
    ASSERT_TRUE(out.run.all_correct_done) << "seed " << seed;
    ASSERT_EQ(out.run.decisions.size(), static_cast<std::size_t>(n_plus_1));
    // C-Validity.
    for (Value v : out.picked) EXPECT_TRUE(allowed.contains(v)) << v;
    // C-Agreement: a commit caps the picked set at k.
    if (out.any_committed) {
      EXPECT_LE(static_cast<int>(out.picked.size()), k) << "seed " << seed;
    }
  }
}

TEST_P(KConvergeSweep, ConvergenceWithFewInputs) {
  const auto [n_plus_1, k, flavor] = GetParam();
  if (k < 1) GTEST_SKIP();
  // At most k distinct inputs -> every picker commits.
  const auto props = test::proposalsWithDistinct(n_plus_1, k);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Outcome out = runOnce(n_plus_1, k, props, flavor, seed);
    ASSERT_TRUE(out.run.all_correct_done);
    EXPECT_TRUE(out.all_committed) << "seed " << seed;
    EXPECT_LE(static_cast<int>(out.picked.size()), k);
  }
}

TEST_P(KConvergeSweep, PropertiesHoldUnderCrashes) {
  const auto [n_plus_1, k, flavor] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  const std::set<Value> allowed(props.begin(), props.end());
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto fp =
        FailurePattern::random(n_plus_1, n_plus_1 - 1, 60, seed * 7 + 1);
    const Outcome out = runOnce(n_plus_1, k, props, flavor, seed, fp);
    // Wait-freedom: correct processes pick no matter who crashes.
    ASSERT_TRUE(out.run.all_correct_done) << "seed " << seed;
    for (Value v : out.picked) EXPECT_TRUE(allowed.contains(v));
    if (out.any_committed) {
      EXPECT_LE(static_cast<int>(out.picked.size()), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KConvergeSweep,
    ::testing::Values(
        Params{2, 1, SnapshotFlavor::kNative},
        Params{3, 1, SnapshotFlavor::kNative},
        Params{3, 2, SnapshotFlavor::kNative},
        Params{4, 2, SnapshotFlavor::kNative},
        Params{4, 3, SnapshotFlavor::kNative},
        Params{5, 1, SnapshotFlavor::kNative},
        Params{5, 4, SnapshotFlavor::kNative},
        Params{6, 3, SnapshotFlavor::kNative},
        Params{3, 2, SnapshotFlavor::kAfek},
        Params{4, 2, SnapshotFlavor::kAfek},
        Params{4, 3, SnapshotFlavor::kAfek},
        Params{5, 3, SnapshotFlavor::kAfek}),
    [](const auto& info) {
      const Params& p = info.param;
      return "n" + std::to_string(p.n_plus_1) + "_k" + std::to_string(p.k) +
             (p.flavor == SnapshotFlavor::kAfek ? "_afek" : "_native");
    });

TEST(KConverge, ZeroConvergeNeverCommits) {
  // By definition 0-converge(v) returns (v, false).
  const auto props = test::distinctProposals(3);
  const Outcome out =
      runOnce(3, 0, props, SnapshotFlavor::kNative, 1);
  ASSERT_TRUE(out.run.all_correct_done);
  EXPECT_FALSE(out.any_committed);
  // Everyone keeps its own value.
  EXPECT_EQ(out.picked.size(), 3u);
}

TEST(KConverge, FullWidthAlwaysCommits) {
  // k = n+1 distinct inputs <= k: everyone commits.
  const auto props = test::distinctProposals(4);
  const Outcome out = runOnce(4, 4, props, SnapshotFlavor::kNative, 3);
  ASSERT_TRUE(out.run.all_correct_done);
  EXPECT_TRUE(out.all_committed);
}

TEST(KConverge, SoloParticipantCommitsWithKOne) {
  // A solo run (everyone else crashed at time 0) has one input value.
  auto fp = FailurePattern::withCrashes(4, {{0, 0}, {1, 0}, {2, 0}});
  const Outcome out = runOnce(4, 1, test::distinctProposals(4),
                              SnapshotFlavor::kNative, 5, fp);
  ASSERT_TRUE(out.run.all_correct_done);
  EXPECT_TRUE(out.any_committed);
  EXPECT_EQ(out.picked, std::set<Value>{103});
}

}  // namespace
}  // namespace wfd
