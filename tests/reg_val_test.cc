// RegVal: the universal register value type (deep equality, tuple boxing,
// rendering). Registers must hold every shape the algorithms store.
#include <gtest/gtest.h>

#include "common/reg_val.h"

namespace wfd {
namespace {

TEST(RegVal, BottomByDefault) {
  RegVal v;
  EXPECT_TRUE(v.isBottom());
  EXPECT_FALSE(v.isInt());
  EXPECT_EQ(v.toString(), "⊥");
}

TEST(RegVal, IntRoundTrip) {
  RegVal v{Value{42}};
  ASSERT_TRUE(v.isInt());
  EXPECT_EQ(v.asInt(), 42);
  EXPECT_EQ(v.toString(), "42");
}

TEST(RegVal, BoolIsNotInt) {
  RegVal v{true};
  EXPECT_TRUE(v.isBool());
  EXPECT_FALSE(v.isInt());
  EXPECT_TRUE(v.asBool());
}

TEST(RegVal, ProcSetRoundTrip) {
  RegVal v{ProcSet{0, 2}};
  ASSERT_TRUE(v.isSet());
  EXPECT_EQ(v.asSet(), (ProcSet{0, 2}));
}

TEST(RegVal, TupleDeepEquality) {
  auto mk = [] {
    std::vector<RegVal> inner;
    inner.emplace_back(Value{1});
    inner.emplace_back(ProcSet{1});
    std::vector<RegVal> outer;
    outer.emplace_back(true);
    outer.push_back(RegVal::tuple(std::move(inner)));
    return RegVal::tuple(std::move(outer));
  };
  EXPECT_EQ(mk(), mk());
}

TEST(RegVal, TupleInequalityByElement) {
  std::vector<RegVal> a;
  a.emplace_back(Value{1});
  std::vector<RegVal> b;
  b.emplace_back(Value{2});
  EXPECT_NE(RegVal::tuple(std::move(a)), RegVal::tuple(std::move(b)));
}

TEST(RegVal, DifferentKindsNeverEqual) {
  EXPECT_NE(RegVal{Value{1}}, RegVal{true});
  EXPECT_NE(RegVal{}, RegVal{Value{0}});
  EXPECT_NE(RegVal{ProcSet{}}, RegVal{});
}

TEST(RegVal, BottomsAreEqual) { EXPECT_EQ(RegVal{}, RegVal{}); }

TEST(RegVal, TupleRendering) {
  std::vector<RegVal> t;
  t.emplace_back(Value{3});
  t.emplace_back(ProcSet{0});
  EXPECT_EQ(RegVal::tuple(std::move(t)).toString(), "(3, {p1})");
}

TEST(RegVal, CopiesAreIndependentValues) {
  std::vector<RegVal> t;
  t.emplace_back(Value{5});
  const RegVal a = RegVal::tuple(std::move(t));
  const RegVal b = a;  // shares the immutable payload
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.asTuple()[0].asInt(), 5);
}

}  // namespace
}  // namespace wfd
