// Fabric (sim/fabric/fabric.h): the multi-process determinism contract.
//
//   * procs=2 x jobs=2 is bit-identical — every CellResult field, in
//     submission order — to the serial jobs=1 run, with and without
//     block stealing, for plain, watched and chaos cells alike;
//   * procs=1 is a pure in-process passthrough (no fork);
//   * per-process stats aggregate exactly: executed sums to the cell
//     count, steps_run sums to the serial total, stepUtilization is
//     computable on any host;
//   * a worker killed mid-block yields structured errors for THAT block
//     only; every other cell still matches serial truth;
//   * the persistent store carries a whole fabric campaign warm across
//     runs: second run all hits, results identical (skipped under the
//     WFD_AUDIT latch, which correctly makes every cell uncacheable);
//   * the wire codec round-trips CellResult/BlockReport and rejects
//     malformed bytes instead of fabricating results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "sim/fabric/fabric.h"
#include "sim/fabric/wire.h"
#include "sim/report_cache.h"
#include "test_util.h"

namespace wfd {
namespace {

using core::upsilonSetAgreement;
using sim::BatchCell;
using sim::BatchOptions;
using sim::BatchRunner;
using sim::BatchStats;
using sim::CellResult;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::WatchdogConfig;
using sim::fabric::BlockReport;
using sim::fabric::ByteReader;
using sim::fabric::ByteWriter;
using sim::fabric::FabricOptions;
using sim::fabric::runFabric;

sim::AlgoFn fig1Algo() {
  return [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
}

// A small mixed campaign: plain Fig. 1 cells, a watched cell, and a
// chaos cell, across seeds — every execution path the fabric shards.
BatchCell mixedCell(std::size_t i) {
  const auto seed = static_cast<std::uint64_t>(3 + i);
  BatchCell cell;
  cell.memo_family = "fab-mixed";
  if (i % 8 == 6) {
    cell.cfg.n_plus_1 = 4;
    cell.cfg.fp = FailurePattern::withCrashes(4, {{3, 50}});
    cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 300, seed);
    cell.cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 2;
    chaos.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                             /*horizon=*/12, /*count=*/2, seed * 7});
    cell.chaos = chaos;
    cell.watchdog = WatchdogConfig{3'000'000, 0, 3};
    cell.algo = fig1Algo();
    cell.proposals = test::distinctProposals(4);
    return cell;
  }
  if (i % 8 == 7) {
    cell.cfg.n_plus_1 = 4;
    cell.cfg.fp = FailurePattern::withCrashes(4, {{1, 120}});
    cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 150, seed);
    cell.cfg.seed = seed;
    cell.algo = fig1Algo();
    cell.proposals = test::distinctProposals(4);
    cell.watchdog = WatchdogConfig{/*step_budget=*/200'000, 0, 0};
    cell.post = [](const sim::RunReport& rep, CellResult& out) {
      out.metrics["steps"] = static_cast<double>(rep.steps);
    };
    return cell;
  }
  cell.cfg.n_plus_1 = 4;
  cell.cfg.fp = FailurePattern::withCrashes(4, {{1, 120}});
  cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 150, seed);
  cell.cfg.seed = seed;
  cell.algo = fig1Algo();
  cell.proposals = test::distinctProposals(4);
  return cell;
}

constexpr std::size_t kCells = 24;

void expectIdentical(const CellResult& want, const CellResult& got,
                     const std::string& what) {
  EXPECT_EQ(want.index, got.index) << what;
  EXPECT_EQ(want.verdict, got.verdict) << what;
  EXPECT_EQ(want.detail, got.detail) << what;
  EXPECT_EQ(want.error, got.error) << what;
  EXPECT_EQ(want.all_correct_done, got.all_correct_done) << what;
  EXPECT_EQ(want.steps, got.steps) << what;
  EXPECT_EQ(want.distinct_decisions, got.distinct_decisions) << what;
  EXPECT_EQ(want.decisions, got.decisions) << what;
  EXPECT_EQ(want.trace_hash, got.trace_hash) << what;
  EXPECT_EQ(want.check_ok, got.check_ok) << what;
  EXPECT_EQ(want.check_detail, got.check_detail) << what;
  EXPECT_EQ(want.metrics, got.metrics) << what;
}

BatchOptions serialOptions() {
  BatchOptions opts;
  opts.jobs = 1;
  return opts;
}

std::vector<CellResult> serialTruth() {
  return BatchRunner(serialOptions()).run(kCells, mixedCell);
}

void expectMatchesSerial(const std::vector<CellResult>& got,
                         const std::string& what) {
  const auto truth = serialTruth();
  ASSERT_EQ(got.size(), truth.size()) << what;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    expectIdentical(truth[i], got[i], what + " cell " + std::to_string(i));
  }
}

TEST(Fabric, TwoProcsBitIdenticalToSerial) {
  FabricOptions opts;
  opts.procs = 2;
  opts.batch.jobs = 2;
  BatchStats stats;
  const auto got = runFabric(opts, kCells, mixedCell, &stats);
  expectMatchesSerial(got, "procs=2 steal");

  EXPECT_EQ(stats.procs, 2);
  ASSERT_EQ(stats.executed.size(), 2u);
  ASSERT_EQ(stats.steps_run.size(), 2u);
  EXPECT_EQ(stats.cells, kCells);
  EXPECT_EQ(stats.executed[0] + stats.executed[1], kCells);
  EXPECT_GE(stats.blocks, 2u);

  // Per-process step counts sum exactly to the serial total: steps are a
  // deterministic function of the cells, wherever they run.
  BatchStats serial_stats;
  (void)BatchRunner(serialOptions()).run(kCells, mixedCell, &serial_stats);
  const long long serial_steps = std::accumulate(
      serial_stats.steps_run.begin(), serial_stats.steps_run.end(), 0LL);
  EXPECT_EQ(stats.steps_run[0] + stats.steps_run[1], serial_steps);
  EXPECT_GT(stats.stepUtilization(), 0.0);
  EXPECT_LE(stats.stepUtilization(), 1.0);
}

TEST(Fabric, StaticShardingAlsoBitIdentical) {
  FabricOptions opts;
  opts.procs = 2;
  opts.steal = false;
  opts.batch.jobs = 1;
  BatchStats stats;
  const auto got = runFabric(opts, kCells, mixedCell, &stats);
  expectMatchesSerial(got, "procs=2 static");
  EXPECT_EQ(stats.proc_steal_ops, 0u);
  EXPECT_EQ(stats.proc_stolen_cells, 0u);
}

TEST(Fabric, SingleBlockGranularityStillCoversEveryCell) {
  FabricOptions opts;
  opts.procs = 3;
  opts.batch.jobs = 1;
  opts.block = 1;  // maximal reassignment pressure: one cell per block
  BatchStats stats;
  const auto got = runFabric(opts, kCells, mixedCell, &stats);
  expectMatchesSerial(got, "procs=3 block=1");
  EXPECT_EQ(stats.blocks, kCells);
}

TEST(Fabric, ProcsOneIsInProcessPassthrough) {
  FabricOptions opts;
  opts.procs = 1;
  opts.batch.jobs = 2;
  BatchStats stats;
  const auto got = runFabric(opts, kCells, mixedCell, &stats);
  expectMatchesSerial(got, "procs=1");
  EXPECT_EQ(stats.procs, 1);
}

TEST(Fabric, VectorOverloadMatchesGeneratorForm) {
  std::vector<BatchCell> cells;
  cells.reserve(kCells);
  for (std::size_t i = 0; i < kCells; ++i) cells.push_back(mixedCell(i));
  FabricOptions opts;
  opts.procs = 2;
  opts.batch.jobs = 1;
  const auto got = runFabric(opts, cells);
  expectMatchesSerial(got, "vector overload");
}

TEST(Fabric, EmptyBatch) {
  FabricOptions opts;
  opts.procs = 2;
  BatchStats stats;
  const auto got = runFabric(opts, 0, mixedCell, &stats);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(stats.procs, 1);  // no cells: nothing to fork for
}

TEST(Fabric, WorkerDeathErrorMarksOnlyItsBlock) {
  constexpr std::size_t kKiller = 10;
  const pid_t parent = ::getpid();
  // In whichever CHILD draws cell kKiller, the generator kills the
  // process outright — the crash-mid-block shape. block=1 pins the
  // damage to exactly that cell.
  const auto make = [parent](std::size_t i) {
    if (i == kKiller && ::getpid() != parent) ::_exit(17);
    return mixedCell(i);
  };
  FabricOptions opts;
  opts.procs = 2;
  opts.batch.jobs = 1;
  opts.block = 1;
  const auto got = runFabric(opts, kCells, make);
  const auto truth = serialTruth();
  ASSERT_EQ(got.size(), kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    if (i == kKiller) {
      EXPECT_TRUE(got[i].error);
      EXPECT_EQ(got[i].detail, "fabric worker died mid-block");
      EXPECT_EQ(got[i].index, i);
    } else {
      expectIdentical(truth[i], got[i], "survivor cell " + std::to_string(i));
    }
  }
}

TEST(Fabric, PersistentCacheCarriesCampaignWarmAcrossRuns) {
  std::size_t cacheable = 0;
  for (std::size_t i = 0; i < kCells; ++i) {
    cacheable += sim::cellKey(mixedCell(i)).has_value() ? 1 : 0;
  }
  const std::string dir = ::testing::TempDir() + "wfd_fabric_cache";
  std::filesystem::remove_all(dir);
  FabricOptions opts;
  opts.procs = 2;
  opts.batch.jobs = 1;
  opts.batch.cache_dir = dir;
  opts.batch.cache_version = "fabric-test";

  BatchStats cold;
  const auto first = runFabric(opts, kCells, mixedCell, &cold);
  expectMatchesSerial(first, "cold fabric");
  EXPECT_EQ(cold.memo_hits, 0u);
  EXPECT_EQ(cold.memo_misses, cacheable);

  // Run 2 is a fresh fabric (fresh processes, fresh memos): every
  // cacheable cell must come back from the shared store, byte-identical.
  BatchStats warm;
  const auto second = runFabric(opts, kCells, mixedCell, &warm);
  expectMatchesSerial(second, "warm fabric");
  EXPECT_EQ(warm.memo_hits, cacheable);
  EXPECT_EQ(warm.disk_hits, cacheable);
}

TEST(Wire, CellResultRoundTrip) {
  CellResult r;
  r.index = 12;
  r.verdict = sim::RunVerdict::kBudgetExhausted;
  r.detail = "budget";
  r.error = false;
  r.all_correct_done = true;
  r.steps = 987654321;
  r.distinct_decisions = 2;
  r.decisions[1] = 100;
  r.decisions[3] = -7;
  r.trace_hash = 0xDEADBEEFCAFEF00DULL;
  r.check_ok = false;
  r.check_detail = "checker says no";
  r.metrics["a"] = 1.25;
  r.metrics["b"] = -3.5;

  ByteWriter w;
  encodeCellResult(w, r);
  ByteReader rd(w.bytes().data(), w.bytes().size());
  CellResult got;
  ASSERT_TRUE(decodeCellResult(rd, got));
  EXPECT_TRUE(rd.atEnd());
  expectIdentical(r, got, "wire round-trip");
}

TEST(Wire, BlockReportRoundTrip) {
  BlockReport rep;
  rep.begin = 8;
  rep.end = 10;
  rep.steps = 4242;
  rep.busy_s = 0.125;
  rep.steal_ops = 3;
  rep.stolen_cells = 9;
  rep.memo_hits = 1;
  rep.memo_misses = 1;
  rep.disk_hits = 1;
  rep.disk_misses = 0;
  for (std::size_t i = 8; i < 10; ++i) {
    CellResult r;
    r.index = i;
    r.trace_hash = 31 * i;
    rep.results.push_back(r);
  }
  ByteWriter w;
  encodeBlockReport(w, rep);
  ByteReader rd(w.bytes().data(), w.bytes().size());
  BlockReport got;
  ASSERT_TRUE(decodeBlockReport(rd, got));
  EXPECT_TRUE(rd.atEnd());
  EXPECT_EQ(got.begin, rep.begin);
  EXPECT_EQ(got.end, rep.end);
  EXPECT_EQ(got.steps, rep.steps);
  EXPECT_EQ(got.busy_s, rep.busy_s);
  EXPECT_EQ(got.results.size(), 2u);
  EXPECT_EQ(got.results[1].trace_hash, rep.results[1].trace_hash);
}

TEST(Wire, MalformedBytesAreRejectedNotFabricated) {
  CellResult r;
  r.detail = "x";
  ByteWriter w;
  encodeCellResult(w, r);

  // Truncated buffer: decode fails cleanly at every cut point.
  for (std::size_t cut = 0; cut < w.bytes().size(); ++cut) {
    ByteReader rd(w.bytes().data(), cut);
    CellResult got;
    EXPECT_FALSE(decodeCellResult(rd, got)) << "cut " << cut;
  }

  // Out-of-range verdict byte (offset 8, right after the u64 index).
  std::vector<std::uint8_t> bad = w.bytes();
  bad[8] = 200;
  ByteReader rd(bad.data(), bad.size());
  CellResult got;
  EXPECT_FALSE(decodeCellResult(rd, got));
}

}  // namespace
}  // namespace wfd
