// Work-stealing batch scheduler (sim/batch.h): the heavy-tail contract.
//
// The campaign under test is deliberately adversarial for static sharding:
// a cluster of watched Fig. 3 extraction cells — each a fixed step budget,
// ~100x a light Fig. 1 cell — packed at the FRONT of the submission order,
// so the contiguous-block distribution hands the whole cluster to worker 0.
//
//   * determinism: jobs=1, jobs=4 static, and jobs=4 stealing produce
//     bit-identical submission-ordered results (the schedule decides WHERE
//     a cell runs, never WHAT it computes);
//   * balance: stealing's step makespan (max per-worker simulation steps,
//     sim/batch.h) beats static sharding by >= 1.5x — the deterministic
//     form of the wall-clock win, measurable on any host. Wall time itself
//     is only asserted when the machine really has >= 4 cores;
//   * isolation: a cell that throws after being stolen mid-campaign yields
//     a structured error slot while every stolen neighbor completes.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "test_util.h"

namespace wfd {
namespace {

using core::upsilonSetAgreement;
using sim::BatchCell;
using sim::BatchOptions;
using sim::BatchRunner;
using sim::BatchStats;
using sim::CellResult;
using sim::Env;
using sim::FailurePattern;
using sim::RunVerdict;
using sim::WatchdogConfig;

// Light cell: Fig. 1 set agreement, decides within a few hundred steps.
BatchCell lightCell(std::uint64_t seed) {
  const int n_plus_1 = 4;
  BatchCell cell;
  cell.cfg.n_plus_1 = n_plus_1;
  cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 50}});
  cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 150, seed);
  cell.cfg.seed = seed;
  cell.algo = [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
  cell.proposals = test::distinctProposals(n_plus_1);
  return cell;
}

// Heavy cell: a watched Fig. 3 extraction that always runs its whole step
// budget — deterministic weight, ~100x the light cell.
BatchCell heavyCell(std::uint64_t seed, Time budget) {
  const auto phi = core::phiOmegaK(4);
  BatchCell cell;
  cell.cfg.n_plus_1 = 4;
  cell.cfg.fp = FailurePattern::withCrashes(4, {{3, 60}});
  cell.cfg.fd = fd::makeOmega(*cell.cfg.fp, 120, seed);
  cell.cfg.seed = seed;
  cell.cfg.max_steps = budget + 10;
  cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
  cell.proposals = std::vector<Value>(4, 0);
  cell.watchdog = WatchdogConfig{budget, 0, 0};
  return cell;
}

// Heavy cluster first: with 4 workers over 40 cells the contiguous blocks
// are 10 cells each, so static sharding lands all 8 heavies on worker 0.
std::vector<BatchCell> heavyTailCampaign(Time budget = 12'000) {
  std::vector<BatchCell> cells;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cells.push_back(heavyCell(seed, budget));
  }
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    cells.push_back(lightCell(seed));
  }
  return cells;
}

void expectSameResults(const std::vector<CellResult>& want,
                       const std::vector<CellResult>& got, const char* mode) {
  ASSERT_EQ(want.size(), got.size()) << mode;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, i) << mode;
    EXPECT_EQ(got[i].trace_hash, want[i].trace_hash) << mode << " cell " << i;
    EXPECT_EQ(got[i].steps, want[i].steps) << mode << " cell " << i;
    EXPECT_EQ(got[i].verdict, want[i].verdict) << mode << " cell " << i;
    EXPECT_EQ(got[i].decisions, want[i].decisions) << mode << " cell " << i;
    EXPECT_EQ(got[i].error, want[i].error) << mode << " cell " << i;
  }
}

TEST(BatchSteal, StolenAndUnstolenRunsMatchSerialBitForBit) {
  const auto cells = heavyTailCampaign(/*budget=*/3'000);
  const auto serial = BatchRunner(BatchOptions{1}).run(cells);

  BatchStats static_stats;
  const auto statically =
      BatchRunner(BatchOptions{4, /*steal=*/false}).run(cells, &static_stats);
  expectSameResults(serial, statically, "static");
  EXPECT_EQ(static_stats.steal_ops, 0u);
  EXPECT_EQ(static_stats.stolen_cells, 0u);

  BatchStats steal_stats;
  const auto stolen =
      BatchRunner(BatchOptions{4, /*steal=*/true}).run(cells, &steal_stats);
  expectSameResults(serial, stolen, "steal");
  // The heavy cluster keeps worker 0 busy while the others drain: steals
  // must actually have happened for this test to mean anything.
  EXPECT_GT(steal_stats.steal_ops, 0u);
  EXPECT_GT(steal_stats.stolen_cells, 0u);

  // Every cell ran on exactly one worker in both modes.
  const auto total = [](const BatchStats& s) {
    std::size_t n = 0;
    for (const std::size_t e : s.executed) n += e;
    return n;
  };
  EXPECT_EQ(total(static_stats), cells.size());
  EXPECT_EQ(total(steal_stats), cells.size());
}

TEST(BatchSteal, StealingBeatsStaticShardingOnTheHeavyTail) {
  const auto cells = heavyTailCampaign();
  const BatchRunner statics(BatchOptions{4, /*steal=*/false});
  const BatchRunner stealer(BatchOptions{4, /*steal=*/true});

  // Static placement is a pure function of (cells, jobs): one pass pins
  // its makespan. The steal schedule depends on thread timing, so take
  // the best of three attempts before comparing.
  BatchStats static_stats;
  (void)statics.run(cells, &static_stats);
  ASSERT_GT(static_stats.stepMakespan(), 0);

  long long best_steal_makespan = 0;
  double best_steal_wall = -1;
  for (int attempt = 0; attempt < 3; ++attempt) {
    BatchStats stats;
    (void)stealer.run(cells, &stats);
    if (best_steal_makespan == 0 || stats.stepMakespan() < best_steal_makespan) {
      best_steal_makespan = stats.stepMakespan();
    }
    if (best_steal_wall < 0 || stats.wall_s < best_steal_wall) {
      best_steal_wall = stats.wall_s;
    }
  }
  ASSERT_GT(best_steal_makespan, 0);

  // The deterministic form of the speedup: static's critical path (all 8
  // heavies on worker 0) must be >= 1.5x stealing's. In practice stealing
  // spreads the cluster ~evenly and the ratio sits near 4x.
  const double makespan_ratio =
      static_cast<double>(static_stats.stepMakespan()) /
      static_cast<double>(best_steal_makespan);
  EXPECT_GE(makespan_ratio, 1.5)
      << "static makespan " << static_stats.stepMakespan() << ", steal "
      << best_steal_makespan;

  // Wall clock only shows the win when the pool really has its own cores.
  if (std::thread::hardware_concurrency() >= 4) {
    BatchStats timed_static;
    double best_static_wall = -1;
    for (int attempt = 0; attempt < 3; ++attempt) {
      BatchStats stats;
      (void)statics.run(cells, &stats);
      if (best_static_wall < 0 || stats.wall_s < best_static_wall) {
        best_static_wall = stats.wall_s;
        timed_static = stats;
      }
    }
    EXPECT_LT(best_steal_wall, best_static_wall)
        << "stealing should beat static sharding wall time on >= 4 cores";
  }
}

TEST(BatchSteal, ThrowingCellIsIsolatedEvenWhenStolen) {
  auto cells = heavyTailCampaign(/*budget=*/3'000);
  // Slot 7 sits deep in worker 0's initial block, behind the heavy
  // cluster — under stealing it is almost always executed by a thief.
  // Structurally broken: proposal arity mismatches n+1, so Run's
  // constructor throws SimAbort before any stepping.
  cells[7].proposals = {1, 2};
  auto serial_cells = cells;

  BatchStats stats;
  const auto res =
      BatchRunner(BatchOptions{4, /*steal=*/true}).run(cells, &stats);
  ASSERT_EQ(res.size(), cells.size());
  EXPECT_TRUE(res[7].error);
  EXPECT_NE(res[7].detail.find("proposals"), std::string::npos)
      << res[7].detail;

  const auto serial = BatchRunner(BatchOptions{1}).run(serial_cells);
  for (std::size_t i = 0; i < res.size(); ++i) {
    if (i == 7) continue;
    EXPECT_FALSE(res[i].error) << "cell " << i << ": " << res[i].detail;
    EXPECT_EQ(res[i].trace_hash, serial[i].trace_hash) << "cell " << i;
  }
}

}  // namespace
}  // namespace wfd
