// Corollary 4 context: n+1-process consensus from n-process consensus
// objects + registers + Omega_n, and the port discipline of consensus
// base objects.
#include <gtest/gtest.h>

#include "core/boosting.h"
#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::consensusBoosting;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

RunResult runBoosting(int n_plus_1, const FailurePattern& fp, fd::FdPtr fd,
                      std::uint64_t seed, const std::vector<Value>& props,
                      sim::PolicyKind policy = sim::PolicyKind::kRandom) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = std::move(fd);
  cfg.seed = seed;
  cfg.policy = policy;
  cfg.max_steps = 3'000'000;
  return sim::runTask(
      cfg, [](Env& e, Value v) { return consensusBoosting(e, v); }, props);
}

class BoostingSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoostingSweep, SolvesConsensusAcrossSeeds) {
  const int n_plus_1 = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 500,
                                           seed * 71 + 3);
    const auto rr = runBoosting(n_plus_1, fp,
                                fd::makeOmegaK(fp, n_plus_1 - 1, 400, seed),
                                seed, props);
    const auto rep = checkKSetAgreement(rr, 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " correct "
                          << fp.correct().toString() << ": " << rep.violation;
    EXPECT_EQ(rep.distinct, 1);
  }
}

TEST_P(BoostingSweep, LockstepSchedule) {
  const int n_plus_1 = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const auto rr = runBoosting(n_plus_1, fp,
                              fd::makeOmegaK(fp, n_plus_1 - 1, 300, 7), 7,
                              props, sim::PolicyKind::kRoundRobin);
  const auto rep = checkKSetAgreement(rr, 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoostingSweep, ::testing::Values(3, 4, 5, 6),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Boosting, LateStabilizationStillDecides) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const auto rr = runBoosting(n_plus_1, fp,
                              fd::makeOmegaK(fp, 3, /*stab=*/5000, 2), 2,
                              props);
  const auto rep = checkKSetAgreement(rr, 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

// ---- Consensus base objects ----

TEST(ConsensusObject, FirstProposalWins) {
  sim::ObjectTable tbl;
  const auto c = tbl.consId(sim::ObjKey{"c"}, 2);
  EXPECT_EQ(tbl.propose(c, 0, RegVal(Value{7})).asInt(), 7);
  EXPECT_EQ(tbl.propose(c, 1, RegVal(Value{9})).asInt(), 7);
  EXPECT_EQ(tbl.propose(c, 0, RegVal(Value{3})).asInt(), 7);
}

TEST(ConsensusObject, PortLimitEnforced) {
  sim::ObjectTable tbl;
  const auto c = tbl.consId(sim::ObjKey{"c"}, 2);
  tbl.propose(c, 0, RegVal(Value{1}));
  tbl.propose(c, 1, RegVal(Value{2}));
  // A third distinct proposer on a 2-ported object is a contract
  // violation — the resource Corollary 4's boosting question counts.
  EXPECT_DEATH(tbl.propose(c, 2, RegVal(Value{3})), "port limit");
}

TEST(ConsensusObject, GroupConsensusAgreesUnderRandomSchedules) {
  // n processes of a group hammer one object; everyone gets one winner
  // and it is someone's proposal.
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.seed = seed;
    const auto props = test::distinctProposals(n_plus_1);
    const auto rr = sim::runTask(
        cfg,
        [n_plus_1](Env& e, Value v) -> sim::Coro<sim::Unit> {
          const auto c = e.cons(sim::ObjKey{"t.gc"}, n_plus_1);
          const RegVal w = (co_await e.consPropose(c, RegVal(v))).scalar;
          e.decide(w.asInt());
          co_return sim::Unit{};
        },
        props);
    const auto rep = checkKSetAgreement(rr, 1, props);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

}  // namespace
}  // namespace wfd
