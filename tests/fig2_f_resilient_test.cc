// Theorem 6: the Fig. 2 protocol solves f-set agreement using Upsilon^f
// and registers in E_f. Swept over (n, f), stabilization times, crash
// patterns, snapshot flavors and stable sets.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::upsilonFSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;
using sim::SnapshotFlavor;

RunResult runFig2(int n_plus_1, int f, const FailurePattern& fp, fd::FdPtr fd,
                  std::uint64_t seed, const std::vector<Value>& props,
                  SnapshotFlavor flavor = SnapshotFlavor::kNative) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = std::move(fd);
  cfg.seed = seed;
  cfg.flavor = flavor;
  cfg.max_steps = 4'000'000;
  return sim::runTask(
      cfg, [f](Env& e, Value v) { return upsilonFSetAgreement(e, f, v); },
      props);
}

struct Params {
  int n_plus_1;
  int f;
  Time stab_time;
  SnapshotFlavor flavor;
};

class Fig2Sweep : public ::testing::TestWithParam<Params> {};

TEST_P(Fig2Sweep, FailureFreeRunsSatisfyTheorem6) {
  const auto [n_plus_1, f, stab, flavor] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    const auto rr = runFig2(n_plus_1, f, fp,
                            fd::makeUpsilonF(fp, f, stab, seed), seed, props,
                            flavor);
    const auto rep = checkKSetAgreement(rr, f, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation
                          << " (distinct=" << rep.distinct << ")";
  }
}

TEST_P(Fig2Sweep, CrashesWithinEfSatisfyTheorem6) {
  const auto [n_plus_1, f, stab, flavor] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto fp =
        FailurePattern::random(n_plus_1, f, stab + 400, seed * 31 + 7);
    ASSERT_TRUE(fp.inEnvironment(f));
    const auto rr = runFig2(n_plus_1, f, fp,
                            fd::makeUpsilonF(fp, f, stab, seed), seed, props,
                            flavor);
    const auto rep = checkKSetAgreement(rr, f, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " correct "
                          << fp.correct().toString() << ": " << rep.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fig2Sweep,
    ::testing::Values(Params{4, 1, 400, SnapshotFlavor::kNative},
                      Params{4, 2, 400, SnapshotFlavor::kNative},
                      Params{4, 3, 400, SnapshotFlavor::kNative},
                      Params{5, 2, 800, SnapshotFlavor::kNative},
                      Params{5, 4, 800, SnapshotFlavor::kNative},
                      Params{6, 3, 600, SnapshotFlavor::kNative},
                      Params{4, 2, 400, SnapshotFlavor::kAfek},
                      Params{5, 3, 500, SnapshotFlavor::kAfek}),
    [](const auto& info) {
      const Params& p = info.param;
      return "n" + std::to_string(p.n_plus_1) + "_f" + std::to_string(p.f) +
             "_stab" + std::to_string(p.stab_time) +
             (p.flavor == SnapshotFlavor::kAfek ? "_afek" : "_native");
    });

// Upsilon^n is Upsilon: with f = n, Fig. 2 must coincide in guarantees
// with Fig. 1 (at most n distinct decisions).
TEST(Fig2, WaitFreeCaseMatchesFig1Guarantees) {
  const int n_plus_1 = 4;
  const int f = 3;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    const auto rr = runFig2(n_plus_1, f, fp, fd::makeUpsilonF(fp, f, 300, seed),
                            seed, props);
    const auto rep = checkKSetAgreement(rr, f, props);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

// The critical Theorem 6 case: all citizens faulty and a faulty gladiator
// — the snapshot mechanism must cap gladiator commits at |U|+f-n-1.
// U = {p1,p2,p3}, correct = {p1,p2}: citizen p4 and gladiator p3 crash.
TEST(Fig2, AllCitizensFaultyGladiatorsEliminate) {
  const int n_plus_1 = 4;
  const int f = 2;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp =
        FailurePattern::withCrashes(n_plus_1, {{2, 300}, {3, 250}});
    const ProcSet u{0, 1, 2};
    const auto rr = runFig2(n_plus_1, f, fp,
                            fd::makeUpsilonF(fp, f, u, /*stab_time=*/100, seed),
                            seed, props);
    const auto rep = checkKSetAgreement(rr, f, props);
    EXPECT_TRUE(rep.ok()) << rep.violation;
    EXPECT_LE(rep.distinct, f);
  }
}

// |U| = n+1-f makes the gladiator converge parameter 0 (never commits):
// termination must come from a correct citizen.
TEST(Fig2, MinimumSizeStableSetReliesOnCitizens) {
  const int n_plus_1 = 5;
  const int f = 2;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const ProcSet u{0, 1, 2};  // size 3 = n+1-f
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto rr = runFig2(n_plus_1, f, fp,
                            fd::makeUpsilonF(fp, f, u, 200, seed), seed, props);
    const auto rep = checkKSetAgreement(rr, f, props);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

// Slowly-flapping noise drives processes into gladiator sub-rounds with
// misleading stable-looking sets before the real stabilization.
TEST(Fig2, MisleadingNoiseBeforeStabilization) {
  const int n_plus_1 = 5;
  const int f = 3;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    fd::UpsilonFd::Params p;
    p.stable_set = fd::UpsilonFd::defaultStableSet(fp, f);
    p.stab_time = 1500;
    p.noise_seed = seed;
    p.noise_hold = 120;  // noise looks stable for 120 steps at a time
    const auto rr = runFig2(n_plus_1, f, fp,
                            fd::makeUpsilonWithParams(fp, f, p), seed, props);
    const auto rep = checkKSetAgreement(rr, f, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

}  // namespace
}  // namespace wfd
