// Exhaustive schedule coverage ("model checking in miniature").
//
// The paper's properties are universally quantified over schedules; the
// other suites sample that space, this one exhausts it for small, bounded
// protocols. Coverage is delivered by the systematic explorer
// (sim/explore.h); the original brute-force multiset-permutation
// enumerator survives at n = 2 as the ORACLE: all C(8,4) = 70
// interleavings are executed one by one and their outcome set must equal
// the explorer's outcome set exactly, in both explorer modes. The n = 3
// sweeps (34650 interleavings apiece when enumerated naively) now run
// through the explorer, which certifies the same universally-quantified
// contracts from a fraction of the schedules (see tests/explore_test.cc
// for the reduction-factor bar).
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "test_util.h"

namespace wfd {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::ExploreConfig;
using sim::ExploreMode;
using sim::ExploreOutcome;
using sim::ExploreResult;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

// Enumerate all distinct permutations of the multiset with `per` copies
// of each pid in [0, n), invoking fn on each.
void forEachSchedule(int n, int per,
                     const std::function<void(const std::vector<Pid>&)>& fn) {
  std::vector<int> remaining(static_cast<std::size_t>(n), per);
  std::vector<Pid> seq;
  const std::function<void()> rec = [&] {
    if (static_cast<int>(seq.size()) == n * per) {
      fn(seq);
      return;
    }
    for (Pid p = 0; p < n; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
}

struct Outcome {
  std::vector<Value> picked;      // per pid
  std::vector<bool> committed;    // per pid
  friend bool operator<(const Outcome& a, const Outcome& b) {
    if (a.picked != b.picked) return a.picked < b.picked;
    return a.committed < b.committed;
  }
  friend bool operator==(const Outcome& a, const Outcome& b) {
    return a.picked == b.picked && a.committed == b.committed;
  }
};

Outcome outcomeOfEvents(const std::vector<sim::Event>& events, int n) {
  Outcome out;
  out.picked.resize(static_cast<std::size_t>(n), kBottomValue);
  out.committed.resize(static_cast<std::size_t>(n), false);
  for (const auto& e : events) {
    if (e.kind == sim::EventKind::kNote) {
      out.picked[static_cast<std::size_t>(e.pid)] = e.value.asInt();
      out.committed[static_cast<std::size_t>(e.pid)] = (e.label == "commit");
    }
  }
  return out;
}

Outcome runSchedule(int n, int k, const std::vector<Pid>& seq,
                    const std::vector<Value>& props) {
  RunConfig cfg;
  cfg.n_plus_1 = n;
  sim::Run run(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); }, props);
  sim::ScriptedPolicy policy(seq, std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 10'000);
  const auto rr = run.finish(taken);
  EXPECT_TRUE(rr.all_correct_done);
  return outcomeOfEvents(rr.trace().events(), n);
}

ExploreResult exploreConverge(int n, int k, const std::vector<Value>& props,
                              ExploreMode mode) {
  ExploreConfig cfg;
  cfg.run.n_plus_1 = n;
  cfg.mode = mode;
  return explore(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); },
                 props);
}

std::set<Outcome> explorerOutcomeSet(const ExploreResult& res, int n) {
  std::set<Outcome> out;
  for (const auto& [sig, o] : res.outcomes) {
    out.insert(outcomeOfEvents(o.events, n));
  }
  return out;
}

// 1-converge with two processes is commit-adopt: check its contract in
// every one of the 70 interleavings, and hold the explorer to the exact
// same outcome set — the brute force is the oracle for both modes.
TEST(Exhaustive, CommitAdoptTwoProcessesAllSchedules) {
  int schedules = 0;
  std::set<Outcome> brute;
  forEachSchedule(2, 4, [&](const std::vector<Pid>& seq) {
    ++schedules;
    const Outcome out = runSchedule(2, 1, seq, {100, 101});
    for (int p = 0; p < 2; ++p) {
      // C-Validity.
      EXPECT_TRUE(out.picked[static_cast<std::size_t>(p)] == 100 ||
                  out.picked[static_cast<std::size_t>(p)] == 101);
    }
    // C-Agreement for k = 1: any commit forces both picks equal.
    if (out.committed[0] || out.committed[1]) {
      EXPECT_EQ(out.picked[0], out.picked[1])
          << "schedule #" << schedules;
    }
    brute.insert(out);
  });
  EXPECT_EQ(schedules, 70);  // C(8,4)

  const ExploreResult dpor =
      exploreConverge(2, 1, {100, 101}, ExploreMode::kDpor);
  ASSERT_TRUE(dpor.verified());
  EXPECT_EQ(explorerOutcomeSet(dpor, 2), brute)
      << "DPOR outcome set diverged from the brute-force oracle";
  EXPECT_LE(dpor.schedules_explored, 70u);

  const ExploreResult dag =
      exploreConverge(2, 1, {100, 101}, ExploreMode::kDag);
  ASSERT_TRUE(dag.verified());
  EXPECT_EQ(explorerOutcomeSet(dag, 2), brute)
      << "stateful-search outcome set diverged from the brute-force oracle";
}

// Same, but both processes propose the same value: Convergence demands a
// commit from everyone, in every schedule — brute-forced, then certified
// again by the explorer over its (complete) outcome set.
TEST(Exhaustive, CommitAdoptConvergenceAllSchedules) {
  std::set<Outcome> brute;
  forEachSchedule(2, 4, [&](const std::vector<Pid>& seq) {
    const Outcome out = runSchedule(2, 1, seq, {100, 100});
    EXPECT_TRUE(out.committed[0]);
    EXPECT_TRUE(out.committed[1]);
    EXPECT_EQ(out.picked[0], 100);
    EXPECT_EQ(out.picked[1], 100);
    brute.insert(out);
  });
  const ExploreResult res =
      exploreConverge(2, 1, {100, 100}, ExploreMode::kDpor);
  ASSERT_TRUE(res.verified());
  EXPECT_EQ(explorerOutcomeSet(res, 2), brute);
}

// 2-converge with three processes and three distinct values: the contract
// over ALL 34650 interleavings, certified by the explorer instead of
// enumerated. If anyone commits, at most 2 distinct values are picked.
TEST(Exhaustive, TwoConvergeThreeProcessesAllSchedules) {
  const ExploreResult res =
      exploreConverge(3, 2, {100, 101, 102}, ExploreMode::kDpor);
  ASSERT_TRUE(res.complete);
  EXPECT_LT(res.schedules_explored, 34650u);  // 12!/(4!)^3, enumerated
  for (const auto& [sig, o] : res.outcomes) {
    const Outcome out = outcomeOfEvents(o.events, 3);
    const bool any_commit =
        out.committed[0] || out.committed[1] || out.committed[2];
    if (any_commit) {
      std::set<Value> vals(out.picked.begin(), out.picked.end());
      EXPECT_LE(vals.size(), 2u);
    }
  }
}

// 1-converge with three processes, two of which share a value: stronger
// agreement pressure, same exhaustive coverage via the explorer.
TEST(Exhaustive, OneConvergeThreeProcessesAllSchedules) {
  const ExploreResult res =
      exploreConverge(3, 1, {100, 100, 101}, ExploreMode::kDpor);
  ASSERT_TRUE(res.complete);
  for (const auto& [sig, o] : res.outcomes) {
    const Outcome out = outcomeOfEvents(o.events, 3);
    const bool any_commit =
        out.committed[0] || out.committed[1] || out.committed[2];
    if (any_commit) {
      std::set<Value> vals(out.picked.begin(), out.picked.end());
      EXPECT_LE(vals.size(), 1u);
    }
  }
}

}  // namespace
}  // namespace wfd
