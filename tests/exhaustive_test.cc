// Exhaustive schedule enumeration ("model checking in miniature").
//
// The paper's properties are universally quantified over schedules; the
// other suites sample that space, this one exhausts it for small,
// bounded protocols: every interleaving of the k-converge phases is
// executed and checked. With the native snapshot flavor one invocation
// is exactly 4 atomic steps per process, so all interleavings of
// 2 processes (C(8,4) = 70) and 3 processes (8!... = 34650 multiset
// permutations) are enumerable.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "test_util.h"

namespace wfd {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

// Enumerate all distinct permutations of the multiset with `per` copies
// of each pid in [0, n), invoking fn on each.
void forEachSchedule(int n, int per,
                     const std::function<void(const std::vector<Pid>&)>& fn) {
  std::vector<int> remaining(static_cast<std::size_t>(n), per);
  std::vector<Pid> seq;
  const std::function<void()> rec = [&] {
    if (static_cast<int>(seq.size()) == n * per) {
      fn(seq);
      return;
    }
    for (Pid p = 0; p < n; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
}

struct Outcome {
  std::vector<Value> picked;      // per pid
  std::vector<bool> committed;    // per pid
};

Outcome runSchedule(int n, int k, const std::vector<Pid>& seq,
                    const std::vector<Value>& props) {
  RunConfig cfg;
  cfg.n_plus_1 = n;
  sim::Run run(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); }, props);
  sim::ScriptedPolicy policy(seq, std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 10'000);
  const auto rr = run.finish(taken);
  Outcome out;
  out.picked.resize(static_cast<std::size_t>(n), kBottomValue);
  out.committed.resize(static_cast<std::size_t>(n), false);
  for (const auto& e : rr.trace().events()) {
    if (e.kind == sim::EventKind::kNote) {
      out.picked[static_cast<std::size_t>(e.pid)] = e.value.asInt();
      out.committed[static_cast<std::size_t>(e.pid)] = (e.label == "commit");
    }
  }
  EXPECT_TRUE(rr.all_correct_done);
  return out;
}

// 1-converge with two processes is commit-adopt: check its contract in
// every one of the 70 interleavings.
TEST(Exhaustive, CommitAdoptTwoProcessesAllSchedules) {
  int schedules = 0;
  forEachSchedule(2, 4, [&](const std::vector<Pid>& seq) {
    ++schedules;
    const Outcome out = runSchedule(2, 1, seq, {100, 101});
    for (int p = 0; p < 2; ++p) {
      // C-Validity.
      EXPECT_TRUE(out.picked[static_cast<std::size_t>(p)] == 100 ||
                  out.picked[static_cast<std::size_t>(p)] == 101);
    }
    // C-Agreement for k = 1: any commit forces both picks equal.
    if (out.committed[0] || out.committed[1]) {
      EXPECT_EQ(out.picked[0], out.picked[1])
          << "schedule #" << schedules;
    }
  });
  EXPECT_EQ(schedules, 70);  // C(8,4)
}

// Same, but both processes propose the same value: Convergence demands a
// commit from everyone, in every schedule.
TEST(Exhaustive, CommitAdoptConvergenceAllSchedules) {
  forEachSchedule(2, 4, [&](const std::vector<Pid>& seq) {
    const Outcome out = runSchedule(2, 1, seq, {100, 100});
    EXPECT_TRUE(out.committed[0]);
    EXPECT_TRUE(out.committed[1]);
    EXPECT_EQ(out.picked[0], 100);
    EXPECT_EQ(out.picked[1], 100);
  });
}

// 2-converge with three processes and three distinct values: all 34650
// interleavings. If anyone commits, at most 2 distinct values are picked.
TEST(Exhaustive, TwoConvergeThreeProcessesAllSchedules) {
  int schedules = 0;
  forEachSchedule(3, 4, [&](const std::vector<Pid>& seq) {
    ++schedules;
    const Outcome out = runSchedule(3, 2, seq, {100, 101, 102});
    const bool any_commit =
        out.committed[0] || out.committed[1] || out.committed[2];
    if (any_commit) {
      std::set<Value> vals(out.picked.begin(), out.picked.end());
      EXPECT_LE(vals.size(), 2u) << "schedule #" << schedules;
    }
  });
  EXPECT_EQ(schedules, 34650);  // 12! / (4!)^3
}

// 1-converge with three processes, two of which share a value: stronger
// agreement pressure, same exhaustive sweep.
TEST(Exhaustive, OneConvergeThreeProcessesAllSchedules) {
  forEachSchedule(3, 4, [&](const std::vector<Pid>& seq) {
    const Outcome out = runSchedule(3, 1, seq, {100, 100, 101});
    const bool any_commit =
        out.committed[0] || out.committed[1] || out.committed[2];
    if (any_commit) {
      std::set<Value> vals(out.picked.begin(), out.picked.end());
      EXPECT_LE(vals.size(), 1u);
    }
  });
}

}  // namespace
}  // namespace wfd
