// Schedule-space explorer (sim/explore.h): DPOR + stateful-DAG modes.
//
// The ground truth is the brute-force multiset-permutation enumerator that
// tests/exhaustive_test.cc has always used: at n = 2 the explorer's
// outcome set must equal the brute-force outcome set EXACTLY, in both
// modes. On top of that: the DPOR reduction factor at n = 3, the seeded
// safety bug the explorer must catch (with a replayable counterexample),
// the budget valves, and the footprint commutation table itself.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "test_util.h"

namespace wfd {
namespace {

using core::kConverge;
using core::Pick;
using sim::Coro;
using sim::Env;
using sim::ExploreConfig;
using sim::ExploreMode;
using sim::ExploreOutcome;
using sim::ExploreResult;
using sim::ExploreVerdict;
using sim::OpClass;
using sim::OpFootprint;
using sim::RunConfig;
using sim::Unit;
using sim::footprintsCommute;

// ---- Footprint commutation table -----------------------------------------

OpFootprint fp(OpClass cls, ObjId obj = -1, int slot = -1,
               int fd_epoch = sim::kFdEpochUnstable) {
  return OpFootprint{cls, obj, slot, fd_epoch};
}

TEST(Footprints, DisjointObjectsCommute) {
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kWrite, 1), fp(OpClass::kWrite, 2)));
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kRead, 1), fp(OpClass::kScan, 2)));
  EXPECT_TRUE(
      footprintsCommute(fp(OpClass::kUpdate, 1, 0), fp(OpClass::kScan, 2)));
}

TEST(Footprints, SameObjectReadsCommute) {
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kRead, 1), fp(OpClass::kRead, 1)));
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kScan, 1), fp(OpClass::kScan, 1)));
}

TEST(Footprints, SameObjectWritesConflict) {
  EXPECT_FALSE(footprintsCommute(fp(OpClass::kRead, 1), fp(OpClass::kWrite, 1)));
  EXPECT_FALSE(footprintsCommute(fp(OpClass::kWrite, 1), fp(OpClass::kWrite, 1)));
  EXPECT_FALSE(
      footprintsCommute(fp(OpClass::kScan, 1), fp(OpClass::kUpdate, 1, 0)));
}

TEST(Footprints, UpdatesCommuteIffSlotsDiffer) {
  EXPECT_TRUE(
      footprintsCommute(fp(OpClass::kUpdate, 1, 0), fp(OpClass::kUpdate, 1, 1)));
  EXPECT_FALSE(
      footprintsCommute(fp(OpClass::kUpdate, 1, 0), fp(OpClass::kUpdate, 1, 0)));
}

TEST(Footprints, UnstableFdQueriesNeverCommute) {
  // FD histories are time-indexed: swapping an UNCERTIFIED query across
  // any step can change its answer, so it stays an ordered event of the
  // run — the original conservative relation, and what World::execute
  // always reports (kFdEpochUnstable).
  EXPECT_FALSE(footprintsCommute(fp(OpClass::kFdQuery), fp(OpClass::kNone)));
  EXPECT_FALSE(footprintsCommute(fp(OpClass::kRead, 1), fp(OpClass::kFdQuery)));
  EXPECT_FALSE(
      footprintsCommute(fp(OpClass::kFdQuery), fp(OpClass::kFdQuery)));
}

TEST(Footprints, StableFdQueriesCommuteWithMemorySteps) {
  // A query certified inside a stability interval answers a constant of
  // that interval and touches no shared memory, so it commutes with any
  // memory or local step — no memory op's result depends on time.
  const OpFootprint stable = fp(OpClass::kFdQuery, -1, -1, 0);
  EXPECT_TRUE(footprintsCommute(stable, fp(OpClass::kNone)));
  EXPECT_TRUE(footprintsCommute(stable, fp(OpClass::kRead, 1)));
  EXPECT_TRUE(footprintsCommute(stable, fp(OpClass::kWrite, 1)));
  EXPECT_TRUE(footprintsCommute(stable, fp(OpClass::kScan, 1)));
  EXPECT_TRUE(footprintsCommute(stable, fp(OpClass::kUpdate, 1, 0)));
  EXPECT_TRUE(footprintsCommute(stable, fp(OpClass::kPropose, 1)));
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kWrite, 1), stable));
}

TEST(Footprints, FdQueryPairsCommuteOnlyInsideTheSameEpoch) {
  const OpFootprint epoch0 = fp(OpClass::kFdQuery, -1, -1, 0);
  const OpFootprint unstable = fp(OpClass::kFdQuery);
  // Same certified interval: both answers are the interval's constants,
  // any order gives the same pair of answers.
  EXPECT_TRUE(footprintsCommute(epoch0, epoch0));
  // A stable query never reorders against an unstable one (the swap
  // moves the unstable query in time), in either argument position.
  EXPECT_FALSE(footprintsCommute(epoch0, unstable));
  EXPECT_FALSE(footprintsCommute(unstable, epoch0));
  // Distinct intervals would not share constants; only equal epochs
  // commute (today only epoch 0 is ever certified, but the relation is
  // written for the general interval lattice).
  EXPECT_FALSE(
      footprintsCommute(epoch0, fp(OpClass::kFdQuery, -1, -1, 1)));
}

TEST(Footprints, LocalStepsCommuteWithEverythingElse) {
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kNone), fp(OpClass::kNone)));
  EXPECT_TRUE(footprintsCommute(fp(OpClass::kNone), fp(OpClass::kWrite, 1)));
}

// ---- The k-converge workload (same shape as tests/exhaustive_test.cc) ----

Coro<Unit> oneShot(Env& env, int k, Value v) {
  env.propose(v);
  const Pick p = co_await kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return Unit{};
}

struct Picks {
  std::vector<Value> picked;    // per pid; kBottomValue when none
  std::vector<bool> committed;  // per pid
  friend bool operator<(const Picks& a, const Picks& b) {
    if (a.picked != b.picked) return a.picked < b.picked;
    return a.committed < b.committed;
  }
  friend bool operator==(const Picks& a, const Picks& b) {
    return a.picked == b.picked && a.committed == b.committed;
  }
};

Picks picksOf(const std::vector<sim::Event>& events, int n) {
  Picks out;
  out.picked.resize(static_cast<std::size_t>(n), kBottomValue);
  out.committed.resize(static_cast<std::size_t>(n), false);
  for (const auto& e : events) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label != "commit" && e.label != "adopt") continue;
    out.picked[static_cast<std::size_t>(e.pid)] = e.value.asInt();
    out.committed[static_cast<std::size_t>(e.pid)] = (e.label == "commit");
  }
  return out;
}

// The k-converge safety contract as an explorer property: C-Validity plus
// C-Agreement ("any commit forces at most k distinct picks among the
// processes that picked"). Crashed processes simply have no pick.
std::function<std::string(const ExploreOutcome&)> convergeProperty(
    int n, int k, const std::vector<Value>& props) {
  return [n, k, props](const ExploreOutcome& o) -> std::string {
    const Picks px = picksOf(o.events, n);
    bool any_commit = false;
    std::set<Value> picked;
    for (int p = 0; p < n; ++p) {
      const Value v = px.picked[static_cast<std::size_t>(p)];
      if (v == kBottomValue) continue;
      bool valid = false;
      for (const Value q : props) valid = valid || (q == v);
      if (!valid) return "C-Validity: p" + std::to_string(p + 1) +
                         " picked non-proposal " + std::to_string(v);
      picked.insert(v);
      any_commit = any_commit || px.committed[static_cast<std::size_t>(p)];
    }
    if (any_commit && static_cast<int>(picked.size()) > k) {
      return "C-Agreement: a commit with " + std::to_string(picked.size()) +
             " > k = " + std::to_string(k) + " distinct picks";
    }
    return "";
  };
}

ExploreConfig convergeConfig(int n, int k, const std::vector<Value>& props,
                             ExploreMode mode) {
  ExploreConfig cfg;
  cfg.run.n_plus_1 = n;
  cfg.mode = mode;
  cfg.property = convergeProperty(n, k, props);
  return cfg;
}

ExploreResult exploreConverge(int n, int k, const std::vector<Value>& props,
                              ExploreMode mode) {
  return explore(convergeConfig(n, k, props, mode),
                 [k](Env& e, Value v) { return oneShot(e, k, v); }, props);
}

// ---- Brute-force oracle (the pre-explorer enumerator, kept verbatim) -----

void forEachSchedule(int n, int per,
                     const std::function<void(const std::vector<Pid>&)>& fn) {
  std::vector<int> remaining(static_cast<std::size_t>(n), per);
  std::vector<Pid> seq;
  const std::function<void()> rec = [&] {
    if (static_cast<int>(seq.size()) == n * per) {
      fn(seq);
      return;
    }
    for (Pid p = 0; p < n; ++p) {
      if (remaining[static_cast<std::size_t>(p)] == 0) continue;
      --remaining[static_cast<std::size_t>(p)];
      seq.push_back(p);
      rec();
      seq.pop_back();
      ++remaining[static_cast<std::size_t>(p)];
    }
  };
  rec();
}

Picks runSchedule(int n, int k, const std::vector<Pid>& seq,
                  const std::vector<Value>& props) {
  RunConfig cfg;
  cfg.n_plus_1 = n;
  sim::Run run(cfg, [k](Env& e, Value v) { return oneShot(e, k, v); }, props);
  sim::ScriptedPolicy policy(seq, std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 10'000);
  const auto rr = run.finish(taken);
  EXPECT_TRUE(rr.all_correct_done);
  return picksOf(rr.trace().events(), n);
}

std::set<Picks> explorerPickSet(const ExploreResult& res, int n) {
  std::set<Picks> out;
  for (const auto& [sig, o] : res.outcomes) out.insert(picksOf(o.events, n));
  return out;
}

// ---- n = 2: explorer vs. the 70-schedule brute force, both modes ---------

TEST(Explore, TwoProcOutcomeSetEqualsBruteForceExactly) {
  const std::vector<Value> props = {100, 101};
  std::set<Picks> brute;
  int schedules = 0;
  forEachSchedule(2, 4, [&](const std::vector<Pid>& seq) {
    ++schedules;
    brute.insert(runSchedule(2, 1, seq, props));
  });
  ASSERT_EQ(schedules, 70);  // C(8,4)

  const ExploreResult dpor = exploreConverge(2, 1, props, ExploreMode::kDpor);
  EXPECT_TRUE(dpor.verified()) << dpor.violation;
  EXPECT_GT(dpor.schedules_explored, 0u);
  EXPECT_LE(dpor.schedules_explored, 70u);
  EXPECT_EQ(explorerPickSet(dpor, 2), brute);

  const ExploreResult dag = exploreConverge(2, 1, props, ExploreMode::kDag);
  EXPECT_TRUE(dag.verified()) << dag.violation;
  EXPECT_EQ(explorerPickSet(dag, 2), brute);
  // The memoized DAG walk covers all 70 schedules without running them.
  EXPECT_LT(dag.steps_executed, 70u * 8u);
}

TEST(Explore, TwoProcSameProposalAlwaysCommits) {
  // Convergence: identical proposals must commit in EVERY schedule — an
  // exhaustive claim the explorer can actually certify.
  const std::vector<Value> props = {100, 100};
  ExploreConfig cfg = convergeConfig(2, 1, props, ExploreMode::kDpor);
  cfg.property = [](const ExploreOutcome& o) -> std::string {
    const Picks px = picksOf(o.events, 2);
    for (int p = 0; p < 2; ++p) {
      if (!px.committed[static_cast<std::size_t>(p)] ||
          px.picked[static_cast<std::size_t>(p)] != 100) {
        return "p" + std::to_string(p + 1) + " failed to commit 100";
      }
    }
    return "";
  };
  const ExploreResult res =
      explore(cfg, [](Env& e, Value v) { return oneShot(e, 1, v); }, props);
  EXPECT_TRUE(res.verified()) << res.violation;
}

// ---- n = 3: the reduction claim ------------------------------------------

TEST(Explore, ThreeProcDporReducesAtLeastFiveFold) {
  const std::vector<Value> props = {100, 101, 102};
  const ExploreResult dpor = exploreConverge(3, 2, props, ExploreMode::kDpor);
  EXPECT_TRUE(dpor.verified()) << dpor.violation;
  // Full permutation count is 12!/(4!)^3 = 34650; the acceptance bar is
  // at least a 5x reduction.
  EXPECT_LE(dpor.schedules_explored, 34650u / 5u);
  EXPECT_GT(dpor.sleep_set_skips, 0u);
  EXPECT_GT(dpor.restores, 0u);

  // Cross-check the verdict and the outcome set against the complete
  // stateful search.
  const ExploreResult dag = exploreConverge(3, 2, props, ExploreMode::kDag);
  EXPECT_TRUE(dag.verified()) << dag.violation;
  EXPECT_GT(dag.memo_hits, 0u);
  EXPECT_EQ(explorerPickSet(dpor, 3), explorerPickSet(dag, 3));
}

// ---- The seeded bug: a broken commit-adopt the explorer must catch -------

// Deliberately wrong commit-adopt: publishes and observes like the real
// protocol's phase 1, but on disagreement ADOPTS ITS OWN value instead of
// a value from the observed set. A solo-first schedule lets the early
// process commit while a later one keeps its own different value.
Coro<Unit> buggyOneShot(Env& env, Value v) {
  env.propose(v);
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.bug"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  const std::vector<Value> u = mem::distinctValues(view);
  const bool commit = u.size() <= 1;
  env.note(commit ? "commit" : "adopt", RegVal(v));  // bug: always own v
  env.decide(v);
  co_return Unit{};
}

TEST(Explore, SeededBugIsCaughtWithReplayableCounterexample) {
  const std::vector<Value> props = {100, 101};
  ExploreConfig cfg;
  cfg.run.n_plus_1 = 2;
  cfg.mode = ExploreMode::kDpor;
  cfg.property = convergeProperty(2, 1, props);
  const ExploreResult res = explore(
      cfg, [](Env& e, Value v) { return buggyOneShot(e, v); }, props);

  ASSERT_EQ(res.verdict, ExploreVerdict::kViolation);
  EXPECT_NE(res.violation.find("C-Agreement"), std::string::npos)
      << res.violation;
  ASSERT_FALSE(res.counterexample.empty());
  EXPECT_FALSE(res.counterexampleString().empty());

  // The counterexample must REPLAY: the same pid sequence through a
  // scripted policy reproduces the violation.
  RunConfig rcfg;
  rcfg.n_plus_1 = 2;
  sim::Run run(rcfg, [](Env& e, Value v) { return buggyOneShot(e, v); },
               props);
  sim::ScriptedPolicy policy(res.counterexample,
                             std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 10'000);
  const auto rr = run.finish(taken);
  const Picks px = picksOf(rr.trace().events(), 2);
  EXPECT_TRUE(px.committed[0] || px.committed[1]);
  EXPECT_NE(px.picked[0], px.picked[1]);

  // The honest protocol has no such schedule — and the DAG oracle agrees
  // the bug is real.
  const ExploreResult dag = explore(
      convergeConfig(2, 1, props, ExploreMode::kDag),
      [](Env& e, Value v) { return buggyOneShot(e, v); }, props);
  EXPECT_EQ(dag.verdict, ExploreVerdict::kViolation);
}

// ---- Refined FD-independence on a live workload --------------------------

// FD-bearing mini-protocol: two queries bracketing a snapshot update, so
// the refined relation has real query×query, query×update and query×scan
// pairs to classify. The noted answers make every query's value part of
// the outcome signature — a misclassified commutation that changed any
// answer would split the DPOR and DAG outcome sets.
Coro<Unit> fdWorkload(Env& env, Value v) {
  env.propose(v);
  const sim::OpResult a = co_await env.queryFd();
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.fd"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const sim::OpResult b = co_await env.queryFd();
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  env.note("fd1", a.scalar);
  env.note("fd2", b.scalar);
  env.note("seen",
           RegVal(static_cast<Value>(mem::distinctValues(view).size())));
  env.decide(v);
  co_return Unit{};
}

ExploreResult exploreFdWorkload(ExploreMode mode, Time stab_time) {
  ExploreConfig cfg;
  cfg.run.n_plus_1 = 2;
  cfg.run.fd = fd::makeUpsilon(sim::FailurePattern::failureFree(2), stab_time,
                               /*seed=*/3);
  cfg.mode = mode;
  return explore(cfg, [](Env& e, Value v) { return fdWorkload(e, v); },
                 {100, 101});
}

TEST(Explore, RefinedFdRelationMatchesTheDagOracle) {
  // In the stability window (stab_time = 0: every query is epoch-0
  // stable) AND out of it (stab_time = 100: no causal past ever spans
  // 100 steps, so every query stays unstable), DPOR under the refined
  // relation must reproduce the complete stateful search's outcome set.
  for (const Time stab : {Time{0}, Time{100}}) {
    const ExploreResult dpor = exploreFdWorkload(ExploreMode::kDpor, stab);
    const ExploreResult dag = exploreFdWorkload(ExploreMode::kDag, stab);
    EXPECT_TRUE(dpor.verified()) << dpor.violation;
    EXPECT_TRUE(dag.verified()) << dag.violation;
    EXPECT_EQ(dpor.outcomeSigs(), dag.outcomeSigs()) << "stab=" << stab;
  }
}

TEST(Explore, StableQueriesShrinkTheDporSearch) {
  // The whole point of the refined relation: certified-stable queries
  // commute, so the stabilized history explores strictly fewer trace
  // classes than the same workload under a never-certified history.
  const ExploreResult stable = exploreFdWorkload(ExploreMode::kDpor, 0);
  const ExploreResult unstable = exploreFdWorkload(ExploreMode::kDpor, 100);
  EXPECT_LT(stable.schedules_explored, unstable.schedules_explored);
}

TEST(Explore, StableFdDoesNotOverrideCrashRefusal) {
  // Query × crash boundary: a stability certificate never licenses DPOR
  // across a crash time — enabledness still depends on clock position,
  // so the engine refuses the pattern outright; kDag covers it instead.
  ExploreConfig cfg;
  cfg.run.n_plus_1 = 2;
  cfg.run.fp = sim::FailurePattern::withCrashes(2, {{1, 3}});
  cfg.run.fd = fd::makeUpsilon(*cfg.run.fp, /*stab_time=*/0, /*seed=*/3);
  cfg.mode = ExploreMode::kDpor;
  EXPECT_THROW(
      explore(cfg, [](Env& e, Value v) { return fdWorkload(e, v); },
              {100, 101}),
      sim::SimAbort);
  cfg.mode = ExploreMode::kDag;
  const ExploreResult dag = explore(
      cfg, [](Env& e, Value v) { return fdWorkload(e, v); }, {100, 101});
  EXPECT_TRUE(dag.verified()) << dag.violation;
}

// ---- Budget valves and mode preconditions --------------------------------

TEST(Explore, ScheduleBudgetCutsSearchIncomplete) {
  const std::vector<Value> props = {100, 101, 102};
  ExploreConfig cfg = convergeConfig(3, 2, props, ExploreMode::kDpor);
  cfg.max_schedules = 3;
  const ExploreResult res = explore(
      cfg, [](Env& e, Value v) { return oneShot(e, 2, v); }, props);
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.verified());
  EXPECT_LE(res.schedules_explored, 3u);
}

TEST(Explore, DepthBudgetCutsSearchIncomplete) {
  const std::vector<Value> props = {100, 101};
  ExploreConfig cfg = convergeConfig(2, 1, props, ExploreMode::kDpor);
  cfg.max_depth = 3;  // the workload needs 8 steps
  const ExploreResult res = explore(
      cfg, [](Env& e, Value v) { return oneShot(e, 1, v); }, props);
  EXPECT_FALSE(res.complete);
}

TEST(Explore, DporRefusesCrashPatterns) {
  ExploreConfig cfg = convergeConfig(2, 1, {100, 101}, ExploreMode::kDpor);
  cfg.run.fp = sim::FailurePattern::withCrashes(2, {{1, 3}});
  EXPECT_THROW(explore(cfg, [](Env& e, Value v) { return oneShot(e, 1, v); },
                       {100, 101}),
               sim::SimAbort);
}

TEST(Explore, DagExploresCrashPatterns) {
  // p2 crashes at time 3: some schedules lose its steps entirely, others
  // see its phase-1 write. The stateful search handles both; the
  // property tolerates the missing pick.
  const std::vector<Value> props = {100, 101};
  ExploreConfig cfg = convergeConfig(2, 1, props, ExploreMode::kDag);
  cfg.run.fp = sim::FailurePattern::withCrashes(2, {{1, 3}});
  const ExploreResult res = explore(
      cfg, [](Env& e, Value v) { return oneShot(e, 1, v); }, props);
  EXPECT_TRUE(res.verified()) << res.violation;
  EXPECT_GT(res.schedules_explored, 0u);
}

}  // namespace
}  // namespace wfd
