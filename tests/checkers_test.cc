// The checkers themselves: every property they certify must be one they
// actually detect the violation of. Synthetic traces are fed to each
// checker and must be flagged — a checker that passes everything would
// silently vacate every experiment in the repository.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkEmulatedOmega;
using core::checkEmulatedUpsilonF;
using core::checkKSetAgreement;
using sim::Env;
using sim::EventKind;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

// Build a RunResult by hand: a world with the given pattern plus a
// scripted trace.
RunResult synthetic(int n_plus_1, FailurePattern fp,
                    const std::vector<sim::Event>& events, Time horizon) {
  RunResult rr;
  rr.world = std::make_unique<sim::World>(n_plus_1, std::move(fp), nullptr);
  for (const auto& e : events) {
    rr.world->trace().record(e.time, e.pid, e.kind, e.label, e.value);
    if (e.kind == EventKind::kDecide) rr.decisions[e.pid] = e.value.asInt();
  }
  while (rr.world->now() < horizon) rr.world->advanceClock();
  rr.all_correct_done = true;
  rr.steps = horizon;
  return rr;
}

sim::Event decide(Time t, Pid p, Value v) {
  return {t, p, EventKind::kDecide, "", RegVal(v)};
}
sim::Event publish(Time t, Pid p, ProcSet s) {
  return {t, p, EventKind::kPublish, "", RegVal(s)};
}

// ---- k-set agreement checker ----

TEST(AgreementChecker, FlagsMissingDecision) {
  auto rr = synthetic(3, FailurePattern::failureFree(3),
                      {decide(1, 0, 100), decide(2, 1, 100)}, 10);
  rr.all_correct_done = false;
  const auto rep = checkKSetAgreement(rr, 2, {100, 101, 102});
  EXPECT_FALSE(rep.termination);
  EXPECT_FALSE(rep.ok());
}

TEST(AgreementChecker, FlagsInventedValue) {
  const auto rr = synthetic(
      2, FailurePattern::failureFree(2),
      {decide(1, 0, 100), decide(2, 1, 999)}, 10);
  const auto rep = checkKSetAgreement(rr, 1, {100, 101});
  EXPECT_FALSE(rep.validity);
}

TEST(AgreementChecker, FlagsTooManyValues) {
  const auto rr = synthetic(
      3, FailurePattern::failureFree(3),
      {decide(1, 0, 100), decide(2, 1, 101), decide(3, 2, 102)}, 10);
  const auto rep = checkKSetAgreement(rr, 2, {100, 101, 102});
  EXPECT_FALSE(rep.agreement);
  EXPECT_EQ(rep.distinct, 3);
}

TEST(AgreementChecker, FlagsDoubleDecision) {
  const auto rr = synthetic(2, FailurePattern::failureFree(2),
                            {decide(1, 0, 100), decide(2, 0, 101),
                             decide(3, 1, 100)},
                            10);
  const auto rep = checkKSetAgreement(rr, 2, {100, 101});
  EXPECT_FALSE(rep.decide_once);
}

TEST(AgreementChecker, CrashedProcessesNeedNotDecide) {
  const auto rr = synthetic(3, FailurePattern::withCrashes(3, {{2, 5}}),
                            {decide(1, 0, 100), decide(2, 1, 100)}, 10);
  const auto rep = checkKSetAgreement(rr, 2, {100, 101, 102});
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

// ---- emulation checkers ----

TEST(EmulationChecker, FlagsDisagreeingFinals) {
  const auto rr =
      synthetic(2, FailurePattern::failureFree(2),
                {publish(1, 0, ProcSet{0}), publish(2, 1, ProcSet{1})}, 10);
  const auto rep = checkEmulatedUpsilonF(rr, 1);
  EXPECT_FALSE(rep.stabilized);
}

TEST(EmulationChecker, FlagsCorrectSetAsUpsilonOutput) {
  const auto fp = FailurePattern::withCrashes(3, {{2, 3}});
  const auto rr = synthetic(3, fp,
                            {publish(5, 0, ProcSet{0, 1}),
                             publish(6, 1, ProcSet{0, 1})},
                            10);
  const auto rep = checkEmulatedUpsilonF(rr, 2);
  EXPECT_TRUE(rep.stabilized);
  EXPECT_FALSE(rep.legal);  // {p1,p2} IS the correct set
}

TEST(EmulationChecker, FlagsTooSmallUpsilonFOutput) {
  const auto rr = synthetic(4, FailurePattern::failureFree(4),
                            {publish(1, 0, ProcSet{0}), publish(1, 1, ProcSet{0}),
                             publish(1, 2, ProcSet{0}), publish(1, 3, ProcSet{0})},
                            10);
  // f = 1 requires outputs of size >= n+1-f = 3.
  const auto rep = checkEmulatedUpsilonF(rr, 1);
  EXPECT_FALSE(rep.legal);
}

TEST(EmulationChecker, FlagsFaultyLeader) {
  const auto fp = FailurePattern::withCrashes(2, {{1, 3}});
  const auto rr = synthetic(2, fp, {publish(5, 0, ProcSet{1})}, 10);
  const auto rep = checkEmulatedOmega(rr);
  EXPECT_TRUE(rep.stabilized);
  EXPECT_FALSE(rep.legal);
}

TEST(EmulationChecker, FlagsNonSingletonOmega) {
  const auto rr = synthetic(2, FailurePattern::failureFree(2),
                            {publish(1, 0, ProcSet{0, 1}),
                             publish(1, 1, ProcSet{0, 1})},
                            10);
  const auto rep = checkEmulatedOmega(rr);
  EXPECT_FALSE(rep.legal);
}

TEST(EmulationChecker, AcceptsLegalOmega) {
  const auto fp = FailurePattern::withCrashes(2, {{1, 3}});
  const auto rr = synthetic(
      2, fp, {publish(2, 0, ProcSet{1}), publish(7, 0, ProcSet{0})}, 20);
  const auto rep = checkEmulatedOmega(rr);
  EXPECT_TRUE(rep.ok()) << rep.violation;
  EXPECT_EQ(rep.last_change, 7);
}

// ---- FD axiom checkers (negative controls) ----

TEST(AxiomChecker, FlagsNonStabilizingHistory) {
  const auto fp = FailurePattern::failureFree(2);
  const auto flip = fd::makeScripted(
      "flip", [](Pid, Time t) { return ProcSet{static_cast<Pid>(t % 2)}; },
      /*claimed stab=*/0);
  EXPECT_FALSE(fd::checkStable(*flip, fp, 50).ok);
  EXPECT_FALSE(fd::checkUpsilonF(*flip, fp, 1, 50).ok);
}

TEST(AxiomChecker, FlagsCorrectSetStableValue) {
  const auto fp = FailurePattern::failureFree(3);
  const auto bad = fd::makeScripted(
      "U=Pi", [](Pid, Time) { return ProcSet::full(3); }, 0);
  EXPECT_FALSE(fd::checkUpsilonF(*bad, fp, 2, 50).ok);
  // The same history IS legal when someone is faulty.
  const auto fp2 = FailurePattern::withCrashes(3, {{0, 5}});
  EXPECT_TRUE(fd::checkUpsilonF(*bad, fp2, 2, 50).ok);
}

TEST(AxiomChecker, FlagsAllFaultyOmegaSet) {
  const auto fp = FailurePattern::withCrashes(3, {{0, 2}});
  const auto bad = fd::makeScripted(
      "L={p1}", [](Pid, Time) { return ProcSet{0}; }, 0);
  EXPECT_FALSE(fd::checkOmegaK(*bad, fp, 1, 50).ok);
}

TEST(AxiomChecker, FlagsPrematureSuspicion) {
  const auto fp = FailurePattern::withCrashes(3, {{2, 40}});
  const auto eager = fd::makeScripted(
      "eager", [](Pid, Time) { return ProcSet{2}; }, 40);
  // As <>P: fine (suspicion before crash is allowed noise).
  EXPECT_TRUE(fd::checkEventuallyPerfect(*eager, fp, 100).ok);
  // As P: strong accuracy violated (p3 suspected while alive).
  EXPECT_FALSE(fd::checkEventuallyPerfect(*eager, fp, 100, true).ok);
}

}  // namespace
}  // namespace wfd
