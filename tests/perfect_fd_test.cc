// P and <>P (Chandra–Toueg [4]): axioms, the classic <>P -> Omega
// reduction, extraction of Upsilon from <>P through Fig. 3, and the
// Sect. 6.3 sample checker validating every shipped phi map.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::ConstantSigma;
using core::DetectorFamily;
using core::isFResilientSample;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;

// ---- Axioms ----

TEST(PerfectFd, TracksCrashesExactly) {
  const auto fp = FailurePattern::withCrashes(4, {{1, 10}, {3, 30}});
  const auto p = fd::makePerfect(fp);
  EXPECT_EQ(p->query(0, 0), ProcSet{});
  EXPECT_EQ(p->query(0, 10), ProcSet{1});
  EXPECT_EQ(p->query(2, 29), ProcSet{1});
  EXPECT_EQ(p->query(2, 30), (ProcSet{1, 3}));
  const auto rep = fd::checkEventuallyPerfect(*p, fp, 200, /*perfect=*/true);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST(EventuallyPerfectFd, AxiomsHold) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto fp = FailurePattern::random(5, 4, 60, seed * 19);
    const auto dp = fd::makeEventuallyPerfect(fp, 100, seed);
    const auto rep = fd::checkEventuallyPerfect(*dp, fp, 400);
    EXPECT_TRUE(rep.ok) << rep.violation;
    // <>P is stable, so it is in scope for Theorem 10.
    EXPECT_TRUE(fd::checkStable(*dp, fp, 400).ok);
  }
}

TEST(EventuallyPerfectFd, PerfectIsALegalEventuallyPerfectHistory) {
  const auto fp = FailurePattern::withCrashes(3, {{2, 25}});
  const auto p = fd::makePerfect(fp);
  EXPECT_TRUE(fd::checkEventuallyPerfect(*p, fp, 200).ok);
}

// ---- <>P -> Omega ----

TEST(DiamondPToOmega, ElectsSmallestCorrectProcess) {
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, 3, 50, seed * 5);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeEventuallyPerfect(fp, 100, seed);
    cfg.seed = seed;
    cfg.max_steps = 30'000;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value) { return core::diamondPToOmega(e); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    const auto rep = core::checkEmulatedOmega(rr);
    ASSERT_TRUE(rep.ok()) << rep.violation;
    EXPECT_EQ(rep.stable_value, ProcSet::singleton(fp.correct().min()));
  }
}

// ---- <>P -> Upsilon via Fig. 3 ----

TEST(Extraction, FromEventuallyPerfect) {
  const int n_plus_1 = 4;
  const int f = n_plus_1 - 1;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, f, 40, seed * 3 + 1);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeEventuallyPerfect(fp, 90, seed);
    cfg.seed = seed;
    cfg.max_steps = 60'000;
    const auto phi = core::phiEventuallyPerfect(n_plus_1, f);
    const auto rr = sim::runTask(
        cfg, [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    const auto rep = core::checkEmulatedUpsilonF(rr, f);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " correct "
                          << fp.correct().toString() << ": " << rep.violation;
  }
}

// ---- Sect. 6.3 sample checker: positive and negative controls ----

TEST(Samples, OmegaKControls) {
  const int n = 5, f = 4;
  // A 2-set intersecting the recurring set: a legitimate sample.
  EXPECT_TRUE(isFResilientSample(DetectorFamily::kOmegaK, n, f, 2,
                                 {ProcSet{0, 1}, ProcSet{1, 2, 3}}));
  // Disjoint from the recurring set: not a sample (phi's designation).
  EXPECT_FALSE(isFResilientSample(DetectorFamily::kOmegaK, n, f, 2,
                                  {ProcSet{0, 1}, ProcSet{2, 3, 4}}));
  // Wrong cardinality for Omega^2.
  EXPECT_FALSE(isFResilientSample(DetectorFamily::kOmegaK, n, f, 2,
                                  {ProcSet{0}, ProcSet{0, 1}}));
  // Too few recurring processes for the environment.
  EXPECT_FALSE(isFResilientSample(DetectorFamily::kOmegaK, n, 2, 2,
                                  {ProcSet{0, 1}, ProcSet{1}}));
}

TEST(Samples, EveryShippedPhiDesignatesANonSample) {
  const int n_plus_1 = 5;
  const auto all = ProcSet::full(n_plus_1);
  // phi[Omega^k] across k and all k-sized outputs d.
  for (int k = 1; k <= 4; ++k) {
    const int f = k;
    const auto phi = core::phiOmegaK(n_plus_1);
    for (std::uint64_t bits = 1; bits < (1u << n_plus_1); ++bits) {
      const ProcSet d = ProcSet::fromBits(bits);
      if (d.size() != k) continue;
      const auto r = phi->map(d);
      EXPECT_FALSE(isFResilientSample(
          DetectorFamily::kOmegaK, n_plus_1, f, static_cast<std::uint64_t>(k),
          {d, r.correct_sigma}))
          << "k=" << k << " d=" << d.toString();
      EXPECT_GE(r.correct_sigma.size(), n_plus_1 - f);
    }
  }
  // phi[Upsilon^f].
  for (int f = 1; f <= 4; ++f) {
    const auto phi = core::phiUpsilonSelf();
    for (std::uint64_t bits = 1; bits < (1u << n_plus_1); ++bits) {
      const ProcSet d = ProcSet::fromBits(bits);
      if (d.size() < n_plus_1 - f) continue;
      const auto r = phi->map(d);
      EXPECT_FALSE(isFResilientSample(DetectorFamily::kUpsilonF, n_plus_1, f,
                                      0, {d, r.correct_sigma}))
          << "f=" << f << " d=" << d.toString();
    }
  }
  // phi[anti-Omega] over singletons.
  for (Pid p = 0; p < n_plus_1; ++p) {
    const auto r = core::phiAntiOmega()->map(ProcSet::singleton(p));
    EXPECT_FALSE(isFResilientSample(DetectorFamily::kAntiOmegaStable,
                                    n_plus_1, n_plus_1 - 1, 0,
                                    {ProcSet::singleton(p), r.correct_sigma}));
  }
  // phi[<>P] over every suspicion set d (including empty).
  for (int f = 1; f <= 4; ++f) {
    const auto phi = core::phiEventuallyPerfect(n_plus_1, f);
    for (std::uint64_t bits = 0; bits < (1u << n_plus_1); ++bits) {
      const ProcSet d = ProcSet::fromBits(bits);
      if (d == all) continue;  // <>P never stabilizes on "all suspected"
                               // (some process is correct) — unreachable d
      const auto r = phi->map(d);
      EXPECT_FALSE(isFResilientSample(DetectorFamily::kEventuallyPerfect,
                                      n_plus_1, f, 0, {d, r.correct_sigma}))
          << "f=" << f << " d=" << d.toString();
      EXPECT_GE(r.correct_sigma.size(), n_plus_1 - f);
    }
  }
}

TEST(Samples, DummyHasNoPhi) {
  // For the dummy detector, the constant d = c makes EVERY sigma a
  // sample — precisely why no phi map (and no Fig. 3 extraction) can
  // exist for a trivial detector.
  const int n_plus_1 = 4;
  const ProcSet c{1, 2};
  for (std::uint64_t bits = 1; bits < (1u << n_plus_1); ++bits) {
    const ProcSet r = ProcSet::fromBits(bits);
    EXPECT_TRUE(isFResilientSample(DetectorFamily::kDummy, n_plus_1,
                                   n_plus_1 - 1, c.bits(), {c, r}));
  }
}

}  // namespace
}  // namespace wfd
