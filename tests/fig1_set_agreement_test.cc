// Theorem 2: the Fig. 1 protocol solves n-set agreement using Upsilon and
// registers, tolerating n crashes among n+1 processes. Swept across
// system sizes, Upsilon stabilization times, stable sets, crash patterns,
// schedules and snapshot flavors.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::upsilonSetAgreement;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;
using sim::SnapshotFlavor;

RunResult runFig1(int n_plus_1, const FailurePattern& fp, fd::FdPtr fd,
                  std::uint64_t seed, const std::vector<Value>& props,
                  SnapshotFlavor flavor = SnapshotFlavor::kNative,
                  Time max_steps = 3'000'000) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = std::move(fd);
  cfg.seed = seed;
  cfg.flavor = flavor;
  cfg.max_steps = max_steps;
  return sim::runTask(
      cfg, [](Env& e, Value v) { return upsilonSetAgreement(e, v); }, props);
}

struct Params {
  int n_plus_1;
  Time stab_time;
  SnapshotFlavor flavor;
};

class Fig1Sweep : public ::testing::TestWithParam<Params> {};

TEST_P(Fig1Sweep, FailureFreeRunsSatisfyTheorem2) {
  const auto [n_plus_1, stab, flavor] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    const auto rr =
        runFig1(n_plus_1, fp, fd::makeUpsilon(fp, stab, seed), seed, props,
                flavor);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation
                          << " (steps=" << rr.steps << ")";
  }
}

TEST_P(Fig1Sweep, RandomCrashesSatisfyTheorem2) {
  const auto [n_plus_1, stab, flavor] = GetParam();
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Up to n crashes (wait-free environment), at arbitrary times.
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1,
                                           stab + 500, seed * 13 + 5);
    const auto rr =
        runFig1(n_plus_1, fp, fd::makeUpsilon(fp, stab, seed), seed, props,
                flavor);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " correct "
                          << fp.correct().toString() << ": " << rep.violation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fig1Sweep,
    ::testing::Values(Params{2, 200, SnapshotFlavor::kNative},
                      Params{3, 0, SnapshotFlavor::kNative},
                      Params{3, 500, SnapshotFlavor::kNative},
                      Params{4, 1000, SnapshotFlavor::kNative},
                      Params{5, 2000, SnapshotFlavor::kNative},
                      Params{6, 1000, SnapshotFlavor::kNative},
                      Params{3, 500, SnapshotFlavor::kAfek},
                      Params{4, 800, SnapshotFlavor::kAfek}),
    [](const auto& info) {
      const Params& p = info.param;
      return "n" + std::to_string(p.n_plus_1) + "_stab" +
             std::to_string(p.stab_time) +
             (p.flavor == SnapshotFlavor::kAfek ? "_afek" : "_native");
    });

// Every legal stable set U for a 4-process failure-free run must let the
// protocol terminate (the paper quantifies over all Upsilon histories;
// we enumerate all stable sets != correct(F)).
TEST(Fig1, AllLegalStableSetsTerminate) {
  const int n_plus_1 = 4;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t bits = 1; bits < (1u << n_plus_1); ++bits) {
    const ProcSet u = ProcSet::fromBits(bits);
    if (u == fp.correct()) continue;  // illegal stable set
    const auto rr = runFig1(n_plus_1, fp,
                            fd::makeUpsilon(fp, u, /*stab_time=*/300, bits),
                            /*seed=*/bits, props);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "U=" << u.toString() << ": " << rep.violation;
  }
}

// With one crash the crashed process's value can be eliminated through
// the gladiator mechanism even when Upsilon outputs the whole universe.
TEST(Fig1, UniverseStableSetWithCrash) {
  const int n_plus_1 = 4;
  const auto fp = FailurePattern::withCrashes(n_plus_1, {{2, 400}});
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto rr = runFig1(
        n_plus_1, fp,
        fd::makeUpsilon(fp, ProcSet::full(n_plus_1), /*stab_time=*/200, seed),
        seed, props);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

// The Remark after Theorem 2: with at most n participants (one process
// never scheduled — indistinguishable from non-participation), every
// correct participant decides in round 1 via the first n-converge.
TEST(Fig1, TerminatesWithNonParticipant) {
  const int n_plus_1 = 4;
  // p4 crashes at time 0: it never takes a step, i.e. never participates.
  const auto fp = FailurePattern::withCrashes(n_plus_1, {{3, 0}});
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Upsilon never stabilizes within the run (huge stab time): round-1
    // termination must not depend on the detector.
    const auto rr = runFig1(n_plus_1, fp,
                            fd::makeUpsilon(fp, /*stab_time=*/1'000'000'000,
                                            seed),
                            seed, props, SnapshotFlavor::kNative,
                            /*max_steps=*/200'000);
    const auto rep = checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

// Deterministic replay: same seed => identical decision map and step count.
TEST(Fig1, DeterministicReplay) {
  const int n_plus_1 = 4;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  const auto props = test::distinctProposals(n_plus_1);
  const auto a = runFig1(n_plus_1, fp, fd::makeUpsilon(fp, 300, 9), 42, props);
  const auto b = runFig1(n_plus_1, fp, fd::makeUpsilon(fp, 300, 9), 42, props);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace wfd
