// Linearizability: (a) the checker itself against hand-built histories
// with known verdicts; (b) real runs of both snapshot flavors and the
// MWMR construction, whose recorded histories must all linearize; (c) a
// deliberately non-atomic "single collect" scan whose histories the
// checker must reject — demonstrating both that the property is
// non-trivial and that the checker can see violations.
#include <gtest/gtest.h>

#include "memory/linearizability.h"
#include "memory/snapshot.h"
#include "test_util.h"

namespace wfd {
namespace {

using mem::isLinearizableRegister;
using mem::isLinearizableSnapshot;
using mem::OpRecord;
using sim::Coro;
using sim::Env;
using sim::RunConfig;
using sim::SnapshotFlavor;
using sim::Unit;

OpRecord write(Pid p, Time inv, Time res, Value v) {
  OpRecord r;
  r.pid = p;
  r.inv = inv;
  r.res = res;
  r.kind = OpRecord::Kind::kWrite;
  r.value = RegVal(v);
  return r;
}
OpRecord read(Pid p, Time inv, Time res, Value v) {
  OpRecord r = write(p, inv, res, v);
  r.kind = OpRecord::Kind::kRead;
  return r;
}
OpRecord readBottom(Pid p, Time inv, Time res) {
  OpRecord r;
  r.pid = p;
  r.inv = inv;
  r.res = res;
  r.kind = OpRecord::Kind::kRead;
  return r;
}

// ---- checker vs known verdicts ----

TEST(LinCheckerRegister, AcceptsSequentialHistory) {
  EXPECT_TRUE(isLinearizableRegister(
      {write(0, 0, 1, 7), read(1, 2, 3, 7), write(0, 4, 5, 9),
       read(1, 6, 7, 9)}));
}

TEST(LinCheckerRegister, AcceptsConcurrentOverlap) {
  // Read overlaps the write: both old and new value are acceptable.
  EXPECT_TRUE(isLinearizableRegister({write(0, 0, 10, 7), read(1, 5, 6, 7)}));
  EXPECT_TRUE(isLinearizableRegister({write(0, 0, 10, 7), readBottom(1, 5, 6)}));
}

TEST(LinCheckerRegister, RejectsStaleReadAfterCompletedWrite) {
  // The write finished before the read began; ⊥ is no longer possible.
  EXPECT_FALSE(
      isLinearizableRegister({write(0, 0, 1, 7), readBottom(1, 2, 3)}));
}

TEST(LinCheckerRegister, RejectsNewOldInversion) {
  // Two sequential reads observing new-then-old.
  EXPECT_FALSE(isLinearizableRegister(
      {write(0, 0, 1, 1), write(0, 2, 3, 2), read(1, 4, 5, 2),
       read(1, 6, 7, 1)}));
}

OpRecord update(Pid p, Time inv, Time res, int slot, Value v) {
  OpRecord r;
  r.pid = p;
  r.inv = inv;
  r.res = res;
  r.kind = OpRecord::Kind::kUpdate;
  r.slot = slot;
  r.value = RegVal(v);
  return r;
}
OpRecord scan(Pid p, Time inv, Time res, std::vector<Value> vals) {
  OpRecord r;
  r.pid = p;
  r.inv = inv;
  r.res = res;
  r.kind = OpRecord::Kind::kScan;
  for (Value v : vals) {
    r.view.push_back(v == kBottomValue ? RegVal() : RegVal(v));
  }
  return r;
}

TEST(LinCheckerSnapshot, AcceptsAtomicViews) {
  EXPECT_TRUE(isLinearizableSnapshot(
      {update(0, 0, 1, 0, 1), update(1, 2, 3, 1, 2),
       scan(2, 4, 5, {1, 2})},
      2));
}

TEST(LinCheckerSnapshot, RejectsTornView) {
  // slot0 was written strictly before slot1, so a view with slot1's new
  // value but slot0 still ⊥ is torn.
  EXPECT_FALSE(isLinearizableSnapshot(
      {update(0, 0, 1, 0, 1), update(0, 2, 3, 1, 2),
       scan(1, 4, 5, {kBottomValue, 2})},
      2));
}

// ---- real runs linearize ----

// Each process performs updates and scans on one snapshot object,
// wrapping every operation in invoke/response notes for offline
// extraction.
Coro<Unit> snapWorker(Env& env, SnapshotFlavor flavor, int rounds, Value base) {
  const auto h =
      mem::makeSnapshot(sim::ObjKey{"lin.snap"}, env.nProcs(), flavor);
  for (int r = 1; r <= rounds; ++r) {
    env.note("inv.update", RegVal(base + r));
    co_await mem::snapshotUpdate(env, h, env.me(), RegVal(base + r));
    env.note("res.update", RegVal(base + r));
    env.note("inv.scan");
    auto view = co_await mem::snapshotScan(env, h);
    env.note("res.scan", RegVal::tuple(std::move(view)));
  }
  co_return Unit{};
}

std::vector<OpRecord> extractSnapshotHistory(const sim::RunResult& rr) {
  std::vector<OpRecord> out;
  std::map<Pid, std::pair<Time, RegVal>> open;  // pid -> (inv time, arg)
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label.rfind("inv.", 0) == 0) {
      open[e.pid] = {e.time, e.value};
    } else if (e.label == "res.update") {
      OpRecord r;
      r.pid = e.pid;
      r.inv = open[e.pid].first;
      r.res = e.time;
      r.kind = OpRecord::Kind::kUpdate;
      r.slot = e.pid;
      r.value = open[e.pid].second;
      out.push_back(std::move(r));
    } else if (e.label == "res.scan") {
      OpRecord r;
      r.pid = e.pid;
      r.inv = open[e.pid].first;
      r.res = e.time;
      r.kind = OpRecord::Kind::kScan;
      const auto& t = e.value.asTuple();
      r.view.assign(t.begin(), t.end());
      out.push_back(std::move(r));
    }
  }
  return out;
}

class SnapshotLinearizability
    : public ::testing::TestWithParam<SnapshotFlavor> {};

TEST_P(SnapshotLinearizability, RealRunsLinearize) {
  const int n_plus_1 = 3;
  const int rounds = 3;  // 18 ops: within the checker's budget
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.flavor = GetParam();
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg,
        [&](Env& e, Value v) { return snapWorker(e, GetParam(), rounds, v); },
        test::distinctProposals(n_plus_1));
    ASSERT_TRUE(rr.all_correct_done);
    const auto history = extractSnapshotHistory(rr);
    ASSERT_EQ(history.size(), static_cast<std::size_t>(n_plus_1 * rounds * 2));
    EXPECT_TRUE(isLinearizableSnapshot(history, n_plus_1))
        << "seed " << seed << " flavor "
        << (GetParam() == SnapshotFlavor::kAfek ? "afek" : "native");
  }
}

INSTANTIATE_TEST_SUITE_P(Flavors, SnapshotLinearizability,
                         ::testing::Values(SnapshotFlavor::kNative,
                                           SnapshotFlavor::kAfek),
                         [](const auto& info) {
                           return info.param == SnapshotFlavor::kAfek
                                      ? "afek"
                                      : "native";
                         });

// ---- negative control: a single-collect "snapshot" is not atomic ----

Coro<std::vector<RegVal>> brokenScan(Env& env, int slots) {
  std::vector<RegVal> out;
  for (int j = 0; j < slots; ++j) {
    sim::ObjKey k{"lin.broken"};
    k.append("#c");
    k.append(j);
    out.push_back((co_await env.read(env.reg(k))).scalar);
  }
  co_return out;
}

Coro<Unit> brokenWriter(Env& env) {
  // Write slot 0 then slot 1, strictly sequentially (the yield keeps the
  // two operations' recorded intervals disjoint in real time).
  for (int j = 0; j < 2; ++j) {
    if (j > 0) co_await env.yield();
    sim::ObjKey k{"lin.broken"};
    k.append("#c");
    k.append(j);
    env.note("inv.update", RegVal(Value{j + 1}));
    co_await env.write(env.reg(k), RegVal(Value{j + 1}));
    env.note("res.update", RegVal(Value{j + 1}));
  }
  co_return Unit{};
}

Coro<Unit> brokenScanner(Env& env) {
  env.note("inv.scan");
  auto view = co_await brokenScan(env, 2);
  env.note("res.scan", RegVal::tuple(std::move(view)));
  co_return Unit{};
}

TEST(SnapshotLinearizability, SingleCollectScanViolates) {
  // Schedule: scanner reads slot0 (⊥), writer writes both slots,
  // scanner reads slot1 (=2) -> torn view (⊥, 2).
  RunConfig cfg;
  cfg.n_plus_1 = 2;
  sim::Run run(cfg,
               [](Env& e, Value) -> Coro<Unit> {
                 if (e.me() == 0) return brokenWriter(e);
                 return brokenScanner(e);
               },
               {0, 0});
  sim::ScriptedPolicy policy({1, 0, 0, 0, 1},
                             std::make_unique<sim::RoundRobinPolicy>());
  const Time taken = run.scheduler().run(policy, 1000);
  const auto rr = run.finish(taken);
  // Reconstruct: updates by p1 with slots 0/1, one scan by p2.
  std::vector<OpRecord> history;
  std::map<Pid, std::pair<Time, RegVal>> open;
  int next_slot = 0;
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label.rfind("inv.", 0) == 0) {
      open[e.pid] = {e.time, e.value};
    } else if (e.label == "res.update") {
      OpRecord r;
      r.pid = e.pid;
      r.inv = open[e.pid].first;
      r.res = e.time;
      r.kind = OpRecord::Kind::kUpdate;
      r.slot = next_slot++;
      r.value = open[e.pid].second;
      history.push_back(std::move(r));
    } else if (e.label == "res.scan") {
      OpRecord r;
      r.pid = e.pid;
      r.inv = open[e.pid].first;
      r.res = e.time;
      r.kind = OpRecord::Kind::kScan;
      const auto& t = e.value.asTuple();
      r.view.assign(t.begin(), t.end());
      history.push_back(std::move(r));
    }
  }
  ASSERT_EQ(history.size(), 3u);
  EXPECT_FALSE(isLinearizableSnapshot(history, 2))
      << "the torn view should be rejected";
}

}  // namespace
}  // namespace wfd
