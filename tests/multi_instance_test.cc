// Multi-instance set agreement (the long-lived API) and scale: many
// epochs, many processes, detectors shared across instances.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.h"

namespace wfd {
namespace {

using core::upsilonSetAgreementInstance;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> epochWorker(Env& env, int epochs, Value base) {
  for (int e = 1; e <= epochs; ++e) {
    const Value got = co_await upsilonSetAgreementInstance(
        env, e, base * 100 + e);
    env.note("ep" + std::to_string(e), RegVal(got));
  }
  co_return Unit{};
}

struct EpochStats {
  std::map<int, std::set<Value>> decided;
  std::map<int, int> reporters;
};

EpochStats harvest(const sim::RunResult& rr) {
  EpochStats st;
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote || e.label.rfind("ep", 0) != 0) {
      continue;
    }
    const int epoch = std::stoi(e.label.substr(2));
    st.decided[epoch].insert(e.value.asInt());
    ++st.reporters[epoch];
  }
  return st;
}

TEST(MultiInstance, EveryEpochRespectsTheBound) {
  const int n_plus_1 = 4;
  const int epochs = 6;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 2000,
                                           seed * 3 + 2);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, 300, seed);
    cfg.seed = seed;
    cfg.max_steps = 3'000'000;
    const auto rr = sim::runTask(
        cfg,
        [epochs](Env& e, Value) {
          return epochWorker(e, epochs, e.me() + 1);
        },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    ASSERT_TRUE(rr.all_correct_done) << "seed " << seed;
    const auto st = harvest(rr);
    for (int e = 1; e <= epochs; ++e) {
      EXPECT_LE(static_cast<int>(st.decided.at(e).size()), n_plus_1 - 1)
          << "epoch " << e << " seed " << seed;
      // Decisions are someone's proposal for that very epoch.
      for (Value v : st.decided.at(e)) {
        EXPECT_EQ(v % 100, e);
        EXPECT_GE(v / 100, 1);
        EXPECT_LE(v / 100, n_plus_1);
      }
    }
  }
}

TEST(MultiInstance, InstancesAreIsolated) {
  // A value proposed only in epoch 1 must never be decided in epoch 2.
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 100, 5);
  cfg.seed = 5;
  const auto rr = sim::runTask(
      cfg,
      [](Env& e, Value) -> Coro<Unit> {
        const Value a =
            co_await upsilonSetAgreementInstance(e, 1, 1000 + e.me());
        const Value b =
            co_await upsilonSetAgreementInstance(e, 2, 2000 + e.me());
        e.note("a", RegVal(a));
        e.note("b", RegVal(b));
        co_return Unit{};
      },
      {0, 0, 0});
  ASSERT_TRUE(rr.all_correct_done);
  for (const auto& e : rr.trace().events()) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label == "a") {
      EXPECT_LT(e.value.asInt(), 2000);
    }
    if (e.label == "b") {
      EXPECT_GE(e.value.asInt(), 2000);
    }
  }
}

TEST(Scale, SixteenProcessesDecide) {
  const int n_plus_1 = 16;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 500,
                                           seed * 11);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, 400, seed);
    cfg.seed = seed;
    cfg.max_steps = 8'000'000;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
        props);
    const auto rep = core::checkKSetAgreement(rr, n_plus_1 - 1, props);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

TEST(Scale, FortyProcessesNearProcSetLimit) {
  const int n_plus_1 = 40;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::failureFree(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 200, 1);
  cfg.seed = 1;
  cfg.max_steps = 20'000'000;
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
      props);
  const auto rep = core::checkKSetAgreement(rr, n_plus_1 - 1, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

TEST(Scale, Fig2WideGrid) {
  const int n_plus_1 = 12;
  const int f = 5;
  const auto props = test::distinctProposals(n_plus_1);
  const auto fp = FailurePattern::random(n_plus_1, f, 500, 77);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilonF(fp, f, 400, 2);
  cfg.seed = 2;
  cfg.max_steps = 8'000'000;
  const auto rr = sim::runTask(
      cfg, [f](Env& e, Value v) { return core::upsilonFSetAgreement(e, f, v); },
      props);
  const auto rep = core::checkKSetAgreement(rr, f, props);
  EXPECT_TRUE(rep.ok()) << rep.violation;
}

}  // namespace
}  // namespace wfd
