// Step-auditor conformance tests (docs/ANALYSIS.md §1).
//
// Two obligations per audited rule: DETECTION — a deliberately violating
// automaton makes exactly that rule fire, with a structured diagnostic —
// and NON-INTERFERENCE — every legal algorithm runs audit-clean with a
// trace hash identical to its unaudited run (the auditor observes, never
// perturbs).
#include <gtest/gtest.h>

#include "test_util.h"
#include "wfd.h"

namespace wfd {
namespace {

using sim::AuditMode;
using sim::AuditRule;
using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::ObjKey;
using sim::RunConfig;
using sim::StepAuditError;
using sim::Unit;

// ---- Deliberately violating automata ------------------------------------

// One legal awaited write, then a second operation smuggled into the SAME
// atomic step by calling World::execute directly from local computation.
Coro<Unit> rogueTwoOpsPerStep(Env& env) {
  const ObjId r = env.reg(ObjKey{"rogue.two", env.me()});
  co_await env.write(r, RegVal(Value{1}));
  env.world()->execute(env.me(), sim::OpWrite{r, RegVal(Value{2})});
  co_await env.yield();
  co_return Unit{};
}

// Mutates the object table directly, bypassing the atomic-step machinery
// (no operation is ever declared to the scheduler for this write).
Coro<Unit> rogueDirectTableWrite(Env& env) {
  const ObjId r = env.reg(ObjKey{"rogue.direct", env.me()});
  co_await env.yield();
  env.world()->objects().write(r, RegVal(Value{42}));
  co_await env.yield();
  co_return Unit{};
}

// Applies a register read to a snapshot object: object-kind discipline.
Coro<Unit> rogueReadSnapshotAsRegister(Env& env) {
  const ObjId s = env.snap(ObjKey{"rogue.kind"}, env.nProcs());
  co_await env.read(s);  // wrong kind: OpRead on a snapshot object
  co_return Unit{};
}

// Everyone proposes to a 1-ported consensus object: port discipline.
Coro<Unit> rogueOverSubscribedConsensus(Env& env) {
  const ObjId c = env.cons(ObjKey{"rogue.ports"}, 1);
  co_await env.consPropose(c, RegVal(Value{env.me()}));
  co_return Unit{};
}

// Queries the FD twice within one atomic step: the second query happens
// at the same world time, breaking per-process query-time monotonicity.
Coro<Unit> rogueDoubleFdQuery(Env& env) {
  co_await env.queryFd();
  env.world()->execute(env.me(), sim::OpFdQuery{});
  co_await env.yield();
  co_return Unit{};
}

RunConfig collectCfg(int n_plus_1) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.audit = AuditMode::kCollect;
  cfg.max_steps = 10'000;
  return cfg;
}

std::vector<Value> zeros(int n) {
  return std::vector<Value>(static_cast<std::size_t>(n), 0);
}

// ---- Detection: each rule fires on its violating automaton --------------

TEST(StepAudit, MultiOpFires) {
  const auto rr = sim::runTask(
      collectCfg(2), [](Env& e, Value) { return rogueTwoOpsPerStep(e); },
      zeros(2));
  ASSERT_NE(rr.audit(), nullptr);
  EXPECT_FALSE(rr.audit()->clean());
  EXPECT_TRUE(rr.audit()->sawRule(AuditRule::kMultiOp));
  // The model allows one shared-object op per step: the smuggled write
  // must be flagged as operation #2, never as unrouted (it did go through
  // World::execute).
  EXPECT_FALSE(rr.audit()->sawRule(AuditRule::kUnroutedAccess));
}

TEST(StepAudit, UnroutedAccessFires) {
  const auto rr = sim::runTask(
      collectCfg(2), [](Env& e, Value) { return rogueDirectTableWrite(e); },
      zeros(2));
  ASSERT_NE(rr.audit(), nullptr);
  EXPECT_TRUE(rr.audit()->sawRule(AuditRule::kUnroutedAccess));
}

TEST(StepAudit, KindMismatchThrows) {
  RunConfig cfg = collectCfg(2);
  cfg.audit = AuditMode::kThrow;  // must preempt the object table's assert
  try {
    sim::runTask(cfg,
                 [](Env& e, Value) { return rogueReadSnapshotAsRegister(e); },
                 zeros(2));
    FAIL() << "expected StepAuditError";
  } catch (const StepAuditError& err) {
    EXPECT_EQ(err.violation.rule, AuditRule::kKindMismatch);
    EXPECT_NE(err.violation.message.find("non-register"), std::string::npos)
        << err.violation.message;
  }
}

TEST(StepAudit, PortOverflowThrows) {
  RunConfig cfg = collectCfg(2);
  cfg.audit = AuditMode::kThrow;
  cfg.policy = sim::PolicyKind::kRoundRobin;  // both processes get a turn
  try {
    sim::runTask(
        cfg, [](Env& e, Value) { return rogueOverSubscribedConsensus(e); },
        zeros(2));
    FAIL() << "expected StepAuditError";
  } catch (const StepAuditError& err) {
    EXPECT_EQ(err.violation.rule, AuditRule::kPortOverflow);
    EXPECT_EQ(err.violation.pid, 1);  // the second distinct proposer
  }
}

TEST(StepAudit, CrashedStepThrows) {
  RunConfig cfg = collectCfg(2);
  cfg.audit = AuditMode::kThrow;
  cfg.fp = FailurePattern::withCrashes(2, {{0, 0}});  // p1 in F(0)
  sim::Run run(
      cfg, [](Env& e, Value) { return rogueTwoOpsPerStep(e); }, zeros(2));
  // Drive the scheduler by hand into the forbidden step: p1 is crashed
  // from time 0, so scheduling it violates run condition (1).
  try {
    run.scheduler().step(0);
    FAIL() << "expected StepAuditError";
  } catch (const StepAuditError& err) {
    EXPECT_EQ(err.violation.rule, AuditRule::kCrashedStep);
    EXPECT_EQ(err.violation.pid, 0);
  }
}

TEST(StepAudit, FdNonMonotoneFires) {
  RunConfig cfg = collectCfg(2);
  const auto fp = FailurePattern::failureFree(2);
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 10, 1);
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value) { return rogueDoubleFdQuery(e); }, zeros(2));
  ASSERT_NE(rr.audit(), nullptr);
  EXPECT_TRUE(rr.audit()->sawRule(AuditRule::kFdNonMonotone));
  EXPECT_TRUE(rr.audit()->sawRule(AuditRule::kMultiOp));  // same smuggle
}

// ---- Diagnostics carry pid, step index, and an op trace tail ------------

TEST(StepAudit, ViolationDiagnosticIsStructured) {
  const auto rr = sim::runTask(
      collectCfg(3), [](Env& e, Value) { return rogueTwoOpsPerStep(e); },
      zeros(3));
  ASSERT_NE(rr.audit(), nullptr);
  ASSERT_FALSE(rr.audit()->violations().empty());
  const auto& v = rr.audit()->violations().front();
  EXPECT_GE(v.pid, 0);
  EXPECT_LT(v.pid, 3);
  EXPECT_GE(v.time, 0);
  EXPECT_FALSE(v.message.empty());
  EXPECT_FALSE(v.trail.empty());  // the op trace tail
  const std::string s = v.toString();
  EXPECT_NE(s.find("multi-op"), std::string::npos) << s;
  EXPECT_NE(s.find("op trail"), std::string::npos) << s;
  EXPECT_NE(rr.audit()->report().find("violation"), std::string::npos);
}

// ---- Non-interference: legal algorithms are audit-clean and unchanged ---

struct LegalCase {
  const char* name;
  sim::RunConfig cfg;
  sim::AlgoFn algo;
  std::vector<Value> props;
};

std::vector<LegalCase> legalCases() {
  std::vector<LegalCase> cases;
  {
    LegalCase c;
    c.name = "fig1";
    c.cfg.n_plus_1 = 4;
    const auto fp = FailurePattern::withCrashes(4, {{2, 60}});
    c.cfg.fp = fp;
    c.cfg.fd = fd::makeUpsilon(fp, 100, 3);
    c.cfg.seed = 3;
    c.algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
    c.props = test::distinctProposals(4);
    cases.push_back(std::move(c));
  }
  {
    LegalCase c;
    c.name = "fig2";
    c.cfg.n_plus_1 = 4;
    const auto fp = FailurePattern::failureFree(4);
    c.cfg.fp = fp;
    c.cfg.fd = fd::makeUpsilonF(fp, 2, 80, 7);
    c.cfg.seed = 7;
    c.algo = [](Env& e, Value v) {
      return core::upsilonFSetAgreement(e, 2, v);
    };
    c.props = test::distinctProposals(4);
    cases.push_back(std::move(c));
  }
  {
    LegalCase c;
    c.name = "fig3";
    c.cfg.n_plus_1 = 3;
    const auto fp = FailurePattern::failureFree(3);
    c.cfg.fp = fp;
    c.cfg.fd = fd::makeOmega(fp, 50, 2);
    c.cfg.seed = 2;
    c.cfg.max_steps = 30'000;
    const auto phi = core::phiOmegaK(3);
    c.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
    c.props = zeros(3);
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(StepAudit, LegalAlgorithmsAreCleanAndHashIdentical) {
  for (auto& c : legalCases()) {
    RunConfig plain = c.cfg;
    plain.audit = std::nullopt;
    // Guard against ambient WFD_AUDIT while measuring the baseline: an
    // explicit collect request is compared against an explicit baseline.
    const auto off = sim::runTask(plain, c.algo, c.props);

    RunConfig audited = c.cfg;
    audited.audit = AuditMode::kCollect;
    const auto on = sim::runTask(audited, c.algo, c.props);

    ASSERT_NE(on.audit(), nullptr) << c.name;
    EXPECT_TRUE(on.audit()->clean())
        << c.name << ": " << on.audit()->report();
    EXPECT_GT(on.audit()->stepsAudited(), 0) << c.name;
    EXPECT_EQ(off.trace().hash64(), on.trace().hash64())
        << c.name << ": auditor perturbed the run";
    EXPECT_EQ(off.decisions, on.decisions) << c.name;
  }
}

// Throw mode is equally silent on legal runs (nothing to throw).
TEST(StepAudit, ThrowModeSilentOnLegalRun) {
  for (auto& c : legalCases()) {
    RunConfig cfg = c.cfg;
    cfg.audit = AuditMode::kThrow;
    EXPECT_NO_THROW({
      const auto rr = sim::runTask(cfg, c.algo, c.props);
      ASSERT_NE(rr.audit(), nullptr);
      EXPECT_TRUE(rr.audit()->clean());
    }) << c.name;
  }
}

}  // namespace
}  // namespace wfd
