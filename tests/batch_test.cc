// Parallel batch-run engine (sim/batch.h): the determinism contract in
// docs/PARALLEL.md, mechanically.
//
//   * batch-vs-serial trace-hash equality over E1/E3/E16-shaped workloads
//     (plain runTask cells, watched extraction cells, chaos cells);
//   * submission-order preservation at every pool size;
//   * exception isolation: one structurally broken cell yields a
//     structured error result while every other cell completes;
//   * jobs=1 equivalence to the plain serial loop (runTask/runChaosTask);
//   * FdCache: keyed sharing, hit/miss accounting, and hash-identical
//     runs off a cache-served detector.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::upsilonSetAgreement;
using sim::BatchCell;
using sim::BatchOptions;
using sim::BatchRunner;
using sim::CellResult;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::RunConfig;
using sim::RunVerdict;
using sim::WatchdogConfig;

// E1-shaped plain cell: Fig. 1 Upsilon n-set agreement under runTask.
BatchCell fig1Cell(std::uint64_t seed, int n_plus_1 = 4) {
  BatchCell cell;
  cell.cfg.n_plus_1 = n_plus_1;
  cell.cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 50}});
  cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 150, seed);
  cell.cfg.seed = seed;
  cell.algo = [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
  cell.proposals = test::distinctProposals(n_plus_1);
  return cell;
}

// E3-shaped watched cell: Fig. 3 extraction runs forever; the watchdog
// cuts it off with a structured budget verdict.
BatchCell fig3Cell(std::uint64_t seed) {
  const auto phi = core::phiOmegaK(4);
  BatchCell cell;
  cell.cfg.n_plus_1 = 4;
  cell.cfg.fp = FailurePattern::withCrashes(4, {{3, 60}});
  cell.cfg.fd = fd::makeOmega(*cell.cfg.fp, 120, seed);
  cell.cfg.seed = seed;
  cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
  cell.proposals = std::vector<Value>(4, 0);
  cell.watchdog = WatchdogConfig{/*step_budget=*/8'000, 0, 0};
  return cell;
}

// E16-shaped chaos cell: legal injector composition over Fig. 1.
BatchCell chaosCell(std::uint64_t seed) {
  BatchCell cell = fig1Cell(seed);
  cell.cfg.fd =
      fd::makeUpsilon(*cell.cfg.fp, ProcSet::full(4), /*stab=*/250, seed);
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.max_faulty = 2;
  chaos.crashes.push_back({CrashInjection::Strategy::kRandom, -1, 0,
                           /*horizon=*/800, /*count=*/1, seed * 7});
  chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed * 31};
  cell.chaos = chaos;
  cell.watchdog = WatchdogConfig{3'000'000, 0, 3};
  return cell;
}

std::vector<BatchCell> mixedCells() {
  std::vector<BatchCell> cells;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) cells.push_back(fig1Cell(seed));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) cells.push_back(fig3Cell(seed));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) cells.push_back(chaosCell(seed));
  return cells;
}

TEST(Batch, BatchMatchesSerialOverAllWorkloadShapes) {
  const auto cells = mixedCells();
  const auto serial = BatchRunner(BatchOptions{1}).run(cells);
  const auto parallel = BatchRunner(BatchOptions{4}).run(cells);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_FALSE(serial[i].error) << serial[i].detail;
    ASSERT_FALSE(parallel[i].error) << parallel[i].detail;
    EXPECT_EQ(serial[i].trace_hash, parallel[i].trace_hash) << "cell " << i;
    EXPECT_EQ(serial[i].steps, parallel[i].steps) << "cell " << i;
    EXPECT_EQ(serial[i].verdict, parallel[i].verdict) << "cell " << i;
    EXPECT_EQ(serial[i].decisions, parallel[i].decisions) << "cell " << i;
  }
}

TEST(Batch, Jobs1MatchesThePlainSerialLoop) {
  // The batch path must be the exact serial code path: compare against
  // direct runTask / runChaosTask calls, not just against itself.
  const auto plain = fig1Cell(11);
  const auto rr = sim::runTask(plain.cfg, plain.algo, plain.proposals);
  const auto res = BatchRunner(BatchOptions{1}).run({plain});
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].trace_hash, rr.trace().hash64());
  EXPECT_EQ(res[0].steps, rr.steps);
  EXPECT_EQ(res[0].decisions, rr.decisions);
  EXPECT_EQ(res[0].distinct_decisions, rr.distinctDecisions());

  const auto chaos = chaosCell(11);
  const auto rep = sim::runChaosTask(chaos.cfg, *chaos.chaos, *chaos.watchdog,
                                     chaos.algo, chaos.proposals);
  const auto cres = BatchRunner(BatchOptions{1}).run({chaos});
  ASSERT_EQ(cres.size(), 1u);
  EXPECT_EQ(cres[0].verdict, rep.verdict);
  EXPECT_EQ(cres[0].steps, rep.steps);
  EXPECT_EQ(cres[0].trace_hash, rep.result.trace().hash64());
}

TEST(Batch, ResultsComeBackInSubmissionOrder) {
  // Deliberately heterogeneous durations: long extraction cells first,
  // tiny agreement cells last, so completion order inverts submission
  // order under any pool — the results vector must not care.
  std::vector<BatchCell> cells;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) cells.push_back(fig3Cell(seed));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    cells.push_back(fig1Cell(seed, 3));
  }
  const auto expected = BatchRunner(BatchOptions{1}).run(cells);
  const auto got = BatchRunner(BatchOptions{4}).run(cells);
  ASSERT_EQ(got.size(), cells.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, i);
    EXPECT_EQ(got[i].trace_hash, expected[i].trace_hash) << "slot " << i;
  }
  // First three slots are the watched budget cutoffs, the rest decided.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].verdict, RunVerdict::kBudgetExhausted);
  }
  for (std::size_t i = 3; i < got.size(); ++i) {
    EXPECT_EQ(got[i].verdict, RunVerdict::kOk);
    EXPECT_TRUE(got[i].all_correct_done);
  }
}

TEST(Batch, OneThrowingCellIsIsolatedStructurally) {
  std::vector<BatchCell> cells;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cells.push_back(fig1Cell(seed));
  }
  // Structurally broken: proposal arity mismatches n+1, so Run's
  // constructor throws SimAbort before any stepping.
  cells[2].proposals = {1, 2};
  const auto res = BatchRunner(BatchOptions{3}).run(cells);
  ASSERT_EQ(res.size(), cells.size());
  EXPECT_TRUE(res[2].error);
  EXPECT_NE(res[2].detail.find("proposals"), std::string::npos)
      << res[2].detail;
  for (const std::size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_FALSE(res[i].error) << res[i].detail;
    EXPECT_EQ(res[i].verdict, RunVerdict::kOk);
    EXPECT_NE(res[i].trace_hash, 0u);
  }
}

TEST(Batch, GeneratorFormMatchesVectorForm) {
  const auto cells = mixedCells();
  const BatchRunner runner(BatchOptions{4});
  const auto from_vector = runner.run(cells);
  const auto from_gen = runner.run(
      cells.size(), [&cells](std::size_t i) { return cells[i]; });
  ASSERT_EQ(from_gen.size(), from_vector.size());
  for (std::size_t i = 0; i < from_gen.size(); ++i) {
    EXPECT_EQ(from_gen[i].trace_hash, from_vector[i].trace_hash);
    EXPECT_EQ(from_gen[i].verdict, from_vector[i].verdict);
  }
}

TEST(Batch, GeneratorExceptionIsIsolatedToo) {
  const BatchRunner runner(BatchOptions{2});
  const auto res = runner.run(4, [](std::size_t i) -> BatchCell {
    if (i == 1) throw sim::SimAbort("generator refused cell 1");
    return fig1Cell(i + 1);
  });
  ASSERT_EQ(res.size(), 4u);
  EXPECT_TRUE(res[1].error);
  EXPECT_NE(res[1].detail.find("refused"), std::string::npos);
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_FALSE(res[i].error) << res[i].detail;
  }
}

TEST(Batch, PostHookRunsOnWorkerAndFillsMetrics) {
  auto cell = fig1Cell(5);
  const auto props = cell.proposals;
  cell.post = [props](const sim::RunReport& rep, CellResult& out) {
    const auto check = core::checkKSetAgreement(rep.result, 3, props);
    out.check_ok = check.ok();
    out.check_detail = check.violation;
    out.metrics["distinct"] = check.distinct;
  };
  const auto res = BatchRunner(BatchOptions{2}).run({cell, cell, cell});
  for (const auto& r : res) {
    ASSERT_FALSE(r.error) << r.detail;
    EXPECT_TRUE(r.check_ok) << r.check_detail;
    ASSERT_TRUE(r.metrics.count("distinct"));
    EXPECT_EQ(static_cast<int>(r.metrics.at("distinct")),
              r.distinct_decisions);
  }
}

TEST(Batch, DriveWatchedBatchDefaultsAWatchdog) {
  // Cells without chaos/watchdog get WatchdogConfig{} under
  // driveWatchedBatch: same schedule as Scheduler::run, structured verdict.
  std::vector<BatchCell> cells{fig1Cell(3), chaosCell(4)};
  const auto res = sim::driveWatchedBatch(cells, BatchOptions{2});
  ASSERT_EQ(res.size(), 2u);
  EXPECT_FALSE(res[0].error) << res[0].detail;
  EXPECT_EQ(res[0].verdict, RunVerdict::kOk);
  const auto plain = sim::runTask(cells[0].cfg, cells[0].algo,
                                  cells[0].proposals);
  EXPECT_EQ(res[0].trace_hash, plain.trace().hash64());
  EXPECT_FALSE(res[1].error) << res[1].detail;
}

TEST(Batch, ResolveJobsAndRunnerDefaults) {
  EXPECT_GE(sim::resolveJobs(0), 1);
  EXPECT_EQ(sim::resolveJobs(7), 7);
  EXPECT_GE(BatchRunner().jobs(), 1);
  // Empty batch is a no-op, not a hang.
  EXPECT_TRUE(BatchRunner(BatchOptions{4}).run({}).empty());
}

// ---- FdCache ----

TEST(FdCache, SameKeySharesOneInstance) {
  sim::FdCache cache;
  const auto fp = FailurePattern::withCrashes(4, {{3, 60}});
  const auto a = cache.upsilon(fp, 150, 9);
  const auto b = cache.upsilon(fp, 150, 9);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FdCache, DistinctKeysDistinctInstances) {
  sim::FdCache cache;
  const auto fp1 = FailurePattern::withCrashes(4, {{3, 60}});
  const auto fp2 = FailurePattern::withCrashes(4, {{3, 61}});
  const auto base = cache.upsilon(fp1, 150, 9);
  EXPECT_NE(base.get(), cache.upsilon(fp2, 150, 9).get());  // pattern
  EXPECT_NE(base.get(), cache.upsilon(fp1, 151, 9).get());  // stab
  EXPECT_NE(base.get(), cache.upsilon(fp1, 150, 8).get());  // seed
  EXPECT_NE(base.get(), cache.upsilonF(fp1, 3, 150, 9).get());  // family
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 5u);
}

TEST(FdCache, CachedDetectorReplaysRunsHashIdentically) {
  // A run off the cache-served history must hash exactly like a run off a
  // freshly built one: the cache changes construction cost, never output.
  sim::FdCache cache;
  auto cell = fig1Cell(21);
  auto cached = cell;
  cached.cfg.fd = cache.upsilon(*cell.cfg.fp, 150, 21);
  auto cached_again = cell;
  cached_again.cfg.fd = cache.upsilon(*cell.cfg.fp, 150, 21);
  const auto res = BatchRunner(BatchOptions{3}).run(
      {cell, cached, cached_again});
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].trace_hash, res[1].trace_hash);
  EXPECT_EQ(res[1].trace_hash, res[2].trace_hash);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FdCache, OmegaFamiliesCacheToo) {
  sim::FdCache cache;
  const auto fp = FailurePattern::withCrashes(4, {{3, 60}});
  EXPECT_EQ(cache.omega(fp, 120, 2).get(), cache.omega(fp, 120, 2).get());
  EXPECT_EQ(cache.omegaK(fp, 2, 120, 2).get(),
            cache.omegaK(fp, 2, 120, 2).get());
  EXPECT_NE(cache.omega(fp, 120, 2).get(), cache.omegaK(fp, 1, 120, 2).get());
  EXPECT_EQ(cache.size(), 3u);
}

}  // namespace
}  // namespace wfd
