// Immediate snapshot properties: self-inclusion, containment, immediacy
// — checked offline from recorded views across random, lockstep and
// solo-ordered schedules, plus crash sweeps (wait-freedom).
#include <gtest/gtest.h>

#include "memory/immediate_snapshot.h"
#include "test_util.h"

namespace wfd {
namespace {

using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> participant(Env& env, Value v) {
  const auto view =
      co_await mem::immediateSnapshot(env, sim::ObjKey{"t.is"}, RegVal(v));
  std::vector<RegVal> copy = view;
  env.note("view", RegVal::tuple(std::move(copy)));
  co_return Unit{};
}

struct Views {
  // One view per participating process (pid -> slots).
  std::map<Pid, std::vector<RegVal>> by_pid;
};

Views collect(const sim::RunResult& rr) {
  Views out;
  for (const auto& e : rr.trace().events()) {
    if (e.kind == sim::EventKind::kNote && e.label == "view") {
      const auto view = e.value.asTuple();
      out.by_pid[e.pid] = std::vector<RegVal>(view.begin(), view.end());
    }
  }
  return out;
}

bool contains(const std::vector<RegVal>& view, Pid j) {
  return !view[static_cast<std::size_t>(j)].isBottom();
}

bool subsetOf(const std::vector<RegVal>& a, const std::vector<RegVal>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].isBottom() && b[i].isBottom()) return false;
  }
  return true;
}

void checkProperties(const Views& vs, int n_plus_1) {
  for (const auto& [i, si] : vs.by_pid) {
    // Self-inclusion with the right value.
    ASSERT_TRUE(contains(si, i));
    EXPECT_EQ(si[static_cast<std::size_t>(i)].asInt(), 100 + i);
    // Values are never invented.
    for (Pid j = 0; j < n_plus_1; ++j) {
      if (contains(si, j)) {
        EXPECT_EQ(si[static_cast<std::size_t>(j)].asInt(), 100 + j);
      }
    }
  }
  for (const auto& [i, si] : vs.by_pid) {
    for (const auto& [j, sj] : vs.by_pid) {
      // Containment.
      EXPECT_TRUE(subsetOf(si, sj) || subsetOf(sj, si))
          << "views of p" << i + 1 << " and p" << j + 1 << " incomparable";
      // Immediacy: j in S_i  =>  S_j subset of S_i.
      if (contains(si, j)) {
        EXPECT_TRUE(subsetOf(sj, si))
            << "immediacy broken: p" << j + 1 << " in view of p" << i + 1;
      }
    }
  }
}

TEST(ImmediateSnapshot, PropertiesUnderRandomSchedules) {
  for (int n_plus_1 : {2, 3, 4, 6}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      RunConfig cfg;
      cfg.n_plus_1 = n_plus_1;
      cfg.seed = seed;
      const auto rr = sim::runTask(
          cfg, [](Env& e, Value v) { return participant(e, v); },
          test::distinctProposals(n_plus_1));
      ASSERT_TRUE(rr.all_correct_done);
      checkProperties(collect(rr), n_plus_1);
    }
  }
}

TEST(ImmediateSnapshot, LockstepGivesFullViewToEveryone) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.policy = sim::PolicyKind::kRoundRobin;
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return participant(e, v); },
      test::distinctProposals(n_plus_1));
  const auto vs = collect(rr);
  checkProperties(vs, n_plus_1);
  // Lockstep: everyone descends together and meets at the same level
  // with everyone present.
  for (const auto& [i, si] : vs.by_pid) {
    for (Pid j = 0; j < n_plus_1; ++j) EXPECT_TRUE(contains(si, j));
  }
}

TEST(ImmediateSnapshot, SoloRunnerSeesOnlyItself) {
  const int n_plus_1 = 4;
  // p1 runs alone (everyone else crashed at time 0): its view is {p1}.
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{1, 0}, {2, 0}, {3, 0}});
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value v) { return participant(e, v); },
      test::distinctProposals(n_plus_1));
  const auto vs = collect(rr);
  ASSERT_TRUE(vs.by_pid.contains(0));
  const auto& view = vs.by_pid.at(0);
  EXPECT_TRUE(contains(view, 0));
  for (Pid j = 1; j < n_plus_1; ++j) EXPECT_FALSE(contains(view, j));
}

TEST(ImmediateSnapshot, WaitFreeUnderCrashes) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const int n_plus_1 = 5;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.seed = seed;
    cfg.fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 30, seed + 7);
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return participant(e, v); },
        test::distinctProposals(n_plus_1));
    ASSERT_TRUE(rr.all_correct_done) << "seed " << seed;
    checkProperties(collect(rr), n_plus_1);
  }
}

TEST(ImmediateSnapshot, ViewSizesWitnessLevels) {
  // The level-descent invariant: a view returned at level L has >= L
  // members — so view sizes are always >= 1 and a full view has n+1.
  const int n_plus_1 = 5;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.seed = seed;
    const auto rr = sim::runTask(
        cfg, [](Env& e, Value v) { return participant(e, v); },
        test::distinctProposals(n_plus_1));
    for (const auto& [i, si] : collect(rr).by_pid) {
      int size = 0;
      for (Pid j = 0; j < n_plus_1; ++j) {
        if (contains(si, j)) ++size;
      }
      EXPECT_GE(size, 1);
      EXPECT_LE(size, n_plus_1);
    }
  }
}

}  // namespace
}  // namespace wfd
