// Golden trace-hash regression: the safety net for hot-path work.
//
// The determinism contract for perf changes (docs/PERF.md) demands that a
// scheduler/ProcSet/RegVal optimization changes not one executed schedule:
// every trace hash, step count, and decision vector must stay bit-identical
// to the binary the hashes below were recorded from. This suite replays a
// fixed grid of family × seed cells — E1-shaped (Fig. 1 set agreement over
// random, round-robin, eventually-synchronous, scripted, and Afek-snapshot
// schedules), E3-shaped (Fig. 3 extraction), and E16-shaped (chaos-injected
// watched runs) — and compares against tests/golden_hashes.inc.
//
// The .inc file was recorded from pre-refactor main (PR 4) and is
// PERMANENT: it must only be regenerated when a change intentionally
// alters schedules (a new RNG, a policy semantics change), never to make
// a perf PR pass. Regenerate with:
//
//   ./build/tests/golden_hash_test --golden-record > tests/golden_hashes.inc
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "test_util.h"

namespace wfd::test {
namespace {

using core::extractUpsilonF;
using core::phiOmegaK;
using core::upsilonSetAgreement;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::GlitchKind;
using sim::OpDelay;
using sim::RunConfig;
using sim::RunReport;
using sim::RunResult;
using sim::WatchdogConfig;

struct GoldenCell {
  const char* family;
  std::uint64_t seed;
  std::uint64_t trace_hash;
  Time steps;
  std::uint64_t outputs_sig;  // decisions (+ chaos verdict) signature
};

const GoldenCell kGolden[] = {
#define GOLDEN(family, seed, hash, steps, outputs) \
  {family, seed, hash, steps, outputs},
#include "golden_hashes.inc"
#undef GOLDEN
};

const char* const kFamilies[] = {
    "fig1",   "fig1-rr", "fig1-afek", "fig1-esync",
    "fig1-scripted", "fig3",    "chaos",
};
constexpr std::uint64_t kSeeds[] = {1, 2, 7, 23};

// Same mixing round as Trace/RegVal so the signature is stable across
// platforms and recorder runs.
std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

struct CellOutcome {
  std::uint64_t trace_hash = 0;
  Time steps = 0;
  std::uint64_t outputs_sig = 0;
};

std::uint64_t decisionsSig(const std::map<Pid, Value>& decisions,
                           std::uint64_t h) {
  for (const auto& [p, v] : decisions) {
    h = mix(h, static_cast<std::uint64_t>(p) + 1);
    h = mix(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

CellOutcome outcomeOf(const RunResult& rr, Time steps, std::uint64_t extra) {
  CellOutcome out;
  out.trace_hash = rr.trace().hash64();
  out.steps = steps;
  out.outputs_sig = decisionsSig(rr.decisions, mix(0xCBF29CE484222325ULL, extra));
  return out;
}

// E1-shaped: Fig. 1 Upsilon set agreement, one pre-seeded crash.
RunConfig fig1Config(int n_plus_1, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{1, 120}});
  cfg.fd = fd::makeUpsilon(*cfg.fp, 150, seed);
  cfg.seed = seed;
  return cfg;
}

sim::AlgoFn fig1Algo() {
  return [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
}

// Drive a Run under an explicit policy (pins the policy RNG-draw contract).
CellOutcome runUnder(RunConfig cfg, sim::SchedulePolicy& policy,
                     const std::vector<Value>& props) {
  sim::Run run(cfg, fig1Algo(), props);
  const Time taken = run.scheduler().run(policy, cfg.max_steps);
  const RunResult rr = run.finish(taken);
  return outcomeOf(rr, taken, 0);
}

CellOutcome runCell(const std::string& family, std::uint64_t seed) {
  if (family == "fig1") {
    const RunConfig cfg = fig1Config(4, seed);
    const RunResult rr = sim::runTask(cfg, fig1Algo(), {10, 20, 30, 40});
    return outcomeOf(rr, rr.steps, 0);
  }
  if (family == "fig1-rr") {
    RunConfig cfg = fig1Config(4, seed);
    cfg.policy = sim::PolicyKind::kRoundRobin;
    const RunResult rr = sim::runTask(cfg, fig1Algo(), {10, 20, 30, 40});
    return outcomeOf(rr, rr.steps, 0);
  }
  if (family == "fig1-afek") {
    RunConfig cfg;
    cfg.n_plus_1 = 3;
    cfg.fp = FailurePattern::failureFree(3);
    cfg.fd = fd::makeUpsilon(*cfg.fp, 80, seed);
    cfg.seed = seed;
    cfg.flavor = sim::SnapshotFlavor::kAfek;
    const RunResult rr = sim::runTask(cfg, fig1Algo(), {1, 2, 3});
    return outcomeOf(rr, rr.steps, 0);
  }
  if (family == "fig1-esync") {
    sim::EventuallySynchronousPolicy pol(/*gst=*/400, /*starve_stretch=*/97);
    return runUnder(fig1Config(4, seed), pol, {10, 20, 30, 40});
  }
  if (family == "fig1-scripted") {
    sim::ScriptedPolicy pol({0, 0, 2, 3, 1, 2, 0, 3, 3, 1},
                            std::make_unique<sim::RoundRobinPolicy>());
    return runUnder(fig1Config(4, seed), pol, {10, 20, 30, 40});
  }
  if (family == "fig3") {
    const int n_plus_1 = 4;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 40, seed);
    cfg.fd = fd::makeOmega(*cfg.fp, 100, seed);
    cfg.seed = seed;
    cfg.max_steps = 60'000;
    const auto phi = phiOmegaK(n_plus_1);
    const RunResult rr = sim::runTask(
        cfg, [phi](Env& e, Value) { return extractUpsilonF(e, phi); },
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
    return outcomeOf(rr, rr.steps, 0);
  }
  if (family == "chaos") {
    // E16-shaped: legal injector composition (random crashes, starvation,
    // op delay, in-axiom FD noise) under the watchdog. Exercises the
    // mid-run injectCrash path against the scheduler's runnable tracking.
    const int n_plus_1 = 4;
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 50}});
    cfg.fd = fd::makeUpsilon(*cfg.fp, ProcSet::full(n_plus_1), 300, seed);
    cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 2;
    // Short horizon / early window: the runs below finish in a few dozen
    // steps, and the injectors must actually fire inside that window for
    // this family to pin the mid-run crash + schedule-bias paths.
    chaos.crashes.push_back({CrashInjection::Strategy::kRandom,
                             /*victim=*/-1, /*at=*/0, /*horizon=*/12,
                             /*count=*/2, /*seed=*/seed * 7});
    chaos.starvation.push_back({ProcSet{0}, 5, 10});
    chaos.op_delay = OpDelay{8, 3, seed};
    chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed};
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{3'000'000, 0, n_plus_1 - 1},
                     fig1Algo(), distinctProposals(n_plus_1));
    return outcomeOf(rep.result, rep.steps,
                     static_cast<std::uint64_t>(rep.verdict) + 1);
  }
  ADD_FAILURE() << "unknown golden family: " << family;
  return {};
}

// The same grid as BatchCells, so the work-stealing pool can replay it.
// Recipes mirror runCell exactly; esync/scripted ride the policy_factory
// hook (a pure factory per sim/batch.h, so any worker builds an identical
// policy).
sim::BatchCell batchCell(const std::string& family, std::uint64_t seed) {
  sim::BatchCell cell;
  cell.algo = fig1Algo();
  if (family == "fig1") {
    cell.cfg = fig1Config(4, seed);
    cell.proposals = {10, 20, 30, 40};
  } else if (family == "fig1-rr") {
    cell.cfg = fig1Config(4, seed);
    cell.cfg.policy = sim::PolicyKind::kRoundRobin;
    cell.proposals = {10, 20, 30, 40};
  } else if (family == "fig1-afek") {
    cell.cfg.n_plus_1 = 3;
    cell.cfg.fp = FailurePattern::failureFree(3);
    cell.cfg.fd = fd::makeUpsilon(*cell.cfg.fp, 80, seed);
    cell.cfg.seed = seed;
    cell.cfg.flavor = sim::SnapshotFlavor::kAfek;
    cell.proposals = {1, 2, 3};
  } else if (family == "fig1-esync") {
    cell.cfg = fig1Config(4, seed);
    cell.proposals = {10, 20, 30, 40};
    cell.policy_factory = [] {
      return std::make_unique<sim::EventuallySynchronousPolicy>(
          /*gst=*/400, /*starve_stretch=*/97);
    };
  } else if (family == "fig1-scripted") {
    cell.cfg = fig1Config(4, seed);
    cell.proposals = {10, 20, 30, 40};
    cell.policy_factory = [] {
      return std::make_unique<sim::ScriptedPolicy>(
          std::vector<Pid>{0, 0, 2, 3, 1, 2, 0, 3, 3, 1},
          std::make_unique<sim::RoundRobinPolicy>());
    };
  } else if (family == "fig3") {
    const int n_plus_1 = 4;
    cell.cfg.n_plus_1 = n_plus_1;
    cell.cfg.fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 40, seed);
    cell.cfg.fd = fd::makeOmega(*cell.cfg.fp, 100, seed);
    cell.cfg.seed = seed;
    cell.cfg.max_steps = 60'000;
    const auto phi = phiOmegaK(n_plus_1);
    cell.algo = [phi](Env& e, Value) { return extractUpsilonF(e, phi); };
    cell.proposals = std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0);
  } else if (family == "chaos") {
    const int n_plus_1 = 4;
    cell.cfg.n_plus_1 = n_plus_1;
    cell.cfg.fp =
        FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 50}});
    cell.cfg.fd =
        fd::makeUpsilon(*cell.cfg.fp, ProcSet::full(n_plus_1), 300, seed);
    cell.cfg.seed = seed;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 2;
    chaos.crashes.push_back({CrashInjection::Strategy::kRandom,
                             /*victim=*/-1, /*at=*/0, /*horizon=*/12,
                             /*count=*/2, /*seed=*/seed * 7});
    chaos.starvation.push_back({ProcSet{0}, 5, 10});
    chaos.op_delay = OpDelay{8, 3, seed};
    chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed};
    cell.chaos = chaos;
    cell.watchdog = WatchdogConfig{3'000'000, 0, n_plus_1 - 1};
    cell.proposals = distinctProposals(n_plus_1);
  } else {
    ADD_FAILURE() << "unknown golden family: " << family;
  }
  return cell;
}

TEST(GoldenHashes, GridIsComplete) {
  // One recorded cell for every family × seed the recorder emits — a
  // truncated or stale .inc fails loudly instead of silently shrinking
  // the safety net.
  EXPECT_EQ(std::size(kGolden), std::size(kFamilies) * std::size(kSeeds));
}

TEST(GoldenHashes, EveryCellReplaysBitIdentically) {
  for (const GoldenCell& cell : kGolden) {
    const CellOutcome got = runCell(cell.family, cell.seed);
    EXPECT_EQ(got.trace_hash, cell.trace_hash)
        << cell.family << " seed=" << cell.seed << ": trace hash diverged";
    EXPECT_EQ(got.steps, cell.steps)
        << cell.family << " seed=" << cell.seed << ": step count diverged";
    EXPECT_EQ(got.outputs_sig, cell.outputs_sig)
        << cell.family << " seed=" << cell.seed
        << ": decisions/verdict diverged";
  }
}

TEST(GoldenHashes, BatchReplayUnderStealingMatchesTheGrid) {
  // The whole grid through the work-stealing pool at jobs=4: whatever
  // worker a cell lands on (or is stolen to), its trace hash, step count,
  // and outputs signature must equal the recorded serial values. This is
  // the golden safety net extended over sim/batch.h's scheduler.
  std::vector<sim::BatchCell> cells;
  std::vector<const GoldenCell*> expect;
  for (const GoldenCell& g : kGolden) {
    cells.push_back(batchCell(g.family, g.seed));
    expect.push_back(&g);
  }
  const auto results =
      sim::BatchRunner(sim::BatchOptions{4, /*steal=*/true}).run(cells);
  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GoldenCell& g = *expect[i];
    const sim::CellResult& r = results[i];
    ASSERT_FALSE(r.error) << g.family << " seed=" << g.seed << ": "
                          << r.detail;
    const bool chaos = std::strcmp(g.family, "chaos") == 0;
    const std::uint64_t extra =
        chaos ? static_cast<std::uint64_t>(r.verdict) + 1 : 0;
    const std::uint64_t sig =
        decisionsSig(r.decisions, mix(0xCBF29CE484222325ULL, extra));
    EXPECT_EQ(r.trace_hash, g.trace_hash)
        << g.family << " seed=" << g.seed << ": batch trace hash diverged";
    EXPECT_EQ(r.steps, g.steps)
        << g.family << " seed=" << g.seed << ": batch step count diverged";
    EXPECT_EQ(sig, g.outputs_sig)
        << g.family << " seed=" << g.seed << ": batch outputs diverged";
  }
}

// ---- Checkpoint/restore bit-identity (sim/explore.h prefix sharing) ------
//
// The explorer's soundness rests on Run::restore being invisible: a run
// that is checkpointed, rewound, and re-driven must produce the same trace
// hash — bit for bit — as one that never checkpointed. Held here across
// the same 7 golden families, driven by a deterministic policy-free
// rotation so the comparison is independent of policy/RNG state (which a
// checkpoint deliberately does not capture for policies).

Pid rotNext(const ProcSet& runnable, Pid& last) {
  Pid p = runnable.nextAbove(last);
  if (p < 0) p = runnable.min();
  last = p;
  return p;
}

// Drive by rotation until all correct processes finish or `horizon` steps.
Time driveRotation(sim::Run& run, Pid& last, Time from, Time horizon) {
  Time steps = from;
  while (!run.scheduler().allCorrectDone() && steps < horizon) {
    const ProcSet r = run.scheduler().runnable();
    if (r.empty()) break;
    run.scheduler().step(rotNext(r, last));
    ++steps;
  }
  return steps;
}

TEST(GoldenHashes, RestoreThenContinueIsBitIdenticalAcrossFamilies) {
  // fig3 never finishes on its own (extraction runs to the step budget),
  // so every family is driven to a fixed horizon or completion.
  constexpr Time kHorizon = 1500;
  for (const char* family : kFamilies) {
    SCOPED_TRACE(family);
    const sim::BatchCell cell = batchCell(family, /*seed=*/7);

    // A: the straight-line reference (checkpoint machinery on, unused).
    sim::Run a(cell.cfg, cell.algo, cell.proposals);
    a.enableCheckpoints();
    Pid la = -1;
    const Time sa = driveRotation(a, la, 0, kHorizon);
    const std::uint64_t ha = a.world().trace().hash64();
    ASSERT_GT(sa, 0);

    // B: checkpoint mid-run, run to the end, rewind, run to the end again.
    sim::Run b(cell.cfg, cell.algo, cell.proposals);
    b.enableCheckpoints();
    Pid lb = -1;
    const Time mid = sa / 2;
    ASSERT_EQ(driveRotation(b, lb, 0, mid), mid);
    const sim::RunCheckpoint ck = b.checkpoint();
    const Pid last_at_ck = lb;
    EXPECT_EQ(driveRotation(b, lb, mid, kHorizon), sa);
    EXPECT_EQ(b.world().trace().hash64(), ha)
        << "drive with checkpoint taken diverged from straight line";
    b.restore(ck);
    lb = last_at_ck;
    EXPECT_EQ(driveRotation(b, lb, mid, kHorizon), sa);
    EXPECT_EQ(b.world().trace().hash64(), ha)
        << "restore-then-continue diverged from straight line";

    // C: the same checkpoint restored onto a FRESH run of the same
    // configuration (the cross-run validity RunCheckpoint documents).
    sim::Run c(cell.cfg, cell.algo, cell.proposals);
    c.enableCheckpoints();
    c.restore(ck);
    Pid lc = last_at_ck;
    EXPECT_EQ(driveRotation(c, lc, mid, kHorizon), sa);
    EXPECT_EQ(c.world().trace().hash64(), ha)
        << "fresh-run restore diverged from straight line";
  }
}

int goldenRecord() {
  std::printf(
      "// Golden per-cell (trace hash, step count, outputs signature)\n"
      "// recorded from pre-refactor main by golden_hash_test "
      "--golden-record.\n"
      "// DO NOT regenerate to make a perf change pass: bit-identical\n"
      "// replay against this file IS the determinism contract "
      "(docs/PERF.md).\n"
      "// clang-format off\n");
  for (const char* family : kFamilies) {
    for (const std::uint64_t seed : kSeeds) {
      const CellOutcome got = runCell(family, seed);
      std::printf("GOLDEN(\"%s\", %" PRIu64 ", 0x%016" PRIX64
                  "ull, %" PRId64 ", 0x%016" PRIX64 "ull)\n",
                  family, seed, got.trace_hash,
                  static_cast<std::int64_t>(got.steps), got.outputs_sig);
    }
  }
  std::printf("// clang-format on\n");
  return 0;
}

}  // namespace
}  // namespace wfd::test

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--golden-record") == 0) {
      return wfd::test::goldenRecord();
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
