// The explicit reductions of Sect. 4 and 5.3: each must make the emulated
// output stabilize on a value satisfying the target detector's axioms.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkEmulatedOmega;
using core::checkEmulatedUpsilonF;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

RunResult runReduction(const sim::AlgoFn& algo, int n_plus_1,
                       const FailurePattern& fp, fd::FdPtr fd,
                       std::uint64_t seed, Time steps = 60'000) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = std::move(fd);
  cfg.seed = seed;
  cfg.max_steps = steps;
  return sim::runTask(cfg, algo,
                      std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
}

// ---- Omega^k -> Upsilon^{n+1-k} by complementation (Sect. 4 / 5.3) ----

TEST(OmegaKToUpsilon, ComplementEmulatesUpsilon) {
  // Theorem 1, easy direction: Omega_n -> Upsilon.
  const int n_plus_1 = 4;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 50, seed);
    const auto rr = runReduction(
        [](Env& e, Value) { return core::omegaKToUpsilonF(e); }, n_plus_1, fp,
        fd::makeOmegaK(fp, n_plus_1 - 1, 120, seed), seed);
    const auto rep = checkEmulatedUpsilonF(rr, n_plus_1 - 1);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

TEST(OmegaKToUpsilon, OmegaFToUpsilonFAcrossF) {
  const int n_plus_1 = 5;
  for (int f = 1; f <= 4; ++f) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto fp = FailurePattern::random(n_plus_1, f, 50, seed * 5 + f);
      const auto rr = runReduction(
          [](Env& e, Value) { return core::omegaKToUpsilonF(e); }, n_plus_1,
          fp, fd::makeOmegaK(fp, f, 100, seed), seed);
      const auto rep = checkEmulatedUpsilonF(rr, f);
      EXPECT_TRUE(rep.ok()) << "f=" << f << " seed " << seed << ": "
                            << rep.violation;
    }
  }
}

// ---- Upsilon <-> Omega for two processes (Sect. 4) ----

TEST(TwoProcs, UpsilonToOmega) {
  const int n_plus_1 = 2;
  // All three failure patterns of a 2-process system.
  const std::vector<FailurePattern> fps = {
      FailurePattern::failureFree(2),
      FailurePattern::withCrashes(2, {{0, 40}}),
      FailurePattern::withCrashes(2, {{1, 40}}),
  };
  for (const auto& fp : fps) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto rr = runReduction(
          [](Env& e, Value) { return core::upsilonToOmegaTwoProcs(e); },
          n_plus_1, fp, fd::makeUpsilon(fp, 90, seed), seed);
      const auto rep = checkEmulatedOmega(rr);
      EXPECT_TRUE(rep.ok()) << "correct=" << fp.correct().toString()
                            << " seed " << seed << ": " << rep.violation;
    }
  }
}

TEST(TwoProcs, OmegaToUpsilonRoundTrip) {
  // Omega -> Upsilon via complementation in the 2-process system: the
  // Sect. 4 equivalence, other direction.
  const auto fp = FailurePattern::withCrashes(2, {{1, 30}});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto rr = runReduction(
        [](Env& e, Value) { return core::omegaKToUpsilonF(e); }, 2, fp,
        fd::makeOmega(fp, 60, seed), seed);
    const auto rep = checkEmulatedUpsilonF(rr, 1);
    EXPECT_TRUE(rep.ok()) << rep.violation;
  }
}

// ---- Upsilon^1 -> Omega in E_1 (Sect. 5.3) ----

TEST(Upsilon1ToOmega, ElectsCorrectLeaderInE1) {
  const int n_plus_1 = 4;
  // Case A: Upsilon^1 stabilizes on a proper subset (size n): the
  // complement is the leader.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto fp = FailurePattern::failureFree(n_plus_1);
    const auto rr = runReduction(
        [](Env& e, Value) { return core::upsilon1ToOmega(e); }, n_plus_1, fp,
        fd::makeUpsilonF(fp, 1, 100, seed), seed);
    const auto rep = checkEmulatedOmega(rr);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.violation;
  }
}

TEST(Upsilon1ToOmega, TimestampFallbackWhenUpsilonOutputsPi) {
  const int n_plus_1 = 4;
  // Case B: exactly one faulty process and Upsilon^1 stuck on Pi — the
  // reduction must exclude the faulty process via timestamps.
  for (Pid victim = 0; victim < n_plus_1; ++victim) {
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{victim, 200}});
    const auto upsilon_pi = fd::makeScripted(
        "Upsilon1=Pi", [n_plus_1](Pid, Time) { return ProcSet::full(n_plus_1); },
        0);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto rr = runReduction(
          [](Env& e, Value) { return core::upsilon1ToOmega(e); }, n_plus_1,
          fp, upsilon_pi, seed);
      const auto rep = checkEmulatedOmega(rr);
      EXPECT_TRUE(rep.ok()) << "victim p" << victim + 1 << " seed " << seed
                            << ": " << rep.violation;
      EXPECT_FALSE(rep.stable_value.contains(victim));
    }
  }
}

// ---- Chained: Omega^f -> Upsilon^f -> (f=1) Omega ----

TEST(Chained, OmegaOneToUpsilonOneToOmega) {
  // Run the complement reduction on Omega^1, feed the published outputs
  // conceptually through Upsilon^1 -> Omega: with f = 1 both ends are
  // Omega, so the stable emulated Upsilon^1 output's complement must be a
  // correct leader.
  const int n_plus_1 = 3;
  const auto fp = FailurePattern::withCrashes(n_plus_1, {{2, 50}});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto rr = runReduction(
        [](Env& e, Value) { return core::omegaKToUpsilonF(e); }, n_plus_1, fp,
        fd::makeOmega(fp, 80, seed), seed);
    const auto rep = checkEmulatedUpsilonF(rr, 1);
    ASSERT_TRUE(rep.ok()) << rep.violation;
    const ProcSet leader = rep.stable_value.complement(n_plus_1);
    ASSERT_EQ(leader.size(), 1);
    EXPECT_TRUE(fp.correct().contains(leader.min()));
  }
}

}  // namespace
}  // namespace wfd
