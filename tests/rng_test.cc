// Determinism and distribution sanity for the simulator's randomness.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace wfd {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.below(7), 7u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(5);
  int hits = 0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(HashedUniform, IsAPureFunction) {
  for (std::uint64_t a = 0; a < 10; ++a) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      EXPECT_EQ(hashedUniform(42, a, b, 100), hashedUniform(42, a, b, 100));
    }
  }
}

TEST(HashedUniform, StaysBelowBound) {
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    EXPECT_LT(hashedUniform(9, i, i * 3, 13), 13u);
  }
}

TEST(HashedUniform, VariesWithInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 200; ++i) seen.insert(hashedUniform(1, i, 0, 64));
  EXPECT_GT(seen.size(), 30u);
}

}  // namespace
}  // namespace wfd
