// The simulation runtime itself: step semantics, crash handling,
// scheduling policies, determinism, trace bookkeeping, object table.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using sim::Coro;
using sim::Env;
using sim::FailurePattern;
using sim::ObjKey;
using sim::RunConfig;
using sim::Unit;

Coro<Unit> counterLoop(Env& env, int iterations) {
  const sim::ObjId r = env.reg(ObjKey{"cnt", env.me()});
  for (int i = 1; i <= iterations; ++i) {
    co_await env.write(r, RegVal(static_cast<Value>(i)));
  }
  env.decide(iterations);
  co_return Unit{};
}

TEST(Scheduler, OneOpPerStep) {
  RunConfig cfg;
  cfg.n_plus_1 = 1;
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value) { return counterLoop(e, 10); }, {0});
  ASSERT_TRUE(rr.all_correct_done);
  // 10 writes == 10 steps: the prologue folds into the first step.
  EXPECT_EQ(rr.steps, 10);
}

TEST(Scheduler, CrashedProcessTakesNoStepsAfterCrashTime) {
  RunConfig cfg;
  cfg.n_plus_1 = 2;
  cfg.fp = FailurePattern::withCrashes(2, {{1, 5}});
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value) { return counterLoop(e, 100); }, {0, 0});
  // p2's register shows at most 5 completed writes.
  auto& tbl = rr.world->objects();
  const RegVal v = tbl.read(tbl.regId(ObjKey{"cnt", 1}));
  ASSERT_FALSE(v.isBottom());
  EXPECT_LE(v.asInt(), 5);
  // p1 is correct and finished.
  EXPECT_TRUE(rr.decisions.contains(0));
  EXPECT_FALSE(rr.decisions.contains(1));
}

TEST(Scheduler, RoundRobinIsFair) {
  RunConfig cfg;
  cfg.n_plus_1 = 3;
  cfg.policy = sim::PolicyKind::kRoundRobin;
  const auto rr = sim::runTask(
      cfg, [](Env& e, Value) { return counterLoop(e, 7); }, {0, 0, 0});
  ASSERT_TRUE(rr.all_correct_done);
  EXPECT_EQ(rr.steps, 21);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto go = [] {
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.seed = 99;
    return sim::runTask(
        cfg, [](Env& e, Value) { return counterLoop(e, 50); }, {0, 0, 0, 0});
  };
  const auto a = go();
  const auto b = go();
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.trace().events().size(), b.trace().events().size());
}

TEST(Scheduler, SeedChangesSchedule) {
  auto go = [](std::uint64_t seed) {
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.seed = seed;
    auto rr = sim::runTask(
        cfg, [](Env& e, Value) { return counterLoop(e, 50); }, {0, 0, 0, 0});
    // Fingerprint: decide times.
    std::vector<Time> t;
    for (const auto& e : rr.trace().ofKind(sim::EventKind::kDecide)) {
      t.push_back(e.time);
    }
    return t;
  };
  EXPECT_NE(go(1), go(2));
}

TEST(Scheduler, StepBudgetStopsRunawayRuns) {
  RunConfig cfg;
  cfg.n_plus_1 = 2;
  cfg.max_steps = 500;
  const auto rr = sim::runTask(
      cfg,
      [](Env& e, Value) -> Coro<Unit> {
        const sim::ObjId r = e.reg(ObjKey{"spin"});
        for (;;) co_await e.read(r);  // never terminates
      },
      {0, 0});
  EXPECT_FALSE(rr.all_correct_done);
  EXPECT_EQ(rr.steps, 500);
}

TEST(Scheduler, ExceptionsInAutomataPropagate) {
  RunConfig cfg;
  cfg.n_plus_1 = 1;
  EXPECT_THROW(
      sim::runTask(
          cfg,
          [](Env& e, Value) -> Coro<Unit> {
            co_await e.yield();
            throw std::runtime_error("automaton bug");
          },
          {0}),
      std::runtime_error);
}

TEST(ObjectTable, AutoVivifiesAndIsStableAcrossProcesses) {
  sim::ObjectTable tbl;
  const auto a = tbl.regId(ObjKey{"x", 1, 2});
  const auto b = tbl.regId(ObjKey{"x", 1, 2});
  const auto c = tbl.regId(ObjKey{"x", 1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(tbl.read(a).isBottom());
  tbl.write(a, RegVal(Value{7}));
  EXPECT_EQ(tbl.read(b).asInt(), 7);
}

TEST(ObjectTable, SnapshotSlotsInitializeBottom) {
  sim::ObjectTable tbl;
  const auto s = tbl.snapId(ObjKey{"snap"}, 4);
  EXPECT_EQ(tbl.scan(s).size(), 4u);
  for (const auto& v : tbl.scan(s)) EXPECT_TRUE(v.isBottom());
  tbl.update(s, 2, RegVal(Value{5}));
  EXPECT_EQ(tbl.scan(s)[2].asInt(), 5);
}

TEST(ObjKey, AppendBuildsDistinctNames) {
  ObjKey k{"conv", 3, 1};
  ObjKey a = k;
  a.append(".A");
  ObjKey b = k;
  b.append(".B");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.toString(), "conv.A[3][1]");
  ObjKey cell = a;
  cell.append("#cell");
  cell.append(12);
  EXPECT_EQ(cell.toString(), "conv.A#cell12[3][1]");
}

TEST(Trace, PublishedAtTracksLatestPerProcess) {
  sim::Trace tr;
  tr.record(1, 0, sim::EventKind::kPublish, "", RegVal(Value{1}));
  tr.record(5, 0, sim::EventKind::kPublish, "", RegVal(Value{2}));
  tr.record(7, 1, sim::EventKind::kPublish, "", RegVal(Value{3}));
  const auto at4 = tr.publishedAt(4, 2);
  EXPECT_EQ(at4[0].asInt(), 1);
  EXPECT_TRUE(at4[1].isBottom());
  const auto at9 = tr.publishedAt(9, 2);
  EXPECT_EQ(at9[0].asInt(), 2);
  EXPECT_EQ(at9[1].asInt(), 3);
}

TEST(FailurePattern, EnvironmentMembership) {
  const auto fp = FailurePattern::withCrashes(5, {{0, 10}, {3, 20}});
  EXPECT_FALSE(fp.inEnvironment(1));
  EXPECT_TRUE(fp.inEnvironment(2));
  EXPECT_TRUE(fp.inEnvironment(4));
  EXPECT_EQ(fp.faulty(), (ProcSet{0, 3}));
  EXPECT_EQ(fp.crashedBy(9), ProcSet{});
  EXPECT_EQ(fp.crashedBy(10), ProcSet{0});
  EXPECT_EQ(fp.crashedBy(25), (ProcSet{0, 3}));
}

TEST(FailurePattern, RandomRespectsBounds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto fp = FailurePattern::random(6, 3, 100, seed);
    EXPECT_LE(fp.faulty().size(), 3);
    EXPECT_FALSE(fp.correct().empty());
    for (Pid p : fp.faulty().members()) {
      EXPECT_LE(fp.crashTime(p), 100);
    }
  }
}

}  // namespace
}  // namespace wfd
