// Fault injection (sim/chaos.h) + run watchdog (sim/watchdog.h): every
// RunVerdict is reachable and correct, legal injectors never break safety,
// every illegal FD glitch is caught by the online axiom checker, and chaos
// runs replay bit-identically per seed.
#include <gtest/gtest.h>

#include "test_util.h"

namespace wfd {
namespace {

using core::checkKSetAgreement;
using core::extractUpsilonF;
using core::upsilonSetAgreement;
using sim::ChaosConfig;
using sim::CrashInjection;
using sim::Env;
using sim::FailurePattern;
using sim::FdGlitch;
using sim::GlitchKind;
using sim::OpDelay;
using sim::RunConfig;
using sim::RunReport;
using sim::RunVerdict;
using sim::StarvationWindow;
using sim::WatchdogConfig;

// A Fig. 1 configuration chaos can legally perturb: the Upsilon stable
// set is pinned to Pi and one crash is pre-seeded, so Pi != correct(F')
// survives any further injected crash (docs/CHAOS.md legality contract).
RunConfig fig1Config(int n_plus_1, std::uint64_t seed, Time stab = 300) {
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{n_plus_1 - 1, 50}});
  cfg.fd = fd::makeUpsilon(*cfg.fp, ProcSet::full(n_plus_1), stab, seed);
  cfg.seed = seed;
  return cfg;
}

sim::AlgoFn fig1Algo() {
  return [](Env& e, Value v) { return upsilonSetAgreement(e, v); };
}

// ---- kOk: legal injector compositions keep Theorem 2 intact ----

TEST(Chaos, LegalInjectorsYieldOkAndSafeDecisions) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 2;  // one pre-seeded + at most one injected
    chaos.crashes.push_back({CrashInjection::Strategy::kRandom,
                             /*victim=*/-1, /*at=*/0, /*horizon=*/800,
                             /*count=*/2, /*seed=*/seed * 7});
    chaos.starvation.push_back({ProcSet{0}, 100, 400});
    chaos.op_delay = OpDelay{64, 24, seed};
    chaos.glitch = {GlitchKind::kScrambleNoise, 0, seed};
    ASSERT_TRUE(chaos.legal());
    const RunReport rep = runChaosTask(fig1Config(n_plus_1, seed), chaos,
                                       WatchdogConfig{3'000'000, 0, n_plus_1 - 1},
                                       fig1Algo(), props);
    ASSERT_EQ(rep.verdict, RunVerdict::kOk)
        << sim::runVerdictName(rep.verdict) << ": " << rep.detail;
    const auto check = checkKSetAgreement(rep.result, n_plus_1 - 1, props);
    EXPECT_TRUE(check.ok()) << "seed " << seed << ": " << check.violation;
  }
}

TEST(Chaos, DelayedStabilizationIsLegal) {
  const int n_plus_1 = 3;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.glitch = {GlitchKind::kDelayStabilization, /*delay=*/400, seed};
    const RunReport rep = runChaosTask(fig1Config(n_plus_1, seed, 100), chaos,
                                       WatchdogConfig{3'000'000, 0, n_plus_1 - 1},
                                       fig1Algo(), props);
    ASSERT_EQ(rep.verdict, RunVerdict::kOk) << rep.detail;
    EXPECT_TRUE(checkKSetAgreement(rep.result, n_plus_1 - 1, props).ok());
  }
}

// Crash-at-critical-step strategies are legal too: killing the adopt-min
// leader of the current FD output, and killing a process the step its
// decision lands, must not break k-set agreement.
TEST(Chaos, CriticalStepCrashesKeepSafety) {
  const int n_plus_1 = 5;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 3;
    chaos.crashes.push_back(
        {CrashInjection::Strategy::kFdLeader, -1, /*at=*/350, 0, 1, 0});
    chaos.crashes.push_back(
        {CrashInjection::Strategy::kOnDecide, -1, 0, 0, /*count=*/1, 0});
    const RunReport rep = runChaosTask(fig1Config(n_plus_1, seed), chaos,
                                       WatchdogConfig{4'000'000, 0, n_plus_1 - 1},
                                       fig1Algo(), props);
    ASSERT_EQ(rep.verdict, RunVerdict::kOk) << rep.detail;
    EXPECT_TRUE(checkKSetAgreement(rep.result, n_plus_1 - 1, props).ok());
  }
}

// ---- kSafetyViolation: a deliberately broken task, caught online ----

TEST(Chaos, BrokenAlgorithmIsFlaggedAsSafetyViolation) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.seed = 3;
  // Everyone "decides" its own proposal: n+1 distinct values, no FD, no
  // agreement whatsoever.
  const auto algo = [](Env& e, Value v) -> sim::Coro<sim::Unit> {
    e.propose(v);
    (void)co_await e.yield();
    e.decide(v);
    co_return sim::Unit{};
  };
  const RunReport rep =
      runChaosTask(cfg, ChaosConfig{}, WatchdogConfig{100'000, 0, n_plus_1 - 1},
                   algo, test::distinctProposals(n_plus_1));
  ASSERT_EQ(rep.verdict, RunVerdict::kSafetyViolation) << rep.detail;
  EXPECT_NE(rep.detail.find("distinct"), std::string::npos) << rep.detail;
  EXPECT_LT(rep.steps, 100'000);  // caught at the offending step, not at end
}

TEST(Chaos, DoubleDecideIsFlaggedAsSafetyViolation) {
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.seed = 5;
  const auto algo = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    e.decide(7);
    (void)co_await e.yield();
    e.decide(7);  // same value, second decision: still a violation
    co_return sim::Unit{};
  };
  const RunReport rep =
      runChaosTask(cfg, ChaosConfig{}, WatchdogConfig{100'000, 0, 2}, algo,
                   test::distinctProposals(n_plus_1));
  ASSERT_EQ(rep.verdict, RunVerdict::kSafetyViolation) << rep.detail;
  EXPECT_NE(rep.detail.find("decided twice"), std::string::npos);
}

// ---- kAxiomViolation: every illegal glitch is a detected negative
// control, online where possible ----

TEST(Chaos, EmptyAnswerIsDetectedOnline) {
  const int n_plus_1 = 4;
  ChaosConfig chaos;
  chaos.glitch = {GlitchKind::kEmptyAnswer, 0, 0};
  ASSERT_FALSE(chaos.legal());
  const RunReport rep = runChaosTask(fig1Config(n_plus_1, 2), chaos,
                                     WatchdogConfig{500'000, 0, n_plus_1 - 1},
                                     fig1Algo(), test::distinctProposals(n_plus_1));
  ASSERT_EQ(rep.verdict, RunVerdict::kAxiomViolation) << rep.detail;
  EXPECT_NE(rep.detail.find("fd-illegal-output"), std::string::npos);
  // Online: the very first FD query is already illegal; the run must be
  // cut down long before any budget machinery.
  EXPECT_LT(rep.steps, 5'000);
}

// Detection must not depend on whether a particular algorithm happens to
// look at its detector (Fig. 1 can commit in round 1 without a single FD
// query): negative controls drive a sampler automaton that definitely
// queries the history at many times at every process.
sim::AlgoFn fdSampler(int queries = 60) {
  return [queries](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < queries; ++i) (void)co_await e.queryFd();
    co_return sim::Unit{};
  };
}

TEST(Chaos, EveryIllegalGlitchIsDetected) {
  const auto props4 = test::distinctProposals(4);
  struct Control {
    GlitchKind kind;
    const char* why;
  };
  // Upsilon-judged controls; stab = 0 puts every query after the claimed
  // stabilization point.
  for (const Control c : {Control{GlitchKind::kEmptyAnswer, "range"},
                          Control{GlitchKind::kUndersizedAnswer, "range"},
                          Control{GlitchKind::kPostStabFlap, "constancy"},
                          Control{GlitchKind::kStabToCorrect, "end-check"}}) {
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.fp = FailurePattern::failureFree(4);
    // f = 2: answers must have >= 2 members, and the default stable set
    // (Pi minus p4) rotates to a different set under the flap control.
    cfg.fd = fd::makeUpsilonF(*cfg.fp, 2, /*stab_time=*/0, /*noise_seed=*/9);
    cfg.seed = 11;
    ChaosConfig chaos;
    chaos.glitch = {c.kind, 0, 1};
    ASSERT_FALSE(chaos.legal());
    const RunReport rep =
        runChaosTask(cfg, chaos, WatchdogConfig{400'000, 0, 0}, fdSampler(),
                     props4);
    EXPECT_EQ(rep.verdict, RunVerdict::kAxiomViolation)
        << sim::glitchName(c.kind) << " (" << c.why
        << ") escaped detection: " << sim::runVerdictName(rep.verdict) << " "
        << rep.detail;
  }
  // Omega^k-judged control: a stable leader set with no correct member.
  {
    RunConfig cfg;
    cfg.n_plus_1 = 4;
    cfg.fp = FailurePattern::withCrashes(4, {{2, 10}, {3, 10}});
    cfg.fd = fd::makeOmegaK(*cfg.fp, 2, /*stab_time=*/0, /*noise_seed=*/3);
    cfg.seed = 13;
    ChaosConfig chaos;
    chaos.glitch = {GlitchKind::kStabExcludeCorrect, 0, 1};
    const RunReport rep = runChaosTask(
        cfg, chaos, WatchdogConfig{400'000, 0, 0}, fdSampler(), props4);
    EXPECT_EQ(rep.verdict, RunVerdict::kAxiomViolation)
        << sim::runVerdictName(rep.verdict) << " " << rep.detail;
    EXPECT_NE(rep.detail.find("no correct process"), std::string::npos)
        << rep.detail;
  }
}

// The same illegal histories run against the real Fig. 1 workload either
// get caught or — if the algorithm never sampled the history — terminate
// safely; they never abort and never silently violate agreement.
TEST(Chaos, IllegalGlitchOnFig1NeverEscapesUnsafely) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  for (const GlitchKind kind :
       {GlitchKind::kEmptyAnswer, GlitchKind::kUndersizedAnswer,
        GlitchKind::kPostStabFlap, GlitchKind::kStabToCorrect}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      ChaosConfig chaos;
      chaos.glitch = {kind, 0, seed};
      const RunReport rep = runChaosTask(
          fig1Config(n_plus_1, seed, /*stab=*/0), chaos,
          WatchdogConfig{400'000, 0, n_plus_1 - 1}, fig1Algo(), props);
      if (rep.verdict == RunVerdict::kOk) {
        EXPECT_TRUE(checkKSetAgreement(rep.result, n_plus_1 - 1, props).ok());
      } else {
        EXPECT_EQ(rep.verdict, RunVerdict::kAxiomViolation)
            << sim::glitchName(kind) << " seed " << seed << ": " << rep.detail;
      }
    }
  }
}

// ---- kBudgetExhausted: the Fig. 3 extraction runs forever by design ----

TEST(Chaos, ExtractionRunExhaustsItsBudget) {
  const int n_plus_1 = 4;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = FailurePattern::withCrashes(n_plus_1, {{3, 40}});
  cfg.fd = fd::makeOmega(*cfg.fp, 100, 2);
  cfg.seed = 17;
  const auto phi = core::phiOmegaK(n_plus_1);
  const RunReport rep = runChaosTask(
      cfg, ChaosConfig{}, WatchdogConfig{/*step_budget=*/20'000, 0, 0},
      [phi](Env& e, Value) { return extractUpsilonF(e, phi); },
      std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  ASSERT_EQ(rep.verdict, RunVerdict::kBudgetExhausted) << rep.detail;
  EXPECT_EQ(rep.steps, 20'000);
  EXPECT_FALSE(rep.result.all_correct_done);
  ASSERT_NE(rep.result.world, nullptr);  // full post-mortem state retained
}

// ---- kLivelock: steps forever, no new externally visible event ----

TEST(Chaos, SpinningAutomatonIsFlaggedAsLivelock) {
  const int n_plus_1 = 3;
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.seed = 23;
  const auto algo = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    const ObjId r = e.reg(sim::ObjKey{"spin"});
    for (;;) (void)co_await e.read(r);  // busy-waits on a register forever
  };
  const RunReport rep = runChaosTask(
      cfg, ChaosConfig{}, WatchdogConfig{1'000'000, /*livelock_window=*/500, 0},
      algo, test::distinctProposals(n_plus_1));
  ASSERT_EQ(rep.verdict, RunVerdict::kLivelock) << rep.detail;
  EXPECT_LE(rep.steps, 1'000);  // detected by the window, not the budget
}

// ---- Determinism and budget enforcement ----

TEST(Chaos, ChaosRunsReplayBitIdentically) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  ChaosConfig chaos;
  chaos.seed = 99;
  chaos.max_faulty = 2;
  chaos.crashes.push_back(
      {CrashInjection::Strategy::kRandom, -1, 0, 600, 2, 5});
  chaos.op_delay = OpDelay{32, 8, 7};
  chaos.glitch = {GlitchKind::kScrambleNoise, 0, 41};
  const WatchdogConfig wd{3'000'000, 0, n_plus_1 - 1};
  const RunReport a =
      runChaosTask(fig1Config(n_plus_1, 6), chaos, wd, fig1Algo(), props);
  const RunReport b =
      runChaosTask(fig1Config(n_plus_1, 6), chaos, wd, fig1Algo(), props);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.result.decisions, b.result.decisions);
  EXPECT_EQ(a.result.trace().hash64(), b.result.trace().hash64());
}

TEST(Chaos, CrashBudgetAndProtectionsAreRespected) {
  const int n_plus_1 = 5;
  const auto props = test::distinctProposals(n_plus_1);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.max_faulty = 2;
    chaos.protected_pids = ProcSet{0};
    // Far more requested crashes than the budget admits.
    chaos.crashes.push_back(
        {CrashInjection::Strategy::kRandom, -1, 0, 500, 10, seed});
    const RunReport rep = runChaosTask(fig1Config(n_plus_1, seed), chaos,
                                       WatchdogConfig{4'000'000, 0, n_plus_1 - 1},
                                       fig1Algo(), props);
    ASSERT_EQ(rep.verdict, RunVerdict::kOk) << rep.detail;
    const auto& fp = rep.result.world->pattern();
    EXPECT_LE(fp.faulty().size(), 2) << "seed " << seed;
    EXPECT_TRUE(fp.isCorrect(0));
    EXPECT_FALSE(fp.correct().empty());
  }
}

// A watchdog-driven run without chaos replays Scheduler::run exactly.
TEST(Chaos, WatchdogAloneMatchesPlainRunner) {
  const int n_plus_1 = 4;
  const auto props = test::distinctProposals(n_plus_1);
  RunConfig cfg = fig1Config(n_plus_1, 8);
  const auto plain = sim::runTask(cfg, fig1Algo(), props);
  const RunReport watched = runChaosTask(
      cfg, ChaosConfig{}, WatchdogConfig{cfg.max_steps, 0, 0}, fig1Algo(),
      props);
  EXPECT_EQ(watched.verdict, RunVerdict::kOk);
  EXPECT_EQ(watched.steps, plain.steps);
  EXPECT_EQ(watched.result.decisions, plain.decisions);
  EXPECT_EQ(watched.result.trace().hash64(), plain.trace().hash64());
}

}  // namespace
}  // namespace wfd
