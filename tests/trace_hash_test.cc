// Trace-hash determinism tests (docs/ANALYSIS.md §2).
//
// The 64-bit trace hash is the determinism checker's witness: it must be
// (a) a pure function of the run configuration — identical seeds replay
// to identical hashes across independent Runner instances — and (b)
// sensitive to everything that defines a run: seed, schedule policy,
// failure pattern, and the executed op stream itself.
#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "wfd.h"

namespace wfd {
namespace {

using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

RunConfig smokeCfg(std::uint64_t seed) {
  RunConfig cfg;
  cfg.n_plus_1 = 4;
  const auto fp = FailurePattern::failureFree(4);
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 100, seed);
  cfg.seed = seed;
  return cfg;
}

RunResult smokeRun(std::uint64_t seed) {
  return sim::runTask(
      smokeCfg(seed),
      [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
      test::distinctProposals(4));
}

TEST(TraceHash, IdenticalSeedsIdenticalHashesAcrossRunners) {
  for (const std::uint64_t seed : {1u, 5u, 42u}) {
    const RunResult a = smokeRun(seed);  // two fully independent Run
    const RunResult b = smokeRun(seed);  // instances, same configuration
    EXPECT_EQ(a.trace().hash64(), b.trace().hash64()) << "seed=" << seed;
    EXPECT_EQ(a.trace().opDigest(), b.trace().opDigest()) << "seed=" << seed;
    EXPECT_EQ(a.trace().opsMixed(), b.trace().opsMixed()) << "seed=" << seed;
    EXPECT_EQ(a.steps, b.steps) << "seed=" << seed;
  }
}

TEST(TraceHash, DistinctSeedsDistinctHashes) {
  std::set<std::uint64_t> hashes;
  const int kSeeds = 10;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    hashes.insert(smokeRun(seed).trace().hash64());
  }
  EXPECT_EQ(static_cast<int>(hashes.size()), kSeeds)
      << "seed collisions: the hash is not covering the schedule";
}

TEST(TraceHash, SchedulePolicyChangesHash) {
  RunConfig random = smokeCfg(9);
  random.policy = sim::PolicyKind::kRandom;
  RunConfig rr = smokeCfg(9);
  rr.policy = sim::PolicyKind::kRoundRobin;
  const auto algo = [](Env& e, Value v) {
    return core::upsilonSetAgreement(e, v);
  };
  const auto h_random =
      sim::runTask(random, algo, test::distinctProposals(4)).trace().hash64();
  const auto h_rr =
      sim::runTask(rr, algo, test::distinctProposals(4)).trace().hash64();
  EXPECT_NE(h_random, h_rr);
}

TEST(TraceHash, FailurePatternChangesHash) {
  RunConfig crash = smokeCfg(9);
  // Crash early enough to land inside the run: a crash after the last
  // decision would leave the executed schedule — and the hash — unchanged.
  const auto fp = FailurePattern::withCrashes(4, {{1, 5}});
  crash.fp = fp;
  crash.fd = fd::makeUpsilon(fp, 100, 9);
  const auto algo = [](Env& e, Value v) {
    return core::upsilonSetAgreement(e, v);
  };
  const auto h_free =
      sim::runTask(smokeCfg(9), algo, test::distinctProposals(4))
          .trace()
          .hash64();
  const auto h_crash =
      sim::runTask(crash, algo, test::distinctProposals(4)).trace().hash64();
  EXPECT_NE(h_free, h_crash);
}

// The op digest covers the full executed op stream: a run where every
// resume executes exactly one shared-memory op mixes exactly steps ops.
TEST(TraceHash, OpDigestCoversEveryExecutedOp) {
  const auto counterLoop = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    const ObjId r = e.reg(sim::ObjKey{"cnt", e.me()});
    for (int i = 0; i < 50; ++i) {
      co_await e.write(r, RegVal(Value{i}));
    }
    co_return sim::Unit{};
  };
  RunConfig cfg;
  cfg.n_plus_1 = 3;
  cfg.seed = 17;
  const RunResult rr = sim::runTask(
      cfg, counterLoop, std::vector<Value>(3, 0));
  EXPECT_TRUE(rr.all_correct_done);
  EXPECT_EQ(rr.trace().opsMixed(), rr.steps);
  EXPECT_GT(rr.trace().opsMixed(), 0);
}

// Two runs whose event logs are empty but whose op streams differ must
// still hash differently: the digest, not just recorded events, matters.
TEST(TraceHash, OpStreamAloneDistinguishesRuns) {
  const auto writes = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    const ObjId r = e.reg(sim::ObjKey{"x", e.me()});
    co_await e.write(r, RegVal(Value{1}));
    co_return sim::Unit{};
  };
  const auto reads = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    const ObjId r = e.reg(sim::ObjKey{"x", e.me()});
    co_await e.read(r);
    co_return sim::Unit{};
  };
  RunConfig cfg;
  cfg.n_plus_1 = 2;
  cfg.seed = 3;
  const auto h_w =
      sim::runTask(cfg, writes, {0, 0}).trace().hash64();
  const auto h_r =
      sim::runTask(cfg, reads, {0, 0}).trace().hash64();
  EXPECT_NE(h_w, h_r);
}

// The digest folds operation RESULTS, not just the op stream: two runs
// whose processes issue bit-identical op sequences (query the FD and
// ignore the answer) but receive different responses must hash
// differently. Before results were folded this was a blind spot: a
// nondeterministic object or detector implementation could diverge
// without moving the hash.
TEST(TraceHash, FdAnswerResultsFoldIntoHash) {
  const auto fdBlind = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 8; ++i) (void)co_await e.queryFd();
    co_return sim::Unit{};
  };
  const auto runWithNoise = [&](std::uint64_t noise_seed) {
    RunConfig cfg;
    cfg.n_plus_1 = 3;
    const auto fp = FailurePattern::failureFree(3);
    cfg.fp = fp;
    // Never stabilizes within the run: every answer is seed-driven noise.
    cfg.fd = fd::makeUpsilon(fp, /*stab_time=*/1'000'000, noise_seed);
    cfg.seed = 7;  // same schedule seed: op streams are identical
    cfg.policy = sim::PolicyKind::kRoundRobin;
    return sim::runTask(cfg, fdBlind, {0, 0, 0});
  };
  const RunResult a = runWithNoise(1);
  const RunResult b = runWithNoise(2);
  ASSERT_EQ(a.steps, b.steps);  // the schedules really are identical
  EXPECT_NE(a.trace().hash64(), b.trace().hash64())
      << "FD answers differ but the hash does not cover op results";
  EXPECT_EQ(runWithNoise(1).trace().hash64(), a.trace().hash64());
}

// Unit-level: mixResult moves the digest even after identical mixOp
// streams (the mechanism behind the end-to-end test above).
TEST(TraceHash, MixResultMovesTheDigest) {
  sim::Trace a;
  sim::Trace b;
  a.mixOp(0, 0, 42);
  b.mixOp(0, 0, 42);
  ASSERT_EQ(a.hash64(), b.hash64());
  a.mixResult(1);
  b.mixResult(2);
  EXPECT_NE(a.hash64(), b.hash64());
}

// RegVal::hash64 feeds the digest: structurally different values hash
// differently, equal values hash identically.
TEST(TraceHash, RegValHashIsStructural) {
  EXPECT_EQ(RegVal(Value{7}).hash64(), RegVal(Value{7}).hash64());
  EXPECT_NE(RegVal(Value{7}).hash64(), RegVal(Value{8}).hash64());
  EXPECT_NE(RegVal(Value{1}).hash64(), RegVal(true).hash64());
  const ProcSet s1{0, 2};
  const ProcSet s2{1};
  EXPECT_NE(RegVal(s1).hash64(), RegVal(s2).hash64());
  EXPECT_NE(RegVal::tuple({RegVal(Value{1})}).hash64(),
            RegVal::tuple({RegVal(Value{2})}).hash64());
  EXPECT_EQ(RegVal::tuple({RegVal(Value{1}), RegVal(true)}).hash64(),
            RegVal::tuple({RegVal(Value{1}), RegVal(true)}).hash64());
}

}  // namespace
}  // namespace wfd
