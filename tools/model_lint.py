#!/usr/bin/env python3
"""Model lint: static pass banning determinism- and model-breaking constructs.

The simulator's experiment conclusions (EXPERIMENTS.md) require that runs
are pure functions of their configuration and that algorithm code touches
shared state only through the Env/atomic-step machinery (docs/MODEL.md,
docs/ANALYSIS.md). This lint scans the algorithm-facing sources —
src/core, src/fd, src/memory — for constructs that silently break those
guarantees:

  libc-rand          rand()/srand()/rand_r(): unseeded process-global RNG
  random-device      std::random_device: nondeterministic entropy source
  wall-clock-time    time(...)/clock(): ambient wall-clock state
  chrono-clock-now   std::chrono::*_clock::now(): ambient wall-clock state
  unordered-iter     std::unordered_{map,set,...}: address/seed-dependent
                     iteration order can leak into traces and schedules
  direct-world       env.world()/.objects() use outside src/sim: shared
                     state must flow through Env's atomic-step awaitables
                     (the step auditor enforces this dynamically; the lint
                     catches it before the code ever runs)
  fp-mutation        injectCrash(...) outside src/sim: the failure pattern
                     is environment state; only the simulator (and its
                     chaos engine, which enforces the legality contract in
                     docs/CHAOS.md) may mutate F mid-run
  global-mutable     non-const namespace-scope state in src/ (including
                     src/sim): the batch runner (sim/batch.h) executes
                     runs on concurrent worker threads, and the
                     no-shared-state determinism contract in
                     docs/PARALLEL.md only holds while every piece of
                     mutable state is owned by a Run or guarded by a lock
  hot-path-alloc     ProcSet::members() / .at() in the scheduler and the
                     schedule policies (src/sim/scheduler.{h,cc}): the
                     per-step hot path is allocation-free by contract
                     (docs/PERF.md) — select pids with nth/nextAbove/
                     iterators and index slots with asserted operator[]
  nondet-iteration   range-for over a std::unordered_{map,set,...} in ALL
                     of src/ (including src/sim, where merely owning an
                     unordered container is legal, e.g. sim/report_cache):
                     iterating one visits elements in address/seed order,
                     which leaks nondeterminism the moment any loop effect
                     reaches a trace, a digest, or an eviction choice
  ipc-primitive      fork/exec*/socket/pipe outside src/sim/fabric: the
                     multi-process campaign fabric (docs/PARALLEL.md) is
                     the ONE component allowed to spawn processes and open
                     IPC channels; anywhere else these primitives would
                     fork threads mid-flight, duplicate file descriptors,
                     and break the single-address-space assumptions the
                     batch runner's determinism contract rests on

The harness-facing trees bench/ and examples/ are linted too: their runs
feed EXPERIMENTS.md rows and documentation, so the same determinism rules
bind (wall-clock timing benches annotate the measurement lines with
`model-lint-allow`).

Run as a ctest test (tools.model_lint). `--self-test` proves every rule
fires on a violating snippet and stays silent on clean code.
"""

import argparse
import pathlib
import re
import sys

# Directories whose sources the model rules bind (relative to --root).
# src/sim itself is exempt from the algorithm-facing rules: it IS the
# machinery those rules protect. The thread-safety rule (global-mutable)
# scopes differently — src/ only, but *including* src/sim, since worker
# threads execute the simulator itself concurrently.
LINTED_DIRS = ["src/core", "src/fd", "src/memory", "bench", "examples"]
THREAD_SAFETY_DIRS = ["src/core", "src/fd", "src/memory", "src/sim"]
# Scope entries may also name individual FILES: the hot-path rule binds
# exactly the scheduler + policy translation units, not all of src/sim
# (cold sim code legitimately uses members()/at()).
HOT_PATH_FILES = ["src/sim/scheduler.cc", "src/sim/scheduler.h"]
# The iteration rule binds the whole library tree: unlike declaring an
# unordered container (legal in src/sim), ITERATING one is nondeterministic
# everywhere.
ALL_SRC_DIRS = ["src"]
# The IPC rule binds the library AND the harness trees, minus the one
# component designed to spawn processes: the campaign fabric.
IPC_DIRS = ["src", "bench", "examples"]
IPC_EXCLUDES = ["src/sim/fabric"]


UNORDERED_DECL_RX = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*&?\s*(\w+)\s*[;={(]"
)
RANGE_FOR_RX = re.compile(r"\bfor\s*\([^;()]*:([^)]+)\)")


def find_nondet_iteration(stripped: str):
    """Line numbers of range-for loops over unordered containers.

    File-wide two-pass matcher (not a line regex): first collect the names
    of variables/members declared with an unordered container type, then
    flag any range-for whose range expression names one of them — or spells
    an unordered type inline (a temporary, a cast, a fully-typed member).
    Name matching is per-file and purely textual, so a same-named ordered
    container in another file never false-positives here.
    """
    names = set(UNORDERED_DECL_RX.findall(stripped))
    hits = set()
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        m = RANGE_FOR_RX.search(line)
        if not m:
            continue
        expr = m.group(1)
        if "unordered_" in expr or names.intersection(re.findall(r"\w+", expr)):
            hits.add(lineno)
    return hits


# (rule-name, matcher, explanation[, dirs[, excludes]]) — rules without
# an explicit dirs entry bind LINTED_DIRS; `excludes` names path prefixes
# inside those dirs the rule does NOT bind (e.g. the fabric exemption of
# ipc-primitive). A matcher is either a compiled line regex or a callable
# taking the comment/string-stripped file text and returning the set of
# violating line numbers (for rules needing file-wide state).
RULES = [
    (
        "libc-rand",
        # The lookbehind exempts qualified/member calls such as the seeded
        # FailurePattern::random(...) factory: the rule targets the libc
        # process-global functions only.
        re.compile(r"(?<![\w:.>])(?:rand|srand|rand_r|random|srandom)\s*\("),
        "libc RNG is process-global and unseeded per run; use common/rng.h "
        "(seeded xoshiro) or hashedUniform",
    ),
    (
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device is a nondeterministic entropy source; runs must "
        "be pure functions of their seed",
    ),
    (
        "wall-clock-time",
        re.compile(r"\b(?:time|clock|gettimeofday|clock_gettime)\s*\(\s*(?:NULL|nullptr|0|&|\))"),
        "ambient wall-clock state; simulated logical time is World::now()",
    ),
    (
        "chrono-clock-now",
        re.compile(
            r"std::chrono::\w*clock::now|\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now"
        ),
        "ambient wall-clock state; simulated logical time is World::now()",
    ),
    (
        "wall-clock-type",
        # Any MENTION of a wall-clock type anywhere in src/ — not just
        # ::now() calls. `using Clock = std::chrono::steady_clock;` would
        # dodge the chrono-clock-now regex while smuggling ambient time
        # into simulation code; with the net substrate (src/sim/net) every
        # timer must be driven by the simulated clock, so the types
        # themselves are banned in the library. Host-side instrumentation
        # (worker busy-time in sim/batch.cc) opts out per line with a
        # model-lint-allow annotation.
        re.compile(r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"),
        "wall-clock types are banned in the library: all time must come "
        "from the simulated clock (World::now(), NetWorld ticks); "
        "host-side measurement code must annotate with model-lint-allow",
        ALL_SRC_DIRS,
    ),
    (
        "unordered-iter",
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)"),
        "iteration order of unordered containers is address/seed dependent "
        "and can leak nondeterminism into traces; use std::map/std::set",
    ),
    (
        "direct-world",
        re.compile(r"(?:\.|->)\s*world\s*\(\s*\)|(?:\.|->)\s*objects\s*\(\s*\)"),
        "algorithm code must reach shared state through Env's atomic-step "
        "awaitables, never through World/ObjectTable directly (keeps step "
        "accounting honest; audited dynamically by sim/step_audit.h)",
    ),
    (
        "fp-mutation",
        re.compile(r"\binjectCrash\s*\("),
        "the failure pattern is environment state: only src/sim (the "
        "scheduler and the chaos engine, which enforces the legality "
        "contract in docs/CHAOS.md) may crash processes mid-run; "
        "workloads describe crashes up front via FailurePattern factories",
    ),
    (
        "global-mutable",
        # Column-0 declarations introduced by static/inline/thread_local
        # that are not const/constexpr and are not functions (no parens on
        # the declarator line) nor operator definitions. Namespace-scope
        # code in this repo sits at column 0, so the anchor scopes the
        # rule to globals without tripping on function-local statics or
        # class members. Bare `int g_x = 0;` globals are out of reach of a
        # line regex (indistinguishable from locals) — keyword-introduced
        # globals are the idiom this tree actually uses.
        re.compile(
            r"^(?:static|inline|thread_local)(?:\s+(?:static|inline|thread_local))*"
            r"\s+(?!const\b|constexpr\b)(?!.*\boperator)[^()\n]*[=;]"
        ),
        "non-const namespace-scope state is shared across the batch "
        "runner's worker threads (sim/batch.h); keep mutable state owned "
        "by a Run or behind an explicit lock (docs/PARALLEL.md)",
        THREAD_SAFETY_DIRS,
    ),
    (
        "hot-path-alloc",
        # members() materializes a heap vector per call; .at() adds a
        # bounds-throw on paths that run once per simulated step.
        re.compile(r"\.\s*members\s*\(|\.\s*at\s*\("),
        "the scheduler/policy per-step path is allocation-free by contract "
        "(docs/PERF.md): select pids with ProcSet::nth/nextAbove/iterators "
        "instead of members(), and index slot vectors with asserted "
        "operator[] instead of .at()",
        HOT_PATH_FILES,
    ),
    (
        "nondet-iteration",
        find_nondet_iteration,
        "range-for over an unordered container visits elements in "
        "address/seed-dependent order; iterate a std::map/std::set, or "
        "keep an ordered side index of the keys (sim/report_cache.h "
        "pairs its unordered map with an explicit LRU list for exactly "
        "this reason)",
        ALL_SRC_DIRS,
    ),
    (
        "ipc-primitive",
        # Call-position only; the leading guard blocks member access
        # (obj.fork(...)) but deliberately lets `::fork(` through — the
        # globally qualified spelling the fabric itself uses must not be
        # an evasion for everyone else.
        re.compile(
            r"(?<![\w.>])(?:fork|vfork|execl|execle|execlp|execv|execve|"
            r"execvp|execvpe|posix_spawn|posix_spawnp|socket|socketpair|"
            r"pipe|pipe2)\s*\("
        ),
        "process/IPC primitives are confined to the campaign fabric "
        "(src/sim/fabric/, docs/PARALLEL.md): fork() elsewhere duplicates "
        "live worker threads and file descriptors mid-run; spawn processes "
        "only through sim::fabric::runFabric",
        IPC_DIRS,
        IPC_EXCLUDES,
    ),
]


def rule_dirs(rule):
    """Paths a rule binds (dirs or files): 4th element, else LINTED_DIRS."""
    return rule[3] if len(rule) > 3 else LINTED_DIRS


def rule_excludes(rule):
    """Path prefixes exempt from a rule: 5th element, else none."""
    return rule[4] if len(rule) > 4 else []


EXTENSIONS = {".h", ".cc"}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    Keeps line numbers stable so findings point at real source lines, and
    prevents prose in comments ("crash times", "the clock") from tripping
    token rules.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            seg = text[i : (n if j == -1 else j + 2)]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = n if j == -1 else j + 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            i += 1  # closing quote
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scan_text(text: str, path: str, rules=None):
    """Return [(path, line_no, rule, line_text)] for one file's contents."""
    findings = []
    stripped = strip_comments_and_strings(text)
    lines = text.splitlines()
    active = RULES if rules is None else rules
    # File-wide matchers run once per file up front; their hits merge into
    # the per-line loop so model-lint-allow suppression applies uniformly.
    filewide_hits = {
        rule[0]: rule[1](stripped) for rule in active if callable(rule[1])
    }
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if "model-lint-allow" in (lines[lineno - 1] if lineno <= len(lines) else ""):
            continue
        for rule in active:
            name, matcher = rule[0], rule[1]
            hit = (
                lineno in filewide_hits[name]
                if callable(matcher)
                else matcher.search(line)
            )
            if hit:
                src = lines[lineno - 1].strip() if lineno <= len(lines) else ""
                findings.append((path, lineno, name, src))
    return findings


def all_linted_dirs():
    """Ordered union of every rule's directory scope."""
    seen = []
    for rule in RULES:
        for d in rule_dirs(rule):
            if d not in seen:
                seen.append(d)
    return seen


def scan_tree(root: pathlib.Path):
    findings = []
    files = 0
    for d in all_linted_dirs():
        rules = [r for r in RULES if d in rule_dirs(r)]
        base = root / d
        if base.is_file():
            paths = [base]  # file-scoped rule (e.g. hot-path-alloc)
        elif base.is_dir():
            paths = [
                p
                for p in sorted(base.rglob("*"))
                if p.suffix in EXTENSIONS and p.is_file()
            ]
        else:
            print(f"model_lint: missing path {base}", file=sys.stderr)
            return None, 0
        for p in paths:
            files += 1
            rel = str(p.relative_to(root))
            active = [
                r
                for r in rules
                if not any(
                    rel == e or rel.startswith(e.rstrip("/") + "/")
                    for e in rule_excludes(r)
                )
            ]
            findings.extend(scan_text(p.read_text(encoding="utf-8"), rel, active))
    return findings, files


# --- self test: every rule must fire on its violating snippet ------------

VIOLATING_SNIPPETS = {
    "libc-rand": "int pick() { return rand() % 7; }\n",
    "random-device": "std::random_device rd;\nauto s = rd();\n",
    "wall-clock-time": "long stamp() { return time(nullptr); }\n",
    "chrono-clock-now": "auto t0 = std::chrono::steady_clock::now();\n",
    "wall-clock-type": "using Clock = std::chrono::steady_clock;\n",
    "unordered-iter": "std::unordered_map<int, int> seen;\n",
    "direct-world": "void rogue(Env& env) { env.world()->objects(); }\n",
    "fp-mutation": "void rogue(World& w) { w.injectCrash(2); }\n",
    "global-mutable": "static int g_hits = 0;\n",
    "hot-path-alloc": "Pid pick(const ProcSet& r) { return r.members()[0]; }\n",
    "nondet-iteration": (
        "std::unordered_map<std::uint64_t, Entry> cache_;\n"
        "void dump() { for (const auto& [k, v] : cache_) use(k, v); }\n"
    ),
    "ipc-primitive": (
        "int fds[2];\n"
        "int rogue() { if (::fork() == 0) _exit(0); return pipe(fds); }\n"
    ),
}

CLEAN_SNIPPET = """\
// A legal algorithm fragment: seeded rng, logical time, ordered maps.
// Mentions of rand(), time() and world() in comments must not fire.
#include <map>
inline constexpr int kRounds = 3;            // constexpr global: immutable
static const char* kName = "fig1";           // const global: immutable
inline bool operator!=(const RegVal& a, const RegVal& b) { return !(a == b); }
static int helper(int x);                    // function decl, not state
Coro<Unit> algo(Env& env, Value v) {
  static const auto kTable = std::map<int, int>{};  // local const static
  const ObjId r = env.reg(ObjKey{"D", 0});
  co_await env.write(r, RegVal(v));           // one op per step
  const auto res = co_await env.read(r);
  std::map<int, int> ordered;                 // deterministic iteration
  for (const auto& [k, val] : ordered) use(k, val);  // ordered: legal
  const auto fp = FailurePattern::random(4, 2, 60, 7);  // seeded factory
  const char* s = "call rand() at time(0) on world()";  // string, not code
  env.decide(res.scalar.asInt());
  co_return Unit{};
}
"""


def self_test() -> int:
    failures = 0
    for rule, snippet in VIOLATING_SNIPPETS.items():
        found = {r for (_p, _l, r, _s) in scan_text(snippet, "<snippet>")}
        if rule not in found:
            print(f"self-test FAIL: rule {rule} did not fire on its snippet")
            failures += 1
        else:
            print(f"self-test ok: {rule} fires")
    clean = scan_text(CLEAN_SNIPPET, "<clean>")
    if clean:
        print(f"self-test FAIL: clean snippet produced findings: {clean}")
        failures += 1
    else:
        print("self-test ok: clean snippet produces no findings")
    allow = scan_text("int x = rand();  // model-lint-allow: test fixture\n", "<allow>")
    if allow:
        print("self-test FAIL: model-lint-allow suppression ignored")
        failures += 1
    else:
        print("self-test ok: model-lint-allow suppresses")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path, default=pathlib.Path("."),
                    help="repository root (contains src/)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on a violating snippet")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings, files = scan_tree(args.root.resolve())
    if findings is None:
        return 2
    why = dict((r[0], r[2]) for r in RULES)
    for path, lineno, rule, src in findings:
        print(f"{path}:{lineno}: [{rule}] {src}")
        print(f"    {why[rule]}")
    if findings:
        print(f"model_lint: {len(findings)} finding(s) in {files} files")
        return 1
    print(f"model_lint: clean ({files} files in {', '.join(all_linted_dirs())})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
