#!/usr/bin/env python3
"""Compare a bench JSON report against a committed baseline.

Two classes of check:

  * deterministic counters (schedule counts, frontier job counts, step
    makespans, gate status) must match the baseline EXACTLY — these are
    bit-stable properties of the search, so any drift is a semantic
    change that needs a deliberate baseline update;
  * throughput metrics (schedules per wall-second) must stay within
    --min-ratio of the baseline (default 0.8, i.e. fail on a >20%
    schedule-rate regression). Rates are hardware-sensitive, so only a
    sustained regression fails the gate, and --min-ratio 0 disables it.

Usage:
  bench_compare.py --baseline bench/BENCH_explore.baseline.json \
                   --candidate BENCH_explore.json [--min-ratio 0.8]
  bench_compare.py --self-test

Exit status: 0 = within bounds, 1 = regression or mismatch, 2 = usage.
Candidate and baseline produced by different bench modes (--quick vs
full) are compared only on the rows/metrics present in BOTH.

--self-test runs the gate against built-in fixtures (exact-counter
mismatch, the rate-ratio boundary, the differing---jobs step_makespan
exclusion) and exits 0 only if the gate's own behavior is intact; CI
runs it as tools.bench_compare_selftest so a refactor of this script
cannot silently defang the perf gate.
"""

import argparse
import copy
import json
import sys

# Deterministic per-row counters: exact match required when the row is
# present in both reports.
ROW_EXACT = [
    "schedules_explored",
    "sleep_set_skips",
    "states_memoized",
    "memo_hits",
    "steps_executed",
    "steps_replayed",
    "restores",
    "frontier_jobs",
    "step_makespan",
    "verified",
    "complete",
]

# Deterministic top-level metrics: exact match required when present in
# both. (Seconds-valued and hit-count metrics are excluded: wall time is
# hardware-bound, and cache hit counts depend on run order.)
TOP_EXACT = [
    "frontier_n3_jobs",
    "fig1_dpor_schedules",
    "fig1_dag_schedules",
    "dpor_n3_schedules",
    "n4_schedules",
    "n4_complete",
    "gates_failed",
]

# Throughput metrics: candidate must be >= min_ratio * baseline.
RATE_METRICS = [
    "dpor_n3_sched_per_sec",
]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def compare(base, cand, min_ratio):
    """The gate itself: (failures, checked) for a baseline/candidate pair."""
    failures = []
    checked = 0

    # step_makespan is deterministic for a FIXED worker count but is a
    # function of it (the jobs=N ≡ jobs=1 contract excludes it), so when
    # the two reports ran with different --jobs the rows driven by that
    # flag may differ legitimately — compare everything else.
    row_keys = list(ROW_EXACT)
    if base.get("jobs") != cand.get("jobs"):
        row_keys.remove("step_makespan")

    base_rows = {r.get("name"): r for r in base.get("rows", [])}
    cand_rows = {r.get("name"): r for r in cand.get("rows", [])}
    for name in sorted(set(base_rows) & set(cand_rows)):
        b, c = base_rows[name], cand_rows[name]
        for key in row_keys:
            if key not in b or key not in c:
                continue
            checked += 1
            if b[key] != c[key]:
                failures.append(
                    f"row {name}.{key}: baseline {b[key]} != candidate {c[key]}"
                )

    for key in TOP_EXACT:
        if key not in base or key not in cand:
            continue
        checked += 1
        if base[key] != cand[key]:
            failures.append(
                f"metric {key}: baseline {base[key]} != candidate {cand[key]}"
            )

    for key in RATE_METRICS:
        if min_ratio <= 0 or key not in base or key not in cand:
            continue
        checked += 1
        b, c = float(base[key]), float(cand[key])
        if b > 0 and c < min_ratio * b:
            failures.append(
                f"rate {key}: candidate {c:.0f}/s is "
                f"{c / b:.2f}x baseline {b:.0f}/s "
                f"(threshold {min_ratio:.2f}x)"
            )

    return failures, checked


def self_test():
    """Certify the gate's own behavior against built-in fixtures."""
    base = {
        "bench": "explore",
        "jobs": 4,
        "dpor_n3_schedules": 1000,
        "dpor_n3_sched_per_sec": 5000.0,
        "rows": [
            {
                "name": "dpor/n3",
                "schedules_explored": 1000,
                "step_makespan": 420,
                "verified": 1,
            }
        ],
    }
    failed = []

    def expect(label, cond):
        if not cond:
            failed.append(label)
        print(f"  {'ok' if cond else 'FAIL'}: {label}")

    # 1. A report compared against itself is clean.
    f, checked = compare(base, copy.deepcopy(base), 0.8)
    expect("identical reports pass", not f and checked > 0)

    # 2. An exact-counter drift is a failure, top-level and per-row.
    cand = copy.deepcopy(base)
    cand["dpor_n3_schedules"] = 1001
    f, _ = compare(base, cand, 0.8)
    expect("top-level counter mismatch fails", len(f) == 1)
    cand = copy.deepcopy(base)
    cand["rows"][0]["schedules_explored"] = 999
    f, _ = compare(base, cand, 0.8)
    expect("per-row counter mismatch fails", len(f) == 1)

    # 3. The rate-ratio boundary: exactly min_ratio * baseline passes
    #    (the check is strict-less-than), epsilon below fails.
    cand = copy.deepcopy(base)
    cand["dpor_n3_sched_per_sec"] = 4000.0  # exactly 0.8x
    f, _ = compare(base, cand, 0.8)
    expect("rate at exactly 0.8x passes", not f)
    cand["dpor_n3_sched_per_sec"] = 3999.0
    f, _ = compare(base, cand, 0.8)
    expect("rate below 0.8x fails", len(f) == 1)
    f, _ = compare(base, cand, 0)
    expect("--min-ratio 0 disables the rate gate", not f)

    # 4. Differing --jobs: step_makespan is excluded, everything else
    #    still compared.
    cand = copy.deepcopy(base)
    cand["jobs"] = 8
    cand["rows"][0]["step_makespan"] = 210
    f, _ = compare(base, cand, 0.8)
    expect("step_makespan skipped across differing jobs", not f)
    cand["rows"][0]["schedules_explored"] = 999
    f, _ = compare(base, cand, 0.8)
    expect("other rows still compared across differing jobs", len(f) == 1)

    # 5. Nothing comparable is a failure, not a silent pass.
    f, checked = compare({"rows": []}, {"rows": []}, 0.8)
    expect("empty intersection yields zero checks", checked == 0)

    if failed:
        print(f"bench_compare --self-test: {len(failed)} FAILURE(S)")
        return 1
    print("bench_compare --self-test: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline")
    ap.add_argument("--candidate")
    ap.add_argument(
        "--min-ratio",
        type=float,
        default=0.8,
        help="fail when a rate metric drops below this fraction of the "
        "baseline (default 0.8 = a >20%% regression fails; 0 disables)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the gate against built-in fixtures and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        ap.error("--baseline and --candidate are required (or --self-test)")

    base = load(args.baseline)
    cand = load(args.candidate)
    failures, checked = compare(base, cand, args.min_ratio)

    if checked == 0:
        print("bench_compare: no comparable rows or metrics found")
        return 1
    for f in failures:
        print(f"bench_compare REGRESSION: {f}")
    verdict = "FAIL" if failures else "OK"
    print(
        f"bench_compare: {checked} checks against {args.baseline}: {verdict}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
