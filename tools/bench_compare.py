#!/usr/bin/env python3
"""Compare a bench JSON report against a committed baseline.

Two classes of check:

  * deterministic counters (schedule counts, frontier job counts, step
    makespans, gate status) must match the baseline EXACTLY — these are
    bit-stable properties of the search, so any drift is a semantic
    change that needs a deliberate baseline update;
  * throughput metrics (schedules per wall-second) must stay within
    --min-ratio of the baseline (default 0.8, i.e. fail on a >20%
    schedule-rate regression). Rates are hardware-sensitive, so only a
    sustained regression fails the gate, and --min-ratio 0 disables it.

Usage:
  bench_compare.py --baseline bench/BENCH_explore.baseline.json \
                   --candidate BENCH_explore.json [--min-ratio 0.8]

Exit status: 0 = within bounds, 1 = regression or mismatch, 2 = usage.
Candidate and baseline produced by different bench modes (--quick vs
full) are compared only on the rows/metrics present in BOTH.
"""

import argparse
import json
import sys

# Deterministic per-row counters: exact match required when the row is
# present in both reports.
ROW_EXACT = [
    "schedules_explored",
    "sleep_set_skips",
    "states_memoized",
    "memo_hits",
    "steps_executed",
    "steps_replayed",
    "restores",
    "frontier_jobs",
    "step_makespan",
    "verified",
    "complete",
]

# Deterministic top-level metrics: exact match required when present in
# both. (Seconds-valued and hit-count metrics are excluded: wall time is
# hardware-bound, and cache hit counts depend on run order.)
TOP_EXACT = [
    "frontier_n3_jobs",
    "fig1_dpor_schedules",
    "fig1_dag_schedules",
    "dpor_n3_schedules",
    "n4_schedules",
    "n4_complete",
    "gates_failed",
]

# Throughput metrics: candidate must be >= min_ratio * baseline.
RATE_METRICS = [
    "dpor_n3_sched_per_sec",
]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument(
        "--min-ratio",
        type=float,
        default=0.8,
        help="fail when a rate metric drops below this fraction of the "
        "baseline (default 0.8 = a >20%% regression fails; 0 disables)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    failures = []
    checked = 0

    # step_makespan is deterministic for a FIXED worker count but is a
    # function of it (the jobs=N ≡ jobs=1 contract excludes it), so when
    # the two reports ran with different --jobs the rows driven by that
    # flag may differ legitimately — compare everything else.
    row_keys = list(ROW_EXACT)
    if base.get("jobs") != cand.get("jobs"):
        row_keys.remove("step_makespan")

    base_rows = {r.get("name"): r for r in base.get("rows", [])}
    cand_rows = {r.get("name"): r for r in cand.get("rows", [])}
    for name in sorted(set(base_rows) & set(cand_rows)):
        b, c = base_rows[name], cand_rows[name]
        for key in row_keys:
            if key not in b or key not in c:
                continue
            checked += 1
            if b[key] != c[key]:
                failures.append(
                    f"row {name}.{key}: baseline {b[key]} != candidate {c[key]}"
                )

    for key in TOP_EXACT:
        if key not in base or key not in cand:
            continue
        checked += 1
        if base[key] != cand[key]:
            failures.append(
                f"metric {key}: baseline {base[key]} != candidate {cand[key]}"
            )

    for key in RATE_METRICS:
        if args.min_ratio <= 0 or key not in base or key not in cand:
            continue
        checked += 1
        b, c = float(base[key]), float(cand[key])
        if b > 0 and c < args.min_ratio * b:
            failures.append(
                f"rate {key}: candidate {c:.0f}/s is "
                f"{c / b:.2f}x baseline {b:.0f}/s "
                f"(threshold {args.min_ratio:.2f}x)"
            )

    if checked == 0:
        print("bench_compare: no comparable rows or metrics found")
        return 1
    for f in failures:
        print(f"bench_compare REGRESSION: {f}")
    verdict = "FAIL" if failures else "OK"
    print(
        f"bench_compare: {checked} checks against {args.baseline}: {verdict}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
