// Determinism check (registered in ctest as tools.determinism_check).
//
// DESIGN.md §5 promises that a run is a pure function of (algorithm,
// config): identical seeds replay identical traces. This harness
// enforces that promise mechanically across representative workloads
// from every core algorithm family — Fig. 1 (Υ set agreement), Fig. 2
// (Υ^f f-resilient), Fig. 3 (extraction), the Theorem 1 adversary
// chase, and the BG simulation — by executing each configuration twice
// in fresh Runner instances and failing on any trace-hash divergence.
// Unseeded randomness, unordered-container iteration feeding the
// schedule, or uninitialized reads all surface here as a hash mismatch.
//
// Two additional properties ride along:
//   * non-interference: the step auditor (collect mode) must not change
//     the trace hash, and must report zero violations on every legal
//     algorithm;
//   * seed sensitivity: distinct seeds must produce distinct hashes on a
//     smoke workload (the hash actually covers the op stream);
//   * result sensitivity: the hash folds operation RESULTS (read values,
//     scan views, FD answers), so runs with identical op streams but
//     diverging responses cannot replay as hash-equal;
//   * batch equivalence: the same workloads submitted to the parallel
//     BatchRunner (sim/batch.h, `--jobs N` workers, default 4) must come
//     back in submission order with per-cell trace hashes bit-identical
//     to the serial jobs=1 pass — sharding across threads is invisible.
//     Both scheduler modes are held to it (--steal work stealing, the
//     default, and --no-steal static sharding), and --memo adds a
//     ReportCache double-pass: a warm cache hit must reproduce the
//     serial result byte for byte, field for field;
//   * fabric equivalence (--procs N, N >= 2): the same workloads through
//     the multi-process fabric (sim/fabric/fabric.h) — N forked worker
//     processes, each an unmodified BatchRunner — must again be
//     field-for-field identical to serial, in both scheduler modes, and
//     a second pass warmed through the persistent store
//     (sim/fabric/store.h) must answer every key-eligible cell from disk
//     while staying byte-identical.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "wfd.h"

namespace {

using namespace wfd;
using sim::AuditMode;
using sim::Env;
using sim::FailurePattern;
using sim::RunConfig;
using sim::RunResult;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

// Run the workload twice fresh, plus once audited; returns the hash.
std::uint64_t verifyReplay(const std::string& name, const sim::AlgoFn& algo,
                           RunConfig cfg, const std::vector<Value>& props) {
  cfg.audit.reset();
  const RunResult r1 = sim::runTask(cfg, algo, props);
  const RunResult r2 = sim::runTask(cfg, algo, props);
  const std::uint64_t h1 = r1.trace().hash64();
  check(h1 == r2.trace().hash64(), name + ": identical seed, identical hash");

  cfg.audit = AuditMode::kCollect;
  const RunResult ra = sim::runTask(cfg, algo, props);
  check(ra.trace().hash64() == h1,
        name + ": auditor on/off leaves the trace hash unchanged");
  check(ra.audit() != nullptr && ra.audit()->clean(),
        name + ": step auditor reports zero violations");
  return h1;
}

void fig1Workloads() {
  std::puts("Fig. 1 (Upsilon n-set-agreement):");
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{1, 120}});
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, 150, seed);
    cfg.seed = seed;
    verifyReplay(
        "fig1 seed=" + std::to_string(seed),
        [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); }, cfg,
        {10, 20, 30, 40});
  }
  // Afek register-built snapshots exercise the memory substrate.
  const int n_plus_1 = 3;
  const auto fp = FailurePattern::failureFree(n_plus_1);
  RunConfig cfg;
  cfg.n_plus_1 = n_plus_1;
  cfg.fp = fp;
  cfg.fd = fd::makeUpsilon(fp, 80, 5);
  cfg.seed = 5;
  cfg.flavor = sim::SnapshotFlavor::kAfek;
  verifyReplay(
      "fig1 afek-snapshots",
      [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); }, cfg,
      {1, 2, 3});
}

void fig2Workloads() {
  std::puts("Fig. 2 (Upsilon^f f-resilient f-set-agreement):");
  for (const std::uint64_t seed : {3u, 11u}) {
    const int n_plus_1 = 5;
    const int f = 2;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{4, 200}});
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilonF(fp, f, 180, seed);
    cfg.seed = seed;
    verifyReplay(
        "fig2 f=2 seed=" + std::to_string(seed),
        [f](Env& e, Value v) { return core::upsilonFSetAgreement(e, f, v); },
        cfg, {10, 20, 30, 40, 50});
  }
}

void fig3Workloads() {
  std::puts("Fig. 3 (stable D -> Upsilon^f extraction):");
  for (const std::uint64_t seed : {2u, 9u}) {
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::random(n_plus_1, n_plus_1 - 1, 40, seed);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeOmega(fp, 100, seed);
    cfg.seed = seed;
    cfg.max_steps = 60'000;
    const auto phi = core::phiOmegaK(n_plus_1);
    verifyReplay(
        "fig3 from-omega seed=" + std::to_string(seed),
        [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); }, cfg,
        std::vector<Value>(static_cast<std::size_t>(n_plus_1), 0));
  }
}

void adversaryWorkloads() {
  std::puts("Theorem 1 adversary (solo chase):");
  const auto cand = [](Env& e, Value) {
    return core::candidateLowestHeartbeat(e);
  };
  for (const std::uint64_t seed : {1u, 4u}) {
    const auto s1 = core::soloChase(cand, 3, 20'000, 4096, seed);
    const auto s2 = core::soloChase(cand, 3, 20'000, 4096, seed);
    check(s1.run.trace().hash64() == s2.run.trace().hash64(),
          "chase seed=" + std::to_string(seed) +
              ": identical seed, identical hash");
    check(s1.switches == s2.switches,
          "chase seed=" + std::to_string(seed) + ": identical switch count");
  }
}

void bgWorkloads() {
  std::puts("BG simulation:");
  core::BgConfig bg;
  bg.simulators = 2;
  bg.simulated = 3;
  bg.inputs = {101, 102, 103};
  const auto quorum = core::minOfQuorumProgram(2);
  const auto ca = core::commitAdoptProgram();
  for (const std::uint64_t seed : {1u, 13u}) {
    for (const auto* name : {"min-of-quorum", "commit-adopt"}) {
      const auto& prog =
          std::string(name) == "min-of-quorum" ? quorum : ca;
      RunConfig cfg;
      cfg.n_plus_1 = bg.simulators;
      cfg.seed = seed;
      verifyReplay(
          std::string("bg ") + name + " seed=" + std::to_string(seed),
          [&bg, &prog](Env& e, Value) { return core::bgSimulator(e, bg, prog); },
          cfg, std::vector<Value>(static_cast<std::size_t>(bg.simulators), 0));
    }
  }
}

void seedSensitivity() {
  std::puts("Seed sensitivity (hash covers the op stream):");
  std::set<std::uint64_t> hashes;
  const int kSeeds = 8;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::failureFree(n_plus_1);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, 100, seed);
    cfg.seed = seed;
    const RunResult rr = sim::runTask(
        cfg, [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); },
        {10, 20, 30, 40});
    hashes.insert(rr.trace().hash64());
  }
  check(static_cast<int>(hashes.size()) == kSeeds,
        "distinct seeds give distinct hashes (" +
            std::to_string(hashes.size()) + "/" + std::to_string(kSeeds) +
            " unique)");
}

void resultSensitivity() {
  std::puts("Result sensitivity (hash covers op responses):");
  // Processes query the FD and discard the answer: the op stream is
  // independent of the detector's noise seed, so only the folded-in
  // query RESULTS can distinguish these runs.
  const auto fdBlind = [](Env& e, Value) -> sim::Coro<sim::Unit> {
    for (int i = 0; i < 8; ++i) (void)co_await e.queryFd();
    co_return sim::Unit{};
  };
  const auto runWithNoise = [&](std::uint64_t noise_seed) {
    const int n_plus_1 = 3;
    const auto fp = FailurePattern::failureFree(n_plus_1);
    RunConfig cfg;
    cfg.n_plus_1 = n_plus_1;
    cfg.fp = fp;
    cfg.fd = fd::makeUpsilon(fp, /*stab_time=*/1'000'000, noise_seed);
    cfg.seed = 7;
    cfg.policy = sim::PolicyKind::kRoundRobin;
    return sim::runTask(cfg, fdBlind, {0, 0, 0});
  };
  const RunResult a = runWithNoise(1);
  const RunResult b = runWithNoise(2);
  check(a.steps == b.steps, "fd-blind: identical op streams");
  check(a.trace().hash64() != b.trace().hash64(),
        "fd-blind: diverging FD answers diverge the hash");
}

// Mixed cell list spanning the algorithm families; shared between the
// serial and parallel passes of batchWorkloads.
std::vector<sim::BatchCell> batchCells() {
  std::vector<sim::BatchCell> cells;
  // FdCache: the SAME detector instance serves concurrent cells below —
  // which is exactly the sharing the cache's thread-safety claim makes.
  sim::FdCache fds;
  for (const std::uint64_t seed : {1u, 7u, 23u, 40u}) {
    const int n_plus_1 = 4;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{1, 120}});
    sim::BatchCell cell;
    cell.cfg.n_plus_1 = n_plus_1;
    cell.cfg.fp = fp;
    cell.cfg.fd = fds.upsilon(fp, 150, seed);
    cell.cfg.seed = seed;
    cell.algo = [](Env& e, Value v) { return core::upsilonSetAgreement(e, v); };
    cell.proposals = {10, 20, 30, 40};
    cell.memo_family = "dc-fig1";
    cells.push_back(cell);
    // Same (pattern, stab, seed) key resubmitted: a guaranteed cache hit
    // whose run must still hash identically to the first submission.
    cells.push_back(cell);
  }
  for (const std::uint64_t seed : {3u, 11u}) {
    const int n_plus_1 = 5;
    const auto fp = FailurePattern::withCrashes(n_plus_1, {{4, 200}});
    sim::BatchCell cell;
    cell.cfg.n_plus_1 = n_plus_1;
    cell.cfg.fp = fp;
    cell.cfg.fd = fds.upsilonF(fp, 2, 180, seed);
    cell.cfg.seed = seed;
    cell.algo = [](Env& e, Value v) {
      return core::upsilonFSetAgreement(e, 2, v);
    };
    cell.proposals = {10, 20, 30, 40, 50};
    cell.memo_family = "dc-fig2";
    cells.push_back(std::move(cell));
  }
  const auto phi = core::phiOmegaK(4);
  for (const std::uint64_t seed : {2u, 9u}) {
    const auto fp = FailurePattern::random(4, 3, 40, seed);
    sim::BatchCell cell;
    cell.cfg.n_plus_1 = 4;
    cell.cfg.fp = fp;
    cell.cfg.fd = fds.omega(fp, 100, seed);
    cell.cfg.seed = seed;
    cell.cfg.max_steps = 60'000;
    cell.algo = [phi](Env& e, Value) { return core::extractUpsilonF(e, phi); };
    cell.proposals = std::vector<Value>(4, 0);
    // Watched flavor: driveWatched must replay Scheduler::run exactly.
    cell.watchdog = sim::WatchdogConfig{60'000, 0, 0};
    cell.memo_family = "dc-fig3-watched";
    cells.push_back(std::move(cell));
  }
  return cells;
}

// Every observable field must match: a ReportCache hit or a differently
// scheduled worker must be indistinguishable from the serial run.
bool sameResult(const sim::CellResult& x, const sim::CellResult& y) {
  return x.index == y.index && x.verdict == y.verdict && x.detail == y.detail &&
         x.error == y.error && x.all_correct_done == y.all_correct_done &&
         x.steps == y.steps && x.distinct_decisions == y.distinct_decisions &&
         x.decisions == y.decisions && x.trace_hash == y.trace_hash &&
         x.check_ok == y.check_ok && x.check_detail == y.check_detail &&
         x.metrics == y.metrics;
}

bool allSame(const std::vector<sim::CellResult>& x,
             const std::vector<sim::CellResult>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!sameResult(x[i], y[i])) return false;
  }
  return true;
}

void batchWorkloads(int jobs, bool steal, bool memo) {
  std::printf("Batch engine (serial vs %d workers, %s%s):\n", jobs,
              steal ? "stealing" : "static shards", memo ? ", memo" : "");
  const auto cells = batchCells();
  const sim::BatchRunner serial(sim::BatchOptions{1});
  const sim::BatchRunner pool(sim::BatchOptions{jobs, steal});
  const auto a = serial.run(cells);
  const auto b = pool.run(cells);
  check(a.size() == cells.size() && b.size() == cells.size(),
        "batch returns one result per cell");
  bool order = true;
  bool hashes = true;
  bool verdicts = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    order = order && a[i].index == i && b[i].index == i;
    hashes = hashes && !a[i].error && !b[i].error &&
             a[i].trace_hash == b[i].trace_hash && a[i].steps == b[i].steps;
    verdicts = verdicts && a[i].verdict == b[i].verdict &&
               a[i].decisions == b[i].decisions;
  }
  check(order, "results preserve submission order at every pool size");
  check(hashes, "per-cell trace hashes bit-identical: jobs=1 vs jobs=" +
                    std::to_string(jobs));
  check(verdicts, "verdicts and decisions identical across pool sizes");
  // Resubmitted duplicate cells (FdCache hits) replay hash-identically.
  bool dup_ok = true;
  for (std::size_t i = 0; i + 1 < 8; i += 2) {
    dup_ok = dup_ok && b[i].trace_hash == b[i + 1].trace_hash;
  }
  check(dup_ok, "cache-served detector replays hash-identical runs");
  // The OTHER scheduler mode must be equally invisible: where a cell runs
  // never changes what it computes.
  const sim::BatchRunner other(sim::BatchOptions{jobs, !steal});
  check(allSame(a, other.run(cells)),
        std::string(!steal ? "stealing" : "static sharding") +
            " matches the serial pass field for field");

  if (memo) {
    // Cold pass populates the ReportCache, warm pass re-submits the same
    // batch: every result must be byte-identical to the serial pass, and
    // every key-eligible cell must be answered from the cache the second
    // time. (Under WFD_AUDIT the eligible count is zero by design: an
    // audited run always re-executes.)
    std::size_t cacheable = 0;
    for (const auto& cell : cells) {
      if (sim::cellKey(cell).has_value()) ++cacheable;
    }
    sim::ReportCache cache;
    const sim::BatchRunner memo_pool(sim::BatchOptions{jobs, steal, &cache});
    sim::BatchStats cold_stats;
    sim::BatchStats warm_stats;
    const auto cold = memo_pool.run(cells, &cold_stats);
    const auto warm = memo_pool.run(cells, &warm_stats);
    check(allSame(a, cold), "memo cold pass matches serial field for field");
    check(allSame(a, warm), "memo warm pass (cache hits) byte-identical");
    check(warm_stats.memo_hits == cacheable,
          "warm pass answered every eligible cell from the memo (" +
              std::to_string(warm_stats.memo_hits) + "/" +
              std::to_string(cacheable) + ")");
  }
}

// The fabric contract: procs=M x jobs=N must be indistinguishable from
// serial execution — forked workers, block stealing, and the persistent
// store are all pure scheduling/caching, never semantics.
void fabricWorkloads(int procs, int jobs, bool steal) {
  std::printf("Fabric (serial vs %d processes x %d workers, %s):\n", procs,
              jobs, steal ? "stealing" : "static ranges");
  const auto cells = batchCells();
  sim::BatchOptions serial_opts;
  serial_opts.jobs = 1;
  const sim::BatchRunner serial(serial_opts);
  const auto truth = serial.run(cells);

  sim::fabric::FabricOptions fo;
  fo.procs = procs;
  fo.batch.jobs = jobs;
  fo.batch.steal = steal;
  fo.steal = steal;
  // block=1 maximizes cross-process traffic: every cell is its own
  // assignment, the adversarial case for the aggregation path.
  fo.block = 1;
  sim::BatchStats stats;
  const auto got = sim::fabric::runFabric(fo, cells, &stats);
  check(allSame(truth, got),
        "fabric procs=" + std::to_string(procs) +
            " matches the serial pass field for field");
  check(stats.procs == sim::fabric::resolveProcs(procs),
        "stats report the resolved process count");

  // The OTHER process-scheduler mode must be equally invisible.
  sim::fabric::FabricOptions other = fo;
  other.steal = !steal;
  check(allSame(truth, sim::fabric::runFabric(other, cells)),
        std::string(!steal ? "block stealing" : "static ranges") +
            " matches the serial pass field for field");

  // Persistent-store double pass: the cold run fills the on-disk store,
  // the warm run must answer every key-eligible cell from it — across
  // fresh fabric instances, i.e. across real process boundaries — while
  // staying byte-identical to serial. (Under WFD_AUDIT the eligible
  // count is zero by design: an audited run always re-executes.)
  std::size_t cacheable = 0;
  for (const auto& cell : cells) {
    if (sim::cellKey(cell).has_value()) ++cacheable;
  }
  const auto dir = std::filesystem::temp_directory_path() /
                   ("wfd_determinism_fabric_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  sim::fabric::FabricOptions cached = fo;
  cached.batch.cache_dir = dir.string();
  cached.batch.cache_version = "determinism-check";
  sim::BatchStats cold_stats;
  sim::BatchStats warm_stats;
  const auto cold = sim::fabric::runFabric(cached, cells, &cold_stats);
  const auto warm = sim::fabric::runFabric(cached, cells, &warm_stats);
  check(allSame(truth, cold),
        "persistent-store cold pass matches serial field for field");
  check(allSame(truth, warm),
        "persistent-store warm pass (disk hits) byte-identical");
  // The campaign resubmits duplicate cells, so cold memo_hits may be > 0
  // (in-worker LRU hits) and warm disk_hits depends on which worker a
  // duplicate lands on; the deterministic invariants are that the cold
  // pass loads NOTHING from disk and the warm pass misses NOTHING.
  check(cold_stats.disk_hits == 0, "cold pass finds an empty store");
  check(warm_stats.memo_hits == cacheable && warm_stats.disk_misses == 0,
        "warm pass answered every eligible cell from the memo (" +
            std::to_string(warm_stats.memo_hits) + "/" +
            std::to_string(cacheable) + ", " +
            std::to_string(warm_stats.disk_hits) +
            " loaded from disk, 0 disk misses)");
  std::filesystem::remove_all(dir);
}

// ---- --explore: the parallel-frontier determinism contract ---------------
//
// sim/explore.h promises jobs=N ≡ jobs=1 bit-identically — verdict,
// outcome-signature set, counterexample, and every search counter — on
// every configuration. This section holds the frontier engine to it
// across the golden exploration families (k-converge at n = 2 and n = 3
// in both modes, an Upsilon-bearing workload under the refined
// FD-independence relation, and the seeded-bug family whose counterexample
// must come out identical), and additionally pins steal vs static
// sharding. Runs EXCLUSIVELY under --explore (its own ctest entry).

sim::Coro<sim::Unit> exploreOneShot(Env& env, int k, Value v) {
  env.propose(v);
  const core::Pick p =
      co_await core::kConverge(env, sim::ObjKey{"x.conv"}, k, v);
  env.note(p.committed ? "commit" : "adopt", RegVal(p.value));
  env.decide(p.value);
  co_return sim::Unit{};
}

sim::Coro<sim::Unit> exploreBuggy(Env& env, Value v) {
  env.propose(v);
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.bug"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const std::vector<RegVal> view = co_await mem::snapshotScan(env, s);
  env.note(mem::distinctValues(view).size() <= 1 ? "commit" : "adopt",
           RegVal(v));
  env.decide(v);
  co_return sim::Unit{};
}

sim::Coro<sim::Unit> exploreFdBearing(Env& env, Value v) {
  env.propose(v);
  const sim::OpResult a = co_await env.queryFd();
  const mem::SnapshotHandle s =
      mem::makeSnapshot(env, sim::ObjKey{"x.fd"}, env.nProcs());
  co_await mem::snapshotUpdate(env, s, env.me(), RegVal(v));
  const sim::OpResult b = co_await env.queryFd();
  (void)co_await mem::snapshotScan(env, s);
  env.note("fd1", a.scalar);
  env.note("fd2", b.scalar);
  env.decide(v);
  co_return sim::Unit{};
}

std::string exploreConvergeViolation(const sim::ExploreOutcome& o, int k) {
  bool any_commit = false;
  std::set<Value> picked;
  for (const auto& e : o.events) {
    if (e.kind != sim::EventKind::kNote) continue;
    if (e.label != "commit" && e.label != "adopt") continue;
    picked.insert(e.value.asInt());
    any_commit = any_commit || (e.label == "commit");
  }
  if (any_commit && static_cast<int>(picked.size()) > k) {
    return "commit with " + std::to_string(picked.size()) +
           " > k distinct picks";
  }
  return "";
}

bool exploreIdentical(const sim::ExploreResult& a,
                      const sim::ExploreResult& b) {
  return a.verdict == b.verdict && a.violation == b.violation &&
         a.counterexample == b.counterexample &&
         a.schedules_explored == b.schedules_explored &&
         a.sleep_set_skips == b.sleep_set_skips &&
         a.states_memoized == b.states_memoized &&
         a.memo_hits == b.memo_hits && a.steps_executed == b.steps_executed &&
         a.steps_replayed == b.steps_replayed && a.restores == b.restores &&
         a.max_depth_seen == b.max_depth_seen && a.complete == b.complete &&
         a.frontier_jobs == b.frontier_jobs &&
         a.frontier_depth == b.frontier_depth &&
         a.outcomeSigs() == b.outcomeSigs();
}

void exploreWorkloads(int jobs) {
  std::printf("Explore frontier (jobs=1 vs jobs=%d, every counter):\n", jobs);
  std::vector<Value> props2 = {100, 101};
  std::vector<Value> props3 = {100, 101, 102};

  struct Family {
    std::string name;
    sim::ExploreConfig cfg;
    sim::AlgoFn algo;
    std::vector<Value> props;
    bool expect_violation = false;
  };
  std::vector<Family> families;
  for (const auto mode : {sim::ExploreMode::kDpor, sim::ExploreMode::kDag}) {
    const char* mname = mode == sim::ExploreMode::kDpor ? "dpor" : "dag";
    for (const int n : {2, 3}) {
      Family f;
      f.name = std::string("converge-n") + std::to_string(n) + "-" + mname;
      f.cfg.run.n_plus_1 = n;
      f.cfg.mode = mode;
      const int k = n - 1;
      f.cfg.property = [k](const sim::ExploreOutcome& o) {
        return exploreConvergeViolation(o, k);
      };
      f.algo = [k](Env& e, Value v) { return exploreOneShot(e, k, v); };
      f.props = n == 2 ? props2 : props3;
      families.push_back(std::move(f));
    }
  }
  {
    // The Upsilon family: immediately-stable history, so the refined
    // FD-independence relation is live in both phases of the frontier.
    Family f;
    f.name = "fd-upsilon-n2-dpor";
    f.cfg.run.n_plus_1 = 2;
    f.cfg.run.fd = fd::makeUpsilon(FailurePattern::failureFree(2),
                                   /*stab_time=*/0, /*seed=*/7);
    f.cfg.mode = sim::ExploreMode::kDpor;
    f.cfg.property = [](const sim::ExploreOutcome&) { return std::string(); };
    f.algo = [](Env& e, Value v) { return exploreFdBearing(e, v); };
    f.props = props2;
    families.push_back(std::move(f));
  }
  {
    Family f;
    f.name = "seeded-bug-n2-dpor";
    f.cfg.run.n_plus_1 = 2;
    f.cfg.mode = sim::ExploreMode::kDpor;
    f.cfg.property = [](const sim::ExploreOutcome& o) {
      return exploreConvergeViolation(o, 1);
    };
    f.algo = [](Env& e, Value v) { return exploreBuggy(e, v); };
    f.props = props2;
    f.expect_violation = true;
    families.push_back(std::move(f));
  }

  for (auto& f : families) {
    f.cfg.jobs = 1;
    const sim::ExploreResult one = explore(f.cfg, f.algo, f.props);
    f.cfg.jobs = jobs;
    const sim::ExploreResult many = explore(f.cfg, f.algo, f.props);
    check(exploreIdentical(one, many),
          f.name + ": jobs=" + std::to_string(jobs) +
              " bit-identical to jobs=1");
    f.cfg.steal = false;
    const sim::ExploreResult stat = explore(f.cfg, f.algo, f.props);
    f.cfg.steal = true;
    check(exploreIdentical(many, stat),
          f.name + ": static sharding matches stealing");
    if (f.expect_violation) {
      check(one.verdict == sim::ExploreVerdict::kViolation &&
                one.counterexample == many.counterexample &&
                !one.counterexample.empty(),
            f.name + ": identical counterexample at every worker count");
    } else {
      check(one.verdict == sim::ExploreVerdict::kVerified && one.complete,
            f.name + ": family verified");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 4;
  int procs = 0;
  bool steal = true;
  bool memo = false;
  bool explore_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      procs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--steal") == 0) {
      steal = true;
    } else if (std::strcmp(argv[i], "--no-steal") == 0) {
      steal = false;
    } else if (std::strcmp(argv[i], "--memo") == 0) {
      memo = true;
    } else if (std::strcmp(argv[i], "--no-memo") == 0) {
      memo = false;
    } else if (std::strcmp(argv[i], "--explore") == 0) {
      explore_only = true;
    }
  }
  if (explore_only) {
    std::puts("=== determinism check: parallel exploration frontier ===");
    exploreWorkloads(jobs < 1 ? 1 : jobs);
    if (g_failures > 0) {
      std::printf("\ndeterminism check FAILED: %d divergence(s)\n",
                  g_failures);
      return 1;
    }
    std::puts("\ndeterminism check passed: frontier bit-identical");
    return 0;
  }
  std::puts("=== determinism check: every workload runs twice per seed ===");
  fig1Workloads();
  fig2Workloads();
  fig3Workloads();
  adversaryWorkloads();
  bgWorkloads();
  seedSensitivity();
  resultSensitivity();
  batchWorkloads(jobs < 1 ? 1 : jobs, steal, memo);
  if (procs > 0) fabricWorkloads(procs, jobs < 1 ? 1 : jobs, steal);
  if (g_failures > 0) {
    std::printf("\ndeterminism check FAILED: %d divergence(s)\n", g_failures);
    return 1;
  }
  std::puts("\ndeterminism check passed: all replays hash-identical");
  return 0;
}
